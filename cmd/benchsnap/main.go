// Command benchsnap runs the repository's Benchmark* suite with
// -benchmem, parses the standard `go test -bench` output, and writes a
// machine-readable JSON snapshot — the committed performance baseline
// (BENCH_<date>.json) that future sessions diff against.
//
// Usage:
//
//	benchsnap [-bench RE] [-benchtime T] [-count N] [-pkg P] [-out F]
//	benchsnap -baseline BENCH_old.json [-tolerance PCT] [-bench RE] ...
//
// The default output name carries the date (BENCH_2006-01-02.json);
// the JSON body itself is timestamp-free so regenerating a snapshot on
// identical code and hardware is diffable field by field. Workflow:
//
//	go run ./cmd/benchsnap                       # full suite snapshot
//	go run ./cmd/benchsnap -out BENCH_$(date +%F).json
//	git diff --no-index BENCH_old.json BENCH_new.json
//
// With -baseline the run becomes a regression gate instead of a
// snapshot: the selected benchmarks run now, the best (minimum) ns/op
// and allocs/op per name are compared against the same benchmark in
// the baseline file, and the process exits 1 when any current value
// exceeds the baseline by more than -tolerance percent (so a baseline
// of 0 allocs/op means any allocation at all fails). CI uses this to
// diff the hot-path benchmarks against the latest committed
// BENCH_<date>.json.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the file schema ("ltta-bench/v1").
type Snapshot struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"goVersion"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	Package   string  `json:"package"`
	Bench     string  `json:"bench"`
	Benchtime string  `json:"benchtime"`
	Count     int     `json:"count"`
	Results   []Entry `json:"benchmarks"`
}

// Entry is one parsed benchmark line. With -count > 1 the same name
// appears once per run, in output order.
type Entry struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"` // GOMAXPROCS suffix from the raw line
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// benchLine matches `BenchmarkName-8  123  456 ns/op  789 B/op  12 allocs/op`
// (the memory columns are present because we always pass -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime (1x keeps snapshots fast; use e.g. 2s for stable timings)")
	count := flag.Int("count", 1, "passed to go test -count")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output file (default BENCH_<date>.json in the current directory)")
	baseline := flag.String("baseline", "", "compare against this snapshot instead of writing one; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 15, "percent regression allowed against -baseline before failing")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), "-benchmem", *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	snap := Snapshot{
		Schema:    "ltta-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Package:   *pkg,
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
		Results:   []Entry{},
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		e.Procs, _ = strconv.Atoi(m[2])
		e.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		snap.Results = append(snap.Results, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: no benchmarks matched %q in %s\n%s", *bench, *pkg, raw)
		os.Exit(1)
	}

	if *baseline != "" {
		os.Exit(compare(*baseline, snap.Results, *tolerance))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(snap)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: %d results -> %s\n", len(snap.Results), path)
}

// best folds -count repetitions down to the most favourable (minimum)
// ns/op and allocs/op per benchmark name, damping scheduler noise so
// the gate compares steady-state bests, not unlucky single runs.
func best(entries []Entry) map[string]Entry {
	m := make(map[string]Entry, len(entries))
	for _, e := range entries {
		b, ok := m[e.Name]
		if !ok {
			m[e.Name] = e
			continue
		}
		if e.NsPerOp < b.NsPerOp {
			b.NsPerOp = e.NsPerOp
		}
		if e.AllocsPerOp < b.AllocsPerOp {
			b.AllocsPerOp = e.AllocsPerOp
		}
		if e.BytesPerOp < b.BytesPerOp {
			b.BytesPerOp = e.BytesPerOp
		}
		m[e.Name] = b
	}
	return m
}

// compare gates the just-measured results against a committed
// snapshot. Only benchmarks present in both are compared (the gate
// typically runs a -bench subset of a full-suite snapshot). Returns
// the process exit code: 1 if any benchmark's best ns/op or allocs/op
// exceeds the baseline's best by more than tol percent, 0 otherwise.
func compare(path string, current []Entry, tol float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 1
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", path, err)
		return 1
	}
	if base.Schema != "ltta-bench/v1" {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: unknown schema %q\n", path, base.Schema)
		return 1
	}

	baseBest, curBest := best(base.Results), best(current)
	names := make([]string, 0, len(curBest))
	for name := range curBest {
		if _, ok := baseBest[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: no benchmark measured now also appears in %s\n", path)
		return 1
	}

	fail := false
	fmt.Printf("benchsnap: comparing %d benchmark(s) against %s (tolerance %.0f%%)\n", len(names), path, tol)
	for _, name := range names {
		b, c := baseBest[name], curBest[name]
		nsLimit := b.NsPerOp * (1 + tol/100)
		allocLimit := int64(float64(b.AllocsPerOp) * (1 + tol/100))
		verdict := "ok"
		switch {
		case c.NsPerOp > nsLimit:
			verdict = "FAIL ns/op"
			fail = true
		case c.AllocsPerOp > allocLimit:
			verdict = "FAIL allocs/op"
			fail = true
		}
		fmt.Printf("  %-40s %12.0f -> %12.0f ns/op  %6d -> %6d allocs/op  %s\n",
			name, b.NsPerOp, c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp, verdict)
	}
	if fail {
		fmt.Fprintln(os.Stderr, "benchsnap: performance regression beyond tolerance")
		return 1
	}
	return 0
}
