// Command benchsnap runs the repository's Benchmark* suite with
// -benchmem, parses the standard `go test -bench` output, and writes a
// machine-readable JSON snapshot — the committed performance baseline
// (BENCH_<date>.json) that future sessions diff against.
//
// Usage:
//
//	benchsnap [-bench RE] [-benchtime T] [-count N] [-pkg P] [-out F]
//
// The default output name carries the date (BENCH_2006-01-02.json);
// the JSON body itself is timestamp-free so regenerating a snapshot on
// identical code and hardware is diffable field by field. Workflow:
//
//	go run ./cmd/benchsnap                       # full suite snapshot
//	go run ./cmd/benchsnap -out BENCH_$(date +%F).json
//	git diff --no-index BENCH_old.json BENCH_new.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the file schema ("ltta-bench/v1").
type Snapshot struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"goVersion"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	Package   string  `json:"package"`
	Bench     string  `json:"bench"`
	Benchtime string  `json:"benchtime"`
	Count     int     `json:"count"`
	Results   []Entry `json:"benchmarks"`
}

// Entry is one parsed benchmark line. With -count > 1 the same name
// appears once per run, in output order.
type Entry struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"` // GOMAXPROCS suffix from the raw line
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// benchLine matches `BenchmarkName-8  123  456 ns/op  789 B/op  12 allocs/op`
// (the memory columns are present because we always pass -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime (1x keeps snapshots fast; use e.g. 2s for stable timings)")
	count := flag.Int("count", 1, "passed to go test -count")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output file (default BENCH_<date>.json in the current directory)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), "-benchmem", *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	snap := Snapshot{
		Schema:    "ltta-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Package:   *pkg,
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
		Results:   []Entry{},
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		e.Procs, _ = strconv.Atoi(m[2])
		e.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		snap.Results = append(snap.Results, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: no benchmarks matched %q in %s\n%s", *bench, *pkg, raw)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(snap)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: %d results -> %s\n", len(snap.Results), path)
}
