package main

import "testing"

func TestBenchLine(t *testing.T) {
	cases := []struct {
		line string
		want Entry
	}{
		{"BenchmarkRunNilTracer-8   	  214285	      5555 ns/op	    1600 B/op	      37 allocs/op",
			Entry{Name: "BenchmarkRunNilTracer", Procs: 8, Iterations: 214285, NsPerOp: 5555, BytesPerOp: 1600, AllocsPerOp: 37}},
		{"BenchmarkFixpointCarrySkip16 	 1000000	      1042 ns/op",
			Entry{Name: "BenchmarkFixpointCarrySkip16", Iterations: 1000000, NsPerOp: 1042}},
		{"BenchmarkTable1C6288-16     	       1	1234567890 ns/op	  500000 B/op	    9000 allocs/op",
			Entry{Name: "BenchmarkTable1C6288", Procs: 16, Iterations: 1, NsPerOp: 1234567890, BytesPerOp: 500000, AllocsPerOp: 9000}},
	}
	for _, c := range cases {
		m := benchLine.FindStringSubmatch(c.line)
		if m == nil {
			t.Errorf("no match: %q", c.line)
			continue
		}
		got := Entry{Name: m[1]}
		got.Procs = atoiOr0(m[2])
		got.Iterations = int64(atoiOr0(m[3]))
		if m[4] != "" {
			got.NsPerOp = float64(atoiOr0(m[4]))
		}
		got.BytesPerOp = int64(atoiOr0(m[5]))
		got.AllocsPerOp = int64(atoiOr0(m[6]))
		if got != c.want {
			t.Errorf("parsed %+v, want %+v (line %q)", got, c.want, c.line)
		}
	}
	for _, miss := range []string{
		"goos: linux", "PASS", "ok  	repro	1.2s",
		"--- BENCH: BenchmarkX", "cpu: some cpu model",
	} {
		if benchLine.MatchString(miss) {
			t.Errorf("non-benchmark line matched: %q", miss)
		}
	}
}

func atoiOr0(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	if s == "" {
		return 0
	}
	return n
}
