// Command ltta is the timing-analysis front end: it loads a .bench
// netlist and runs floating-mode timing checks with last-transition-
// time constraint propagation.
//
// Usage:
//
//	ltta -c circuit.bench [-d defaultDelay] [-o output] [-delta N]
//	ltta -c circuit.bench -exact [-o output]
//	ltta -c circuit.bench -sta
//	ltta -c circuit.v -exact          (structural Verilog by extension)
//	ltta -c circuit.bench -sdf t.sdf  (back-annotate delays)
//
// With -delta, the timing check (output, δ) is run through the full
// pipeline (narrowing, dominators, learning, stem correlation, case
// analysis). With -exact, the exact floating-mode delay of the output
// (or of the whole circuit when no -o is given) is computed. With
// -sta, only the classical topological analysis is printed.
//
// Observability and control:
//
//	-timeout D    bound every check by the wall-clock duration D; an
//	              interrupted check reports the verdict C (cancelled)
//	-stats        print aggregated engine telemetry (propagations,
//	              narrowings, backtracks, per-stage CPU) after the run
//	-trace        stream engine events (stages, decisions, backtracks,
//	              stem splits) as text; for a single-output -delta
//	              check, also print the plain-fixpoint narrowing listing
//	-trace-json   like -trace but one JSON object per event
//	-trace-out F  record every check as a Chrome trace_event timeline
//	              and write it to F — load in Perfetto (ui.perfetto.dev)
//	              or chrome://tracing; parallel checks get worker lanes
//	-hist         print latency/work distributions (p50/p90/p99 per
//	              pipeline stage) after the run
//	-workers N    fan whole-circuit checks over N workers (0 = all
//	              CPUs); the aggregate verdict is identical to serial
//	-debug-addr A serve /debug/vars (expvar engine counters) and
//	              /debug/pprof on address A while the run executes
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the default mux
	"os"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/obs"
	"repro/internal/sdf"
	"repro/internal/verilog"
	"repro/internal/waveform"
)

func main() {
	file := flag.String("c", "", "input .bench netlist (required)")
	defDelay := flag.Int64("d", 10, "default gate delay for gates without a !delay directive")
	output := flag.String("o", "", "primary output to check (default: all)")
	deltaF := flag.Int64("delta", -1, "timing check threshold δ")
	exact := flag.Bool("exact", false, "compute the exact floating-mode delay")
	sta := flag.Bool("sta", false, "print the classical topological analysis only")
	budget := flag.Int("budget", 200000, "case-analysis backtrack budget")
	maxProps := flag.Int64("max-propagations", 0, "abandon a check past this many gate-constraint applications (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound per check (0 = none); an expired check reports C (cancelled)")
	workers := flag.Int("workers", 1, "fan whole-circuit checks over N workers (0 = all CPUs)")
	noDom := flag.Bool("no-dominators", false, "disable dynamic timing dominators")
	noLearn := flag.Bool("no-learning", false, "disable static learning")
	noStem := flag.Bool("no-stems", false, "disable stem correlation")
	cone := flag.Bool("cone", true, "solve each check on the sink's fan-in cone")
	noCone := flag.Bool("no-cone", false, "solve every check on the whole circuit (overrides -cone)")
	warm := flag.Bool("warm-start", true, "seed repeat checks of a sink from the previous fixpoint snapshot (verdicts unchanged)")
	noWarm := flag.Bool("no-warm-start", false, "solve every check cold (overrides -warm-start)")
	sdfFile := flag.String("sdf", "", "back-annotate gate delays from an SDF file")
	trace := flag.Bool("trace", false, "stream engine trace events as text (plus the plain-fixpoint narrowing listing on single-output -delta checks)")
	traceJSON := flag.Bool("trace-json", false, "stream engine trace events as JSON")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event timeline (Perfetto-loadable) to this file")
	hist := flag.Bool("hist", false, "print latency/work distributions (p50/p90/p99 per stage) after the run")
	stats := flag.Bool("stats", false, "print aggregated engine telemetry after the run")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address during the run")
	flag.Parse()

	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var c *circuit.Circuit
	if strings.HasSuffix(*file, ".v") {
		c, err = verilog.Read(f, verilog.Options{DefaultDelay: *defDelay})
	} else {
		c, err = circuit.ReadBench(f, circuit.BenchOptions{DefaultDelay: *defDelay, Name: *file})
	}
	if err != nil {
		fatal(err)
	}
	st := c.Stats()
	fmt.Printf("%s: %d gates, %d nets, %d PIs, %d POs, %d levels\n",
		c.Name, st.Gates, st.Nets, st.PIs, st.POs, st.Levels)

	if *sdfFile != "" {
		sf, err := os.Open(*sdfFile)
		if err != nil {
			fatal(err)
		}
		an, err := sdf.Apply(c, sf)
		sf.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("SDF %q: annotated %d gates (%d instances unmatched)\n",
			an.Design, an.Applied, len(an.Missing))
	}

	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ltta: debug server:", err)
			}
		}()
		fmt.Printf("debug server on %s (/debug/vars, /debug/pprof)\n", *debugAddr)
	}

	if *sta {
		a := delay.New(c)
		fmt.Printf("topological delay: %s\n", a.Topological())
		s := delay.Run(c, a.Topological())
		for i, po := range c.PrimaryOutputs() {
			fmt.Printf("  %-12s arrival %s\n", c.Net(po).Name, s.OutputArrival[i])
		}
		fmt.Printf("critical path:")
		for _, n := range s.CriticalPath {
			fmt.Printf(" %s", c.Net(n).Name)
		}
		fmt.Println()
		return
	}

	opts := core.Default()
	opts.MaxBacktracks = *budget
	opts.UseDominators = !*noDom
	opts.UseLearning = !*noLearn
	opts.UseStemCorrelation = !*noStem
	opts.UseConeSlicing = *cone && !*noCone
	opts.UseWarmStart = *warm && !*noWarm
	v := core.NewVerifier(c, opts)
	fmt.Printf("topological delay: %s\n", v.Topological())

	var sink circuit.NetID = circuit.InvalidNet
	if *output != "" {
		id, ok := c.NetByName(*output)
		if !ok {
			fatal(fmt.Errorf("no net named %q", *output))
		}
		sink = id
	}

	// Assemble the request shared by every engine call: budgets,
	// per-check deadline, tracer chain.
	var statsTracer *core.StatsTracer
	var histTracer *obs.Tracer
	var spans *obs.SpanRecorder
	var tracers []core.Tracer
	if *stats {
		statsTracer = new(core.StatsTracer)
		tracers = append(tracers, statsTracer)
	}
	if *hist {
		histTracer = obs.NewTracer()
		tracers = append(tracers, histTracer)
	}
	if *traceOut != "" {
		spans = obs.NewSpanRecorder(c)
		tracers = append(tracers, spans)
	}
	switch {
	case *traceJSON:
		tracers = append(tracers, core.NewJSONTraceWriter(os.Stdout, c))
	case *trace:
		tracers = append(tracers, core.NewTraceWriter(os.Stdout, c))
	}
	req := core.Request{
		Budgets: core.Budgets{MaxPropagations: *maxProps},
		Tracer:  core.MultiTracer(tracers...),
		Workers: *workers,
	}
	// A -timeout bounds each individual check; the deadline restarts
	// per engine call via the request's Deadline field.
	perCheck := func() core.Request {
		r := req
		if *timeout > 0 {
			r.Deadline = time.Now().Add(*timeout)
		}
		return r
	}
	ctx := context.Background()

	switch {
	case *exact:
		if sink != circuit.InvalidNet {
			res, err := v.ExactFloatingDelayCtx(ctx, sink, perCheck())
			reportDelayErr(err)
			printDelay(c, *output, res)
		} else {
			res, err := v.CircuitFloatingDelayCtx(ctx, perCheck())
			reportDelayErr(err)
			printDelay(c, "circuit", res)
		}
	case *deltaF >= 0:
		d := waveform.Time(*deltaF)
		if sink != circuit.InvalidNet {
			if *trace {
				printTrace(c, sink, d)
			}
			r := perCheck()
			r.Sink, r.Delta = sink, d
			rep := v.Run(ctx, r)
			printReport(c, v, *output, rep)
		} else {
			r := perCheck()
			r.Delta = d
			cr := v.RunAll(ctx, r)
			fmt.Printf("check (all outputs, %s): %s\n", d, cr.Final)
			fmt.Printf("  stages: before-GITD %s, after-GITD %s, after-stems %s, CA %s (%d backtracks)\n",
				cr.BeforeGITD, cr.AfterGITD, cr.AfterStem, cr.CaseAnalysis, cr.Backtracks)
			fmt.Printf("  work: %d propagations, %d dominators, %d dominator rounds over %d outputs\n",
				cr.Propagations, cr.Dominators, cr.DominatorRounds, len(cr.PerOutput))
			if cr.Final == core.ViolationFound {
				rep := cr.PerOutput[cr.WitnessOutput]
				fmt.Printf("  witness on %s: vector %s, settle %s\n",
					c.Net(c.PrimaryOutputs()[cr.WitnessOutput]).Name, rep.Witness, rep.WitnessSettle)
			}
		}
	default:
		fatal(fmt.Errorf("one of -delta, -exact, or -sta is required"))
	}

	if statsTracer != nil {
		fmt.Printf("engine: %s\n", statsTracer)
	}
	if histTracer != nil {
		histTracer.WriteSummary(os.Stdout)
	}
	if spans != nil {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := spans.WriteTrace(tf); err != nil {
			tf.Close()
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events written to %s (load in Perfetto or chrome://tracing)\n",
			spans.Len(), *traceOut)
	}
}

// reportDelayErr surfaces a cancelled delay search without discarding
// the partial bracket the caller still prints.
func reportDelayErr(err error) {
	if err == nil {
		return
	}
	if err == context.DeadlineExceeded || err == context.Canceled {
		fmt.Println("search cancelled; the reported delay is the partial bracket so far")
		return
	}
	fatal(err)
}

func printDelay(c *circuit.Circuit, what string, res *core.DelayResult) {
	if res == nil {
		return
	}
	kind := "exact floating-mode delay"
	if !res.Exact {
		kind = "floating-mode delay upper bound"
	}
	fmt.Printf("%s of %s: %s (%d checks, %d backtracks)\n", kind, what, res.Delay, res.Checks, res.Backtracks)
	if res.Exact && len(res.Witness) > 0 {
		fmt.Printf("  witness vector (PI order): %s\n", res.Witness)
	}
}

func printReport(c *circuit.Circuit, v *core.Verifier, out string, rep *core.Report) {
	fmt.Printf("check (%s, %s): %s\n", out, rep.Delta, rep.Final)
	fmt.Printf("  stages: before-GITD %s, after-GITD %s, after-stems %s, CA %s\n",
		rep.BeforeGITD, rep.AfterGITD, rep.AfterStem, rep.CaseAnalysis)
	if rep.Backtracks >= 0 {
		fmt.Printf("  backtracks: %d\n", rep.Backtracks)
	}
	if rep.Final == core.Cancelled {
		fmt.Printf("  cancelled: deadline or interrupt before a verdict; raise -timeout to decide\n")
	}
	if rep.Final == core.ViolationFound {
		fmt.Printf("  witness: vector %s, settle %s\n", rep.Witness, rep.WitnessSettle)
		if path, err := v.WitnessPath(rep.Sink, rep.Witness); err == nil {
			fmt.Printf("  sensitised path:")
			for _, n := range path {
				fmt.Printf(" %s", c.Net(n).Name)
			}
			fmt.Println()
		}
	}
	fmt.Printf("  %d dominators on first round, %d propagations, %d narrowings, queue high-water %d, %.3fs\n",
		rep.Dominators, rep.Propagations, rep.Stats.Narrowings, rep.Stats.QueueHighWater, rep.Elapsed.Seconds())
}

// printTrace replays the plain fixpoint of the check with the
// narrowing trace enabled (the paper's Example-2-style listing).
func printTrace(c *circuit.Circuit, sink circuit.NetID, d waveform.Time) {
	sys := constraint.New(c)
	step := 0
	sys.SetTraceFunc(func(n circuit.NetID, old, new waveform.Signal) {
		step++
		fmt.Printf("  [%4d] %-12s %s -> %s\n", step, c.Net(n).Name, old, new)
	})
	fmt.Printf("propagation trace (plain fixpoint, δ=%s):\n", d)
	sys.Narrow(sink, waveform.CheckOutput(d))
	sys.ScheduleAll()
	if !sys.Fixpoint() {
		fmt.Printf("  fixpoint inconsistent at %s: no violation\n", c.Net(sys.EmptyNet()).Name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ltta:", err)
	os.Exit(1)
}
