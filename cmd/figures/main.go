// Command figures regenerates the paper's figure-level experiments:
// the Figure-1/Example-2 trace, the Figures-2/3 carry-skip dominator
// narrative, the Section-6 16-bit carry-skip adder result, and the
// c1908 dominator anecdote.
//
// Usage:
//
//	figures [-fig1] [-fig23] [-csa16] [-c1908]
//
// With no flags, everything runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/harness"
)

func main() {
	fig1 := flag.Bool("fig1", false, "Figure 1 / Example 2 trace")
	fig23 := flag.Bool("fig23", false, "Figures 2–3 carry-skip dominator narrative")
	csa16 := flag.Bool("csa16", false, "Section-6 16-bit carry-skip adder experiment")
	c1908 := flag.Bool("c1908", false, "Section-6 c1908 dominator anecdote")
	budget := flag.Int("budget", 200000, "case-analysis backtrack budget")
	flag.Parse()
	all := !*fig1 && !*fig23 && !*csa16 && !*c1908

	if all || *fig1 {
		harness.RenderExample2(os.Stdout, harness.Example2())
		fmt.Println()
		fmt.Println("  propagation trace at δ=61 (every narrowing, in order — the")
		fmt.Println("  paper's Example-2 listing; ends with the contradiction on e3/s):")
		for _, step := range harness.Example2Propagation() {
			fmt.Printf("    %s\n", step)
		}
		fmt.Println()
	}
	if all || *fig23 {
		renderFig23()
		fmt.Println()
	}
	if all || *csa16 {
		harness.RenderCarrySkip(os.Stdout, harness.CarrySkip(16, 4, *budget))
		fmt.Println()
	}
	if all || *c1908 {
		harness.RenderAnecdote(os.Stdout, harness.Anecdote())
	}
}

// renderFig23 reproduces the Figures-2/3 narrative on a carry-skip
// adder: the timing check on the carry output propagates its
// last-transition interval to the reconvergence net X, local narrowing
// stalls at the ambiguous NAND, and the dynamic timing dominators
// (the block-boundary carries) recover the global implication.
func renderFig23() {
	c := gen.CarrySkipAdder(8, 4, 10)
	cout, _ := c.NetByName("cout")
	full := core.NewVerifier(c, core.Default())
	res, err := full.ExactFloatingDelay(cout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return
	}
	delta := res.Lower // the exact floating delay: plain narrowing stays consistent here
	fmt.Printf("Figures 2–3 — carry-skip adder (8 bits, blocks of 4), top %s, floating %s\n",
		full.Topological(), res.Delay)
	fmt.Printf("  timing check (cout, %s):\n", delta)

	v := core.NewVerifier(c, core.Options{})
	sys := v.SystemAfterFixpoint(cout, delta)
	fmt.Printf("  after the plain fixpoint the system is consistent: %v\n", !sys.Inconsistent())
	doms := dom.Dynamic(sys, cout, delta)
	fmt.Printf("  dynamic timing dominators (output towards inputs — the block\n")
	fmt.Printf("  boundary carries cK play the role of C5/C6 in Figure 2):\n")
	for i, n := range doms.Nets {
		fmt.Printf("    %-10s dynamic distance %s  (narrow to transitions ≥ %s)\n",
			c.Net(n).Name, doms.Dist[i], delta.Sub(doms.Dist[i]))
	}
	changed := dom.NarrowDominators(sys, doms, delta)
	still := sys.Fixpoint()
	fmt.Printf("  Corollary-1 narrowing changed domains: %v; system consistent afterwards: %v\n", changed, still)

	repHigh := full.Check(cout, delta.Add(1))
	fmt.Printf("  δ=%s: plain %s, after dominators %s, after stems %s, case analysis %s (%d backtracks)\n",
		delta.Add(1), repHigh.BeforeGITD, repHigh.AfterGITD, repHigh.AfterStem, repHigh.CaseAnalysis, maxI(repHigh.Backtracks, 0))
	rep := full.Check(cout, delta)
	fmt.Printf("  δ=%s: verdict %s", delta, rep.Final)
	if rep.Final == core.ViolationFound {
		fmt.Printf(" (witness %s, settle %s)", rep.Witness, rep.WitnessSettle)
	}
	fmt.Println()
	_ = circuit.InvalidNet
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
