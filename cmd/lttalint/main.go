// Command lttalint is the project's vet suite: every analyzer
// registered by internal/analysis/all, served over cmd/go's vettool
// protocol. Run it as
//
//	go build -o /tmp/lttalint ./cmd/lttalint
//	go vet -vettool=/tmp/lttalint ./...
//
// See DESIGN.md §11 for the invariants the suite enforces.
package main

import (
	"repro/internal/analysis"
	_ "repro/internal/analysis/all"
	"repro/internal/analysis/unitchecker"
)

func main() { unitchecker.Main(analysis.All()...) }
