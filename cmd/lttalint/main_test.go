package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestVettoolProtocol drives the built binary through cmd/go's real
// vettool protocol (-V=full handshake, -flags query, vet.cfg run)
// against a scratch module: one deliberately broken package must trip
// timesat, and a clean package must pass. This is the regression
// guard for the unitchecker wire format — the golden tests exercise
// the analyzers, not the driver.
func TestVettoolProtocol(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "lttalint")

	build := exec.Command(goBin, "build", "-o", tool, "repro/cmd/lttalint")
	build.Dir = "../.." // repo root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lttalint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("waveform/time.go", `package waveform

type Time int64

func (t Time) Add(d Time) Time { return t + d }
`)
	write("bad/bad.go", `package bad

import "scratch/waveform"

func Later(t waveform.Time) waveform.Time { return t + 1 }
`)
	write("good/good.go", `package good

import "scratch/waveform"

func Later(t waveform.Time) waveform.Time { return t.Add(1) }
`)

	vet := func(pkg string) (string, error) {
		cmd := exec.Command(goBin, "vet", "-vettool="+tool, pkg)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./bad/")
	if err == nil {
		t.Errorf("go vet on the broken package succeeded; want failure\n%s", out)
	}
	if !strings.Contains(out, "timesat") || !strings.Contains(out, "loses ±∞ saturation") {
		t.Errorf("go vet output missing the timesat finding:\n%s", out)
	}

	if out, err := vet("./good/"); err != nil {
		t.Errorf("go vet on the clean package failed: %v\n%s", err, out)
	}

	list := exec.Command(tool, "-list")
	out2, err := list.Output()
	if err != nil {
		t.Fatalf("lttalint -list: %v", err)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(string(out2), a.Name+"\t") {
			t.Errorf("lttalint -list output missing analyzer %s:\n%s", a.Name, out2)
		}
	}
	listJSON := exec.Command(tool, "-list", "-json")
	out3, err := listJSON.Output()
	if err != nil {
		t.Fatalf("lttalint -list -json: %v", err)
	}
	if !strings.Contains(string(out3), `"name": "lockguard"`) {
		t.Errorf("lttalint -list -json output not in the expected shape:\n%s", out3)
	}
}

const (
	tableBegin = "<!-- lttalint -list: begin"
	tableEnd   = "<!-- lttalint -list: end"
)

// TestReadmeLintingTable pins README's Linting table to the live
// analyzer registry (the same data `lttalint -list` prints): adding,
// removing, or re-documenting an analyzer without regenerating the
// table fails here instead of drifting silently.
func TestReadmeLintingTable(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	begin := strings.Index(readme, tableBegin)
	end := strings.Index(readme, tableEnd)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("README.md lacks the %q/%q markers", tableBegin, tableEnd)
	}
	var got []string
	for _, line := range strings.Split(readme[begin:end], "\n") {
		if strings.HasPrefix(line, "| `") {
			got = append(got, strings.TrimSpace(line))
		}
	}

	analyzers := analysis.All()
	sort.Slice(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })
	var want []string
	for _, a := range analyzers {
		want = append(want, fmt.Sprintf("| `%s` | %s |", a.Name, docLine(a.Doc)))
	}

	if len(got) != len(want) {
		t.Fatalf("README table has %d analyzer rows, registry has %d:\nREADME:\n%s\nregistry:\n%s",
			len(got), len(want), strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("README table row %d drifted:\n  have %s\n  want %s\n(regenerate from `lttalint -list`)",
				i, got[i], want[i])
		}
	}
}

// TestAnalyzerDocs keeps -list (and therefore the README table)
// renderable: every registered analyzer needs a non-empty one-line
// doc that doesn't break the markdown table.
func TestAnalyzerDocs(t *testing.T) {
	for _, a := range analysis.All() {
		doc := docLine(a.Doc)
		if strings.TrimSpace(doc) == "" {
			t.Errorf("analyzer %s has no one-line doc", a.Name)
		}
		if strings.Contains(doc, "|") {
			t.Errorf("analyzer %s doc line contains %q, which breaks the README table: %s", a.Name, "|", doc)
		}
	}
}

func docLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}
