package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolProtocol drives the built binary through cmd/go's real
// vettool protocol (-V=full handshake, -flags query, vet.cfg run)
// against a scratch module: one deliberately broken package must trip
// timesat, and a clean package must pass. This is the regression
// guard for the unitchecker wire format — the golden tests exercise
// the analyzers, not the driver.
func TestVettoolProtocol(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "lttalint")

	build := exec.Command(goBin, "build", "-o", tool, "repro/cmd/lttalint")
	build.Dir = "../.." // repo root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lttalint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("waveform/time.go", `package waveform

type Time int64

func (t Time) Add(d Time) Time { return t + d }
`)
	write("bad/bad.go", `package bad

import "scratch/waveform"

func Later(t waveform.Time) waveform.Time { return t + 1 }
`)
	write("good/good.go", `package good

import "scratch/waveform"

func Later(t waveform.Time) waveform.Time { return t.Add(1) }
`)

	vet := func(pkg string) (string, error) {
		cmd := exec.Command(goBin, "vet", "-vettool="+tool, pkg)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./bad/")
	if err == nil {
		t.Errorf("go vet on the broken package succeeded; want failure\n%s", out)
	}
	if !strings.Contains(out, "timesat") || !strings.Contains(out, "loses ±∞ saturation") {
		t.Errorf("go vet output missing the timesat finding:\n%s", out)
	}

	if out, err := vet("./good/"); err != nil {
		t.Errorf("go vet on the clean package failed: %v\n%s", err, out)
	}
}
