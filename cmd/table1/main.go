// Command table1 regenerates Table 1 of the paper on the ISCAS'85
// substitute suite: for every circuit it computes the exact
// floating-mode delay, then reports which stage decides the δ+1
// (refutation) and δ (test vector) checks, with backtrack counts and
// CPU times.
//
// Usage:
//
//	table1 [-budget N] [-only circuit] [-hist]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	budget := flag.Int("budget", 25000, "case-analysis backtrack budget per check (the paper abandons c6288-class searches; raise for exhaustive runs)")
	only := flag.String("only", "", "run a single suite circuit by name (e.g. c1908)")
	asJSON := flag.Bool("json", false, "emit rows as JSON instead of the text table")
	workers := flag.Int("parallel", 1, "fan per-output checks over N workers (verdicts unchanged)")
	stats := flag.Bool("stats", false, "print aggregated engine telemetry after the table")
	hist := flag.Bool("hist", false, "print latency/work distributions (p50/p90/p99 per stage) after the table")
	pprofLabels := flag.Bool("pprof-labels", false, "tag parallel per-output checks with pprof labels")
	noCone := flag.Bool("no-cone", false, "solve every check on the whole circuit instead of the sink's fan-in cone")
	noWarm := flag.Bool("no-warm-start", false, "solve every check cold instead of warm-starting repeat checks of a sink")
	flag.Parse()

	entries := gen.SubstituteSuite()
	if *only != "" {
		var filtered []gen.SuiteEntry
		for _, e := range entries {
			if e.Name == *only {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "table1: no suite circuit named %q\n", *only)
			os.Exit(1)
		}
		entries = filtered
	}

	if !*asJSON {
		fmt.Println("Table 1 — ISCAS'85 substitute suite (NOR implementations, d=10 per gate)")
		fmt.Println("Substitutes are synthetic stand-ins of comparable structure; see DESIGN.md §4.")
		fmt.Println()
	}
	var tracer *core.StatsTracer
	var histTracer *obs.Tracer
	var opts []harness.RowOption
	if *stats {
		tracer = new(core.StatsTracer)
		opts = append(opts, harness.WithTracer(tracer))
	}
	if *hist {
		histTracer = obs.NewTracer()
		opts = append(opts, harness.WithTracer(histTracer))
	}
	if *pprofLabels {
		opts = append(opts, harness.WithPprofLabels())
	}
	if *noCone {
		opts = append(opts, harness.WithoutConeSlicing())
	}
	if *noWarm {
		opts = append(opts, harness.WithoutWarmStart())
	}
	var rows []harness.Table1Row
	for _, e := range entries {
		rows = append(rows, harness.CircuitRowsParallel(e.Name, e.Circuit, *budget, *workers, opts...)...)
		// Render incrementally so long runs show progress.
	}
	if *asJSON {
		if err := harness.WriteJSON(os.Stdout, rows); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		if tracer != nil {
			fmt.Fprintln(os.Stderr, "engine:", tracer)
		}
		if histTracer != nil {
			histTracer.WriteSummary(os.Stderr)
		}
		return
	}
	harness.RenderTable1(os.Stdout, rows)
	fmt.Println()
	fmt.Println("Legend: P possible violation, N no violation, V test vector found,")
	fmt.Println("        A abandoned, C cancelled, - stage not needed,")
	fmt.Println("        E exact floating delay, U upper bound.")
	if tracer != nil {
		fmt.Println()
		fmt.Println("engine:", tracer)
	}
	if histTracer != nil {
		fmt.Println()
		histTracer.WriteSummary(os.Stdout)
	}
}
