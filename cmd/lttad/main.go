// Command lttad serves batch timing checks over HTTP/JSON: POST a
// netlist plus a batch of (sink, δ) checks or a δ-sweep to /v1/check
// and the daemon prepares the circuit once, fans the checks out over
// a bounded worker pool, and answers with per-check verdicts,
// witnesses, and engine statistics (NDJSON streaming on request).
//
// Circuits can also be uploaded once into the content-addressed
// registry (PUT /v1/circuits → stable sha256 hash) and then checked
// repeatedly via POST /v1/circuits/{hash}/check: warm checks reuse the
// cached prepared state — zero parses, zero core.Prepare calls — and
// concurrent cold checks on one hash coalesce onto a single
// preparation. -registry-size and -registry-bytes bound the cache (LRU
// beyond; entries pinned by running batches are never freed under
// them, see DESIGN.md §13).
//
// With -coordinator the daemon runs no checks itself: it shards each
// batch by (circuit, sink) rendezvous hashing over the listed worker
// daemons, uploads circuits to workers on demand, merges the per-shard
// NDJSON streams into one client-facing stream, requeues the checks of
// a failed worker onto survivors, and hedges stragglers after
// -hedge-after (see DESIGN.md §15 and the README's Clustering
// section). The wire protocol is identical either way — clients cannot
// tell a coordinator from a single daemon except by the placement
// metadata stamped on results.
//
// Usage:
//
//	lttad [-addr :8090] [-workers N] [-queue N]
//	      [-check-timeout D] [-batch-timeout D] [-drain-timeout D]
//	      [-max-body BYTES] [-max-checks N] [-debug-addr A]
//	      [-registry-size N] [-registry-bytes BYTES]
//	lttad -coordinator host1:8090,host2:8090,host3:8090
//	      [-hedge-after D] [-max-attempts N] [-probe-interval D] ...
//
// Overload and lifecycle semantics (see DESIGN.md §10):
//
//   - admission is bounded: at most -queue batches are in flight or
//     waiting; beyond that, submissions get 429 + Retry-After
//   - SIGTERM/SIGINT drains gracefully: new submissions get 503,
//     in-flight batches finish, and past -drain-timeout the remaining
//     checks are cancelled (each still answers, with verdict C)
//   - /healthz is pure liveness (always 200 while serving); /readyz is
//     readiness (503 while starting or draining) — point load
//     balancers at /readyz and restart-deciders at /healthz
//   - /metrics is the Prometheus text exposition (server counters,
//     per-stage latency histograms, runtime samples); /metrics.json
//     keeps the structured counter document
//   - logs are structured (log/slog): -log-format text|json and
//     -log-level debug|info|warn|error; at debug every check logs its
//     sink, δ, verdict, and duration under the batch id
//   - -trace-dir DIR writes a Perfetto-loadable trace_event timeline
//     per batch to DIR/batch-<id>.trace.json; on a coordinator the
//     timeline is cluster-wide — routing, per-attempt worker dispatch,
//     the workers' in-band check spans, and merge lanes, all under the
//     batch's distributed trace id
//   - GET /debug/checks (workers and coordinators alike) returns the
//     always-on flight recorder: the last -flight-last completed checks
//     and the -flight-slowest slowest ones with stage durations,
//     verdicts, placement, and trace ids, plus per-bucket latency
//     exemplars — introspection with zero configuration and O(1) cost
//     per check
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 0, "check-execution pool size (0 = all CPUs)")
	queue := flag.Int("queue", 64, "admission queue depth (concurrent batches before 429)")
	checkTimeout := flag.Duration("check-timeout", 0, "server-side wall-clock cap per check (0 = none)")
	batchTimeout := flag.Duration("batch-timeout", 0, "server-side wall-clock cap per batch (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-drain bound on SIGTERM/SIGINT")
	maxBody := flag.Int64("max-body", 32<<20, "request body byte cap")
	maxChecks := flag.Int("max-checks", 100000, "per-batch check-count cap")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	traceDir := flag.String("trace-dir", "", "write a trace_event timeline per batch to this directory")
	flightLast := flag.Int("flight-last", 0, "flight recorder: recent checks kept for /debug/checks (0 = default 256)")
	flightSlowest := flag.Int("flight-slowest", 0, "flight recorder: slowest checks kept for /debug/checks (0 = default 32)")
	registrySize := flag.Int("registry-size", 0, "circuit-registry capacity in circuits (0 = default 128)")
	registryBytes := flag.Int64("registry-bytes", 0, "circuit-registry resident-byte cap (0 = default 1 GiB, negative = unlimited)")
	coordinator := flag.String("coordinator", "", "run as a cluster coordinator over this comma-separated worker list (addr[,addr...]) instead of executing checks")
	hedgeAfter := flag.Duration("hedge-after", 2*time.Second, "coordinator: hedge straggling checks onto a second worker after this long (negative = never)")
	maxAttempts := flag.Int("max-attempts", 3, "coordinator: dispatch attempts per check across requeues and hedges")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "coordinator: worker /readyz probe period (negative = on-demand only)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lttad:", err)
		os.Exit(2)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "lttad:", err)
			os.Exit(1)
		}
	}

	ctx := context.Background()
	// Both roles share the wire protocol and the drain lifecycle; the
	// coordinator just delegates the checks to its workers.
	var s interface {
		http.Handler
		BeginDrain()
		Shutdown(context.Context) error
	}
	if *coordinator != "" {
		s = server.NewCoordinator(server.CoordConfig{
			Workers:             strings.Split(*coordinator, ","),
			QueueDepth:          *queue,
			MaxBodyBytes:        *maxBody,
			MaxChecks:           *maxChecks,
			HedgeAfter:          *hedgeAfter,
			MaxAttempts:         *maxAttempts,
			ProbeInterval:       *probeInterval,
			RegistryMaxCircuits: *registrySize,
			Logger:              logger,
			TraceDir:            *traceDir,
			FlightLast:          *flightLast,
			FlightSlowest:       *flightSlowest,
		})
	} else {
		s = server.New(server.Config{
			Workers:      *workers,
			QueueDepth:   *queue,
			MaxBodyBytes: *maxBody,
			MaxChecks:    *maxChecks,
			CheckTimeout: *checkTimeout,
			BatchTimeout: *batchTimeout,
			Logger:       logger,
			TraceDir:     *traceDir,

			FlightLast:    *flightLast,
			FlightSlowest: *flightSlowest,

			RegistryMaxCircuits: *registrySize,
			RegistryMaxBytes:    *registryBytes,
		})
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.LogAttrs(ctx, slog.LevelError, "debug server failed",
					slog.String("error", err.Error()))
			}
		}()
		logger.LogAttrs(ctx, slog.LevelInfo, "debug server up", slog.String("addr", *debugAddr))
	}

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.LogAttrs(ctx, slog.LevelInfo, "serving",
		slog.String("addr", *addr), slog.Int("workers", *workers), slog.Int("queue", *queue))

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "lttad:", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}

	logger.LogAttrs(ctx, slog.LevelInfo, "draining", slog.Duration("deadline", *drainTimeout))
	dctx, cancel := context.WithTimeout(ctx, *drainTimeout)
	defer cancel()
	// Reject new submissions at once, then drain the pool (cancelling
	// leftover checks at the deadline) while the HTTP server closes the
	// listener and waits for the in-flight responses those batches are
	// still writing.
	s.BeginDrain()
	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(dctx) }()
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.LogAttrs(ctx, slog.LevelWarn, "http shutdown", slog.String("error", err.Error()))
	}
	if err := <-drained; err != nil {
		logger.LogAttrs(ctx, slog.LevelWarn, "drain deadline hit, remaining checks cancelled",
			slog.String("error", err.Error()))
	}
	logger.LogAttrs(ctx, slog.LevelInfo, "stopped")
}
