// Command lttad serves batch timing checks over HTTP/JSON: POST a
// netlist plus a batch of (sink, δ) checks or a δ-sweep to /v1/check
// and the daemon prepares the circuit once, fans the checks out over
// a bounded worker pool, and answers with per-check verdicts,
// witnesses, and engine statistics (NDJSON streaming on request).
//
// Usage:
//
//	lttad [-addr :8090] [-workers N] [-queue N]
//	      [-check-timeout D] [-batch-timeout D] [-drain-timeout D]
//	      [-max-body BYTES] [-max-checks N] [-debug-addr A]
//
// Overload and lifecycle semantics (see DESIGN.md §10):
//
//   - admission is bounded: at most -queue batches are in flight or
//     waiting; beyond that, submissions get 429 + Retry-After
//   - SIGTERM/SIGINT drains gracefully: new submissions get 503,
//     in-flight batches finish, and past -drain-timeout the remaining
//     checks are cancelled (each still answers, with verdict C)
//   - /healthz reports ok/draining; /metrics reports server counters,
//     the engine's ltta.* expvars, and aggregated check telemetry
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 0, "check-execution pool size (0 = all CPUs)")
	queue := flag.Int("queue", 64, "admission queue depth (concurrent batches before 429)")
	checkTimeout := flag.Duration("check-timeout", 0, "server-side wall-clock cap per check (0 = none)")
	batchTimeout := flag.Duration("batch-timeout", 0, "server-side wall-clock cap per batch (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-drain bound on SIGTERM/SIGINT")
	maxBody := flag.Int64("max-body", 32<<20, "request body byte cap")
	maxChecks := flag.Int("max-checks", 100000, "per-batch check-count cap")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address")
	flag.Parse()

	s := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		MaxChecks:    *maxChecks,
		CheckTimeout: *checkTimeout,
		BatchTimeout: *batchTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("lttad: debug server: %v", err)
			}
		}()
		log.Printf("lttad: debug server on %s (/debug/vars, /debug/pprof)", *debugAddr)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("lttad: serving on %s (workers=%d, queue=%d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "lttad:", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}

	log.Printf("lttad: draining (deadline %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Reject new submissions at once, then drain the pool (cancelling
	// leftover checks at the deadline) while the HTTP server closes the
	// listener and waits for the in-flight responses those batches are
	// still writing.
	s.BeginDrain()
	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(dctx) }()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("lttad: http shutdown: %v", err)
	}
	if err := <-drained; err != nil {
		log.Printf("lttad: drain deadline hit, remaining checks cancelled: %v", err)
	}
	log.Printf("lttad: stopped")
}
