// Command genckt emits the library's generator circuits as .bench
// netlists (with !delay back-annotation) for use with ltta or external
// tools.
//
// Usage:
//
//	genckt -kind hrapcenko|falsepath|rca|csa|mult|c17|parity|cmp|random|suite
//	       [-n bits] [-block k] [-d delay] [-seed s] [-gates g] [-o file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/verilog"
)

func main() {
	kind := flag.String("kind", "hrapcenko", "circuit family to generate")
	format := flag.String("format", "bench", "output format: bench or verilog")
	n := flag.Int("n", 8, "bit width / size parameter")
	block := flag.Int("block", 4, "carry-skip block size")
	d := flag.Int64("d", 10, "gate delay")
	seed := flag.Int64("seed", 1, "random seed")
	gates := flag.Int("gates", 100, "random circuit gate count")
	out := flag.String("o", "", "output file (default stdout; for -kind suite, a directory)")
	flag.Parse()

	if *kind == "suite" {
		dir := *out
		if dir == "" {
			dir = "."
		}
		for _, e := range gen.SubstituteSuite() {
			path := filepath.Join(dir, e.Name+".bench")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := circuit.WriteBench(f, e.Circuit); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d gates)\n", path, e.Circuit.NumGates())
		}
		return
	}

	var c *circuit.Circuit
	switch *kind {
	case "hrapcenko":
		c = gen.Hrapcenko(*d)
	case "falsepath":
		c = gen.FalsePathChain(*n, *d)
	case "rca":
		c = gen.RippleCarryAdder(*n, *d)
	case "csa":
		c = gen.CarrySkipAdder(*n, *block, *d)
	case "mult":
		c = gen.ArrayMultiplier(*n, *d)
	case "c17":
		c = gen.C17(*d)
	case "parity":
		c = gen.ParityTree(*n, *d)
	case "cmp":
		c = gen.Comparator(*n, *d)
	case "random":
		c = gen.Random(*seed, *n, *gates, *d)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "bench":
		err = circuit.WriteBench(w, c)
	case "verilog", "v":
		err = verilog.Write(w, c)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genckt:", err)
	os.Exit(1)
}
