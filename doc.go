// Package repro reproduces "Propagation of Last-Transition-Time
// Constraints in Gate-Level Timing Analysis" (Kassab, Cerny, Aourid,
// Krodel — DATE 1998): floating-mode gate-level delay verification by
// waveform narrowing, strengthened with global timing implications
// (static/dynamic timing dominators, static learning) and a FAN-derived
// case analysis that finds violating test vectors or proves none exist.
//
// The implementation lives under internal/:
//
//	internal/waveform    abstract waveforms and signals (§3.1)
//	internal/circuit     gate-level netlists, .bench I/O, NOR mapping
//	internal/delay       topological delays and the STA baseline
//	internal/sim         floating-mode reference simulators (oracles)
//	internal/constraint  gate constraints, scheduler, fixpoint (§3.2–3.3)
//	internal/dom         static/dynamic timing dominators (§4)
//	internal/learn       static learning implications (§4)
//	internal/scoap       SCOAP controllability (§5 guidance)
//	internal/core        verify/evaluate, stem correlation, case analysis (§5)
//	internal/gen         workload generators incl. the ISCAS substitute suite
//	internal/harness     Table-1/figure regeneration used by cmd/ and benches
//
// The benchmarks in this package regenerate every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for paper-vs-measured.
package repro
