// iscas runs one Table-1 row pair on a circuit of the substitute suite
// (default c17, the only exactly-reproduced ISCAS'85 netlist) and
// prints it in the paper's layout.
//
//	go run ./examples/iscas [circuit]
package main

import (
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/harness"
)

func main() {
	name := "c17"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	for _, e := range gen.SubstituteSuite() {
		if e.Name != name {
			continue
		}
		st := e.Circuit.Stats()
		kind := "exact ISCAS'85 netlist"
		if e.Substituted {
			kind = "synthetic substitute (see DESIGN.md §4)"
		}
		fmt.Printf("%s — %s: %d gates, %d levels\n", e.Name, kind, st.Gates, st.Levels)
		fmt.Printf("original paper row: top %d, exact δ %d\n\n", e.PaperTop, e.PaperDelta)
		rows := harness.CircuitRows(e.Name, e.Circuit, 200000)
		harness.RenderTable1(os.Stdout, rows)
		return
	}
	fmt.Fprintf(os.Stderr, "no suite circuit named %q\n", name)
	os.Exit(1)
}
