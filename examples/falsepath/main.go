// falsepath walks through the paper's Example 2 on the Figure-1
// circuit: the topological delay is 70, but the 70-long path is false —
// waveform narrowing alone proves that no transition can reach the
// output at or after t = 61, and case analysis certifies a vector for
// t = 60.
//
//	go run ./examples/falsepath
package main

import (
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	tr := harness.Example2()
	harness.RenderExample2(os.Stdout, tr)

	fmt.Println()
	switch {
	case tr.RefutedAt61 && tr.Floating == 60:
		fmt.Println("Matches the paper: δ=61 refuted without case analysis, exact floating delay 60 < top 70.")
	default:
		fmt.Println("MISMATCH with the paper — see EXPERIMENTS.md.")
	}
}
