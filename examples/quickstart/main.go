// Quickstart: build a small netlist, run a floating-mode timing check,
// and compute the exact floating delay of an output.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/core"
)

func main() {
	// A four-gate netlist with a false path: the long chain through n2
	// is gated by b, and b also gates the short path, so the two
	// requirements conflict for late transitions.
	b := circuit.NewBuilder("quickstart")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.BUFFER, 10, "n1", "a")
	b.Gate(circuit.AND, 10, "n2", "n1", "b")
	b.Gate(circuit.NOT, 10, "nb", "b")
	b.Gate(circuit.OR, 10, "z", "n2", "nb")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	v := core.NewVerifier(c, core.Default())
	z, _ := c.NetByName("z")
	fmt.Printf("circuit %q: %d gates, topological delay %s\n",
		c.Name, c.NumGates(), v.Topological())

	// Timing check: can z still change at or after t = 40?
	rep := v.Check(z, 40)
	fmt.Printf("check (z, 40): %s\n", rep.Final)

	// Exact floating-mode delay with a witnessing input vector.
	res, err := v.ExactFloatingDelay(z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact floating delay of z: %s (witness vector %s, PI order a,b)\n",
		res.Delay, res.Witness)

	// The same netlist as .bench text, for the ltta command-line tool.
	fmt.Println("\n.bench form:")
	fmt.Print(circuit.BenchString(c))
}
