// carryskip reproduces the paper's carry-skip adder material: the
// Figures-2/3 dominator narrative (the last-transition interval crosses
// the ambiguous skip reconvergence only via dynamic timing dominators)
// and the Section-6 experiment (exact floating delay of a carry-skip
// adder far below its topological delay).
//
//	go run ./examples/carryskip [bits [block]]
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/harness"
)

func main() {
	bits, block := 8, 4
	if len(os.Args) > 1 {
		bits, _ = strconv.Atoi(os.Args[1])
	}
	if len(os.Args) > 2 {
		block, _ = strconv.Atoi(os.Args[2])
	}

	// Part 1: the dominator chain on the carry output (Figures 2–3).
	c := gen.CarrySkipAdder(bits, block, 10)
	cout, _ := c.NetByName("cout")
	v := core.NewVerifier(c, core.Options{})
	delta := v.Topological().Sub(19)
	sys := v.SystemAfterFixpoint(cout, delta)
	doms := dom.Dynamic(sys, cout, delta)
	fmt.Printf("carry-skip %d/%d: %d gates, top %s; check (cout, %s)\n",
		bits, block, c.NumGates(), v.Topological(), delta)
	fmt.Printf("dynamic timing dominators (block-boundary carries appear as c1..cK):\n")
	for i, n := range doms.Nets {
		fmt.Printf("  %-12s distance %s\n", c.Net(n).Name, doms.Dist[i])
	}

	// Part 2: the exact-delay experiment.
	fmt.Println()
	harness.RenderCarrySkip(os.Stdout, harness.CarrySkip(bits, block, 200000))
}
