// transition demonstrates the two-vector transition mode: the same
// waveform-narrowing engine analyses a specific vector pair <v1, v2>
// by pinning every input's abstract signal (a constant waveform for
// unchanged bits, a transition at exactly t = 0 for changed ones), and
// the resulting per-net bounds are compared against the exact
// two-vector simulation — including hazard pulses that a plain logic
// view would miss.
//
//	go run ./examples/transition
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// A static-1 hazard: z = OR(a, NOT a) is logically constant 1, but
	// a falling a produces a glitch whose tail the analysis must bound.
	b := circuit.NewBuilder("hazard")
	b.Input("a")
	b.Input("en")
	b.Gate(circuit.NOT, 10, "na", "a")
	b.Gate(circuit.OR, 10, "z0", "a", "na")
	b.Gate(circuit.AND, 10, "z", "z0", "en")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	v := core.NewVerifier(c, core.Default())
	z, _ := c.NetByName("z")

	show := func(v1, v2 sim.Vector) {
		pb, err := v.CheckPair(v1, v2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pair %s → %s: exact last transition of z = %s, narrowing bound = %s\n",
			v1, v2, pb.Exact[z], pb.Bound[z])
	}
	fmt.Println("two-vector transition mode on the hazard circuit (d=10 per gate):")
	show(sim.Vector{1, 1}, sim.Vector{0, 1}) // falling a: glitch via the NOT path
	show(sim.Vector{0, 1}, sim.Vector{1, 1}) // rising a: no glitch
	show(sim.Vector{1, 0}, sim.Vector{1, 1}) // enable rises: output rises once

	// Exhaustive transition-mode delay vs floating-mode delay.
	td, p1, p2, err := sim.TransitionDelayExhaustive(c, z)
	if err != nil {
		log.Fatal(err)
	}
	fd, _, err := sim.FloatingDelayExhaustive(c, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransition-mode delay: %s (worst pair %s → %s)\n", td, p1, p2)
	fmt.Printf("floating-mode delay:   %s (always ≥ transition mode)\n", fd)
}
