package repro_test

// End-to-end integration tests: the flows the examples and command-line
// tools exercise, asserted tightly enough to serve as acceptance tests
// for the reproduction (the headline numbers of the paper that must
// hold exactly).

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/sdf"
	"repro/internal/sim"
)

// TestPaperHeadlines asserts the paper's exactly-reproducible claims.
func TestPaperHeadlines(t *testing.T) {
	// Figure 1 / Example 2: top 70, floating 60, δ=61 refuted by plain
	// narrowing without case analysis.
	tr := harness.Example2()
	if tr.Top != 70 || tr.Floating != 60 || !tr.RefutedAt61 {
		t.Fatalf("Example 2 mismatch: %+v", tr)
	}

	// Carry-skip adders: floating delay strictly below topological,
	// refutation at δ+1 and a certified witness at δ.
	ex := harness.CarrySkip(16, 4, 200000)
	if !ex.Exact || ex.Floating >= ex.Top {
		t.Fatalf("carry-skip 16 mismatch: %+v", ex)
	}

	// c1908-style anecdote: dominators prove a bound plain narrowing
	// cannot, far below the topological delay.
	an := harness.Anecdote()
	if an.WithDomVerdict != core.NoViolation || an.PlainVerdict != core.PossibleViolation {
		t.Fatalf("anecdote mismatch: %+v", an)
	}
	if an.ProvedBound >= an.Top {
		t.Fatalf("anecdote bound %s not below top %s", an.ProvedBound, an.Top)
	}
}

// TestBenchSDFRoundTripFlow drives the ltta-style flow: generate a
// circuit, serialise to .bench, re-read, back-annotate via SDF, check.
func TestBenchSDFRoundTripFlow(t *testing.T) {
	src := circuit.BenchString(gen.C17(10))
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: 1, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	// Delays round-trip through the !delay directives.
	if delay.New(c).Topological() != 30 {
		t.Fatal("delays lost in round trip")
	}
	// SDF override: make G22's driver slower; topological must move.
	an, err := sdf.ApplyString(c, `
(DELAYFILE (TIMESCALE 1ps)
  (CELL (CELLTYPE "NAND2") (INSTANCE G22)
    (DELAY (ABSOLUTE (IOPATH a y (25))))))
`)
	if err != nil {
		t.Fatal(err)
	}
	if an.Applied != 1 {
		t.Fatalf("applied = %d", an.Applied)
	}
	if got := delay.New(c).Topological(); got != 45 {
		t.Fatalf("top after SDF = %s, want 45", got)
	}
	v := core.NewVerifier(c, core.Default())
	g22, _ := c.NetByName("G22")
	res, err := v.ExactFloatingDelay(g22)
	if err != nil || !res.Exact {
		t.Fatalf("exact delay failed: %v %+v", err, res)
	}
	want, _, err := sim.FloatingDelayExhaustive(c, g22)
	if err != nil || res.Delay != want {
		t.Fatalf("engine %s vs oracle %s (%v)", res.Delay, want, err)
	}
}

// TestSuiteRowShapes verifies the Table-1 qualitative shape on the fast
// suite circuits: the δ+1 check is refuted, the δ check witnessed, and
// the designated showcase circuits are decided by the designated stage.
func TestSuiteRowShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds")
	}
	wantStage := map[string]string{
		"c1908": "dominators", // the paper's dominator showcase
		"c2670": "stems",      // the paper's stem-correlation showcase
	}
	for _, e := range gen.SubstituteSuite() {
		switch e.Name {
		case "c17", "c1908", "c2670", "c880":
		default:
			continue // keep the integration test fast
		}
		rows := harness.CircuitRows(e.Name, e.Circuit, 200000)
		high, low := rows[0], rows[1]
		if low.CAResult != core.ViolationFound {
			t.Errorf("%s: δ row not witnessed: %+v", e.Name, low)
		}
		stage := "plain"
		switch {
		case high.BeforeGITD == core.NoViolation:
			stage = "plain"
		case high.AfterGITD == core.NoViolation:
			stage = "dominators"
		case high.AfterStem == core.NoViolation:
			stage = "stems"
		default:
			stage = "case-analysis"
		}
		if want, ok := wantStage[e.Name]; ok && stage != want {
			t.Errorf("%s: δ+1 decided by %s, want %s (row %+v)", e.Name, stage, want, high)
		}
	}
}

// TestLongestPathsAgainstVerifier cross-checks the path enumerator: the
// longest structural path equals the topological arrival, and the
// engine's exact floating delay never exceeds it.
func TestLongestPathsAgainstVerifier(t *testing.T) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	paths := delay.KLongestPaths(c, s, 4)
	if len(paths) == 0 || paths[0].Length != 70 {
		t.Fatalf("longest path = %+v", paths)
	}
	names := strings.Join(delay.PathNames(c, paths[0]), " ")
	if !strings.HasSuffix(names, "s") {
		t.Fatalf("path does not end at s: %s", names)
	}
	v := core.NewVerifier(c, core.Default())
	res, err := v.ExactFloatingDelay(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > paths[0].Length {
		t.Fatal("floating delay cannot exceed the longest structural path")
	}
}
