// Package sdf implements the pragmatic subset of the Standard Delay
// Format needed to back-annotate gate delays onto a netlist — the
// "processing SDF backannotation" the paper lists as the path to
// industrial circuits. Supported constructs:
//
//	(DELAYFILE (SDFVERSION "…") (DESIGN "…") (TIMESCALE 1ns)
//	  (CELL (CELLTYPE "NAND2") (INSTANCE g10)
//	    (DELAY (ABSOLUTE (IOPATH a y (2:3:4) (2:3:4))))))
//
// Instances are matched to gates by the gate's output-net name (the
// usual convention for netlists whose gates are named by the nets they
// drive). Each IOPATH value is an rtriple min:typ:max or a single
// number; the gate's d_max becomes the largest max over its IOPATHs and
// d_min the smallest min. Values are scaled by TIMESCALE into integer
// picoseconds. Unsupported constructs are skipped, not rejected.
package sdf

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// Annotation is the outcome of applying an SDF file.
type Annotation struct {
	// Design and Version echo the file header (may be empty).
	Design, Version string
	// TimescalePS is the multiplier applied to raw values (picoseconds
	// per SDF unit).
	TimescalePS float64
	// Applied counts gates whose delays were back-annotated.
	Applied int
	// Missing lists INSTANCE names with no matching gate.
	Missing []string
}

// Apply parses SDF from r and back-annotates the circuit's gate delays
// in place.
func Apply(c *circuit.Circuit, r io.Reader) (*Annotation, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sdf: read: %v", err)
	}
	root, err := parse(string(src))
	if err != nil {
		return nil, err
	}
	if root.head() != "DELAYFILE" {
		return nil, fmt.Errorf("sdf: top-level form is %q, want DELAYFILE", root.head())
	}
	an := &Annotation{TimescalePS: 1000} // SDF default timescale: 1ns
	for _, form := range root.lists() {
		switch form.head() {
		case "SDFVERSION":
			an.Version = form.atomAt(1)
		case "DESIGN":
			an.Design = form.atomAt(1)
		case "TIMESCALE":
			ts, err := parseTimescale(form.atomsAfterHead())
			if err != nil {
				return nil, err
			}
			an.TimescalePS = ts
		case "CELL":
			if err := applyCell(c, form, an); err != nil {
				return nil, err
			}
		}
	}
	return an, nil
}

// ApplyString is Apply over a string.
func ApplyString(c *circuit.Circuit, s string) (*Annotation, error) {
	return Apply(c, strings.NewReader(s))
}

func applyCell(c *circuit.Circuit, cell *node, an *Annotation) error {
	instance := ""
	var dmax, dmin float64 = -1, math.MaxFloat64
	for _, form := range cell.lists() {
		switch form.head() {
		case "INSTANCE":
			instance = form.atomAt(1)
		case "DELAY":
			for _, abs := range form.lists() {
				if abs.head() != "ABSOLUTE" && abs.head() != "INCREMENT" {
					continue
				}
				for _, iop := range abs.lists() {
					if iop.head() != "IOPATH" {
						continue
					}
					for _, val := range iop.lists() {
						lo, hi, err := parseTriple(val)
						if err != nil {
							return err
						}
						if hi > dmax {
							dmax = hi
						}
						if lo < dmin {
							dmin = lo
						}
					}
				}
			}
		}
	}
	if instance == "" || dmax < 0 {
		return nil // header cell or no delays: skip
	}
	id, ok := c.NetByName(instance)
	if !ok || c.Net(id).Driver == circuit.InvalidGate {
		an.Missing = append(an.Missing, instance)
		return nil
	}
	g := c.Gate(c.Net(id).Driver)
	g.Delay = int64(math.Round(dmax * an.TimescalePS))
	g.DMin = int64(math.Round(dmin * an.TimescalePS))
	an.Applied++
	return nil
}

// parseTriple reads an rtriple list node: (min:typ:max) or (v). The
// node's atoms were tokenised as one string.
func parseTriple(n *node) (lo, hi float64, err error) {
	s := strings.TrimSpace(n.raw)
	if s == "" {
		return 0, 0, fmt.Errorf("sdf: empty delay value")
	}
	parts := strings.Split(s, ":")
	switch len(parts) {
	case 1:
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return 0, 0, fmt.Errorf("sdf: bad delay value %q", s)
		}
		return v, v, nil
	case 3:
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("sdf: bad rtriple %q", s)
		}
		return lo, hi, nil
	default:
		return 0, 0, fmt.Errorf("sdf: bad delay value %q", s)
	}
}

// parseTimescale converts forms like (TIMESCALE 1ns), (TIMESCALE 100 ps)
// into picoseconds per unit.
func parseTimescale(atoms []string) (float64, error) {
	joined := strings.Join(atoms, "")
	i := 0
	for i < len(joined) && (joined[i] == '.' || joined[i] >= '0' && joined[i] <= '9') {
		i++
	}
	numStr, unit := joined[:i], strings.ToLower(joined[i:])
	if numStr == "" {
		numStr = "1"
	}
	num, err := strconv.ParseFloat(numStr, 64)
	if err != nil {
		return 0, fmt.Errorf("sdf: bad TIMESCALE %q", joined)
	}
	mult, ok := map[string]float64{"s": 1e12, "ms": 1e9, "us": 1e6, "ns": 1e3, "ps": 1, "fs": 1e-3}[unit]
	if !ok {
		return 0, fmt.Errorf("sdf: bad TIMESCALE unit %q", unit)
	}
	return num * mult, nil
}

// node is an S-expression: either an atom (raw non-empty, children nil)
// or a list of children. For list nodes raw holds the concatenated
// leading atom text, convenient for delay values like "2:3:4".
type node struct {
	raw      string
	children []*node
	isList   bool
}

func (n *node) head() string {
	if !n.isList || len(n.children) == 0 {
		return ""
	}
	return strings.ToUpper(n.children[0].raw)
}

func (n *node) lists() []*node {
	var out []*node
	for _, c := range n.children {
		if c.isList {
			out = append(out, c)
		}
	}
	return out
}

func (n *node) atomAt(i int) string {
	if i < len(n.children) && !n.children[i].isList {
		return strings.Trim(n.children[i].raw, `"`)
	}
	return ""
}

func (n *node) atomsAfterHead() []string {
	var out []string
	for _, c := range n.children[1:] {
		if !c.isList {
			out = append(out, c.raw)
		}
	}
	return out
}

// parse tokenises and builds the S-expression tree.
func parse(src string) (*node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pos := 0
	var rec func() (*node, error)
	rec = func() (*node, error) {
		if pos >= len(toks) {
			return nil, fmt.Errorf("sdf: unexpected end of input")
		}
		t := toks[pos]
		pos++
		if t == "(" {
			n := &node{isList: true}
			for {
				if pos >= len(toks) {
					return nil, fmt.Errorf("sdf: missing )")
				}
				if toks[pos] == ")" {
					pos++
					// Cache the atoms' text for value parsing.
					var raws []string
					for _, c := range n.children {
						if !c.isList {
							raws = append(raws, c.raw)
						}
					}
					n.raw = strings.Join(raws, "")
					return n, nil
				}
				child, err := rec()
				if err != nil {
					return nil, err
				}
				n.children = append(n.children, child)
			}
		}
		if t == ")" {
			return nil, fmt.Errorf("sdf: unbalanced )")
		}
		return &node{raw: t}, nil
	}
	root, err := rec()
	if err != nil {
		return nil, err
	}
	if pos != len(toks) {
		return nil, fmt.Errorf("sdf: trailing tokens after top-level form")
	}
	return root, nil
}

func lex(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sdf: unterminated string")
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		default:
			j := i
			for j < len(src) && !strings.ContainsRune("() \t\n\r\"", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}
