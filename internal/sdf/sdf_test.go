package sdf

import (
	"strings"
	"testing"

	"repro/internal/circuit"
)

func mustBuild(t testing.TB, src string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: 10})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const testCkt = `
INPUT(a)
INPUT(b)
OUTPUT(z)
x = AND(a, b)
z = OR(x, b)
`

const testSDF = `
(DELAYFILE
  (SDFVERSION "3.0")
  (DESIGN "testckt")
  (TIMESCALE 1ns)
  (CELL (CELLTYPE "AND2") (INSTANCE x)
    (DELAY (ABSOLUTE
      (IOPATH a y (2:3:4) (2:3:4))
      (IOPATH b y (1:2:3) (1:2:3))
    ))
  )
  (CELL (CELLTYPE "OR2") (INSTANCE z)
    (DELAY (ABSOLUTE
      (IOPATH a y (5))
    ))
  )
)
`

func gateOf(t testing.TB, c *circuit.Circuit, net string) *circuit.Gate {
	t.Helper()
	id, ok := c.NetByName(net)
	if !ok {
		t.Fatalf("no net %q", net)
	}
	return c.Gate(c.Net(id).Driver)
}

func TestApplyBasic(t *testing.T) {
	c := mustBuild(t, testCkt)
	an, err := ApplyString(c, testSDF)
	if err != nil {
		t.Fatal(err)
	}
	if an.Design != "testckt" || an.Version != "3.0" {
		t.Fatalf("header wrong: %+v", an)
	}
	if an.Applied != 2 || len(an.Missing) != 0 {
		t.Fatalf("applied %d missing %v", an.Applied, an.Missing)
	}
	// 1ns timescale → values in ps: max over IOPATHs.
	if g := gateOf(t, c, "x"); g.Delay != 4000 || g.DMin != 1000 {
		t.Fatalf("x delays = %d/%d, want 4000/1000", g.Delay, g.DMin)
	}
	if g := gateOf(t, c, "z"); g.Delay != 5000 || g.DMin != 5000 {
		t.Fatalf("z delays = %d/%d, want 5000/5000", g.Delay, g.DMin)
	}
}

func TestApplyTimescalePs(t *testing.T) {
	c := mustBuild(t, testCkt)
	sdf := strings.Replace(testSDF, "1ns", "100ps", 1)
	if _, err := ApplyString(c, sdf); err != nil {
		t.Fatal(err)
	}
	if g := gateOf(t, c, "x"); g.Delay != 400 {
		t.Fatalf("x delay = %d, want 400 (100ps scale)", g.Delay)
	}
}

func TestApplyMissingInstance(t *testing.T) {
	c := mustBuild(t, testCkt)
	sdf := strings.Replace(testSDF, "(INSTANCE x)", "(INSTANCE ghost)", 1)
	an, err := ApplyString(c, sdf)
	if err != nil {
		t.Fatal(err)
	}
	if an.Applied != 1 || len(an.Missing) != 1 || an.Missing[0] != "ghost" {
		t.Fatalf("annotation = %+v", an)
	}
}

func TestApplyDefaultTimescale(t *testing.T) {
	c := mustBuild(t, testCkt)
	sdf := `(DELAYFILE (CELL (INSTANCE z) (DELAY (ABSOLUTE (IOPATH a y (2))))))`
	if _, err := ApplyString(c, sdf); err != nil {
		t.Fatal(err)
	}
	if g := gateOf(t, c, "z"); g.Delay != 2000 {
		t.Fatalf("default timescale must be 1ns: got %d", g.Delay)
	}
}

func TestParseErrors(t *testing.T) {
	c := mustBuild(t, testCkt)
	cases := []struct {
		src, wantSub string
	}{
		{`(CELL)`, "DELAYFILE"},
		{`(DELAYFILE (CELL (INSTANCE z) (DELAY (ABSOLUTE (IOPATH a y (x:y:z))))))`, "bad rtriple"},
		{`(DELAYFILE`, "missing )"},
		{`(DELAYFILE) extra`, "trailing"},
		{`(DELAYFILE (TIMESCALE 1lightyear))`, "TIMESCALE"},
		{`(DELAYFILE (SDFVERSION "unterminated`, "unterminated string"},
	}
	for _, tc := range cases {
		_, err := ApplyString(c, tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("src %q: err = %v, want containing %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestCommentsSkipped(t *testing.T) {
	c := mustBuild(t, testCkt)
	sdf := "// leading comment\n" + testSDF
	if _, err := ApplyString(c, sdf); err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedConstructsIgnored(t *testing.T) {
	c := mustBuild(t, testCkt)
	sdf := `
(DELAYFILE
  (TIMESCALE 1ps)
  (CELL (CELLTYPE "AND2") (INSTANCE x)
    (DELAY (ABSOLUTE (IOPATH a y (7))))
    (TIMINGCHECK (SETUP d (posedge clk) (3)))
  )
)`
	an, err := ApplyString(c, sdf)
	if err != nil {
		t.Fatal(err)
	}
	if an.Applied != 1 {
		t.Fatalf("applied = %d", an.Applied)
	}
	if g := gateOf(t, c, "x"); g.Delay != 7 {
		t.Fatalf("x delay = %d, want 7", g.Delay)
	}
}
