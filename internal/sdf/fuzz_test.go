package sdf

import (
	"testing"

	"repro/internal/circuit"
)

// FuzzApply asserts the SDF subset parser never panics on arbitrary
// input and leaves the circuit structurally intact.
func FuzzApply(f *testing.F) {
	f.Add(testSDF)
	f.Add("(DELAYFILE)")
	f.Add("(DELAYFILE (TIMESCALE 10ps) (CELL (INSTANCE x)))")
	f.Add("((((")
	f.Add(`(DELAYFILE (CELL (INSTANCE z) (DELAY (ABSOLUTE (IOPATH a y (1:2:3))))))`)
	f.Add(`(DELAYFILE "str with ) inside")`)
	f.Add("(DELAYFILE (TIMESCALE 1ns) (CELL (CELLTYPE \"NAND2\") (INSTANCE g1) (DELAY (ABSOLUTE (IOPATH a y (10))))))")
	f.Add("(DELAYFILE (CELL (INSTANCE g1) (DELAY (ABSOLUTE (IOPATH a y (-5))))))")
	f.Add("(DELAYFILE (CELL (INSTANCE *) (DELAY (ABSOLUTE (IOPATH a y (1.5:2.5:3.5))))))")
	f.Add("(DELAYFILE (TIMESCALE 100ps) (CELL (INSTANCE g1) (DELAY (INCREMENT (IOPATH a y (2))))))")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := circuit.ParseBenchString(testCkt, circuit.BenchOptions{DefaultDelay: 10})
		if err != nil {
			t.Fatal(err)
		}
		gates := c.NumGates()
		_, _ = ApplyString(c, src) // must not panic
		if c.NumGates() != gates {
			t.Fatal("SDF application must not change the netlist structure")
		}
		// Delays must remain non-negative (rtriples can be weird but
		// parse-rejected values never land).
		for i := 0; i < gates; i++ {
			if c.Gate(circuit.GateID(i)).Delay < 0 {
				t.Fatal("negative delay applied")
			}
		}
	})
}
