package constraint

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// TestSweepModeSameFixpoint: the Sweep discipline must reach exactly
// the FIFO fixpoint (uniqueness of the greatest fixpoint), typically in
// fewer constraint applications.
func TestSweepModeSameFixpoint(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := randomCircuit(t, seed+1300, 5, 18)
		po := c.PrimaryOutputs()[0]
		for _, delta := range []waveform.Time{3, 8, 15} {
			fifo := New(c)
			fifo.Narrow(po, waveform.CheckOutput(delta))
			fifo.ScheduleAll()
			okF := fifo.Fixpoint()

			sweep := New(c)
			sweep.SetScheduleMode(Sweep)
			sweep.Narrow(po, waveform.CheckOutput(delta))
			sweep.ScheduleAll()
			okS := sweep.Fixpoint()

			if okF != okS {
				t.Fatalf("seed %d δ=%s: consistency differs: fifo=%v sweep=%v", seed, delta, okF, okS)
			}
			if !okF {
				continue
			}
			for n := 0; n < c.NumNets(); n++ {
				if !fifo.Domain(circuit.NetID(n)).Equal(sweep.Domain(circuit.NetID(n))) {
					t.Fatalf("seed %d δ=%s: fixpoints differ at %s", seed, delta, c.Net(circuit.NetID(n)).Name)
				}
			}
		}
	}
}

func TestSweepModeTrailCompatible(t *testing.T) {
	c := randomCircuit(t, 42, 4, 12)
	po := c.PrimaryOutputs()[0]
	s := New(c)
	s.SetScheduleMode(Sweep)
	s.Narrow(po, waveform.CheckOutput(5))
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Skip("seed narrows to inconsistency; pick another circuit")
	}
	before := s.Domain(po)
	s.Mark()
	s.Narrow(po, waveform.CheckOutput(9))
	s.Fixpoint()
	s.Undo()
	if !s.Domain(po).Equal(before) {
		t.Fatal("undo must restore under Sweep mode too")
	}
}
