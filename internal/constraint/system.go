// Package constraint implements the waveform-narrowing constraint
// system of the paper (Section 3): one abstract-signal domain per net,
// one relational constraint per gate, an event-driven scheduler, and
// the greatest-fixpoint solver, with trail-based selective state saving
// for the backtracking used by case analysis.
package constraint

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// lanes is the number of int64 domain lanes per net in the flat
// structure-of-arrays store: [4n+0]=W0.Lmin, [4n+1]=W0.Lmax,
// [4n+2]=W1.Lmin, [4n+3]=W1.Lmax.
const lanes = 4

// System is the constraint system associated with a timing check. It
// owns one Signal domain per net and re-evaluates gate constraints
// event-driven until the greatest fixpoint is reached.
type System struct {
	c *circuit.Circuit

	// dom is the flat structure-of-arrays domain store (lanes int64
	// values per net; see the lanes constant for the layout). The
	// projection kernels load and store lanes directly, the trail
	// records (lane index, old value) pairs, and a fixpoint snapshot
	// is a single flat copy — see Snapshot/Restore. The array must
	// never be aliased outside this package (the soaalias lint pass
	// enforces it).
	dom []int64

	// queue with qhead form a head-index ring: pops advance qhead
	// instead of re-slicing the front, so the backing array is reused
	// across fixpoints instead of being consumed (and reallocated)
	// every time the window slides off it.
	queue   []circuit.GateID
	qhead   int
	inQueue []bool
	mode    ScheduleMode
	topoPos []int32

	// scratch buffers reused across gate applications (the system is
	// single-goroutine by design; every Check owns its own System).
	scrCtrl []waveform.Wave
	scrNon  []waveform.Wave
	scrIn   []waveform.Signal
	scrPar  [][2]waveform.Wave
	scrQual []bool

	trace func(n circuit.NetID, old, new waveform.Signal)

	// stopFn, polled every stopPollInterval propagations, lets a caller
	// interrupt a long fixpoint (deadline, cancellation, budget). When
	// it returns true the solver parks: stopped becomes sticky and
	// Fixpoint returns without draining the worklist.
	stopFn    func() bool
	sincePoll int
	stopped   bool

	trail trail

	inconsistent bool
	emptyNet     circuit.NetID

	// Propagations counts gate-constraint applications (statistics).
	Propagations int64
	// Narrowings counts domain changes (statistics).
	Narrowings int64

	queueHighWater int
}

// stopPollInterval is how many gate-constraint applications pass
// between stop-function polls. At the engine's observed propagation
// rates (millions per second) this bounds cancellation latency well
// under a millisecond while keeping the poll off the per-gate hot path.
const stopPollInterval = 256

// New builds the constraint system for the circuit with the paper's
// initial domains: every net unconstrained, every primary input
// restricted to floating-mode waveforms (stable after time 0).
func New(c *circuit.Circuit) *System {
	s := &System{
		c:        c,
		dom:      make([]int64, lanes*c.NumNets()),
		inQueue:  make([]bool, c.NumGates()),
		emptyNet: circuit.InvalidNet,
	}
	s.initDomains()
	return s
}

// initDomains writes the paper's initial domains straight into the
// lanes, bypassing the trail.
func (s *System) initDomains() {
	for n := 0; n < s.c.NumNets(); n++ {
		s.storeSig(circuit.NetID(n), waveform.FullSignal)
	}
	for _, pi := range s.c.PrimaryInputs() {
		s.storeSig(pi, waveform.FloatingInput)
	}
}

// sig loads the four lanes of net n as a Signal value.
func (s *System) sig(n circuit.NetID) waveform.Signal {
	base := lanes * int(n)
	return waveform.Signal{
		W0: waveform.Wave{Lmin: waveform.Time(s.dom[base]), Lmax: waveform.Time(s.dom[base+1])},
		W1: waveform.Wave{Lmin: waveform.Time(s.dom[base+2]), Lmax: waveform.Time(s.dom[base+3])},
	}
}

// wave loads the two lanes of net n's class-v wave.
func (s *System) wave(n circuit.NetID, v int) waveform.Wave {
	base := lanes*int(n) + 2*v
	return waveform.Wave{Lmin: waveform.Time(s.dom[base]), Lmax: waveform.Time(s.dom[base+1])}
}

// storeSig overwrites net n's lanes without touching the trail — for
// initialisation, snapshot restore, and in-package tests only.
func (s *System) storeSig(n circuit.NetID, sig waveform.Signal) {
	base := lanes * int(n)
	s.dom[base] = int64(sig.W0.Lmin)
	s.dom[base+1] = int64(sig.W0.Lmax)
	s.dom[base+2] = int64(sig.W1.Lmin)
	s.dom[base+3] = int64(sig.W1.Lmax)
}

// setLane stores v into lane i, recording the old value on the trail
// when it actually changes.
func (s *System) setLane(i int, v int64) {
	if old := s.dom[i]; old != v {
		s.trail.save(int32(i), old)
		s.dom[i] = v
	}
}

// Circuit returns the underlying netlist.
func (s *System) Circuit() *circuit.Circuit { return s.c }

// Domain returns the current domain of net n.
func (s *System) Domain(n circuit.NetID) waveform.Signal { return s.sig(n) }

// Inconsistent reports whether some net's domain has become (φ, φ); in
// that state the timing check has no solution (Theorem 2 generalised to
// any net).
func (s *System) Inconsistent() bool { return s.inconsistent }

// EmptyNet returns the first net whose domain emptied, or InvalidNet.
func (s *System) EmptyNet() circuit.NetID { return s.emptyNet }

// SetStopFunc installs a callback polled every few hundred
// propagations during Fixpoint; when it returns true the solver stops
// at the next poll point and Stopped() reports true from then on. Pass
// nil to disable (the default); the nil path adds no work per gate
// application. The stop state is sticky: once stopped, further
// Fixpoint calls return immediately so an interrupted check unwinds
// promptly through every layer.
func (s *System) SetStopFunc(f func() bool) { s.stopFn = f }

// Stopped reports whether a stop function interrupted the solver.
func (s *System) Stopped() bool { return s.stopped }

// QueueHighWater returns the largest number of pending worklist
// entries observed — a measure of how bursty constraint propagation
// was for this check.
func (s *System) QueueHighWater() int { return s.queueHighWater }

// queueCompactMin is the minimum dead prefix before pop compacts the
// ring in place. Compaction copies the live tail to the front only
// when the dead prefix outweighs it, so each element is moved at most
// once per cap-sized window: amortised O(1) per pop, bounded memory.
const queueCompactMin = 64

// schedule enqueues gate g unless it is already pending.
func (s *System) schedule(g circuit.GateID) {
	if g == circuit.InvalidGate || s.inQueue[g] {
		return
	}
	s.inQueue[g] = true
	s.queue = append(s.queue, g)
	if p := len(s.queue) - s.qhead; p > s.queueHighWater {
		s.queueHighWater = p
	}
}

// pending reports the number of enqueued gates.
func (s *System) pending() int { return len(s.queue) - s.qhead }

// pop removes and returns the oldest pending gate. The caller must
// know the queue is non-empty.
func (s *System) pop() circuit.GateID {
	g := s.queue[s.qhead]
	s.qhead++
	switch {
	case s.qhead == len(s.queue):
		s.queue = s.queue[:0]
		s.qhead = 0
	case s.qhead >= queueCompactMin && s.qhead > len(s.queue)-s.qhead:
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	return g
}

// ScheduleAll enqueues every gate constraint (used for the initial
// evaluation).
func (s *System) ScheduleAll() {
	for i := 0; i < s.c.NumGates(); i++ {
		s.schedule(circuit.GateID(i))
	}
}

// ScheduleNet enqueues every constraint operating on net n (its driver
// and its fanout gates).
func (s *System) ScheduleNet(n circuit.NetID) {
	s.schedule(s.c.Net(n).Driver)
	for _, g := range s.c.Net(n).Fanout {
		s.schedule(g)
	}
}

// SetTraceFunc installs a callback invoked on every domain narrowing
// with the net and its old and new signals — the hook behind the
// paper-style propagation listings (ltta -trace, cmd/figures). Pass nil
// to disable. Tracing has no effect on results.
func (s *System) SetTraceFunc(f func(n circuit.NetID, old, new waveform.Signal)) {
	s.trace = f
}

// Narrow intersects the domain of net n with sig, records the old value
// on the trail, and schedules the affected constraints. It reports
// whether the domain changed. Narrowing to (φ, φ) marks the system
// inconsistent.
func (s *System) Narrow(n circuit.NetID, sig waveform.Signal) bool {
	cur := s.sig(n)
	nd := cur.Intersect(sig).Canon()
	if nd.Equal(cur) {
		return false
	}
	if s.trace != nil {
		s.trace(n, cur, nd)
	}
	base := lanes * int(n)
	s.setLane(base, int64(nd.W0.Lmin))
	s.setLane(base+1, int64(nd.W0.Lmax))
	s.setLane(base+2, int64(nd.W1.Lmin))
	s.setLane(base+3, int64(nd.W1.Lmax))
	s.Narrowings++
	if nd.IsEmpty() && !s.inconsistent {
		s.inconsistent = true
		s.emptyNet = n
	}
	s.ScheduleNet(n)
	return true
}

// ScheduleMode selects the worklist discipline of the fixpoint solver.
type ScheduleMode int

const (
	// FIFO processes gate constraints in arrival order — the paper's
	// event-driven scheduler. Default.
	FIFO ScheduleMode = iota
	// Sweep drains the worklist in alternating topological passes
	// (forward, then backward), which matches how narrowing information
	// actually flows and can reach the fixpoint in fewer applications
	// on deep circuits. Same fixpoint either way (it is unique).
	Sweep
)

// SetScheduleMode selects the worklist discipline (before solving).
func (s *System) SetScheduleMode(m ScheduleMode) { s.mode = m }

// Fixpoint applies pending gate constraints until quiescence or
// inconsistency (the reach_fixpoint procedure of Figure 4). It returns
// true when the system is still consistent. The fixpoint is the
// greatest one: every application only narrows domains, and times are
// integers bounded by the finite constants in the system, so
// termination is guaranteed (Theorem 1).
func (s *System) Fixpoint() bool {
	if s.stopped {
		return !s.inconsistent
	}
	if s.mode == Sweep {
		return s.fixpointSweep()
	}
	for s.pending() > 0 && !s.inconsistent {
		if s.stopFn != nil && s.pollStop() {
			break
		}
		g := s.pop()
		s.inQueue[g] = false
		s.Propagations++
		s.applyGate(g)
	}
	return s.finishFixpoint()
}

// pollStop runs the stop function every stopPollInterval calls and
// latches the stopped flag. Only reached when a stop function is set.
func (s *System) pollStop() bool {
	s.sincePoll++
	if s.sincePoll < stopPollInterval {
		return false
	}
	s.sincePoll = 0
	if s.stopFn() {
		s.stopped = true
	}
	return s.stopped
}

// fixpointSweep drains the worklist in alternating topological sweeps.
func (s *System) fixpointSweep() bool {
	if s.topoPos == nil {
		s.topoPos = make([]int32, s.c.NumGates())
		for i, g := range s.c.TopoGates() {
			s.topoPos[g] = int32(i)
		}
	}
	forward := true
	batch := make([]circuit.GateID, 0, s.pending())
	for s.pending() > 0 && !s.inconsistent {
		batch = append(batch[:0], s.queue[s.qhead:]...)
		s.queue, s.qhead = s.queue[:0], 0
		for _, g := range batch {
			s.inQueue[g] = false
		}
		if forward {
			sortGatesBy(batch, s.topoPos, false)
		} else {
			sortGatesBy(batch, s.topoPos, true)
		}
		forward = !forward
		for _, g := range batch {
			if s.inconsistent {
				break
			}
			if s.stopFn != nil && s.pollStop() {
				return s.finishFixpoint()
			}
			s.Propagations++
			s.applyGate(g)
		}
	}
	return s.finishFixpoint()
}

func (s *System) finishFixpoint() bool {
	if s.inconsistent {
		// Drain so a later resume starts clean.
		for _, g := range s.queue[s.qhead:] {
			s.inQueue[g] = false
		}
		s.queue, s.qhead = s.queue[:0], 0
		return false
	}
	return true
}

func sortGatesBy(gs []circuit.GateID, pos []int32, desc bool) {
	sort.Slice(gs, func(i, j int) bool {
		if desc {
			return pos[gs[i]] > pos[gs[j]]
		}
		return pos[gs[i]] < pos[gs[j]]
	})
}

// Mark opens a new decision level; Undo rewinds to the matching mark.
func (s *System) Mark() { s.trail.mark() }

// Undo rewinds domains to the most recent mark, clearing any
// inconsistency and pending events.
func (s *System) Undo() {
	if n := len(s.trail.marks); n > 0 {
		base := s.trail.marks[n-1]
		s.trail.marks = s.trail.marks[:n-1]
		for i := len(s.trail.idx) - 1; i >= base; i-- {
			s.dom[s.trail.idx[i]] = s.trail.old[i]
		}
		s.trail.idx = s.trail.idx[:base]
		s.trail.old = s.trail.old[:base]
	}
	s.inconsistent = false
	s.emptyNet = circuit.InvalidNet
	for _, g := range s.queue[s.qhead:] {
		s.inQueue[g] = false
	}
	s.queue, s.qhead = s.queue[:0], 0
}

// Levels returns the number of open decision levels.
func (s *System) Levels() int { return len(s.trail.marks) }

// Snapshot appends a copy of every domain lane onto buf[:0] and
// returns the filled buffer, so a caller-owned snapshot buffer is
// reused across calls without allocating. Taken at a plain fixpoint,
// the copy is exactly the seed a warm-started re-solve of the same
// sink at a larger δ needs (see Restore and DESIGN.md §14). The
// returned slice never aliases the system's own storage.
func (s *System) Snapshot(buf []int64) []int64 {
	return append(buf[:0], s.dom...)
}

// Restore overwrites every domain lane from a snapshot taken on a
// system of the same circuit (the snapshot is copied, not aliased) and
// clears all per-run state: trail, worklist, inconsistency, stop and
// trace hooks, and statistics counters. Together with Snapshot it lets
// a sweep driver reuse one System — and all of its arena allocations —
// across many checks.
func (s *System) Restore(snap []int64) {
	if len(snap) != len(s.dom) {
		panic(fmt.Sprintf("constraint: Restore snapshot has %d lanes, system has %d", len(snap), len(s.dom)))
	}
	copy(s.dom, snap)
	s.resetRunState()
}

// Reset returns the system to its initial state — the paper's initial
// domains with all per-run state cleared — reusing every backing
// array. A freshly Reset system is indistinguishable from New(c).
func (s *System) Reset() {
	s.initDomains()
	s.resetRunState()
}

// resetRunState clears everything a check accumulates: the trail and
// its marks, the worklist, inconsistency, the stop/trace hooks, and
// the statistics counters. Backing arrays are kept.
func (s *System) resetRunState() {
	s.trail.idx = s.trail.idx[:0]
	s.trail.old = s.trail.old[:0]
	s.trail.marks = s.trail.marks[:0]
	for _, g := range s.queue[s.qhead:] {
		s.inQueue[g] = false
	}
	s.queue, s.qhead = s.queue[:0], 0
	s.inconsistent = false
	s.emptyNet = circuit.InvalidNet
	s.stopFn = nil
	s.sincePoll = 0
	s.stopped = false
	s.trace = nil
	s.Propagations = 0
	s.Narrowings = 0
	s.queueHighWater = 0
}

// String summarises the system state (for debugging and error text).
func (s *System) String() string {
	st := "consistent"
	if s.inconsistent {
		st = fmt.Sprintf("inconsistent at %s", s.c.Net(s.emptyNet).Name)
	}
	return fmt.Sprintf("constraint.System{%d nets, %d gates, %s, %d propagations}",
		s.c.NumNets(), s.c.NumGates(), st, s.Propagations)
}

// trail is the selective state store: a reusable arena of (lane index,
// old value) pairs with level marks. Undo replays a level backwards
// and re-slices the arena; capacity survives across levels and — via
// Reset/Restore — across checks, so steady-state mark/narrow/undo
// cycles never allocate.
type trail struct {
	idx   []int32
	old   []int64
	marks []int
}

func (t *trail) mark() { t.marks = append(t.marks, len(t.idx)) }

func (t *trail) save(i int32, old int64) {
	if len(t.marks) == 0 {
		return // no open level: nothing to restore to
	}
	t.idx = append(t.idx, i)
	t.old = append(t.old, old)
}

// len reports the number of saved lane entries (for the trail-growth
// regression tests).
func (t *trail) len() int { return len(t.idx) }
