package constraint

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// This file pins the structure-of-arrays kernel's new lifecycle APIs —
// Snapshot/Restore/Reset — and the trail-growth fix: a long-lived
// System reused across many checks must keep its trail bounded, never
// alias its domain storage out through Snapshot, and run the whole
// snapshot/restore/solve cycle without allocating.

func allDomains(s *System) []waveform.Signal {
	out := make([]waveform.Signal, s.c.NumNets())
	for i := range out {
		out[i] = s.Domain(circuit.NetID(i))
	}
	return out
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := chainCircuit(t, 32)
	po, _ := c.NetByName("n32")
	s := New(c)
	s.Narrow(po, waveform.CheckOutput(20))
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("δ=20 on a 32-deep chain must be consistent")
	}
	want := allDomains(s)
	snap := s.Snapshot(nil)

	// Perturb the system thoroughly: deeper narrowing, an open level,
	// even an inconsistency.
	s.Mark()
	s.Narrow(po, waveform.CheckOutput(33))
	s.ScheduleAll()
	s.Fixpoint()

	s.Restore(snap)
	if got := allDomains(s); !signalsEqual(got, want) {
		t.Fatal("Restore must reproduce the snapshotted domains exactly")
	}
	if s.Levels() != 0 || s.Inconsistent() || s.Stopped() {
		t.Fatal("Restore must clear all per-run state")
	}
	if s.Propagations != 0 || s.Narrowings != 0 || s.QueueHighWater() != 0 {
		t.Fatal("Restore must zero the statistics counters")
	}

	// The restored fixpoint must be a fixpoint: re-solving is a no-op.
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("restored system must stay consistent")
	}
	if got := allDomains(s); !signalsEqual(got, want) {
		t.Fatal("restored fixpoint must be stable under re-solving")
	}
}

func TestSnapshotDoesNotAliasDomains(t *testing.T) {
	c := chainCircuit(t, 4)
	s := New(c)
	s.ScheduleAll()
	s.Fixpoint()
	before := allDomains(s)
	snap := s.Snapshot(nil)
	for i := range snap {
		snap[i] = -12345 // corrupt the caller's copy
	}
	if got := allDomains(s); !signalsEqual(got, before) {
		t.Fatal("mutating a snapshot must not touch the system's domains")
	}
}

func TestRestoreLengthMismatchPanics(t *testing.T) {
	s := New(chainCircuit(t, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with a wrong-circuit snapshot must panic")
		}
	}()
	s.Restore(make([]int64, 3))
}

func TestResetMatchesNew(t *testing.T) {
	c := chainCircuit(t, 16)
	po, _ := c.NetByName("n16")
	s := New(c)
	s.Narrow(po, waveform.CheckOutput(17)) // inconsistent: beyond top
	s.ScheduleAll()
	if s.Fixpoint() {
		t.Fatal("δ=17 beyond top=16 must refute")
	}
	s.Reset()

	fresh := New(c)
	if !signalsEqual(allDomains(s), allDomains(fresh)) {
		t.Fatal("Reset must restore the initial domains")
	}
	if s.Inconsistent() || s.Levels() != 0 || s.Propagations != 0 {
		t.Fatal("Reset must clear all per-run state")
	}

	// And the reset system must solve identically to a fresh one.
	for _, sys := range []*System{s, fresh} {
		sys.Narrow(po, waveform.CheckOutput(10))
		sys.ScheduleAll()
		if !sys.Fixpoint() {
			t.Fatal("δ=10 must stay consistent")
		}
	}
	if !signalsEqual(allDomains(s), allDomains(fresh)) {
		t.Fatal("reset system must solve bit-identically to a fresh one")
	}
}

// TestTrailBoundedAcrossLongSweep is the regression test for trail
// growth on a reused System: every check in a long sweep must leave the
// trail empty again (decision levels unwound, and Restore/Reset
// truncating whatever top-level narrowings accumulated), so the arena's
// length — not just its capacity — stays bounded no matter how many
// checks one System serves.
func TestTrailBoundedAcrossLongSweep(t *testing.T) {
	const depth = 64
	c := chainCircuit(t, depth)
	po, _ := c.NetByName(fmt.Sprintf("n%d", depth))
	s := New(c)
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("base solve must be consistent")
	}
	snap := s.Snapshot(nil)

	for delta := waveform.Time(0); delta < 200; delta = delta.Add(1) {
		s.Restore(snap)
		s.Mark()
		s.Narrow(po, waveform.CheckOutput(delta))
		s.ScheduleAll()
		s.Fixpoint()
		s.Undo()
		if n := s.trail.len(); n != 0 {
			t.Fatalf("δ=%d: trail holds %d entries after undo, want 0", delta, n)
		}
		if s.Levels() != 0 {
			t.Fatalf("δ=%d: %d levels still open", delta, s.Levels())
		}
	}
}

// TestSnapshotRestoreSteadyStateAllocs extends the zero-allocs
// assertion to the warm-start cycle: restore a fixpoint snapshot,
// narrow, re-solve, snapshot again — all into caller-reused buffers —
// without a single allocation.
func TestSnapshotRestoreSteadyStateAllocs(t *testing.T) {
	const n = 512
	c := chainCircuit(t, n)
	po, ok := c.NetByName(fmt.Sprintf("n%d", n))
	if !ok {
		t.Fatal("missing chain output")
	}
	s := New(c)
	s.ScheduleAll()
	s.Fixpoint()
	seed := s.Snapshot(nil)
	buf := make([]int64, 0, len(seed))
	cycle := func() {
		s.Restore(seed)
		s.Narrow(po, waveform.CheckOutput(5))
		s.ScheduleAll()
		s.Fixpoint()
		buf = s.Snapshot(buf)
	}
	cycle() // warm up: size the queue and scratch once
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("snapshot/restore cycle allocates %.1f objects/run, want 0", allocs)
	}
}

func signalsEqual(a, b []waveform.Signal) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
