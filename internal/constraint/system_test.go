package constraint

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

func mustBuild(t testing.TB, src string, d int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: d})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func id(t testing.TB, c *circuit.Circuit, name string) circuit.NetID {
	t.Helper()
	n, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return n
}

func TestInitialDomains(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`, 10)
	s := New(c)
	if !s.Domain(id(t, c, "a")).Equal(waveform.FloatingInput) {
		t.Fatal("PI domain must be the floating-mode input")
	}
	if !s.Domain(id(t, c, "z")).Equal(waveform.FullSignal) {
		t.Fatal("internal domains must start unconstrained")
	}
	if s.Inconsistent() {
		t.Fatal("fresh system must be consistent")
	}
}

// TestExample1 reproduces Example 1 of the paper verbatim: a 2-input
// AND with delay 0 and the given initial domains must narrow to exactly
// the published result.
func TestExample1(t *testing.T) {
	b := circuit.NewBuilder("ex1")
	b.Input("i")
	b.Input("j")
	b.Gate(circuit.AND, 0, "s", "i", "j")
	b.Output("s")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	ni, nj, ns := id(t, c, "i"), id(t, c, "j"), id(t, c, "s")
	// Override the floating-input defaults with the example's domains.
	s.storeSig(ni, waveform.Signal{
		W0: waveform.Wave{Lmin: waveform.NegInf, Lmax: 33},
		W1: waveform.Wave{Lmin: 50, Lmax: 100},
	})
	s.storeSig(nj, waveform.Signal{
		W0: waveform.Wave{Lmin: 25, Lmax: 75},
		W1: waveform.Empty,
	})
	s.storeSig(ns, waveform.Signal{
		W0: waveform.Wave{Lmin: 35, Lmax: 125},
		W1: waveform.Empty,
	})
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("example 1 must stay consistent")
	}
	wantI := waveform.Signal{W0: waveform.Empty, W1: waveform.Wave{Lmin: 50, Lmax: 100}}
	wantJ := waveform.Signal{W0: waveform.Wave{Lmin: 35, Lmax: 75}, W1: waveform.Empty}
	wantS := waveform.Signal{W0: waveform.Wave{Lmin: 35, Lmax: 75}, W1: waveform.Empty}
	if got := s.Domain(ni); !got.Equal(wantI) {
		t.Errorf("D_i = %s, want %s", got, wantI)
	}
	if got := s.Domain(nj); !got.Equal(wantJ) {
		t.Errorf("D_j = %s, want %s", got, wantJ)
	}
	if got := s.Domain(ns); !got.Equal(wantS) {
		t.Errorf("D_s = %s, want %s", got, wantS)
	}
}

func TestForwardChainBounds(t *testing.T) {
	// A 3-gate buffer chain: forward narrowing must bound every net's
	// last transition by its arrival time.
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
n1 = BUFF(a)
n2 = NOT(n1)
z = BUFF(n2)
`, 10)
	s := New(c)
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("must be consistent")
	}
	for name, want := range map[string]waveform.Time{"n1": 10, "n2": 20, "z": 30} {
		d := s.Domain(id(t, c, name))
		if d.W0.Lmax != want || d.W1.Lmax != want {
			t.Errorf("%s = %s, want Lmax %s on both classes", name, d, want)
		}
		if d.W0.Lmin != waveform.NegInf {
			t.Errorf("%s Lmin must stay -inf", name)
		}
	}
}

func TestCheckBeyondTopologicalIsInconsistent(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
x = AND(a, b)
z = OR(x, b)
`, 10)
	s := New(c)
	z := id(t, c, "z")
	// Topological delay is 20; a transition at ≥ 21 is impossible and
	// plain narrowing must prove it.
	s.Narrow(z, waveform.CheckOutput(21))
	s.ScheduleAll()
	if s.Fixpoint() {
		t.Fatalf("check δ=31 beyond top=30 must be inconsistent; z = %s", s.Domain(z))
	}
}

func TestCheckAtTopologicalStaysOpen(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`, 10)
	s := New(c)
	z := id(t, c, "z")
	s.Narrow(z, waveform.CheckOutput(10))
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("δ = top on a single gate must remain possible")
	}
	d := s.Domain(z)
	if d.W0.Lmax != 10 || d.W0.Lmin != 10 {
		t.Fatalf("z class 0 = %s, want [10,10]", d.W0)
	}
}

func TestSideInputNecessaryAssignment(t *testing.T) {
	// z = AND(slow, b): requiring a late transition on z forces b to
	// settle non-controlling (b's class-0 must empty) because b's
	// controlling waveforms would lock z early.
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
n1 = BUFF(a)
n2 = BUFF(n1)
z = AND(n2, b)
`, 10)
	s := New(c)
	z := id(t, c, "z")
	s.Narrow(z, waveform.CheckOutput(30))
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("δ=30 must remain possible via the long path")
	}
	db := s.Domain(id(t, c, "b"))
	if !db.W0.IsEmpty() {
		t.Fatalf("b class 0 (controlling) must be removed, got %s", db)
	}
	if db.W1.IsEmpty() {
		t.Fatal("b class 1 must survive")
	}
	// And the last-transition interval must have propagated down the
	// chain: n2 must carry a transition in [19,20] (input frame of z).
	dn2 := s.Domain(id(t, c, "n2"))
	if dn2.W0.Lmin != 20 || dn2.W0.Lmax != 20 || dn2.W1.Lmin != 20 || dn2.W1.Lmax != 20 {
		t.Fatalf("n2 = %s, want [20,20] on both classes", dn2)
	}
}

func TestTrailMarkUndo(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`, 10)
	s := New(c)
	s.ScheduleAll()
	s.Fixpoint()
	z := id(t, c, "z")
	b := id(t, c, "b")
	before := s.Domain(z)
	beforeB := s.Domain(b)

	s.Mark()
	if s.Levels() != 1 {
		t.Fatal("one level must be open")
	}
	s.Narrow(z, waveform.CheckOutput(10))
	s.Fixpoint()
	if s.Domain(z).Equal(before) {
		t.Fatal("narrowing must change z")
	}
	s.Undo()
	if !s.Domain(z).Equal(before) || !s.Domain(b).Equal(beforeB) {
		t.Fatal("undo must restore domains")
	}
	if s.Levels() != 0 {
		t.Fatal("level must be closed")
	}
}

func TestUndoClearsInconsistency(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
z = BUFF(a)
`, 10)
	s := New(c)
	s.ScheduleAll()
	s.Fixpoint()
	s.Mark()
	s.Narrow(id(t, c, "z"), waveform.CheckOutput(11))
	if s.Fixpoint() {
		t.Fatal("δ=11 must be inconsistent for a single 10-delay buffer")
	}
	if !s.Inconsistent() || s.EmptyNet() == circuit.InvalidNet {
		t.Fatal("inconsistency must be recorded")
	}
	s.Undo()
	if s.Inconsistent() {
		t.Fatal("undo must clear inconsistency")
	}
	if !s.Fixpoint() {
		t.Fatal("restored system must be consistent")
	}
}

func TestNestedLevels(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = OR(a, b)
`, 5)
	s := New(c)
	s.ScheduleAll()
	s.Fixpoint()
	a := id(t, c, "a")
	base := s.Domain(a)

	s.Mark()
	s.Narrow(a, waveform.SettledTo(0))
	s.Fixpoint()
	l1 := s.Domain(a)
	s.Mark()
	s.Narrow(a, waveform.Signal{W0: waveform.StableAfter(-5), W1: waveform.Empty})
	s.Fixpoint()
	s.Undo()
	if !s.Domain(a).Equal(l1) {
		t.Fatal("inner undo must restore level-1 domain")
	}
	s.Undo()
	if !s.Domain(a).Equal(base) {
		t.Fatal("outer undo must restore base domain")
	}
}

func TestFixpointIdempotent(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
x = NAND(a, b)
y = NOR(x, c)
z = XOR(y, a)
`, 7)
	s := New(c)
	z := id(t, c, "z")
	s.Narrow(z, waveform.CheckOutput(14))
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("must be consistent")
	}
	snapshot := make([]waveform.Signal, c.NumNets())
	for i := range snapshot {
		snapshot[i] = s.Domain(circuit.NetID(i))
	}
	s.ScheduleAll()
	if !s.Fixpoint() {
		t.Fatal("second pass must stay consistent")
	}
	for i := range snapshot {
		if !s.Domain(circuit.NetID(i)).Equal(snapshot[i]) {
			t.Fatalf("fixpoint not idempotent at net %s", c.Net(circuit.NetID(i)).Name)
		}
	}
}

func TestSystemString(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
z = BUFF(a)
`, 1)
	s := New(c)
	if got := s.String(); got == "" {
		t.Fatal("String must describe the system")
	}
}
