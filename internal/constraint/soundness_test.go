package constraint

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// randomCircuit builds a seeded random DAG netlist.
func randomCircuit(t testing.TB, seed int64, nPI, nGates int) *circuit.Circuit {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder("rand")
	var nets []string
	for i := 0; i < nPI; i++ {
		n := "i" + string(rune('0'+i))
		b.Input(n)
		nets = append(nets, n)
	}
	types := []circuit.GateType{
		circuit.AND, circuit.NAND, circuit.OR, circuit.NOR,
		circuit.NOT, circuit.BUFFER, circuit.DELAY, circuit.XOR, circuit.XNOR,
	}
	for i := 0; i < nGates; i++ {
		gt := types[r.Intn(len(types))]
		name := "g" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		nin := 1
		if !gt.Unate() {
			nin = 2 + r.Intn(2)
		}
		ins := make([]string, nin)
		for j := range ins {
			// Bias toward recent nets to get depth.
			k := len(nets) - 1 - r.Intn(min(len(nets), 6))
			ins[j] = nets[k]
		}
		b.Gate(gt, int64(1+r.Intn(5)), name, ins...)
		nets = append(nets, name)
	}
	b.Output(nets[len(nets)-1])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestNarrowingSoundness is the central correctness property of the
// whole framework: whenever the fixpoint proves the timing check
// (s, δ) inconsistent, NO input vector may reach a floating-mode settle
// time ≥ δ on s (verified exhaustively); and whenever a vector does
// violate the check, the fixpoint must stay consistent AND every
// primary input's domain must retain the vector's settling class.
func TestNarrowingSoundness(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		c := randomCircuit(t, seed, 5, 14)
		po := c.PrimaryOutputs()[0]
		exact, _, err := sim.FloatingDelayExhaustive(c, po)
		if err != nil {
			t.Fatal(err)
		}
		// Probe deltas around the exact delay.
		for _, delta := range []waveform.Time{exact.Sub(2), exact.Sub(1), exact, exact.Add(1), exact.Add(2), exact.Add(7)} {
			if delta < 0 {
				continue
			}
			s := New(c)
			s.Narrow(po, waveform.CheckOutput(delta))
			s.ScheduleAll()
			consistent := s.Fixpoint()
			violable := exact >= delta
			if !consistent && violable {
				t.Fatalf("seed %d: narrowing UNSOUND: δ=%s disproved but exact floating delay is %s",
					seed, delta, exact)
			}
			if !violable && consistent {
				// Expected pessimism: allowed, not an error. Count it
				// silently; the dominator/case-analysis layers resolve
				// these.
				continue
			}
			if consistent && violable {
				// The violating vectors' classes must survive in the
				// PI domains.
				k := len(c.PrimaryInputs())
				for bits := 0; bits < 1<<k; bits++ {
					v := make(sim.Vector, k)
					for i := range v {
						v[i] = (bits >> i) & 1
					}
					r, _ := sim.Run(c, v)
					if r.Settle[po] < delta {
						continue
					}
					for i, pi := range c.PrimaryInputs() {
						if s.Domain(pi).Wave(v[i]).IsEmpty() {
							t.Fatalf("seed %d δ=%s: violating vector %s lost PI %s class %d",
								seed, delta, v, c.Net(pi).Name, v[i])
						}
					}
				}
			}
		}
	}
}

// TestNarrowingSoundnessUnderDecisions extends the soundness property
// to decision levels: fixing primary-input classes that agree with a
// violating vector must never produce inconsistency.
func TestNarrowingSoundnessUnderDecisions(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		c := randomCircuit(t, seed, 4, 10)
		po := c.PrimaryOutputs()[0]
		exact, witness, err := sim.FloatingDelayExhaustive(c, po)
		if err != nil {
			t.Fatal(err)
		}
		s := New(c)
		s.Narrow(po, waveform.CheckOutput(exact))
		s.ScheduleAll()
		if !s.Fixpoint() {
			t.Fatalf("seed %d: check at the exact delay must stay consistent", seed)
		}
		// Fix PIs one at a time to the witness vector's classes.
		for i, pi := range c.PrimaryInputs() {
			s.Mark()
			s.Narrow(pi, waveform.SettledTo(witness[i]))
			if !s.Fixpoint() {
				t.Fatalf("seed %d: fixing PI %d to the witness class broke consistency", seed, i)
			}
		}
	}
}
