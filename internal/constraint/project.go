package constraint

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// This file implements the relational last-transition-interval
// projections of Section 3.2. All interval reasoning happens in the
// gate-input time frame; the gate delay d shifts the output domain down
// on entry and the computed output interval up on exit.
//
// Notation for a gate with controlling input value c (AND/NAND: c = 0,
// OR/NOR: c = 1): for each input the "ctrl" wave is the abstract
// waveform of the class that settles to c, the "non-ctrl" wave the
// other one. An input whose final value is controlling locks the output
// at its own last-transition time; an input whose final value is
// non-controlling never constrains the output's last transition beyond
// the all-inputs-settled bound.
//
// Derived relations (L_i = last-transition time of input i, Lo of the
// output, all in the input frame):
//
//   * no input settles to c (combination C = ∅):
//         Lo = max_i L_i                                  (exact)
//   * some inputs settle to c (combination set C ≠ ∅):
//         Lo = min_{i∈C} L_i                              (exact)
//
// Both relations follow from the X-pessimistic floating model (the
// output stays unknown exactly while no controlling-final input has
// settled and not all inputs have settled; the min over C is always
// dominated by the max over all inputs) and are validated against the
// unrolled three-valued simulator in internal/sim. Parity gates use the
// pure max relation for every class combination.

// applyGate re-evaluates the constraint of gate g, narrowing the
// domains of its output and input nets.
func (s *System) applyGate(gid circuit.GateID) {
	g := s.c.Gate(gid)
	switch g.Type {
	case circuit.AND, circuit.NAND:
		s.projectSymmetric(g, 0)
	case circuit.OR, circuit.NOR:
		s.projectSymmetric(g, 1)
	case circuit.NOT, circuit.BUFFER, circuit.DELAY:
		s.projectUnate(g)
	case circuit.XOR, circuit.XNOR:
		s.projectParity(g)
	default:
		panic(fmt.Sprintf("constraint: unknown gate type %s", g.Type))
	}
}

// projectUnate handles NOT/BUFFER/DELAY: the output is the (possibly
// inverted) input shifted by d, in both directions, exactly.
func (s *System) projectUnate(g *circuit.Gate) {
	d := waveform.Time(g.Delay)
	in := s.sig(g.Inputs[0])
	out := s.sig(g.Output)
	outIn := out.Shift(-d) // output domain seen from the input frame
	if g.Type == circuit.NOT {
		outIn = outIn.Invert()
	}
	newIn := in.Intersect(outIn)
	newOut := newIn
	if g.Type == circuit.NOT {
		newOut = newOut.Invert()
	}
	newOut = newOut.Shift(d)
	s.Narrow(g.Inputs[0], newIn)
	s.Narrow(g.Output, newOut)
}

// projectSymmetric handles AND/NAND/OR/NOR with controlling value c,
// using the exact floating-mode relations:
//
//	C ≠ ∅ (some input settles controlling):  Lo = d + min_{i∈C} L_i
//	C = ∅ (all settle non-controlling):      Lo = d + max_i L_i
//
// (For C ≠ ∅ the min over controlling inputs is always ≤ the max over
// all inputs, so the all-settled term never matters.) Both relations
// are monotone in every L_i, so the per-combination projection is exact
// on interval boxes; the union over the combination family F ⊆ C ⊆ A
// (F = inputs that can only settle controlling, A = inputs that can
// settle controlling at all) collapses to O(k) aggregates.
func (s *System) projectSymmetric(g *circuit.Gate, ctrl int) {
	d := waveform.Time(g.Delay)
	k := len(g.Inputs)
	non := 1 - ctrl

	// Output classes: with no inversion the controlled output class is
	// the controlling value itself; inversion flips it.
	ctrlOutClass := ctrl
	if g.Type.Inverting() {
		ctrlOutClass = non
	}
	out := s.sig(g.Output)
	outC := out.Wave(ctrlOutClass).Shift(-d) // required interval, controlled class
	outN := out.Wave(1 - ctrlOutClass).Shift(-d)

	// Gather per-input class waves and aggregate bounds (scratch
	// buffers are reused across applications).
	if cap(s.scrCtrl) < k {
		s.scrCtrl = make([]waveform.Wave, k)
		s.scrNon = make([]waveform.Wave, k)
		s.scrIn = make([]waveform.Signal, k)
	}
	ctrlW := s.scrCtrl[:k]
	nonW := s.scrNon[:k]
	allNonOK := true // every input can settle non-controlling
	famCOK := true   // the controlled family has at least one valid shape
	var (
		nonLminMax = waveform.NegInf // max_i nonW[i].Lmin
		nonLmaxMax = waveform.NegInf // max_i nonW[i].Lmax
		nonLmax2   = waveform.NegInf // second-largest nonW Lmax
		minFCtrl   = waveform.PosInf // min over F of ctrlW Lmax
		minFLmin   = waveform.PosInf // min over F of ctrlW Lmin
		maxACtrl   = waveform.NegInf // max over A of ctrlW Lmax
		minALmin   = waveform.PosInf // min over A of ctrlW Lmin
		numA       int               // |A|: inputs that can settle controlling
		numF       int               // |F|: inputs that must settle controlling
	)
	for i, n := range g.Inputs {
		cw := s.wave(n, ctrl)
		nw := s.wave(n, non)
		ctrlW[i], nonW[i] = cw, nw
		if nw.IsEmpty() && cw.IsEmpty() {
			// Empty domain: the system is already inconsistent.
			allNonOK, famCOK = false, false
			continue
		}
		if nw.IsEmpty() {
			allNonOK = false
			numF++
			if cw.Lmax < minFCtrl {
				minFCtrl = cw.Lmax
			}
			if cw.Lmin < minFLmin {
				minFLmin = cw.Lmin
			}
		} else {
			if nw.Lmin > nonLminMax {
				nonLminMax = nw.Lmin
			}
			if nw.Lmax >= nonLmaxMax {
				nonLmax2 = nonLmaxMax
				nonLmaxMax = nw.Lmax
			} else if nw.Lmax > nonLmax2 {
				nonLmax2 = nw.Lmax
			}
		}
		if !cw.IsEmpty() {
			numA++
			if cw.Lmax > maxACtrl {
				maxACtrl = cw.Lmax
			}
			if cw.Lmin < minALmin {
				minALmin = cw.Lmin
			}
		}
	}
	famCOK = famCOK && numA > 0

	// ---- forward: non-controlled output class (C = ∅, exact max) ----
	var fwdN waveform.Wave
	if allNonOK && k > 0 {
		fwdN = waveform.Wave{Lmin: nonLminMax, Lmax: nonLmaxMax}
	} else {
		fwdN = waveform.Empty
	}
	newOutN := outN.Intersect(fwdN)

	// ---- forward: controlled output class (family hull, exact) ----
	// Upper: smallest valid C wins → C = F when F ≠ ∅, else the best
	// singleton. Lower: a minimum-Lmin member can always be added.
	var fwdC waveform.Wave
	if famCOK {
		hi := maxACtrl
		if numF > 0 {
			hi = minFCtrl
		}
		fwdC = waveform.Wave{Lmin: minALmin, Lmax: hi}.Canon()
	} else {
		fwdC = waveform.Empty
	}
	newOutC := outC.Intersect(fwdC)

	// ---- backward projections per input ----
	loN, hiN := outNBounds(newOutN)
	loC, hiC := outNBounds(newOutC)
	famNFeasible := allNonOK && !newOutN.IsEmpty()
	famCLive := famCOK && !newOutC.IsEmpty()

	// qual(j): input j's controlling class can be a member of a valid
	// requirement-compatible combination (all members need Lmax ≥ loC;
	// some member needs Lmin ≤ hiC — qualifying members provide both).
	cntQ := 0
	if cap(s.scrQual) < k {
		s.scrQual = make([]bool, k)
	}
	qual := s.scrQual[:k]
	for i := range qual {
		qual[i] = false
	}
	if famCLive {
		for i := range g.Inputs {
			if !ctrlW[i].IsEmpty() && ctrlW[i].Lmax >= loC && ctrlW[i].Lmin <= hiC {
				qual[i] = true
				cntQ++
			}
		}
	}
	existsQualOther := func(i int) bool {
		if qual[i] {
			return cntQ >= 2
		}
		return cntQ >= 1
	}

	newIn := s.scrIn[:k]
	for i := range g.Inputs {
		// Non-controlling class of input i.
		var projN waveform.Wave = waveform.Empty
		if !nonW[i].IsEmpty() {
			// (a) via the all-non-controlling combination (max rule).
			if famNFeasible {
				othersMax := nonLmaxMax
				if nonW[i].Lmax == nonLmaxMax {
					othersMax = nonLmax2
				}
				l := nonW[i].Lmin
				if othersMax < loN {
					l = waveform.MaxTime(l, loN)
				}
				h := waveform.MinTime(nonW[i].Lmax, hiN)
				projN = projN.Union(waveform.Wave{Lmin: l, Lmax: h}.Canon())
			}
			// (b) via controlled combinations with i non-controlling
			// (i is never in F here): the combination must exist
			// without i — F plus, when F cannot reach the interval on
			// its own, one qualifying other input.
			if famCLive {
				feasible := false
				if numF > 0 {
					feasible = minFCtrl >= loC && (minFLmin <= hiC || existsQualOther(i))
				} else {
					feasible = existsQualOther(i)
				}
				if feasible {
					projN = projN.Union(nonW[i])
				}
			}
		}
		// Controlling class of input i (min rule over C).
		var projC waveform.Wave = waveform.Empty
		if !ctrlW[i].IsEmpty() && famCLive {
			// F ∪ {i} must be a valid shape: all F members reach loC.
			if numF == 0 || minFCtrl >= loC {
				l := waveform.MaxTime(ctrlW[i].Lmin, loC)
				h := ctrlW[i].Lmax
				if !existsQualOther(i) {
					// i alone must realise min_C L ≤ hiC.
					h = waveform.MinTime(h, hiC)
				}
				projC = waveform.Wave{Lmin: l, Lmax: h}.Canon()
			}
		}
		ctrlClass := ctrl
		sig := waveform.Signal{}
		sig = sig.WithWave(ctrlClass, projC)
		sig = sig.WithWave(1-ctrlClass, projN)
		newIn[i] = sig
	}

	// Apply all narrowings (output classes mapped back to circuit
	// classes and time frame).
	no := waveform.Signal{}
	no = no.WithWave(ctrlOutClass, newOutC.Shift(d))
	no = no.WithWave(1-ctrlOutClass, newOutN.Shift(d))
	s.Narrow(g.Output, no)
	for i, n := range g.Inputs {
		s.Narrow(n, newIn[i])
	}
}

// outNBounds extracts the (lo, hi) interval of a wave, with the empty
// wave mapping to an infeasible (PosInf, NegInf) pair.
func outNBounds(w waveform.Wave) (lo, hi waveform.Time) {
	if w.IsEmpty() {
		return waveform.PosInf, waveform.NegInf
	}
	return w.Lmin, w.Lmax
}

// projectParity handles XOR/XNOR by enumerating input-class
// combinations (parity gates in practice have small fan-in).
func (s *System) projectParity(g *circuit.Gate) {
	d := waveform.Time(g.Delay)
	k := len(g.Inputs)
	if k > 16 {
		panic(fmt.Sprintf("constraint: parity gate with fan-in %d unsupported", k))
	}
	if cap(s.scrPar) < 3*k {
		s.scrPar = make([][2]waveform.Wave, 3*k)
	}
	inW := s.scrPar[:k]
	for i, n := range g.Inputs {
		inW[i][0] = s.wave(n, 0)
		inW[i][1] = s.wave(n, 1)
	}
	outReq := [2]waveform.Wave{
		s.wave(g.Output, 0).Shift(-d),
		s.wave(g.Output, 1).Shift(-d),
	}

	fwd := [2]waveform.Wave{waveform.Empty, waveform.Empty}
	back := s.scrPar[k : 2*k]
	for i := range back {
		back[i][0] = waveform.Empty
		back[i][1] = waveform.Empty
	}

	if cap(s.scrCtrl) < k {
		s.scrCtrl = make([]waveform.Wave, k)
		s.scrNon = make([]waveform.Wave, k)
		s.scrIn = make([]waveform.Signal, k)
	}
	chosen := s.scrCtrl[:k]
	for bits := 0; bits < 1<<k; bits++ {
		parity := 0
		feasible := true
		for i := 0; i < k; i++ {
			v := (bits >> i) & 1
			w := inW[i][v]
			if w.IsEmpty() {
				feasible = false
				break
			}
			chosen[i] = w
			parity ^= v
		}
		if !feasible {
			continue
		}
		outClass := parity
		if g.Type == circuit.XNOR {
			outClass ^= 1
		}
		req := outReq[outClass]
		if req.IsEmpty() {
			continue
		}
		lo, hi := req.Lmin, req.Lmax

		// Combination interval: Lo = max_i L_i exactly (the max
		// relation is monotone, so corner evaluation is exact).
		maxLmin, maxLmax := waveform.NegInf, waveform.NegInf
		maxLmax2 := waveform.NegInf
		argMax := -1
		for i, w := range chosen {
			if w.Lmin > maxLmin {
				maxLmin = w.Lmin
			}
			if w.Lmax >= maxLmax {
				maxLmax2 = maxLmax
				maxLmax = w.Lmax
				argMax = i
			} else if w.Lmax > maxLmax2 {
				maxLmax2 = w.Lmax
			}
		}
		// Feasibility against the required output interval.
		if maxLmax < lo || maxLmin > hi {
			continue
		}
		// Forward contribution (intersected per combination, which is
		// tighter than hull-then-intersect and still sound).
		fwd[outClass] = fwd[outClass].Union(waveform.Wave{Lmin: maxLmin, Lmax: maxLmax}.Intersect(req))
		// Backward contributions: L_i ≤ hi always; L_i ≥ lo when no
		// other input can realise the max.
		for i, w := range chosen {
			othersMax := maxLmax2
			if !(w.Lmax == maxLmax && i == argMax) {
				othersMax = maxLmax
			}
			l := w.Lmin
			if othersMax < lo {
				l = waveform.MaxTime(l, lo)
			}
			h := waveform.MinTime(w.Lmax, hi)
			v := (bits >> i) & 1
			back[i][v] = back[i][v].Union(waveform.Wave{Lmin: l, Lmax: h}.Canon())
		}
	}

	no := waveform.Signal{
		W0: outReq[0].Intersect(fwd[0]).Shift(d),
		W1: outReq[1].Intersect(fwd[1]).Shift(d),
	}
	s.Narrow(g.Output, no)
	for i, n := range g.Inputs {
		s.Narrow(n, waveform.Signal{W0: back[i][0], W1: back[i][1]})
	}
}
