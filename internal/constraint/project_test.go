package constraint

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// This file validates the per-gate projection rules in isolation: for a
// single gate with random input/output domains, every concrete
// floating-mode scenario — a choice of settling class and
// last-transition time per input — induces an output class and a SET of
// possible output last-transition times under the X-pessimistic model:
//
//	L_out ∈ { d + min(min over ctrl-final inputs L_i, max over all L_i) }   (deterministic)
//
// (parity gates: d + max when a unique input dominates, any value up to
// d + max otherwise — we test with the deterministic upper envelope and
// the "can cancel" lower cases explicitly). After running the gate
// constraint to fixpoint, every scenario consistent with the ORIGINAL
// domains and the output requirement must still be contained in the
// NARROWED domains. This is the local soundness obligation that the
// system-level tests rely on.

// concreteTimes is the sample universe of last-transition times.
var concreteTimes = []waveform.Time{waveform.NegInf, -1, 0, 1, 2, 3, 4, 5, 6}

// scenOut computes the output (class, L) of a gate for fixed input
// classes/times under the X-pessimistic floating model, where L is
// DETERMINISTIC: the output stays unknown exactly while no
// controlling-final input has settled and not all inputs have settled,
// so L_out = d + min(min over ctrl-final inputs L_i, max over all L_i)
// — the same recursion as sim.Run, proven equal to the concrete
// three-valued unrolled simulation in internal/sim.
func scenOut(gt circuit.GateType, d waveform.Time, vals []int, ls []waveform.Time) (int, waveform.Time) {
	outV := gt.Eval(vals)
	minCtrl := waveform.PosInf
	maxAll := waveform.NegInf
	ctrl, hasCtrl := gt.HasControlling()
	for i, l := range ls {
		if l > maxAll {
			maxAll = l
		}
		if hasCtrl && vals[i] == ctrl && l < minCtrl {
			minCtrl = l
		}
	}
	lo := maxAll
	if minCtrl < lo {
		lo = minCtrl
	}
	return outV, lo.Add(d)
}

func randomDomain(r *rand.Rand) waveform.Signal {
	w := func() waveform.Wave {
		pick := func() waveform.Time {
			switch r.Intn(5) {
			case 0:
				return waveform.NegInf
			case 1:
				return waveform.PosInf
			default:
				return waveform.Time(r.Intn(9) - 2)
			}
		}
		return waveform.Wave{Lmin: pick(), Lmax: pick()}.Canon()
	}
	s := waveform.Signal{W0: w(), W1: w()}
	if s.IsEmpty() {
		return waveform.FullSignal
	}
	return s
}

func TestGateProjectionSoundness(t *testing.T) {
	types := []struct {
		gt circuit.GateType
		k  int
	}{
		{circuit.AND, 2}, {circuit.NAND, 2}, {circuit.OR, 2}, {circuit.NOR, 2},
		{circuit.AND, 3}, {circuit.NOR, 3},
		{circuit.XOR, 2}, {circuit.XNOR, 2}, {circuit.XOR, 3},
		{circuit.NOT, 1}, {circuit.BUFFER, 1},
	}
	r := rand.New(rand.NewSource(99))
	for _, tc := range types {
		for trial := 0; trial < 400; trial++ {
			d := waveform.Time(r.Intn(3))
			// Build a one-gate circuit.
			b := circuit.NewBuilder("g")
			names := make([]string, tc.k)
			for i := range names {
				names[i] = string(rune('a' + i))
				b.Input(names[i])
			}
			b.Gate(tc.gt, int64(d), "z", names...)
			b.Output("z")
			c, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			sys := New(c)
			inIDs := make([]circuit.NetID, tc.k)
			orig := make([]waveform.Signal, tc.k)
			for i, n := range names {
				id, _ := c.NetByName(n)
				inIDs[i] = id
				orig[i] = randomDomain(r)
				sys.storeSig(id, orig[i])
			}
			z, _ := c.NetByName("z")
			origOut := randomDomain(r)
			sys.storeSig(z, origOut)
			sys.ScheduleAll()
			sys.Fixpoint()

			// Enumerate scenarios against the ORIGINAL domains.
			vals := make([]int, tc.k)
			ls := make([]waveform.Time, tc.k)
			var rec func(i int)
			rec = func(i int) {
				if t.Failed() {
					return
				}
				if i == tc.k {
					outV, lo := scenOut(tc.gt, d, vals, ls)
					if !origOut.Wave(outV).Contains(lo) {
						return // scenario violates the output requirement
					}
					// Consistent scenario: must survive narrowing.
					for j := range vals {
						if !sys.wave(inIDs[j], vals[j]).Contains(ls[j]) {
							t.Errorf("%s/%d d=%s: scenario vals=%v ls=%v outL=%s lost input %d\n  orig in=%v out=%v\n  new in=%v out=%v",
								tc.gt, tc.k, d, vals, ls, lo, j, orig, origOut,
								domains(sys, inIDs), sys.sig(z))
							return
						}
					}
					if !sys.wave(z, outV).Contains(lo) {
						t.Errorf("%s/%d d=%s: scenario vals=%v ls=%v lost output L=%s (class %d)\n  orig in=%v out=%v\n  new in=%v out=%v",
							tc.gt, tc.k, d, vals, ls, lo, outV, orig, origOut,
							domains(sys, inIDs), sys.sig(z))
					}
					return
				}
				for _, v := range []int{0, 1} {
					for _, l := range concreteTimes {
						if !orig[i].Wave(v).Contains(l) {
							continue
						}
						vals[i], ls[i] = v, l
						rec(i + 1)
					}
				}
			}
			rec(0)
			if t.Failed() {
				return
			}
		}
	}
}

func domains(sys *System, ids []circuit.NetID) []waveform.Signal {
	out := make([]waveform.Signal, len(ids))
	for i, id := range ids {
		out[i] = sys.Domain(id)
	}
	return out
}
