package constraint

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// TestFixpointConfluence checks Theorem 1's uniqueness in practice: the
// greatest fixpoint does not depend on the order in which gate
// constraints are applied. We compare the standard all-at-once
// evaluation against an adversarial schedule that enables constraints
// one by one in random order, reaching quiescence in between.
func TestFixpointConfluence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := randomCircuit(t, seed+500, 5, 16)
		po := c.PrimaryOutputs()[0]
		delta := waveform.Time(6)

		ref := New(c)
		ref.Narrow(po, waveform.CheckOutput(delta))
		ref.ScheduleAll()
		refOK := ref.Fixpoint()

		alt := New(c)
		alt.Narrow(po, waveform.CheckOutput(delta))
		r := rand.New(rand.NewSource(seed))
		order := r.Perm(c.NumGates())
		// Trickle the constraints in one at a time; after the last one,
		// the events triggered by earlier narrowings cover the rest.
		for _, gi := range order {
			alt.schedule(circuit.GateID(gi))
			if !alt.Fixpoint() {
				break
			}
		}
		// One final full pass to guarantee global quiescence.
		altOK := true
		if !alt.Inconsistent() {
			alt.ScheduleAll()
			altOK = alt.Fixpoint()
		} else {
			altOK = false
		}

		if refOK != altOK {
			t.Fatalf("seed %d: consistency differs between schedules: %v vs %v", seed, refOK, altOK)
		}
		if !refOK {
			continue // both inconsistent: domains need not match
		}
		for n := 0; n < c.NumNets(); n++ {
			if !ref.Domain(circuit.NetID(n)).Equal(alt.Domain(circuit.NetID(n))) {
				t.Fatalf("seed %d: fixpoint differs at net %s: %s vs %s",
					seed, c.Net(circuit.NetID(n)).Name,
					ref.Domain(circuit.NetID(n)), alt.Domain(circuit.NetID(n)))
			}
		}
	}
}

// TestFixpointMonotoneInCheck verifies monotonicity of the whole
// narrowing in δ: a stricter check (larger δ) yields domains that are
// narrower-or-equal on every net, and inconsistency is monotone.
func TestFixpointMonotoneInCheck(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := randomCircuit(t, seed+900, 5, 14)
		po := c.PrimaryOutputs()[0]
		prevInconsistent := false
		var prev []waveform.Signal
		for delta := waveform.Time(0); delta < 20; delta = delta.Add(3) {
			s := New(c)
			s.Narrow(po, waveform.CheckOutput(delta))
			s.ScheduleAll()
			ok := s.Fixpoint()
			if prevInconsistent && ok {
				t.Fatalf("seed %d: δ=%s consistent after a smaller δ was inconsistent", seed, delta)
			}
			if !ok {
				prevInconsistent = true
				prev = nil
				continue
			}
			cur := make([]waveform.Signal, c.NumNets())
			for n := range cur {
				cur[n] = s.Domain(circuit.NetID(n))
			}
			if prev != nil {
				for n := range cur {
					if !cur[n].NarrowerEq(prev[n]) {
						t.Fatalf("seed %d: δ=%s net %s domain %s not narrower than %s",
							seed, delta, c.Net(circuit.NetID(n)).Name, cur[n], prev[n])
					}
				}
			}
			prev = cur
		}
	}
}
