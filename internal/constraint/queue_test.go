package constraint

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

func chainCircuit(t testing.TB, n int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder(fmt.Sprintf("chain%d", n))
	b.Input("n0")
	for i := 1; i <= n; i++ {
		b.Gate(circuit.NOT, 1, fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i-1))
	}
	b.Output(fmt.Sprintf("n%d", n))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWorklistRingFIFO drives the head-index ring directly: FIFO
// order, pending counts, reset on drain, and high-water measured in
// pending entries rather than cumulative pushes.
func TestWorklistRingFIFO(t *testing.T) {
	s := New(chainCircuit(t, 8))
	for i := 0; i < 8; i++ {
		s.schedule(circuit.GateID(i))
	}
	s.schedule(circuit.GateID(3)) // pending duplicate must not re-enqueue
	if got := s.pending(); got != 8 {
		t.Fatalf("pending = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		g := s.pop()
		s.inQueue[g] = false
		if g != circuit.GateID(i) {
			t.Fatalf("pop %d returned gate %d, want %d", i, g, i)
		}
	}
	if s.pending() != 0 || s.qhead != 0 || len(s.queue) != 0 {
		t.Fatalf("drained ring not reset: qhead=%d len=%d", s.qhead, len(s.queue))
	}
	if hw := s.QueueHighWater(); hw != 8 {
		t.Fatalf("QueueHighWater = %d, want 8", hw)
	}
	s.schedule(0)
	s.schedule(1)
	s.inQueue[s.pop()] = false
	s.schedule(2)
	if hw := s.QueueHighWater(); hw != 8 {
		t.Fatalf("QueueHighWater after interleaving = %d, want 8 (peak pending)", hw)
	}
}

// TestWorklistRingCompaction checks the in-place compaction that
// bounds the ring's dead prefix: once the prefix passes
// queueCompactMin and outweighs the live tail, the tail moves to the
// front with order preserved.
func TestWorklistRingCompaction(t *testing.T) {
	const n = 256
	s := New(chainCircuit(t, n))
	for i := 0; i < n; i++ {
		s.schedule(circuit.GateID(i))
	}
	// Compaction fires on the pop that leaves qhead = 129 (≥ 64 dead,
	// dead > live tail of 127).
	for i := 0; i < 129; i++ {
		g := s.pop()
		s.inQueue[g] = false
		if g != circuit.GateID(i) {
			t.Fatalf("pop %d returned gate %d", i, g)
		}
	}
	if s.qhead != 0 || len(s.queue) != n-129 {
		t.Fatalf("expected compaction at dead prefix 129/%d: qhead=%d len=%d", n, s.qhead, len(s.queue))
	}
	for i := 129; i < n; i++ {
		g := s.pop()
		s.inQueue[g] = false
		if g != circuit.GateID(i) {
			t.Fatalf("post-compaction pop returned gate %d, want %d", g, i)
		}
	}
	if s.pending() != 0 {
		t.Fatalf("pending = %d after full drain, want 0", s.pending())
	}
}

// TestFixpointSteadyStateAllocs is the regression test for the old
// FIFO drain (s.queue = s.queue[1:]), which permanently consumed
// backing-array capacity as the window slid off the front and forced
// every later ScheduleAll to reallocate — unbounded cumulative
// allocation over long runs. With the head-index ring, a warmed
// system runs whole mark/narrow/fixpoint/undo cycles without
// allocating at all (domains and waves are value types; the queue,
// trail, and scratch buffers are reused).
func TestFixpointSteadyStateAllocs(t *testing.T) {
	const n = 512
	c := chainCircuit(t, n)
	po, ok := c.NetByName(fmt.Sprintf("n%d", n))
	if !ok {
		t.Fatal("missing chain output")
	}
	s := New(c)
	cycle := func() {
		s.Mark()
		s.Narrow(po, waveform.CheckOutput(5))
		s.ScheduleAll()
		s.Fixpoint()
		s.Undo()
	}
	cycle() // warm up: size the queue and trail once
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("steady-state fixpoint cycle allocates %.1f objects/run, want 0", allocs)
	}
}
