// Package registry is the content-addressed circuit store behind
// lttad's upload-once-check-forever serving path: hashing, a bounded
// LRU of per-circuit prepared state, refcount pinning, and
// singleflight first-preparation.
//
// A circuit is registered under the sha256 of its canonicalized
// upload (netlist bytes, format, name, default delay, SDF text, and
// the sorted delay-annotation list — see Canonicalize) and thereafter
// referenced by that hash alone. The expensive structural precompute
// — core.Prepare's topo order, delay annotation, SCOAP, stems,
// dominators, learned implications, and the per-sink cone slices that
// grow inside it — is built once per circuit and shared immutably
// across batches and tenants, exactly the sharing PR 2 proved safe
// for parallel RunAll workers.
//
// Lifecycle of an entry (DESIGN.md §13):
//
//	hash → prepare → pin → check → release → evict
//
// Eviction extends the §10 drain guarantee: an entry with live pins is
// never freed under a running batch. When capacity pressure selects a
// pinned victim, the entry is condemned — removed from the table so
// new lookups miss — and the memory is released only when the last pin
// drops (evict-on-release). Concurrent first-preparations singleflight:
// N cold checks on one hash cost exactly one core.Prepare, the rest
// coalesce onto the leader's result.
package registry

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/core"
)

// Config sizes the registry. The zero value of every field selects a
// production-sane default.
type Config struct {
	// MaxCircuits bounds the number of registered circuits (default
	// 128). Inserting past it condemns least-recently-used entries.
	MaxCircuits int
	// MaxResidentBytes bounds the estimated resident bytes of circuits
	// plus prepared state (default 1 GiB; negative = unlimited). The
	// estimate is structural (nets/gates/netlist size), not a heap
	// measurement.
	MaxResidentBytes int64
	// Prepare builds the shared precompute (default core.Prepare).
	// Tests substitute counting or slow implementations here.
	Prepare func(*circuit.Circuit) *core.Prepared
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxCircuits <= 0 {
		cfg.MaxCircuits = 128
	}
	if cfg.MaxResidentBytes == 0 {
		cfg.MaxResidentBytes = 1 << 30
	}
	if cfg.Prepare == nil {
		cfg.Prepare = core.Prepare
	}
	return cfg
}

// entry is one registered circuit. The registry mutex guards the
// table/LRU bookkeeping fields; the prepare singleflight runs under
// the entry's own mutex so a slow core.Prepare never blocks lookups
// of other circuits. Once e.prepared is published it is immutable and
// shared across every pinned batch (preparedmut enforces that no code
// outside this file writes through it).
type entry struct {
	hash api.Hash
	c    *circuit.Circuit

	refs      int           // guarded by Registry.mu
	condemned bool          // guarded by Registry.mu
	elem      *list.Element // guarded by Registry.mu
	accounted int64         // bytes currently counted; guarded by Registry.mu

	// Prepare singleflight.
	pmu       sync.Mutex
	preparing chan struct{}  // non-nil while a leader runs Prepare; guarded by pmu
	prepared  *core.Prepared // guarded by pmu (immutable once published)
}

// Registry is the content-addressed circuit store. Safe for concurrent
// use.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	entries  map[api.Hash]*entry
	lru      *list.List // front = least recently used
	resident int64      // estimated bytes of live entries (incl. condemned-but-pinned)

	hits            atomic.Int64
	misses          atomic.Int64
	unknown         atomic.Int64
	prepares        atomic.Int64
	coalesced       atomic.Int64
	evictions       atomic.Int64
	deferredEvicts  atomic.Int64
	uploadsCreated  atomic.Int64
	uploadsExisting atomic.Int64
}

// New builds an empty registry.
func New(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg.withDefaults(),
		entries: make(map[api.Hash]*entry),
		lru:     list.New(),
	}
}

// Counter accessors, read at metrics-scrape time.

// Hits counts checks that found their prepared state resident.
func (r *Registry) Hits() int64 { return r.hits.Load() }

// Misses counts checks that arrived cold: they either ran the
// first preparation or coalesced onto one in flight.
func (r *Registry) Misses() int64 { return r.misses.Load() }

// Unknown counts lookups of hashes no circuit is registered under.
func (r *Registry) Unknown() int64 { return r.unknown.Load() }

// Prepares counts actual core.Prepare executions.
func (r *Registry) Prepares() int64 { return r.prepares.Load() }

// Coalesced counts cold checks that joined an in-flight preparation
// instead of running their own (singleflight wins).
func (r *Registry) Coalesced() int64 { return r.coalesced.Load() }

// Evictions counts entries freed immediately at condemnation (no live
// pins).
func (r *Registry) Evictions() int64 { return r.evictions.Load() }

// DeferredEvictions counts condemnations of pinned entries, freed
// later when the last batch released its pin.
func (r *Registry) DeferredEvictions() int64 { return r.deferredEvicts.Load() }

// UploadsCreated counts uploads that registered a new circuit.
func (r *Registry) UploadsCreated() int64 { return r.uploadsCreated.Load() }

// UploadsExisting counts uploads whose hash was already registered.
func (r *Registry) UploadsExisting() int64 { return r.uploadsExisting.Load() }

// Circuits is the number of registered (acquirable) circuits.
func (r *Registry) Circuits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// ResidentBytes is the estimated memory held by registered circuits
// and their prepared state, including condemned entries still pinned
// by live batches.
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resident
}

// PutResult reports a completed upload.
type PutResult struct {
	Hash api.Hash
	// Circuit is the registered (shared, immutable) parse.
	Circuit *circuit.Circuit
	// Created is false when the hash was already registered and the
	// upload was an idempotent no-op.
	Created bool
}

// Put registers the canonicalized upload under its content hash.
// build parses the netlist and applies the canonical annotations; it
// runs only when the hash is not yet registered, so re-uploading a
// known circuit costs one hash, zero parses. The circuit build
// returns must already carry its annotations — it is shared immutably
// from here on.
func (r *Registry) Put(up *api.UploadRequest, build func(canon *api.UploadRequest) (*circuit.Circuit, error)) (PutResult, error) {
	h, canon, err := HashUpload(up)
	if err != nil {
		return PutResult{}, err
	}
	r.mu.Lock()
	if e, ok := r.entries[h]; ok {
		r.touchLocked(e)
		r.mu.Unlock()
		r.uploadsExisting.Add(1)
		return PutResult{Hash: h, Circuit: e.c, Created: false}, nil
	}
	r.mu.Unlock()

	c, err := build(canon) // parse outside the lock: uploads of distinct circuits don't serialise
	if err != nil {
		return PutResult{}, err
	}

	r.mu.Lock()
	if e, ok := r.entries[h]; ok { // lost a race with an identical concurrent upload
		r.touchLocked(e)
		r.mu.Unlock()
		r.uploadsExisting.Add(1)
		return PutResult{Hash: h, Circuit: e.c, Created: false}, nil
	}
	e := &entry{hash: h, c: c, accounted: estimateCircuitBytes(c, len(canon.Netlist))}
	r.entries[h] = e
	e.elem = r.lru.PushBack(e)
	r.resident += e.accounted
	for len(r.entries) > r.cfg.MaxCircuits {
		r.condemnLocked(r.lru.Front().Value.(*entry))
	}
	r.mu.Unlock()
	r.uploadsCreated.Add(1)
	return PutResult{Hash: h, Circuit: c, Created: true}, nil
}

// Acquire pins the circuit registered under h. While the pin is held
// the entry cannot be freed — eviction defers to Release — so a batch
// may run against the shared prepared state for as long as it needs.
// The second result is false (and the pin nil) for unknown hashes.
func (r *Registry) Acquire(h api.Hash) (*Pin, bool) {
	r.mu.Lock()
	e, ok := r.entries[h]
	if !ok {
		r.mu.Unlock()
		r.unknown.Add(1)
		return nil, false
	}
	e.refs++
	r.touchLocked(e)
	r.mu.Unlock()
	return &Pin{r: r, e: e}, true
}

// touchLocked moves e to the most-recently-used end. Caller holds
// r.mu.
func (r *Registry) touchLocked(e *entry) {
	if e.elem != nil {
		r.lru.MoveToBack(e.elem)
	}
}

// condemnLocked removes e from the table and LRU so new lookups miss.
// Unpinned entries free immediately; pinned ones free when the last
// pin releases — the cache-eviction extension of the §10 drain
// guarantee (never under a live batch). Caller holds r.mu.
func (r *Registry) condemnLocked(e *entry) {
	delete(r.entries, e.hash)
	if e.elem != nil {
		r.lru.Remove(e.elem)
		e.elem = nil
	}
	e.condemned = true
	if e.refs == 0 {
		r.freeLocked(e)
		r.evictions.Add(1)
	} else {
		r.deferredEvicts.Add(1)
	}
}

// freeLocked returns e's accounted bytes. Caller holds r.mu.
func (r *Registry) freeLocked(e *entry) {
	r.resident -= e.accounted
	e.accounted = 0
}

// Pin is a live reference to a registered circuit. Release exactly
// once when the batch is done (idempotent).
type Pin struct {
	r    *Registry
	e    *entry
	once sync.Once
}

// Hash returns the pinned circuit's content address.
func (p *Pin) Hash() api.Hash { return p.e.hash }

// Circuit returns the pinned circuit. Shared and immutable.
func (p *Pin) Circuit() *circuit.Circuit { return p.e.c }

// Release drops the pin. When the entry was condemned while this
// batch ran, the last release frees it.
func (p *Pin) Release() {
	p.once.Do(func() {
		r := p.r
		r.mu.Lock()
		p.e.refs--
		if p.e.refs == 0 && p.e.condemned {
			r.freeLocked(p.e)
		}
		r.mu.Unlock()
	})
}

// Prepared returns the circuit's shared precompute, building it on
// first use. Concurrent cold callers singleflight: one runs
// core.Prepare, the rest wait for its result (ctx bounds the wait;
// preparation itself is not cancelled — the next caller would only
// redo it). The second result reports a cache hit: true means zero
// parse and zero Prepare work happened on this call.
func (p *Pin) Prepared(ctx context.Context) (*core.Prepared, bool, error) {
	e, counted := p.e, false
	for {
		e.pmu.Lock()
		if prep := e.prepared; prep != nil {
			// Capture under pmu: the pointer is immutable once
			// published, but the read itself must not race the
			// leader's store.
			e.pmu.Unlock()
			if counted {
				return prep, false, nil // coalesced wait ended: still a miss
			}
			p.r.hits.Add(1)
			return prep, true, nil
		}
		if e.preparing == nil {
			ch := make(chan struct{})
			e.preparing = ch
			e.pmu.Unlock()
			if !counted {
				p.r.misses.Add(1)
			}
			prep, err := p.r.runPrepare(e.c)
			e.pmu.Lock()
			e.preparing = nil
			if err == nil {
				e.prepared = prep
			}
			e.pmu.Unlock()
			close(ch)
			if err != nil {
				return nil, false, err
			}
			p.r.prepares.Add(1)
			p.r.accountPrepared(e)
			return prep, false, nil
		}
		ch := e.preparing
		e.pmu.Unlock()
		if !counted {
			p.r.misses.Add(1)
			p.r.coalesced.Add(1)
			counted = true
		}
		select {
		case <-ch:
			// Leader finished (or failed — then loop and retry/lead).
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// runPrepare executes the configured prepare with panic isolation so
// a crashing precompute fails the one batch, not the daemon.
func (r *Registry) runPrepare(c *circuit.Circuit) (prep *core.Prepared, err error) {
	defer func() {
		if p := recover(); p != nil {
			prep, err = nil, fmt.Errorf("registry: prepare panicked: %v", p)
		}
	}()
	return r.cfg.Prepare(c), nil
}

// accountPrepared adds the prepared-state estimate to the resident
// gauge and sheds LRU entries while over the byte cap. The entry that
// just prepared is never its own victim.
func (r *Registry) accountPrepared(e *entry) {
	n := estimatePreparedBytes(e.c)
	r.mu.Lock()
	if !e.condemned || e.refs > 0 {
		e.accounted += n
		r.resident += n
	}
	if max := r.cfg.MaxResidentBytes; max > 0 {
		for r.resident > max && r.lru.Len() > 0 {
			front := r.lru.Front().Value.(*entry)
			if front == e {
				break
			}
			r.condemnLocked(front)
		}
	}
	r.mu.Unlock()
}

// estimateCircuitBytes is the structural size estimate of a parsed
// circuit plus its source text. Estimates, not measurements: they
// exist to make the byte cap and the resident gauge proportional to
// load, not to account the heap exactly.
func estimateCircuitBytes(c *circuit.Circuit, netlistLen int) int64 {
	st := c.Stats()
	return int64(netlistLen) + int64(st.Nets)*96 + int64(st.Gates)*72 + 4096
}

// estimatePreparedBytes estimates core.Prepare's output: arrival
// analysis, SCOAP, stems, plus headroom for the lazily built learning
// table and per-sink cone slices that grow inside the Prepared.
func estimatePreparedBytes(c *circuit.Circuit) int64 {
	st := c.Stats()
	return int64(st.Nets)*256 + int64(st.Gates)*128 + 8192
}
