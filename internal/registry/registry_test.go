package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
)

func c17Upload() (*api.UploadRequest, *circuit.Circuit) {
	c := gen.C17(10)
	return &api.UploadRequest{Netlist: circuit.BenchString(c), Name: "c17"}, c
}

func mustPut(t *testing.T, r *Registry, up *api.UploadRequest, c *circuit.Circuit) api.Hash {
	t.Helper()
	res, err := r.Put(up, func(*api.UploadRequest) (*circuit.Circuit, error) { return c, nil })
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	return res.Hash
}

// TestHashCanonicalAnnotations pins the canonicalization fix: a
// byte-identical netlist with differently-ordered (or duplicated)
// delay annotations must hash identically, while any value change
// must not.
func TestHashCanonicalAnnotations(t *testing.T) {
	up, _ := c17Upload()
	a := *up
	a.Delays = []api.DelayAnnotation{{Net: "G10", Delay: 12}, {Net: "G22", Delay: 7, DMin: 3}, {Net: "G11", Delay: 9}}
	b := *up
	b.Delays = []api.DelayAnnotation{{Net: "G22", Delay: 7, DMin: 3}, {Net: "G11", Delay: 9}, {Net: "G10", Delay: 12}, {Net: "G10", Delay: 12}}

	ha, _, err := HashUpload(&a)
	if err != nil {
		t.Fatal(err)
	}
	hb, _, err := HashUpload(&b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("annotation order changed the hash: %s vs %s", ha, hb)
	}
	if !ha.Valid() {
		t.Fatalf("minted hash %q invalid", ha)
	}

	c := a
	c.Delays = []api.DelayAnnotation{{Net: "G10", Delay: 13}, {Net: "G22", Delay: 7, DMin: 3}, {Net: "G11", Delay: 9}}
	hc, _, err := HashUpload(&c)
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("changing an annotation value must change the hash")
	}

	d := a
	d.Netlist += "\n"
	hd, _, err := HashUpload(&d)
	if err != nil {
		t.Fatal(err)
	}
	if hd == ha {
		t.Fatal("netlist bytes must hash byte-identically: trailing newline must change the hash")
	}

	conflict := a
	conflict.Delays = append(conflict.Delays, api.DelayAnnotation{Net: "G10", Delay: 99})
	var bad *BadUploadError
	if _, _, err := HashUpload(&conflict); !errors.As(err, &bad) || bad.Code != "conflicting_annotation" {
		t.Fatalf("conflicting duplicate must be rejected, got %v", err)
	}
}

// TestHashNormalizesDefaults: explicit defaults and implicit ones are
// the same content.
func TestHashNormalizesDefaults(t *testing.T) {
	up, _ := c17Upload()
	implicit := *up
	explicit := *up
	explicit.Format, explicit.DefaultDelay = "bench", 10
	hi, _, err := HashUpload(&implicit)
	if err != nil {
		t.Fatal(err)
	}
	he, _, err := HashUpload(&explicit)
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Fatal("implicit and explicit defaults must share one hash")
	}
	v9 := *up
	v9.V = api.Version
	hv, _, err := HashUpload(&v9)
	if err != nil {
		t.Fatal(err)
	}
	if hv != hi {
		t.Fatal("the envelope version is transport, not content: it must not affect the hash")
	}
}

func TestPutIdempotent(t *testing.T) {
	up, c := c17Upload()
	r := New(Config{})
	builds := 0
	put := func() PutResult {
		res, err := r.Put(up, func(*api.UploadRequest) (*circuit.Circuit, error) { builds++; return c, nil })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := put()
	second := put()
	if !first.Created || second.Created {
		t.Fatalf("created flags: %v then %v, want true then false", first.Created, second.Created)
	}
	if first.Hash != second.Hash || builds != 1 {
		t.Fatalf("re-upload must be a hash-only no-op: builds=%d hashes %s vs %s", builds, first.Hash, second.Hash)
	}
	if r.UploadsCreated() != 1 || r.UploadsExisting() != 1 || r.Circuits() != 1 {
		t.Fatalf("upload counters: created=%d existing=%d circuits=%d", r.UploadsCreated(), r.UploadsExisting(), r.Circuits())
	}
	if r.ResidentBytes() <= 0 {
		t.Fatal("resident bytes must account the registered circuit")
	}
}

// TestSingleflightColdPrepare: N concurrent cold checks on one hash
// cost exactly one Prepare; everyone gets the same shared pointer.
// Run with -race.
func TestSingleflightColdPrepare(t *testing.T) {
	up, c := c17Upload()
	var prepares atomic.Int64
	r := New(Config{Prepare: func(c *circuit.Circuit) *core.Prepared {
		prepares.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the window open so waiters pile up
		return core.Prepare(c)
	}})
	h := mustPut(t, r, up, c)

	const n = 16
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen = make(map[*core.Prepared]int)
		hits int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pin, ok := r.Acquire(h)
			if !ok {
				t.Error("acquire failed on a registered hash")
				return
			}
			defer pin.Release()
			prep, hit, err := pin.Prepared(context.Background())
			if err != nil {
				t.Errorf("Prepared: %v", err)
				return
			}
			mu.Lock()
			seen[prep]++
			if hit {
				hits++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := prepares.Load(); got != 1 {
		t.Fatalf("%d concurrent cold checks ran %d Prepares, want exactly 1", n, got)
	}
	if len(seen) != 1 {
		t.Fatalf("checks saw %d distinct Prepared pointers, want 1 shared", len(seen))
	}
	if r.Prepares() != 1 {
		t.Fatalf("Prepares counter = %d, want 1", r.Prepares())
	}
	if r.Misses()+r.Hits() != n || r.Misses() < 1 {
		t.Fatalf("hit/miss accounting: hits=%d misses=%d, want sum %d with ≥1 miss", r.Hits(), r.Misses(), n)
	}
	if r.Coalesced() != r.Misses()-1 {
		t.Fatalf("coalesced=%d, want misses-1=%d (everyone cold except the leader)", r.Coalesced(), r.Misses()-1)
	}
	// Warm afterwards: a fresh pin is a pure hit.
	pin, _ := r.Acquire(h)
	defer pin.Release()
	if _, hit, err := pin.Prepared(context.Background()); err != nil || !hit {
		t.Fatalf("post-singleflight check: hit=%v err=%v, want warm hit", hit, err)
	}
}

// TestPinEvictDeferred: eviction requested while a batch holds the pin
// defers until release and never corrupts the live verifier. Run with
// -race.
func TestPinEvictDeferred(t *testing.T) {
	upA, cA := c17Upload()
	r := New(Config{MaxCircuits: 1})
	hA := mustPut(t, r, upA, cA)

	pin, ok := r.Acquire(hA)
	if !ok {
		t.Fatal("acquire A")
	}
	prep, _, err := pin.Prepared(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	residentWhilePinned := r.ResidentBytes()

	// B overflows the single-slot registry: A is condemned but pinned,
	// so its memory must survive until the batch releases.
	upB := &api.UploadRequest{Netlist: circuit.BenchString(gen.C17(10)), Name: "c17-variant", DefaultDelay: 11}
	hB := mustPut(t, r, upB, gen.C17(11))
	if hA == hB {
		t.Fatal("test needs two distinct hashes")
	}
	if _, ok := r.Acquire(hA); ok {
		t.Fatal("condemned entry must be gone from the table (new lookups miss)")
	}
	if r.DeferredEvictions() != 1 || r.Evictions() != 0 {
		t.Fatalf("eviction of a pinned entry must defer: deferred=%d immediate=%d", r.DeferredEvictions(), r.Evictions())
	}
	if got := r.ResidentBytes(); got < residentWhilePinned {
		t.Fatalf("pinned entry freed early: resident %d < %d", got, residentWhilePinned)
	}

	// The live batch still runs correctly on the condemned entry.
	v := prep.NewVerifier(core.Default())
	cr := v.RunAll(context.Background(), core.Request{Delta: v.Topological().Add(1)})
	if cr.Final != core.NoViolation {
		t.Fatalf("check on condemned-but-pinned prepared state: verdict %s, want N", cr.Final)
	}

	pin.Release()
	pin.Release() // idempotent
	if got := r.ResidentBytes(); got >= residentWhilePinned {
		t.Fatalf("release of the last pin must free the condemned entry: resident still %d", got)
	}
	if r.Circuits() != 1 {
		t.Fatalf("registry should hold only B now, has %d", r.Circuits())
	}
}

// TestImmediateEviction: an unpinned LRU victim frees at once, and the
// unknown counter tracks lookups of the evicted hash.
func TestImmediateEviction(t *testing.T) {
	r := New(Config{MaxCircuits: 2})
	var hashes []api.Hash
	for i := 0; i < 3; i++ {
		delay := int64(10 + i)
		up := &api.UploadRequest{Netlist: circuit.BenchString(gen.C17(10)), Name: fmt.Sprintf("c17-%d", i), DefaultDelay: delay}
		hashes = append(hashes, mustPut(t, r, up, gen.C17(delay)))
	}
	if r.Evictions() != 1 || r.DeferredEvictions() != 0 {
		t.Fatalf("evictions: immediate=%d deferred=%d, want 1/0", r.Evictions(), r.DeferredEvictions())
	}
	if _, ok := r.Acquire(hashes[0]); ok {
		t.Fatal("oldest entry must have been evicted")
	}
	if r.Unknown() != 1 {
		t.Fatalf("unknown counter = %d, want 1", r.Unknown())
	}
	for _, h := range hashes[1:] {
		pin, ok := r.Acquire(h)
		if !ok {
			t.Fatalf("entry %s must still be resident", h)
		}
		pin.Release()
	}
}

// TestLRUTouchOnAcquire: acquiring refreshes recency, so the victim is
// the least-recently-used entry, not the oldest insert.
func TestLRUTouchOnAcquire(t *testing.T) {
	r := New(Config{MaxCircuits: 2})
	up1 := &api.UploadRequest{Netlist: circuit.BenchString(gen.C17(10)), Name: "one"}
	up2 := &api.UploadRequest{Netlist: circuit.BenchString(gen.C17(10)), Name: "two"}
	up3 := &api.UploadRequest{Netlist: circuit.BenchString(gen.C17(10)), Name: "three"}
	h1 := mustPut(t, r, up1, gen.C17(10))
	h2 := mustPut(t, r, up2, gen.C17(10))

	pin, ok := r.Acquire(h1) // refresh h1: h2 becomes LRU
	if !ok {
		t.Fatal("acquire h1")
	}
	pin.Release()

	h3 := mustPut(t, r, up3, gen.C17(10))
	if _, ok := r.Acquire(h2); ok {
		t.Fatal("h2 was least recently used and must have been evicted")
	}
	for _, h := range []api.Hash{h1, h3} {
		p, ok := r.Acquire(h)
		if !ok {
			t.Fatalf("%s must survive", h)
		}
		p.Release()
	}
}

// TestByteCapEviction: preparing past the byte cap sheds LRU entries,
// never the entry that just prepared.
func TestByteCapEviction(t *testing.T) {
	// Cap below two prepared circuits but above one.
	c := gen.C17(10)
	cap := estimateCircuitBytes(c, len(circuit.BenchString(c)))*2 + estimatePreparedBytes(c) + estimatePreparedBytes(c)/2
	r := New(Config{MaxResidentBytes: cap})
	up1 := &api.UploadRequest{Netlist: circuit.BenchString(c), Name: "one"}
	up2 := &api.UploadRequest{Netlist: circuit.BenchString(c), Name: "two"}
	h1 := mustPut(t, r, up1, gen.C17(10))
	h2 := mustPut(t, r, up2, gen.C17(10))

	for _, h := range []api.Hash{h1, h2} {
		pin, ok := r.Acquire(h)
		if !ok {
			t.Fatalf("acquire %s", h)
		}
		if _, _, err := pin.Prepared(context.Background()); err != nil {
			t.Fatal(err)
		}
		pin.Release()
	}
	// Preparing h2 pushed residency past the cap; h1 (LRU) was shed.
	if _, ok := r.Acquire(h1); ok {
		t.Fatal("byte cap must evict the LRU entry")
	}
	pin, ok := r.Acquire(h2)
	if !ok {
		t.Fatal("the just-prepared entry must never be its own victim")
	}
	pin.Release()
	if max := r.cfg.MaxResidentBytes; r.ResidentBytes() > max {
		t.Fatalf("resident %d still over cap %d", r.ResidentBytes(), max)
	}
}

// TestPreparePanicIsolated: a panicking Prepare fails that call but
// leaves the entry retryable.
func TestPreparePanicIsolated(t *testing.T) {
	up, c := c17Upload()
	calls := 0
	r := New(Config{Prepare: func(c *circuit.Circuit) *core.Prepared {
		calls++
		if calls == 1 {
			panic("boom")
		}
		return core.Prepare(c)
	}})
	h := mustPut(t, r, up, c)
	pin, _ := r.Acquire(h)
	defer pin.Release()
	if _, _, err := pin.Prepared(context.Background()); err == nil {
		t.Fatal("first Prepared must surface the panic as an error")
	}
	prep, hit, err := pin.Prepared(context.Background())
	if err != nil || prep == nil || hit {
		t.Fatalf("retry after panic: prep=%v hit=%v err=%v, want cold success", prep, hit, err)
	}
}
