package registry

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"repro/internal/api"
)

// BadUploadError rejects an upload before it is hashed or parsed; the
// server maps Code straight onto its structured 400 body.
type BadUploadError struct {
	Code    string
	Message string
}

func (e *BadUploadError) Error() string { return e.Message }

func badUpload(code, format string, args ...any) *BadUploadError {
	return &BadUploadError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Canonicalize normalizes an upload into the form that is hashed:
// defaults made explicit (format "bench", defaultDelay 10) and the
// delay-annotation list sorted by net with identical duplicates
// collapsed — so two uploads that describe the same circuit with
// differently-ordered annotations share one content address. The
// netlist and SDF texts are NOT normalized: they hash byte-identical,
// and formatting differences deliberately yield distinct addresses.
// Conflicting annotations (one net, two different delays) are a
// canonicalization error, not a last-wins guess.
func Canonicalize(up *api.UploadRequest) (*api.UploadRequest, error) {
	canon := *up
	canon.V = 0 // transport versioning is not content
	if strings.TrimSpace(canon.Netlist) == "" {
		return nil, badUpload("missing_netlist", "upload carries no netlist")
	}
	switch canon.Format {
	case "":
		canon.Format = "bench"
	case "bench", "verilog":
	default:
		return nil, badUpload("bad_format", "unknown netlist format %q (want bench or verilog)", canon.Format)
	}
	if canon.DefaultDelay < 0 {
		return nil, badUpload("bad_delay", "defaultDelay must be ≥ 0, got %d", canon.DefaultDelay)
	}
	if canon.DefaultDelay == 0 {
		canon.DefaultDelay = 10
	}
	if len(canon.Delays) > 0 {
		ds := make([]api.DelayAnnotation, len(canon.Delays))
		copy(ds, canon.Delays)
		for i, d := range ds {
			if strings.TrimSpace(d.Net) == "" {
				return nil, badUpload("bad_annotation", "delay annotation %d names no net", i)
			}
			if d.Delay <= 0 {
				return nil, badUpload("bad_annotation", "delay annotation for %q must be > 0, got %d", d.Net, d.Delay)
			}
			if d.DMin < 0 || d.DMin > d.Delay {
				return nil, badUpload("bad_annotation", "annotation for %q has dmin %d outside [0, %d]", d.Net, d.DMin, d.Delay)
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Net < ds[j].Net })
		out := ds[:0]
		for _, d := range ds {
			if n := len(out); n > 0 && out[n-1].Net == d.Net {
				if out[n-1] != d {
					return nil, badUpload("conflicting_annotation",
						"net %q annotated twice with different delays (%d/%d vs %d/%d)",
						d.Net, out[n-1].Delay, out[n-1].DMin, d.Delay, d.DMin)
				}
				continue // identical duplicate: collapse
			}
			out = append(out, d)
		}
		canon.Delays = out
	}
	return &canon, nil
}

// HashUpload canonicalizes the upload and returns its content address
// together with the canonical form (which Put hands to the circuit
// builder so hashing and parsing agree on the effective defaults).
func HashUpload(up *api.UploadRequest) (api.Hash, *api.UploadRequest, error) {
	canon, err := Canonicalize(up)
	if err != nil {
		return "", nil, err
	}
	var b bytes.Buffer
	// Every variable-length field is length-prefixed so no crafted
	// netlist/SDF/name combination can collide by shifting bytes
	// across field boundaries.
	fmt.Fprintf(&b, "ltta-circuit/v1\nformat:%s\nname:%d:%s\ndefaultDelay:%d\n",
		canon.Format, len(canon.Name), canon.Name, canon.DefaultDelay)
	fmt.Fprintf(&b, "netlist:%d:", len(canon.Netlist))
	b.WriteString(canon.Netlist)
	fmt.Fprintf(&b, "\nsdf:%d:", len(canon.SDF))
	b.WriteString(canon.SDF)
	fmt.Fprintf(&b, "\ndelays:%d\n", len(canon.Delays))
	for _, d := range canon.Delays {
		fmt.Fprintf(&b, "%d:%s %d %d\n", len(d.Net), d.Net, d.Delay, d.DMin)
	}
	return api.NewHash(sha256.Sum256(b.Bytes())), canon, nil
}
