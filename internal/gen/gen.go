// Package gen constructs the workloads of the paper's evaluation: the
// Hrapcenko false-path circuit of Figure 1, carry-skip and ripple-carry
// adders (Figure 2 and the Section-6 adder experiment), an array
// multiplier (the c6288 stand-in), deterministic random netlists, and
// the ISCAS'85 substitute suite used to regenerate Table 1 (the
// original benchmark netlists are external data; see DESIGN.md §4 for
// the substitution argument).
package gen

import (
	"fmt"

	"repro/internal/circuit"
)

// Hrapcenko builds the false-path circuit of Figure 1 (Example 2): an
// 8-gate network whose topological delay is 7·d but whose floating-mode
// delay is 6·d, because the longest path needs the shared side input e3
// at conflicting values. Inputs e1…e7, output s.
func Hrapcenko(d int64) *circuit.Circuit {
	b := circuit.NewBuilder("hrapcenko")
	for i := 1; i <= 7; i++ {
		b.Input(fmt.Sprintf("e%d", i))
	}
	b.Gate(circuit.AND, d, "n1", "e1", "e2") // g1
	b.Gate(circuit.AND, d, "n2", "n1", "e3") // g2
	b.Gate(circuit.OR, d, "n3", "n2", "e4")  // g3
	b.Gate(circuit.AND, d, "n4", "n3", "e5") // g4
	b.Gate(circuit.AND, d, "n5", "n4", "e6") // g5
	b.Gate(circuit.OR, d, "n6", "n4", "e3")  // g6: shares e3 with g2
	b.Gate(circuit.AND, d, "n7", "n6", "e7") // g7
	b.Gate(circuit.OR, d, "s", "n7", "n5")   // g8
	b.Output("s")
	c, err := b.Build()
	if err != nil {
		panic("gen: Hrapcenko: " + err.Error())
	}
	return c
}

// FalsePathChain concatenates n copies of the Hrapcenko block, feeding
// each copy's output into the next copy's e1, multiplying the
// topological-vs-floating gap. Inputs are e<i>_<k>; the output is s.
func FalsePathChain(n int, d int64) *circuit.Circuit {
	if n < 1 {
		panic("gen: FalsePathChain needs n ≥ 1")
	}
	b := circuit.NewBuilder(fmt.Sprintf("falsepath%d", n))
	prev := ""
	for k := 0; k < n; k++ {
		e := func(i int) string { return fmt.Sprintf("e%d_%d", i, k) }
		nn := func(name string) string { return fmt.Sprintf("%s_%d", name, k) }
		first := e(1)
		if k == 0 {
			b.Input(first)
		} else {
			first = prev
		}
		for i := 2; i <= 7; i++ {
			b.Input(e(i))
		}
		b.Gate(circuit.AND, d, nn("n1"), first, e(2))
		b.Gate(circuit.AND, d, nn("n2"), nn("n1"), e(3))
		b.Gate(circuit.OR, d, nn("n3"), nn("n2"), e(4))
		b.Gate(circuit.AND, d, nn("n4"), nn("n3"), e(5))
		b.Gate(circuit.AND, d, nn("n5"), nn("n4"), e(6))
		b.Gate(circuit.OR, d, nn("n6"), nn("n4"), e(3))
		b.Gate(circuit.AND, d, nn("n7"), nn("n6"), e(7))
		b.Gate(circuit.OR, d, nn("s"), nn("n7"), nn("n5"))
		prev = nn("s")
	}
	// The chain output is the last block's s, renamed via a buffer so
	// the output net is called "s".
	b.Gate(circuit.BUFFER, 0, "s", prev)
	b.Output("s")
	c, err := b.Build()
	if err != nil {
		panic("gen: FalsePathChain: " + err.Error())
	}
	return c
}

// fullAdder emits sum and carry gates for one bit using the
// p/g decomposition (p = a⊕b, g = a·b, sum = p⊕cin,
// cout = g + p·cin) and returns the carry-out net name.
func fullAdder(b *circuit.Builder, d int64, prefix, a, x, cin string) (sum, cout string) {
	p := prefix + "_p"
	g := prefix + "_g"
	pc := prefix + "_pc"
	sum = prefix + "_s"
	cout = prefix + "_c"
	b.Gate(circuit.XOR, d, p, a, x)
	b.Gate(circuit.AND, d, g, a, x)
	b.Gate(circuit.XOR, d, sum, p, cin)
	b.Gate(circuit.AND, d, pc, p, cin)
	b.Gate(circuit.OR, d, cout, g, pc)
	return sum, cout
}

// RippleCarryAdder builds an n-bit ripple-carry adder with inputs
// a0…a(n−1), b0…b(n−1), cin and outputs s0…s(n−1), cout.
func RippleCarryAdder(n int, d int64) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("rca%d", n))
	for i := 0; i < n; i++ {
		b.Input(fmt.Sprintf("a%d", i))
		b.Input(fmt.Sprintf("b%d", i))
	}
	b.Input("cin")
	carry := "cin"
	for i := 0; i < n; i++ {
		sum, cout := fullAdder(b, d, fmt.Sprintf("fa%d", i),
			fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), carry)
		b.Output(sum)
		carry = cout
	}
	b.Gate(circuit.BUFFER, 0, "cout", carry)
	b.Output("cout")
	c, err := b.Build()
	if err != nil {
		panic("gen: RippleCarryAdder: " + err.Error())
	}
	return c
}

// CarrySkipAdder builds an n-bit carry-skip adder with the given block
// size (Figure 2's structure): within each block the carry ripples;
// around each block a mux-based skip selects c_out = P ? c_in : ripple
// (P the AND of the block's propagate signals). Sensitising the
// in-block ripple requires P = 1, but P = 1 steers the mux to the skip
// leg — so the full ripple path is false, exactly the situation where
// the last-transition interval cannot cross the skip gates without
// dominator implications. Block-boundary carries are named c0 … cK
// (cK = cout).
func CarrySkipAdder(n, block int, d int64) *circuit.Circuit {
	if block < 1 || n < 1 {
		panic("gen: CarrySkipAdder needs n ≥ 1, block ≥ 1")
	}
	b := circuit.NewBuilder(fmt.Sprintf("csa%d_%d", n, block))
	for i := 0; i < n; i++ {
		b.Input(fmt.Sprintf("a%d", i))
		b.Input(fmt.Sprintf("b%d", i))
	}
	b.Input("cin")
	b.Gate(circuit.BUFFER, 0, "c0", "cin")
	carryIn := "c0" // block boundary carry
	blockIdx := 0
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		ripple := carryIn
		var props []string
		for i := lo; i < hi; i++ {
			prefix := fmt.Sprintf("fa%d", i)
			sum, cout := fullAdder(b, d, prefix,
				fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), ripple)
			b.Output(sum)
			props = append(props, prefix+"_p")
			ripple = cout
		}
		blockIdx++
		bp := fmt.Sprintf("P%d", blockIdx)
		if len(props) == 1 {
			b.Gate(circuit.BUFFER, d, bp, props[0])
		} else {
			b.Gate(circuit.AND, d, bp, props...)
		}
		nbp := fmt.Sprintf("NP%d", blockIdx)
		skip := fmt.Sprintf("skip%d", blockIdx)
		rip := fmt.Sprintf("rip%d", blockIdx)
		bc := fmt.Sprintf("c%d", blockIdx)
		b.Gate(circuit.NOT, d, nbp, bp)
		b.Gate(circuit.AND, d, skip, bp, carryIn)
		b.Gate(circuit.AND, d, rip, nbp, ripple)
		b.Gate(circuit.OR, d, bc, skip, rip)
		carryIn = bc
	}
	b.Gate(circuit.BUFFER, 0, "cout", carryIn)
	b.Output("cout")
	c, err := b.Build()
	if err != nil {
		panic("gen: CarrySkipAdder: " + err.Error())
	}
	return c
}

// StemGadget builds the stem-correlation showcase: a deep data chain
// from x0 feeds two equal-length branches that reconverge at an OR, and
// each branch is gated by BOTH polarities of the early fanout stem s
// (branch A needs ¬s-then-s, branch B needs s-then-¬s), so every
// full-length path is false. Local narrowing cannot refute a
// full-length timing check — at the reconvergence either branch could
// carry, so neither side value is forced — and dominator implications
// only narrow the shared chain; splitting the single stem s kills both
// branches in both classes. This is the situation the paper's stem
// correlation resolves on c2670/c6288. Inputs x0, s0; output z.
func StemGadget(depth int, d int64) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("stemgadget%d", depth))
	b.Input("x0")
	b.Input("s0")
	appendStemGadget(b, "", depth, d)
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		panic("gen: StemGadget: " + err.Error())
	}
	return c
}

// appendStemGadget inlines the gadget into an existing builder. The
// data-chain input is <prefix>x0 and the stem-chain input <prefix>s0
// (declared by the caller as inputs or driven nets); the output is
// <prefix>z.
func appendStemGadget(b *circuit.Builder, prefix string, depth int, d int64) {
	p := func(n string) string { return prefix + n }
	cur := p("x0")
	for i := 1; i <= depth; i++ {
		next := fmt.Sprintf("%sx%d", prefix, i)
		b.Gate(circuit.BUFFER, d, next, cur)
		cur = next
	}
	b.Gate(circuit.BUFFER, d, p("s"), p("s0"))
	b.Gate(circuit.NOT, d, p("ns"), p("s"))
	b.Gate(circuit.BUFFER, d, p("bs"), p("s"))
	b.Gate(circuit.AND, d, p("a1"), cur, p("ns"))
	b.Gate(circuit.AND, d, p("a2"), p("a1"), p("bs"))
	b.Gate(circuit.AND, d, p("b1"), cur, p("bs"))
	b.Gate(circuit.AND, d, p("b2"), p("b1"), p("ns"))
	b.Gate(circuit.OR, d, p("j"), p("a2"), p("b2"))
	b.Gate(circuit.BUFFER, d, p("z"), p("j"))
}

// ArrayMultiplier builds an n×n combinational array multiplier (the
// c6288 stand-in: a deep array of adders over AND partial products with
// massive reconvergent fanout). Partial-product bits are reduced column
// by column in FIFO order — keeping the long serial carry chains that
// make c6288 notoriously hard — and the result appears on p0…p(2n−1).
func ArrayMultiplier(n int, d int64) *circuit.Circuit {
	if n < 2 {
		panic("gen: ArrayMultiplier needs n ≥ 2")
	}
	b := circuit.NewBuilder(fmt.Sprintf("mult%d", n))
	for i := 0; i < n; i++ {
		b.Input(fmt.Sprintf("a%d", i))
		b.Input(fmt.Sprintf("b%d", i))
	}
	// One spare column: the reduction can structurally push a carry out
	// of weight 2n−1 even though it is provably constant 0 there.
	cols := make([][]string, 2*n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp := fmt.Sprintf("pp%d_%d", i, j)
			b.Gate(circuit.AND, d, pp, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j))
			cols[i+j] = append(cols[i+j], pp)
		}
	}
	cell := 0
	for w := 0; w < 2*n; w++ {
		for len(cols[w]) > 1 {
			cell++
			prefix := fmt.Sprintf("m%d", cell)
			if len(cols[w]) >= 3 {
				x, y, cin := cols[w][0], cols[w][1], cols[w][2]
				cols[w] = cols[w][3:]
				s, c := fullAdder(b, d, prefix, x, y, cin)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], c)
			} else {
				x, y := cols[w][0], cols[w][1]
				cols[w] = cols[w][2:]
				s := prefix + "_s"
				c := prefix + "_c"
				b.Gate(circuit.XOR, d, s, x, y)
				b.Gate(circuit.AND, d, c, x, y)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], c)
			}
		}
		out := fmt.Sprintf("p%d", w)
		if len(cols[w]) == 0 {
			// Constant-zero product bit (only possible at the very top
			// weight for degenerate sizes).
			b.Gate(circuit.NOT, 0, out+"_na", "a0")
			b.Gate(circuit.AND, 0, out, "a0", out+"_na")
		} else {
			b.Gate(circuit.BUFFER, 0, out, cols[w][0])
		}
		b.Output(out)
	}
	c, err := b.Build()
	if err != nil {
		panic("gen: ArrayMultiplier: " + err.Error())
	}
	return c
}
