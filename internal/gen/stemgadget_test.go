package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestStemGadgetStages pins the defining property of the gadget: the
// full-length timing check survives plain narrowing AND dominator
// implications, and is refuted exactly by stem correlation — the
// paper's c2670/c6288 situation.
func TestStemGadgetStages(t *testing.T) {
	c := StemGadget(6, 10)
	z, _ := c.NetByName("z")
	exact, _, err := sim.FloatingDelayExhaustive(c, z)
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewVerifier(c, core.Default())
	if v.Topological() != 100 {
		t.Fatalf("top = %s, want 100", v.Topological())
	}
	if exact >= 100 {
		t.Fatalf("the full-length path must be false, exact = %s", exact)
	}
	rep := v.Check(z, exact.Add(1))
	if rep.BeforeGITD != core.PossibleViolation {
		t.Fatalf("plain narrowing must NOT refute (the branch disjunction hides the conflict), got %s", rep.BeforeGITD)
	}
	if rep.AfterGITD != core.PossibleViolation {
		t.Fatalf("dominators must NOT refute (they only narrow the shared chain), got %s", rep.AfterGITD)
	}
	if rep.AfterStem != core.NoViolation {
		t.Fatalf("stem correlation must refute, got %s (CA=%s)", rep.AfterStem, rep.CaseAnalysis)
	}
	rep2 := v.Check(z, exact)
	if rep2.Final != core.ViolationFound {
		t.Fatalf("δ=exact must be witnessed, got %s", rep2.Final)
	}
}

// TestStemGadgetExactness double-checks the engine against the oracle
// on several gadget sizes.
func TestStemGadgetExactness(t *testing.T) {
	for _, depth := range []int{3, 5, 8} {
		c := StemGadget(depth, 10)
		z, _ := c.NetByName("z")
		want, _, err := sim.FloatingDelayExhaustive(c, z)
		if err != nil {
			t.Fatal(err)
		}
		v := core.NewVerifier(c, core.Default())
		got, err := v.ExactFloatingDelay(z)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact || got.Delay != want {
			t.Fatalf("depth %d: engine %s (exact=%v), oracle %s", depth, got.Delay, got.Exact, want)
		}
	}
}
