package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// C17 builds the exact ISCAS'85 c17 netlist (six 2-input NANDs), the
// one benchmark small enough to be fully public knowledge.
func C17(d int64) *circuit.Circuit {
	b := circuit.NewBuilder("c17")
	for _, n := range []string{"G1", "G2", "G3", "G6", "G7"} {
		b.Input(n)
	}
	b.Gate(circuit.NAND, d, "G10", "G1", "G3")
	b.Gate(circuit.NAND, d, "G11", "G3", "G6")
	b.Gate(circuit.NAND, d, "G16", "G2", "G11")
	b.Gate(circuit.NAND, d, "G19", "G11", "G7")
	b.Gate(circuit.NAND, d, "G22", "G10", "G16")
	b.Gate(circuit.NAND, d, "G23", "G16", "G19")
	b.Output("G22")
	b.Output("G23")
	c, err := b.Build()
	if err != nil {
		panic("gen: C17: " + err.Error())
	}
	return c
}

// Random builds a seeded random DAG netlist with the given number of
// primary inputs and gates. Fan-in is 1–3, targets are biased towards
// recent nets so the circuit gains depth, and two outputs are exposed.
func Random(seed int64, nPI, nGates int, d int64) *circuit.Circuit {
	r := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(fmt.Sprintf("rand%d", seed))
	var nets []string
	for i := 0; i < nPI; i++ {
		n := fmt.Sprintf("i%d", i)
		b.Input(n)
		nets = append(nets, n)
	}
	types := []circuit.GateType{
		circuit.AND, circuit.NAND, circuit.OR, circuit.NOR,
		circuit.NOT, circuit.BUFFER, circuit.XOR, circuit.XNOR,
	}
	for i := 0; i < nGates; i++ {
		gt := types[r.Intn(len(types))]
		name := fmt.Sprintf("g%d", i)
		nin := 1
		if !gt.Unate() {
			nin = 2 + r.Intn(2)
		}
		ins := make([]string, nin)
		for j := range ins {
			k := len(nets) - 1 - r.Intn(minInt(len(nets), 8))
			ins[j] = nets[k]
		}
		b.Gate(gt, d, name, ins...)
		nets = append(nets, name)
	}
	b.Output(nets[len(nets)-1])
	if len(nets) > nPI+1 {
		b.Output(nets[len(nets)-2])
	}
	c, err := b.Build()
	if err != nil {
		panic("gen: Random: " + err.Error())
	}
	return c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ParityTree builds a balanced XOR tree over n inputs (the ECC-flavour
// block used by the c499/c1355 substitutes). Inputs x0…x(n−1), output z.
func ParityTree(n int, d int64) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("parity%d", n))
	var layer []string
	for i := 0; i < n; i++ {
		in := fmt.Sprintf("x%d", i)
		b.Input(in)
		layer = append(layer, in)
	}
	lvl := 0
	for len(layer) > 1 {
		var next []string
		for i := 0; i+1 < len(layer); i += 2 {
			o := fmt.Sprintf("t%d_%d", lvl, i/2)
			b.Gate(circuit.XOR, d, o, layer[i], layer[i+1])
			next = append(next, o)
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
		lvl++
	}
	b.Gate(circuit.BUFFER, 0, "z", layer[0])
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		panic("gen: ParityTree: " + err.Error())
	}
	return c
}

// Comparator builds an n-bit equality comparator with shared select
// reconvergence: eq = AND over XNOR(a_i, b_i). Inputs a*/b*, output eq.
func Comparator(n int, d int64) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("cmp%d", n))
	var bits []string
	for i := 0; i < n; i++ {
		a := fmt.Sprintf("a%d", i)
		x := fmt.Sprintf("b%d", i)
		b.Input(a)
		b.Input(x)
		e := fmt.Sprintf("eq%d", i)
		b.Gate(circuit.XNOR, d, e, a, x)
		bits = append(bits, e)
	}
	// Linear AND chain (deep, like the ISCAS comparators).
	cur := bits[0]
	for i := 1; i < n; i++ {
		o := fmt.Sprintf("and%d", i)
		b.Gate(circuit.AND, d, o, cur, bits[i])
		cur = o
	}
	b.Gate(circuit.BUFFER, 0, "eq", cur)
	b.Output("eq")
	c, err := b.Build()
	if err != nil {
		panic("gen: Comparator: " + err.Error())
	}
	return c
}

// aluBlock appends an n-bit ALU-flavoured block to the builder: a
// ripple adder spine, a logic unit, and an output mux driven by shared
// select nets (the shared selects create the false paths and the
// reconvergent stems the paper's stages exercise). Returns the output
// net names.
func aluBlock(b *circuit.Builder, prefix string, n int, d int64) []string {
	in := func(base string, i int) string { return fmt.Sprintf("%s_%s%d", prefix, base, i) }
	for i := 0; i < n; i++ {
		b.Input(in("a", i))
		b.Input(in("b", i))
	}
	sel := prefix + "_sel"
	b.Input(sel)
	nsel := prefix + "_nsel"
	b.Gate(circuit.NOT, d, nsel, sel)
	carry := prefix + "_c0"
	b.Gate(circuit.AND, d, carry, sel, nsel) // constant 0 carry-in with gate depth
	var outs []string
	for i := 0; i < n; i++ {
		fa := fmt.Sprintf("%s_fa%d", prefix, i)
		sum, cout := fullAdder(b, d, fa, in("a", i), in("b", i), carry)
		carry = cout
		lg := fmt.Sprintf("%s_lg%d", prefix, i)
		b.Gate(circuit.NAND, d, lg, in("a", i), in("b", i))
		// Output mux: sel ? sum : logic — sel is shared across bits.
		m0 := fmt.Sprintf("%s_m0_%d", prefix, i)
		m1 := fmt.Sprintf("%s_m1_%d", prefix, i)
		o := fmt.Sprintf("%s_o%d", prefix, i)
		b.Gate(circuit.AND, d, m1, sel, sum)
		b.Gate(circuit.AND, d, m0, nsel, lg)
		b.Gate(circuit.OR, d, o, m1, m0)
		outs = append(outs, o)
	}
	outs = append(outs, carry)
	return outs
}

// SuiteEntry describes one circuit of the Table-1 substitute suite,
// with the original benchmark's published topological delay and exact
// floating delay for the side-by-side comparison in EXPERIMENTS.md.
type SuiteEntry struct {
	Name    string
	Circuit *circuit.Circuit
	// PaperTop and PaperDelta are Table 1's "CIRCUIT MAX. TOP." and
	// exact-δ columns for the original ISCAS circuit (informational).
	PaperTop, PaperDelta int64
	// Substituted is false only for c17, which is reproduced exactly.
	Substituted bool
}

// SubstituteSuite builds the Table-1 workload: c17 exactly, and for
// every other ISCAS'85 circuit a deterministic synthetic stand-in of
// comparable structure (see DESIGN.md §4), NOR-mapped with a uniform
// delay of 10 per gate exactly as in the paper's experiments.
func SubstituteSuite() []SuiteEntry {
	const d = 10
	nor := func(c *circuit.Circuit, name string) *circuit.Circuit {
		m, err := circuit.MapToNOR(c, d)
		if err != nil {
			panic("gen: SubstituteSuite: " + err.Error())
		}
		m.Name = name
		return m
	}
	build := func(name string, f func(b *circuit.Builder)) *circuit.Circuit {
		b := circuit.NewBuilder(name)
		f(b)
		c, err := b.Build()
		if err != nil {
			panic("gen: SubstituteSuite " + name + ": " + err.Error())
		}
		return c
	}

	var entries []SuiteEntry
	entries = append(entries, SuiteEntry{Name: "c17", Circuit: C17(d), PaperTop: 50, PaperDelta: 50})

	// c432-sub: interrupt-controller flavour — priority chains with
	// shared enables.
	c432 := build("c432sub", func(b *circuit.Builder) {
		var prev string
		for g := 0; g < 3; g++ {
			en := fmt.Sprintf("en%d", g)
			b.Input(en)
			for i := 0; i < 6; i++ {
				r := fmt.Sprintf("r%d_%d", g, i)
				b.Input(r)
				q := fmt.Sprintf("q%d_%d", g, i)
				b.Gate(circuit.AND, 1, q, r, en)
				if prev == "" {
					prev = q
					continue
				}
				o := fmt.Sprintf("p%d_%d", g, i)
				np := fmt.Sprintf("np%d_%d", g, i)
				b.Gate(circuit.NOT, 1, np, prev)
				b.Gate(circuit.OR, 1, o, q, np)
				prev = o
			}
			b.Output(prev)
		}
	})
	entries = append(entries, SuiteEntry{Name: "c432", Circuit: nor(c432, "c432sub_nor"), PaperTop: 190, PaperDelta: 190, Substituted: true})

	// c499-sub: XOR-dominated ECC block (ECAT flavour).
	c499 := build("c499sub", func(b *circuit.Builder) {
		var syn []string
		for t := 0; t < 4; t++ {
			var layer []string
			for i := 0; i < 8; i++ {
				in := fmt.Sprintf("x%d_%d", t, i)
				b.Input(in)
				layer = append(layer, in)
			}
			lvl := 0
			for len(layer) > 1 {
				var next []string
				for i := 0; i+1 < len(layer); i += 2 {
					o := fmt.Sprintf("t%d_%d_%d", t, lvl, i/2)
					b.Gate(circuit.XOR, 1, o, layer[i], layer[i+1])
					next = append(next, o)
				}
				if len(layer)%2 == 1 {
					next = append(next, layer[len(layer)-1])
				}
				layer, lvl = next, lvl+1
			}
			syn = append(syn, layer[0])
			b.Output(layer[0])
		}
		// Corrector: AND of syndromes gated back into data outputs.
		all := "syn"
		b.Gate(circuit.AND, 1, all, syn...)
		for i := 0; i < 8; i++ {
			o := fmt.Sprintf("z%d", i)
			b.Gate(circuit.XOR, 1, o, all, fmt.Sprintf("x0_%d", i))
			b.Output(o)
		}
	})
	entries = append(entries, SuiteEntry{Name: "c499", Circuit: nor(c499, "c499sub_nor"), PaperTop: 250, PaperDelta: 250, Substituted: true})

	// c880-sub: 8-bit ALU.
	c880 := build("c880sub", func(b *circuit.Builder) {
		for _, o := range aluBlock(b, "u", 8, 1) {
			b.Output(o)
		}
	})
	entries = append(entries, SuiteEntry{Name: "c880", Circuit: nor(c880, "c880sub_nor"), PaperTop: 200, PaperDelta: 200, Substituted: true})

	// c1355-sub: the c499 function with every XOR already expanded —
	// here simply a deeper ECC with 2-input gates only (the NOR mapping
	// expands it further, like the real c1355).
	c1355 := build("c1355sub", func(b *circuit.Builder) {
		var syn []string
		for t := 0; t < 4; t++ {
			var layer []string
			for i := 0; i < 8; i++ {
				in := fmt.Sprintf("y%d_%d", t, i)
				b.Input(in)
				layer = append(layer, in)
			}
			lvl := 0
			for len(layer) > 1 {
				var next []string
				for i := 0; i+1 < len(layer); i += 2 {
					// XOR out of NANDs (4 gates) to mimic the expanded
					// implementation.
					p := fmt.Sprintf("u%d_%d_%d", t, lvl, i/2)
					q1 := p + "_q1"
					q2 := p + "_q2"
					q3 := p + "_q3"
					b.Gate(circuit.NAND, 1, q1, layer[i], layer[i+1])
					b.Gate(circuit.NAND, 1, q2, layer[i], q1)
					b.Gate(circuit.NAND, 1, q3, layer[i+1], q1)
					b.Gate(circuit.NAND, 1, p, q2, q3)
					next = append(next, p)
				}
				if len(layer)%2 == 1 {
					next = append(next, layer[len(layer)-1])
				}
				layer, lvl = next, lvl+1
			}
			syn = append(syn, layer[0])
			b.Output(layer[0])
		}
		all := "syn"
		b.Gate(circuit.AND, 1, all, syn...)
		for i := 0; i < 8; i++ {
			o := fmt.Sprintf("z%d", i)
			b.Gate(circuit.XOR, 1, o, all, fmt.Sprintf("y0_%d", i))
			b.Output(o)
		}
	})
	entries = append(entries, SuiteEntry{Name: "c1355", Circuit: nor(c1355, "c1355sub_nor"), PaperTop: 270, PaperDelta: 270, Substituted: true})

	// c1908-sub: ECC + carry-skip spine — the deep-output/dominator
	// showcase (the paper's dominator anecdote lives on c1908).
	c1908 := build("c1908sub", func(b *circuit.Builder) {
		csaOuts := appendCarrySkip(b, "k", 8, 4, 1)
		for _, o := range csaOuts {
			b.Output(o)
		}
		var layer []string
		for i := 0; i < 8; i++ {
			in := fmt.Sprintf("w%d", i)
			b.Input(in)
			layer = append(layer, in)
		}
		lvl := 0
		for len(layer) > 1 {
			var next []string
			for i := 0; i+1 < len(layer); i += 2 {
				o := fmt.Sprintf("pt%d_%d", lvl, i/2)
				b.Gate(circuit.XOR, 1, o, layer[i], layer[i+1])
				next = append(next, o)
			}
			if len(layer)%2 == 1 {
				next = append(next, layer[len(layer)-1])
			}
			layer, lvl = next, lvl+1
		}
		// Mix the parity into the adder's carry output for extra depth.
		b.Gate(circuit.XOR, 1, "chk", layer[0], csaOuts[len(csaOuts)-1])
		b.Output("chk")
	})
	entries = append(entries, SuiteEntry{Name: "c1908", Circuit: nor(c1908, "c1908sub_nor"), PaperTop: 340, PaperDelta: 310, Substituted: true})

	// c2670-sub: adder + comparator with heavily shared control nets,
	// plus the stem-correlation gadget as its longest structure (the
	// paper's c2670 is decided by stem correlation; see gen.StemGadget).
	c2670 := build("c2670sub", func(b *circuit.Builder) {
		b.Input("g_x0")
		b.Input("g_s0")
		appendStemGadget(b, "g_", 60, 1)
		b.Output("g_z")
		outs := aluBlock(b, "v", 10, 1)
		for _, o := range outs {
			b.Output(o)
		}
		var bits []string
		for i := 0; i < 10; i++ {
			e := fmt.Sprintf("ceq%d", i)
			b.Gate(circuit.XNOR, 1, e, fmt.Sprintf("v_a%d", i), fmt.Sprintf("v_b%d", i))
			bits = append(bits, e)
		}
		cur := bits[0]
		for i := 1; i < 10; i++ {
			o := fmt.Sprintf("cand%d", i)
			b.Gate(circuit.AND, 1, o, cur, bits[i])
			cur = o
		}
		// Gate the comparator with the ALU carry: both reconverge on
		// the shared a/b inputs.
		b.Gate(circuit.AND, 1, "agree", cur, outs[len(outs)-1])
		b.Output("agree")
	})
	entries = append(entries, SuiteEntry{Name: "c2670", Circuit: nor(c2670, "c2670sub_nor"), PaperTop: 250, PaperDelta: 240, Substituted: true})

	// c3540-sub: wider ALU with two stacked stages.
	c3540 := build("c3540sub", func(b *circuit.Builder) {
		first := aluBlock(b, "s1", 8, 1)
		second := aluBlock(b, "s2", 8, 1)
		for i := 0; i < 8; i++ {
			o := fmt.Sprintf("m%d", i)
			b.Gate(circuit.XOR, 1, o, first[i], second[i])
			b.Output(o)
		}
		b.Gate(circuit.OR, 1, "cc", first[8], second[8])
		b.Output("cc")
	})
	entries = append(entries, SuiteEntry{Name: "c3540", Circuit: nor(c3540, "c3540sub_nor"), PaperTop: 410, PaperDelta: 390, Substituted: true})

	// c5315-sub: three ALU slices cross-checked.
	c5315 := build("c5315sub", func(b *circuit.Builder) {
		x := aluBlock(b, "x", 9, 1)
		y := aluBlock(b, "y", 9, 1)
		z := aluBlock(b, "z", 9, 1)
		for i := 0; i < 9; i++ {
			o := fmt.Sprintf("o%d", i)
			t := fmt.Sprintf("t%d", i)
			b.Gate(circuit.XOR, 1, t, x[i], y[i])
			b.Gate(circuit.XOR, 1, o, t, z[i])
			b.Output(o)
		}
		b.Gate(circuit.OR, 1, "anycarry", x[9], y[9], z[9])
		b.Output("anycarry")
	})
	entries = append(entries, SuiteEntry{Name: "c5315", Circuit: nor(c5315, "c5315sub_nor"), PaperTop: 460, PaperDelta: 450, Substituted: true})

	// c6288-sub: a real array multiplier.
	entries = append(entries, SuiteEntry{Name: "c6288", Circuit: nor(ArrayMultiplier(8, 1), "c6288sub_nor"), PaperTop: 1230, PaperDelta: 1220, Substituted: true})

	// c7552-sub: wide adder + comparator + parity, shared operands.
	c7552 := build("c7552sub", func(b *circuit.Builder) {
		outs := aluBlock(b, "w", 12, 1)
		for _, o := range outs {
			b.Output(o)
		}
		var bits []string
		for i := 0; i < 12; i++ {
			e := fmt.Sprintf("peq%d", i)
			b.Gate(circuit.XNOR, 1, e, fmt.Sprintf("w_a%d", i), fmt.Sprintf("w_b%d", i))
			bits = append(bits, e)
		}
		lvl := 0
		layer := bits
		for len(layer) > 1 {
			var next []string
			for i := 0; i+1 < len(layer); i += 2 {
				o := fmt.Sprintf("pp%d_%d", lvl, i/2)
				b.Gate(circuit.AND, 1, o, layer[i], layer[i+1])
				next = append(next, o)
			}
			if len(layer)%2 == 1 {
				next = append(next, layer[len(layer)-1])
			}
			layer, lvl = next, lvl+1
		}
		b.Gate(circuit.BUFFER, 1, "alleq", layer[0])
		b.Output("alleq")
	})
	entries = append(entries, SuiteEntry{Name: "c7552", Circuit: nor(c7552, "c7552sub_nor"), PaperTop: 380, PaperDelta: 370, Substituted: true})

	return entries
}

// appendCarrySkip inlines a carry-skip adder into an existing builder
// with a name prefix, returning the sum outputs plus the final carry.
func appendCarrySkip(b *circuit.Builder, prefix string, n, block int, d int64) []string {
	in := func(base string, i int) string { return fmt.Sprintf("%s_%s%d", prefix, base, i) }
	for i := 0; i < n; i++ {
		b.Input(in("a", i))
		b.Input(in("b", i))
	}
	cin := prefix + "_cin"
	b.Input(cin)
	carryIn := cin
	blockIdx := 0
	var outs []string
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		ripple := carryIn
		var props []string
		for i := lo; i < hi; i++ {
			fa := fmt.Sprintf("%s_fa%d", prefix, i)
			sum, cout := fullAdder(b, d, fa, in("a", i), in("b", i), ripple)
			outs = append(outs, sum)
			props = append(props, fa+"_p")
			ripple = cout
		}
		blockIdx++
		bp := fmt.Sprintf("%s_P%d", prefix, blockIdx)
		if len(props) == 1 {
			b.Gate(circuit.BUFFER, d, bp, props[0])
		} else {
			b.Gate(circuit.AND, d, bp, props...)
		}
		nbp := fmt.Sprintf("%s_NP%d", prefix, blockIdx)
		skip := fmt.Sprintf("%s_skip%d", prefix, blockIdx)
		rip := fmt.Sprintf("%s_rip%d", prefix, blockIdx)
		bc := fmt.Sprintf("%s_c%d", prefix, blockIdx)
		b.Gate(circuit.NOT, d, nbp, bp)
		b.Gate(circuit.AND, d, skip, bp, carryIn)
		b.Gate(circuit.AND, d, rip, nbp, ripple)
		b.Gate(circuit.OR, d, bc, skip, rip)
		carryIn = bc
	}
	outs = append(outs, carryIn)
	return outs
}
