package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// Industrial builds a hierarchical seeded netlist mixing the block
// types real designs are made of — ripple and carry-skip adder
// segments, parity trees, comparators, mux networks with shared
// selects, and an occasional false-path gadget — wired so later blocks
// consume earlier blocks' outputs. It is the stress workload used by
// the soak tests and throughput benchmarks: big enough to exercise
// every engine stage, deterministic per seed.
func Industrial(seed int64, blocks int, d int64) *circuit.Circuit {
	if blocks < 1 {
		panic("gen: Industrial needs blocks ≥ 1")
	}
	r := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(fmt.Sprintf("industrial%d_%d", seed, blocks))

	// pool of nets later blocks may consume
	var pool []string
	freshPI := func(prefix string, i int) string {
		n := fmt.Sprintf("%s%d", prefix, i)
		b.Input(n)
		return n
	}
	pick := func(prefix string, i int) string {
		if len(pool) == 0 || r.Intn(3) == 0 {
			return freshPI(prefix, i)
		}
		return pool[r.Intn(len(pool))]
	}
	piSeq := 0
	nextName := func(base string) string {
		piSeq++
		return fmt.Sprintf("%s_%d", base, piSeq)
	}

	for blk := 0; blk < blocks; blk++ {
		p := fmt.Sprintf("b%d", blk)
		switch r.Intn(5) {
		case 0: // ripple adder segment
			width := 2 + r.Intn(3)
			carry := pick(p+"_cin", piSeq)
			for i := 0; i < width; i++ {
				a := pick(p+"_a", piSeq+i)
				x := pick(p+"_b", piSeq+width+i)
				sum, cout := fullAdder(b, d, fmt.Sprintf("%s_fa%d", p, i), a, x, carry)
				pool = append(pool, sum)
				carry = cout
			}
			pool = append(pool, carry)
		case 1: // parity tree
			width := 3 + r.Intn(4)
			layer := make([]string, width)
			for i := range layer {
				layer[i] = pick(p+"_x", piSeq+i)
			}
			lvl := 0
			for len(layer) > 1 {
				var next []string
				for i := 0; i+1 < len(layer); i += 2 {
					o := fmt.Sprintf("%s_t%d_%d", p, lvl, i/2)
					b.Gate(circuit.XOR, d, o, layer[i], layer[i+1])
					next = append(next, o)
				}
				if len(layer)%2 == 1 {
					next = append(next, layer[len(layer)-1])
				}
				layer, lvl = next, lvl+1
			}
			pool = append(pool, layer[0])
		case 2: // equality chain
			width := 2 + r.Intn(3)
			var cur string
			for i := 0; i < width; i++ {
				e := fmt.Sprintf("%s_eq%d", p, i)
				b.Gate(circuit.XNOR, d, e, pick(p+"_l", piSeq+i), pick(p+"_r", piSeq+width+i))
				if cur == "" {
					cur = e
					continue
				}
				o := fmt.Sprintf("%s_and%d", p, i)
				b.Gate(circuit.AND, d, o, cur, e)
				cur = o
			}
			pool = append(pool, cur)
		case 3: // mux network with a shared select
			sel := pick(p+"_sel", piSeq)
			nsel := nextName(p + "_nsel")
			b.Gate(circuit.NOT, d, nsel, sel)
			for i := 0; i < 2+r.Intn(2); i++ {
				m1 := nextName(p + "_m1")
				m0 := nextName(p + "_m0")
				o := nextName(p + "_mux")
				b.Gate(circuit.AND, d, m1, sel, pick(p+"_d1", piSeq+i))
				b.Gate(circuit.AND, d, m0, nsel, pick(p+"_d0", piSeq+8+i))
				b.Gate(circuit.OR, d, o, m1, m0)
				pool = append(pool, o)
			}
		default: // NAND/NOR cloud
			for i := 0; i < 4+r.Intn(4); i++ {
				gt := circuit.NAND
				if r.Intn(2) == 0 {
					gt = circuit.NOR
				}
				o := nextName(p + "_g")
				b.Gate(gt, d, o, pick(p+"_u", piSeq+i), pick(p+"_v", piSeq+16+i))
				pool = append(pool, o)
			}
		}
	}
	// Expose the last few pool nets as outputs (deduplicated; a pool
	// net may appear twice, and a primary input drawn from the pool
	// must not be re-declared as an output of the DAG sweep below).
	outs := 0
	seen := map[string]bool{}
	for i := len(pool) - 1; i >= 0 && outs < 4; i-- {
		if seen[pool[i]] {
			continue
		}
		seen[pool[i]] = true
		b.Output(pool[i])
		outs++
	}
	c, err := b.Build()
	if err != nil {
		panic("gen: Industrial: " + err.Error())
	}
	return c
}
