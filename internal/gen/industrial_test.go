package gen

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestIndustrialDeterministic(t *testing.T) {
	a := Industrial(7, 6, 5)
	b := Industrial(7, 6, 5)
	if circuit.BenchString(a) != circuit.BenchString(b) {
		t.Fatal("Industrial must be deterministic per seed")
	}
	c := Industrial(8, 6, 5)
	if circuit.BenchString(a) == circuit.BenchString(c) {
		t.Fatal("different seeds must differ")
	}
}

func TestIndustrialShapes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := Industrial(seed, 8, 5)
		st := c.Stats()
		if st.Gates < 10 {
			t.Fatalf("seed %d: too small (%d gates)", seed, st.Gates)
		}
		if st.POs == 0 || st.PIs == 0 {
			t.Fatalf("seed %d: missing ports: %+v", seed, st)
		}
	}
}

// TestIndustrialSoak is the engine soak test: on mid-size hierarchical
// circuits the exact floating delay must match the exhaustive oracle on
// every output. Slow-ish; skipped with -short.
func TestIndustrialSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(0); seed < 12; seed++ {
		c := Industrial(seed, 5, 5)
		if len(c.PrimaryInputs()) > 16 {
			continue // keep the oracle tractable
		}
		v := core.NewVerifier(c, core.Default())
		for _, po := range c.PrimaryOutputs() {
			want, _, err := sim.FloatingDelayExhaustive(c, po)
			if err != nil {
				t.Fatal(err)
			}
			got, err := v.ExactFloatingDelay(po)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Exact || got.Delay != want {
				t.Fatalf("seed %d output %s: engine %s (exact=%v), oracle %s",
					seed, c.Net(po).Name, got.Delay, got.Exact, want)
			}
		}
	}
}
