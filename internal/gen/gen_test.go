package gen

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/delay"
	"repro/internal/sim"
)

// vecFor builds a sim.Vector assigning named PIs from the map (missing
// PIs get 0).
func vecFor(c *circuit.Circuit, m map[string]int) sim.Vector {
	v := make(sim.Vector, len(c.PrimaryInputs()))
	for i, pi := range c.PrimaryInputs() {
		v[i] = m[c.Net(pi).Name]
	}
	return v
}

func outVal(t *testing.T, c *circuit.Circuit, vals []int, name string) int {
	t.Helper()
	id, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return vals[id]
}

func TestHrapcenkoShape(t *testing.T) {
	c := Hrapcenko(10)
	if c.NumGates() != 8 || len(c.PrimaryInputs()) != 7 || len(c.PrimaryOutputs()) != 1 {
		t.Fatalf("shape wrong: %+v", c.Stats())
	}
	a := delay.New(c)
	if a.Topological() != 70 {
		t.Fatalf("top = %s, want 70", a.Topological())
	}
}

func TestHrapcenkoFloatingDelay(t *testing.T) {
	// The defining property of Figure 1: floating delay 60 < top 70.
	c := Hrapcenko(10)
	s, _ := c.NetByName("s")
	d, v, err := sim.FloatingDelayExhaustive(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if d != 60 {
		t.Fatalf("floating delay = %s, want 60 (witness %s)", d, v)
	}
}

func TestFalsePathChain(t *testing.T) {
	c := FalsePathChain(3, 10)
	a := delay.New(c)
	// Each block adds 70 topologically (block k's s feeds block k+1's
	// n1 chain of 7 gates).
	if a.Topological() != 210 {
		t.Fatalf("top = %s, want 210", a.Topological())
	}
	if len(c.PrimaryOutputs()) != 1 {
		t.Fatal("one output expected")
	}
	// FalsePathChain(1) must behave like Hrapcenko.
	c1 := FalsePathChain(1, 10)
	s, _ := c1.NetByName("s")
	d, _, err := sim.FloatingDelayExhaustive(c1, s)
	if err != nil {
		t.Fatal(err)
	}
	if d != 60 {
		t.Fatalf("chain(1) floating delay = %s, want 60", d)
	}
}

func TestRippleCarryAdderFunction(t *testing.T) {
	const n = 4
	c := RippleCarryAdder(n, 10)
	for a := 0; a < 1<<n; a++ {
		for x := 0; x < 1<<n; x++ {
			for cin := 0; cin <= 1; cin++ {
				m := map[string]int{"cin": cin}
				for i := 0; i < n; i++ {
					m[fmt.Sprintf("a%d", i)] = (a >> i) & 1
					m[fmt.Sprintf("b%d", i)] = (x >> i) & 1
				}
				vals, err := sim.Logic(c, vecFor(c, m))
				if err != nil {
					t.Fatal(err)
				}
				got := 0
				for i := 0; i < n; i++ {
					got |= outVal(t, c, vals, fmt.Sprintf("fa%d_s", i)) << i
				}
				got |= outVal(t, c, vals, "cout") << n
				if got != a+x+cin {
					t.Fatalf("RCA(%d+%d+%d) = %d", a, x, cin, got)
				}
			}
		}
	}
}

func TestCarrySkipAdderFunction(t *testing.T) {
	const n = 6
	c := CarrySkipAdder(n, 3, 10)
	for trial := 0; trial < 200; trial++ {
		a := (trial * 37) % (1 << n)
		x := (trial * 53) % (1 << n)
		cin := trial % 2
		m := map[string]int{"cin": cin}
		for i := 0; i < n; i++ {
			m[fmt.Sprintf("a%d", i)] = (a >> i) & 1
			m[fmt.Sprintf("b%d", i)] = (x >> i) & 1
		}
		vals, err := sim.Logic(c, vecFor(c, m))
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := 0; i < n; i++ {
			got |= outVal(t, c, vals, fmt.Sprintf("fa%d_s", i)) << i
		}
		got |= outVal(t, c, vals, "cout") << n
		if got != a+x+cin {
			t.Fatalf("CSA(%d+%d+%d) = %d", a, x, cin, got)
		}
	}
}

func TestCarrySkipAdderFalsePath(t *testing.T) {
	// The whole point of the carry-skip structure: the floating delay
	// of the carry output is strictly below its topological delay.
	c := CarrySkipAdder(6, 3, 10)
	cout, _ := c.NetByName("cout")
	a := delay.New(c)
	fd, _, err := sim.FloatingDelayExhaustive(c, cout)
	if err != nil {
		t.Fatal(err)
	}
	if fd >= a.Arrival(cout) {
		t.Fatalf("carry-skip false path missing: floating %s vs top %s", fd, a.Arrival(cout))
	}
}

func TestArrayMultiplierFunction(t *testing.T) {
	const n = 4
	c := ArrayMultiplier(n, 10)
	for a := 0; a < 1<<n; a++ {
		for x := 0; x < 1<<n; x++ {
			m := map[string]int{}
			for i := 0; i < n; i++ {
				m[fmt.Sprintf("a%d", i)] = (a >> i) & 1
				m[fmt.Sprintf("b%d", i)] = (x >> i) & 1
			}
			vals, err := sim.Logic(c, vecFor(c, m))
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for w := 0; w < 2*n; w++ {
				got |= outVal(t, c, vals, fmt.Sprintf("p%d", w)) << w
			}
			if got != a*x {
				t.Fatalf("mult(%d×%d) = %d", a, x, got)
			}
		}
	}
}

func TestC17Shape(t *testing.T) {
	c := C17(10)
	if c.NumGates() != 6 || len(c.PrimaryInputs()) != 5 || len(c.PrimaryOutputs()) != 2 {
		t.Fatalf("c17 shape wrong: %+v", c.Stats())
	}
	a := delay.New(c)
	if a.Topological() != 30 {
		t.Fatalf("c17 top = %s (delay 10 per gate, 3 levels)", a.Topological())
	}
}

func TestParityTreeFunction(t *testing.T) {
	c := ParityTree(5, 10)
	for bits := 0; bits < 32; bits++ {
		m := map[string]int{}
		p := 0
		for i := 0; i < 5; i++ {
			v := (bits >> i) & 1
			m[fmt.Sprintf("x%d", i)] = v
			p ^= v
		}
		vals, err := sim.Logic(c, vecFor(c, m))
		if err != nil {
			t.Fatal(err)
		}
		if outVal(t, c, vals, "z") != p {
			t.Fatalf("parity(%05b) wrong", bits)
		}
	}
}

func TestComparatorFunction(t *testing.T) {
	c := Comparator(4, 10)
	for a := 0; a < 16; a++ {
		for x := 0; x < 16; x++ {
			m := map[string]int{}
			for i := 0; i < 4; i++ {
				m[fmt.Sprintf("a%d", i)] = (a >> i) & 1
				m[fmt.Sprintf("b%d", i)] = (x >> i) & 1
			}
			vals, err := sim.Logic(c, vecFor(c, m))
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			if a == x {
				want = 1
			}
			if outVal(t, c, vals, "eq") != want {
				t.Fatalf("cmp(%d,%d) wrong", a, x)
			}
		}
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(42, 6, 30, 5)
	b := Random(42, 6, 30, 5)
	if circuit.BenchString(a) != circuit.BenchString(b) {
		t.Fatal("Random must be deterministic per seed")
	}
	c := Random(43, 6, 30, 5)
	if circuit.BenchString(a) == circuit.BenchString(c) {
		t.Fatal("different seeds must differ")
	}
}

func TestSubstituteSuite(t *testing.T) {
	entries := SubstituteSuite()
	if len(entries) != 11 {
		t.Fatalf("suite has %d entries, want 11 (c17 + 10 substitutes)", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Name] {
			t.Fatalf("duplicate suite entry %s", e.Name)
		}
		seen[e.Name] = true
		if e.Circuit.NumGates() == 0 {
			t.Fatalf("%s is empty", e.Name)
		}
		if e.Name != "c17" {
			if !e.Substituted {
				t.Fatalf("%s must be marked substituted", e.Name)
			}
			// Everything but c17 is NOR-mapped with delay 10.
			for i := 0; i < e.Circuit.NumGates(); i++ {
				g := e.Circuit.Gate(circuit.GateID(i))
				if g.Type != circuit.NOR || g.Delay != 10 {
					t.Fatalf("%s gate %d is %s d=%d, want NOR d=10", e.Name, i, g.Type, g.Delay)
				}
			}
		}
	}
	// Paper rows present for the classic names.
	for _, n := range []string{"c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"} {
		if n == "c17" {
			continue
		}
		if !seen[n] {
			t.Errorf("suite missing %s", n)
		}
	}
}

func TestSuiteSizesReasonable(t *testing.T) {
	for _, e := range SubstituteSuite() {
		st := e.Circuit.Stats()
		if e.Name == "c17" {
			continue
		}
		if st.Gates < 50 {
			t.Errorf("%s has only %d gates — too small to exercise the stages", e.Name, st.Gates)
		}
		if st.Levels < 8 {
			t.Errorf("%s has only %d levels — too shallow", e.Name, st.Levels)
		}
	}
}
