package cfg

import "go/ast"

// Flow is a forward dataflow problem over a Graph. F is the fact
// (lattice element) type; all callbacks must treat facts as
// immutable values — Transfer and Branch return fresh facts rather
// than mutating their arguments, so one fact may flow into several
// successors.
type Flow[F any] struct {
	// Init is the fact at function entry.
	Init F
	// Join merges the facts of two converging paths.
	Join func(a, b F) F
	// Equal decides fixpoint convergence.
	Equal func(a, b F) bool
	// Transfer applies the effect of one block node.
	Transfer func(n ast.Node, f F) F
	// Branch, when non-nil, refines the fact along the true and false
	// edges of a two-way branch on cond (e.g. `if mu.TryLock()`). It
	// runs after Transfer has already processed cond as a node.
	Branch func(cond ast.Expr, f F) (ift, iff F)
}

// Result holds the fixpoint of a Forward run.
type Result[F any] struct {
	flow Flow[F]
	// In maps each reachable block to the fact at its start (the join
	// over incoming edges). Unreachable blocks are absent.
	In map[*Block]F
}

// Forward runs the worklist algorithm to a fixpoint and returns the
// per-block entry facts. Termination requires the usual lattice
// conditions: Join monotone with finite ascending chains for the
// facts the transfer functions actually produce.
func (fl Flow[F]) Forward(g *Graph) *Result[F] {
	in := map[*Block]F{g.Entry: fl.Init}
	queued := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		f := in[blk]
		for _, n := range blk.Nodes {
			f = fl.Transfer(n, f)
		}

		push := func(succ *Block, sf F) {
			old, ok := in[succ]
			if ok {
				sf = fl.Join(old, sf)
				if fl.Equal(old, sf) {
					return
				}
			}
			in[succ] = sf
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
		if blk.Cond != nil && len(blk.Succs) == 2 && fl.Branch != nil {
			tf, ff := fl.Branch(blk.Cond, f)
			push(blk.Succs[0], tf)
			push(blk.Succs[1], ff)
		} else {
			for _, s := range blk.Succs {
				push(s, f)
			}
		}
	}
	return &Result[F]{flow: fl, In: in}
}

// Walk replays the block's transfer sequence, calling visit with the
// fact in force immediately before each node. Unreachable blocks are
// skipped. This is how a checking pass pairs every statement with the
// state it executes under.
func (r *Result[F]) Walk(blk *Block, visit func(n ast.Node, before F)) {
	f, ok := r.In[blk]
	if !ok {
		return
	}
	for _, n := range blk.Nodes {
		visit(n, f)
		f = r.flow.Transfer(n, f)
	}
}

// Exit returns the fact at the synthetic exit block of g and whether
// the exit is reachable at all (a function that ends every path in
// panic-free infinite loops has an unreachable exit).
func (r *Result[F]) Exit(g *Graph) (F, bool) {
	f, ok := r.In[g.Exit]
	return f, ok
}
