package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// The tests run a tiny "calls seen so far" analysis over hand-written
// bodies: the fact is the set of zero-argument function names already
// called, joined by intersection (must) or union (may). Checking the
// fact observed immediately before selected calls pins down the edge
// structure of the graph without depending on block numbering.

type callSet map[string]bool

func (s callSet) with(name string) callSet {
	out := make(callSet, len(s)+1)
	for k := range s {
		out[k] = true
	}
	out[name] = true
	return out
}

func (s callSet) String() string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

func intersect(a, b callSet) callSet {
	out := callSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func union(a, b callSet) callSet {
	out := callSet{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func setsEqual(a, b callSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// calledName returns the function name when n is a statement of the
// form `name()`.
func calledName(n ast.Node) (string, bool) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

func transfer(n ast.Node, f callSet) callSet {
	if name, ok := calledName(n); ok {
		return f.with(name)
	}
	return f
}

func buildGraph(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

func run(g *Graph, join func(a, b callSet) callSet, branch func(cond ast.Expr, f callSet) (callSet, callSet)) *Result[callSet] {
	fl := Flow[callSet]{
		Init:     callSet{},
		Join:     join,
		Equal:    setsEqual,
		Transfer: transfer,
		Branch:   branch,
	}
	return fl.Forward(g)
}

// before collects, for every `name()` statement reached by the flow,
// the fact in force just before it.
func before(g *Graph, res *Result[callSet]) map[string]callSet {
	out := map[string]callSet{}
	for _, blk := range g.Blocks {
		res.Walk(blk, func(n ast.Node, f callSet) {
			if name, ok := calledName(n); ok {
				if _, seen := out[name]; !seen {
					out[name] = f
				}
			}
		})
	}
	return out
}

func wantBefore(t *testing.T, got map[string]callSet, call string, want ...string) {
	t.Helper()
	f, ok := got[call]
	if !ok {
		t.Fatalf("call %s() never reached by flow", call)
	}
	w := callSet{}
	for _, n := range want {
		w[n] = true
	}
	if !setsEqual(f, w) {
		t.Errorf("before %s(): got %v, want %v", call, f, w)
	}
}

func TestIfElseJoin(t *testing.T) {
	g := buildGraph(t, `
		a()
		if cond {
			b()
		} else {
			c()
		}
		d()
	`)
	got := before(g, run(g, intersect, nil))
	wantBefore(t, got, "b", "a")
	wantBefore(t, got, "c", "a")
	wantBefore(t, got, "d", "a") // b ∩ c drops both arms
}

func TestIfWithoutElse(t *testing.T) {
	g := buildGraph(t, `
		if cond {
			b()
		}
		d()
	`)
	got := before(g, run(g, intersect, nil))
	wantBefore(t, got, "d") // skip edge: must-set empty
	got = before(g, run(g, union, nil))
	wantBefore(t, got, "d", "b")
}

func TestBranchRefinement(t *testing.T) {
	g := buildGraph(t, `
		if cond {
			b()
		} else {
			c()
		}
	`)
	branch := func(cond ast.Expr, f callSet) (callSet, callSet) {
		return f.with("TRUE"), f.with("FALSE")
	}
	got := before(g, run(g, intersect, branch))
	wantBefore(t, got, "b", "TRUE")
	wantBefore(t, got, "c", "FALSE")
}

func TestForLoop(t *testing.T) {
	g := buildGraph(t, `
		a()
		for i := 0; i < 10; i++ {
			b()
		}
		c()
	`)
	got := before(g, run(g, intersect, nil))
	wantBefore(t, got, "b", "a") // first iteration ∩ later iterations
	wantBefore(t, got, "c", "a") // zero-iteration path ∩ loop path
}

func TestForBreak(t *testing.T) {
	g := buildGraph(t, `
		for {
			a()
			if cond {
				break
			}
			b()
		}
		d()
	`)
	got := before(g, run(g, intersect, nil))
	wantBefore(t, got, "d", "a") // every path to d passed a; b only on some
	if _, ok := run(g, intersect, nil).Exit(g); !ok {
		t.Fatal("exit should be reachable via break")
	}
}

func TestForContinue(t *testing.T) {
	g := buildGraph(t, `
		for i := 0; i < 10; i++ {
			if cond {
				continue
			}
			b()
		}
		c()
	`)
	got := before(g, run(g, union, nil))
	wantBefore(t, got, "c", "b")
	// Under must-join the continue path keeps b() out of its own
	// entry fact: the first iteration has not called it.
	got = before(g, run(g, intersect, nil))
	wantBefore(t, got, "b")
}

func TestRangeLoop(t *testing.T) {
	g := buildGraph(t, `
		for range xs {
			a()
		}
		b()
	`)
	mustGot := before(g, run(g, intersect, nil))
	wantBefore(t, mustGot, "b") // zero-iteration path exists
	mayGot := before(g, run(g, union, nil))
	wantBefore(t, mayGot, "b", "a")
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildGraph(t, `
		switch x {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		default:
			c()
		}
		d()
	`)
	got := before(g, run(g, union, nil))
	wantBefore(t, got, "b", "a") // only the fallthrough edge carries a
	wantBefore(t, got, "c")
	wantBefore(t, got, "d", "a", "b", "c")
}

func TestSwitchNoDefaultSkipEdge(t *testing.T) {
	g := buildGraph(t, `
		a()
		switch x {
		case 1:
			b()
		}
		d()
	`)
	got := before(g, run(g, intersect, nil))
	wantBefore(t, got, "d", "a") // not b: the no-match edge skips it
}

func TestTypeSwitch(t *testing.T) {
	g := buildGraph(t, `
		switch v := x.(type) {
		case int:
			_ = v
			a()
		default:
			b()
		}
		c()
	`)
	got := before(g, run(g, union, nil))
	wantBefore(t, got, "c", "a", "b")
}

func TestSelect(t *testing.T) {
	g := buildGraph(t, `
		select {
		case <-ch:
			a()
		case v := <-ch2:
			_ = v
			b()
		}
		c()
	`)
	got := before(g, run(g, union, nil))
	wantBefore(t, got, "c", "a", "b")
}

func TestReturnAndPanicReachExit(t *testing.T) {
	g := buildGraph(t, `
		if cond {
			a()
			return
		}
		b()
		panic("boom")
	`)
	res := run(g, union, nil)
	f, ok := res.Exit(g)
	if !ok {
		t.Fatal("exit unreachable")
	}
	want := callSet{"a": true, "b": true}
	if !setsEqual(f, want) {
		t.Errorf("exit fact %v, want %v", f, want)
	}
	// Code after panic is dead: the must-view at exit is empty only
	// because the two terminating paths disagree, not because of a
	// spurious fallthrough edge.
	mres := run(g, intersect, nil)
	mf, _ := mres.Exit(g)
	if len(mf) != 0 {
		t.Errorf("must exit fact %v, want {}", mf)
	}
}

func TestUnreachableExit(t *testing.T) {
	g := buildGraph(t, `
		for {
			a()
		}
	`)
	if _, ok := run(g, union, nil).Exit(g); ok {
		t.Fatal("exit of an infinite loop should be unreachable")
	}
}

func TestGoto(t *testing.T) {
	g := buildGraph(t, `
		a()
		goto L
		b()
	L:
		c()
	`)
	got := before(g, run(g, union, nil))
	wantBefore(t, got, "c", "a")
	if _, reached := got["b"]; reached {
		t.Fatal("b() is dead code and must not be reached by the flow")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildGraph(t, `
	outer:
		for {
			for {
				a()
				break outer
			}
		}
		b()
	`)
	got := before(g, run(g, union, nil))
	wantBefore(t, got, "b", "a")
}

func TestLabeledContinue(t *testing.T) {
	g := buildGraph(t, `
	outer:
		for i := 0; i < 2; i++ {
			for {
				a()
				continue outer
			}
		}
		b()
	`)
	got := before(g, run(g, union, nil))
	wantBefore(t, got, "b", "a")
}

func TestDeferIsAnOrdinaryNode(t *testing.T) {
	g := buildGraph(t, `
		defer u()
		a()
	`)
	var defers int
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				defers++
			}
		}
	}
	if defers != 1 {
		t.Fatalf("defer statements in graph: got %d, want 1", defers)
	}
}

func TestCondTrueFalseEdgeOrder(t *testing.T) {
	g := buildGraph(t, `
		if cond {
			b()
		} else {
			c()
		}
	`)
	var condBlk *Block
	for _, blk := range g.Blocks {
		if blk.Cond != nil {
			condBlk = blk
			break
		}
	}
	if condBlk == nil {
		t.Fatal("no branching block found")
	}
	if len(condBlk.Succs) != 2 {
		t.Fatalf("branch successors: got %d, want 2", len(condBlk.Succs))
	}
	nameIn := func(blk *Block) string {
		for _, n := range blk.Nodes {
			if name, ok := calledName(n); ok {
				return name
			}
		}
		return ""
	}
	if nameIn(condBlk.Succs[0]) != "b" || nameIn(condBlk.Succs[1]) != "c" {
		t.Fatalf("edge order: Succs[0] leads to %q, Succs[1] to %q; want b, c",
			nameIn(condBlk.Succs[0]), nameIn(condBlk.Succs[1]))
	}
}
