// Package cfg builds lightweight intra-procedural control-flow graphs
// over go/ast function bodies and runs generic forward dataflow
// analyses on them. It is the shared substrate of the flow-sensitive
// lttalint passes (lockguard, deferunlock): pure syntax, no type
// information, sized for lint-grade precision rather than compiler
// completeness.
//
// A Graph is a set of basic blocks. Each block holds the statements
// and branch conditions it executes, in order; a block whose Cond is
// non-nil ends in a two-way branch whose first successor is the true
// edge and second the false edge, which is what lets an analysis
// refine facts across `if mu.TryLock()` style conditions. Return
// statements and calls to the panic builtin edge to the synthetic
// Exit block, so "every path to function exit" is exactly "every path
// to Exit".
//
// Supported control flow: if/else, for (including range), switch and
// type switch (including fallthrough), select, labeled break/continue,
// goto, defer (kept as an ordinary node — analyses decide what a
// registered defer means for their lattice), and panic termination.
// Function literals are NOT entered: a FuncLit body is a separate
// function with its own graph, and analyses are expected to skip
// FuncLit subtrees inside transfer functions.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: straight-line nodes followed by zero or
// more successor edges.
type Block struct {
	Index int
	// Nodes are the statements and condition expressions executed by
	// the block, in order. Compound statements never appear here —
	// only their evaluated parts do (an if's condition, a switch's
	// tag), so a transfer function may inspect a node's whole subtree
	// without seeing a nested body.
	Nodes []ast.Node
	// Cond, when non-nil, is the branch condition evaluated last in
	// the block: Succs[0] is taken when it is true, Succs[1] when
	// false.
	Cond  ast.Expr
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic sink reached by falling off the body, by
	// every return statement, and by every panic call.
	Exit *Block
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = &Block{}
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// frame is one enclosing breakable construct (loop, switch, select).
type frame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type builder struct {
	g      *Graph
	cur    *Block // nil while building unreachable code
	frames []frame
	labels map[string]*Block // goto targets (created on demand)
	// nextLabel is the pending label of a labeled loop/switch/select,
	// consumed by the frame push of the labeled statement.
	nextLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) { from.Succs = append(from.Succs, to) }

// add appends a node to the current block, starting a fresh
// (unreachable) block when control cannot reach here.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// moveTo finishes the current block with an edge to next and
// continues there.
func (b *builder) moveTo(next *Block) {
	if b.cur != nil {
		b.edge(b.cur, next)
	}
	b.cur = next
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a frame push.
func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.nextLabel = ""
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		if b.cur == nil { // defensive; add() guarantees non-nil
			return
		}
		cond := b.cur
		cond.Cond = s.Cond
		then := b.newBlock()
		b.edge(cond, then) // Succs[0]: true
		after := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB) // Succs[1]: false
			b.cur = then
			b.stmt(s.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(cond, after) // Succs[1]: false
			b.cur = then
			b.stmt(s.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.moveTo(head)
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
			b.edge(head, body)  // true
			b.edge(head, after) // false
		} else {
			b.edge(head, body)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.frames = append(b.frames, frame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		// The range operand is evaluated once, before the loop; the
		// per-iteration key/value bindings are treated as local and
		// carry no analysis-relevant effects.
		b.add(s.X)
		head := b.newBlock()
		b.moveTo(head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no way onward.
			b.cur = nil
			return
		}
		b.cur = after

	case *ast.LabeledStmt:
		name := s.Label.Name
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.nextLabel = name
			b.stmt(s.Stmt)
		default:
			// A goto target: start (or adopt) the label's block.
			blk := b.labelBlock(name)
			b.moveTo(blk)
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				if b.cur != nil {
					b.edge(b.cur, t.brk)
				}
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil {
				if b.cur != nil {
					b.edge(b.cur, t.cont)
				}
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				blk := b.labelBlock(s.Label.Name)
				if b.cur != nil {
					b.edge(b.cur, blk)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled (and consumed) by switchStmt; a stray one is a
			// parse artefact — drop control conservatively.
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.EmptyStmt:
		// nothing

	default:
		// Straight-line statement (assignment, expression, declaration,
		// send, inc/dec, defer, go): one node. A panic call terminates
		// the path into Exit, where registered defers still apply.
		b.add(s)
		if isPanic(s) {
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}
	}
}

// switchStmt builds expression and type switches: head evaluates
// init/tag, every case body is a successor of the head, fallthrough
// chains a body into the next one, and a missing default adds the
// skip edge head → after.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, frame{label: label, brk: after})

	clauses := body.List
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
	}
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		stmts := cc.Body
		fellThrough := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(bodies) && b.cur != nil {
					b.edge(b.cur, bodies[i+1])
				}
				b.cur = nil
				fellThrough = true
				break
			}
			b.stmt(st)
		}
		if !fellThrough && b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// labelBlock returns (creating on demand) the block a goto label
// lands on.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findFrame resolves a break/continue target; label may be nil.
func (b *builder) findFrame(label *ast.Ident, needCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// isPanic reports whether the statement is a call to the panic
// builtin (syntactically — the builder has no type information, and a
// shadowed panic would merely cost a little precision).
func isPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
