package analysis

import (
	"go/types"
	"strings"
)

// PkgPathBase returns the last element of a package path, with any
// test-variant suffix ("pkg [pkg.test]", as produced by go vet for
// test-augmented compilation units) stripped first. Analyzers match
// packages and types by this base name rather than the full module
// path so that the analysistest golden packages — which live under
// testdata roots with short import paths — exercise exactly the
// production code path.
func PkgPathBase(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// Deref removes one level of pointer indirection.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// AsNamed returns the named type behind t, looking through one
// pointer, or nil.
func AsNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := Deref(t).(*types.Named)
	return n
}

// IsType reports whether t (or *t) is the named type pkgBase.name,
// where pkgBase is matched against the base of the defining package's
// path (see PkgPathBase).
func IsType(t types.Type, pkgBase, name string) bool {
	n := AsNamed(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && PkgPathBase(obj.Pkg().Path()) == pkgBase
}
