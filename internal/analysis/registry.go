package analysis

import (
	"fmt"
	"sort"
	"sync"
)

var (
	registryMu sync.Mutex
	registry   = map[string]*Analyzer{}
)

// Register adds an analyzer to the process-wide registry. Analyzers
// self-register from an init function in their own package, so a
// driver opts a check in by importing it (see internal/analysis/all)
// and cmd/lttalint never changes as the suite grows. Registering two
// analyzers under one name panics: it is a build-time mistake.
func Register(a *Analyzer) {
	if a == nil || a.Name == "" || a.Run == nil {
		panic("analysis: Register of incomplete analyzer")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("analysis: duplicate analyzer %q", a.Name))
	}
	registry[a.Name] = a
}

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
