// Package deferunlock flags locks that are acquired but not released
// on every path to function exit — the leak that turns one early
// return or panic into a wedged coordinator.
//
// The check runs on the intra-procedural CFG with a may-hold (union)
// join: a lock still held on ANY path reaching the exit node is
// reported at its acquisition site. A `defer mu.Unlock()` discharges
// the lock immediately (the release is then guaranteed on every
// subsequent exit, including panics), which is why it is the
// preferred idiom. TryLock acquisitions count only on the branch
// where the call returned true. Functions whose exit is unreachable
// (run-forever loops) hold their locks legitimately and are skipped,
// as are locks the function did not itself acquire.
package deferunlock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/locks"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "deferunlock",
	Doc: `reports sync.Mutex/RWMutex acquisitions not released on every path to function exit

Prefer Lock + defer Unlock; an early return or panic between a bare
Lock/Unlock pair leaks the lock and wedges every later caller.`,
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	aliases := locks.Aliases(info, body)
	g := cfg.New(body)

	fl := cfg.Flow[locks.Held]{
		Init:  locks.Held{},
		Join:  func(a, b locks.Held) locks.Held { return a.Union(b) },
		Equal: func(a, b locks.Held) bool { return a.Equal(b) },
		Transfer: func(n ast.Node, held locks.Held) locks.Held {
			return transfer(info, aliases, n, held)
		},
		Branch: func(cond ast.Expr, held locks.Held) (tf, ff locks.Held) {
			return locks.BranchTryLock(info, aliases, cond, held)
		},
	}
	res := fl.Forward(g)
	leaked, ok := res.Exit(g)
	if !ok {
		return // exit unreachable: a run-forever loop owns its locks
	}
	for _, l := range leaked.All() {
		pass.Report(analysis.Diagnostic{
			Pos:      l.Pos,
			Category: "leak",
			Message:  l.Ref.Display + " is acquired here but not released on every path to function exit; prefer defer " + l.Ref.Display + "." + unlockName(l.Mode),
		})
	}
}

// transfer folds one node's mutex effects into the held set, with
// deferred releases discharging their lock immediately: once `defer
// mu.Unlock()` has run, the release is guaranteed at every later exit
// from the function.
func transfer(info *types.Info, aliases map[types.Object]types.Object, n ast.Node, held locks.Held) locks.Held {
	type rel struct {
		ref  locks.Ref
		mode locks.Mode
	}
	var deferred []rel
	out := locks.Apply(info, aliases, n, held, func(op locks.Op, ref locks.Ref) {
		if op.Kind == locks.Release {
			deferred = append(deferred, rel{ref, op.Mode})
		}
	})
	for _, d := range deferred {
		out = out.Without(d.ref, d.mode)
	}
	return out
}

func unlockName(m locks.Mode) string {
	if m == locks.Read {
		return "RUnlock()"
	}
	return "Unlock()"
}
