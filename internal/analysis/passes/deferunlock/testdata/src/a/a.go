// Package a exercises every deferunlock diagnostic kind: leaks via
// early return, panic, and partial-path release, plus the negatives
// (defer, all-path release, run-forever loops, TryLock discipline)
// and one justified suppression.
package a

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// ---- the good shapes ----

func deferred(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func pairedAllPaths(s *S, c bool) {
	s.mu.Lock()
	if c {
		s.n++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func readDeferred(s *S) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func tryDeferred(s *S) {
	if !s.mu.TryLock() {
		return
	}
	defer s.mu.Unlock()
	s.n++
}

// runForever never reaches function exit; holding across iterations
// is its own business.
func runForever(s *S) {
	for {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// ---- the leaks ----

func leakStraight(s *S) {
	s.mu.Lock() // want `s.mu is acquired here but not released on every path to function exit`
	s.n++
}

func leakEarlyReturn(s *S, c bool) {
	s.mu.Lock() // want `s.mu is acquired here but not released on every path`
	if c {
		return // leaks
	}
	s.mu.Unlock()
}

func leakPanic(s *S, c bool) {
	s.mu.Lock() // want `s.mu is acquired here but not released on every path`
	if c {
		panic("wedged with the lock held")
	}
	s.mu.Unlock()
}

func leakReadLock(s *S) int {
	s.rw.RLock() // want `s.rw is acquired here but not released on every path to function exit; prefer defer s.rw.RUnlock\(\)`
	return s.n
}

func leakTryBranch(s *S) {
	if s.mu.TryLock() { // want `s.mu is acquired here but not released on every path`
		s.n++
		return
	}
}

func leakConditionalDefer(s *S, c bool) {
	s.mu.Lock() // want `s.mu is acquired here but not released on every path`
	if c {
		defer s.mu.Unlock()
	}
}

func leakInClosure(s *S) func() {
	return func() {
		s.mu.Lock() // want `s.mu is acquired here but not released on every path`
		s.n++
	}
}

// wrongModeRelease pairs a write acquire with a read release; the
// write lock stays held.
func wrongModeRelease(s *S) {
	s.rw.Lock() // want `s.rw is acquired here but not released on every path`
	s.rw.RUnlock()
}

// ---- justified suppression: a lock handoff ----

// lockForCaller acquires on behalf of the caller, who releases.
func lockForCaller(s *S) {
	s.mu.Lock() //lttalint:ignore deferunlock lock handoff: the caller releases via unlockFromCallee
}

func unlockFromCallee(s *S) {
	s.mu.Unlock()
}
