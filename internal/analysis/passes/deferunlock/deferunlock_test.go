package deferunlock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/deferunlock"
)

func TestDeferUnlock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), deferunlock.Analyzer, "a")
}
