// Package constraint is the golden mirror of the real SoA kernel:
// every construct here is an allowed idiom and must produce no
// diagnostics.
package constraint

// System owns the flat domain store, trail the save arena — the same
// shapes (and default -arrays/-owners configuration) as the real
// kernel.
type System struct {
	dom   []int64
	trail trail
}

type trail struct {
	idx   []int32
	old   []int64
	marks []int
}

func New(n int) *System {
	// Composite-literal construction binds fresh arrays; no alias of an
	// existing arena is involved.
	return &System{dom: make([]int64, 4*n)}
}

// setLane is the trail-mediated element write.
func (s *System) setLane(i int, v int64) {
	if old := s.dom[i]; old != v {
		s.trail.save(int32(i), old)
		s.dom[i] = v
	}
}

func (t *trail) mark() { t.marks = append(t.marks, len(t.idx)) }

// save pushes onto the arena with the append grow idiom.
func (t *trail) save(i int32, old int64) {
	if len(t.marks) == 0 {
		return
	}
	t.idx = append(t.idx, i)
	t.old = append(t.old, old)
}

// Undo replays a level backwards and truncates with self-reslices.
func (s *System) Undo() {
	if n := len(s.trail.marks); n > 0 {
		base := s.trail.marks[n-1]
		s.trail.marks = s.trail.marks[:n-1]
		for i := len(s.trail.idx) - 1; i >= base; i-- {
			s.dom[s.trail.idx[i]] = s.trail.old[i]
		}
		s.trail.idx = s.trail.idx[:base]
		s.trail.old = s.trail.old[:base]
	}
}

// Snapshot copies the lanes out through the append splat idiom; the
// result never aliases the arena.
func (s *System) Snapshot(buf []int64) []int64 {
	return append(buf[:0], s.dom...)
}

// Restore copies a snapshot in: an owner-gated write.
func (s *System) Restore(snap []int64) {
	if len(snap) != len(s.dom) {
		panic("lane count mismatch")
	}
	copy(s.dom, snap)
	s.trail.idx = s.trail.idx[:0]
	s.trail.old = s.trail.old[:0]
	s.trail.marks = s.trail.marks[:0]
}

// reads shows every aliasing-free read from outside the owners.
func reads(s *System) int64 {
	var sum int64
	for _, v := range s.dom {
		sum += v
	}
	sum += s.dom[0]
	sum += int64(len(s.dom) + cap(s.dom))
	out := make([]int64, len(s.dom))
	copy(out, s.dom) // copy out: values leave, the alias does not
	if s.dom == nil {
		return 0
	}
	return sum + int64(len(s.trail.marks))
}
