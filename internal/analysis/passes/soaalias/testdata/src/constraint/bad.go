package constraint

type holder struct{ arr []int64 }

func sink([]int64) {}

// Escaping aliases: every way a reference to the arena can leave the
// kernel.
func leakReturn(s *System) []int64 {
	return s.dom // want `return aliases SoA array constraint\.System\.dom`
}

func leakSub(s *System) []int64 {
	return s.dom[1:3] // want `sub-slice aliases SoA array constraint\.System\.dom`
}

func aliases(s *System) {
	d := s.dom // want `assignment aliases SoA array constraint\.System\.dom`
	_ = d
	p := &s.dom[0] // want `address of an element aliases SoA array constraint\.System\.dom`
	_ = p
	sink(s.dom)             // want `call argument aliases SoA array constraint\.System\.dom`
	h := holder{arr: s.dom} // want `composite literal aliases SoA array constraint\.System\.dom`
	_ = h
	grown := append(s.dom, 1) // want `append result aliases SoA array constraint\.System\.dom`
	_ = grown
	t2 := s.trail.idx // want `assignment aliases SoA array constraint\.trail\.idx`
	_ = t2
}

// Writes from outside the owner types: the trail API is the only
// write path.
func writesOutside(s *System) {
	s.dom[3] = 9                         // want `write to SoA array constraint\.System\.dom outside its owner's methods`
	s.dom[3]++                           // want `write to SoA array constraint\.System\.dom`
	s.dom = nil                          // want `write to SoA array constraint\.System\.dom`
	copy(s.dom, []int64{1})              // want `write to SoA array constraint\.System\.dom`
	s.trail.marks = s.trail.marks[:0]    // want `write to SoA array constraint\.trail\.marks`
	s.trail.idx = append(s.trail.idx, 0) // want `write to SoA array constraint\.trail\.idx`
}

type wrapper struct{ s *System }

// A method on a non-owner type is still outside the kernel.
func (w *wrapper) bad() {
	w.s.dom[0] = 1 // want `write to SoA array constraint\.System\.dom`
}

// suppressed shows a justified escape hatch.
func suppressed(s *System) []int64 {
	return s.dom //lttalint:ignore soaalias golden test of the suppression path
}
