package soaalias_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/soaalias"
)

func TestSoaAlias(t *testing.T) {
	// "constraint" mirrors the real kernel: kernel.go holds the owner
	// types with every allowed idiom (element access, self-reslice,
	// append grow/splat, copy in and out), bad.go seeds the escaping
	// aliases and non-owner writes the pass must flag.
	analysistest.Run(t, analysistest.TestData(t), soaalias.Analyzer, "constraint")
}
