// Package soaalias enforces the aliasing discipline of the flat
// structure-of-arrays constraint kernel.
//
// constraint.System keeps every domain lane in one flat []int64 and
// the backtracking trail in an (index, old value) arena; the zero
// steady-state allocation guarantee and the Snapshot/Restore warm-start
// contract both depend on those arrays never being aliased. A retained
// sub-slice would observe (or corrupt) domains mid-solve, and a write
// that bypasses the trail API would break Undo. The analyzer checks
// two rules over the configured arrays:
//
//   - no escape: a protected array may be indexed, ranged over,
//     measured (len/cap), copied out of, re-sliced onto itself, or used
//     as the copy source of an append(dst[:0], arr...) snapshot — but a
//     reference to it (or to a sub-slice or element address) must never
//     be returned, stored, or passed to a non-builtin call.
//   - owner-only writes: element writes, whole-array assignments
//     (including the append grow and self-reslice idioms), and copy-into
//     are allowed only inside methods of the arrays' owner types, so the
//     trail arena is only ever written through the trail API.
package soaalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "soaalias",
	Doc: `flags escaping aliases of, and non-owner writes to, the SoA constraint kernel's flat arrays

The protected arrays (pkg.Owner.field) and the owner types whose
methods may write them are configurable (-arrays, -owners).`,
	Run: run,
}

var (
	arraysFlag string
	ownersFlag string
)

func init() {
	Analyzer.Flags.StringVar(&arraysFlag, "arrays",
		"constraint.System.dom,constraint.trail.idx,constraint.trail.old,constraint.trail.marks",
		"comma-separated pkg.Owner.field list of protected SoA arrays")
	Analyzer.Flags.StringVar(&ownersFlag, "owners",
		"constraint.System,constraint.trail",
		"comma-separated pkg.Type list of types whose methods may write the arrays")
	analysis.Register(Analyzer)
}

type arraySpec struct{ pkgBase, owner, field string }

type ownerSpec struct{ pkgBase, name string }

func config() (arrays []arraySpec, owners []ownerSpec) {
	for _, s := range strings.Split(arraysFlag, ",") {
		parts := strings.Split(strings.TrimSpace(s), ".")
		if len(parts) == 3 {
			arrays = append(arrays, arraySpec{parts[0], parts[1], parts[2]})
		}
	}
	for _, s := range strings.Split(ownersFlag, ",") {
		if pkg, name, ok := strings.Cut(strings.TrimSpace(s), "."); ok {
			owners = append(owners, ownerSpec{pkg, name})
		}
	}
	return arrays, owners
}

func run(pass *analysis.Pass) error {
	arrays, owners := config()
	info := pass.TypesInfo

	// protectedSel reports whether x selects one of the protected
	// arrays (a field of the right name on the right owner type).
	protectedSel := func(x *ast.SelectorExpr) (arraySpec, bool) {
		sel, ok := info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return arraySpec{}, false
		}
		for _, a := range arrays {
			if x.Sel.Name == a.field && analysis.IsType(sel.Recv(), a.pkgBase, a.owner) {
				return a, true
			}
		}
		return arraySpec{}, false
	}

	isOwnerMethod := func(fd *ast.FuncDecl) bool {
		if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
			return false
		}
		t := info.TypeOf(fd.Recv.List[0].Type)
		for _, o := range owners {
			if analysis.IsType(t, o.pkgBase, o.name) {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		// Parent links for the whole file: every use decision below
		// depends on the context a protected selector appears in.
		parents := map[ast.Node]ast.Node{}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})

		// parent returns n's nearest non-paren ancestor.
		parent := func(n ast.Node) ast.Node {
			p := parents[n]
			for {
				if _, ok := p.(*ast.ParenExpr); !ok {
					return p
				}
				p = parents[p]
			}
		}
		enclosingFunc := func(n ast.Node) *ast.FuncDecl {
			for n != nil {
				if fd, ok := n.(*ast.FuncDecl); ok {
					return fd
				}
				n = parents[n]
			}
			return nil
		}

		ast.Inspect(f, func(n ast.Node) bool {
			x, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			a, ok := protectedSel(x)
			if !ok {
				return true
			}
			name := a.pkgBase + "." + a.owner + "." + a.field

			escape := func(pos ast.Node, how string) {
				pass.Report(analysis.Diagnostic{
					Pos: pos.Pos(), Category: "alias",
					Message: how + " aliases SoA array " + name + " outside its owner; arena slices must not escape",
				})
			}
			write := func(pos ast.Node) {
				if !isOwnerMethod(enclosingFunc(pos)) {
					pass.Report(analysis.Diagnostic{
						Pos: pos.Pos(), Category: "write",
						Message: "write to SoA array " + name + " outside its owner's methods; domain lanes and trail entries are written only via the owning type",
					})
				}
			}

			switch p := parent(x).(type) {
			case *ast.IndexExpr:
				// Element access. Reads are free; writes need an owner
				// receiver; an element address is an escaping alias.
				switch gp := parent(p).(type) {
				case *ast.UnaryExpr:
					if gp.Op == token.AND {
						escape(gp, "address of an element")
					}
				case *ast.AssignStmt:
					if exprIn(gp.Lhs, p) {
						write(p)
					}
				case *ast.IncDecStmt:
					write(p)
				}
			case *ast.SliceExpr:
				// A sub-slice shares the backing array: the only legal
				// use is the self-reslice s.f = s.f[:n] (the truncation
				// idiom), whose write side is checked at the LHS selector.
				if !isSelfReslice(parent(p), p, protectedSel) {
					escape(p, "sub-slice")
				}
			case *ast.CallExpr:
				checkCallArg(p, x, parent, protectedSel, info, escape, write)
			case *ast.AssignStmt:
				if exprIn(p.Lhs, x) {
					// Whole-array assignment: grow, truncate, or replace.
					// Only owners may rebind the field; what the RHS may
					// be is checked where the RHS expressions are visited.
					write(x)
				} else {
					escape(x, "assignment")
				}
			case *ast.RangeStmt:
				if p.X != x {
					escape(x, "use")
				}
			case *ast.ReturnStmt:
				escape(x, "return")
			case *ast.CompositeLit, *ast.KeyValueExpr:
				escape(x, "composite literal")
			case *ast.UnaryExpr:
				if p.Op == token.AND {
					escape(p, "address-of")
				}
			case *ast.BinaryExpr:
				// Comparisons (s.dom == nil) read nothing but the header.
			default:
				escape(x, "use")
			}
			return true
		})
	}
	return nil
}

// exprIn reports whether e is one of list (pointer identity).
func exprIn(list []ast.Expr, e ast.Expr) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// isSelfReslice reports whether slice (whose X is a protected array)
// is the right-hand side of an assignment whose matching left-hand
// side is itself a protected array selector — the s.f = s.f[:n]
// truncation idiom, which creates no new alias.
func isSelfReslice(gp ast.Node, slice *ast.SliceExpr, protectedSel func(*ast.SelectorExpr) (arraySpec, bool)) bool {
	as, ok := gp.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, rhs := range as.Rhs {
		if rhs != slice {
			continue
		}
		if lsel, ok := as.Lhs[i].(*ast.SelectorExpr); ok {
			_, prot := protectedSel(lsel)
			return prot
		}
	}
	return false
}

// checkCallArg decides the fate of a protected array appearing as a
// call argument: len/cap and copy-out read without aliasing, copy-into
// is an owner-gated write, append may consume the array as a splatted
// copy source or grow it back onto itself, and anything else hands the
// alias to code the kernel does not control.
func checkCallArg(call *ast.CallExpr, x *ast.SelectorExpr,
	parent func(ast.Node) ast.Node,
	protectedSel func(*ast.SelectorExpr) (arraySpec, bool),
	info *types.Info,
	escape func(ast.Node, string), write func(ast.Node)) {

	id, ok := call.Fun.(*ast.Ident)
	builtin := false
	if ok {
		_, builtin = info.Uses[id].(*types.Builtin)
	}
	if !builtin {
		escape(x, "call argument")
		return
	}
	switch id.Name {
	case "len", "cap":
		// Header reads only.
	case "copy":
		if len(call.Args) > 0 && call.Args[0] == x {
			write(call) // copy into the array
		}
		// copy(out, s.dom) copies the values out: no alias retained.
	case "clear":
		write(call)
	case "append":
		switch {
		case call.Ellipsis.IsValid() && call.Args[len(call.Args)-1] == x:
			// append(dst[:0], arr...): arr is a copy source (the
			// Snapshot idiom); nothing aliases it afterwards.
		case len(call.Args) > 0 && call.Args[0] == x:
			// append(s.f, v) grows in place only when assigned straight
			// back to a protected array (the trail push idiom); bound to
			// anything else, the result may alias the arena.
			if as, ok := parent(call).(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if rhs != call {
						continue
					}
					if lsel, ok := as.Lhs[i].(*ast.SelectorExpr); ok {
						if _, prot := protectedSel(lsel); prot {
							return
						}
					}
				}
			}
			escape(call, "append result")
		default:
			escape(x, "append argument")
		}
	default:
		escape(x, "call argument")
	}
}
