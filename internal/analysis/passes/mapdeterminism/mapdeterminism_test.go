package mapdeterminism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/mapdeterminism"
)

func TestMapDeterminism(t *testing.T) {
	// "core" is inside the -pkgs scope and seeds every diagnostic
	// kind plus the keys-then-sort negatives; "other" proves the
	// scope cut-off.
	analysistest.Run(t, analysistest.TestData(t), mapdeterminism.Analyzer, "core", "other")
}
