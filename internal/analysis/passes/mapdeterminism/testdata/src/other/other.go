// Package other sits outside the -pkgs scope: the same pattern that
// fires in core must stay silent here.
package other

// Leak would be a finding inside the determinism scope.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
