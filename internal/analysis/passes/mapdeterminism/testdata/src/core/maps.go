// Package core is a golden-test stand-in for repro/internal/core,
// one of the packages the determinism guarantee covers.
package core

import (
	"fmt"
	"slices"
	"sort"
)

// Keys uses the canonical keys-then-sort idiom and stays silent.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysSlices sorts via package slices; also silent.
func KeysSlices(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedRows sorts with sort.Slice after the loop; silent.
func SortedRows(m map[string]int) []string {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// Leak appends map-ordered values to output with no sort in sight.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside a map range leaks iteration order`
	}
	return out
}

// Schedule fans work out of a map range in random order.
func Schedule(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside a map range schedules work in random order`
	}
}

// Print emits output straight from a map range.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map range emits output in random order`
	}
}

type encoder struct{}

func (encoder) Encode(v int) error { return nil }

// Stream encodes records in map order.
func Stream(m map[string]int, enc encoder) {
	for _, v := range m {
		enc.Encode(v) // want `Encode inside a map range emits output in random order`
	}
}

// Sum is commutative aggregation and stays silent.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// LocalOnly appends to a loop-local slice; order never escapes an
// iteration, so it stays silent.
func LocalOnly(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// SliceRange iterates a slice — ordered, silent.
func SliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Suppressed shows a justified escape hatch for an order-insensitive
// consumer.
func Suppressed(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v //lttalint:ignore mapdeterminism golden test of the suppression path
	}
}
