// Package mapdeterminism flags map iteration whose order can leak
// into output.
//
// The parallel RunAll sweep, the harness's Table-1 artefacts, and the
// lttad NDJSON stream all promise byte-identical results across runs;
// Go map iteration order is deliberately randomised, so a `range`
// over a map that appends to an output slice, sends work into a
// channel, or writes/encodes output directly re-randomises those
// results on every run. The canonical fix is the keys-then-sort
// idiom; appending into a slice that is visibly sorted immediately
// after the loop is therefore accepted.
package mapdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "mapdeterminism",
	Doc: `flags map ranges whose iteration order feeds appended output, fired events, or scheduled work

Within the packages named by -pkgs, a range over a map is reported
when its body appends to a slice declared outside the loop (unless a
sort/slices call over that slice follows in the same block), sends on
a channel, or prints/encodes output. Commutative aggregation (sums,
maxima, set inserts) is untouched.`,
	Run: run,
}

var pkgsFlag string

func init() {
	Analyzer.Flags.StringVar(&pkgsFlag, "pkgs", "core,harness,server", "comma-separated package basenames the determinism guarantee covers")
	analysis.Register(Analyzer)
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), pkgsFlag) {
		return nil
	}
	info := pass.TypesInfo

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rng := asMapRange(info, stmt)
				if rng == nil {
					continue
				}
				checkRangeBody(pass, rng, list[i+1:])
			}
			return true
		})
	}
	return nil
}

func inScope(pkgPath, pkgs string) bool {
	base := strings.TrimSuffix(analysis.PkgPathBase(pkgPath), "_test")
	for _, p := range strings.Split(pkgs, ",") {
		if strings.TrimSpace(p) == base {
			return true
		}
	}
	return false
}

// asMapRange unwraps labels and returns stmt as a range-over-map, or
// nil.
func asMapRange(info *types.Info, stmt ast.Stmt) *ast.RangeStmt {
	for {
		l, ok := stmt.(*ast.LabeledStmt)
		if !ok {
			break
		}
		stmt = l.Stmt
	}
	rng, ok := stmt.(*ast.RangeStmt)
	if !ok {
		return nil
	}
	tv, ok := info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	return rng
}

func checkRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, later []ast.Stmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is analyzed on its own; one diagnostic
			// per leaking statement is enough.
			if asMapRange(info, n) != nil {
				return false
			}
		case *ast.SendStmt:
			pass.Report(analysis.Diagnostic{
				Pos: n.Arrow, Category: "send",
				Message: "channel send inside a map range schedules work in random order; iterate sorted keys",
			})
		case *ast.AssignStmt:
			if obj := appendTarget(info, n); obj != nil && declaredOutside(obj, rng) && !sortedLater(info, obj, later) {
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos(), Category: "append",
					Message: "append to " + obj.Name() + " inside a map range leaks iteration order into output; iterate sorted keys or sort " + obj.Name() + " afterwards",
				})
			}
		case *ast.CallExpr:
			if what := outputCall(info, n); what != "" {
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos(), Category: "output",
					Message: what + " inside a map range emits output in random order; iterate sorted keys",
				})
			}
		}
		return true
	})
}

// appendTarget returns the object of `s` in the self-append
// `s = append(s, ...)` (also s := append(s, ...)), or nil.
func appendTarget(info *types.Info, n *ast.AssignStmt) types.Object {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return nil
	}
	lhs, ok := n.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, builtin := info.Uses[fun].(*types.Builtin); !builtin || fun.Name != "append" {
		return nil
	}
	obj := info.ObjectOf(lhs)
	if obj == nil {
		return nil
	}
	if arg, ok := call.Args[0].(*ast.Ident); !ok || info.ObjectOf(arg) != obj {
		return nil
	}
	return obj
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement — appends to loop-local slices do not outlive an
// iteration's scope and cannot leak order.
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedLater reports whether a statement after the range visibly
// sorts obj: a call into package sort or slices mentioning obj in its
// arguments (sort.Strings(keys), slices.SortFunc(rows, …),
// sort.Slice(rows, …), sort.Sort(byName(rows)), …).
func sortedLater(info *types.Info, obj types.Object, later []ast.Stmt) bool {
	for _, stmt := range later {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// outputCall classifies calls that emit externally visible output:
// the fmt print family writing to a writer or stdout, and
// Encode/Write-style methods on streams.
func outputCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if pkgID, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[pkgID].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Print") ||
				pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") {
				return "fmt." + sel.Sel.Name
			}
			return ""
		}
	}
	// Methods: only the classic streaming sinks, to keep aggregation
	// and bookkeeping calls out of scope.
	switch sel.Sel.Name {
	case "Encode", "Write", "WriteString":
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return "(" + types.TypeString(s.Recv(), nil) + ")." + sel.Sel.Name
		}
	}
	return ""
}
