package preparedmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/preparedmut"
)

func TestPreparedMut(t *testing.T) {
	// "core" seeds in-package writes (with declaring-file and
	// constructor-file allowances), "circuit" hosts the protected
	// ConeMap, and "user" seeds the cross-package mutations.
	analysistest.Run(t, analysistest.TestData(t), preparedmut.Analyzer, "core", "circuit", "user")
}
