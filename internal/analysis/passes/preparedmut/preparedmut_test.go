package preparedmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/preparedmut"
)

func TestPreparedMut(t *testing.T) {
	// "core" seeds in-package writes (with declaring-file and
	// constructor-file allowances), "circuit" hosts the protected
	// ConeMap, "user" seeds the cross-package mutations, and
	// "registry" seeds writes to the cache entry (and the Prepared it
	// shares) from outside the entry's home file.
	analysistest.Run(t, analysistest.TestData(t), preparedmut.Analyzer, "core", "circuit", "user", "registry")
}
