// Package preparedmut flags writes to the shared per-circuit
// precompute outside its constructor files.
//
// core.Prepared (with its conePrep slices) and circuit.ConeMap are
// built once and then shared by every verifier and every parallel
// RunAll worker on a circuit; after construction they are read
// concurrently without synchronisation beyond the documented
// once/mutex fields. Any later write — to a field, into a backing
// slice or map, or through the struct to the shared netlist — is a
// data race waiting for the right interleaving.
//
// registry.entry extends the same ownership to the content-addressed
// circuit registry: the entry caches a *core.Prepared shared across
// every batch pinned on it, and all entry bookkeeping (refcounts,
// condemnation, the singleflight channel) is owned by registry.go —
// writes from any other file bypass the registry's locking discipline.
package preparedmut

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "preparedmut",
	Doc: `flags writes to core.Prepared / conePrep / circuit.ConeMap outside their constructor files

The protected types and the files allowed to mutate them are
configurable (-types, -constructors); the file that declares a
protected type is always allowed, so constructors that live next to
the declaration need no configuration.`,
	Run: run,
}

var (
	typesFlag        string
	constructorsFlag string
)

func init() {
	Analyzer.Flags.StringVar(&typesFlag, "types", "core.Prepared,core.conePrep,circuit.ConeMap,registry.entry", "comma-separated pkg.Type list of protected types")
	Analyzer.Flags.StringVar(&constructorsFlag, "constructors", "prepare.go,transform.go,registry.go", "comma-separated file basenames allowed to mutate protected types")
	analysis.Register(Analyzer)
}

type protected struct{ pkgBase, name string }

func config() (types []protected, files map[string]bool) {
	for _, s := range strings.Split(typesFlag, ",") {
		if pkg, name, ok := strings.Cut(strings.TrimSpace(s), "."); ok {
			types = append(types, protected{pkg, name})
		}
	}
	files = map[string]bool{}
	for _, s := range strings.Split(constructorsFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			files[s] = true
		}
	}
	return types, files
}

func run(pass *analysis.Pass) error {
	prot, allowedFiles := config()
	info := pass.TypesInfo

	isProtected := func(t types.Type) (protected, bool) {
		for _, p := range prot {
			if analysis.IsType(t, p.pkgBase, p.name) {
				return p, true
			}
		}
		return protected{}, false
	}

	// protectedRoot walks down an lvalue (through parens, derefs,
	// indexing, slicing, and field selections) and reports the first
	// protected receiver the write goes through, if any. Descending
	// past the first selector means `p.c.Nets[i] = x` is still a write
	// through the shared Prepared even though the touched field
	// belongs to another type.
	var protectedRoot func(e ast.Expr) (protected, bool)
	protectedRoot = func(e ast.Expr) (protected, bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if p, ok := isProtected(sel.Recv()); ok {
						return p, true
					}
				}
				e = x.X
			default:
				return protected{}, false
			}
		}
	}

	report := func(pos ast.Node, p protected, what string) {
		pass.Report(analysis.Diagnostic{
			Pos: pos.Pos(), Category: "mutation",
			Message: what + " mutates shared " + p.pkgBase + "." + p.name + " after construction; the precompute is shared across goroutines",
		})
	}

	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if allowedFiles[base] || declaresProtected(f, prot, pass.Pkg) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if p, ok := protectedRoot(lhs); ok {
						report(lhs, p, "assignment")
					}
				}
			case *ast.IncDecStmt:
				if p, ok := protectedRoot(n.X); ok {
					report(n.X, p, n.Tok.String())
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) > 0 {
					if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
						return true
					}
					switch id.Name {
					case "delete", "clear":
						if p, ok := protectedRoot(n.Args[0]); ok {
							report(n, p, id.Name+"()")
						}
					case "copy":
						if p, ok := protectedRoot(n.Args[0]); ok {
							report(n, p, "copy() into")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// declaresProtected reports whether file f declares one of the
// protected types in the current package — such a file is the type's
// home and by convention hosts its constructor.
func declaresProtected(f *ast.File, prot []protected, pkg *types.Package) bool {
	pkgBase := strings.TrimSuffix(analysis.PkgPathBase(pkg.Path()), "_test")
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			for _, p := range prot {
				if p.name == ts.Name.Name && p.pkgBase == pkgBase {
					return true
				}
			}
		}
	}
	return false
}
