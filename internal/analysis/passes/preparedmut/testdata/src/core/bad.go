package core

// trample performs every flavour of post-construction write the
// analyzer must catch.
func trample(p *Prepared, cp *conePrep) {
	p.stems = nil                  // want `assignment mutates shared core\.Prepared`
	p.stems[0] = 1                 // want `assignment mutates shared core\.Prepared`
	p.cones[7] = cp                // want `assignment mutates shared core\.Prepared`
	delete(p.cones, 7)             // want `delete\(\) mutates shared core\.Prepared`
	copy(p.stems, []int{1})        // want `copy\(\) into mutates shared core\.Prepared`
	cp.full = true                 // want `assignment mutates shared core\.conePrep`
	cp.stems = append(cp.stems, 3) // want `assignment mutates shared core\.conePrep`
	p.c.Nets[0] = 9                // want `assignment mutates shared core\.Prepared`
}

// reads only observe the precompute and stay silent.
func reads(p *Prepared) int {
	x := 0
	if len(p.stems) > 0 {
		x = p.stems[0]
	}
	if cp := p.cones[x]; cp != nil && cp.full {
		return 1
	}
	return len(p.c.Nets)
}

type unprotected struct{ stems []int }

// okOther writes to an unprotected type and stays silent.
func okOther(u *unprotected) { u.stems = append(u.stems, 1) }

// suppressed shows a justified escape hatch.
func suppressed(p *Prepared) {
	p.stems = nil //lttalint:ignore preparedmut golden test of the suppression path
}
