// Package core is a golden-test stand-in for repro/internal/core:
// preparedmut matches protected types by package basename and type
// name. This file declares the protected types, so its own mutations
// are allowed (it is their home).
package core

// Circuit stands in for the shared netlist.
type Circuit struct {
	Nets []int
}

// Prepared mirrors core.Prepared: shared, immutable after build.
type Prepared struct {
	c     *Circuit
	stems []int
	cones map[int]*conePrep
}

type conePrep struct {
	full  bool
	stems []int
}

// NewPrepared builds the precompute; declaring-file writes are fine.
func NewPrepared(c *Circuit) *Prepared {
	p := &Prepared{c: c, cones: map[int]*conePrep{}}
	p.stems = append(p.stems, 1)
	return p
}

// Stems exposes the stem slice read-only.
func (p *Prepared) Stems() []int { return p.stems }
