package core

// prepare lives in a configured constructor file (prepare.go), so its
// writes into the shared precompute are allowed.
func (p *Prepared) prepare(id int) *conePrep {
	cp := &conePrep{}
	cp.stems = append(cp.stems, id)
	p.cones[id] = cp
	return cp
}
