// Package registry is a golden-test stand-in for
// repro/internal/registry. This file declares the protected entry type
// (and is also a configured constructor file), so its bookkeeping
// writes are allowed — mirroring the real registry.go, which owns all
// entry mutation under the registry mutex.
package registry

import "core"

// entry mirrors registry.entry: one cached circuit with its shared
// prepared state, refcount, and condemnation flag.
type entry struct {
	refs      int
	condemned bool
	prepared  *core.Prepared
}

// acquire and condemn live in the entry's home file: allowed.
func acquire(e *entry) {
	e.refs++
}

func condemn(e *entry) {
	e.condemned = true
	e.refs--
}

// publish installs the singleflight result: allowed here, nowhere else.
func publish(e *entry, p *core.Prepared) {
	e.prepared = p
}
