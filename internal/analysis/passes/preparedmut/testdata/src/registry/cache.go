// cache.go is NOT a constructor file and does not declare entry: every
// write to the cache entry here bypasses the registry's locking
// discipline and must be flagged. Reads stay silent.
package registry

// steal mutates entry bookkeeping outside its home file.
func steal(e *entry) {
	e.refs-- // want `-- mutates shared registry\.entry`
}

// drop condemns an entry from the wrong file.
func drop(e *entry) {
	e.condemned = true // want `assignment mutates shared registry\.entry`
	e.prepared = nil   // want `assignment mutates shared registry\.entry`
}

// pinned only observes and stays silent.
func pinned(e *entry) bool { return e.refs > 0 && !e.condemned }
