// Package user mutates another package's shared precompute — the
// cross-package case the analyzer exists for.
package user

import "circuit"

// Remap rewrites a shared translation table after construction.
func Remap(cm *circuit.ConeMap) {
	cm.ToCone[0] = 3  // want `assignment mutates shared circuit\.ConeMap`
	cm.FromCone = nil // want `assignment mutates shared circuit\.ConeMap`
}

// Read only observes and stays silent.
func Read(cm *circuit.ConeMap) int { return cm.ToCone[0] }
