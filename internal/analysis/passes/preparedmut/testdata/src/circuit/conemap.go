// Package circuit is a golden-test stand-in for
// repro/internal/circuit, home of the protected ConeMap.
package circuit

// ConeMap mirrors circuit.ConeMap: id translation tables shared by
// every verifier on a cone.
type ConeMap struct {
	ToCone   []int
	FromCone []int
}
