package circuit

// Extract builds a ConeMap; transform.go is a configured constructor
// file, so these writes are allowed.
func Extract(n int) *ConeMap {
	cm := &ConeMap{}
	for i := 0; i < n; i++ {
		cm.ToCone = append(cm.ToCone, i)
		cm.FromCone = append(cm.FromCone, i)
	}
	return cm
}
