// Package coord mirrors the annotation shapes of
// internal/server/coord.go and coordbatch.go: the coordinator's
// circuit table and use sequence under one mutex, per-worker upload
// sets, per-batch merge state, and cross-struct guards on entries and
// units. Deleting any Lock below must (and does) fail the pass —
// these are the delete-the-lock mutants for the production
// annotations.
package coord

import "sync"

type Hash [4]byte

type coordEntry struct {
	hash    Hash
	lastUse int64 // guarded by Coordinator.mu
}

type Coordinator struct {
	mu       sync.Mutex
	circuits map[Hash]*coordEntry // guarded by mu
	useSeq   int64                // guarded by mu
}

func New() *Coordinator {
	co := &Coordinator{}
	co.circuits = map[Hash]*coordEntry{} // ok: construction
	return co
}

func (co *Coordinator) getEntry(h Hash) *coordEntry {
	co.mu.Lock()
	defer co.mu.Unlock()
	e := co.circuits[h] // ok
	if e == nil {
		e = &coordEntry{hash: h}
		co.circuits[h] = e // ok
	}
	co.useSeq++           // ok
	e.lastUse = co.useSeq // ok: Coordinator.mu held
	return e
}

func (co *Coordinator) racyCount() int {
	return len(co.circuits) // want `read of Coordinator.circuits without holding co.mu`
}

func (co *Coordinator) racySeq() {
	co.useSeq++ // want `write of Coordinator.useSeq without holding co.mu`
}

func racyEntry(e *coordEntry) int64 {
	return e.lastUse // want `read of coordEntry.lastUse without holding Coordinator.mu`
}

type coordWorker struct {
	addr     string
	mu       sync.Mutex
	uploaded map[Hash]bool // guarded by mu
}

func (w *coordWorker) markUploaded(h Hash) {
	w.mu.Lock()
	w.uploaded[h] = true // ok
	w.mu.Unlock()
}

func (w *coordWorker) racyMark(h Hash) {
	w.uploaded[h] = true // want `write of coordWorker.uploaded without holding w.mu`
}

type coordUnit struct {
	emitIndex int      // immutable after construction: no guard
	delivered bool     // guarded by coordBatch.mu
	attempts  int      // guarded by coordBatch.mu
	workers   []string // guarded by coordBatch.mu
	result    *int     // guarded by coordBatch.mu
}

type coordBatch struct {
	mu        sync.Mutex
	units     []*coordUnit // guarded by mu
	remaining int          // guarded by mu
	checksRun int          // guarded by mu
}

// deliverLocked flips the delivered bit exactly once. Caller holds
// cb.mu.
func (cb *coordBatch) deliverLocked(u *coordUnit, r *int) bool {
	if u.delivered { // ok: precondition
		return false
	}
	u.delivered = true // ok
	u.result = r       // ok
	cb.remaining--     // ok
	return true
}

// tried reports how many workers ran this unit. Caller holds
// coordBatch.mu.
func (u *coordUnit) tried() int {
	return u.attempts // ok: type-qualified precondition
}

func (cb *coordBatch) deliver(u *coordUnit, r *int) {
	cb.mu.Lock()
	if cb.deliverLocked(u, r) {
		cb.checksRun++ // ok
	}
	cb.mu.Unlock()
	u.attempts++ // want `write of coordUnit.attempts without holding coordBatch.mu`
}

func (cb *coordBatch) racyAssemble() []*int {
	out := make([]*int, 0, len(cb.units)) // want `read of coordBatch.units without holding cb.mu`
	for _, u := range cb.units {          // want `read of coordBatch.units without holding cb.mu`
		out = append(out, u.result) // want `read of coordUnit.result without holding coordBatch.mu`
	}
	return out
}

func (cb *coordBatch) assemble() []*int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	out := make([]*int, 0, len(cb.units)) // ok
	for _, u := range cb.units {          // ok
		if !u.delivered { // ok
			continue
		}
		u.workers = append(u.workers, "w") // ok
		out = append(out, u.result)        // ok
	}
	return out
}

func (cb *coordBatch) racyRemaining() bool {
	return cb.remaining == 0 // want `read of coordBatch.remaining without holding cb.mu`
}

func (cb *coordBatch) racyChecks() {
	cb.checksRun++ //lttalint:ignore lockguard single-goroutine teardown path, proven quiescent in the e2e suite
}
