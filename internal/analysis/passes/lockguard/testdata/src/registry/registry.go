// Package registry mirrors internal/registry/registry.go: entry
// lifecycle fields (refcount, condemnation, accounting) guarded by
// the owning Registry's lock, the per-entry prepare mutex, and the
// locked-helper convention. badPrepared reproduces the
// read-after-unlock bug the production pass caught in Pin.Prepared.
package registry

import "sync"

type Hash [4]byte

type entry struct {
	hash      Hash
	refs      int  // guarded by Registry.mu
	condemned bool // guarded by Registry.mu
	accounted bool // guarded by Registry.mu

	pmu       sync.Mutex
	preparing chan struct{} // guarded by pmu
	prepared  *int          // guarded by pmu
}

type Registry struct {
	mu       sync.Mutex
	entries  map[Hash]*entry // guarded by mu
	resident int64           // guarded by mu
}

func New() *Registry {
	r := &Registry{}
	r.entries = map[Hash]*entry{} // ok: construction
	return r
}

// touchLocked bumps the refcount. Caller holds r.mu.
func (r *Registry) touchLocked(e *entry) {
	e.refs++     // ok
	r.resident++ // ok
}

func (r *Registry) pin(h Hash) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[h] // ok
	if e == nil {
		e = &entry{hash: h}
		r.entries[h] = e // ok
	}
	r.touchLocked(e)
	if e.condemned { // ok
		e.condemned = false // ok
	}
	return e
}

func (r *Registry) racyLookup(h Hash) *entry {
	return r.entries[h] // want `read of Registry.entries without holding r.mu`
}

func racyRelease(e *entry) {
	e.refs--         // want `write of entry.refs without holding Registry.mu`
	if e.refs == 0 { // want `read of entry.refs without holding Registry.mu`
		e.condemned = true // want `write of entry.condemned without holding Registry.mu`
	}
}

func racyAccount(e *entry) {
	e.accounted = true // want `write of entry.accounted without holding Registry.mu`
}

// goodPrepared captures the prepared value while pmu is held.
func goodPrepared(e *entry) *int {
	e.pmu.Lock()
	p := e.prepared // ok
	e.pmu.Unlock()
	return p
}

// badPrepared is the production bug shape: both reads of e.prepared
// happen after pmu is released, so a concurrent prepare can swap the
// pointer between the nil check and the return.
func badPrepared(e *entry) *int {
	e.pmu.Lock()
	if e.preparing != nil { // ok
		e.pmu.Unlock()
		return e.prepared // want `read of entry.prepared without holding e.pmu`
	}
	e.pmu.Unlock()
	return e.prepared // want `read of entry.prepared without holding e.pmu`
}

func startPrepare(e *entry) {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.preparing == nil { // ok
		e.preparing = make(chan struct{}) // ok
	}
}
