// Package warm mirrors internal/core/warm.go and the warm-start
// block of run.go: the per-sink memo map under the verifier's
// warmMu, per-memo state under its own mutex, the TryLock fast path
// with a deferred unlock, and the "Caller holds w.mu" helper
// convention.
package warm

import "sync"

type warmState struct {
	mu          sync.Mutex
	snap        []int64 // guarded by mu
	snapDelta   int64   // guarded by mu
	snapValid   bool    // guarded by mu
	inconsDelta int64   // guarded by mu
	inconsValid bool    // guarded by mu
}

type Verifier struct {
	warmMu sync.Mutex
	warm   map[int]*warmState // guarded by warmMu
}

func (v *Verifier) warmFor(sink int) *warmState {
	v.warmMu.Lock()
	defer v.warmMu.Unlock()
	if v.warm == nil { // ok
		v.warm = map[int]*warmState{} // ok
	}
	w := v.warm[sink] // ok
	if w == nil {
		w = &warmState{}
		v.warm[sink] = w // ok
	}
	return w
}

func (v *Verifier) racyLookup(sink int) *warmState {
	return v.warm[sink] // want `read of Verifier.warm without holding v.warmMu`
}

// noteFixpoint records a usable snapshot. Caller holds w.mu.
func (w *warmState) noteFixpoint(snap []int64, delta int64) {
	w.snap = append(w.snap[:0], snap...) // ok
	w.snapDelta = delta                  // ok
	w.snapValid = true                   // ok
}

// noteRefuted records a refutation floor. Caller holds w.mu.
func (w *warmState) noteRefuted(delta int64) {
	w.inconsDelta = delta // ok
	w.inconsValid = true  // ok
}

// tryRun is the production fast-path shape: the memo is only read
// inside the TryLock-true branch, and the deferred unlock keeps the
// guard held for the rest of the block.
func (v *Verifier) tryRun(sink int, delta int64) (seeded, refuted bool) {
	if w := v.warmFor(sink); w.mu.TryLock() {
		defer w.mu.Unlock()
		switch {
		case w.inconsValid && delta >= w.inconsDelta: // ok
			refuted = true
		case w.snapValid && delta >= w.snapDelta: // ok
			seeded = len(w.snap) > 0 // ok
		}
	}
	return seeded, refuted
}

func (v *Verifier) racyTry(sink int, delta int64) int64 {
	w := v.warmFor(sink)
	if !w.mu.TryLock() {
		return 0
	}
	d := w.snapDelta // ok: negated TryLock falls through holding the lock
	w.mu.Unlock()
	return d + w.snapDelta // want `read of warmState.snapDelta without holding w.mu`
}

func racyNote(w *warmState, delta int64) {
	w.snapDelta = delta // want `write of warmState.snapDelta without holding w.mu`
	w.snapValid = true  // want `write of warmState.snapValid without holding w.mu`
}

func racyRefuted(w *warmState) bool {
	return w.inconsValid // want `read of warmState.inconsValid without holding w.mu`
}

func racySnap(w *warmState) []int64 {
	return w.snap // want `read of warmState.snap without holding w.mu`
}

func racyIncons(w *warmState) int64 {
	return w.inconsDelta // want `read of warmState.inconsDelta without holding w.mu`
}
