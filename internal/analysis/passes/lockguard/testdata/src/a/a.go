// Package a exercises every lockguard diagnostic kind: sibling and
// type-qualified guards, read/write lock modes, TryLock branches,
// defer, intersection joins, holds preconditions, the constructor
// exemption, closures, aliases, and annotation validation.
package a

import "sync"

type S struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data int // guarded by mu
	rd   int // guarded by rw
}

type Owner struct {
	mu    sync.Mutex
	boxes []*Box // guarded by mu
}

type Box struct {
	n int // guarded by Owner.mu
}

// ---- annotation validation ----

type BadGuards struct {
	a int // guarded by nosuch // want `BadGuards has no sync.Mutex/RWMutex field "nosuch"`
	b int // guarded by Missing.mu // want `type "Missing" not found in this package`
	c int // guarded by x.y.z // want `invalid guarded-by annotation`
	d int // guarded by // want `invalid guarded-by annotation`
	e int // guarded by notMutex // want `BadGuards has no sync.Mutex/RWMutex field "notMutex"`

	notMutex int
}

type Embedded struct {
	sync.Mutex // guarded by Mutex // want `guarded-by annotation on an embedded field is not supported`
}

// ---- basic discipline ----

func (s *S) locked() {
	s.mu.Lock()
	s.data++ // ok
	_ = s.data
	s.mu.Unlock()
}

func (s *S) unlocked() {
	s.data = 1 // want `write of S.data without holding s.mu`
	_ = s.data // want `read of S.data without holding s.mu`
}

func (s *S) afterUnlock() {
	s.mu.Lock()
	s.data++ // ok
	s.mu.Unlock()
	s.data++ // want `write of S.data without holding s.mu`
}

func (s *S) deferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data++ // ok: the deferred release happens at exit
}

func (s *S) addressEscape() *int {
	return &s.data // want `write of S.data without holding s.mu`
}

// ---- join: held on all paths or not at all ----

func (s *S) joinOnePath(c bool) {
	if c {
		s.mu.Lock()
	}
	s.data++ // want `write of S.data without holding s.mu`
	if c {
		s.mu.Unlock()
	}
}

func (s *S) joinBothPaths(c bool) {
	if c {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	s.data++ // ok: held on every path in
	s.mu.Unlock()
}

// ---- TryLock branch refinement ----

func (s *S) tryLock() {
	if s.mu.TryLock() {
		s.data++ // ok: true branch holds the lock
		s.mu.Unlock()
	}
	s.data++ // want `write of S.data without holding s.mu`
}

func (s *S) tryLockNegated() {
	if !s.mu.TryLock() {
		return
	}
	defer s.mu.Unlock()
	s.data++ // ok: the false branch of the negation holds the lock
}

// ---- RWMutex read/write modes ----

func (s *S) readUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.rd // ok: reads are satisfied by a read lock
}

func (s *S) writeUnderRLock() {
	s.rw.RLock()
	s.rd = 1 // want `write of S.rd without holding s.rw`
	s.rw.RUnlock()
}

func (s *S) writeUnderLock() {
	s.rw.Lock()
	s.rd = 1 // ok
	s.rw.Unlock()
}

// ---- holds preconditions ----

// setLocked stores v. Caller holds s.mu.
func (s *S) setLocked(v int) {
	s.data = v // ok: declared precondition
}

// peek reports the count. Caller holds Owner.mu.
func peek(b *Box) int {
	return b.n // ok: type-qualified precondition
}

// prose mentions that the snapshot holds within one sweep, which is
// not a lock path and must not seed any entry state.
func (s *S) proseHolds() {
	s.data++ // want `write of S.data without holding s.mu`
}

// ---- type-qualified guards ----

func (o *Owner) touch(b *Box) {
	o.mu.Lock()
	b.n++ // ok: an Owner.mu is held
	o.mu.Unlock()
	b.n++ // want `write of Box.n without holding Owner.mu`
}

func (o *Owner) scan() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	total := 0
	for _, b := range o.boxes { // ok
		total += b.n // ok
	}
	return total
}

// ---- constructor exemption ----

func fresh() *S {
	s := &S{}
	s.data = 1 // ok: value under construction is unshared
	var t S
	t.data = 2 // ok: zero-value local
	u := new(S)
	u.data = 3 // ok
	_ = t
	return u
}

func notFresh(src *S) {
	s := src
	// The report names the canonical root: s aliases src.
	s.data = 1 // want `write of S.data without holding src.mu`
}

// ---- aliases ----

func aliased(s *S) {
	t := s
	t.mu.Lock()
	s.data++ // ok: t is a single-assignment alias of s
	t.mu.Unlock()
}

// ---- closures get an empty entry state ----

func (s *S) closure() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data++ // ok
	return func() {
		s.data++ // want `write of S.data without holding s.mu`
	}
}

// ---- justified suppression ----

func (s *S) suppressed() {
	s.data = 9 //lttalint:ignore lockguard fixture seeds the field before the goroutines exist
}

// ---- unannotated fields stay free ----

type Plain struct {
	mu sync.Mutex
	k  int
}

func (p *Plain) free() {
	p.k++ // ok: no annotation, no discipline
}
