package lockguard

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// Guard is one parsed `// guarded by …` annotation. Type is empty for
// the sibling form (`guarded by mu`: the mutex is a field of the same
// struct instance) and set for the type-qualified form (`guarded by
// Coordinator.mu`: any held lock that is field mu of Coordinator).
type Guard struct {
	Type  string
	Field string
}

func (g Guard) String() string {
	if g.Type == "" {
		return g.Field
	}
	return g.Type + "." + g.Field
}

// guardMarker is the phrase that turns a comment into an annotation.
const guardMarker = "guarded by"

// ParseGuard scans one comment's text for a guarded-by annotation.
// ok reports whether the marker phrase is present at all; err is
// non-nil when it is present but the path after it is malformed.
// The input is arbitrary bytes (comment text with or without the //
// or /* markers); the parser never panics.
func ParseGuard(text string) (Guard, bool, error) {
	// Case-insensitive marker search with ASCII folding only:
	// strings.ToLower can change byte offsets for non-ASCII input,
	// and the offset is used to slice the original text.
	i := indexFold(text, guardMarker)
	if i < 0 {
		return Guard{}, false, nil
	}
	rest := strings.TrimSpace(text[i+len(guardMarker):])
	// The path is the first whitespace-delimited token, with comment
	// closers and sentence punctuation stripped.
	tok := rest
	if j := strings.IndexFunc(tok, unicode.IsSpace); j >= 0 {
		tok = tok[:j]
	}
	tok = strings.TrimSuffix(tok, "*/")
	tok = strings.TrimRight(tok, ".,;:")
	if tok == "" {
		return Guard{}, true, errors.New("guarded by: missing mutex path")
	}
	segs := strings.Split(tok, ".")
	if len(segs) > 2 {
		return Guard{}, true, fmt.Errorf("guarded by %q: want mu or Type.mu, got %d path segments", tok, len(segs))
	}
	for _, s := range segs {
		if !isIdent(s) {
			return Guard{}, true, fmt.Errorf("guarded by %q: %q is not a Go identifier", tok, s)
		}
	}
	if len(segs) == 2 {
		return Guard{Type: segs[0], Field: segs[1]}, true, nil
	}
	return Guard{Field: segs[0]}, true, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' {
			continue
		}
		if i > 0 && unicode.IsDigit(r) {
			continue
		}
		return false
	}
	return true
}

// holdsPaths extracts the candidate lock paths from a doc comment
// declaring caller-held preconditions, e.g. "Caller holds w.mu." or
// "holds Registry.mu and cb.mu". After each occurrence of the word
// "holds", identifier-path tokens are collected (across comment line
// wraps) until the sentence ends or a non-path word appears; the
// analyzer then keeps only the candidates that resolve to a sync
// mutex, so ordinary prose containing "holds" is inert.
func holdsPaths(text string) []string {
	var out []string
	for from := 0; ; {
		i := indexWord(text[from:], "holds")
		if i < 0 {
			return out
		}
		from += i + len("holds")
		for _, tok := range strings.Fields(text[from:]) {
			sentenceEnd := strings.HasSuffix(tok, ".")
			clean := strings.TrimRight(tok, ".,;:")
			if isPathToken(clean) {
				out = append(out, clean)
			} else if clean != "and" && clean != "&" {
				break
			}
			if sentenceEnd {
				break
			}
		}
	}
}

// isPathToken reports whether s is a dotted identifier path.
func isPathToken(s string) bool {
	segs := strings.Split(s, ".")
	for _, seg := range segs {
		if !isIdent(seg) {
			return false
		}
	}
	return len(segs) > 0
}

// indexWord finds needle in s at word boundaries, ASCII
// case-insensitively.
func indexWord(s, needle string) int {
	for i := 0; i+len(needle) <= len(s); i++ {
		if !foldEq(s[i:i+len(needle)], needle) {
			continue
		}
		startOK := i == 0 || !isWordByte(s[i-1])
		end := i + len(needle)
		endOK := end == len(s) || !isWordByte(s[end])
		if startOK && endOK {
			return i
		}
	}
	return -1
}

// indexFold finds needle in s, ASCII case-insensitively, returning a
// byte offset valid for slicing s.
func indexFold(s, needle string) int {
	for i := 0; i+len(needle) <= len(s); i++ {
		if foldEq(s[i:i+len(needle)], needle) {
			return i
		}
	}
	return -1
}

// foldEq compares equal-length strings with ASCII case folding.
func foldEq(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}
