package lockguard_test

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockguard"
)

func TestLockGuard(t *testing.T) {
	// "a" is the kitchen sink covering every diagnostic kind and
	// escape hatch; "coord", "registry", and "warm" mirror the
	// production annotation shapes of internal/server/coord.go +
	// coordbatch.go, internal/registry/registry.go, and
	// internal/core/warm.go — each contains the delete-the-lock
	// mutants proving those annotations are enforceable.
	analysistest.Run(t, analysistest.TestData(t), lockguard.Analyzer,
		"a", "coord", "registry", "warm")
}

func TestParseGuard(t *testing.T) {
	cases := []struct {
		in      string
		present bool
		wantErr bool
		want    lockguard.Guard
	}{
		{"// guarded by mu", true, false, lockguard.Guard{Field: "mu"}},
		{"// guarded by Coordinator.mu", true, false, lockguard.Guard{Type: "Coordinator", Field: "mu"}},
		{"/* Guarded by Registry.mu */", true, false, lockguard.Guard{Type: "Registry", Field: "mu"}},
		{"// guarded by mu.", true, false, lockguard.Guard{Field: "mu"}},
		{"// guarded by mu, and friends", true, false, lockguard.Guard{Field: "mu"}},
		{"// GUARDED BY rw", true, false, lockguard.Guard{Field: "rw"}},
		{"// plain comment", false, false, lockguard.Guard{}},
		{"// guards circuits + useSeq", false, false, lockguard.Guard{}},
		{"// guarded by", true, true, lockguard.Guard{}},
		{"// guarded by a.b.c", true, true, lockguard.Guard{}},
		{"// guarded by 9lives", true, true, lockguard.Guard{}},
		{"// guarded by a-b", true, true, lockguard.Guard{}},
	}
	for _, c := range cases {
		g, present, err := lockguard.ParseGuard(c.in)
		if present != c.present || (err != nil) != c.wantErr {
			t.Errorf("ParseGuard(%q): present=%v err=%v, want present=%v err=%v",
				c.in, present, err, c.present, c.wantErr)
			continue
		}
		if err == nil && g != c.want {
			t.Errorf("ParseGuard(%q) = %+v, want %+v", c.in, g, c.want)
		}
	}
}

// FuzzGuardAnnotationParse feeds arbitrary comment bytes to the
// annotation parser: every input must either parse into a valid guard
// or be rejected with a structured error — never panic, and never
// produce a guard with an empty field.
func FuzzGuardAnnotationParse(f *testing.F) {
	for _, seed := range []string{
		"// guarded by mu",
		"// guarded by Coordinator.mu",
		"/* Guarded by Registry.mu */",
		"// guarded by ",
		"// guarded by a.b.c",
		"// guarded by .mu",
		"// guarded by mu..",
		"// guarded by \x00\xff",
		"// nothing to see",
		"guarded byguarded by x",
		strings.Repeat("guarded by ", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, present, err := lockguard.ParseGuard(s)
		if !present {
			if err != nil {
				t.Fatalf("error %v without annotation present for %q", err, s)
			}
			if g != (lockguard.Guard{}) {
				t.Fatalf("guard %+v without annotation present for %q", g, s)
			}
			return
		}
		if err != nil {
			return // structured reject
		}
		if g.Field == "" {
			t.Fatalf("accepted guard with empty field for %q", s)
		}
		if !utf8.ValidString(g.Field) || !utf8.ValidString(g.Type) {
			t.Fatalf("accepted non-UTF8 guard %+v for %q", g, s)
		}
	})
}
