// Package lockguard enforces `// guarded by <mu>` field annotations
// with a flow-sensitive must-hold analysis over the internal CFG.
//
// A struct field annotated `// guarded by mu` (sibling form: mu is a
// sync.Mutex or sync.RWMutex field of the same struct) or `// guarded
// by Type.mu` (type-qualified form: the mutex lives on another
// struct, as with registry entries guarded by the Registry lock) may
// only be read or written while the guard is held. The analysis
// tracks Lock/Unlock/RLock/RUnlock on every path of the function's
// control-flow graph, joins paths with intersection (a guard counts
// only if held on *all* paths reaching the access), refines
// `if mu.TryLock()` branches, and honours two escape hatches:
//
//   - a doc-comment precondition containing "holds <path>" (e.g.
//     "Caller holds w.mu." or "Caller holds Registry.mu") seeds the
//     entry state of that function — the repository's existing
//     locked-helper convention;
//   - locals whose every binding is a fresh composite literal or
//     new(T) are exempt: a value under construction is unshared.
//
// Writes require the guard in exclusive mode; reads are satisfied by
// a read lock too. Function literals are analyzed as independent
// functions with an empty entry state (a closure cannot assume its
// creation point's locks), and calls to other functions are trusted
// to check their own preconditions.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/locks"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: `checks that fields annotated "// guarded by mu" are only accessed with the guard held

Sibling guards ("guarded by mu") name a mutex field of the same
struct; type-qualified guards ("guarded by Type.mu") name a mutex on
the owning container. Doc comments containing "Caller holds x.mu"
declare entry preconditions for locked helpers.`,
	Run: run,
}

func init() { analysis.Register(Analyzer) }

// guardSpec is one annotated field: where it was declared and what
// must be held to touch it.
type guardSpec struct {
	structType types.Object // TypeName of the declaring struct
	field      string
	guard      Guard
	// ownerType is the TypeName owning the guard mutex: the declaring
	// struct for sibling guards, the resolved qualifier for
	// type-qualified ones.
	ownerType types.Object
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				analyzeFunc(pass, guards, fd.Body, entryHeld(pass, fd))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				analyzeFunc(pass, guards, fl.Body, locks.Held{})
			}
			return true
		})
	}
	return nil
}

// collectGuards parses every struct declaration's guarded-by
// annotations, reporting malformed or unresolvable ones in place.
func collectGuards(pass *analysis.Pass) map[types.Object]*guardSpec {
	guards := map[types.Object]*guardSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			typeName, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if typeName == nil {
				return true
			}
			for _, field := range st.Fields.List {
				g, pos, ok := fieldAnnotation(pass, field)
				if !ok {
					continue
				}
				if len(field.Names) == 0 {
					pass.Report(analysis.Diagnostic{Pos: pos, Category: "annotation",
						Message: "guarded-by annotation on an embedded field is not supported"})
					continue
				}
				spec := resolveGuard(pass, typeName, g, pos)
				if spec == nil {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						s := *spec
						s.field = name.Name
						guards[obj] = &s
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldAnnotation scans a field's doc and trailing comments for a
// guarded-by annotation, reporting parse failures.
func fieldAnnotation(pass *analysis.Pass, field *ast.Field) (Guard, token.Pos, bool) {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			g, present, err := ParseGuard(c.Text)
			if !present {
				continue
			}
			if err != nil {
				pass.Reportf(c.Pos(), "invalid guarded-by annotation: %v", err)
				return Guard{}, 0, false
			}
			return g, c.Pos(), true
		}
	}
	return Guard{}, 0, false
}

// resolveGuard validates the annotation against the type structure:
// the named mutex must exist and be a sync.Mutex/RWMutex.
func resolveGuard(pass *analysis.Pass, structType *types.TypeName, g Guard, pos token.Pos) *guardSpec {
	if g.Type == "" {
		if !hasMutexField(structType.Type(), g.Field) {
			pass.Reportf(pos, "guarded-by annotation: %s has no sync.Mutex/RWMutex field %q",
				structType.Name(), g.Field)
			return nil
		}
		return &guardSpec{structType: structType, guard: g, ownerType: structType}
	}
	owner, _ := pass.Pkg.Scope().Lookup(g.Type).(*types.TypeName)
	if owner == nil {
		pass.Reportf(pos, "guarded-by annotation: type %q not found in this package", g.Type)
		return nil
	}
	if !hasMutexField(owner.Type(), g.Field) {
		pass.Reportf(pos, "guarded-by annotation: %s has no sync.Mutex/RWMutex field %q",
			owner.Name(), g.Field)
		return nil
	}
	return &guardSpec{structType: structType, guard: g, ownerType: owner}
}

// fieldOf finds a direct field of the (possibly pointer-to) named
// struct type.
func fieldOf(t types.Type, name string) *types.Var {
	n := analysis.AsNamed(t)
	if n == nil {
		return nil
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

func hasMutexField(t types.Type, name string) bool {
	f := fieldOf(t, name)
	return f != nil && locks.IsMutexType(f.Type())
}

// entryHeld builds the function's entry lock set from "holds"
// preconditions in its doc comment. A candidate path only counts when
// it resolves to a mutex: rooted at the receiver or a parameter
// ("Caller holds w.mu"), or type-qualified via a package-scope type
// ("Caller holds Registry.mu"). Anything else is prose.
func entryHeld(pass *analysis.Pass, fd *ast.FuncDecl) locks.Held {
	var held locks.Held
	if fd.Doc == nil {
		return held
	}
	for _, path := range holdsPaths(fd.Doc.Text()) {
		if l, ok := resolveHoldsPath(pass, fd, path); ok {
			held = held.With(l)
		}
	}
	return held
}

func resolveHoldsPath(pass *analysis.Pass, fd *ast.FuncDecl, path string) (locks.Lock, bool) {
	segs := strings.Split(path, ".")

	// Type-qualified: "Registry.mu" with Registry a package-scope type.
	if len(segs) == 2 {
		if owner, ok := pass.Pkg.Scope().Lookup(segs[0]).(*types.TypeName); ok {
			if hasMutexField(owner.Type(), segs[1]) {
				return locks.Lock{Ref: locks.OwnerRef(owner, segs[1]), Mode: locks.Write, Pos: fd.Pos()}, true
			}
			return locks.Lock{}, false
		}
	}

	// Instance path rooted at the receiver or a parameter.
	root := paramObject(pass, fd, segs[0])
	if root == nil || len(segs) < 2 {
		return locks.Lock{}, false
	}
	key := "v" + strconv.Itoa(int(root.Pos()))
	cur := root.Type()
	var owner types.Object
	for _, seg := range segs[1:] {
		f := fieldOf(cur, seg)
		if f == nil {
			return locks.Lock{}, false
		}
		if n := analysis.AsNamed(cur); n != nil {
			owner = n.Obj()
		}
		key += "." + seg
		cur = f.Type()
	}
	if !locks.IsMutexType(cur) {
		return locks.Lock{}, false
	}
	ref := locks.Ref{
		Key:     key,
		Display: path,
		Owner:   owner,
		Field:   segs[len(segs)-1],
		Root:    root,
	}
	return locks.Lock{Ref: ref, Mode: locks.Write, Pos: fd.Pos()}, true
}

// paramObject resolves name to the receiver or a parameter of fd.
func paramObject(pass *analysis.Pass, fd *ast.FuncDecl, name string) types.Object {
	fields := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if id.Name == name {
					return pass.TypesInfo.Defs[id]
				}
			}
		}
	}
	return nil
}

// analyzeFunc runs the must-hold flow over one body and checks every
// guarded-field access against the state in force before it.
func analyzeFunc(pass *analysis.Pass, guards map[types.Object]*guardSpec, body *ast.BlockStmt, entry locks.Held) {
	info := pass.TypesInfo
	aliases := locks.Aliases(info, body)
	exempt := constructorLocals(info, body)
	g := cfg.New(body)
	flow := cfg.Flow[locks.Held]{
		Init:  entry,
		Join:  func(a, b locks.Held) locks.Held { return a.Intersect(b) },
		Equal: func(a, b locks.Held) bool { return a.Equal(b) },
		Transfer: func(n ast.Node, f locks.Held) locks.Held {
			return locks.Apply(info, aliases, n, f, nil)
		},
		Branch: func(cond ast.Expr, f locks.Held) (locks.Held, locks.Held) {
			return locks.BranchTryLock(info, aliases, cond, f)
		},
	}
	res := flow.Forward(g)
	for _, blk := range g.Blocks {
		res.Walk(blk, func(n ast.Node, held locks.Held) {
			checkNode(pass, guards, aliases, exempt, n, held)
		})
	}
}

// checkNode inspects one CFG node for guarded-field accesses under
// the given held set. Function literals are skipped (they are
// analyzed on their own).
func checkNode(pass *analysis.Pass, guards map[types.Object]*guardSpec,
	aliases map[types.Object]types.Object, exempt map[types.Object]bool,
	n ast.Node, held locks.Held) {

	writes := map[ast.Expr]bool{}
	markWrite := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				writes[e] = true
				return
			}
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			markWrite(l)
		}
	case *ast.IncDecStmt:
		markWrite(s.X)
	}

	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			// Taking the address hands out a way to write the field.
			if x.Op == token.AND {
				markWrite(x.X)
			}
		case *ast.SelectorExpr:
			checkSelector(pass, guards, aliases, exempt, x, writes[x], held)
		}
		return true
	})
}

func checkSelector(pass *analysis.Pass, guards map[types.Object]*guardSpec,
	aliases map[types.Object]types.Object, exempt map[types.Object]bool,
	sel *ast.SelectorExpr, isWrite bool, held locks.Held) {

	info := pass.TypesInfo
	obj := info.Uses[sel.Sel]
	gs, ok := guards[obj]
	if !ok {
		return
	}
	baseRef, baseOK := locks.Resolve(info, aliases, sel.X)
	if baseOK && exempt[baseRef.Root] {
		return // value under construction, unshared
	}
	var satisfied bool
	var want string
	switch {
	case gs.guard.Type == "" && baseOK:
		want = baseRef.Display + "." + gs.guard.Field
		satisfied = held.HasPath(baseRef.Key+"."+gs.guard.Field, isWrite)
	case gs.guard.Type == "":
		want = gs.structType.Name() + "." + gs.guard.Field
		satisfied = held.HasOwner(gs.ownerType, gs.guard.Field, isWrite)
	default:
		want = gs.guard.String()
		satisfied = held.HasOwner(gs.ownerType, gs.guard.Field, isWrite)
	}
	if satisfied {
		return
	}
	verb := "read"
	if isWrite {
		verb = "write"
	}
	pass.Report(analysis.Diagnostic{
		Pos:      sel.Sel.Pos(),
		Category: "unguarded",
		Message:  verb + " of " + gs.structType.Name() + "." + gs.field + " without holding " + want,
	})
}

// constructorLocals finds locals whose every binding is a freshly
// constructed value (composite literal, &composite, new(T), or a
// plain var declaration): until such a value escapes, no other
// goroutine can reach it, so guard checks do not apply.
func constructorLocals(info *types.Info, body ast.Node) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	shared := map[types.Object]bool{}
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		v, _ := info.ObjectOf(id).(*types.Var)
		if v == nil {
			return nil
		}
		return v
	}
	record := func(lhs, rhs ast.Expr) {
		obj := objOf(lhs)
		if obj == nil {
			return
		}
		if rhs == nil || !isFreshExpr(info, rhs) {
			shared[obj] = true
			return
		}
		fresh[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, l := range n.Lhs {
					record(l, nil)
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(n.Values) == 0:
				// `var x T`: the zero value is fresh.
				for _, id := range n.Names {
					if obj := objOf(id); obj != nil {
						fresh[obj] = true
					}
				}
			case len(n.Values) == len(n.Names):
				for i, id := range n.Names {
					record(id, n.Values[i])
				}
			default:
				for _, id := range n.Names {
					record(id, nil)
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key, nil)
			}
			if n.Value != nil {
				record(n.Value, nil)
			}
		}
		return true
	})
	out := map[types.Object]bool{}
	for obj := range fresh {
		if !shared[obj] {
			out[obj] = true
		}
	}
	return out
}

// isFreshExpr reports whether e constructs a brand-new value.
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := x.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		_, builtin := info.Uses[id].(*types.Builtin)
		return builtin && id.Name == "new"
	}
	return false
}
