// Package ctxflow flags broken context plumbing on the engine's
// request paths.
//
// Cancellation is part of the Run(ctx, Request) contract: a check
// must return Cancelled within a poll interval of its context firing.
// That only holds if every exported entry point that accepts a
// context actually threads it down to the solver, and if no function
// on a request path quietly rebases its work onto a fresh
// context.Background().
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `flags dropped context.Context parameters and context.Background() smuggled into request paths

Within the packages named by -pkgs, an exported function whose
context.Context parameter is never referenced is reported, as is any
context.Background()/context.TODO() call inside a function that
already has a context parameter — except the nil-default idiom that
assigns the fresh context to the parameter itself
("if ctx == nil { ctx = context.Background() }").`,
	Run: run,
}

var pkgsFlag string

func init() {
	Analyzer.Flags.StringVar(&pkgsFlag, "pkgs", "core,server,client", "comma-separated package basenames whose request paths are checked")
	analysis.Register(Analyzer)
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), pkgsFlag) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDroppedParam(pass, fd)
			checkSmuggledBackground(pass, fd)
		}
	}
	return nil
}

func inScope(pkgPath, pkgs string) bool {
	base := strings.TrimSuffix(analysis.PkgPathBase(pkgPath), "_test")
	for _, p := range strings.Split(pkgs, ",") {
		if strings.TrimSpace(p) == base {
			return true
		}
	}
	return false
}

// ctxParam returns the *types.Var of the function's first
// context.Context parameter along with its declared name ("" for
// unnamed/blank), or nil.
func ctxParam(pass *analysis.Pass, ft *ast.FuncType) (*types.Var, string) {
	if ft.Params == nil {
		return nil, ""
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !analysis.IsType(tv.Type, "context", "Context") {
			continue
		}
		if len(field.Names) == 0 {
			return types.NewVar(field.Pos(), pass.Pkg, "", tv.Type), ""
		}
		name := field.Names[0]
		if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
			return obj, name.Name
		}
		// Blank "_" params define no object; synthesize one so the
		// dropped-param check still fires.
		return types.NewVar(name.Pos(), pass.Pkg, name.Name, tv.Type), name.Name
	}
	return nil, ""
}

// checkDroppedParam reports an exported function that accepts a
// context but never references it: the caller's deadline and
// cancellation silently die at this frame.
func checkDroppedParam(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	obj, name := ctxParam(pass, fd.Type)
	if obj == nil {
		return
	}
	if name != "" && name != "_" && usesObject(pass, fd.Body, obj) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos: obj.Pos(), Category: "dropped",
		Message: fd.Name.Name + " accepts a context.Context but drops it; thread it through to the solver or remove the parameter",
	})
}

func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// checkSmuggledBackground reports context.Background()/TODO() calls
// in functions that already received a context. The one allowed shape
// is the nil-default idiom assigning straight to the parameter.
func checkSmuggledBackground(pass *analysis.Pass, fd *ast.FuncDecl) {
	obj, name := ctxParam(pass, fd.Type)
	if obj == nil || name == "" || name == "_" {
		return // no usable inbound context; Background is legitimate
	}
	info := pass.TypesInfo

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBackgroundOrTODO(info, call) {
			return true
		}
		if !assignsToParam(info, stack, obj) {
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(), Category: "smuggled",
				Message: "context.Background() discards the caller's " + name + "; derive from " + name + " instead",
			})
		}
		return true
	})
}

func isBackgroundOrTODO(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// assignsToParam reports whether the call on top of the stack is the
// sole right-hand side of an assignment whose target is the context
// parameter itself — `ctx = context.Background()`.
func assignsToParam(info *types.Info, stack []ast.Node, obj types.Object) bool {
	if len(stack) < 2 {
		return false
	}
	asg, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}
