// Package core is a golden-test stand-in for repro/internal/core,
// one of the packages on the engine's request path.
package core

import "context"

func use(ctx context.Context) {}

// Dropped accepts a context and never looks at it.
func Dropped(ctx context.Context, x int) int { // want `Dropped accepts a context\.Context but drops it`
	return x + 1
}

// DroppedBlank discards the caller's context explicitly.
func DroppedBlank(_ context.Context) {} // want `DroppedBlank accepts a context\.Context but drops it`

// DroppedUnnamed does not even name the parameter.
func DroppedUnnamed(context.Context) {} // want `DroppedUnnamed accepts a context\.Context but drops it`

// Engine stands in for the check engine.
type Engine struct{}

// Run drops the context on a method entry point.
func (e *Engine) Run(ctx context.Context) {} // want `Run accepts a context\.Context but drops it`

// Smuggled touches ctx but rebases the real work on Background.
func Smuggled(ctx context.Context) {
	use(context.Background()) // want `context\.Background\(\) discards the caller's ctx`
	use(ctx)
}

// SmuggledTODO does the same with TODO inside a closure.
func SmuggledTODO(ctx context.Context) {
	f := func() { use(context.TODO()) } // want `context\.Background\(\) discards the caller's ctx`
	f()
	use(ctx)
}

// OK threads its context; silent.
func OK(ctx context.Context) { use(ctx) }

// OKDefault is the allowed nil-default idiom; silent.
func OKDefault(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	use(ctx)
}

// dropped is unexported — not an entry point; silent.
func dropped(ctx context.Context) {}

// NoCtx has no inbound context, so Background is legitimate; silent.
func NoCtx() { use(context.Background()) }

// Suppressed shows a justified escape hatch.
func Suppressed(ctx context.Context) { //lttalint:ignore ctxflow golden test of the suppression path
	_ = 0
}
