// Package other sits outside the -pkgs scope: the same shapes that
// fire in core must stay silent here.
package other

import "context"

// Dropped would be a finding inside the request-path scope.
func Dropped(ctx context.Context) {}
