package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	// "core" is inside the -pkgs scope and seeds dropped-param and
	// smuggled-Background findings plus the nil-default and
	// unexported negatives; "other" proves the scope cut-off.
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "core", "other")
}
