// Package timesat flags raw arithmetic on waveform.Time outside the
// waveform package itself.
//
// waveform.Time reserves sentinel values for ±∞ (Def. 1's unbounded
// initial domains) and keeps them stable only through the saturating
// Add/Sub; a raw `t + d` can walk a sentinel off its plateau and turn
// an unbounded last-transition interval into a huge-but-finite one,
// silently unsoundly. The same applies to escaping a Time into int64,
// doing plain machine arithmetic there, and converting back.
package timesat

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "timesat",
	Doc: `flags raw +/-/+=/-=/++/-- and int64 round-trips on waveform.Time

Callers outside internal/waveform must use Time.Add, Time.Sub,
waveform.MinTime, and waveform.MaxTime, which saturate at the ±∞
sentinels. Constant expressions are exempt (the compiler rejects
overflow there); comparisons and serialization-only int64(t)
conversions are not arithmetic and stay legal.`,
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	if base := analysis.PkgPathBase(pass.Pkg.Path()); base == "waveform" ||
		strings.TrimSuffix(base, "_test") == "waveform" {
		return nil // the saturating implementation itself
	}
	info := pass.TypesInfo

	isTime := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && analysis.IsType(tv.Type, "waveform", "Time")
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.ADD && n.Op != token.SUB {
					return true
				}
				if tv, ok := info.Types[n]; ok && tv.Value != nil {
					return true // constant-folded: overflow is a compile error
				}
				if isTime(n.X) || isTime(n.Y) {
					pass.Report(analysis.Diagnostic{
						Pos: n.OpPos, Category: "rawop",
						Message: "raw " + n.Op.String() + " on waveform.Time loses ±∞ saturation; use Add/Sub",
					})
				}
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
					return true
				}
				if len(n.Lhs) == 1 && isTime(n.Lhs[0]) {
					pass.Report(analysis.Diagnostic{
						Pos: n.TokPos, Category: "rawop",
						Message: "raw " + n.Tok.String() + " on waveform.Time loses ±∞ saturation; use Add/Sub",
					})
				}
			case *ast.IncDecStmt:
				if isTime(n.X) {
					pass.Report(analysis.Diagnostic{
						Pos: n.TokPos, Category: "rawop",
						Message: "raw " + n.Tok.String() + " on waveform.Time loses ±∞ saturation; use Add/Sub",
					})
				}
			case *ast.CallExpr:
				if conv, arg := asConversion(info, n); conv != nil && analysis.IsType(conv, "waveform", "Time") {
					if findIntEscape(info, arg) != nil {
						pass.Report(analysis.Diagnostic{
							Pos: n.Pos(), Category: "roundtrip",
							Message: "waveform.Time round-trips through an integer conversion; keep the value a Time and use Add/Sub",
						})
					}
				}
			}
			return true
		})
	}
	return nil
}

// asConversion returns (target type, argument) when call is a type
// conversion, else (nil, nil).
func asConversion(info *types.Info, call *ast.CallExpr) (types.Type, ast.Expr) {
	if len(call.Args) != 1 {
		return nil, nil
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, nil
	}
	return tv.Type, call.Args[0]
}

// findIntEscape looks inside a conversion argument for a Time value
// escaping into a plain integer type (`int64(t)` and friends), the
// first half of an unsaturated round trip.
func findIntEscape(info *types.Info, arg ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(arg, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target, inner := asConversion(info, call)
		if target == nil {
			return true
		}
		if b, ok := target.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
			return true
		}
		if tv, ok := info.Types[inner]; ok && analysis.IsType(tv.Type, "waveform", "Time") {
			found = call
			return false
		}
		return true
	})
	return found
}
