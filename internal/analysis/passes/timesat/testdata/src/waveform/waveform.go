// Package waveform is a golden-test stand-in for the real
// repro/internal/waveform: timesat matches the type by package
// basename and type name, so this package both feeds the violating
// package under test and proves the analyzer stays silent inside the
// saturating implementation itself.
package waveform

// Time mirrors waveform.Time.
type Time int64

// NegInf and PosInf mirror the sentinel plateau.
const (
	NegInf Time = -1 << 60
	PosInf Time = 1 << 60
)

// Add saturates at the infinities. The raw arithmetic below is the
// one place it is allowed; no diagnostics may appear in this file.
func (t Time) Add(d Time) Time {
	if t <= NegInf {
		return NegInf
	}
	if t >= PosInf {
		return PosInf
	}
	s := t + d
	if s <= NegInf {
		return NegInf
	}
	if s >= PosInf {
		return PosInf
	}
	return s
}

// Sub is saturating subtraction.
func (t Time) Sub(d Time) Time { return t.Add(-d) }

// MinTime returns the smaller time.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger time.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
