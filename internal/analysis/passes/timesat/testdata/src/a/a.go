// Package a seeds every timesat diagnostic kind plus the idiomatic
// negatives that must stay silent.
package a

import "waveform"

// Violations: raw two-operand arithmetic.

func rawAdd(t, d waveform.Time) waveform.Time {
	return t + d // want `raw \+ on waveform\.Time loses ±∞ saturation`
}

func rawSubConst(t waveform.Time) waveform.Time {
	return t - 1 // want `raw - on waveform\.Time loses ±∞ saturation`
}

func rawMixed(t waveform.Time, d int) waveform.Time {
	return t + waveform.Time(d) // want `raw \+ on waveform\.Time`
}

// Violations: compound assignment and inc/dec.

func rawCompound(t, d waveform.Time) waveform.Time {
	t += d // want `raw \+= on waveform\.Time`
	t -= 2 // want `raw -= on waveform\.Time`
	t++    // want `raw \+\+ on waveform\.Time`
	t--    // want `raw -- on waveform\.Time`
	return t
}

// Violation: escaping to int64, computing, and converting back.

func roundTrip(a, b waveform.Time) waveform.Time {
	return waveform.Time(int64(a) + int64(b)) // want `round-trips through an integer conversion`
}

func roundTripPlain(t waveform.Time) waveform.Time {
	return waveform.Time(int64(t)) // want `round-trips through an integer conversion`
}

// A justified suppression is honoured and not reported as stale.
func suppressed(t waveform.Time) waveform.Time {
	return t + 7 //lttalint:ignore timesat golden test of the suppression path
}

// Negatives: the saturating API, comparisons, constants, and
// serialization-only conversions are all fine.

func okAPI(t, d waveform.Time) waveform.Time {
	u := t.Add(d).Sub(3)
	return waveform.MaxTime(waveform.MinTime(u, t), d)
}

func okCompare(t, d waveform.Time) bool { return t < d || t >= waveform.PosInf }

const okConst = waveform.PosInf - 1 // typed constant: overflow is a compile error

func okSerialize(t waveform.Time) int64 { return int64(t) }

func okPlainInts(a, b int64) int64 { return a + b }
