// Directive hygiene: the driver reports suppressions that are stale
// or carry no justification, so ignores cannot rot in place.
package a

import "waveform"

// The excuse below suppresses nothing (Add is fine), so the directive
// itself is flagged as stale.
func clean(t waveform.Time) waveform.Time {
	return t.Add(1) //lttalint:ignore timesat stale excuse, nothing fires here // want `stale lttalint:ignore`
}

// A bare directive without a justification is rejected outright.
func alsoClean(t waveform.Time) waveform.Time {
	return t.Add(2) /* want `lttalint:ignore needs an analyzer list and a justification` */ //lttalint:ignore timesat
}
