package timesat_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/timesat"
)

func TestTimesat(t *testing.T) {
	// Package "a" seeds one violation per diagnostic kind plus the
	// saturating negatives; package "waveform" holds raw arithmetic the
	// analyzer must exempt (it is the implementation).
	analysistest.Run(t, analysistest.TestData(t), timesat.Analyzer, "a", "waveform")
}
