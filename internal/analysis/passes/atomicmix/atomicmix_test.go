package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicmix.Analyzer, "a")
}
