// Package a exercises every atomicmix diagnostic kind: plain use of
// declared-atomic fields, mixed plain/atomic access to ordinary
// fields, escaping addresses, plus the negatives (method values,
// sanctioned atomic calls, fields that are purely plain) and one
// justified suppression. The shapes mirror internal/obs histogram
// counters and internal/server admission counters.
package a

import "sync/atomic"

type Counters struct {
	hits  atomic.Int64
	state atomic.Value
	seen  atomic.Bool

	n int64 // every access goes through sync/atomic functions
	m int64 // purely plain — no discipline applies
}

// ---- declared-atomic fields: methods and & are the only legal uses ----

func ok(c *Counters) {
	c.hits.Add(1)
	_ = c.hits.Load()
	c.state.Store(1)
	c.seen.CompareAndSwap(false, true)

	load := c.hits.Load // method value, still atomic
	_ = load()

	p := &c.hits // passing the atomic itself is fine
	bump(p)
}

func bump(p *atomic.Int64) { p.Add(1) }

func badDeclared(c *Counters) {
	v := c.hits // want `plain use of atomic field Counters.hits; access it only through its sync/atomic methods`
	_ = v
	c.hits = atomic.Int64{} // want `plain use of atomic field Counters.hits`
	_ = c.state             // want `plain use of atomic field Counters.state`
}

// ---- mixed plain/atomic access to an ordinary field ----

func okAtomicFuncs(c *Counters) {
	atomic.AddInt64(&c.n, 1)
	_ = atomic.LoadInt64(&c.n)
	atomic.StoreInt64((&c.n), 5) // parenthesised but still direct
}

func badMixed(c *Counters) {
	_ = c.n   // want `plain read of Counters.n, which is accessed via sync/atomic elsewhere in this package`
	c.n++     // want `plain write of Counters.n`
	c.n = 7   // want `plain write of Counters.n`
	q := &c.n // want `address of Counters.n taken outside sync/atomic`
	_ = q
}

// ---- fields never touched by atomics stay free ----

func plainOnly(c *Counters) {
	c.m++
	_ = c.m
	r := &c.m
	_ = r
}

// ---- justified suppression ----

func reset(c *Counters) {
	c.n = 0 //lttalint:ignore atomicmix single-threaded test reset before workers start
}
