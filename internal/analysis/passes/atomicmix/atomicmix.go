// Package atomicmix forbids mixing atomic and plain access to the
// same field, the bug class behind torn counters and racy metric
// snapshots (internal/obs histograms, server admission counters).
//
// Two field populations are enforced, package-wide:
//
//   - fields declared with a sync/atomic type (atomic.Int64,
//     atomic.Uint64, atomic.Value, …) may only be used through their
//     methods (x.f.Load(), x.f.Add(1), a method value like x.f.Load,
//     or &x.f to pass the atomic itself); any other use — copying the
//     value out, overwriting the struct — defeats the type.
//   - fields of plain integer/pointer type that are anywhere passed
//     to a sync/atomic function (atomic.AddInt64(&x.f, 1)) must be
//     accessed that way everywhere in the package: a single plain
//     read or write (or an escaping &x.f outside a sync/atomic call)
//     reintroduces the race the atomics were bought to fix.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer implements the check; see the package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: `forbids plain reads/writes of fields that are declared atomic or accessed via sync/atomic

A field either belongs to the atomics (declared as atomic.T, or its
address passed to sync/atomic functions) or to plain code — never
both. Mixed access is how counters tear.`,
	Run: run,
}

func init() { analysis.Register(Analyzer) }

// atomicTypeNames are the types of sync/atomic whose values carry
// their own discipline.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Pointer": true, "Value": true,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Phase 1a: fields declared with an atomic type.
	declared := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := info.Defs[name]
					if obj != nil && isAtomicType(obj.Type()) {
						declared[obj] = true
					}
				}
			}
			return true
		})
	}

	// Phase 1b: fields whose address feeds a sync/atomic function,
	// and the exact selector expressions sanctioned by those calls.
	viaFunc := map[types.Object]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(info, sel); obj != nil {
					viaFunc[obj] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	if len(declared) == 0 && len(viaFunc) == 0 {
		return nil
	}

	// Phase 2: judge every selector against its field's population.
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(info, sel)
			if obj == nil {
				return true
			}
			name := fieldDisplay(info, sel)
			switch {
			case declared[obj]:
				if !atomicValueUseOK(info, parents, sel) {
					pass.Report(analysis.Diagnostic{
						Pos: sel.Sel.Pos(), Category: "atomictype",
						Message: "plain use of atomic field " + name + "; access it only through its sync/atomic methods",
					})
				}
			case viaFunc[obj] && !sanctioned[sel]:
				p := skipParens(parents, sel)
				if u, ok := p.(*ast.UnaryExpr); ok && u.Op == token.AND {
					pass.Report(analysis.Diagnostic{
						Pos: sel.Sel.Pos(), Category: "mixed",
						Message: "address of " + name + " taken outside sync/atomic; the field is accessed atomically elsewhere",
					})
					return true
				}
				verb := "read"
				if isWriteContext(parents, sel) {
					verb = "write"
				}
				pass.Report(analysis.Diagnostic{
					Pos: sel.Sel.Pos(), Category: "mixed",
					Message: "plain " + verb + " of " + name + ", which is accessed via sync/atomic elsewhere in this package",
				})
			}
			return true
		})
	}
	return nil
}

// isAtomicType reports whether t (or *t) is one of sync/atomic's
// value types.
func isAtomicType(t types.Type) bool {
	n := analysis.AsNamed(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return atomicTypeNames[obj.Name()] && analysis.PkgPathBase(obj.Pkg().Path()) == "atomic"
}

// isAtomicFunc reports whether call invokes a package-level function
// of sync/atomic.
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil && analysis.PkgPathBase(fn.Pkg().Path()) == "atomic"
}

// fieldObject resolves sel to the struct-field object it selects, or
// nil when sel is not a field selection.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return info.Uses[sel.Sel]
}

// fieldDisplay renders Owner.field for messages.
func fieldDisplay(info *types.Info, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok {
		if n := analysis.AsNamed(s.Recv()); n != nil {
			return n.Obj().Name() + "." + sel.Sel.Name
		}
	}
	return sel.Sel.Name
}

// atomicValueUseOK accepts the legal uses of a declared-atomic field:
// selecting one of its methods (call or method value) or taking its
// address.
func atomicValueUseOK(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := skipParens(parents, sel).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[p]; ok && s.Kind() == types.MethodVal {
			return true
		}
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.IndexExpr:
		// Selecting into a field of array-of-atomic etc. is not the
		// atomic value itself; judged at the element's own use site.
		return p.X == sel
	}
	return false
}

// isWriteContext reports whether sel is assigned to or inc/dec'd,
// looking through index/star/paren layers.
func isWriteContext(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	var n ast.Node = sel
	for {
		p := parents[n]
		switch p := p.(type) {
		case *ast.ParenExpr:
			n = p
			continue
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == n {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == n
		default:
			return false
		}
	}
}

// parentMap links every node of f to its parent.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// skipParens returns sel's nearest non-paren ancestor.
func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if _, ok := p.(*ast.ParenExpr); !ok {
			return p
		}
		p = parents[p]
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
