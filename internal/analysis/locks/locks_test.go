package locks

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const testSrc = `package p

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (s *S) work(o *S) {
	s.mu.Lock()
	s.mu.Unlock()
	s.rw.RLock()
	s.rw.RUnlock()
	o.mu.Lock()
	alias := s
	alias.mu.Lock()
	re := s
	re = o
	re.mu.Lock()
	if s.mu.TryLock() {
		s.n = 1
	}
	if !s.rw.TryRLock() {
		return
	}
	var wg sync.WaitGroup
	wg.Wait()
}
`

func typecheck(t *testing.T) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", testSrc, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info
}

// calls returns every CallExpr in source order.
func calls(file *ast.File) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(file, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

func TestClassifyCall(t *testing.T) {
	_, file, info := typecheck(t)
	want := []struct {
		kind OpKind
		mode Mode
		ok   bool
	}{
		{Acquire, Write, true},    // s.mu.Lock
		{Release, Write, true},    // s.mu.Unlock
		{Acquire, Read, true},     // s.rw.RLock
		{Release, Read, true},     // s.rw.RUnlock
		{Acquire, Write, true},    // o.mu.Lock
		{Acquire, Write, true},    // alias.mu.Lock
		{Acquire, Write, true},    // re.mu.Lock
		{TryAcquire, Write, true}, // s.mu.TryLock
		{TryAcquire, Read, true},  // s.rw.TryRLock
		{0, 0, false},             // wg.Wait
	}
	cs := calls(file)
	if len(cs) != len(want) {
		t.Fatalf("call count: got %d, want %d", len(cs), len(want))
	}
	for i, c := range cs {
		op, ok := ClassifyCall(info, c)
		if ok != want[i].ok {
			t.Errorf("call %d: classified=%v, want %v", i, ok, want[i].ok)
			continue
		}
		if ok && (op.Kind != want[i].kind || op.Mode != want[i].mode) {
			t.Errorf("call %d: got kind=%v mode=%v, want kind=%v mode=%v",
				i, op.Kind, op.Mode, want[i].kind, want[i].mode)
		}
	}
}

func TestResolveAndAliases(t *testing.T) {
	_, file, info := typecheck(t)
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok {
			fn = f
		}
	}
	aliases := Aliases(info, fn.Body)

	cs := calls(file)
	refAt := func(i int) Ref {
		op, ok := ClassifyCall(info, cs[i])
		if !ok {
			t.Fatalf("call %d not a mutex op", i)
		}
		ref, ok := Resolve(info, aliases, op.Mutex)
		if !ok {
			t.Fatalf("call %d: mutex %v unresolvable", i, op.Mutex)
		}
		return ref
	}

	sMu := refAt(0)      // s.mu.Lock
	sMuAgain := refAt(1) // s.mu.Unlock
	oMu := refAt(4)      // o.mu.Lock
	aliasMu := refAt(5)  // alias.mu.Lock — alias := s, single assignment
	reMu := refAt(6)     // re.mu.Lock — re reassigned, no alias
	if sMu.Key != sMuAgain.Key {
		t.Errorf("same lock resolved to different keys: %q vs %q", sMu.Key, sMuAgain.Key)
	}
	if sMu.Key == oMu.Key {
		t.Errorf("distinct roots share key %q", sMu.Key)
	}
	if aliasMu.Key != sMu.Key {
		t.Errorf("single-assignment alias not canonicalized: %q vs %q", aliasMu.Key, sMu.Key)
	}
	if reMu.Key == sMu.Key || reMu.Key == oMu.Key {
		t.Errorf("reassigned local %q must not alias either root", reMu.Key)
	}
	if sMu.Owner == nil || sMu.Owner.Name() != "S" || sMu.Field != "mu" {
		t.Errorf("owner identity: got %v.%s, want S.mu", sMu.Owner, sMu.Field)
	}
	if sMu.Display != "s.mu" {
		t.Errorf("display: got %q, want s.mu", sMu.Display)
	}
	if aliasMu.Display != "s.mu" {
		t.Errorf("alias display: got %q, want canonical s.mu", aliasMu.Display)
	}
}

func TestHeldSetOperations(t *testing.T) {
	_, file, info := typecheck(t)
	cs := calls(file)
	op0, _ := ClassifyCall(info, cs[0]) // s.mu
	op4, _ := ClassifyCall(info, cs[4]) // o.mu
	ref0, _ := Resolve(info, nil, op0.Mutex)
	ref4, _ := Resolve(info, nil, op4.Mutex)

	var h Held
	h1 := h.With(Lock{Ref: ref0, Mode: Write, Pos: 1})
	h2 := h1.With(Lock{Ref: ref4, Mode: Write, Pos: 2})
	if h.Len() != 0 || h1.Len() != 1 || h2.Len() != 2 {
		t.Fatalf("With must not mutate: lens %d,%d,%d", h.Len(), h1.Len(), h2.Len())
	}
	if !h2.HasPath(ref0.Key, true) || !h2.HasPath(ref4.Key, true) {
		t.Fatal("held locks not found by path")
	}
	h3 := h2.Without(ref0, Write)
	if h3.HasPath(ref0.Key, false) || !h3.HasPath(ref4.Key, false) {
		t.Fatal("Without removed the wrong entry")
	}
	if got := h1.Intersect(h2); got.Len() != 1 || !got.HasPath(ref0.Key, true) {
		t.Fatalf("Intersect: got %d entries", got.Len())
	}
	if got := h1.Union(h3); got.Len() != 2 {
		t.Fatalf("Union: got %d entries", got.Len())
	}
	if !h1.Equal(h2.Without(ref4, Write)) {
		t.Fatal("Equal: equivalent sets reported unequal")
	}

	// Read-mode entries satisfy reads but not writes.
	hr := h.With(Lock{Ref: ref0, Mode: Read, Pos: 3})
	if hr.HasPath(ref0.Key, true) {
		t.Fatal("read lock must not satisfy a write requirement")
	}
	if !hr.HasPath(ref0.Key, false) {
		t.Fatal("read lock must satisfy a read requirement")
	}

	// Owner-level matching: a concrete s.mu entry satisfies the
	// type-qualified owner (S, mu); an owner-only entry does too.
	if !h1.HasOwner(ref0.Owner, "mu", true) {
		t.Fatal("concrete entry should satisfy owner match")
	}
	ho := h.With(Lock{Ref: OwnerRef(ref0.Owner, "mu"), Mode: Write, Pos: 4})
	if !ho.HasOwner(ref0.Owner, "mu", true) {
		t.Fatal("owner-only entry should satisfy owner match")
	}
	if ho.HasPath(ref0.Key, false) {
		t.Fatal("owner-only entry must not satisfy a concrete path")
	}
}

func TestBranchTryLock(t *testing.T) {
	_, file, info := typecheck(t)
	var conds []ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			conds = append(conds, ifs.Cond)
		}
		return true
	})
	if len(conds) != 2 {
		t.Fatalf("if statements: got %d, want 2", len(conds))
	}

	var h Held
	// if s.mu.TryLock() — true branch holds.
	tf, ff := BranchTryLock(info, nil, conds[0], h)
	if tf.Len() != 1 || ff.Len() != 0 {
		t.Fatalf("TryLock: true branch %d held, false branch %d held; want 1, 0", tf.Len(), ff.Len())
	}
	// if !s.rw.TryRLock() — false branch holds (in read mode).
	tf, ff = BranchTryLock(info, nil, conds[1], h)
	if tf.Len() != 0 || ff.Len() != 1 {
		t.Fatalf("negated TryRLock: true branch %d held, false branch %d held; want 0, 1", tf.Len(), ff.Len())
	}
	for _, l := range ff.All() {
		if l.Mode != Read {
			t.Fatalf("TryRLock acquired mode %v, want read", l.Mode)
		}
	}
}

func TestApplyDeferAndFuncLit(t *testing.T) {
	src := `package q

import "sync"

func f(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	go func() { mu.Unlock() }()
	cb := func() { mu.Unlock() }
	_ = cb
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "q.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("q", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	fn := file.Decls[1].(*ast.FuncDecl)

	var h Held
	var deferred []Op
	onDefer := func(op Op, ref Ref) { deferred = append(deferred, op) }
	for _, s := range fn.Body.List {
		h = Apply(info, nil, s, h, onDefer)
	}
	// The Lock is applied; the deferred Unlock, the goroutine's
	// Unlock, and the closure's Unlock are not.
	if h.Len() != 1 {
		t.Fatalf("held after body: %d locks, want 1 (defer/go/funclit must be inert)", h.Len())
	}
	if len(deferred) != 1 || deferred[0].Kind != Release {
		t.Fatalf("deferred ops: %d, want exactly the deferred Unlock", len(deferred))
	}
}
