// Package locks provides the shared mutex-reasoning vocabulary of the
// flow-sensitive lttalint passes (lockguard, deferunlock): classifying
// sync.Mutex/RWMutex call sites, canonicalizing lock expressions to
// stable intra-procedural paths, and an immutable held-lock set that
// slots into a cfg.Flow lattice.
package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Mode distinguishes exclusive from shared (reader) acquisition.
type Mode int

const (
	Write Mode = iota
	Read
)

func (m Mode) String() string {
	if m == Read {
		return "read"
	}
	return "write"
}

// OpKind classifies what a mutex call site does.
type OpKind int

const (
	Acquire    OpKind = iota // Lock, RLock
	Release                  // Unlock, RUnlock
	TryAcquire               // TryLock, TryRLock — acquires only on the true branch
)

// Op is one classified mutex operation.
type Op struct {
	Kind  OpKind
	Mode  Mode
	Mutex ast.Expr // receiver expression of the call
	Call  *ast.CallExpr
}

// IsMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	return analysis.IsType(t, "sync", "Mutex") || analysis.IsType(t, "sync", "RWMutex")
}

// ClassifyCall reports whether call invokes a locking method of
// sync.Mutex or sync.RWMutex and, if so, which operation it is.
func ClassifyCall(info *types.Info, call *ast.CallExpr) (Op, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || analysis.PkgPathBase(fn.Pkg().Path()) != "sync" {
		return Op{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !IsMutexType(sig.Recv().Type()) {
		return Op{}, false
	}
	op := Op{Mutex: sel.X, Call: call}
	switch fn.Name() {
	case "Lock":
		op.Kind, op.Mode = Acquire, Write
	case "Unlock":
		op.Kind, op.Mode = Release, Write
	case "RLock":
		op.Kind, op.Mode = Acquire, Read
	case "RUnlock":
		op.Kind, op.Mode = Release, Read
	case "TryLock":
		op.Kind, op.Mode = TryAcquire, Write
	case "TryRLock":
		op.Kind, op.Mode = TryAcquire, Read
	default: // RLocker etc.
		return Op{}, false
	}
	return op, true
}

// Ref is the canonical identity of a lock (or lock-guarded field base)
// expression within one function.
type Ref struct {
	// Key identifies the concrete instance: the root variable's
	// object identity followed by the selected field names. Empty for
	// owner-only references (type-qualified guard annotations).
	Key string
	// Display is the human-readable path, e.g. "co.mu".
	Display string
	// Owner is the *types.TypeName of the named struct whose field
	// the path ends in, when that is known; Field is that field's
	// name. Owner-level identity lets a held lock satisfy a
	// type-qualified guard annotation (Coordinator.mu form) even when
	// the instance paths differ.
	Owner types.Object
	Field string
	// Root is the canonical root variable (after alias resolution);
	// nil for owner-only refs.
	Root types.Object
}

// Resolve canonicalizes an expression of the form root.f1.f2…
// (identifier root, field selections only) into a Ref, following
// single-assignment local aliases. ok is false for anything else —
// index expressions, calls, literals — which the analyses then treat
// conservatively.
func Resolve(info *types.Info, aliases map[types.Object]types.Object, e ast.Expr) (Ref, bool) {
	var fields []string
	var outer *ast.SelectorExpr
	e = unparen(e)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if outer == nil {
				outer = x
			}
			fields = append([]string{x.Sel.Name}, fields...)
			e = unparen(x.X)
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return Ref{}, false
			}
			if _, isPkg := obj.(*types.PkgName); isPkg {
				// Cross-package mutexes are out of scope.
				return Ref{}, false
			}
			if a, ok := aliases[obj]; ok {
				obj = a
			}
			key := fmt.Sprintf("v%d", obj.Pos())
			for _, f := range fields {
				key += "." + f
			}
			r := Ref{
				Key:     key,
				Display: strings.Join(append([]string{obj.Name()}, fields...), "."),
				Root:    obj,
			}
			if outer != nil {
				if sel, ok := info.Selections[outer]; ok && sel.Kind() == types.FieldVal {
					if n := analysis.AsNamed(sel.Recv()); n != nil {
						r.Owner = n.Obj()
						r.Field = outer.Sel.Name
					}
				}
			}
			return r, true
		default:
			return Ref{}, false
		}
	}
}

// OwnerRef builds an owner-only Ref for a type-qualified lock
// ("guarded by T.mu" or a "caller holds T.mu" precondition): it
// matches any held lock that is field `field` of the named type.
func OwnerRef(typeName types.Object, field string) Ref {
	return Ref{
		Display: typeName.Name() + "." + field,
		Owner:   typeName,
		Field:   field,
	}
}

// Aliases computes the single-assignment ident→ident aliases of a
// function body: `ws = w` (with ws never otherwise assigned nor
// address-taken, and w itself stable) makes ws canonicalize to w, so
// `ws.mu` and `w.mu` name the same lock. Deliberately minimal — one
// hop chains are resolved, anything mutated or escaping is dropped.
func Aliases(info *types.Info, body ast.Node) map[types.Object]types.Object {
	assigns := map[types.Object]int{}
	aliasRHS := map[types.Object]types.Object{}
	unsafe := map[types.Object]bool{} // address taken or multi-value binding

	lhsObj := func(e ast.Expr) types.Object {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if v, ok := info.ObjectOf(id).(*types.Var); ok {
			return v
		}
		return nil
	}
	record := func(lhs, rhs ast.Expr) {
		obj := lhsObj(lhs)
		if obj == nil {
			return
		}
		assigns[obj]++
		if rhs == nil {
			unsafe[obj] = true
			return
		}
		if rid, ok := unparen(rhs).(*ast.Ident); ok {
			if robj, ok := info.ObjectOf(rid).(*types.Var); ok {
				aliasRHS[obj] = robj
				return
			}
		}
		// Assigned from a non-ident: counted, not an alias edge.
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, l := range n.Lhs {
					record(l, nil)
				}
			}
		case *ast.ValueSpec:
			// `var x T` without a value is not a binding; with values
			// it behaves like assignment.
			if len(n.Values) == len(n.Names) {
				for i, id := range n.Names {
					record(id, n.Values[i])
				}
			} else if len(n.Values) > 0 {
				for _, id := range n.Names {
					record(id, nil)
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key, nil)
			}
			if n.Value != nil {
				record(n.Value, nil)
			}
		case *ast.IncDecStmt:
			record(n.X, nil)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := lhsObj(n.X); obj != nil {
					unsafe[obj] = true
				}
			}
		}
		return true
	})

	out := map[types.Object]types.Object{}
	for obj, robj := range aliasRHS {
		if assigns[obj] != 1 || unsafe[obj] {
			continue
		}
		// Chase the chain to a stable terminal, refusing cycles and
		// targets that are reassigned or escape (those could name a
		// different instance by the time the alias is used).
		seen := map[types.Object]bool{obj: true}
		target := robj
		valid := true
		for {
			if unsafe[target] || assigns[target] > 1 || seen[target] {
				valid = false
				break
			}
			next, has := aliasRHS[target]
			if !has {
				break
			}
			seen[target] = true
			target = next
		}
		if valid {
			out[obj] = target
		}
	}
	return out
}

// Lock is one held-lock entry.
type Lock struct {
	Ref  Ref
	Mode Mode
	Pos  token.Pos // acquisition site
}

func (l Lock) key() string {
	var k string
	if l.Ref.Key != "" {
		k = "p:" + l.Ref.Key
	} else if l.Ref.Owner != nil {
		k = fmt.Sprintf("t:%d.%s", l.Ref.Owner.Pos(), l.Ref.Field)
	} else {
		k = "?:" + l.Ref.Display
	}
	if l.Mode == Read {
		k += ":r"
	}
	return k
}

// Held is an immutable set of held locks; the zero value is the empty
// set. All operations return fresh sets.
type Held struct {
	m map[string]Lock
}

// With returns h plus l (keeping the earliest acquisition position on
// re-entry, which in Go would deadlock anyway but keeps reports
// stable).
func (h Held) With(l Lock) Held {
	out := make(map[string]Lock, len(h.m)+1)
	for k, v := range h.m {
		out[k] = v
	}
	k := l.key()
	if _, ok := out[k]; !ok {
		out[k] = l
	}
	return Held{out}
}

// Without returns h minus the lock identified by ref/mode.
func (h Held) Without(ref Ref, mode Mode) Held {
	k := Lock{Ref: ref, Mode: mode}.key()
	if _, ok := h.m[k]; !ok {
		return h
	}
	out := make(map[string]Lock, len(h.m)-1)
	for k2, v := range h.m {
		if k2 != k {
			out[k2] = v
		}
	}
	return Held{out}
}

// Intersect keeps locks held in both sets (must-hold join).
func (h Held) Intersect(o Held) Held {
	out := map[string]Lock{}
	for k, v := range h.m {
		if _, ok := o.m[k]; ok {
			out[k] = v
		}
	}
	return Held{out}
}

// Union keeps locks held in either set (may-hold join).
func (h Held) Union(o Held) Held {
	out := make(map[string]Lock, len(h.m)+len(o.m))
	for k, v := range h.m {
		out[k] = v
	}
	for k, v := range o.m {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return Held{out}
}

func (h Held) Equal(o Held) bool {
	if len(h.m) != len(o.m) {
		return false
	}
	for k := range h.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

func (h Held) Len() int { return len(h.m) }

// All returns the held locks in unspecified order.
func (h Held) All() []Lock {
	out := make([]Lock, 0, len(h.m))
	for _, v := range h.m {
		out = append(out, v)
	}
	return out
}

// HasPath reports whether the concrete lock instance keyed by
// pathKey is held: in write mode when write is required, in either
// mode for a read.
func (h Held) HasPath(pathKey string, needWrite bool) bool {
	if _, ok := h.m["p:"+pathKey]; ok {
		return true
	}
	if !needWrite {
		_, ok := h.m["p:"+pathKey+":r"]
		return ok
	}
	return false
}

// HasOwner reports whether any held lock is field `field` of the
// named type `owner` (matching both concrete-path entries that carry
// owner identity and owner-only entries from holds preconditions).
func (h Held) HasOwner(owner types.Object, field string, needWrite bool) bool {
	for _, l := range h.m {
		if l.Owner() == owner && l.Ref.Field == field {
			if needWrite && l.Mode != Write {
				continue
			}
			return true
		}
	}
	return false
}

// Owner returns the owning type object of the lock's final field, or
// nil.
func (l Lock) Owner() types.Object { return l.Ref.Owner }

// Apply folds the mutex operations of one CFG node into held.
// Deferred operations do not change the held set — their effect is at
// function exit — but are surfaced through onDefer when non-nil.
// `go` statements and function-literal bodies are opaque: they run on
// other goroutines or at other times.
func Apply(info *types.Info, aliases map[types.Object]types.Object, n ast.Node, held Held, onDefer func(Op, Ref)) Held {
	switch s := n.(type) {
	case *ast.DeferStmt:
		if op, ok := ClassifyCall(info, s.Call); ok && onDefer != nil {
			if ref, rok := Resolve(info, aliases, op.Mutex); rok {
				onDefer(op, ref)
			}
		}
		return held
	case *ast.GoStmt:
		return held
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			op, ok := ClassifyCall(info, x)
			if !ok {
				return true
			}
			ref, rok := Resolve(info, aliases, op.Mutex)
			if !rok {
				return true
			}
			switch op.Kind {
			case Acquire:
				held = held.With(Lock{Ref: ref, Mode: op.Mode, Pos: x.Pos()})
			case Release:
				held = held.Without(ref, op.Mode)
			}
			// TryAcquire only takes effect on the true branch — see
			// BranchTryLock.
		}
		return true
	})
	return held
}

// BranchTryLock refines a two-way branch: when cond is `x.TryLock()`
// (possibly parenthesized or negated), the branch on which the call
// returned true gains the lock.
func BranchTryLock(info *types.Info, aliases map[types.Object]types.Object, cond ast.Expr, held Held) (tf, ff Held) {
	tf, ff = held, held
	pos := true
	e := unparen(cond)
	for {
		u, ok := e.(*ast.UnaryExpr)
		if !ok || u.Op != token.NOT {
			break
		}
		pos = !pos
		e = unparen(u.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	op, ok := ClassifyCall(info, call)
	if !ok || op.Kind != TryAcquire {
		return
	}
	ref, rok := Resolve(info, aliases, op.Mutex)
	if !rok {
		return
	}
	acquired := held.With(Lock{Ref: ref, Mode: op.Mode, Pos: call.Pos()})
	if pos {
		tf = acquired
	} else {
		ff = acquired
	}
	return
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
