// Package unitchecker makes an analyzer suite runnable as a `go vet
// -vettool`. It speaks cmd/go's vet protocol on the standard library
// alone — the same contract as golang.org/x/tools/go/analysis/
// unitchecker, minus facts (no analyzer in this suite needs
// cross-package state):
//
//   - `tool -V=full` prints an identity line cmd/go hashes into its
//     build cache key;
//   - `tool -flags` prints a JSON description of the tool's flags so
//     `go vet` can validate command-line arguments;
//   - `tool <dir>/vet.cfg` analyzes one package unit described by the
//     JSON config: it parses the listed files, typechecks them against
//     the export data cmd/go already compiled for every dependency,
//     runs the analyzers, and exits nonzero if findings remain.
//
// Diagnostics go to stderr in the usual file:line:col format, which
// `go vet` relays per package.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config is the JSON unmarshalling of a vet.cfg file: the fields of
// cmd/go's vetConfig that this driver consumes. Unknown fields are
// ignored, so the struct tracks only what we need.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool main package:
//
//	func main() { unitchecker.Main(analysis.All()...) }
func Main(analyzers ...*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("lttalint: ")

	printFlags := flag.Bool("flags", false, "print flags in JSON (for go vet)")
	listFlag := flag.Bool("list", false, "list the registered analyzers with their one-line docs and exit")
	listJSON := flag.Bool("json", false, "with -list: emit the analyzer list as JSON")
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full for a build identity)")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		a := a
		enabled[a.Name] = flag.Bool(a.Name, false, "run only analyzers explicitly enabled this way ("+firstLine(a.Doc)+")")
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "lttalint: the repro project vet suite; run via: go vet -vettool=$(which lttalint) ./...")
		fmt.Fprintln(os.Stderr, "usage: lttalint [flags] <vet.cfg>")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printFlags {
		describeFlags()
		os.Exit(0)
	}
	if *listFlag {
		if err := writeList(os.Stdout, analyzers, *listJSON); err != nil {
			log.Fatal(err)
		}
		os.Exit(0)
	}
	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
		os.Exit(1)
	}

	// An explicit -<analyzer> selects a subset; default is the suite.
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if selected == nil {
		selected = analyzers
	}

	findings, err := runUnit(args[0], selected)
	if err != nil {
		log.Fatal(err)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// writeList prints the suite roster: `name<TAB>one-line doc` per
// analyzer, or a JSON array with -json. README's Linting table is
// generated from (and drift-tested against) this output.
func writeList(w io.Writer, analyzers []*analysis.Analyzer, asJSON bool) error {
	sorted := append([]*analysis.Analyzer(nil), analyzers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	if asJSON {
		type item struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		}
		items := make([]item, len(sorted))
		for i, a := range sorted {
			items[i] = item{a.Name, firstLine(a.Doc)}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		return enc.Encode(items)
	}
	for _, a := range sorted {
		if _, err := fmt.Fprintf(w, "%s\t%s\n", a.Name, firstLine(a.Doc)); err != nil {
			return err
		}
	}
	return nil
}

// versionFlag implements -V=full: cmd/go hashes the reported identity
// into the build cache key of every vet result, so the output must
// change whenever the tool's behaviour can — hashing the executable
// itself achieves that.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Open(os.Args[0])
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, exe); err != nil {
		log.Fatal(err)
	}
	exe.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// describeFlags prints the JSON flag description `go vet` requests
// before dispatching, mirroring x/tools' analysisflags output shape.
func describeFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// runUnit analyzes the single package unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) ([]analysis.Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// cmd/go expects the vetx output file of every vet action, and runs
	// dependency units with VetxOnly just for their facts. This suite
	// carries no facts, so the file is an empty placeholder.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}
	if cfg.VetxOnly {
		return nil, writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // e.g. tests of a package with deliberate errors
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		ipath, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if ipath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(ipath)
	})

	tc := &types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	findings, err := analysis.RunAnalyzers(&analysis.Target{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		return nil, err
	}
	return findings, writeVetx()
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
