package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// ignoreTarget parses src (no typechecking — the directive machinery
// is purely syntactic) and returns a Target plus a marker lookup:
// every line containing `/*N*/` is addressable by that number.
func ignoreTarget(t *testing.T, src string) (*Target, func(marker string) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &Target{Fset: fset, Files: []*ast.File{f}}
	return tgt, func(marker string) token.Pos {
		i := strings.Index(src, "/*"+marker+"*/")
		if i < 0 {
			t.Fatalf("marker %q not in fixture", marker)
		}
		return fset.File(f.Pos()).Pos(i)
	}
}

// reporterAt builds an analyzer that reports one diagnostic at each of
// the given marker positions.
func reporterAt(name string, positions ...token.Pos) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  name + " test reporter",
		Run: func(p *Pass) error {
			for _, pos := range positions {
				p.Report(Diagnostic{Pos: pos, Message: "finding from " + name})
			}
			return nil
		},
	}
}

func findingsByAnalyzer(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Analyzer]++
	}
	return out
}

func TestIgnoreMultiAnalyzerDirective(t *testing.T) {
	tgt, at := ignoreTarget(t, `package p

var x = /*1*/ 0 //lttalint:ignore alpha,beta both are fixture noise

var y = /*2*/ 0
`)
	// The directive names alpha and beta; gamma's finding on the same
	// line must survive, as must alpha's finding on the unrelated line
	// (a blank line below the directive keeps it out of covered range).
	alpha := reporterAt("alpha", at("1"), at("2"))
	beta := reporterAt("beta", at("1"))
	gamma := reporterAt("gamma", at("1"))
	fs, err := RunAnalyzers(tgt, []*Analyzer{alpha, beta, gamma})
	if err != nil {
		t.Fatal(err)
	}
	got := findingsByAnalyzer(fs)
	if got["alpha"] != 1 || got["beta"] != 0 || got["gamma"] != 1 || got["lttalint"] != 0 {
		t.Errorf("findings = %v, want alpha:1 (line 4 only), beta:0, gamma:1, no directive problems", got)
	}
}

func TestIgnoreMissingJustification(t *testing.T) {
	tgt, at := ignoreTarget(t, `package p

var x = /*1*/ 0 //lttalint:ignore alpha
var y = /*2*/ 0 //lttalint:ignore
`)
	alpha := reporterAt("alpha", at("1"), at("2"))
	fs, err := RunAnalyzers(tgt, []*Analyzer{alpha})
	if err != nil {
		t.Fatal(err)
	}
	// An unjustified directive suppresses nothing and is itself
	// reported — once per directive, plus the two surviving findings.
	got := findingsByAnalyzer(fs)
	if got["alpha"] != 2 || got["lttalint"] != 2 {
		t.Errorf("findings = %v, want alpha:2 and lttalint:2 (both directives unjustified)", got)
	}
	for _, f := range fs {
		if f.Analyzer == "lttalint" && !strings.Contains(f.Message, "justification") {
			t.Errorf("directive problem lacks the justification hint: %s", f.Message)
		}
	}
}

func TestIgnoreStaleness(t *testing.T) {
	tgt, _ := ignoreTarget(t, `package p

//lttalint:ignore alpha suppresses nothing on either line
var x = 0

//lttalint:ignore omega aimed at an analyzer outside this run
var y = 0
`)
	alpha := reporterAt("alpha") // runs, reports nothing
	fs, err := RunAnalyzers(tgt, []*Analyzer{alpha})
	if err != nil {
		t.Fatal(err)
	}
	// The alpha directive is stale (alpha ran and it caught nothing);
	// the omega directive must NOT be called stale, because omega was
	// not part of this run and a single-analyzer harness cannot judge
	// directives aimed at the rest of the suite.
	var stale []Finding
	for _, f := range fs {
		if strings.Contains(f.Message, "stale") {
			stale = append(stale, f)
		}
	}
	if len(stale) != 1 || stale[0].Position.Line != 3 {
		t.Errorf("stale directives = %v, want exactly the alpha directive on line 3", stale)
	}
}

func TestIgnorePlacement(t *testing.T) {
	tgt, at := ignoreTarget(t, `package p

//lttalint:ignore alpha the line below is fixture noise
var a = /*1*/ 0

var b = /*2*/ 0 //lttalint:ignore alpha end-of-line placement

var c = /*3*/ 0
//lttalint:ignore alpha a directive BELOW the line must not reach up
`)
	alpha := reporterAt("alpha", at("1"), at("2"), at("3"))
	fs, err := RunAnalyzers(tgt, []*Analyzer{alpha})
	if err != nil {
		t.Fatal(err)
	}
	var surviving []int
	var staleLines []int
	for _, f := range fs {
		switch {
		case f.Analyzer == "alpha":
			surviving = append(surviving, f.Position.Line)
		case strings.Contains(f.Message, "stale"):
			staleLines = append(staleLines, f.Position.Line)
		}
	}
	// Line-above and end-of-line placements suppress; the directive
	// below line 8 covers only itself and line 9, so the line-8 finding
	// survives and that directive is stale.
	if len(surviving) != 1 || surviving[0] != 8 {
		t.Errorf("surviving alpha findings on lines %v, want [8]", surviving)
	}
	if len(staleLines) != 1 || staleLines[0] != 9 {
		t.Errorf("stale directives on lines %v, want [9]", staleLines)
	}
}

func TestIgnoreAllDirective(t *testing.T) {
	tgt, at := ignoreTarget(t, `package p

var x = /*1*/ 0 //lttalint:ignore all fixture line is exempt from the whole suite
`)
	alpha := reporterAt("alpha", at("1"))
	beta := reporterAt("beta", at("1"))
	fs, err := RunAnalyzers(tgt, []*Analyzer{alpha, beta})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("findings = %v, want none: \"all\" covers every analyzer", fs)
	}
}
