// Package analysis is a stdlib-only reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's own
// lint suite (cmd/lttalint). The engine's soundness rests on
// conventions the compiler cannot check — saturating waveform.Time
// arithmetic, immutability of the shared core.Prepared, deterministic
// iteration wherever order reaches output, and context flow through
// request paths — and the analyzers under passes/ machine-check them.
//
// The API deliberately mirrors the x/tools shape (Analyzer, Pass,
// Diagnostic, a multichecker-style main) so that, should the real
// dependency ever become available, migration is a handful of import
// rewrites. It is smaller in two ways: there are no Facts (none of
// the project analyzers need cross-package state) and no Requires
// graph (each analyzer walks the AST itself).
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one self-contained static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// lttalint:ignore directives. By convention it is lowercase,
	// without underscores.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// a blank line, then detail.
	Doc string

	// Flags holds analyzer-specific configuration. The unitchecker
	// driver exposes each flag as -<name>.<flag>; tests may set them
	// directly.
	Flags flag.FlagSet

	// Run applies the analyzer to one package, reporting findings via
	// pass.Report. The returned error aborts the whole run (reserve it
	// for internal inconsistencies, not findings).
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer and one package under
// analysis. All fields are read-only for the analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver filters findings
	// suppressed by lttalint:ignore directives.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Pos
	// Category distinguishes the diagnostic kinds of one analyzer
	// (e.g. timesat's "rawop" vs "roundtrip"); informational.
	Category string
	Message  string
}

// Finding is a resolved diagnostic as emitted by the drivers: the
// analyzer that produced it plus a printable position.
type Finding struct {
	Analyzer string
	Category string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// Target is one typechecked package handed to RunAnalyzers by a
// driver (the unitchecker, the analysistest harness, or an ad-hoc
// test).
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RunAnalyzers applies each analyzer to the target, filters findings
// through the lttalint:ignore directives of the target's files, and
// returns the survivors sorted by position. Directive misuse (a
// directive with no justification, or one that suppressed nothing) is
// itself reported, so stale ignores cannot accumulate.
func RunAnalyzers(t *Target, analyzers []*Analyzer) ([]Finding, error) {
	dirs := parseDirectives(t.Fset, t.Files)
	ran := make(map[string]bool, len(analyzers))
	var out []Finding
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		for _, d := range diags {
			pos := t.Fset.Position(d.Pos)
			if dirs.suppresses(a.Name, pos) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Category: d.Category, Position: pos, Message: d.Message})
		}
	}
	out = append(out, dirs.problems(ran)...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
