// Package all links the complete lttalint analyzer suite into the
// process-wide registry. A driver imports it for effect and calls
// analysis.All(); a new analyzer joins the suite by adding one blank
// import here and nothing else.
package all

import (
	_ "repro/internal/analysis/passes/atomicmix"
	_ "repro/internal/analysis/passes/ctxflow"
	_ "repro/internal/analysis/passes/deferunlock"
	_ "repro/internal/analysis/passes/lockguard"
	_ "repro/internal/analysis/passes/mapdeterminism"
	_ "repro/internal/analysis/passes/preparedmut"
	_ "repro/internal/analysis/passes/soaalias"
	_ "repro/internal/analysis/passes/timesat"
)
