package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix introduces a suppression directive:
//
//	//lttalint:ignore <analyzer>[,<analyzer>...] <justification>
//
// The directive suppresses findings of the named analyzers (or "all")
// on its own line and on the line immediately below, so it works both
// as a trailing comment on the offending line and as a standalone
// comment above it. The justification is mandatory — an ignore that
// cannot say why it exists is itself reported — and a directive that
// suppresses nothing is reported as stale, so ignores cannot outlive
// the code they excuse.
const IgnorePrefix = "//lttalint:ignore"

type directive struct {
	pos       token.Position
	names     map[string]bool // nil when the directive names "all"
	justified bool
	used      bool
}

func (d *directive) covers(analyzer string) bool {
	return d.names == nil || d.names[analyzer]
}

type directiveSet struct {
	// byFile maps filename → directives in that file.
	byFile map[string][]*directive
}

func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byFile: map[string][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				d := &directive{pos: fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					if fields[0] != "all" {
						d.names = map[string]bool{}
						for _, n := range strings.Split(fields[0], ",") {
							if n != "" {
								d.names[n] = true
							}
						}
					}
					d.justified = len(fields) > 1
				}
				ds.byFile[d.pos.Filename] = append(ds.byFile[d.pos.Filename], d)
			}
		}
	}
	return ds
}

// suppresses reports whether a justified directive covers a finding
// of the given analyzer at pos, marking the directive used.
func (ds *directiveSet) suppresses(analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range ds.byFile[pos.Filename] {
		if !d.justified || !d.covers(analyzer) {
			continue
		}
		if pos.Line == d.pos.Line || pos.Line == d.pos.Line+1 {
			d.used = true
			hit = true
		}
	}
	return hit
}

// problems reports directive misuse relative to the set of analyzers
// that actually ran: missing justifications always, staleness only
// when every analyzer the directive names was part of the run (a
// single-analyzer test harness must not flag directives aimed at the
// rest of the suite).
func (ds *directiveSet) problems(ran map[string]bool) []Finding {
	var out []Finding
	for _, dirs := range ds.byFile {
		for _, d := range dirs {
			switch {
			case !d.justified:
				out = append(out, Finding{
					Analyzer: "lttalint", Category: "directive", Position: d.pos,
					Message: "lttalint:ignore needs an analyzer list and a justification",
				})
			case !d.used && coveredByRun(d, ran):
				out = append(out, Finding{
					Analyzer: "lttalint", Category: "directive", Position: d.pos,
					Message: "stale lttalint:ignore: it suppresses nothing",
				})
			}
		}
	}
	return out
}

func coveredByRun(d *directive, ran map[string]bool) bool {
	if d.names == nil {
		return true // "all": the run set is by definition covered
	}
	for n := range d.names {
		if !ran[n] {
			return false
		}
	}
	return true
}
