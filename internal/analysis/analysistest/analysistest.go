// Package analysistest runs an analyzer over golden packages and
// checks its diagnostics against `// want` expectations, in the style
// of golang.org/x/tools/go/analysis/analysistest but on the standard
// library alone.
//
// Golden packages live under <testdata>/src/<path>, GOPATH-style;
// imports between golden packages resolve within that tree, and
// anything else (context, sort, fmt, …) falls back to the toolchain's
// default importer. A `// want "re1" "re2"` comment expects, on its
// own line, one diagnostic matching each quoted regular expression;
// diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test. Driver-level directive problems (stale
// or unjustified lttalint:ignore) surface like any other diagnostic
// and can be expected the same way.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory (tests run with the package directory as working
// directory).
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "testdata")
}

// Run loads each golden package and checks the analyzer's output
// against the package's want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			target, err := l.load(path)
			if err != nil {
				t.Fatalf("loading %s: %v", path, err)
			}
			findings, err := analysis.RunAnalyzers(target, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			check(t, target, findings)
		})
	}
}

// loader typechecks golden packages, resolving inter-package imports
// inside the testdata tree and delegating everything else to the
// toolchain importer.
type loader struct {
	root     string
	fset     *token.FileSet
	pkgs     map[string]*analysis.Target
	fallback types.Importer
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:     root,
		fset:     fset,
		pkgs:     map[string]*analysis.Target{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); isDir(dir) {
		target, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return target.Pkg, nil
	}
	return l.fallback.Import(path)
}

func isDir(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

func (l *loader) load(path string) (*analysis.Target, error) {
	if t, ok := l.pkgs[path]; ok {
		return t, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	target := &analysis.Target{Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.pkgs[path] = target
	return target, nil
}

// expectation is one quoted regexp of a want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s`)

func parseExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(text, "*/")
				}
				loc := wantRe.FindStringIndex(text)
				if loc == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(text[loc[1]:])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", pos, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad regexp %q: %v", pos, pat, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return exps
}

func check(t *testing.T, target *analysis.Target, findings []analysis.Finding) {
	t.Helper()
	exps := parseExpectations(t, target.Fset, target.Files)

	for _, f := range findings {
		matched := false
		for _, e := range exps {
			if !e.met && e.file == f.Position.Filename && e.line == f.Position.Line && e.re.MatchString(f.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	sort.Slice(exps, func(i, j int) bool {
		if exps[i].file != exps[j].file {
			return exps[i].file < exps[j].file
		}
		return exps[i].line < exps[j].line
	})
	for _, e := range exps {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}
