// Package verilog reads and writes the structural-Verilog subset that
// gate-level timing tools exchange: one module, input/output/wire
// declarations, and primitive gate instantiations (and, nand, or, nor,
// xor, xnor, not, buf) with optional #delay annotations. This is the
// industrial front end complementing the ISCAS .bench reader (the
// paper's engine was being integrated with a Nortel timing verifier;
// structural Verilog plus SDF is that flow's interchange format).
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// Options control parsing.
type Options struct {
	// DefaultDelay applies to primitives without a #delay. Zero means 1.
	DefaultDelay int64
}

// primitive maps Verilog gate primitives to the library. Verilog
// primitive ports are (output, inputs...).
var primitive = map[string]circuit.GateType{
	"and": circuit.AND, "nand": circuit.NAND,
	"or": circuit.OR, "nor": circuit.NOR,
	"xor": circuit.XOR, "xnor": circuit.XNOR,
	"not": circuit.NOT, "buf": circuit.BUFFER,
}

var primName = map[circuit.GateType]string{
	circuit.AND: "and", circuit.NAND: "nand",
	circuit.OR: "or", circuit.NOR: "nor",
	circuit.XOR: "xor", circuit.XNOR: "xnor",
	circuit.NOT: "not", circuit.BUFFER: "buf", circuit.DELAY: "buf",
}

// Read parses one structural module into a Circuit.
func Read(r io.Reader, opt Options) (*circuit.Circuit, error) {
	if opt.DefaultDelay == 0 {
		opt.DefaultDelay = 1
	}
	toks, err := lex(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.module(opt)
}

// ParseString is Read over a string.
func ParseString(s string, opt Options) (*circuit.Circuit, error) {
	return Read(strings.NewReader(s), opt)
}

// Write renders the circuit as one structural-Verilog module with
// #delay annotations on every primitive.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	for _, pi := range c.PrimaryInputs() {
		ports = append(ports, c.Net(pi).Name)
	}
	for _, po := range c.PrimaryOutputs() {
		ports = append(ports, c.Net(po).Name)
	}
	name := sanitizeID(c.Name)
	if name == "" {
		name = "top"
	}
	fmt.Fprintf(bw, "module %s (%s);\n", name, strings.Join(ports, ", "))
	for _, pi := range c.PrimaryInputs() {
		fmt.Fprintf(bw, "  input %s;\n", c.Net(pi).Name)
	}
	for _, po := range c.PrimaryOutputs() {
		fmt.Fprintf(bw, "  output %s;\n", c.Net(po).Name)
	}
	for i := 0; i < c.NumNets(); i++ {
		n := c.Net(circuit.NetID(i))
		if !n.IsPI && !n.IsPO {
			fmt.Fprintf(bw, "  wire %s;\n", n.Name)
		}
	}
	fmt.Fprintln(bw)
	for gi, gid := range c.TopoGates() {
		g := c.Gate(gid)
		prim, ok := primName[g.Type]
		if !ok {
			return fmt.Errorf("verilog: gate type %s has no primitive", g.Type)
		}
		args := []string{c.Net(g.Output).Name}
		for _, in := range g.Inputs {
			args = append(args, c.Net(in).Name)
		}
		fmt.Fprintf(bw, "  %s #%d u%d (%s);\n", prim, g.Delay, gi, strings.Join(args, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// String renders to a string (panics only on impossible writer errors).
func String(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		panic(err)
	}
	return sb.String()
}

func sanitizeID(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '$':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out != "" && out[0] >= '0' && out[0] <= '9' {
		out = "m" + out
	}
	return out
}

// ---- lexer ----

type token struct {
	text string
	line int
}

func lex(r io.Reader) ([]token, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("verilog: read: %v", err)
	}
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("verilog: line %d: unterminated block comment", line)
			}
			i += 2
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '#':
			toks = append(toks, token{string(c), line})
			i++
		case isIdentByte(c):
			j := i
			for j < n && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, token{string(src[i:j]), line})
			i = j
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '$' || c == '.' || c == '[' || c == ']' || c == '\\'
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("verilog: unexpected end of input")
	}
	p.pos++
	return t, nil
}

func (p *parser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != text {
		return fmt.Errorf("verilog: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

// identList parses "a, b, c ;" (the terminator is consumed).
func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.text == "," || t.text == ";" || t.text == ")" {
			return nil, fmt.Errorf("verilog: line %d: expected identifier, got %q", t.line, t.text)
		}
		out = append(out, t.text)
		sep, err := p.next()
		if err != nil {
			return nil, err
		}
		switch sep.text {
		case ",":
			continue
		case ";":
			return out, nil
		default:
			return nil, fmt.Errorf("verilog: line %d: expected , or ; got %q", sep.line, sep.text)
		}
	}
}

func (p *parser) module(opt Options) (*circuit.Circuit, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	nameTok, err := p.next()
	if err != nil {
		return nil, err
	}
	b := circuit.NewBuilder(nameTok.text)
	// Port list (names ignored; direction comes from declarations).
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.text == "(" {
		for {
			t, err = p.next()
			if err != nil {
				return nil, err
			}
			if t.text == ")" {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	} else if t.text != ";" {
		return nil, fmt.Errorf("verilog: line %d: expected port list or ;", t.line)
	}

	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("verilog: missing endmodule")
		}
		switch t.text {
		case "endmodule":
			p.pos++
			return b.Build()
		case "input":
			p.pos++
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				b.Input(n)
			}
		case "output":
			p.pos++
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				b.Output(n)
			}
		case "wire":
			p.pos++
			if _, err := p.identList(); err != nil {
				return nil, err
			}
			// Wires are implicit in the builder.
		default:
			if gt, ok := primitive[strings.ToLower(t.text)]; ok {
				p.pos++
				if err := p.instance(b, gt, opt); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("verilog: line %d: unsupported construct %q (structural subset only)", t.line, t.text)
		}
	}
}

// instance parses "[#delay] [name] ( out, in... ) ;".
func (p *parser) instance(b *circuit.Builder, gt circuit.GateType, opt Options) error {
	delay := opt.DefaultDelay
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text == "#" {
		dt, err := p.next()
		if err != nil {
			return err
		}
		d, err := strconv.ParseInt(dt.text, 10, 64)
		if err != nil {
			return fmt.Errorf("verilog: line %d: bad delay %q", dt.line, dt.text)
		}
		delay = d
		t, err = p.next()
		if err != nil {
			return err
		}
	}
	if t.text != "(" {
		// Optional instance name.
		if err := p.expect("("); err != nil {
			return err
		}
	}
	var args []string
	for {
		at, err := p.next()
		if err != nil {
			return err
		}
		if at.text == ")" || at.text == "," {
			return fmt.Errorf("verilog: line %d: expected net name", at.line)
		}
		args = append(args, at.text)
		sep, err := p.next()
		if err != nil {
			return err
		}
		if sep.text == ")" {
			break
		}
		if sep.text != "," {
			return fmt.Errorf("verilog: line %d: expected , or ) got %q", sep.line, sep.text)
		}
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if len(args) < 2 {
		return fmt.Errorf("verilog: primitive needs an output and at least one input")
	}
	b.Gate(gt, delay, args[0], args[1:]...)
	return nil
}
