package verilog

import "testing"

// FuzzParse asserts the structural-Verilog parser never panics, and
// write→read is stable for whatever parses.
func FuzzParse(f *testing.F) {
	f.Add(c17v)
	f.Add("module m; endmodule")
	f.Add("module m (a, z); input a; output z; not (z, a); endmodule")
	f.Add("module m; nand #5 u (z, a, b); endmodule")
	f.Add("module /* c */ m; // x\nendmodule")
	f.Add("module m (")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, Options{DefaultDelay: 3})
		if err != nil {
			return
		}
		out := String(c)
		c2, err := ParseString(out, Options{DefaultDelay: 3})
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput:\n%s\nemitted:\n%s", err, src, out)
		}
		if c2.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed gate count")
		}
	})
}
