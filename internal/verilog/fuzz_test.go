package verilog

import "testing"

// FuzzParse asserts the structural-Verilog parser never panics, and
// write→read is stable for whatever parses.
func FuzzParse(f *testing.F) {
	f.Add(c17v)
	f.Add("module m; endmodule")
	f.Add("module m (a, z); input a; output z; not (z, a); endmodule")
	f.Add("module m; nand #5 u (z, a, b); endmodule")
	f.Add("module /* c */ m; // x\nendmodule")
	f.Add("module m (")
	f.Add("module m (a, b, z); input a, b; output z; wire w; nand #10 g1 (w, a, b); nor #0 g2 (z, w, w); endmodule")
	f.Add("module m (a, z); input a; output z; buf #(1:2:3) g (z, a); endmodule")
	f.Add("module m (a, z); input a; output z; not #99999999999999999999 g (z, a); endmodule")
	f.Add("module m (a, z)\ninput a; output z; endmodule")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, Options{DefaultDelay: 3})
		if err != nil {
			return
		}
		out := String(c)
		c2, err := ParseString(out, Options{DefaultDelay: 3})
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput:\n%s\nemitted:\n%s", err, src, out)
		}
		if c2.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed gate count")
		}
	})
}
