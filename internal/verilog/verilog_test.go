package verilog

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/sim"
)

const c17v = `
// c17 in structural Verilog
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1, G2, G3, G6, G7;
  output G22, G23;
  wire G10, G11, G16, G19;

  nand #10 u0 (G10, G1, G3);
  nand #10 u1 (G11, G3, G6);
  nand #10 u2 (G16, G2, G11);
  nand #10 u3 (G19, G11, G7);
  nand #10 u4 (G22, G10, G16);
  nand #10 u5 (G23, G16, G19);
endmodule
`

func TestReadC17(t *testing.T) {
	c, err := ParseString(c17v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Gates != 6 || st.PIs != 5 || st.POs != 2 {
		t.Fatalf("shape: %+v", st)
	}
	for i := 0; i < c.NumGates(); i++ {
		g := c.Gate(circuit.GateID(i))
		if g.Type != circuit.NAND || g.Delay != 10 {
			t.Fatalf("gate %d: %s d=%d", i, g.Type, g.Delay)
		}
	}
	// Functional equivalence with the reference c17.
	ref := gen.C17(10)
	for bits := 0; bits < 32; bits++ {
		v := sim.Vector{bits & 1, (bits >> 1) & 1, (bits >> 2) & 1, (bits >> 3) & 1, (bits >> 4) & 1}
		// PI order differs only if declaration order differs; both use
		// G1,G2,G3,G6,G7.
		got, err := sim.Logic(c, v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.Logic(ref, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"G22", "G23"} {
			gi, _ := c.NetByName(name)
			wi, _ := ref.NetByName(name)
			if got[gi] != want[wi] {
				t.Fatalf("vector %05b differs on %s", bits, name)
			}
		}
	}
}

func TestDefaultDelayAndUnnamedInstance(t *testing.T) {
	src := `
module m (a, b, z);
  input a, b; output z;
  and (z, a, b); /* unnamed, no delay */
endmodule
`
	c, err := ParseString(src, Options{DefaultDelay: 7})
	if err != nil {
		t.Fatal(err)
	}
	z, _ := c.NetByName("z")
	if g := c.Gate(c.Net(z).Driver); g.Type != circuit.AND || g.Delay != 7 {
		t.Fatalf("gate: %s d=%d", g.Type, g.Delay)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := gen.CarrySkipAdder(6, 3, 10)
	text := String(orig)
	c, err := ParseString(text, Options{})
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if c.NumGates() != orig.NumGates() {
		t.Fatalf("gate count changed: %d vs %d", c.NumGates(), orig.NumGates())
	}
	// Same delays and same function on sampled vectors.
	k := len(orig.PrimaryInputs())
	if k != len(c.PrimaryInputs()) {
		t.Fatal("PI count changed")
	}
	// Map PI order by name.
	for trial := 0; trial < 64; trial++ {
		bits := trial * 2654435761 % (1 << k)
		vOrig := make(sim.Vector, k)
		byName := map[string]int{}
		for i, pi := range orig.PrimaryInputs() {
			vOrig[i] = (bits >> i) & 1
			byName[orig.Net(pi).Name] = vOrig[i]
		}
		vNew := make(sim.Vector, k)
		for i, pi := range c.PrimaryInputs() {
			vNew[i] = byName[c.Net(pi).Name]
		}
		a, err := sim.Run(orig, vOrig)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(c, vNew)
		if err != nil {
			t.Fatal(err)
		}
		for _, po := range orig.PrimaryOutputs() {
			name := orig.Net(po).Name
			pn, _ := c.NetByName(name)
			if a.Value[po] != b.Value[pn] || a.Settle[po] != b.Settle[pn] {
				t.Fatalf("round trip differs on %s (vector %d)", name, bits)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`module m; input a; flipflop f (q, a); endmodule`, "unsupported construct"},
		{`module m (a); input a;`, "missing endmodule"},
		{`module m; nand #x (z, a); endmodule`, "bad delay"},
		{`module m; input a,; endmodule`, "expected identifier"},
		{`module m; /* unterminated`, "unterminated block comment"},
		{`module m; nand (z); endmodule`, "at least one input"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src, Options{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("src %q: err %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestWriteDeclaresWires(t *testing.T) {
	text := String(gen.C17(10))
	if !strings.Contains(text, "wire G10;") && !strings.Contains(text, "wire G10") {
		t.Fatalf("internal nets must be declared:\n%s", text)
	}
	if !strings.Contains(text, "module c17") {
		t.Fatalf("module name lost:\n%s", text)
	}
}
