package sim

import (
	"testing"

	"repro/internal/waveform"
)

func TestRunPairBasic(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
n1 = BUFF(a)
z = NOT(n1)
`, 10)
	// Rising input: a goes 0→1 at t=0; z falls at exactly 20.
	r, err := RunPair(c, Vector{0}, Vector{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	z := id(t, c, "z")
	if r.Initial[z] != 1 || r.Final[z] != 0 {
		t.Fatalf("values wrong: %d→%d", r.Initial[z], r.Final[z])
	}
	if r.Last[z] != 20 {
		t.Fatalf("z last transition = %s, want 20", r.Last[z])
	}
	// Constant input: nothing moves.
	r, err = RunPair(c, Vector{1}, Vector{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Last[z] != waveform.NegInf {
		t.Fatalf("constant pair must not transition, got %s", r.Last[z])
	}
}

func TestRunPairGlitch(t *testing.T) {
	// Static-1 hazard: z = OR(a, NOT(a)) with unequal path delays
	// glitches on a falling a even though its final value is constant 1.
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
na = NOT(a)
z = OR(a, na)
`, 10)
	z := id(t, c, "z")
	// a: 1→0. z final 1. Window t∈(10,20]: a(t-10)=0 and na(t-10) uses
	// a(t-20)=1 → na=0 → z=0: a glitch ending at 20.
	r, err := RunPair(c, Vector{1}, Vector{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Final[z] != 1 {
		t.Fatal("z final must be 1")
	}
	if r.Last[z] != 20 {
		t.Fatalf("glitch must end at 20, got %s", r.Last[z])
	}
	// a: 0→1 — the OR sees the 1 first; no glitch below... the NOT side
	// turns off later but OR holds 1 throughout.
	r, err = RunPair(c, Vector{0}, Vector{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Last[z] != waveform.NegInf {
		t.Fatalf("rising a must not glitch z, got %s", r.Last[z])
	}
}

func TestRunPairErrors(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
z = BUFF(a)
`, 10)
	if _, err := RunPair(c, Vector{0, 1}, Vector{1}, 0); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := RunPair(c, Vector{2}, Vector{1}, 0); err == nil {
		t.Fatal("non-binary must error")
	}
}

func TestTransitionDelayExhaustive(t *testing.T) {
	c := mustBuild(t, andOr, 10)
	z := id(t, c, "z")
	d, p1, p2, err := TransitionDelayExhaustive(c, z)
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce the worst pair.
	r, err := RunPair(c, p1, p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Last[z] != d {
		t.Fatalf("worst pair does not reproduce: %s vs %s", r.Last[z], d)
	}
	// Transition delay ≤ floating delay, always.
	fl, _, err := FloatingDelayExhaustive(c, z)
	if err != nil {
		t.Fatal(err)
	}
	if d > fl {
		t.Fatalf("transition %s > floating %s", d, fl)
	}
}

func TestPairVersusFloatingOnRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := randomCircuit(t, seed+77, 4, 9)
		po := c.PrimaryOutputs()[0]
		tr, _, _, err := TransitionDelayExhaustive(c, po)
		if err != nil {
			t.Fatal(err)
		}
		fl, _, err := FloatingDelayExhaustive(c, po)
		if err != nil {
			t.Fatal(err)
		}
		if tr > fl {
			t.Fatalf("seed %d: transition %s exceeds floating %s", seed, tr, fl)
		}
	}
}
