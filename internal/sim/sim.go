// Package sim provides the floating-mode reference semantics that the
// constraint engine is verified against: per-vector settle-time
// simulation (the standard min-of-controlling / max-of-all recursion of
// Devadas et al.), zero-delay logic evaluation, and an exhaustive exact
// floating-delay oracle for small circuits used as a test oracle.
package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// Vector is a primary-input assignment, indexed parallel to
// Circuit.PrimaryInputs(). Values are 0 or 1.
type Vector []int

// String renders the vector as a bit string in PI order.
func (v Vector) String() string {
	b := make([]byte, len(v))
	for i, x := range v {
		b[i] = byte('0' + x)
	}
	return string(b)
}

// Result holds a per-vector floating-mode simulation.
type Result struct {
	c *circuit.Circuit
	// Value is the final Boolean value of every net.
	Value []int
	// Settle is the floating-mode last-transition bound of every net:
	// the latest time at which the net may still differ from Value
	// under unknown initial state (the net is stable for all t >
	// Settle). This matches the paper's convention where a primary
	// input stable "after time 0" may differ from its final value at
	// t = 0 exactly, so Settle of a primary input is 0.
	Settle []waveform.Time
}

// Run simulates the vector in floating mode. The vector is applied at
// time 0 with the entire circuit in an unknown initial state; the
// last-transition recursion is
//
//	L(g) = d + min( min over inputs with controlling final value L,
//	                max over all inputs L )
//
// because the output of a gate locks d after any input locks at a
// controlling value, and at the latest d after all inputs lock.
func Run(c *circuit.Circuit, v Vector) (*Result, error) {
	pis := c.PrimaryInputs()
	if len(v) != len(pis) {
		return nil, fmt.Errorf("sim: vector has %d bits for %d primary inputs", len(v), len(pis))
	}
	r := &Result{
		c:      c,
		Value:  make([]int, c.NumNets()),
		Settle: make([]waveform.Time, c.NumNets()),
	}
	for i := range r.Value {
		r.Value[i] = -1
	}
	for i, pi := range pis {
		if v[i] != 0 && v[i] != 1 {
			return nil, fmt.Errorf("sim: vector bit %d is %d, want 0 or 1", i, v[i])
		}
		r.Value[pi] = v[i]
		r.Settle[pi] = 0
	}
	in := make([]int, 0, 16)
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		in = in[:0]
		maxAll := waveform.Time(0)
		minCtrl := waveform.PosInf
		ctrl, hasCtrl := g.Type.HasControlling()
		for _, x := range g.Inputs {
			in = append(in, r.Value[x])
			st := r.Settle[x]
			if st > maxAll {
				maxAll = st
			}
			if hasCtrl && r.Value[x] == ctrl && st < minCtrl {
				minCtrl = st
			}
		}
		r.Value[g.Output] = g.Type.Eval(in)
		st := maxAll
		if minCtrl < st {
			st = minCtrl
		}
		r.Settle[g.Output] = st.Add(waveform.Time(g.Delay))
	}
	return r, nil
}

// OutputSettle returns the settle time of the given net (usually a
// primary output): the floating-mode delay of the net for this vector.
// A transition at or after δ is possible iff OutputSettle ≥ δ.
func (r *Result) OutputSettle(n circuit.NetID) waveform.Time { return r.Settle[n] }

// Violates reports whether this vector witnesses the timing check
// (c, n, δ), i.e. whether the net can still transition at or after δ.
func (r *Result) Violates(n circuit.NetID, delta waveform.Time) bool {
	return r.Settle[n] >= delta
}

// Logic evaluates the zero-delay final value of every net under the
// vector (a cheap wrapper when timing is irrelevant).
func Logic(c *circuit.Circuit, v Vector) ([]int, error) {
	r, err := Run(c, v)
	if err != nil {
		return nil, err
	}
	return r.Value, nil
}

// FloatingDelayExhaustive computes the exact floating-mode delay of net
// n — max over all 2^k input vectors of the settle time — together with
// a witnessing vector. It is exponential and intended as a test oracle
// for circuits with at most ~20 inputs.
func FloatingDelayExhaustive(c *circuit.Circuit, n circuit.NetID) (waveform.Time, Vector, error) {
	k := len(c.PrimaryInputs())
	if k > 24 {
		return 0, nil, fmt.Errorf("sim: %d inputs is too many for exhaustive search", k)
	}
	best := waveform.NegInf
	var bestV Vector
	v := make(Vector, k)
	for bits := 0; bits < 1<<k; bits++ {
		for i := 0; i < k; i++ {
			v[i] = (bits >> i) & 1
		}
		r, err := Run(c, v)
		if err != nil {
			return 0, nil, err
		}
		if r.Settle[n] > best {
			best = r.Settle[n]
			bestV = append(Vector(nil), v...)
		}
	}
	return best, bestV, nil
}

// CircuitFloatingDelayExhaustive computes the exact floating-mode delay
// of the whole circuit: the maximum over outputs and vectors of the
// settle time.
func CircuitFloatingDelayExhaustive(c *circuit.Circuit) (waveform.Time, error) {
	k := len(c.PrimaryInputs())
	if k > 24 {
		return 0, fmt.Errorf("sim: %d inputs is too many for exhaustive search", k)
	}
	best := waveform.NegInf
	v := make(Vector, k)
	for bits := 0; bits < 1<<k; bits++ {
		for i := 0; i < k; i++ {
			v[i] = (bits >> i) & 1
		}
		r, err := Run(c, v)
		if err != nil {
			return 0, err
		}
		for _, po := range c.PrimaryOutputs() {
			if r.Settle[po] > best {
				best = r.Settle[po]
			}
		}
	}
	return best, nil
}
