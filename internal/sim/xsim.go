package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// Three-valued logic constants for the concrete unknown-state
// simulator.
const (
	L0 = 0 // stable 0
	L1 = 1 // stable 1
	LX = 2 // unknown
)

// eval3 computes the pessimistic three-valued gate function.
func eval3(t circuit.GateType, in []uint8) uint8 {
	switch t {
	case circuit.AND, circuit.NAND:
		v := uint8(L1)
		for _, x := range in {
			if x == L0 {
				v = L0
				break
			}
			if x == LX {
				v = LX
			}
		}
		if v != LX && t == circuit.NAND {
			v ^= 1
		}
		return v
	case circuit.OR, circuit.NOR:
		v := uint8(L0)
		for _, x := range in {
			if x == L1 {
				v = L1
				break
			}
			if x == LX {
				v = LX
			}
		}
		if v != LX && t == circuit.NOR {
			v ^= 1
		}
		return v
	case circuit.NOT:
		if in[0] == LX {
			return LX
		}
		return in[0] ^ 1
	case circuit.BUFFER, circuit.DELAY:
		return in[0]
	case circuit.XOR, circuit.XNOR:
		v := uint8(0)
		for _, x := range in {
			if x == LX {
				return LX
			}
			v ^= x
		}
		if t == circuit.XNOR {
			v ^= 1
		}
		return v
	}
	panic(fmt.Sprintf("sim: eval3 of unknown gate type %d", uint8(t)))
}

// XResult is a concrete three-valued time-unrolled simulation: the full
// waveform of every net over the window [0, Horizon], under an unknown
// (X) initial state and the vector applied at time 0. It is the
// executable definition of the floating mode and serves as the oracle
// against which both the settle recursion and the constraint engine are
// validated.
type XResult struct {
	Horizon waveform.Time
	// Wave[n][t] is the three-valued value of net n at time t,
	// 0 ≤ t ≤ Horizon. For t < 0 every net is X by definition.
	Wave [][]uint8
	// Final is the settled Boolean value of every net.
	Final []int
}

// RunX performs the unrolled three-valued simulation up to the given
// horizon (pass at least the topological delay plus one). Primary
// inputs hold X through t = 0 and their vector value from t = 1 on,
// matching the paper's floating-mode input domain (0|−∞..0, 1|−∞..0):
// an input may differ from its final value at t = 0 exactly.
func RunX(c *circuit.Circuit, v Vector, horizon waveform.Time) (*XResult, error) {
	pis := c.PrimaryInputs()
	if len(v) != len(pis) {
		return nil, fmt.Errorf("sim: vector has %d bits for %d primary inputs", len(v), len(pis))
	}
	if horizon < 0 || horizon > 1<<20 {
		return nil, fmt.Errorf("sim: horizon %d out of range", horizon)
	}
	H := int(horizon)
	r := &XResult{Horizon: horizon, Wave: make([][]uint8, c.NumNets()), Final: make([]int, c.NumNets())}
	for i := range r.Wave {
		w := make([]uint8, H+1)
		for t := range w {
			w[t] = LX
		}
		r.Wave[i] = w
		r.Final[i] = -1
	}
	for i, pi := range pis {
		for t := 1; t <= H; t++ {
			r.Wave[pi][t] = uint8(v[i])
		}
		r.Final[pi] = v[i]
	}
	in3 := make([]uint8, 0, 16)
	inb := make([]int, 0, 16)
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		d := int(g.Delay)
		for t := 0; t <= H; t++ {
			in3 = in3[:0]
			src := t - d
			for _, x := range g.Inputs {
				if src < 0 {
					in3 = append(in3, LX)
				} else {
					in3 = append(in3, r.Wave[x][src])
				}
			}
			r.Wave[g.Output][t] = eval3(g.Type, in3)
		}
		inb = inb[:0]
		for _, x := range g.Inputs {
			inb = append(inb, r.Final[x])
		}
		r.Final[g.Output] = g.Type.Eval(inb)
	}
	return r, nil
}

// LastDiff returns the latest time in [0, Horizon] at which net n's
// three-valued waveform differs from its final value (X counts as
// differing), or NegInf if it never does. When the horizon is at least
// the topological delay this equals the floating-mode last-transition
// bound computed by Run.
func (r *XResult) LastDiff(n circuit.NetID) waveform.Time {
	w := r.Wave[n]
	fin := uint8(r.Final[n])
	for t := len(w) - 1; t >= 0; t-- {
		if w[t] != fin {
			return waveform.Time(t)
		}
	}
	return waveform.NegInf
}
