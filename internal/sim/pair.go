package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// PairResult is a concrete two-vector (transition-mode) timing
// simulation: vector v1 applied since forever, v2 applied at time 0.
// Unlike floating mode there is no unknown state — every net has a
// fully determined binary waveform, so last-transition times are exact.
type PairResult struct {
	// Initial and Final hold each net's settled value under v1 and v2.
	Initial, Final []int
	// Last is the exact last time each net differs from Final
	// (NegInf when the net never changes).
	Last []waveform.Time
}

// RunPair simulates the two-vector pair exactly under transport-delay
// semantics by unrolling time over [0, horizon]; the horizon defaults
// to the topological delay when 0 is passed.
func RunPair(c *circuit.Circuit, v1, v2 Vector, horizon waveform.Time) (*PairResult, error) {
	pis := c.PrimaryInputs()
	if len(v1) != len(pis) || len(v2) != len(pis) {
		return nil, fmt.Errorf("sim: pair vectors have %d/%d bits for %d primary inputs",
			len(v1), len(v2), len(pis))
	}
	if horizon <= 0 {
		horizon = topoDelay(c)
	}
	if horizon > 1<<20 {
		return nil, fmt.Errorf("sim: horizon %d out of range", horizon)
	}
	H := int(horizon) + 1
	r := &PairResult{
		Initial: make([]int, c.NumNets()),
		Final:   make([]int, c.NumNets()),
		Last:    make([]waveform.Time, c.NumNets()),
	}
	// wave[n][t] for t in [0..H]; before 0 every net holds its v1
	// steady-state value.
	wave := make([][]uint8, c.NumNets())
	for i := range wave {
		wave[i] = make([]uint8, H+1)
		r.Initial[i] = -1
		r.Final[i] = -1
	}
	for i, pi := range pis {
		if v1[i]>>1 != 0 || v2[i]>>1 != 0 {
			return nil, fmt.Errorf("sim: non-binary pair bit")
		}
		r.Initial[pi] = v1[i]
		r.Final[pi] = v2[i]
		// The input holds v1 up to and including t = 0 and v2 after —
		// consistent with the floating-mode convention that an input
		// may still differ from its final value at t = 0 exactly.
		wave[pi][0] = uint8(v1[i])
		for t := 1; t <= H; t++ {
			wave[pi][t] = uint8(v2[i])
		}
	}
	in1 := make([]int, 0, 16)
	in2 := make([]int, 0, 16)
	in3 := make([]uint8, 0, 16)
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		in1 = in1[:0]
		in2 = in2[:0]
		for _, x := range g.Inputs {
			in1 = append(in1, r.Initial[x])
			in2 = append(in2, r.Final[x])
		}
		r.Initial[g.Output] = g.Type.Eval(in1)
		r.Final[g.Output] = g.Type.Eval(in2)
		d := int(g.Delay)
		for t := 0; t <= H; t++ {
			in3 = in3[:0]
			src := t - d
			for _, x := range g.Inputs {
				if src < 0 {
					in3 = append(in3, uint8(r.Initial[x]))
				} else {
					in3 = append(in3, wave[x][src])
				}
			}
			iv := make([]int, len(in3))
			for j, b := range in3 {
				iv[j] = int(b)
			}
			wave[g.Output][t] = uint8(g.Type.Eval(iv))
		}
	}
	for n := 0; n < c.NumNets(); n++ {
		r.Last[n] = waveform.NegInf
		fin := uint8(r.Final[n])
		for t := H; t >= 0; t-- {
			if wave[n][t] != fin {
				r.Last[n] = waveform.Time(t)
				break
			}
		}
	}
	return r, nil
}

func topoDelay(c *circuit.Circuit) waveform.Time {
	arr := make([]waveform.Time, c.NumNets())
	worst := waveform.Time(0)
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		t := waveform.Time(0)
		for _, in := range g.Inputs {
			if arr[in] > t {
				t = arr[in]
			}
		}
		arr[g.Output] = t.Add(waveform.Time(g.Delay))
		if arr[g.Output] > worst {
			worst = arr[g.Output]
		}
	}
	return worst
}

// TransitionDelayExhaustive computes the exact transition-mode delay of
// net n: the maximum over all 4^k vector pairs of the last-transition
// time. Exponential; a test oracle for small circuits.
func TransitionDelayExhaustive(c *circuit.Circuit, n circuit.NetID) (waveform.Time, Vector, Vector, error) {
	k := len(c.PrimaryInputs())
	if k > 12 {
		return 0, nil, nil, fmt.Errorf("sim: %d inputs is too many for exhaustive pair search", k)
	}
	horizon := topoDelay(c)
	best := waveform.NegInf
	var b1, b2 Vector
	v1 := make(Vector, k)
	v2 := make(Vector, k)
	for a := 0; a < 1<<k; a++ {
		for b := 0; b < 1<<k; b++ {
			for i := 0; i < k; i++ {
				v1[i] = (a >> i) & 1
				v2[i] = (b >> i) & 1
			}
			r, err := RunPair(c, v1, v2, horizon)
			if err != nil {
				return 0, nil, nil, err
			}
			if r.Last[n] > best {
				best = r.Last[n]
				b1 = append(Vector(nil), v1...)
				b2 = append(Vector(nil), v2...)
			}
		}
	}
	return best, b1, b2, nil
}
