package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

func mustBuild(t testing.TB, src string, d int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: d})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const andOr = `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
x = AND(a, b)
z = OR(x, c)
`

func id(t testing.TB, c *circuit.Circuit, name string) circuit.NetID {
	t.Helper()
	n, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return n
}

func TestRunValues(t *testing.T) {
	c := mustBuild(t, andOr, 10)
	r, err := Run(c, Vector{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value[id(t, c, "x")] != 1 || r.Value[id(t, c, "z")] != 1 {
		t.Fatal("values wrong")
	}
	r, _ = Run(c, Vector{0, 1, 0})
	if r.Value[id(t, c, "z")] != 0 {
		t.Fatal("value wrong")
	}
}

func TestRunSettleControlling(t *testing.T) {
	c := mustBuild(t, andOr, 10)
	// a=1,b=1,c=0: x settles via max rule at 10; z final 1 with no
	// controlling-1 input stable... c=0 is non-controlling for OR, x=1
	// IS controlling for OR: z locks once x locks: 10+10=20.
	r, _ := Run(c, Vector{1, 1, 0})
	if got := r.Settle[id(t, c, "x")]; got != 10 {
		t.Fatalf("x settle = %s", got)
	}
	if got := r.Settle[id(t, c, "z")]; got != 20 {
		t.Fatalf("z settle = %s", got)
	}
	// a=0: x final 0 locks at 10 (a controls); z final 0: no controlling
	// input, max rule: 10+10=20.
	r, _ = Run(c, Vector{0, 1, 0})
	if got := r.Settle[id(t, c, "x")]; got != 10 {
		t.Fatalf("x settle = %s", got)
	}
	if got := r.Settle[id(t, c, "z")]; got != 20 {
		t.Fatalf("z settle = %s", got)
	}
}

func TestRunControllingShortCircuit(t *testing.T) {
	// A controlling-final side input must cap the settle time of a long
	// path: z = AND(slowpath, b) with b=0 locks z early.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
n1 = BUFF(a)
n2 = BUFF(n1)
n3 = BUFF(n2)
z = AND(n3, b)
`
	c := mustBuild(t, src, 10)
	r, _ := Run(c, Vector{1, 0})
	// b=0 controls the AND: z locks at 0+10, despite n3 locking at 30.
	if got := r.Settle[id(t, c, "z")]; got != 10 {
		t.Fatalf("z settle = %s, want 10", got)
	}
	r, _ = Run(c, Vector{1, 1})
	if got := r.Settle[id(t, c, "z")]; got != 40 {
		t.Fatalf("z settle = %s, want 40", got)
	}
}

func TestRunErrors(t *testing.T) {
	c := mustBuild(t, andOr, 10)
	if _, err := Run(c, Vector{1, 1}); err == nil {
		t.Fatal("short vector must error")
	}
	if _, err := Run(c, Vector{1, 2, 0}); err == nil {
		t.Fatal("non-binary bit must error")
	}
}

func TestViolates(t *testing.T) {
	c := mustBuild(t, andOr, 10)
	r, _ := Run(c, Vector{1, 1, 0})
	z := id(t, c, "z")
	if !r.Violates(z, 20) {
		t.Fatal("settle 20 must violate δ=20")
	}
	if r.Violates(z, 21) {
		t.Fatal("settle 20 must not violate δ=21")
	}
}

func TestVectorString(t *testing.T) {
	if (Vector{1, 0, 1}).String() != "101" {
		t.Fatal("vector string wrong")
	}
}

func TestLogic(t *testing.T) {
	c := mustBuild(t, andOr, 10)
	vals, err := Logic(c, Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if vals[id(t, c, "z")] != 1 {
		t.Fatal("logic value wrong")
	}
}

func TestFloatingDelayExhaustive(t *testing.T) {
	// The classic false-path pattern: z = MUX-ish structure where the
	// long path cannot be sensitised.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
n1 = BUFF(a)
n2 = BUFF(n1)
n3 = AND(n2, b)
nb = NOT(b)
n4 = AND(a, nb)
z = OR(n3, n4)
`
	c := mustBuild(t, src, 10)
	z := id(t, c, "z")
	d, v, err := FloatingDelayExhaustive(c, z)
	if err != nil {
		t.Fatal(err)
	}
	// Longest topological path: a→n1→n2→n3→z = 40.
	// b=1: n4 path dead but n3 path live: settle(n3)=min? b ctrl-final
	// when b=0. With a=1,b=1: n3 = AND(n2,b): final 1: max rule:
	// max(30,0)+10=40 → z=OR: n3 ctrl-final(1): min(40, ...)→ 40+10=50?
	// z's delay adds 10: z = 50 with topological 50. So the check is
	// simply that the oracle agrees with per-vector Run.
	r, _ := Run(c, v)
	if r.Settle[z] != d {
		t.Fatalf("oracle/vector mismatch: %s vs %s", r.Settle[z], d)
	}
	// And d must be the max over all vectors.
	k := len(c.PrimaryInputs())
	for bits := 0; bits < 1<<k; bits++ {
		vv := make(Vector, k)
		for i := range vv {
			vv[i] = (bits >> i) & 1
		}
		rr, _ := Run(c, vv)
		if rr.Settle[z] > d {
			t.Fatalf("vector %s beats the oracle", vv)
		}
	}
}

func TestCircuitFloatingDelayExhaustive(t *testing.T) {
	c := mustBuild(t, andOr, 10)
	d, err := CircuitFloatingDelayExhaustive(c)
	if err != nil {
		t.Fatal(err)
	}
	if d != 20 {
		t.Fatalf("circuit floating delay = %s, want 20", d)
	}
}

// randomCircuit builds a seeded random DAG netlist for cross-validation
// tests.
func randomCircuit(t testing.TB, seed int64, nPI, nGates int) *circuit.Circuit {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder("rand")
	var nets []string
	for i := 0; i < nPI; i++ {
		n := string(rune('a' + i))
		b.Input(n)
		nets = append(nets, n)
	}
	types := []circuit.GateType{circuit.AND, circuit.NAND, circuit.OR, circuit.NOR, circuit.NOT, circuit.BUFFER, circuit.XOR, circuit.XNOR}
	for i := 0; i < nGates; i++ {
		gt := types[r.Intn(len(types))]
		name := "g" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		nin := 1
		if !gt.Unate() {
			nin = 2 + r.Intn(2)
		}
		ins := make([]string, nin)
		for j := range ins {
			ins[j] = nets[r.Intn(len(nets))]
		}
		b.Gate(gt, int64(1+r.Intn(4)), name, ins...)
		nets = append(nets, name)
	}
	b.Output(nets[len(nets)-1])
	b.Output(nets[len(nets)-2])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunMatchesXSim(t *testing.T) {
	// Property: the settle recursion equals the last differing time of
	// the concrete three-valued unrolled simulation, for every net and
	// every vector, on many random circuits.
	for seed := int64(0); seed < 30; seed++ {
		c := randomCircuit(t, seed, 4, 12)
		horizon := waveform.Time(0)
		for i := 0; i < c.NumGates(); i++ {
			horizon = horizon.Add(waveform.Time(c.Gate(circuit.GateID(i)).Delay))
		}
		for bits := 0; bits < 16; bits++ {
			v := Vector{bits & 1, (bits >> 1) & 1, (bits >> 2) & 1, (bits >> 3) & 1}
			r, err := Run(c, v)
			if err != nil {
				t.Fatal(err)
			}
			x, err := RunX(c, v, horizon.Add(1))
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n < c.NumNets(); n++ {
				nid := circuit.NetID(n)
				if r.Value[n] != x.Final[n] {
					t.Fatalf("seed %d vector %s: final value of %s differs", seed, v, c.Net(nid).Name)
				}
				want := x.LastDiff(nid)
				if want == waveform.NegInf {
					// The recursion never reports -inf (it reports the
					// lock time); nets identical-from-t=0 can only be
					// PIs... which are X at t=0, so this cannot happen.
					t.Fatalf("seed %d: net %s never differs, unexpected", seed, c.Net(nid).Name)
				}
				if r.Settle[n] != want {
					t.Fatalf("seed %d vector %s net %s: recursion %s, x-sim %s",
						seed, v, c.Net(nid).Name, r.Settle[n], want)
				}
			}
		}
	}
}

func TestRunXInputConvention(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
z = BUFF(a)
`
	c := mustBuild(t, src, 5)
	x, err := RunX(c, Vector{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	a := id(t, c, "a")
	z := id(t, c, "z")
	if x.Wave[a][0] != LX || x.Wave[a][1] != L1 {
		t.Fatal("PI must be X at t=0 and settled at t=1")
	}
	if x.LastDiff(a) != 0 {
		t.Fatal("PI last diff must be 0")
	}
	if x.LastDiff(z) != 5 {
		t.Fatalf("buffer last diff = %s, want 5", x.LastDiff(z))
	}
}

func TestEval3(t *testing.T) {
	type tc struct {
		g    circuit.GateType
		in   []uint8
		want uint8
	}
	cases := []tc{
		{circuit.AND, []uint8{L0, LX}, L0},
		{circuit.AND, []uint8{L1, LX}, LX},
		{circuit.NAND, []uint8{L0, LX}, L1},
		{circuit.OR, []uint8{L1, LX}, L1},
		{circuit.OR, []uint8{L0, LX}, LX},
		{circuit.NOR, []uint8{L1, LX}, L0},
		{circuit.NOT, []uint8{LX}, LX},
		{circuit.NOT, []uint8{L0}, L1},
		{circuit.XOR, []uint8{L1, LX}, LX},
		{circuit.XOR, []uint8{L1, L1}, L0},
		{circuit.XNOR, []uint8{L1, L0}, L0},
		{circuit.BUFFER, []uint8{LX}, LX},
	}
	for _, c := range cases {
		if got := eval3(c.g, c.in); got != c.want {
			t.Errorf("eval3(%s, %v) = %d, want %d", c.g, c.in, got, c.want)
		}
	}
}
