package server_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/delay"
	"repro/internal/obs"
	"repro/internal/server"
)

// tracedCollector extends the exactly-once stream collector with the
// tracing surfaces under test: per-check trace/span ids and the
// in-band worker span summaries a traced stream carries.
type tracedCollector struct {
	*streamCollector

	mu     sync.Mutex
	checks []server.CheckResult
	spans  []api.SpanSummary
}

func (tc *tracedCollector) fn(ev server.Event) error {
	switch ev.Type {
	case "check":
		tc.mu.Lock()
		tc.checks = append(tc.checks, *ev.Check)
		tc.mu.Unlock()
	case "spans":
		tc.mu.Lock()
		tc.spans = append(tc.spans, *ev.Spans)
		tc.mu.Unlock()
		return nil // streamCollector does not know this kind
	}
	return tc.streamCollector.fn(ev)
}

// TestClusterTraceTimeline is the distributed-tracing acceptance test
// (run under -race in CI): a traced δ-sweep over three workers loses
// one worker mid-batch (requeue path) while another straggles behind a
// per-line delay (hedge path), and the batch must still produce
//
//   - exactly one terminal result per check, all carrying the client's
//     trace id, with verdicts identical to an unharmed daemon;
//   - in-band worker span summaries with pipeline-stage sub-spans;
//   - one Perfetto-loadable cluster timeline file containing
//     coordinator, worker, and merge spans under that trace id,
//     including the requeue and hedge dispatches;
//   - /debug/checks flight records on the coordinator and a surviving
//     worker, resolvable by the same trace id.
func TestClusterTraceTimeline(t *testing.T) {
	ctx := context.Background()
	e := suiteCircuit(t, "c880")
	bench := circuit.BenchString(e.Circuit)
	local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: e.Name})
	if err != nil {
		t.Fatal(err)
	}
	top := int64(delay.New(local).Topological())
	deltas := []int64{top + 1}
	wantChecks := len(local.PrimaryOutputs())

	workers := make([]*clusterWorker, 3)
	proxies := make([]*faultProxy, 3)
	addrs := make([]string, 3)
	for i := range workers {
		workers[i] = startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
		defer workers[i].stop()
		proxies[i] = newFaultProxy(t, workers[i].addr, faultSpec{})
		addrs[i] = proxies[i].addr
	}
	traceDir := t.TempDir()
	// HedgeAfter is chosen well after the victim's parked dispatch
	// fails (requeue first), while the straggler — at 200ms per line —
	// is still mid-stream (hedge second).
	co := server.NewCoordinator(server.CoordConfig{
		Workers: addrs, QueueDepth: 4,
		HedgeAfter: 500 * time.Millisecond, ProbeInterval: -1,
		TraceDir: traceDir, FlightLast: 128, FlightSlowest: 8,
	})
	cts := httptest.NewServer(co)
	defer cts.Close()
	defer func() { _ = co.Shutdown(context.Background()) }()
	coordCl := client.New(cts.URL)

	hash, err := coordCl.Upload(ctx, bench, client.UploadOptions{Name: e.Name})
	if err != nil {
		t.Fatal(err)
	}

	// The victim (killed) is the worker owning the most sinks; the
	// straggler (hedged) owns the most among the survivors. Both shards
	// are provably non-empty, so each fault demonstrably bites.
	router := server.NewShardRouter(addrs)
	owned := map[string]int{}
	for _, po := range local.PrimaryOutputs() {
		w, _ := router.Assign(server.ShardKey{Hash: string(hash), Sink: local.Net(po).Name})
		owned[w]++
	}
	victim, slow := 0, -1
	for i, a := range addrs {
		if owned[a] > owned[addrs[victim]] {
			victim = i
		}
	}
	for i, a := range addrs {
		if i != victim && (slow < 0 || owned[a] > owned[addrs[slow]]) {
			slow = i
		}
	}
	if owned[addrs[victim]] == 0 || owned[addrs[slow]] == 0 {
		t.Fatalf("degenerate rendezvous split %v: victim or straggler shard empty", owned)
	}
	// Park the victim's shard until after the kill; trickle the
	// straggler's lines so it is still streaming at the hedge pass.
	proxies[victim].setSpec(faultSpec{holdCheckRequest: 250 * time.Millisecond})
	proxies[slow].setSpec(faultSpec{delayPerLine: 200 * time.Millisecond})

	traceID := api.NewTraceID()
	tc := &tracedCollector{streamCollector: newStreamCollector(2)}
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- coordCl.StreamByHash(ctx, hash, server.Request{
			Sweep: &server.SweepSpec{Deltas: deltas},
			Trace: &api.TraceContext{TraceID: traceID, Tenant: "acme"},
		}, tc.fn)
	}()
	// Kill once the batch is demonstrably in flight — before the
	// victim's parked shard submission reaches it.
	select {
	case <-tc.trigger:
	case err := <-streamErr:
		t.Fatalf("stream ended before the kill could interrupt it: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	workers[victim].kill()
	t.Logf("killed worker %d (%d sinks), straggler %d (%d sinks)",
		victim, owned[addrs[victim]], slow, owned[addrs[slow]])

	select {
	case err := <-streamErr:
		if err != nil {
			t.Fatalf("stream failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("stream did not finish")
	}
	finals, done := tc.snapshot()
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if len(finals) != wantChecks {
		t.Fatalf("answered %d checks, want %d", len(finals), wantChecks)
	}

	// Verdicts still match an unharmed single daemon exactly.
	ref := startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
	defer ref.stop()
	refResp, err := client.New(ref.addr).Check(ctx, server.Request{
		Netlist: bench, Name: e.Name, Sweep: &server.SweepSpec{Deltas: deltas},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := sweepFinals(refResp); !reflect.DeepEqual(finals, want) {
		t.Errorf("traced cluster verdicts diverge from single daemon:\n got %v\nwant %v", finals, want)
	}

	// Every terminal result echoes the client's trace id and carries a
	// minted span id.
	tc.mu.Lock()
	checks, summaries := tc.checks, tc.spans
	tc.mu.Unlock()
	for _, res := range checks {
		if res.TraceID != traceID {
			t.Errorf("check %q carries trace %q, want the client's %q", res.Sink, res.TraceID, traceID)
		}
		if !api.ValidSpanID(res.SpanID) {
			t.Errorf("check %q has no valid span id: %q", res.Sink, res.SpanID)
		}
	}
	// In-band worker span summaries arrived, under the same trace, and
	// real checks carry pipeline-stage sub-spans.
	if len(summaries) == 0 {
		t.Fatal("traced stream forwarded no worker span summaries")
	}
	staged := 0
	for _, sum := range summaries {
		if sum.TraceID != traceID {
			t.Errorf("span summary for %q carries trace %q, want %q", sum.Sink, sum.TraceID, traceID)
		}
		if sum.Worker == "" || !api.ValidSpanID(sum.SpanID) {
			t.Errorf("span summary incomplete: %+v", sum)
		}
		if len(sum.Spans) > 0 {
			staged++
		}
	}
	if staged == 0 {
		t.Error("no span summary carries stage sub-spans")
	}

	// Both fault paths fired and were accounted.
	m, err := coordCl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["requeuedChecks"] == 0 {
		t.Errorf("kill requeued no checks: %+v", m.Server)
	}
	if m.Server["hedgedChecks"] == 0 {
		t.Errorf("straggler was never hedged: %+v", m.Server)
	}
	if m.Server["checkFailures"] != 0 {
		t.Errorf("%d checks exhausted their attempts", m.Server["checkFailures"])
	}
	promText, err := coordCl.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lttad_coord_requeues_total{reason="`,
		`lttad_coord_hedges_total{attempt="`,
	} {
		if !strings.Contains(string(promText), want) {
			t.Errorf("coordinator exposition missing labeled series %s", want)
		}
	}

	assertClusterTraceFile(t, filepath.Join(traceDir, "batch-1.trace.json"), traceID, wantChecks)

	// The coordinator's flight recorder resolves the same trace id.
	coBody := debugChecks(t, cts.URL)
	if int(coBody.Recorded) != wantChecks {
		t.Errorf("coordinator flight recorded %d checks, want %d", coBody.Recorded, wantChecks)
	}
	for _, rec := range coBody.Last {
		if rec.TraceID != traceID || rec.Tenant != "acme" || rec.Worker == "" {
			t.Errorf("coordinator flight record incomplete: %+v", rec)
			break
		}
	}
	if len(coBody.Slowest) == 0 {
		t.Error("coordinator flight recorder has no slowest records")
	} else if len(coBody.Slowest[0].StageUs) == 0 {
		t.Errorf("coordinator's slowest record has no stage durations: %+v", coBody.Slowest[0])
	}
	if len(coBody.LatencyExemplars) == 0 {
		t.Error("coordinator latency histogram has no exemplars")
	}

	// A surviving worker's own flight recorder holds its shard's checks
	// under the same trace id, with stage durations.
	wBody := debugChecks(t, workers[slow].addr)
	if wBody.Recorded == 0 || len(wBody.Slowest) == 0 {
		t.Fatalf("straggler worker recorded no flights: %+v", wBody.FlightSnapshot)
	}
	for _, rec := range wBody.Last {
		if rec.TraceID != traceID || rec.Tenant != "acme" {
			t.Errorf("worker flight record lost trace context: %+v", rec)
			break
		}
	}
	if len(wBody.Slowest[0].StageUs) == 0 {
		t.Errorf("worker's slowest record has no stage durations: %+v", wBody.Slowest[0])
	}
}

// assertClusterTraceFile validates the coordinator's batch timeline:
// it must load (obs.ValidateTrace), and it must contain — all under
// the client's trace id — the coordinator's root and dispatch spans
// (primary, requeue, and hedge), at least one worker check span, and
// exactly one merge span per terminal result.
func assertClusterTraceFile(t *testing.T, path, traceID string, wantChecks int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("cluster trace not written: %v", err)
	}
	defer f.Close()
	if _, err := obs.ValidateTrace(f); err != nil {
		t.Fatalf("cluster trace does not validate: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("decoding cluster trace: %v", err)
	}
	groups := map[int]string{} // pid → process name
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			groups[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	spansPer := map[string]int{} // group name → spans under traceID
	kinds := map[string]bool{}   // dispatch kinds seen
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if id, _ := ev.Args["trace_id"].(string); id != traceID {
			continue
		}
		spansPer[groups[ev.Pid]]++
		if strings.HasPrefix(ev.Name, "dispatch ") {
			open := strings.LastIndexByte(ev.Name, '(')
			if open >= 0 {
				kinds[strings.TrimSuffix(ev.Name[open+1:], ")")] = true
			}
		}
	}
	if spansPer["coordinator"] == 0 {
		t.Errorf("timeline has no coordinator span under trace %s (groups: %v)", traceID, spansPer)
	}
	workerSpans := 0
	for g, n := range spansPer {
		if strings.HasPrefix(g, "worker ") {
			workerSpans += n
		}
	}
	if workerSpans == 0 {
		t.Errorf("timeline has no worker span under trace %s (groups: %v)", traceID, spansPer)
	}
	if got := spansPer["merge"]; got != wantChecks {
		t.Errorf("timeline has %d merge spans, want one per terminal result (%d)", got, wantChecks)
	}
	for _, kind := range []string{"primary", "requeue", "hedge"} {
		if !kinds[kind] {
			t.Errorf("timeline has no %q dispatch span (saw %v)", kind, kinds)
		}
	}
	t.Logf("cluster timeline: %d events, spans per group %v", len(tf.TraceEvents), spansPer)
}

// TestClusterTraceFileScrape validates a batch timeline written by a
// live coordinator binary — CI starts a three-worker cluster with
// -trace-dir, runs one batch, and points COORD_TRACE_FILE at the
// resulting batch-<id>.trace.json. Skips when unset.
func TestClusterTraceFileScrape(t *testing.T) {
	path := os.Getenv("COORD_TRACE_FILE")
	if path == "" {
		t.Skip("COORD_TRACE_FILE not set (CI-only scrape validation)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := obs.ValidateTrace(f)
	if err != nil {
		t.Fatalf("cluster trace does not validate: %v", err)
	}
	if n == 0 {
		t.Fatal("cluster trace is empty")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("decoding cluster trace: %v", err)
	}
	groups := map[int]string{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			groups[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	spansPer := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spansPer[groups[ev.Pid]]++
		}
	}
	if spansPer["coordinator"] == 0 {
		t.Errorf("scraped timeline has no coordinator spans (groups: %v)", spansPer)
	}
	workerSpans := 0
	for g, n := range spansPer {
		if strings.HasPrefix(g, "worker ") {
			workerSpans += n
		}
	}
	if workerSpans == 0 {
		t.Errorf("scraped timeline has no worker spans (groups: %v)", spansPer)
	}
	if spansPer["merge"] == 0 {
		t.Errorf("scraped timeline has no merge spans (groups: %v)", spansPer)
	}
}

// TestDebugChecksFileScrape validates /debug/checks bodies curled from
// a live cluster: COORD_DEBUG_FILE is the coordinator's (strict — it
// merged the whole CI batch), WORKER_DEBUG_FILE one worker's (that
// worker may have owned any share of the shard, including none). Skips
// when neither is set.
func TestDebugChecksFileScrape(t *testing.T) {
	coordPath, workerPath := os.Getenv("COORD_DEBUG_FILE"), os.Getenv("WORKER_DEBUG_FILE")
	if coordPath == "" && workerPath == "" {
		t.Skip("COORD_DEBUG_FILE/WORKER_DEBUG_FILE not set (CI-only scrape validation)")
	}
	decode := func(path string) (body struct {
		obs.FlightSnapshot
		LatencyExemplars []obs.BucketExemplar `json:"latencyExemplars"`
	}) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("%s is not a /debug/checks body: %v", path, err)
		}
		if int(body.Recorded) < len(body.Last) {
			t.Errorf("%s: recorded %d < %d last entries", path, body.Recorded, len(body.Last))
		}
		for _, rec := range body.Last {
			if !api.ValidTraceID(rec.TraceID) {
				t.Errorf("%s: flight record without a valid trace id: %+v", path, rec)
			}
		}
		return body
	}
	if coordPath != "" {
		body := decode(coordPath)
		if body.Recorded == 0 || len(body.Slowest) == 0 {
			t.Errorf("coordinator flight recorder empty after the CI batch: %+v", body.FlightSnapshot)
		}
		for _, rec := range body.Last {
			if rec.Worker == "" {
				t.Errorf("coordinator flight record has no placement: %+v", rec)
			}
		}
	}
	if workerPath != "" {
		decode(workerPath)
	}
}
