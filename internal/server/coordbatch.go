package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/waveform"
)

// coordBatch is one admitted submission being executed across the
// cluster. The handler goroutine owns it: it expands the workload into
// units (one per client-facing check), shards them over the live
// workers by rendezvous hashing, merges the per-shard NDJSON streams,
// and re-establishes the single-daemon guarantee — exactly one
// terminal result per unit — through worker failures, requeues, and
// hedges. The state machine per unit is:
//
//	undelivered --worker result--------------------> delivered
//	undelivered --stream failed, attempts left-----> requeued (undelivered)
//	undelivered --straggling at HedgeAfter---------> racing two workers
//	undelivered --attempts exhausted---------------> delivered (A + error)
//	undelivered --batch context dead---------------> delivered (C)
//
// with the delivered flag (under mu) making the first transition win
// every race: late duplicates from hedges or requeue overlap are
// counted and dropped, never re-emitted.
type coordBatch struct {
	co     *Coordinator
	entry  *coordEntry
	req    *Request
	checks []resolvedCheck

	id  int64
	log *slog.Logger

	// trace is the batch's completed trace context (id always set; the
	// coordinator is the admitting tier when the client sent none).
	// clientTraced records whether the client itself asked for tracing —
	// worker span summaries are forwarded downstream only then, though
	// the coordinator always collects them for its own timeline.
	trace        *api.TraceContext
	clientTraced bool
	ct           *obs.ClusterTrace // cluster timeline when CoordConfig.TraceDir is set

	ctx    context.Context // the batch context; checked by the C-requeue rule
	em     *emitter
	wg     sync.WaitGroup // every dispatchShard goroutine
	doneCh chan struct{}  // closed when remaining hits 0

	mu        sync.Mutex
	units     []*coordUnit // guarded by mu
	remaining int          // guarded by mu
	checksRun int          // table1 forward only; unit workloads use len(units); guarded by mu
}

// coordUnit is one client-facing check flowing through the merge
// machine.
type coordUnit struct {
	emitIndex int    // index stamped on the wire (batch position, or PO index within a sweep)
	deltaIdx  int    // sweep slot; 0 for explicit batches
	sink      string // sink net name (the shard key component)
	sinkID    circuit.NetID
	delta     waveform.Time
	spec      CheckSpec

	delivered bool         // guarded by coordBatch.mu
	attempts  int          // dispatches this unit has been part of (primary, requeue, and hedge all count); guarded by coordBatch.mu
	inFlight  int          // dispatches currently racing it; guarded by coordBatch.mu
	workers   []string     // every worker it has been dispatched to, in order; guarded by coordBatch.mu
	result    *CheckResult // guarded by coordBatch.mu

	// lastC holds a worker-reported Cancelled result that arrived while
	// the batch context was still alive — the *worker's* context died
	// (drain, kill), not the client's, so it is not terminal here. It
	// is delivered only if every requeue attempt is exhausted.
	lastC       *CheckResult // guarded by coordBatch.mu
	lastCWorker string       // guarded by coordBatch.mu
}

func (u *coordUnit) key(hash api.Hash) ShardKey {
	return ShardKey{Hash: string(hash), Sink: u.sink}
}

// tried reports whether the unit was ever dispatched to addr. Caller
// holds coordBatch.mu.
func (u *coordUnit) tried(addr string) bool {
	for _, w := range u.workers {
		if w == addr {
			return true
		}
	}
	return false
}

// run executes the batch against the cluster and assembles the
// response (emitting events along the way when em is non-nil).
func (cb *coordBatch) run(ctx context.Context, em *emitter) *Response {
	start := time.Now()
	c := cb.entry.c
	resp := &Response{V: api.Version, Circuit: circuitInfo(c, batchSize(c, cb.req, cb.checks)),
		TraceID: cb.trace.TraceID}
	em.emit(Event{Type: "circuit", Circuit: &resp.Circuit})

	if cb.req.Sweep != nil && cb.req.Sweep.Table1 {
		cb.em = em
		cb.runTable1Forward(ctx, em, resp)
		cb.mu.Lock()
		n := cb.checksRun
		cb.mu.Unlock()
		resp.Done = DoneInfo{ChecksRun: n, ElapsedUs: time.Since(start).Microseconds()}
		cb.logDone(ctx, start)
		cb.writeClusterTrace(ctx, start)
		return resp
	}

	// Unit workloads: a batch-scoped context so finishing the batch
	// (first-witness cancellation upstream, or simply every unit
	// delivered) tears down every worker stream still racing —
	// cluster-wide cancellation in one cancel call.
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cb.ctx = bctx
	cb.em = em
	cb.doneCh = make(chan struct{})
	cb.mu.Lock()
	cb.buildUnits()
	cb.remaining = len(cb.units)
	if cb.remaining == 0 {
		close(cb.doneCh)
	}
	cb.mu.Unlock()

	cb.dispatchAll(bctx)

	// The hedge pass runs at most once per batch, HedgeAfter into it.
	// It is a goroutine (not AfterFunc) so run() can wait for it below:
	// its launches must precede wg.Wait.
	hedgeDone := make(chan struct{})
	go func() {
		defer close(hedgeDone)
		if cb.co.cfg.HedgeAfter <= 0 {
			return
		}
		t := time.NewTimer(cb.co.cfg.HedgeAfter)
		defer t.Stop()
		select {
		case <-t.C:
			cb.hedgePass(bctx)
		case <-cb.doneCh:
		case <-bctx.Done():
		}
	}()

	<-cb.doneCh
	<-hedgeDone
	cancel() // cut hedge losers and any stream still open
	cb.wg.Wait()

	// Every dispatch goroutine has exited (wg.Wait above), but the
	// assembly still takes mu: the guarded fields are only ever read
	// under it, and a finished batch has no contention to pay.
	cb.mu.Lock()
	if cb.req.Sweep == nil {
		resp.Results = make([]CheckResult, len(cb.units))
		for i, u := range cb.units {
			resp.Results[i] = *u.result
		}
	} else {
		cb.assembleSweeps(resp, em)
	}
	n := len(cb.units)
	cb.mu.Unlock()
	resp.Done = DoneInfo{ChecksRun: n, ElapsedUs: time.Since(start).Microseconds()}
	cb.logDone(ctx, start)
	cb.writeClusterTrace(ctx, start)
	return resp
}

// writeClusterTrace closes the batch's root span and dumps the cluster
// timeline to TraceDir/batch-<id>.trace.json.
func (cb *coordBatch) writeClusterTrace(ctx context.Context, start time.Time) {
	if cb.ct == nil {
		return
	}
	cb.ct.Span("coordinator", "batch "+strconv.FormatInt(cb.id, 10),
		start.UnixMicro(), time.Since(start).Microseconds(),
		map[string]any{"trace_id": cb.trace.TraceID, "circuit": cb.entry.c.Name})
	path := filepath.Join(cb.co.cfg.TraceDir, "batch-"+strconv.FormatInt(cb.id, 10)+".trace.json")
	f, err := os.Create(path)
	if err == nil {
		err = cb.ct.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		cb.log.LogAttrs(ctx, slog.LevelWarn, "cluster trace write failed",
			slog.String("path", path), slog.String("error", err.Error()))
		return
	}
	cb.log.LogAttrs(ctx, slog.LevelInfo, "cluster trace written",
		slog.String("path", path), slog.Int("events", cb.ct.Len()))
}

func (cb *coordBatch) logDone(ctx context.Context, start time.Time) {
	cb.mu.Lock()
	n := cb.checksRun
	if cb.units != nil {
		n = len(cb.units)
	}
	cb.mu.Unlock()
	cb.log.LogAttrs(ctx, slog.LevelInfo, "batch done",
		slog.String("circuit", cb.entry.c.Name), slog.Int("checks", n),
		slog.Duration("elapsed", time.Since(start)))
}

// buildUnits expands the workload into units in client-facing order:
// explicit checks by batch position; sweeps delta-major, one unit per
// (delta, primary output) with emitIndex the PO index — exactly the
// index a single daemon stamps on its streamed sweep checks. Caller
// holds cb.mu.
func (cb *coordBatch) buildUnits() {
	c := cb.entry.c
	if cb.req.Sweep == nil {
		cb.units = make([]*coordUnit, len(cb.checks))
		for i, rc := range cb.checks {
			cb.units[i] = &coordUnit{
				emitIndex: i, sink: c.Net(rc.sink).Name, sinkID: rc.sink, delta: rc.delta,
				spec: CheckSpec{Sink: c.Net(rc.sink).Name, Delta: int64(rc.delta), VerifyOnly: rc.verifyOnly},
			}
		}
		return
	}
	pos := c.PrimaryOutputs()
	for di, d := range cb.req.Sweep.Deltas {
		for pi, po := range pos {
			name := c.Net(po).Name
			cb.units = append(cb.units, &coordUnit{
				emitIndex: pi, deltaIdx: di, sink: name, sinkID: po, delta: waveform.Time(d),
				spec: CheckSpec{Sink: name, Delta: d},
			})
		}
	}
}

// dispatchAll performs the primary placement: one shard per owning
// worker, each dispatched as a single hash-addressed streaming batch.
func (cb *coordBatch) dispatchAll(ctx context.Context) {
	alive := cb.co.aliveWorkers(ctx)
	if len(alive) == 0 {
		cb.mu.Lock()
		for _, u := range cb.units {
			cb.deliverLocked(u, cb.syntheticResult(u, core.Abandoned, "no live workers"), "")
			cb.co.checkFailures.Add(1)
		}
		cb.mu.Unlock()
		return
	}
	router := NewShardRouter(alive)
	groups := make(map[string][]*coordUnit)
	cb.mu.Lock()
	for _, u := range cb.units {
		owner, _ := router.Assign(u.key(cb.entry.hash))
		groups[owner] = append(groups[owner], u)
	}
	cb.mu.Unlock()
	addrs := make([]string, 0, len(groups))
	for addr := range groups {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		cb.launch(ctx, addr, groups[addr], "primary")
	}
}

// launch records the dispatch on every covered unit and starts the
// shard goroutine.
func (cb *coordBatch) launch(ctx context.Context, addr string, units []*coordUnit, kind string) {
	w := cb.co.byAddr[addr]
	cb.mu.Lock()
	for _, u := range units {
		u.attempts++
		u.inFlight++
		u.workers = append(u.workers, addr)
	}
	cb.mu.Unlock()
	switch kind {
	case "primary":
		cb.co.dispatchPrimary.Add(1)
	case "requeue":
		cb.co.dispatchRequeue.Add(1)
	case "hedge":
		cb.co.dispatchHedge.Add(1)
	}
	cb.log.LogAttrs(ctx, slog.LevelDebug, "shard dispatch",
		slog.String("worker", addr), slog.Int("checks", len(units)), slog.String("kind", kind))
	cb.wg.Add(1)
	go cb.dispatchShard(ctx, w, units, kind)
}

// dispatchShard runs one shard's stream against one worker and settles
// the aftermath: units this stream stranded (undelivered with no other
// dispatch racing them) flow into redispatch, and a retryable failure
// marks the worker dead for the probe loop to resurrect.
func (cb *coordBatch) dispatchShard(ctx context.Context, w *coordWorker, units []*coordUnit, kind string) {
	defer cb.wg.Done()
	dstart := time.Now()
	err := cb.streamShard(ctx, w, units, kind)
	if cb.ct != nil {
		args := map[string]any{"trace_id": cb.trace.TraceID, "worker": w.addr,
			"kind": kind, "checks": len(units)}
		if err != nil {
			args["error"] = err.Error()
		}
		cb.ct.Span("coordinator", "dispatch "+w.addr+" ("+kind+")",
			dstart.UnixMicro(), time.Since(dstart).Microseconds(), args)
	}
	var stranded []*coordUnit
	cb.mu.Lock()
	for _, u := range units {
		u.inFlight--
		if !u.delivered && u.inFlight == 0 {
			stranded = append(stranded, u)
		}
	}
	cb.mu.Unlock()
	if err != nil && ctx.Err() == nil && client.Retryable(err) {
		cb.co.markDead(ctx, w, err)
	}
	cb.redispatch(ctx, stranded, err)
}

// streamShard uploads the circuit if the worker needs it and streams
// the shard's checks, delivering each result as its event arrives. An
// unknown_hash answer (the worker evicted the circuit between our
// upload and the check) is retried once on the same worker after
// forgetting the stale belief.
func (cb *coordBatch) streamShard(ctx context.Context, w *coordWorker, units []*coordUnit, kind string) error {
	for try := 0; try < 2; try++ {
		if err := cb.co.ensureCircuit(ctx, w, cb.entry); err != nil {
			return err
		}
		specs := make([]CheckSpec, len(units))
		attempt := 0
		cb.mu.Lock()
		for i, u := range units {
			specs[i] = u.spec
			attempt = max(attempt, u.attempts)
		}
		cb.mu.Unlock()
		req := api.Request{
			V: api.Version, Checks: specs,
			Options: cb.req.Options, Budgets: cb.req.Budgets,
			CheckTimeoutMs: cb.req.CheckTimeoutMs,
			Shard: &api.ShardInfo{
				Coordinator: cb.co.cfg.Name, Batch: cb.id, Worker: w.addr,
				Attempt: attempt, Hedge: kind == "hedge",
			},
			// The worker joins the coordinator's trace (and answers with
			// in-band span summaries); ParentSpan identifies this dispatch.
			Trace: &api.TraceContext{TraceID: cb.trace.TraceID,
				ParentSpan: api.NewSpanID(), Tenant: cb.trace.Tenant},
		}
		err := w.cl.StreamByHash(ctx, cb.entry.hash, req, func(ev Event) error {
			switch {
			case ev.Type == "check" && ev.Check != nil:
				cb.deliver(units, ev.Check, w.addr)
			case ev.Type == "spans" && ev.Spans != nil:
				cb.workerSpans(units, ev.Spans, w.addr)
			}
			return nil
		})
		var ae *client.APIError
		if errors.As(err, &ae) && ae.UnknownHash() {
			w.forget(cb.entry.hash)
			continue
		}
		return err
	}
	return fmt.Errorf("worker %s keeps answering unknown_hash for %s", w.addr, cb.entry.hash)
}

// workerSpans folds one worker's in-band span summary into the
// cluster timeline (one lane group per worker, so per-attempt overlap
// stays visible), and forwards it — re-indexed to the client-facing
// check position — when the client itself asked for tracing.
func (cb *coordBatch) workerSpans(shard []*coordUnit, sum *api.SpanSummary, worker string) {
	if sum.Index < 0 || sum.Index >= len(shard) {
		return
	}
	u := shard[sum.Index]
	if cb.ct != nil {
		cb.ct.Span("worker "+worker, "check "+sum.Sink, sum.StartUnixUs, sum.DurUs,
			map[string]any{"trace_id": sum.TraceID, "span_id": sum.SpanID,
				"verdict": sum.Verdict, "attempt": sum.Attempt})
	}
	if cb.clientTraced {
		fwd := *sum
		fwd.Index = u.emitIndex // immutable after buildUnits; shard index → client index
		if fwd.Worker == "" {
			fwd.Worker = worker
		}
		cb.em.emit(Event{Type: "spans", Spans: &fwd, TraceID: sum.TraceID})
	}
}

// deliver routes one worker result to its unit. It is the merge
// point of the exactly-once guarantee: the first terminal result for
// a unit wins, and everything after it is dropped under the same lock
// that emitted the winner.
func (cb *coordBatch) deliver(shard []*coordUnit, res *CheckResult, worker string) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if res.Index < 0 || res.Index >= len(shard) {
		return // malformed event; drop rather than corrupt a neighbour
	}
	u := shard[res.Index]
	if u.delivered {
		cb.co.duplicatesDropped.Add(1)
		return
	}
	if res.Final == "C" && cb.ctx.Err() == nil {
		// The worker's context died, not the batch's: record and
		// requeue (the stream-end settlement picks the unit up).
		keep := *res
		u.lastC, u.lastCWorker = &keep, worker
		return
	}
	cb.deliverLocked(u, res, worker)
}

// deliverLocked finalises a unit: stamp placement, emit, and count
// down. Caller holds cb.mu; emitting under it orders every check
// event strictly before the batch's done event.
func (cb *coordBatch) deliverLocked(u *coordUnit, res *CheckResult, worker string) {
	r := *res
	r.Index = u.emitIndex
	r.Worker = worker
	r.Attempt = u.attempts
	if r.TraceID == "" { // synthetic results are minted here, not on a worker
		r.TraceID = cb.trace.TraceID
	}
	if r.SpanID == "" {
		r.SpanID = api.NewSpanID()
	}
	u.result = &r
	u.delivered = true
	cb.remaining--
	cb.co.checksMerged.Add(1)
	cb.co.flight.Record(&obs.CheckRecord{
		TraceID: r.TraceID, SpanID: r.SpanID, Tenant: cb.trace.Tenant,
		Batch: cb.id, Sink: r.Sink, Delta: r.Delta,
		Verdict: r.Final, Error: r.Error,
		Worker: worker, Attempt: u.attempts,
		StartUnixUs: r.StartUnixUs, ElapsedUs: r.ElapsedUs, StageUs: r.StageUs,
		Propagations: r.Propagations, Backtracks: r.Backtracks,
	})
	cb.co.checkSeconds.Observe(r.ElapsedUs * 1_000)
	cb.co.checkSeconds.SetExemplar(r.ElapsedUs*1_000, r.TraceID)
	if cb.ct != nil {
		cb.ct.Span("merge", "merge "+r.Sink, time.Now().UnixMicro(), 0,
			map[string]any{"trace_id": r.TraceID, "worker": worker,
				"attempt": u.attempts, "verdict": r.Final})
	}
	cb.em.emit(Event{Type: "check", Check: &r})
	if cb.remaining == 0 {
		close(cb.doneCh)
	}
}

// syntheticResult is a coordinator-made terminal result (the unit
// never got a usable worker answer): the same shape a worker's
// panic-isolation (A) or cancellation (C) path produces.
func (cb *coordBatch) syntheticResult(u *coordUnit, final core.Result, errMsg string) *CheckResult {
	rep := &core.Report{
		Sink: u.sinkID, Delta: u.delta,
		BeforeGITD: core.PossibleViolation, AfterGITD: core.StageSkipped,
		AfterStem: core.StageSkipped, CaseAnalysis: core.StageSkipped,
		Backtracks: -1, Final: final,
	}
	res := ResultFromReport(cb.entry.c, u.emitIndex, rep)
	res.Error = errMsg
	return &res
}

// redispatch settles units stranded by a finished dispatch: cancelled
// terminals when the batch context is gone, abandoned terminals on
// non-retryable causes or exhausted attempts (a recorded worker C wins
// over a synthetic A there), and otherwise a requeue onto the
// highest-ranked live worker each unit has not tried yet.
func (cb *coordBatch) redispatch(ctx context.Context, units []*coordUnit, cause error) {
	if len(units) == 0 {
		return
	}
	if ctx.Err() != nil {
		cb.mu.Lock()
		for _, u := range units {
			if !u.delivered {
				cb.deliverLocked(u, cb.syntheticResult(u, core.Cancelled, ""), "")
			}
		}
		cb.mu.Unlock()
		return
	}
	causeMsg := ""
	if cause != nil {
		causeMsg = cause.Error()
	}
	if cause != nil && !client.Retryable(cause) {
		cb.mu.Lock()
		for _, u := range units {
			if !u.delivered {
				cb.deliverLocked(u, cb.syntheticResult(u, core.Abandoned, causeMsg), "")
				cb.co.checkFailures.Add(1)
			}
		}
		cb.mu.Unlock()
		return
	}

	var retry []*coordUnit
	cb.mu.Lock()
	for _, u := range units {
		switch {
		case u.delivered:
		case u.attempts >= cb.co.cfg.MaxAttempts:
			cb.co.checkFailures.Add(1)
			if u.lastC != nil {
				cb.deliverLocked(u, u.lastC, u.lastCWorker)
			} else {
				msg := "no dispatch attempts left"
				if causeMsg != "" {
					msg += ": " + causeMsg
				}
				cb.deliverLocked(u, cb.syntheticResult(u, core.Abandoned, msg), "")
			}
		default:
			retry = append(retry, u)
		}
	}
	cb.mu.Unlock()
	if len(retry) == 0 {
		return
	}
	cb.co.requeues.With(requeueReason(cause)).Add(int64(len(retry)))

	alive := cb.co.aliveWorkers(ctx)
	if len(alive) == 0 {
		cb.mu.Lock()
		for _, u := range retry {
			if !u.delivered {
				cb.deliverLocked(u, cb.syntheticResult(u, core.Abandoned, "no live workers left"), "")
				cb.co.checkFailures.Add(1)
			}
		}
		cb.mu.Unlock()
		return
	}
	router := NewShardRouter(alive)
	groups := make(map[string][]*coordUnit)
	cb.mu.Lock()
	for _, u := range retry {
		ranked := router.Ranked(u.key(cb.entry.hash))
		target := ranked[0]
		for _, cand := range ranked {
			if !u.tried(cand) {
				target = cand
				break
			}
		}
		groups[target] = append(groups[target], u)
	}
	cb.mu.Unlock()
	cb.co.requeuedChecks.Add(int64(len(retry)))
	addrs := make([]string, 0, len(groups))
	for addr := range groups {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		cb.launch(ctx, addr, groups[addr], "requeue")
	}
}

// requeueReason classifies why a dispatch left its units behind, for
// the lttad_coord_requeues_total{reason=...} counter: "stranded" (the
// stream ended cleanly without the unit's result — a hedge loser's cut
// stream, or a worker that silently dropped it), "truncated_stream"
// (the connection died mid-stream, the kill-a-worker path),
// "backpressure" (the worker answered 429/503), "transport" for every
// other transport-level failure.
func requeueReason(cause error) string {
	if cause == nil {
		return "stranded"
	}
	var trunc *client.TruncatedStreamError
	if errors.As(cause, &trunc) {
		return "truncated_stream"
	}
	var ae *client.APIError
	if errors.As(cause, &ae) && ae.Temporary() {
		return "backpressure"
	}
	return "transport"
}

// hedgePass runs once, HedgeAfter into the batch: every unit still
// racing its primary dispatch is additionally dispatched to the
// highest-ranked live worker it has not tried, and the first terminal
// result wins at deliver (the loser is counted and dropped; the
// batch-scoped context cuts its stream when the batch completes).
func (cb *coordBatch) hedgePass(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	alive := cb.co.aliveWorkers(ctx)
	if len(alive) < 2 {
		return // a hedge on the same sole worker buys nothing
	}
	router := NewShardRouter(alive)
	groups := make(map[string][]*coordUnit)
	byAttempt := make(map[int]int64) // dispatch attempt the hedge becomes → checks
	hedged := 0
	cb.mu.Lock()
	for _, u := range cb.units {
		if u.delivered || u.inFlight == 0 || u.attempts >= cb.co.cfg.MaxAttempts {
			continue
		}
		target := ""
		for _, cand := range router.Ranked(u.key(cb.entry.hash)) {
			if !u.tried(cand) {
				target = cand
				break
			}
		}
		if target == "" {
			continue
		}
		groups[target] = append(groups[target], u)
		byAttempt[u.attempts+1]++ // launch will bump attempts to this
		hedged++
	}
	cb.mu.Unlock()
	if hedged == 0 {
		return
	}
	cb.co.hedgedChecks.Add(int64(hedged))
	for attempt, n := range byAttempt {
		cb.co.hedges.With(strconv.Itoa(attempt)).Add(n)
	}
	addrs := make([]string, 0, len(groups))
	for addr := range groups {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		cb.launch(ctx, addr, groups[addr], "hedge")
	}
}

// assembleSweeps rebuilds the per-δ circuit aggregates from the
// delivered per-output results, through the exact aggregation path a
// single daemon uses: wire result → core.Report → core.AggregateCircuit
// → SweepFromReport. The round trip is lossless for every aggregated
// field, so coordinator sweeps are field-identical to single-daemon
// sweeps (the differential cluster suite pins this). Caller holds
// cb.mu.
func (cb *coordBatch) assembleSweeps(resp *Response, em *emitter) {
	c := cb.entry.c
	npos := len(c.PrimaryOutputs())
	for di, d := range cb.req.Sweep.Deltas {
		reports := make([]*core.Report, npos)
		for pi := 0; pi < npos; pi++ {
			u := cb.units[di*npos+pi]
			rep, err := reportFromResult(c, u.result)
			if err != nil {
				// A worker answered something unparseable; account the
				// output as abandoned rather than failing the batch.
				cb.log.LogAttrs(cb.ctx, slog.LevelError, "unusable worker result",
					slog.String("sink", u.sink), slog.String("error", err.Error()))
				rep = &core.Report{
					Sink: u.sinkID, Delta: u.delta,
					BeforeGITD: core.PossibleViolation, AfterGITD: core.StageSkipped,
					AfterStem: core.StageSkipped, CaseAnalysis: core.StageSkipped,
					Backtracks: -1, Final: core.Abandoned,
				}
			}
			reports[pi] = rep
		}
		sw := SweepFromReport(c, core.AggregateCircuit(waveform.Time(d), reports))
		// Report conversion never carries trace attribution or placement
		// (stamped at emission, not derivable from a core.Report), so
		// copy those from the delivered results into the per-output
		// entries — document clients see the same attribution stream
		// clients saw on the check events.
		for pi := 0; pi < npos && pi < len(sw.PerOutput); pi++ {
			if res := cb.units[di*npos+pi].result; res != nil {
				po := &sw.PerOutput[pi]
				po.TraceID, po.SpanID = res.TraceID, res.SpanID
				po.StartUnixUs, po.StageUs = res.StartUnixUs, res.StageUs
				po.Worker, po.Attempt = res.Worker, res.Attempt
			}
		}
		resp.Sweeps = append(resp.Sweeps, sw)
		em.emit(Event{Type: "sweep", Sweep: &sw})
	}
}

// runTable1Forward forwards a table1 sweep whole to one worker: the
// delay search is a sequential protocol (each probe depends on the
// last verdict), so sharding it would change it. The owner is the
// rendezvous choice for the circuit itself (empty sink), and the
// Ranked tail is the failover order.
func (cb *coordBatch) runTable1Forward(ctx context.Context, em *emitter, resp *Response) {
	alive := cb.co.aliveWorkers(ctx)
	if len(alive) == 0 {
		em.emit(Event{Type: "error", Error: "no live workers"})
		return
	}
	router := NewShardRouter(alive)
	ranked := router.Ranked(ShardKey{Hash: string(cb.entry.hash)})
	var lastErr error
	for attempt, addr := range ranked {
		if ctx.Err() != nil {
			break
		}
		w := cb.co.byAddr[addr]
		fstart := time.Now()
		wresp, err := cb.forwardTable1(ctx, w, attempt+1)
		if cb.ct != nil {
			args := map[string]any{"trace_id": cb.trace.TraceID, "worker": addr,
				"kind": "table1", "attempt": attempt + 1}
			if err != nil {
				args["error"] = err.Error()
			}
			cb.ct.Span("coordinator", "forward "+addr+" (table1)",
				fstart.UnixMicro(), time.Since(fstart).Microseconds(), args)
		}
		if err != nil {
			lastErr = err
			if ctx.Err() == nil && client.Retryable(err) {
				cb.co.markDead(ctx, w, err)
				cb.co.dispatchRequeue.Add(1)
				continue
			}
			break
		}
		cb.co.dispatchPrimary.Add(1)
		resp.Rows = wresp.Rows
		resp.Sweeps = wresp.Sweeps
		cb.mu.Lock()
		cb.checksRun = wresp.Done.ChecksRun
		cb.mu.Unlock()
		cb.co.checksMerged.Add(int64(wresp.Done.ChecksRun))
		for i := range resp.Sweeps {
			em.emit(Event{Type: "sweep", Sweep: &resp.Sweeps[i]})
		}
		if len(resp.Rows) > 0 {
			em.emit(Event{Type: "rows", Rows: resp.Rows})
		}
		return
	}
	msg := "table1 sweep failed on every live worker"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	em.emit(Event{Type: "error", Error: msg})
}

// forwardTable1 runs the whole table1 request on one worker as a
// buffered call, retrying once through the unknown_hash re-upload
// path like a sharded stream does.
func (cb *coordBatch) forwardTable1(ctx context.Context, w *coordWorker, attempt int) (*Response, error) {
	for try := 0; try < 2; try++ {
		if err := cb.co.ensureCircuit(ctx, w, cb.entry); err != nil {
			return nil, err
		}
		req := api.Request{
			V: api.Version, Sweep: cb.req.Sweep,
			Options: cb.req.Options, Budgets: cb.req.Budgets,
			CheckTimeoutMs: cb.req.CheckTimeoutMs,
			Shard: &api.ShardInfo{
				Coordinator: cb.co.cfg.Name, Batch: cb.id, Worker: w.addr, Attempt: attempt,
			},
			Trace: &api.TraceContext{TraceID: cb.trace.TraceID,
				ParentSpan: api.NewSpanID(), Tenant: cb.trace.Tenant},
		}
		wresp, err := w.cl.CheckByHash(ctx, cb.entry.hash, req)
		var ae *client.APIError
		if errors.As(err, &ae) && ae.UnknownHash() {
			w.forget(cb.entry.hash)
			continue
		}
		return wresp, err
	}
	return nil, fmt.Errorf("worker %s keeps answering unknown_hash for %s", w.addr, cb.entry.hash)
}
