package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
)

// debugChecksBody is the GET /debug/checks response: the flight
// recorder's snapshot plus the trace-id exemplars pinned on the check
// latency histogram (one per occupied bucket). Served identically by
// plain daemons and coordinators, so a cluster operator can chase one
// trace id from the coordinator's merge records into the worker that
// ran the slow check.
type debugChecksBody struct {
	obs.FlightSnapshot
	LatencyExemplars []obs.BucketExemplar `json:"latencyExemplars,omitempty"`
}

// writeDebugChecks renders one tier's flight recorder as JSON.
func writeDebugChecks(w http.ResponseWriter, fr *obs.FlightRecorder, exemplars []obs.BucketExemplar) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(debugChecksBody{
		FlightSnapshot:   fr.Snapshot(),
		LatencyExemplars: exemplars,
	})
}

func (s *Server) handleDebugChecks(w http.ResponseWriter, r *http.Request) {
	writeDebugChecks(w, s.flight, s.eng.CheckSeconds.Exemplars())
}
