package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/server"
)

// TestDrainMidFlight is the graceful-drain contract under load (run
// with -race in CI): a δ-sweep over a 48-block industrial circuit is
// interrupted by a SIGTERM-equivalent shutdown mid-flight, and still
// every accepted check reports exactly one terminal result —
// Violation, NoViolation, or Cancelled — while new submissions are
// rejected with 503 and the server stops within the drain deadline.
func TestDrainMidFlight(t *testing.T) {
	src := gen.Industrial(7, 48, 10)
	bench := circuit.BenchString(src)
	local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: "ind48"})
	if err != nil {
		t.Fatal(err)
	}
	top := int64(delay.New(local).Topological())
	// δ at and above the topological delay: refutations and witnesses,
	// never budget exhaustion, and enough checks (len(deltas) × #POs)
	// that the drain deadline lands mid-batch, leaving a cancelled tail.
	deltas := []int64{top}
	for d := top + 1; d <= top+63; d++ {
		deltas = append(deltas, d)
	}
	wantChecks := len(deltas) * len(local.PrimaryOutputs())

	s := server.New(server.Config{Workers: 2, QueueDepth: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	cl := client.New(ts.URL)

	type key struct {
		delta int64
		index int
	}
	var (
		mu      sync.Mutex
		seen    = map[key]string{}
		sawInfo *server.CircuitInfo
	)
	started := make(chan struct{})
	var startOnce sync.Once
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- cl.Stream(context.Background(), server.Request{
			Netlist: bench, Name: "ind48",
			Sweep: &server.SweepSpec{Deltas: deltas},
		}, func(ev server.Event) error {
			switch ev.Type {
			case "circuit":
				mu.Lock()
				sawInfo = ev.Circuit
				mu.Unlock()
			case "check":
				mu.Lock()
				k := key{delta: ev.Check.Delta, index: ev.Check.Index}
				if prev, dup := seen[k]; dup {
					mu.Unlock()
					return fmt.Errorf("check (δ=%d, #%d) answered twice: %s then %s", k.delta, k.index, prev, ev.Check.Final)
				}
				seen[k] = ev.Check.Final
				n := len(seen)
				mu.Unlock()
				if n >= 5 {
					startOnce.Do(func() { close(started) })
				}
			}
			return nil
		})
	}()

	// A few checks in: the SIGTERM path. BeginDrain rejects new work at
	// once; Shutdown with a short deadline cancels whatever the pool has
	// not finished by then — those checks must still answer (verdict C).
	select {
	case <-started:
	case err := <-streamErr:
		t.Fatalf("stream ended before shutdown could interrupt it: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("no check events within 30s")
	}
	// An already-expired drain deadline is the harshest SIGTERM: the
	// remaining checks are cancelled at once and must still each answer.
	drainStart := time.Now()
	dctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(dctx) // non-nil exactly when the deadline cancelled leftovers
	if d := time.Since(drainStart); d > 10*time.Second {
		t.Fatalf("shutdown took %s with an expired drain deadline", d)
	}

	// Draining (and after): new submissions bounce with 503 + Retry-After.
	_, err = cl.Check(context.Background(), server.Request{
		Netlist: bench, Checks: []server.CheckSpec{{Sink: local.Net(local.PrimaryOutputs()[0]).Name, Delta: top}},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != "draining" {
		t.Fatalf("draining submit: want 503 draining, got %v", err)
	}
	if !apiErr.Temporary() || apiErr.RetryAfter <= 0 {
		t.Fatalf("draining rejection must carry a Retry-After hint: %+v", apiErr)
	}
	if _, err := cl.Readyz(context.Background()); err == nil {
		t.Fatal("readyz must report draining")
	}
	// Liveness is orthogonal: the process is up (and answering the
	// drain 503s above), so /healthz stays 200 while /readyz is 503.
	if h, err := cl.Healthz(context.Background()); err != nil || h.Status != "draining" {
		t.Fatalf("healthz during drain: want 200 with status draining, got %+v, %v", h, err)
	}

	// The in-flight batch must have finished cleanly: stream complete,
	// every accepted check answered exactly once with a terminal verdict.
	select {
	case err := <-streamErr:
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not finish after shutdown")
	}
	mu.Lock()
	defer mu.Unlock()
	if sawInfo == nil || sawInfo.Checks != wantChecks {
		t.Fatalf("circuit event announced %+v, want %d checks", sawInfo, wantChecks)
	}
	if len(seen) != wantChecks {
		t.Fatalf("accepted %d checks, answered %d", wantChecks, len(seen))
	}
	terminal := map[string]int{}
	for k, final := range seen {
		switch final {
		case "V", "N", "C":
			terminal[final]++
		default:
			t.Fatalf("check (δ=%d, #%d) ended %q, want V, N, or C", k.delta, k.index, final)
		}
	}
	t.Logf("terminal results: %v (drain triggered after 5 of %d)", terminal, wantChecks)
	if terminal["N"] == 0 {
		t.Error("no check finished before the drain; the trigger fired too early")
	}
	if terminal["C"] == 0 {
		t.Error("no check was cancelled; the drain landed after the batch finished")
	}

	// Stopped: the listener closes within the deadline's slack.
	closeStart := time.Now()
	ts.Close()
	if d := time.Since(closeStart); d > 10*time.Second {
		t.Fatalf("listener took %s to close after drain", d)
	}
}
