package server_test

import (
	"context"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// rowFromTable1 maps a harness row onto the wire Row exactly like
// harness.WriteJSON does, so the differential comparison is
// field-by-field on decoded structs.
func rowFromTable1(r harness.Table1Row) server.Row {
	return server.Row{
		Circuit: r.Circuit, Gates: r.Gates,
		Top: int64(r.Top), Delta: int64(r.Delta),
		Exact: r.Exact, Upper: r.Upper,
		BeforeGITD: r.BeforeGITD.String(), AfterGITD: r.AfterGITD.String(),
		AfterStem: r.AfterStem.String(), Backtracks: r.Backtracks,
		CAResult: r.CAResult.String(),
	}
}

// zeroClocks strips the wall-clock fields — the only non-deterministic
// ones — so the rest compares exactly.
func zeroRowClocks(rows []server.Row) {
	for i := range rows {
		rows[i].CPUSeconds = 0
	}
}

func zeroSweepClocks(sweeps []server.SweepResult) {
	for i := range sweeps {
		zeroResultClocks(sweeps[i].PerOutput)
	}
}

// TestE2EDifferentialSuite is the end-to-end differential test: a
// table1 δ-sweep served over HTTP must produce verdicts, stages,
// witnesses, and engine statistics identical to the in-process
// harness (harness.CircuitRowsParallel) and to core.RunAll, compared
// field-by-field through the same serialisation.
//
// The in-process reference runs on the circuit re-parsed from the
// exact netlist text sent to the server: net-id order is parse-order,
// and order-sensitive counters (propagations, queue high-water) are
// only comparable on identical id spaces.
func TestE2EDifferentialSuite(t *testing.T) {
	const budget = 200000 // == core.Default().MaxBacktracks, the server default
	const workers = 4

	s := server.New(server.Config{Workers: workers, QueueDepth: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	for _, e := range gen.SubstituteSuite() {
		if testing.Short() {
			switch e.Name {
			case "c17", "c432", "c880":
			default:
				continue
			}
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if e.Name == "c6288" && os.Getenv("LTTAD_E2E_FULL") == "" {
				// The multiplier's δ row needs minutes of case analysis,
				// three times over (harness, RunAll, server); still
				// bit-identical, but only checked on demand.
				t.Skip("set LTTAD_E2E_FULL=1 to include the c6288 multiplier")
			}
			bench := circuit.BenchString(e.Circuit)
			local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: e.Name})
			if err != nil {
				t.Fatalf("re-parsing %s: %v", e.Name, err)
			}

			got, err := cl.Check(context.Background(), server.Request{
				Netlist: bench, Name: e.Name,
				Sweep: &server.SweepSpec{Table1: true},
			})
			if err != nil {
				t.Fatalf("server check: %v", err)
			}

			// Rows against the in-process harness.
			wantRows := make([]server.Row, 0, 2)
			for _, r := range harness.CircuitRowsParallel(e.Name, local, budget, workers) {
				wantRows = append(wantRows, rowFromTable1(r))
			}
			zeroRowClocks(got.Rows)
			if !reflect.DeepEqual(got.Rows, wantRows) {
				t.Errorf("rows differ:\n got %+v\nwant %+v", got.Rows, wantRows)
			}

			// Sweeps (per-output verdicts, witnesses, statistics) against
			// core.RunAll through the same conversion the server uses.
			// The server defaults warm-start off (counter determinism
			// under its pool); the reference must solve cold too.
			opts := core.Default()
			opts.UseWarmStart = false
			v := core.NewVerifier(local, opts)
			res, err := v.CircuitFloatingDelayCtx(context.Background(), core.Request{Workers: workers})
			if err != nil {
				t.Fatalf("in-process delay search: %v", err)
			}
			wantSweeps := []server.SweepResult{}
			for _, d := range []waveform.Time{res.Delay.Add(1), res.Delay} {
				cr := v.RunAll(context.Background(), core.Request{Delta: d, Workers: workers})
				wantSweeps = append(wantSweeps, server.SweepFromReport(local, cr))
			}
			zeroSweepClocks(got.Sweeps)
			zeroSweepClocks(wantSweeps)
			if !reflect.DeepEqual(got.Sweeps, wantSweeps) {
				t.Errorf("sweeps differ:\n got %+v\nwant %+v", got.Sweeps, wantSweeps)
			}

			// Every served witness must replay: decoded at the API
			// boundary, simulated, and certified against the check it
			// answers.
			replayed := 0
			for _, sw := range got.Sweeps {
				for _, pr := range sw.PerOutput {
					if pr.Final != "V" {
						continue
					}
					replayWitness(t, local, pr)
					replayed++
				}
			}
			if replayed == 0 {
				t.Errorf("%s: no violation witnesses served; the δ row must witness", e.Name)
			}

			if got.Circuit.Name != e.Name || got.Circuit.Gates != local.NumGates() {
				t.Errorf("circuit echo wrong: %+v", got.Circuit)
			}
		})
	}
}

// replayWitness simulates a served witness and asserts it certifies
// the violation it was reported for.
func replayWitness(t *testing.T, c *circuit.Circuit, pr server.CheckResult) {
	t.Helper()
	if pr.Witness == "" {
		t.Errorf("violation (%s, %d) served without a witness", pr.Sink, pr.Delta)
		return
	}
	vec, err := server.DecodeWitness(pr.Witness)
	if err != nil {
		t.Errorf("witness (%s, %d): %v", pr.Sink, pr.Delta, err)
		return
	}
	sink, ok := c.NetByName(pr.Sink)
	if !ok {
		t.Errorf("witness names unknown sink %q", pr.Sink)
		return
	}
	r, err := sim.Run(c, vec)
	if err != nil {
		t.Errorf("witness (%s, %d) does not simulate: %v", pr.Sink, pr.Delta, err)
		return
	}
	if !r.Violates(sink, waveform.Time(pr.Delta)) {
		t.Errorf("witness (%s, %d) does not violate: settles at %d", pr.Sink, pr.Delta, r.Settle[sink])
	}
	if got := int64(r.Settle[sink]); got != pr.WitnessSettle {
		t.Errorf("witness (%s, %d): served settle %d, simulated %d", pr.Sink, pr.Delta, pr.WitnessSettle, got)
	}
}

// TestE2EExplicitBatch covers the explicit-checks path end to end:
// per-check verdicts served over HTTP equal v.Run in process.
func TestE2EExplicitBatch(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	src := gen.C17(10)
	bench := circuit.BenchString(src)
	local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}

	var specs []server.CheckSpec
	for _, po := range local.PrimaryOutputs() {
		for _, d := range []int64{40, 50, 51} {
			specs = append(specs, server.CheckSpec{Sink: local.Net(po).Name, Delta: d})
		}
	}
	got, err := cl.Check(context.Background(), server.Request{
		Netlist: bench, Name: "c17", Checks: specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(specs) {
		t.Fatalf("got %d results for %d checks", len(got.Results), len(specs))
	}
	if got.Done.ChecksRun != len(specs) {
		t.Fatalf("done reports %d checks, want %d", got.Done.ChecksRun, len(specs))
	}

	// Mirror the server's warm-start-off default: the comparison below
	// includes exact work counters.
	refOpts := core.Default()
	refOpts.UseWarmStart = false
	v := core.NewVerifier(local, refOpts)
	for i, cs := range specs {
		sink, _ := local.NetByName(cs.Sink)
		rep := v.Run(context.Background(), core.Request{Sink: sink, Delta: waveform.Time(cs.Delta)})
		want := server.ResultFromReport(local, i, rep)
		g := got.Results[i]
		g.ElapsedUs, want.ElapsedUs = 0, 0
		// The reference result comes straight from ResultFromReport, which
		// never stamps trace attribution; strip the server's.
		g.TraceID, g.SpanID, g.StartUnixUs, g.StageUs = "", "", 0, nil
		if !reflect.DeepEqual(g, want) {
			t.Errorf("check %d (%s, %d):\n got %+v\nwant %+v", i, cs.Sink, cs.Delta, g, want)
		}
	}
}
