package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/registry"
)

// Config sizes the service. The zero value of every field selects a
// production-sane default.
type Config struct {
	// Workers is the shared check-execution pool size (default:
	// GOMAXPROCS). Every check of every in-flight batch runs on this
	// pool, so it is the server's hard CPU bound.
	Workers int
	// QueueDepth bounds admitted batches — in flight plus waiting for
	// workers (default 64). A submission beyond it is rejected with
	// 429 + Retry-After instead of queueing unboundedly.
	QueueDepth int
	// MaxBodyBytes caps the request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxChecks caps the checks one batch may expand to (default
	// 100000).
	MaxChecks int
	// CheckTimeout caps each check's wall clock server-side, composing
	// with the client's checkTimeoutMs (smaller wins; 0 = none).
	CheckTimeout time.Duration
	// BatchTimeout caps each batch the same way (0 = none).
	BatchTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429/503 responses
	// (default 1s).
	RetryAfter time.Duration
	// Logger receives the server's structured logs (default: discard).
	Logger *slog.Logger
	// TraceDir, when non-empty, writes a Chrome trace_event timeline
	// per batch to TraceDir/batch-<id>.trace.json (Perfetto-loadable).
	TraceDir string
	// FlightLast and FlightSlowest size the always-on flight recorder
	// behind GET /debug/checks: the last N completed checks and the K
	// slowest (defaults 256 and 32).
	FlightLast    int
	FlightSlowest int
	// RegistryMaxCircuits bounds the content-addressed circuit registry
	// behind PUT /v1/circuits (default 128 circuits; LRU beyond).
	RegistryMaxCircuits int
	// RegistryMaxBytes bounds the registry's estimated resident bytes —
	// circuits plus cached prepared state (default 1 GiB; negative =
	// unlimited).
	RegistryMaxBytes int64
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.MaxChecks <= 0 {
		cfg.MaxChecks = 100000
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	return cfg
}

// Server is the lttad HTTP service. Create with New, serve with any
// http.Server (it implements http.Handler), stop with Shutdown.
//
// Lifecycle: accepting → draining → stopped. Accepting, submissions
// are admitted up to QueueDepth concurrent batches (429 beyond).
// Draining (entered by BeginDrain/Shutdown), every new submission is
// rejected with 503 while in-flight batches run to completion; at the
// drain deadline the remaining checks are cancelled via context so
// each still produces exactly one terminal result (verdict C) and the
// batches finish. Stopped, the pool has exited.
type Server struct {
	cfg Config
	mux *http.ServeMux

	tasks     chan func()
	workersWG sync.WaitGroup

	slots    chan struct{} // admission tokens, cap QueueDepth
	inflight sync.WaitGroup
	draining atomic.Bool
	ready    atomic.Bool // flips once the warm-up Prepare canary completes

	baseCtx    context.Context // cancelled at the drain deadline
	baseCancel context.CancelFunc

	shutdownOnce sync.Once

	log      *slog.Logger
	batchSeq atomic.Int64 // batch ids for request-scoped log attrs

	agg    core.StatsTracer    // engine telemetry across all served checks
	eng    *obs.Tracer         // histogram telemetry behind /metrics
	reg    *obs.Registry       // the Prometheus exposition
	tracer core.Tracer         // agg+eng chain stamped on every check
	flight *obs.FlightRecorder // always-on last-N/slowest-K record behind /debug/checks

	registry *registry.Registry // content-addressed circuits + prepared-state cache

	// counters behind /metrics
	accepted      atomic.Int64
	rejectedFull  atomic.Int64
	rejectedDrain atomic.Int64
	badRequests   atomic.Int64
	checksRun     atomic.Int64
	panics        atomic.Int64
	streams       atomic.Int64
	netlistParses atomic.Int64 // every parseNetlist call; warm hash checks stay at zero
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		tasks: make(chan func()),
		slots: make(chan struct{}, cfg.QueueDepth),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.log = cfg.Logger
	s.eng = obs.NewTracer()
	s.tracer = core.MultiTracer(&s.agg, s.eng)
	s.reg = obs.NewRegistry()
	s.eng.MustRegister(s.reg, "ltta")
	s.flight = obs.NewFlightRecorder(cfg.FlightLast, cfg.FlightSlowest)
	s.registry = registry.New(registry.Config{
		MaxCircuits:      cfg.RegistryMaxCircuits,
		MaxResidentBytes: cfg.RegistryMaxBytes,
	})
	s.registerServerMetrics()
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("PUT /v1/circuits", s.handleCircuitPut)
	s.mux.HandleFunc("POST /v1/circuits/{hash}/check", s.handleCheckByHash)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetricsProm)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /debug/checks", s.handleDebugChecks)
	for i := 0; i < cfg.Workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	go s.warmup()
	return s
}

// warmup runs a tiny Prepare+check canary so /readyz only reports
// ready once the engine demonstrably works in this process — the
// first real batch then pays no first-use cost and a broken build
// never joins a load balancer.
func (s *Server) warmup() {
	c := gen.C17(10)
	v := core.Prepare(c).NewVerifier(core.Default())
	cr := v.RunAll(s.baseCtx, core.Request{Delta: v.Topological().Add(1)})
	s.ready.Store(true)
	s.log.LogAttrs(s.baseCtx, slog.LevelInfo, "ready",
		slog.String("canary", c.Name), slog.String("verdict", cr.Final.String()),
		slog.Int("workers", s.cfg.Workers), slog.Int("queueDepth", s.cfg.QueueDepth))
}

// registerServerMetrics wires the admission and lifecycle counters
// into the Prometheus registry next to the engine histograms.
func (s *Server) registerServerMetrics() {
	s.reg.CounterFunc("lttad_batches_accepted_total",
		"Batches admitted past the bounded queue.", nil, s.accepted.Load)
	s.reg.CounterFunc("lttad_batches_rejected_total",
		"Batches rejected by backpressure.", obs.Labels{"reason": "queue_full"}, s.rejectedFull.Load)
	s.reg.CounterFunc("lttad_batches_rejected_total",
		"Batches rejected by backpressure.", obs.Labels{"reason": "draining"}, s.rejectedDrain.Load)
	s.reg.CounterFunc("lttad_bad_requests_total",
		"Submissions rejected before admission (parse/validate).", nil, s.badRequests.Load)
	s.reg.CounterFunc("lttad_checks_run_total",
		"Checks executed on the pool.", nil, s.checksRun.Load)
	s.reg.CounterFunc("lttad_check_panics_total",
		"Checks that panicked and were isolated.", nil, s.panics.Load)
	s.reg.CounterFunc("lttad_streams_total",
		"Batches served as NDJSON streams.", nil, s.streams.Load)
	s.reg.GaugeFunc("lttad_queued_batches",
		"Admitted batches currently holding a queue slot.", nil,
		func() float64 { return float64(len(s.slots)) })
	s.reg.GaugeFunc("lttad_queue_depth",
		"Admission queue capacity.", nil,
		func() float64 { return float64(s.cfg.QueueDepth) })
	s.reg.GaugeFunc("lttad_workers",
		"Check-execution pool size.", nil,
		func() float64 { return float64(s.cfg.Workers) })
	s.reg.CounterFunc("lttad_netlist_parses_total",
		"Netlist parses performed (uploads and inline checks; registry cache hits never parse).",
		nil, s.netlistParses.Load)
	s.reg.CounterFunc("lttad_registry_hits_total",
		"Hash-addressed checks that found their prepared state resident.", nil, s.registry.Hits)
	s.reg.CounterFunc("lttad_registry_misses_total",
		"Hash-addressed checks that arrived cold (led or joined a preparation).", nil, s.registry.Misses)
	s.reg.CounterFunc("lttad_registry_unknown_total",
		"Checks against hashes no circuit is registered under (404).", nil, s.registry.Unknown)
	s.reg.CounterFunc("lttad_registry_prepares_total",
		"core.Prepare executions inside the registry.", nil, s.registry.Prepares)
	s.reg.CounterFunc("lttad_registry_singleflight_coalesced_total",
		"Cold checks that coalesced onto an in-flight preparation instead of running their own.",
		nil, s.registry.Coalesced)
	s.reg.CounterFunc("lttad_registry_evictions_total",
		"Registry entries evicted by capacity pressure.",
		obs.Labels{"mode": "immediate"}, s.registry.Evictions)
	s.reg.CounterFunc("lttad_registry_evictions_total",
		"Registry entries evicted by capacity pressure.",
		obs.Labels{"mode": "deferred"}, s.registry.DeferredEvictions)
	s.reg.CounterFunc("lttad_registry_uploads_total",
		"Circuit uploads by outcome.", obs.Labels{"result": "created"}, s.registry.UploadsCreated)
	s.reg.CounterFunc("lttad_registry_uploads_total",
		"Circuit uploads by outcome.", obs.Labels{"result": "existing"}, s.registry.UploadsExisting)
	s.reg.GaugeFunc("lttad_registry_circuits",
		"Circuits currently registered (acquirable).", nil,
		func() float64 { return float64(s.registry.Circuits()) })
	s.reg.GaugeFunc("lttad_registry_resident_bytes",
		"Estimated bytes held by registered circuits and prepared state.", nil,
		func() float64 { return float64(s.registry.ResidentBytes()) })
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// worker executes pool tasks; each task does its own panic isolation.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for f := range s.tasks {
		f()
	}
}

// submit runs f on the pool, or synchronously reports a cancelled
// submission when ctx ends before a worker frees up. The returned
// value says whether f was (or will be) executed.
func (s *Server) submit(ctx context.Context, f func()) bool {
	select {
	case s.tasks <- f:
		return true
	case <-ctx.Done():
		return false
	}
}

// runOne executes one check on the calling pool worker with panic
// isolation: a crashing check yields a synthetic Abandoned report (the
// engine gave up; claiming N would be unsound) plus the panic message,
// and the rest of the batch is unaffected.
func (s *Server) runOne(ctx context.Context, v *core.Verifier, req core.Request) (rep *core.Report, panicMsg string) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			panicMsg = fmt.Sprintf("check panicked: %v", p)
			rep = &core.Report{
				Sink: req.Sink, Delta: req.Delta,
				BeforeGITD: core.PossibleViolation, AfterGITD: core.StageSkipped,
				AfterStem: core.StageSkipped, CaseAnalysis: core.StageSkipped,
				Backtracks: -1, Final: core.Abandoned,
			}
		}
	}()
	// Chain the server-wide tracers with any batch-level tracer (span
	// recording) the caller installed.
	req.Tracer = core.MultiTracer(s.tracer, req.Tracer)
	rep = v.Run(ctx, req)
	s.checksRun.Add(1)
	return rep, ""
}

// BeginDrain moves the server to draining: new submissions are
// rejected with 503 + Retry-After immediately; in-flight batches keep
// running. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown drains the server: it stops admitting work, waits for
// in-flight batches, and — if ctx expires first — cancels the
// remaining checks so every accepted check still reports exactly one
// terminal result (verdict C for the cancelled ones) and the batches
// finish promptly (the engine polls cancellation sub-millisecond).
// It returns ctx.Err() when the drain deadline forced cancellation,
// nil on a clean drain; either way all accepted work has been
// answered and the pool has exited when it returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	var err error
	s.shutdownOnce.Do(func() {
		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
			s.baseCancel()
			<-done
		}
		s.baseCancel()
		close(s.tasks)
	})
	s.workersWG.Wait()
	return err
}

// writeError emits the structured error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorInfo{Code: e.code, Message: e.msg, Hash: e.hash}})
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleCheck is POST /v1/check: decode, parse, admit, execute,
// respond (JSON document or NDJSON stream).
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
			msg: "POST required"})
		return
	}
	if s.draining.Load() {
		s.rejectedDrain.Add(1)
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "batch rejected",
			slog.String("reason", "draining"))
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, &apiError{status: http.StatusServiceUnavailable, code: "draining",
			msg: "server is draining; resubmit elsewhere"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, apiErr := decodeRequest(r.Body, false)
	if apiErr != nil {
		s.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	s.netlistParses.Add(1)
	c, apiErr := parseNetlist(req.Netlist, req.Format, req.Name, req.DefaultDelay)
	if apiErr != nil {
		s.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	s.admitAndRun(w, r, req, c, nil)
}

// admitAndRun is the admission + execution half shared by the inline
// and hash-addressed check paths: resolve sinks, take a queue slot (or
// 429), build the batch context, and execute. pin is nil on the inline
// path; on the hash path it holds the registered circuit (already
// acquired by the caller, who releases it after the response is
// written) and its prepared state is resolved here — after admission,
// under the batch context — so cold preparations respect the queue
// bound and the drain deadline.
func (s *Server) admitAndRun(w http.ResponseWriter, r *http.Request, req *Request, c *circuit.Circuit, pin *registry.Pin) {
	checks, apiErr := resolveChecks(c, req.Checks)
	if apiErr != nil {
		s.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	if n := batchSize(c, req, checks); n > s.cfg.MaxChecks {
		s.rejectBadRequest(r.Context(), w, badRequest("too_many_checks",
			"batch expands to %d checks, cap is %d", n, s.cfg.MaxChecks))
		return
	}

	// Admission: a slot per batch, non-blocking — the bounded queue.
	select {
	case s.slots <- struct{}{}:
	default:
		s.rejectedFull.Add(1)
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "batch rejected",
			slog.String("reason", "queue_full"), slog.Int("queueDepth", s.cfg.QueueDepth))
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, &apiError{status: http.StatusTooManyRequests, code: "queue_full",
			msg: fmt.Sprintf("admission queue full (%d batches)", s.cfg.QueueDepth)})
		return
	}
	s.inflight.Add(1)
	s.accepted.Add(1)
	defer func() {
		<-s.slots
		s.inflight.Done()
	}()

	// The batch context: the server's base context (cancelled at the
	// drain deadline) bounded by the batch timeouts. The client going
	// away also cancels everything it still has queued.
	ctx := s.baseCtx
	if reqCtx := r.Context(); reqCtx != nil {
		var stop context.CancelFunc
		ctx, stop = mergeCancel(ctx, reqCtx)
		defer stop()
	}
	if d := minTimeout(s.cfg.BatchTimeout, time.Duration(req.TimeoutMs)*time.Millisecond); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	var (
		prep    *core.Prepared
		wasHit  bool
		hashStr string
	)
	if pin != nil {
		var err error
		prep, wasHit, err = pin.Prepared(ctx)
		if err != nil {
			writeError(w, &apiError{status: http.StatusInternalServerError,
				code: "prepare_failed", msg: err.Error(), hash: pin.Hash()})
			return
		}
		hashStr = string(pin.Hash())
	}

	id := s.batchSeq.Add(1)
	// The admitting tier completes the trace context: an absent or
	// malformed client trace gets a freshly minted id here, and every
	// event, log line, and flight record of the batch carries it.
	trace := api.EnsureTrace(req.Trace)
	logger := s.log.With(slog.Int64("batch", id), slog.String("trace_id", trace.TraceID))
	if trace.Tenant != "" {
		logger = logger.With(slog.String("tenant", trace.Tenant))
	}
	if sh := req.Shard; sh != nil && sh.Attempt > 0 {
		logger = logger.With(slog.Int("attempt", sh.Attempt))
	}
	b := &batch{srv: s, req: req, c: c, checks: checks, prep: prep, id: id,
		log: logger, trace: trace,
		opts: engineOptions(req.Options), budgets: engineBudgets(req.Budgets),
		checkTimeout: minTimeout(s.cfg.CheckTimeout, time.Duration(req.CheckTimeoutMs)*time.Millisecond),
	}
	if s.cfg.TraceDir != "" {
		b.rec = obs.NewSpanRecorder(c)
		stamp := map[string]any{"trace_id": trace.TraceID, "batch": id}
		if sh := req.Shard; sh != nil {
			stamp["attempt"] = sh.Attempt
		}
		b.rec.Stamp(stamp)
	}
	attrs := []slog.Attr{
		slog.String("circuit", c.Name), slog.Int("checks", batchSize(c, req, checks)),
		slog.Bool("stream", req.Stream),
	}
	if pin != nil {
		attrs = append(attrs, slog.String("hash", hashStr), slog.Bool("cacheHit", wasHit))
	}
	if sh := req.Shard; sh != nil {
		// Stamped by a coordinator: trace which cluster placement this
		// batch is (primary, requeue, or hedge dispatch).
		attrs = append(attrs,
			slog.String("coordinator", sh.Coordinator), slog.Int64("coordBatch", sh.Batch),
			slog.Int("attempt", sh.Attempt), slog.Bool("hedge", sh.Hedge))
	}
	b.log.LogAttrs(ctx, slog.LevelInfo, "batch accepted", attrs...)
	if req.Stream {
		s.streams.Add(1)
		b.stream(ctx, w)
		return
	}
	resp := b.run(ctx, nil)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// rejectBadRequest tallies, logs, and answers a pre-admission error.
func (s *Server) rejectBadRequest(ctx context.Context, w http.ResponseWriter, e *apiError) {
	s.badRequests.Add(1)
	s.log.LogAttrs(ctx, slog.LevelInfo, "bad request",
		slog.String("code", e.code), slog.String("message", e.msg))
	writeError(w, e)
}

// batchSize is the number of checks a request expands to (-1 when a
// table1 sweep discovers them during the delay search).
func batchSize(c *circuit.Circuit, req *Request, checks []resolvedCheck) int {
	if req.Sweep == nil {
		return len(checks)
	}
	if req.Sweep.Table1 {
		return -1
	}
	return len(req.Sweep.Deltas) * len(c.PrimaryOutputs())
}

// mergeCancel derives a context from a that is additionally cancelled
// when b ends (context.WithoutCancel-free two-parent merge).
func mergeCancel(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stopCh := make(chan struct{})
	go func() {
		select {
		case <-b.Done():
			cancel()
		case <-ctx.Done():
		case <-stopCh:
		}
	}()
	return ctx, func() { close(stopCh); cancel() }
}

// minTimeout composes two optional timeouts: the smaller positive one.
func minTimeout(a, b time.Duration) time.Duration {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	}
	return b
}

func (s *Server) health() Health {
	h := Health{Status: "ok", Workers: s.cfg.Workers, Queued: len(s.slots), Capacity: s.cfg.QueueDepth}
	switch {
	case s.draining.Load():
		h.Status = "draining"
	case !s.ready.Load():
		h.Status = "starting"
	}
	return h
}

// handleHealthz is pure liveness: the process is up and serving HTTP,
// so it always answers 200 — the status field is informational.
// Restart-deciders probe here; load balancers probe /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.health())
}

// handleReadyz is readiness: 503 before the warm-up canary completes
// ("starting") and from the moment the server begins draining
// ("draining"), 200 in between — exactly the window in which a new
// submission would be admitted.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(h)
}

// handleMetricsProm is GET /metrics: the Prometheus text exposition —
// server admission counters, the engine's per-stage latency and work
// histograms, and runtime/metrics samples (heap, GC, goroutines).
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	obs.WriteRuntimeProm(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	m := Metrics{
		Server: map[string]int64{
			"acceptedBatches":  s.accepted.Load(),
			"rejectedFull":     s.rejectedFull.Load(),
			"rejectedDraining": s.rejectedDrain.Load(),
			"badRequests":      s.badRequests.Load(),
			"checksRun":        s.checksRun.Load(),
			"panics":           s.panics.Load(),
			"streams":          s.streams.Load(),
			"queuedBatches":    int64(len(s.slots)),
			"queueDepth":       int64(s.cfg.QueueDepth),
			"workers":          int64(s.cfg.Workers),

			"netlistParses":             s.netlistParses.Load(),
			"registryCircuits":          int64(s.registry.Circuits()),
			"registryResidentBytes":     s.registry.ResidentBytes(),
			"registryHits":              s.registry.Hits(),
			"registryMisses":            s.registry.Misses(),
			"registryUnknown":           s.registry.Unknown(),
			"registryPrepares":          s.registry.Prepares(),
			"registryCoalesced":         s.registry.Coalesced(),
			"registryEvictions":         s.registry.Evictions(),
			"registryDeferredEvictions": s.registry.DeferredEvictions(),
			"registryUploadsCreated":    s.registry.UploadsCreated(),
			"registryUploadsExisting":   s.registry.UploadsExisting(),
		},
		Engine: map[string]int64{},
		Checks: s.agg.String(),
	}
	expvar.Do(func(kv expvar.KeyValue) {
		if len(kv.Key) > 5 && kv.Key[:5] == "ltta." {
			if iv, ok := kv.Value.(*expvar.Int); ok {
				m.Engine[kv.Key] = iv.Value()
			}
		}
	})
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(m)
}
