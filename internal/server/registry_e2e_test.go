package server_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
)

func newRegistryTestServer(t *testing.T, cfg server.Config) (*client.Client, func()) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s)
	cl := client.New(ts.URL)
	return cl, func() {
		ts.Close()
		_ = s.Shutdown(context.Background())
	}
}

func zeroResultClocks(results []server.CheckResult) {
	for i := range results {
		results[i].ElapsedUs = 0
		// Trace attribution is fresh per submission by design (span ids
		// are random, starts are wall clock); differential comparisons
		// care about verdicts and statistics only.
		results[i].TraceID, results[i].SpanID = "", ""
		results[i].StartUnixUs, results[i].StageUs = 0, nil
	}
}

func zeroResponseClocks(resp *server.Response) {
	resp.Done.ElapsedUs = 0
	resp.TraceID = ""
	zeroResultClocks(resp.Results)
	zeroRowClocks(resp.Rows)
	zeroSweepClocks(resp.Sweeps)
}

// TestRegistryDifferentialInline is the registry-path acceptance test:
// Upload + CheckByHash must produce responses field-identical (modulo
// wall clocks) to the inline /v1/check on the same request, across the
// substitute-suite circuits — same verdicts, same witnesses, same
// engine statistics. The prepared state being cached and shared must
// be observationally invisible.
func TestRegistryDifferentialInline(t *testing.T) {
	cl, stop := newRegistryTestServer(t, server.Config{Workers: 4, QueueDepth: 8})
	defer stop()

	for _, e := range gen.SubstituteSuite() {
		switch e.Name {
		case "c17", "c432", "c880": // deep-enough subset; table1 E2E covers the rest
		default:
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			bench := circuit.BenchString(e.Circuit)
			var specs []server.CheckSpec
			for _, po := range e.Circuit.PrimaryOutputs() {
				name := e.Circuit.Net(po).Name
				specs = append(specs, server.CheckSpec{Sink: name, Delta: 40},
					server.CheckSpec{Sink: name, Delta: 10000})
			}
			for _, req := range []server.Request{
				{Checks: specs},
				{Sweep: &server.SweepSpec{Deltas: []int64{40, 10000}}},
			} {
				inlineReq := req
				inlineReq.Netlist, inlineReq.Name = bench, e.Name
				inline, err := cl.CheckInline(context.Background(), inlineReq)
				if err != nil {
					t.Fatalf("inline check: %v", err)
				}

				hash, err := cl.Upload(context.Background(), bench, client.UploadOptions{Name: e.Name})
				if err != nil {
					t.Fatalf("upload: %v", err)
				}
				byHash, err := cl.CheckByHash(context.Background(), hash, req)
				if err != nil {
					t.Fatalf("check by hash: %v", err)
				}

				zeroResponseClocks(inline)
				zeroResponseClocks(byHash)
				if !reflect.DeepEqual(inline, byHash) {
					t.Errorf("registry path diverges from inline:\n got %+v\nwant %+v", byHash, inline)
				}
				if byHash.V != api.Version {
					t.Errorf("response version %d, want %d", byHash.V, api.Version)
				}
			}
		})
	}
}

// TestRegistryWarmZeroWork is the tentpole acceptance criterion: after
// one upload, a warm hash-addressed check performs zero netlist parses
// and zero core.Prepare calls — proven by the server's own counters,
// through both /metrics.json and the Prometheus exposition.
func TestRegistryWarmZeroWork(t *testing.T) {
	cl, stop := newRegistryTestServer(t, server.Config{Workers: 2, QueueDepth: 4})
	defer stop()
	ctx := context.Background()

	bench := circuit.BenchString(gen.C17(10))
	hash, err := cl.Upload(ctx, bench, client.UploadOptions{Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	req := server.Request{Checks: []server.CheckSpec{{Sink: "G22", Delta: 40}, {Sink: "G23", Delta: 51}}}
	first, err := cl.CheckByHash(ctx, hash, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.CheckByHash(ctx, hash, req)
	if err != nil {
		t.Fatal(err)
	}
	zeroResponseClocks(first)
	zeroResponseClocks(second)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("warm check answered differently:\n got %+v\nwant %+v", second, first)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One parse at upload, one Prepare on the cold check, and nothing —
	// no parse, no Prepare — on the warm one.
	for key, want := range map[string]int64{
		"netlistParses":    1,
		"registryPrepares": 1,
		"registryMisses":   1,
		"registryHits":     1,
		"registryCircuits": 1,
	} {
		if got := m.Server[key]; got != want {
			t.Errorf("server counter %s = %d, want %d (%+v)", key, got, want, m.Server)
		}
	}
	if m.Server["registryResidentBytes"] <= 0 {
		t.Errorf("resident-bytes gauge not populated: %+v", m.Server)
	}

	// The same facts through the Prometheus exposition (the counters CI
	// scrapes and asserts on).
	text, err := cl.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseProm(bytes.NewReader(text))
	if err != nil {
		t.Fatalf("/metrics is not a valid exposition: %v\n%s", err, text)
	}
	values := map[string]float64{}
	for _, f := range fams {
		for _, smp := range f.Samples {
			values[f.Name] = smp.Value
		}
	}
	for name, want := range map[string]float64{
		"lttad_netlist_parses_total":    1,
		"lttad_registry_prepares_total": 1,
		"lttad_registry_hits_total":     1,
		"lttad_registry_misses_total":   1,
		"lttad_registry_circuits":       1,
	} {
		if got, ok := values[name]; !ok || got != want {
			t.Errorf("exposition %s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	if values["lttad_registry_resident_bytes"] <= 0 {
		t.Errorf("lttad_registry_resident_bytes not populated:\n%s", text)
	}
}

// TestRegistryUploadIdempotent: identical uploads return one hash and
// one created=true; annotation order does not change the address.
func TestRegistryUploadIdempotent(t *testing.T) {
	cl, stop := newRegistryTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	defer stop()
	ctx := context.Background()
	bench := circuit.BenchString(gen.C17(10))

	opts := client.UploadOptions{Name: "c17", Delays: []api.DelayAnnotation{
		{Net: "G10", Delay: 12}, {Net: "G11", Delay: 9},
	}}
	h1, err := cl.Upload(ctx, bench, opts)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := opts
	shuffled.Delays = []api.DelayAnnotation{{Net: "G11", Delay: 9}, {Net: "G10", Delay: 12}}
	h2, err := cl.Upload(ctx, bench, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("annotation order changed the served hash: %s vs %s", h1, h2)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["registryUploadsCreated"] != 1 || m.Server["registryUploadsExisting"] != 1 {
		t.Fatalf("upload counters: created=%d existing=%d, want 1/1",
			m.Server["registryUploadsCreated"], m.Server["registryUploadsExisting"])
	}
	if m.Server["netlistParses"] != 1 {
		t.Fatalf("re-upload parsed again: %d parses", m.Server["netlistParses"])
	}
}

// TestRegistryUnknownHash: a well-formed but unregistered hash answers
// 404 with the stable code and the hash echoed back; a malformed hash
// and a hash-check smuggling a netlist are 400s.
func TestRegistryUnknownHash(t *testing.T) {
	cl, stop := newRegistryTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	defer stop()
	ctx := context.Background()
	req := server.Request{Checks: []server.CheckSpec{{Sink: "G22", Delta: 40}}}

	ghost := api.NewHash([32]byte{0xde, 0xad, 0xbe, 0xef})
	_, err := cl.CheckByHash(ctx, ghost, req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("unknown hash: got %v, want *client.APIError", err)
	}
	if apiErr.Status != 404 || apiErr.Code != "unknown_hash" || !apiErr.UnknownHash() {
		t.Fatalf("unknown hash: %+v", apiErr)
	}
	if apiErr.Hash != ghost {
		t.Fatalf("error echoes hash %q, want %q", apiErr.Hash, ghost)
	}

	if _, err := cl.CheckByHash(ctx, "sha256:nope", req); !errors.As(err, &apiErr) ||
		apiErr.Status != 400 || apiErr.Code != "bad_hash" {
		t.Fatalf("malformed hash: %v", err)
	}

	bench := circuit.BenchString(gen.C17(10))
	hash, err := cl.Upload(ctx, bench, client.UploadOptions{Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	smuggled := req
	smuggled.Netlist = bench
	if _, err := cl.CheckByHash(ctx, hash, smuggled); !errors.As(err, &apiErr) ||
		apiErr.Status != 400 || apiErr.Code != "netlist_in_hash_check" {
		t.Fatalf("netlist in hash check: %v", err)
	}
}

// TestRegistryConcurrentColdHTTP drives the singleflight through the
// full HTTP stack: N concurrent first checks on one freshly uploaded
// hash must run exactly one Prepare, and all answers must be
// identical.
func TestRegistryConcurrentColdHTTP(t *testing.T) {
	const n = 8
	cl, stop := newRegistryTestServer(t, server.Config{Workers: 4, QueueDepth: n})
	defer stop()
	ctx := context.Background()

	bench := circuit.BenchString(gen.C17(10))
	hash, err := cl.Upload(ctx, bench, client.UploadOptions{Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	req := server.Request{Sweep: &server.SweepSpec{Deltas: []int64{40, 51}}}

	var wg sync.WaitGroup
	responses := make([]*server.Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = cl.CheckByHash(ctx, hash, req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent check %d: %v", i, err)
		}
		zeroResponseClocks(responses[i])
		if !reflect.DeepEqual(responses[i], responses[0]) {
			t.Errorf("concurrent check %d answered differently", i)
		}
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["registryPrepares"] != 1 {
		t.Fatalf("%d concurrent cold checks ran %d Prepares, want 1 (coalesced=%d misses=%d hits=%d)",
			n, m.Server["registryPrepares"], m.Server["registryCoalesced"],
			m.Server["registryMisses"], m.Server["registryHits"])
	}
	if m.Server["registryHits"]+m.Server["registryMisses"] != n {
		t.Fatalf("hit/miss accounting: hits=%d misses=%d, want sum %d",
			m.Server["registryHits"], m.Server["registryMisses"], n)
	}
	if m.Server["registryCoalesced"] != m.Server["registryMisses"]-1 {
		t.Fatalf("coalesced=%d, want misses-1=%d",
			m.Server["registryCoalesced"], m.Server["registryMisses"]-1)
	}
	if m.Server["netlistParses"] != 1 {
		t.Fatalf("hash checks parsed netlists: %d parses", m.Server["netlistParses"])
	}
}

// TestDeprecatedCheckRidesRegistry: the legacy Client.Check wrapper
// now uploads then checks by hash, so repeated batches on one netlist
// hit the cache.
func TestDeprecatedCheckRidesRegistry(t *testing.T) {
	cl, stop := newRegistryTestServer(t, server.Config{Workers: 2, QueueDepth: 4})
	defer stop()
	ctx := context.Background()

	req := server.Request{Netlist: circuit.BenchString(gen.C17(10)), Name: "c17",
		Checks: []server.CheckSpec{{Sink: "G22", Delta: 40}}}
	first, err := cl.Check(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Check(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	zeroResponseClocks(first)
	zeroResponseClocks(second)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated Check answered differently")
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["netlistParses"] != 1 || m.Server["registryPrepares"] != 1 || m.Server["registryHits"] != 1 {
		t.Fatalf("legacy Check did not ride the cache: parses=%d prepares=%d hits=%d",
			m.Server["netlistParses"], m.Server["registryPrepares"], m.Server["registryHits"])
	}
}

// TestRegistryEvictionHTTP: over-capacity uploads evict LRU circuits;
// a check against the evicted hash 404s and the deprecated wrapper
// transparently re-uploads.
func TestRegistryEvictionHTTP(t *testing.T) {
	cl, stop := newRegistryTestServer(t, server.Config{Workers: 1, QueueDepth: 2,
		RegistryMaxCircuits: 1})
	defer stop()
	ctx := context.Background()

	h1, err := cl.Upload(ctx, circuit.BenchString(gen.C17(10)), client.UploadOptions{Name: "one"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Upload(ctx, circuit.BenchString(gen.C17(10)), client.UploadOptions{Name: "two"}); err != nil {
		t.Fatal(err)
	}
	req := server.Request{Checks: []server.CheckSpec{{Sink: "G22", Delta: 40}}}
	var apiErr *client.APIError
	if _, err := cl.CheckByHash(ctx, h1, req); !errors.As(err, &apiErr) || !apiErr.UnknownHash() {
		t.Fatalf("evicted hash: got %v, want unknown_hash", err)
	}

	// The deprecated wrapper recovers by re-uploading.
	legacy := req
	legacy.Netlist, legacy.Name = circuit.BenchString(gen.C17(10)), "one"
	if _, err := cl.Check(ctx, legacy); err != nil {
		t.Fatalf("legacy Check after eviction: %v", err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["registryEvictions"] == 0 {
		t.Fatalf("eviction counter not populated: %+v", m.Server)
	}
}

// TestRegistryPromFileScrape validates the registry counters of an
// exposition scraped from a live daemon — CI uploads a circuit, runs
// two hash checks, curls /metrics, and points REGISTRY_PROM_FILE here:
// the second batch must have been a cache hit served with exactly one
// Prepare. Skips when unset.
func TestRegistryPromFileScrape(t *testing.T) {
	path := os.Getenv("REGISTRY_PROM_FILE")
	if path == "" {
		t.Skip("REGISTRY_PROM_FILE not set (CI-only scrape validation)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := obs.ParseProm(f)
	if err != nil {
		t.Fatalf("scraped exposition invalid: %v", err)
	}
	values := map[string]float64{}
	for _, fam := range fams {
		for _, smp := range fam.Samples {
			values[fam.Name] = smp.Value
		}
	}
	for name, want := range map[string]float64{
		"lttad_registry_hits_total":     1,
		"lttad_registry_misses_total":   1,
		"lttad_registry_prepares_total": 1,
	} {
		if got, ok := values[name]; !ok || got != want {
			t.Errorf("scrape %s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	// The canary and the two batches parse exactly once: at upload.
	if got := values["lttad_netlist_parses_total"]; got != 1 {
		t.Errorf("scrape lttad_netlist_parses_total = %v, want 1", got)
	}
}
