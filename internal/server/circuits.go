package server

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/registry"
	"repro/internal/sdf"
)

// handleCircuitPut is PUT /v1/circuits: canonicalize the upload, hash
// it, and register the parsed circuit under its content address. The
// call is idempotent — re-uploading a known circuit costs one hash and
// zero parses — and takes no admission slot: uploads are cheap
// bookkeeping next to check batches, and a registry full of circuits
// admits no work by itself.
func (s *Server) handleCircuitPut(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectedDrain.Add(1)
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "upload rejected",
			slog.String("reason", "draining"))
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, &apiError{status: http.StatusServiceUnavailable, code: "draining",
			msg: "server is draining; resubmit elsewhere"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var up UploadRequest
	if apiErr := decodeBody(r.Body, &up); apiErr != nil {
		s.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	if !api.AcceptsVersion(up.V) {
		s.rejectBadRequest(r.Context(), w, unsupportedVersion(up.V))
		return
	}
	res, err := s.registry.Put(&up, s.buildCircuit)
	if err != nil {
		s.rejectBadRequest(r.Context(), w, uploadError(err))
		return
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "circuit upload",
		slog.String("hash", string(res.Hash)), slog.Bool("created", res.Created),
		slog.String("circuit", res.Circuit.Name))
	w.Header().Set("Content-Type", "application/json")
	if res.Created {
		w.WriteHeader(http.StatusCreated)
	}
	_ = json.NewEncoder(w).Encode(UploadResponse{
		V: api.Version, Hash: res.Hash, Created: res.Created,
		Circuit: circuitInfo(res.Circuit, 0),
	})
}

// uploadError maps a registry.Put failure onto the structured error
// envelope: canonicalization failures carry their own stable code,
// build failures are already apiErrors.
func uploadError(err error) *apiError {
	var bad *registry.BadUploadError
	if errors.As(err, &bad) {
		return badRequest(bad.Code, "%s", bad.Message)
	}
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	return badRequest("bad_upload", "%v", err)
}

// buildCircuit parses a canonicalized upload and applies its delay
// annotations. It runs only on uploads of hashes not yet registered —
// the netlistParses counter proves warm paths never reach here. The
// annotations are applied before the circuit is published, so the
// registered circuit is complete and immutable from the moment any
// batch can see it.
func (s *Server) buildCircuit(canon *api.UploadRequest) (*circuit.Circuit, error) {
	s.netlistParses.Add(1)
	return buildUploadCircuit(canon)
}

// buildUploadCircuit is the parse+annotate step shared by the worker
// registry and the coordinator's circuit table; each caller counts the
// parse in its own netlistParses counter.
func buildUploadCircuit(canon *api.UploadRequest) (*circuit.Circuit, error) {
	c, apiErr := parseNetlist(canon.Netlist, canon.Format, canon.Name, canon.DefaultDelay)
	if apiErr != nil {
		return nil, apiErr
	}
	if canon.SDF != "" {
		if _, err := sdf.ApplyString(c, canon.SDF); err != nil {
			return nil, badRequest("bad_sdf", "applying SDF: %v", err)
		}
	}
	for _, d := range canon.Delays {
		id, ok := c.NetByName(d.Net)
		if !ok {
			return nil, badRequest("unknown_annotation_net",
				"delay annotation targets unknown net %q", d.Net)
		}
		drv := c.Net(id).Driver
		if drv == circuit.InvalidGate {
			return nil, badRequest("bad_annotation",
				"net %q is a primary input; only gate outputs carry delays", d.Net)
		}
		g := c.Gate(drv)
		g.Delay = d.Delay
		g.DMin = d.DMin
	}
	return c, nil
}

// handleCheckByHash is POST /v1/circuits/{hash}/check: run a batch
// against a previously uploaded circuit. The request carries no
// netlist — a warm entry serves the batch with zero parses and zero
// core.Prepare calls. The pin taken here holds the entry (and its
// shared prepared state) against eviction for the whole batch,
// released only after the response is written.
func (s *Server) handleCheckByHash(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectedDrain.Add(1)
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "batch rejected",
			slog.String("reason", "draining"))
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, &apiError{status: http.StatusServiceUnavailable, code: "draining",
			msg: "server is draining; resubmit elsewhere"})
		return
	}
	h := api.Hash(r.PathValue("hash"))
	if !h.Valid() {
		s.rejectBadRequest(r.Context(), w, badRequest("bad_hash",
			"malformed circuit hash %q (want sha256:<64 hex>)", string(h)))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, apiErr := decodeRequest(r.Body, true)
	if apiErr != nil {
		s.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	pin, ok := s.registry.Acquire(h)
	if !ok {
		s.badRequests.Add(1)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "unknown hash",
			slog.String("hash", string(h)))
		writeError(w, &apiError{status: http.StatusNotFound, code: "unknown_hash",
			msg:  "no circuit registered under this hash; PUT /v1/circuits and retry",
			hash: h})
		return
	}
	defer pin.Release()
	s.admitAndRun(w, r, req, pin.Circuit(), pin)
}
