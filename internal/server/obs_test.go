package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
)

// waitReady polls /readyz until the warm-up canary completes.
func waitReady(t *testing.T, cl *client.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h, err := cl.Readyz(context.Background()); err == nil && h.Status == "ok" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// TestHealthzReadyzSplit pins the liveness/readiness contract:
// /healthz answers 200 for the whole process lifetime; /readyz is 503
// until the warm-up canary completes and again from BeginDrain on.
func TestHealthzReadyzSplit(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	// Liveness holds from the first request, ready or not.
	if h, err := cl.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz before ready: %v (status %+v)", err, h)
	}
	waitReady(t, cl)
	if h, err := cl.Readyz(context.Background()); err != nil || h.Status != "ok" {
		t.Fatalf("readyz after warm-up: %+v, %v", h, err)
	}

	s.BeginDrain()
	if h, err := cl.Healthz(context.Background()); err != nil || h.Status != "draining" {
		t.Fatalf("healthz while draining: want 200/draining, got %+v, %v", h, err)
	}
	_, err := cl.Readyz(context.Background())
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: want 503, got %v", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("readyz 503 must carry Retry-After, got %+v", apiErr)
	}
}

// TestMetricsEndpoints runs a batch and checks both metric surfaces:
// /metrics is a valid Prometheus exposition with a latency histogram
// per pipeline stage, /metrics.json still serves the counter document.
func TestMetricsEndpoints(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	src := gen.C17(10)
	bench := circuit.BenchString(src)
	if _, err := cl.Check(context.Background(), server.Request{
		Netlist: bench, Name: "c17",
		Sweep: &server.SweepSpec{Deltas: []int64{40, 51}},
	}); err != nil {
		t.Fatal(err)
	}

	text, err := cl.MetricsProm(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseProm(bytes.NewReader(text))
	if err != nil {
		t.Fatalf("/metrics is not a valid exposition: %v\n%s", err, text)
	}
	stages := map[string]bool{}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name] = true
		if f.Name != "ltta_stage_duration_seconds" {
			continue
		}
		for _, smp := range f.Samples {
			if smp.Labels["le"] == "+Inf" && smp.Value > 0 {
				stages[smp.Labels["stage"]] = true
			}
		}
	}
	// Every check runs the plain fixpoint; the δ=40 checks go deeper.
	if !stages["fixpoint"] {
		t.Errorf("no populated fixpoint stage histogram:\n%s", text)
	}
	for _, want := range []string{
		"lttad_batches_accepted_total", "lttad_checks_run_total",
		"lttad_queued_batches", "ltta_checks_total",
		"ltta_check_duration_seconds", "go_goroutines",
	} {
		if !names[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}

	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["checksRun"] == 0 || m.Server["acceptedBatches"] == 0 {
		t.Fatalf("/metrics.json counters not populated: %+v", m.Server)
	}
}

// TestBatchTraceDir checks per-batch span recording: with TraceDir
// set, every batch leaves a validating trace_event file behind.
func TestBatchTraceDir(t *testing.T) {
	dir := t.TempDir()
	s := server.New(server.Config{Workers: 2, QueueDepth: 4, TraceDir: dir})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	src := gen.C17(10)
	if _, err := cl.Check(context.Background(), server.Request{
		Netlist: circuit.BenchString(src), Name: "c17",
		Sweep: &server.SweepSpec{Deltas: []int64{51}},
	}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "batch-1.trace.json")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("batch trace not written: %v", err)
	}
	defer f.Close()
	n, err := obs.ValidateTrace(f)
	if err != nil {
		t.Fatalf("batch trace does not validate: %v", err)
	}
	if n == 0 {
		t.Fatal("batch trace is empty")
	}
}

// TestStructuredLogs checks the request-scoped slog wiring: batch
// lifecycle at info with a batch id, per-check records at debug with
// sink/delta/verdict.
func TestStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&syncWriter{w: &buf}, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 2, QueueDepth: 4, Logger: logger})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	src := gen.C17(10)
	local, err := circuit.ParseBenchString(circuit.BenchString(src), circuit.BenchOptions{DefaultDelay: 10, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	po := local.Net(local.PrimaryOutputs()[0]).Name
	if _, err := cl.Check(context.Background(), server.Request{
		Netlist: circuit.BenchString(src), Name: "c17",
		Checks: []server.CheckSpec{{Sink: po, Delta: 51}},
	}); err != nil {
		t.Fatal(err)
	}

	logs := buf.String()
	for _, want := range []string{
		`"msg":"batch accepted"`, `"msg":"batch done"`, `"batch":1`,
		`"msg":"check"`, `"sink":"` + po + `"`, `"delta":51`, `"verdict":"N"`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs missing %s:\n%s", want, logs)
		}
	}
}

// syncWriter serialises concurrent slog writes from pool workers.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
