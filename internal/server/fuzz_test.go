package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// fuzzSeeds are real request bodies — the same shapes the e2e suite
// sends — plus the malformed neighbours a fuzzer should start from.
func fuzzSeeds(f *testing.F) {
	bench := circuit.BenchString(gen.C17(10))
	add := func(req Request) {
		body, err := json.Marshal(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	add(Request{Netlist: bench, Name: "c17", Sweep: &SweepSpec{Table1: true}})
	add(Request{Netlist: bench, Sweep: &SweepSpec{Deltas: []int64{40, 50, 51}}, Stream: true})
	add(Request{Netlist: bench, Checks: []CheckSpec{{Sink: "g22", Delta: 50}, {Sink: "g23", Delta: 49, VerifyOnly: true}},
		Options: &OptionsSpec{NoStems: true, MaxBacktracks: 100}, Budgets: &BudgetsSpec{MaxPropagations: 1 << 20},
		CheckTimeoutMs: 100, TimeoutMs: 1000})
	add(Request{Netlist: "module m (a, z); input a; output z; not (z, a); endmodule",
		Format: "verilog", Checks: []CheckSpec{{Sink: "z", Delta: 1}}})

	f.Add([]byte(`{"netlist":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","checks":[{"sink":"z","delta":5}]}`))
	f.Add([]byte(`{"netlist":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","checks":[{"sink":"missing","delta":5}]}`))
	f.Add([]byte(`{"netlist":"garbage = = (","sweep":{"deltas":[1]}}`))
	f.Add([]byte(`{"netlist":"INPUT(a)","checks":[{"sink":"a"}],"sweep":{"table1":true}}`))
	f.Add([]byte(`{"netlist":"INPUT(a)","defaultDelay":-1}`))
	f.Add([]byte(`{"netlist":5}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte("\xff\xfe{}"))
}

// FuzzDecodeRequest drives arbitrary bytes through the full request
// path short of execution — JSON decode, validation, netlist parse,
// sink resolution, option/budget mapping. Every rejection must be a
// structured 4xx apiError; nothing may panic.
func FuzzDecodeRequest(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, apiErr := decodeRequest(bytes.NewReader(data), false)
		if apiErr != nil {
			check4xx(t, apiErr)
			return
		}
		c, apiErr := parseNetlist(req.Netlist, req.Format, req.Name, req.DefaultDelay)
		if apiErr != nil {
			check4xx(t, apiErr)
			return
		}
		if _, apiErr := resolveChecks(c, req.Checks); apiErr != nil {
			check4xx(t, apiErr)
			return
		}
		// Accepted requests must map onto sane engine parameters.
		opts := engineOptions(req.Options)
		if opts.MaxBacktracks < 0 || opts.MaxStemSplits == 0 {
			t.Fatalf("accepted request mapped to bad options %+v", opts)
		}
		_ = engineBudgets(req.Budgets)
		if n := batchSize(c, req, nil); req.Sweep != nil && !req.Sweep.Table1 && n < 0 {
			t.Fatalf("sweep expanded to negative batch size %d", n)
		}
	})
}

func check4xx(t *testing.T, e *apiError) {
	t.Helper()
	if e.status < 400 || e.status > 499 {
		t.Fatalf("rejection with status %d (code %s): want 4xx", e.status, e.code)
	}
	if e.code == "" || e.msg == "" {
		t.Fatalf("rejection without code/message: %+v", e)
	}
}
