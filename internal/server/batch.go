package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/waveform"
)

// batch is one admitted submission being executed. The handler
// goroutine owns it: it prepares the circuit, fans checks out over the
// server's shared pool, and assembles the response (or streams events
// as they arrive).
type batch struct {
	srv     *Server
	req     *Request
	c       *circuit.Circuit
	checks  []resolvedCheck
	prep    *core.Prepared // registry-cached precompute; nil on the inline path
	opts    core.Options
	budgets core.Budgets

	id    int64
	log   *slog.Logger      // request-scoped: carries the batch id and trace id
	rec   *obs.SpanRecorder // per-batch timeline when Config.TraceDir is set
	trace *api.TraceContext // completed trace context (id always set)

	checkTimeout time.Duration

	countMu   sync.Mutex // guards checksRun against pool workers
	checksRun int
}

// emitter serialises streamed events; nil for buffered responses.
// Events from pool workers interleave, so emission is locked. Every
// emitted event echoes the batch's trace id (unless the producer
// already stamped one).
type emitter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	fl      http.Flusher
	traceID string
}

func (e *emitter) emit(ev Event) {
	if e == nil {
		return
	}
	if ev.TraceID == "" {
		ev.TraceID = e.traceID
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.enc.Encode(ev)
	if e.fl != nil {
		e.fl.Flush()
	}
}

// stream runs the batch and writes NDJSON events as results land.
func (b *batch) stream(ctx context.Context, w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	em := &emitter{enc: json.NewEncoder(w), traceID: b.trace.TraceID}
	if fl, ok := w.(http.Flusher); ok {
		em.fl = fl
	}
	resp := b.run(ctx, em)
	em.emit(Event{Type: "done", Done: &resp.Done})
}

// run executes the batch. With em == nil the results are collected
// into the returned Response; otherwise every circuit/check/sweep/rows
// record is additionally emitted as it becomes available.
func (b *batch) run(ctx context.Context, em *emitter) *Response {
	start := time.Now()
	resp := &Response{V: api.Version, Circuit: circuitInfo(b.c, batchSize(b.c, b.req, b.checks)),
		TraceID: b.trace.TraceID}
	em.emit(Event{Type: "circuit", Circuit: &resp.Circuit})

	prep := b.prep
	if prep == nil { // inline path: the batch pays its own preparation
		prep = core.Prepare(b.c)
	}
	v := prep.NewVerifier(b.opts)

	switch {
	case b.req.Sweep == nil:
		resp.Results = b.runChecks(ctx, v, em)
	case b.req.Sweep.Table1:
		resp.Rows, resp.Sweeps = b.runTable1(ctx, v, em)
	default:
		for _, d := range b.req.Sweep.Deltas {
			sw := b.runSweep(ctx, v, waveform.Time(d), em)
			resp.Sweeps = append(resp.Sweeps, sw)
			em.emit(Event{Type: "sweep", Sweep: &sw})
		}
	}
	resp.Done = DoneInfo{ChecksRun: b.checksRun, ElapsedUs: time.Since(start).Microseconds()}
	b.log.LogAttrs(ctx, slog.LevelInfo, "batch done",
		slog.String("circuit", b.c.Name), slog.Int("checks", b.checksRun),
		slog.Duration("elapsed", time.Since(start)))
	b.writeTrace(ctx)
	return resp
}

// writeTrace dumps the batch's span timeline to
// TraceDir/batch-<id>.trace.json when span recording is on.
func (b *batch) writeTrace(ctx context.Context) {
	if b.rec == nil {
		return
	}
	path := filepath.Join(b.srv.cfg.TraceDir, "batch-"+strconv.FormatInt(b.id, 10)+".trace.json")
	f, err := os.Create(path)
	if err == nil {
		err = b.rec.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		b.log.LogAttrs(ctx, slog.LevelWarn, "trace write failed",
			slog.String("path", path), slog.String("error", err.Error()))
		return
	}
	b.log.LogAttrs(ctx, slog.LevelInfo, "trace written",
		slog.String("path", path), slog.Int("events", b.rec.Len()))
}

// runOne executes one check on the server pool and logs its outcome
// with the batch-scoped logger (panics at Error, results at Debug).
func (b *batch) runOne(ctx context.Context, v *core.Verifier, req core.Request) (*core.Report, string) {
	if b.rec != nil {
		req.Tracer = b.rec
	}
	start := time.Now()
	rep, panicMsg := b.srv.runOne(ctx, v, req)
	lvl := slog.LevelDebug
	attrs := []slog.Attr{
		slog.String("sink", b.c.Net(rep.Sink).Name),
		slog.Int64("delta", int64(rep.Delta)),
		slog.String("verdict", rep.Final.String()),
		slog.Duration("elapsed", time.Since(start)),
	}
	if panicMsg != "" {
		lvl = slog.LevelError
		attrs = append(attrs, slog.String("panic", panicMsg))
	}
	b.log.LogAttrs(ctx, lvl, "check", attrs...)
	return rep, panicMsg
}

// emitCheck finalises one terminal check: it converts the report on
// the wire, stamps the distributed-trace fields, feeds the always-on
// flight recorder and the latency exemplar, and emits the "check"
// event — plus an in-band span summary when the submitter asked for
// tracing (req.Trace set). Trace stamping lives here, at the emission
// layer, so ResultFromReport stays a pure verdict conversion.
func (b *batch) emitCheck(em *emitter, i int, rep *core.Report, panicMsg string) CheckResult {
	res := ResultFromReport(b.c, i, rep)
	res.Error = panicMsg
	b.stampTrace(&res, rep)
	b.recordFlight(&res)
	em.emit(Event{Type: "check", Check: &res})
	if b.req.Trace != nil {
		em.emit(Event{Type: "spans", Spans: b.spanSummary(&res), TraceID: res.TraceID})
	}
	return res
}

// stampTrace attributes a terminal result to the batch's trace: a
// fresh span id, the wall-clock start (reconstructed for checks that
// never reached the engine), and per-stage durations in pipeline
// order. Zero stage time (cancelled before any stage ran) leaves
// StageUs nil.
func (b *batch) stampTrace(res *CheckResult, rep *core.Report) {
	res.TraceID = b.trace.TraceID
	res.SpanID = api.NewSpanID()
	started := rep.Started
	if started.IsZero() { // cancelled or panicked before the engine stamped it
		started = time.Now().Add(-rep.Elapsed)
	}
	res.StartUnixUs = started.UnixMicro()
	var total time.Duration
	for _, d := range rep.Stats.StageTime {
		total += d
	}
	if total > 0 {
		res.StageUs = make([]int64, core.NumStages)
		for st, d := range rep.Stats.StageTime {
			res.StageUs[st] = d.Microseconds()
		}
	}
}

// recordFlight stores the check in the server's flight recorder and
// pins it as the exemplar of its latency-histogram bucket.
func (b *batch) recordFlight(res *CheckResult) {
	rec := &obs.CheckRecord{
		TraceID: res.TraceID, SpanID: res.SpanID, Tenant: b.trace.Tenant,
		Batch: b.id, Sink: res.Sink, Delta: res.Delta,
		Verdict: res.Final, Error: res.Error,
		StartUnixUs: res.StartUnixUs, ElapsedUs: res.ElapsedUs, StageUs: res.StageUs,
		Propagations: res.Propagations, Backtracks: res.Backtracks,
	}
	if sh := b.req.Shard; sh != nil {
		rec.Worker, rec.Attempt, rec.Hedge = sh.Worker, sh.Attempt, sh.Hedge
	}
	b.srv.flight.Record(rec)
	b.srv.eng.CheckSeconds.SetExemplar(res.ElapsedUs*1000, res.TraceID)
}

// spanSummary packages a check's timings as the in-band span tree a
// coordinator folds into its cluster timeline: the check span plus
// stage sub-spans laid end to end from the check start.
func (b *batch) spanSummary(res *CheckResult) *api.SpanSummary {
	sum := &api.SpanSummary{
		Index: res.Index, TraceID: res.TraceID, SpanID: res.SpanID,
		Sink: res.Sink, Delta: res.Delta,
		StartUnixUs: res.StartUnixUs, DurUs: res.ElapsedUs, Verdict: res.Final,
	}
	if sh := b.req.Shard; sh != nil {
		sum.Worker, sum.Attempt = sh.Worker, sh.Attempt
	}
	var off int64
	for st, us := range res.StageUs {
		if us <= 0 {
			continue
		}
		sum.Spans = append(sum.Spans, api.Span{Name: core.Stage(st).String(), StartUs: off, DurUs: us})
		off += us
	}
	return sum
}

// baseRequest builds the core request template shared by the batch's
// checks: budgets, and the per-check deadline if any timeout applies.
func (b *batch) baseRequest() core.Request {
	req := core.Request{Budgets: b.budgets}
	return req
}

// withDeadline stamps the per-check deadline at submission time.
func (b *batch) withDeadline(req core.Request) core.Request {
	if b.checkTimeout > 0 {
		req.Deadline = time.Now().Add(b.checkTimeout)
	}
	return req
}

// runChecks executes an explicit batch: every check is independent,
// submitted to the pool in order, with results collected (and
// streamed) as they complete. A check whose submission the context
// cuts off still gets a terminal result: verdict C.
func (b *batch) runChecks(ctx context.Context, v *core.Verifier, em *emitter) []CheckResult {
	results := make([]CheckResult, len(b.checks))
	var wg sync.WaitGroup
	for i, rc := range b.checks {
		i, rc := i, rc
		req := b.baseRequest()
		req.Sink, req.Delta, req.VerifyOnly = rc.sink, rc.delta, rc.verifyOnly
		wg.Add(1)
		run := func() {
			defer wg.Done()
			rep, panicMsg := b.runOne(ctx, v, b.withDeadline(req))
			results[i] = b.emitCheck(em, i, rep, panicMsg)
		}
		if !b.srv.submit(ctx, run) {
			// Context over before a worker freed up: report the check as
			// cancelled without occupying the pool (v.Run on a dead
			// context returns Cancelled immediately; this is the same
			// answer without the queue round trip).
			wg.Done()
			results[i] = b.emitCheck(em, i, cancelledReport(rc.sink, rc.delta), "")
		}
	}
	wg.Wait()
	b.checksRun += len(b.checks)
	return results
}

// cancelledReport is the terminal record of a check that never reached
// a worker: the caller withdrew the question (drain deadline or batch
// timeout), exactly what core.Run returns for a dead context.
func cancelledReport(sink circuit.NetID, delta waveform.Time) *core.Report {
	return &core.Report{
		Sink: sink, Delta: delta,
		BeforeGITD: core.PossibleViolation, AfterGITD: core.StageSkipped,
		AfterStem: core.StageSkipped, CaseAnalysis: core.StageSkipped,
		Backtracks: -1, Final: core.Cancelled,
	}
}

// runSweep checks (o, δ) for every primary output o, exhaustively —
// every output gets exactly one terminal result (streamed as it
// lands) and the aggregate covers all of them. This is the serving
// analogue of core.RunAll without the first-witness early exit:
// batch clients want every answer, not just the circuit verdict.
func (b *batch) runSweep(ctx context.Context, v *core.Verifier, delta waveform.Time, em *emitter) SweepResult {
	pos := v.Circuit().PrimaryOutputs()
	reports := make([]*core.Report, len(pos))
	results := make([]CheckResult, len(pos))
	var wg sync.WaitGroup
	for i, po := range pos {
		i, po := i, po
		req := b.baseRequest()
		req.Sink, req.Delta = po, delta
		wg.Add(1)
		run := func() {
			defer wg.Done()
			rep, panicMsg := b.runOne(ctx, v, b.withDeadline(req))
			reports[i] = rep
			results[i] = b.emitCheck(em, i, rep, panicMsg)
		}
		if !b.srv.submit(ctx, run) {
			wg.Done()
			reports[i] = cancelledReport(po, delta)
			results[i] = b.emitCheck(em, i, reports[i], "")
		}
	}
	wg.Wait()
	b.checksRun += len(pos)
	// The aggregate is rebuilt from the raw reports, but the per-output
	// entries keep the emitted results so the trace attribution (and
	// any panic message) stamped at emission survives into the JSON
	// document — document and stream clients see the same results.
	sw := SweepFromReport(b.c, core.AggregateCircuit(delta, reports))
	sw.PerOutput = results
	return sw
}

// runSweepFirstWins reproduces core.RunAll's protocol over the shared
// pool: per-output checks fan out, a witnessed violation on output i
// cancels every running check on a later output, and the aggregate is
// built from the serial prefix — every report up to and including the
// smallest witnessing output — so the result is identical (stage by
// stage, witness by witness) to RunAll on the same circuit.
func (b *batch) runSweepFirstWins(ctx context.Context, v *core.Verifier, delta waveform.Time, em *emitter) *core.CircuitReport {
	pos := v.Circuit().PrimaryOutputs()
	reports := make([]*core.Report, len(pos))

	var mu sync.Mutex
	witness := len(pos) // smallest witnessing index so far
	cancels := make([]context.CancelFunc, len(pos))
	var wg sync.WaitGroup

	for i, po := range pos {
		i, po := i, po
		req := b.baseRequest()
		req.Sink, req.Delta = po, delta
		wg.Add(1)
		run := func() {
			defer wg.Done()
			mu.Lock()
			if i > witness {
				mu.Unlock()
				return // a smaller output already witnessed; discarded anyway
			}
			cctx, cancel := context.WithCancel(ctx)
			cancels[i] = cancel
			mu.Unlock()
			defer cancel()

			rep, panicMsg := b.runOne(cctx, v, b.withDeadline(req))
			mu.Lock()
			cancels[i] = nil
			reports[i] = rep
			if rep.Final == core.ViolationFound && i < witness {
				witness = i
				for j := i + 1; j < len(cancels); j++ {
					if cancels[j] != nil {
						cancels[j]()
					}
				}
			}
			keep := i <= witness
			mu.Unlock()
			b.countCheck()
			if keep {
				b.emitCheck(em, i, rep, panicMsg)
			}
		}
		if !b.srv.submit(ctx, run) {
			wg.Done()
			mu.Lock()
			reports[i] = cancelledReport(po, delta)
			keep := i <= witness
			mu.Unlock()
			b.countCheck()
			if keep {
				b.emitCheck(em, i, reports[i], "")
			}
		}
	}
	wg.Wait()

	kept := reports
	if witness < len(pos) {
		kept = reports[:witness+1]
	}
	return core.AggregateCircuit(delta, kept)
}

// countCheck tallies finished checks under the emitter-independent
// batch counter (pool workers race on it during first-wins sweeps).
func (b *batch) countCheck() {
	// checksRun is read only after wg.Wait(), but increments happen on
	// pool workers; keep them serialised.
	b.countMu.Lock()
	b.checksRun++
	b.countMu.Unlock()
}

// runTable1 reproduces harness.CircuitRowsParallel server-side: the
// exact circuit floating delay D (binary search per output, run as one
// sequential pool task), then the paper's row pair δ = D+1 and δ = D
// via first-witness-wins sweeps. Rows and per-δ aggregates are
// byte-identical to the in-process harness on the same netlist — the
// differential e2e suite enforces it.
func (b *batch) runTable1(ctx context.Context, v *core.Verifier, em *emitter) ([]Row, []SweepResult) {
	var (
		res *core.DelayResult
		err error
	)
	req := b.baseRequest()
	done := make(chan struct{})
	search := func() {
		defer close(done)
		defer func() {
			if p := recover(); p != nil {
				b.srv.panics.Add(1)
				err = badRequest("delay_search_panic", "delay search panicked: %v", p)
			}
		}()
		res, err = v.CircuitFloatingDelayCtx(ctx, req)
	}
	if !b.srv.submit(ctx, search) {
		em.emit(Event{Type: "error", Error: "cancelled before the delay search started"})
		return nil, nil
	}
	<-done
	if res != nil {
		b.checksRun += res.Checks
	}
	if err != nil && res == nil {
		em.emit(Event{Type: "error", Error: err.Error()})
		return nil, nil
	}

	delta := res.Delay
	top := v.Topological()
	mk := func(d waveform.Time, cr *core.CircuitReport) Row {
		return Row{
			Circuit: b.c.Name, Gates: b.c.NumGates(),
			Top: int64(top), Delta: int64(d),
			BeforeGITD: cr.BeforeGITD.String(), AfterGITD: cr.AfterGITD.String(),
			AfterStem: cr.AfterStem.String(), Backtracks: cr.Backtracks,
			CAResult: cr.CaseAnalysis.String(),
		}
	}

	start := time.Now()
	crHigh := b.runSweepFirstWins(ctx, v, delta.Add(1), em)
	rowHigh := mk(delta.Add(1), crHigh)
	rowHigh.CPUSeconds = time.Since(start).Seconds()

	start = time.Now()
	crLow := b.runSweepFirstWins(ctx, v, delta, em)
	rowLow := mk(delta, crLow)
	rowLow.CPUSeconds = time.Since(start).Seconds()
	rowLow.Exact = res.Exact && crLow.Final == core.ViolationFound && crHigh.Final == core.NoViolation
	rowLow.Upper = !rowLow.Exact

	rows := []Row{rowHigh, rowLow}
	sweeps := []SweepResult{SweepFromReport(b.c, crHigh), SweepFromReport(b.c, crLow)}
	for i := range sweeps {
		em.emit(Event{Type: "sweep", Sweep: &sweeps[i]})
	}
	em.emit(Event{Type: "rows", Rows: rows})
	return rows, sweeps
}
