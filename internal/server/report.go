package server

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/waveform"
)

// reportFromResult is the inverse of ResultFromReport: it rebuilds a
// core.Report from a wire CheckResult so a coordinator can aggregate
// per-output results it received from workers through the exact same
// code path a single daemon uses (core.AggregateCircuit +
// SweepFromReport). Round-tripping is lossless for every field the
// sweep aggregate reads; the differential cluster suite pins the
// resulting aggregates field-identical to a single daemon's.
func reportFromResult(c *circuit.Circuit, res *CheckResult) (*core.Report, error) {
	sink, ok := c.NetByName(res.Sink)
	if !ok {
		return nil, fmt.Errorf("result names unknown sink %q", res.Sink)
	}
	rep := &core.Report{
		Sink:  sink,
		Delta: waveform.Time(res.Delta),

		Backtracks:      res.Backtracks,
		Dominators:      res.Dominators,
		DominatorRounds: res.DominatorRounds,
		Propagations:    res.Propagations,
		Elapsed:         time.Duration(res.ElapsedUs) * time.Microsecond,
	}
	rep.Stats.Narrowings = res.Narrowings
	rep.Stats.QueueHighWater = res.QueueHighWater
	rep.Stats.Decisions = res.Decisions
	rep.Stats.StemSplits = res.StemSplits
	// Trace anchors survive the round trip too, so a coordinator's
	// flight records and timelines see the worker's wall clock; neither
	// field enters sweep aggregation.
	if res.StartUnixUs != 0 {
		rep.Started = time.UnixMicro(res.StartUnixUs)
	}
	for st := 0; st < len(rep.Stats.StageTime) && st < len(res.StageUs); st++ {
		rep.Stats.StageTime[st] = time.Duration(res.StageUs[st]) * time.Microsecond
	}
	for _, f := range []struct {
		name string
		dst  *core.Result
		src  string
	}{
		{"beforeGITD", &rep.BeforeGITD, res.BeforeGITD},
		{"afterGITD", &rep.AfterGITD, res.AfterGITD},
		{"afterStem", &rep.AfterStem, res.AfterStem},
		{"caseAnalysis", &rep.CaseAnalysis, res.CaseAnalysis},
		{"final", &rep.Final, res.Final},
	} {
		v, ok := core.ParseResult(f.src)
		if !ok {
			return nil, fmt.Errorf("result (%s, %d): unknown %s verdict %q", res.Sink, res.Delta, f.name, f.src)
		}
		*f.dst = v
	}
	if res.Witness != "" {
		vec, err := DecodeWitness(res.Witness)
		if err != nil {
			return nil, fmt.Errorf("result (%s, %d): %v", res.Sink, res.Delta, err)
		}
		rep.Witness = vec
		rep.WitnessSettle = waveform.Time(res.WitnessSettle)
	}
	return rep, nil
}
