// Package server implements lttad, the batch timing-check service: an
// HTTP/JSON front end over the core engine. A submission carries one
// netlist plus either an explicit batch of (sink, δ) checks or a
// δ-sweep over every primary output; the server parses and prepares
// the circuit once (core.Prepare) and fans the checks out over a
// bounded worker pool shared by all in-flight batches. Production
// concerns are handled here, not in core: bounded admission with
// 429 + Retry-After backpressure, per-check and per-batch timeouts
// mapped onto core.Run's context and budgets, panic isolation so one
// crashing check fails alone, NDJSON streaming of per-check results,
// graceful drain, and /healthz + /metrics observability.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/verilog"
	"repro/internal/waveform"
)

// CheckSpec names one timing check of an explicit batch.
type CheckSpec struct {
	// Sink is the net to check, by name.
	Sink string `json:"sink"`
	// Delta is the timing-check threshold δ.
	Delta int64 `json:"delta"`
	// VerifyOnly runs only the verify() stage (fixpoint + global
	// implications) and reports N or P without case analysis.
	VerifyOnly bool `json:"verifyOnly,omitempty"`
}

// SweepSpec describes a δ-sweep: every δ in Deltas is checked against
// every primary output. With Table1 set, Deltas is ignored — the
// server first computes the exact circuit floating delay D and then
// evaluates the paper's row pair δ = D+1 and δ = D, reproducing the
// harness protocol (including the first-witness-wins early exit)
// server-side.
type SweepSpec struct {
	Deltas []int64 `json:"deltas,omitempty"`
	Table1 bool    `json:"table1,omitempty"`
}

// OptionsSpec overrides the engine options, starting from the paper's
// full configuration (core.Default()).
type OptionsSpec struct {
	NoDominators bool `json:"noDominators,omitempty"`
	NoLearning   bool `json:"noLearning,omitempty"`
	NoStems      bool `json:"noStems,omitempty"`
	NoCone       bool `json:"noCone,omitempty"`
	// MaxBacktracks bounds the case analysis (0 = the default 200000,
	// negative = unlimited).
	MaxBacktracks int `json:"maxBacktracks,omitempty"`
	// MaxStemSplits caps stems correlated per check (0 = default 64).
	MaxStemSplits int `json:"maxStemSplits,omitempty"`
}

// BudgetsSpec maps onto core.Budgets: per-check work bounds beyond the
// option defaults. Exhaustion yields the verdict A (abandoned).
type BudgetsSpec struct {
	MaxBacktracks   int   `json:"maxBacktracks,omitempty"`
	MaxStemSplits   int   `json:"maxStemSplits,omitempty"`
	MaxPropagations int64 `json:"maxPropagations,omitempty"`
}

// Request is the body of POST /v1/check.
type Request struct {
	// Netlist is the circuit source text.
	Netlist string `json:"netlist"`
	// Format is "bench" (default) or "verilog".
	Format string `json:"format,omitempty"`
	// Name names the circuit in responses (default: the parser's).
	Name string `json:"name,omitempty"`
	// DefaultDelay is the gate delay used when the netlist does not
	// annotate one (default 10, the paper's experiments).
	DefaultDelay int64 `json:"defaultDelay,omitempty"`

	// Exactly one of Checks and Sweep must be present.
	Checks []CheckSpec `json:"checks,omitempty"`
	Sweep  *SweepSpec  `json:"sweep,omitempty"`

	Options *OptionsSpec `json:"options,omitempty"`
	Budgets *BudgetsSpec `json:"budgets,omitempty"`

	// CheckTimeoutMs bounds each check's wall clock; an expired check
	// reports the terminal verdict C (cancelled). The server's own
	// per-check cap, when configured, wins if smaller.
	CheckTimeoutMs int64 `json:"checkTimeoutMs,omitempty"`
	// TimeoutMs bounds the whole batch the same way.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`

	// Stream requests an NDJSON response: one Event per line as results
	// become available, instead of a single Response document.
	Stream bool `json:"stream,omitempty"`
}

// CircuitInfo describes the parsed netlist, echoed first in every
// response. Checks is the number of checks the batch was admitted
// with — for streaming clients, the exact number of "check" events the
// response will carry (table1 sweeps discover their checks during the
// delay search and announce -1).
type CircuitInfo struct {
	Name    string   `json:"name"`
	Gates   int      `json:"gates"`
	Nets    int      `json:"nets"`
	PIs     int      `json:"pis"`
	POs     int      `json:"pos"`
	Levels  int      `json:"levels"`
	PINames []string `json:"piNames"`
	Checks  int      `json:"checks"`
}

// CheckResult serialises one core.Report. Verdicts use the paper's
// single-letter codes (P, N, V, A, C, -). Witness is the violating
// input vector as a bit string indexed parallel to PINames.
type CheckResult struct {
	Sink  string `json:"sink"`
	Delta int64  `json:"delta"`
	// Index is the check's position in the batch (explicit batches) or
	// the primary-output index (sweeps).
	Index int `json:"index"`

	BeforeGITD   string `json:"beforeGITD"`
	AfterGITD    string `json:"afterGITD"`
	AfterStem    string `json:"afterStem"`
	CaseAnalysis string `json:"caseAnalysis"`
	Final        string `json:"final"`
	Backtracks   int    `json:"backtracks"`

	Witness       string `json:"witness,omitempty"`
	WitnessSettle int64  `json:"witnessSettle,omitempty"`

	Dominators      int   `json:"dominators"`
	DominatorRounds int   `json:"dominatorRounds"`
	Propagations    int64 `json:"propagations"`
	Narrowings      int64 `json:"narrowings"`
	QueueHighWater  int   `json:"queueHighWater"`
	Decisions       int64 `json:"decisions"`
	StemSplits      int   `json:"stemSplits"`
	ElapsedUs       int64 `json:"elapsedUs"`

	// Error reports a panic-isolated worker failure; the check carries
	// the sound verdict A (the engine gave up) and the batch continues.
	Error string `json:"error,omitempty"`
}

// SweepResult aggregates one δ of a sweep, mirroring
// core.CircuitReport. PerOutput lists the per-output results that
// entered the aggregate: every output for plain sweeps, the serial
// prefix up to the first witnessing output for table1 sweeps.
type SweepResult struct {
	Delta         int64         `json:"delta"`
	BeforeGITD    string        `json:"beforeGITD"`
	AfterGITD     string        `json:"afterGITD"`
	AfterStem     string        `json:"afterStem"`
	CaseAnalysis  string        `json:"caseAnalysis"`
	Final         string        `json:"final"`
	Backtracks    int           `json:"backtracks"`
	WitnessOutput int           `json:"witnessOutput"`
	Propagations  int64         `json:"propagations"`
	Dominators    int           `json:"dominators"`
	Rounds        int           `json:"dominatorRounds"`
	PerOutput     []CheckResult `json:"perOutput"`
}

// Row is one reproduced Table-1 line, field-compatible with the
// harness's JSON row rendering.
type Row struct {
	Circuit    string  `json:"circuit"`
	Gates      int     `json:"gates"`
	Top        int64   `json:"top"`
	Delta      int64   `json:"delta"`
	Exact      bool    `json:"exact"`
	Upper      bool    `json:"upperBound"`
	BeforeGITD string  `json:"beforeGITD"`
	AfterGITD  string  `json:"afterGITD"`
	AfterStem  string  `json:"afterStemCorrelation"`
	Backtracks int     `json:"backtracks"`
	CAResult   string  `json:"caseAnalysis"`
	CPUSeconds float64 `json:"cpuSeconds"`
}

// Response is the non-streaming body of POST /v1/check.
type Response struct {
	Circuit CircuitInfo   `json:"circuit"`
	Results []CheckResult `json:"results,omitempty"`
	Sweeps  []SweepResult `json:"sweeps,omitempty"`
	Rows    []Row         `json:"rows,omitempty"`
	Done    DoneInfo      `json:"done"`
}

// DoneInfo closes a batch: how many checks ran and the batch wall
// clock.
type DoneInfo struct {
	ChecksRun int   `json:"checksRun"`
	ElapsedUs int64 `json:"elapsedUs"`
}

// Event is one NDJSON line of a streaming response. Type is "circuit"
// (first line), "check", "sweep", "rows", "error", or "done" (always
// the last line).
type Event struct {
	Type    string       `json:"type"`
	Circuit *CircuitInfo `json:"circuit,omitempty"`
	Check   *CheckResult `json:"check,omitempty"`
	Sweep   *SweepResult `json:"sweep,omitempty"`
	Rows    []Row        `json:"rows,omitempty"`
	Error   string       `json:"error,omitempty"`
	Done    *DoneInfo    `json:"done,omitempty"`
}

// ErrorBody is the structured body of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo carries a stable machine-readable code plus a human
// message.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError is an error with an HTTP status and a stable code; every
// request-decoding failure becomes one (never a panic).
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

// decodeRequest reads and validates a request body. Every failure maps
// to a structured 4xx — arbitrary bytes must never panic (enforced by
// FuzzDecodeRequest).
func decodeRequest(r io.Reader) (*Request, *apiError) {
	dec := json.NewDecoder(r)
	var req Request
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge,
				code: "body_too_large", msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return nil, badRequest("bad_json", "decoding request: %v", err)
	}
	if strings.TrimSpace(req.Netlist) == "" {
		return nil, badRequest("missing_netlist", "request carries no netlist")
	}
	switch req.Format {
	case "", "bench", "verilog":
	default:
		return nil, badRequest("bad_format", "unknown netlist format %q (want bench or verilog)", req.Format)
	}
	if req.DefaultDelay < 0 {
		return nil, badRequest("bad_delay", "defaultDelay must be ≥ 0, got %d", req.DefaultDelay)
	}
	if req.CheckTimeoutMs < 0 || req.TimeoutMs < 0 {
		return nil, badRequest("bad_timeout", "timeouts must be ≥ 0")
	}
	hasChecks := len(req.Checks) > 0
	hasSweep := req.Sweep != nil
	if hasChecks == hasSweep {
		return nil, badRequest("bad_workload", "exactly one of checks and sweep must be present")
	}
	if hasSweep && !req.Sweep.Table1 && len(req.Sweep.Deltas) == 0 {
		return nil, badRequest("bad_sweep", "sweep needs deltas (or table1)")
	}
	for i, cs := range req.Checks {
		if strings.TrimSpace(cs.Sink) == "" {
			return nil, badRequest("bad_check", "check %d names no sink", i)
		}
	}
	return &req, nil
}

// parseNetlist builds the circuit from the request's netlist text.
func parseNetlist(req *Request) (*circuit.Circuit, *apiError) {
	delay := req.DefaultDelay
	if delay == 0 {
		delay = 10
	}
	var (
		c   *circuit.Circuit
		err error
	)
	if req.Format == "verilog" {
		c, err = verilog.ParseString(req.Netlist, verilog.Options{DefaultDelay: delay})
	} else {
		c, err = circuit.ParseBenchString(req.Netlist, circuit.BenchOptions{DefaultDelay: delay, Name: req.Name})
	}
	if err != nil {
		return nil, badRequest("bad_netlist", "parsing netlist: %v", err)
	}
	if req.Name != "" {
		c.Name = req.Name
	}
	return c, nil
}

// resolvedCheck is a CheckSpec bound to a net id.
type resolvedCheck struct {
	sink       circuit.NetID
	delta      waveform.Time
	verifyOnly bool
}

// resolveChecks binds the batch's sink names to nets.
func resolveChecks(c *circuit.Circuit, specs []CheckSpec) ([]resolvedCheck, *apiError) {
	out := make([]resolvedCheck, len(specs))
	for i, cs := range specs {
		id, ok := c.NetByName(cs.Sink)
		if !ok {
			return nil, badRequest("unknown_sink", "check %d: no net named %q", i, cs.Sink)
		}
		out[i] = resolvedCheck{sink: id, delta: waveform.Time(cs.Delta), verifyOnly: cs.VerifyOnly}
	}
	return out, nil
}

// engineOptions maps the request options onto core.Options, starting
// from the paper's defaults exactly like the harness does.
func engineOptions(spec *OptionsSpec) core.Options {
	opts := core.Default()
	if spec == nil {
		return opts
	}
	if spec.NoDominators {
		opts.UseDominators = false
	}
	if spec.NoLearning {
		opts.UseLearning = false
	}
	if spec.NoStems {
		opts.UseStemCorrelation = false
	}
	if spec.NoCone {
		opts.UseConeSlicing = false
	}
	switch {
	case spec.MaxBacktracks < 0:
		opts.MaxBacktracks = 0 // unlimited
	case spec.MaxBacktracks > 0:
		opts.MaxBacktracks = spec.MaxBacktracks
	}
	if spec.MaxStemSplits != 0 {
		opts.MaxStemSplits = spec.MaxStemSplits
	}
	return opts
}

// engineBudgets maps the request budgets onto core.Budgets.
func engineBudgets(spec *BudgetsSpec) core.Budgets {
	if spec == nil {
		return core.Budgets{}
	}
	return core.Budgets{
		MaxBacktracks:   spec.MaxBacktracks,
		MaxStemSplits:   spec.MaxStemSplits,
		MaxPropagations: spec.MaxPropagations,
	}
}

// circuitInfo summarises the parsed netlist.
func circuitInfo(c *circuit.Circuit, checks int) CircuitInfo {
	st := c.Stats()
	pis := c.PrimaryInputs()
	names := make([]string, len(pis))
	for i, pi := range pis {
		names[i] = c.Net(pi).Name
	}
	return CircuitInfo{
		Name: c.Name, Gates: st.Gates, Nets: st.Nets,
		PIs: st.PIs, POs: st.POs, Levels: st.Levels,
		PINames: names, Checks: checks,
	}
}

// ResultFromReport serialises one finished check. It is exported so
// the differential tests compare server responses against in-process
// reports through the same conversion. Wall-clock fields (ElapsedUs)
// are the only non-deterministic ones.
func ResultFromReport(c *circuit.Circuit, index int, rep *core.Report) CheckResult {
	res := CheckResult{
		Sink:  c.Net(rep.Sink).Name,
		Delta: int64(rep.Delta),
		Index: index,

		BeforeGITD:   rep.BeforeGITD.String(),
		AfterGITD:    rep.AfterGITD.String(),
		AfterStem:    rep.AfterStem.String(),
		CaseAnalysis: rep.CaseAnalysis.String(),
		Final:        rep.Final.String(),
		Backtracks:   rep.Backtracks,

		Dominators:      rep.Dominators,
		DominatorRounds: rep.DominatorRounds,
		Propagations:    rep.Propagations,
		Narrowings:      rep.Stats.Narrowings,
		QueueHighWater:  rep.Stats.QueueHighWater,
		Decisions:       rep.Stats.Decisions,
		StemSplits:      rep.Stats.StemSplits,
		ElapsedUs:       rep.Elapsed.Microseconds(),
	}
	if len(rep.Witness) > 0 {
		res.Witness = rep.Witness.String()
		res.WitnessSettle = int64(rep.WitnessSettle)
	}
	return res
}

// SweepFromReport serialises a circuit-level aggregate (exported so
// the differential tests compare server sweeps against in-process
// core.RunAll reports through the same conversion).
func SweepFromReport(c *circuit.Circuit, cr *core.CircuitReport) SweepResult {
	sw := SweepResult{
		Delta:         int64(cr.Delta),
		BeforeGITD:    cr.BeforeGITD.String(),
		AfterGITD:     cr.AfterGITD.String(),
		AfterStem:     cr.AfterStem.String(),
		CaseAnalysis:  cr.CaseAnalysis.String(),
		Final:         cr.Final.String(),
		Backtracks:    cr.Backtracks,
		WitnessOutput: cr.WitnessOutput,
		Propagations:  cr.Propagations,
		Dominators:    cr.Dominators,
		Rounds:        cr.DominatorRounds,
	}
	for i, rep := range cr.PerOutput {
		sw.PerOutput = append(sw.PerOutput, ResultFromReport(c, i, rep))
	}
	return sw
}

// DecodeWitness parses a CheckResult witness bit string back into a
// simulation vector (indexed parallel to CircuitInfo.PINames).
func DecodeWitness(s string) (sim.Vector, error) {
	v := make(sim.Vector, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			v[i] = 0
		case '1':
			v[i] = 1
		default:
			return nil, fmt.Errorf("server: witness bit %d is %q, want 0 or 1", i, s[i])
		}
	}
	return v, nil
}
