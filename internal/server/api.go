// Package server implements lttad, the batch timing-check service: an
// HTTP/JSON front end over the core engine. A submission carries one
// netlist plus either an explicit batch of (sink, δ) checks or a
// δ-sweep over every primary output; the server parses and prepares
// the circuit once (core.Prepare) and fans the checks out over a
// bounded worker pool shared by all in-flight batches — or, with the
// content-addressed registry, references a previously uploaded
// circuit by hash and reuses its cached core.Prepared outright.
// Production concerns are handled here, not in core: bounded
// admission with 429 + Retry-After backpressure, per-check and
// per-batch timeouts mapped onto core.Run's context and budgets,
// panic isolation so one crashing check fails alone, NDJSON streaming
// of per-check results, graceful drain, and /healthz + /metrics
// observability.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/verilog"
	"repro/internal/waveform"
)

// The wire vocabulary moved to the shared versioned internal/api
// package (consumed by internal/client directly, so the client no
// longer imports the server). These aliases keep the server's
// historical surface — server.Request, server.Response, … — valid for
// existing callers.
type (
	CheckSpec       = api.CheckSpec
	SweepSpec       = api.SweepSpec
	OptionsSpec     = api.OptionsSpec
	BudgetsSpec     = api.BudgetsSpec
	Request         = api.Request
	DelayAnnotation = api.DelayAnnotation
	UploadRequest   = api.UploadRequest
	UploadResponse  = api.UploadResponse
	CircuitInfo     = api.CircuitInfo
	CheckResult     = api.CheckResult
	SweepResult     = api.SweepResult
	Row             = api.Row
	Response        = api.Response
	DoneInfo        = api.DoneInfo
	Event           = api.Event
	ErrorBody       = api.ErrorBody
	ErrorInfo       = api.ErrorInfo
	Health          = api.Health
	Metrics         = api.Metrics
)

// apiError is an error with an HTTP status and a stable code; every
// request-decoding failure becomes one (never a panic). hash, when
// set, is echoed in the error body (the unknown_hash case).
type apiError struct {
	status int
	code   string
	msg    string
	hash   api.Hash
}

func (e *apiError) Error() string { return e.msg }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

// decodeBody decodes one JSON document into dst, mapping failures to
// structured 4xx errors (never a panic — enforced by FuzzDecodeRequest).
func decodeBody(r io.Reader, dst any) *apiError {
	if err := json.NewDecoder(r).Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				code: "body_too_large", msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return badRequest("bad_json", "decoding request: %v", err)
	}
	return nil
}

// unsupportedVersion is the structured rejection of an envelope from a
// future protocol revision.
func unsupportedVersion(v int) *apiError {
	return badRequest("unsupported_version", "protocol version %d not supported (this server speaks v%d)", v, api.Version)
}

// decodeRequest reads and validates a check-request body. With
// byHash set the request is hash-addressed: the circuit identity
// lives in the URL, so the netlist fields must be absent.
func decodeRequest(r io.Reader, byHash bool) (*Request, *apiError) {
	var req Request
	if apiErr := decodeBody(r, &req); apiErr != nil {
		return nil, apiErr
	}
	if !api.AcceptsVersion(req.V) {
		return nil, unsupportedVersion(req.V)
	}
	if byHash {
		if strings.TrimSpace(req.Netlist) != "" || req.Format != "" || req.Name != "" || req.DefaultDelay != 0 {
			return nil, badRequest("netlist_in_hash_check",
				"hash-addressed checks carry no netlist fields; the circuit identity is the URL hash")
		}
	} else {
		if strings.TrimSpace(req.Netlist) == "" {
			return nil, badRequest("missing_netlist", "request carries no netlist")
		}
		switch req.Format {
		case "", "bench", "verilog":
		default:
			return nil, badRequest("bad_format", "unknown netlist format %q (want bench or verilog)", req.Format)
		}
		if req.DefaultDelay < 0 {
			return nil, badRequest("bad_delay", "defaultDelay must be ≥ 0, got %d", req.DefaultDelay)
		}
	}
	if req.CheckTimeoutMs < 0 || req.TimeoutMs < 0 {
		return nil, badRequest("bad_timeout", "timeouts must be ≥ 0")
	}
	hasChecks := len(req.Checks) > 0
	hasSweep := req.Sweep != nil
	if hasChecks == hasSweep {
		return nil, badRequest("bad_workload", "exactly one of checks and sweep must be present")
	}
	if hasSweep && !req.Sweep.Table1 && len(req.Sweep.Deltas) == 0 {
		return nil, badRequest("bad_sweep", "sweep needs deltas (or table1)")
	}
	for i, cs := range req.Checks {
		if strings.TrimSpace(cs.Sink) == "" {
			return nil, badRequest("bad_check", "check %d names no sink", i)
		}
	}
	return &req, nil
}

// parseNetlist builds a circuit from netlist source text. The
// caller counts the parse (s.netlistParses) so cache-hit paths can
// prove they never reach here.
func parseNetlist(netlist, format, name string, defaultDelay int64) (*circuit.Circuit, *apiError) {
	if defaultDelay == 0 {
		defaultDelay = 10
	}
	var (
		c   *circuit.Circuit
		err error
	)
	if format == "verilog" {
		c, err = verilog.ParseString(netlist, verilog.Options{DefaultDelay: defaultDelay})
	} else {
		c, err = circuit.ParseBenchString(netlist, circuit.BenchOptions{DefaultDelay: defaultDelay, Name: name})
	}
	if err != nil {
		return nil, badRequest("bad_netlist", "parsing netlist: %v", err)
	}
	if name != "" {
		c.Name = name
	}
	return c, nil
}

// resolvedCheck is a CheckSpec bound to a net id.
type resolvedCheck struct {
	sink       circuit.NetID
	delta      waveform.Time
	verifyOnly bool
}

// resolveChecks binds the batch's sink names to nets.
func resolveChecks(c *circuit.Circuit, specs []CheckSpec) ([]resolvedCheck, *apiError) {
	out := make([]resolvedCheck, len(specs))
	for i, cs := range specs {
		id, ok := c.NetByName(cs.Sink)
		if !ok {
			return nil, badRequest("unknown_sink", "check %d: no net named %q", i, cs.Sink)
		}
		out[i] = resolvedCheck{sink: id, delta: waveform.Time(cs.Delta), verifyOnly: cs.VerifyOnly}
	}
	return out, nil
}

// engineOptions maps the request options onto core.Options, starting
// from the paper's defaults exactly like the harness does.
func engineOptions(spec *OptionsSpec) core.Options {
	opts := core.Default()
	// Served batches default warm-start off so response work counters
	// stay deterministic under the pool's scheduling (see OptionsSpec).
	opts.UseWarmStart = false
	if spec == nil {
		return opts
	}
	opts.UseWarmStart = spec.WarmStart
	if spec.NoDominators {
		opts.UseDominators = false
	}
	if spec.NoLearning {
		opts.UseLearning = false
	}
	if spec.NoStems {
		opts.UseStemCorrelation = false
	}
	if spec.NoCone {
		opts.UseConeSlicing = false
	}
	switch {
	case spec.MaxBacktracks < 0:
		opts.MaxBacktracks = 0 // unlimited
	case spec.MaxBacktracks > 0:
		opts.MaxBacktracks = spec.MaxBacktracks
	}
	if spec.MaxStemSplits != 0 {
		opts.MaxStemSplits = spec.MaxStemSplits
	}
	return opts
}

// engineBudgets maps the request budgets onto core.Budgets.
func engineBudgets(spec *BudgetsSpec) core.Budgets {
	if spec == nil {
		return core.Budgets{}
	}
	return core.Budgets{
		MaxBacktracks:   spec.MaxBacktracks,
		MaxStemSplits:   spec.MaxStemSplits,
		MaxPropagations: spec.MaxPropagations,
	}
}

// circuitInfo summarises the parsed netlist.
func circuitInfo(c *circuit.Circuit, checks int) CircuitInfo {
	st := c.Stats()
	pis := c.PrimaryInputs()
	names := make([]string, len(pis))
	for i, pi := range pis {
		names[i] = c.Net(pi).Name
	}
	return CircuitInfo{
		Name: c.Name, Gates: st.Gates, Nets: st.Nets,
		PIs: st.PIs, POs: st.POs, Levels: st.Levels,
		PINames: names, Checks: checks,
	}
}

// ResultFromReport serialises one finished check. It is exported so
// the differential tests compare server responses against in-process
// reports through the same conversion. Wall-clock fields (ElapsedUs)
// are the only non-deterministic ones.
func ResultFromReport(c *circuit.Circuit, index int, rep *core.Report) CheckResult {
	res := CheckResult{
		Sink:  c.Net(rep.Sink).Name,
		Delta: int64(rep.Delta),
		Index: index,

		BeforeGITD:   rep.BeforeGITD.String(),
		AfterGITD:    rep.AfterGITD.String(),
		AfterStem:    rep.AfterStem.String(),
		CaseAnalysis: rep.CaseAnalysis.String(),
		Final:        rep.Final.String(),
		Backtracks:   rep.Backtracks,

		Dominators:      rep.Dominators,
		DominatorRounds: rep.DominatorRounds,
		Propagations:    rep.Propagations,
		Narrowings:      rep.Stats.Narrowings,
		QueueHighWater:  rep.Stats.QueueHighWater,
		Decisions:       rep.Stats.Decisions,
		StemSplits:      rep.Stats.StemSplits,
		ElapsedUs:       rep.Elapsed.Microseconds(),
	}
	if len(rep.Witness) > 0 {
		res.Witness = rep.Witness.String()
		res.WitnessSettle = int64(rep.WitnessSettle)
	}
	return res
}

// SweepFromReport serialises a circuit-level aggregate (exported so
// the differential tests compare server sweeps against in-process
// core.RunAll reports through the same conversion).
func SweepFromReport(c *circuit.Circuit, cr *core.CircuitReport) SweepResult {
	sw := SweepResult{
		Delta:         int64(cr.Delta),
		BeforeGITD:    cr.BeforeGITD.String(),
		AfterGITD:     cr.AfterGITD.String(),
		AfterStem:     cr.AfterStem.String(),
		CaseAnalysis:  cr.CaseAnalysis.String(),
		Final:         cr.Final.String(),
		Backtracks:    cr.Backtracks,
		WitnessOutput: cr.WitnessOutput,
		Propagations:  cr.Propagations,
		Dominators:    cr.Dominators,
		Rounds:        cr.DominatorRounds,
	}
	for i, rep := range cr.PerOutput {
		sw.PerOutput = append(sw.PerOutput, ResultFromReport(c, i, rep))
	}
	return sw
}

// DecodeWitness parses a CheckResult witness bit string back into a
// simulation vector (indexed parallel to CircuitInfo.PINames).
func DecodeWitness(s string) (sim.Vector, error) {
	v := make(sim.Vector, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			v[i] = 0
		case '1':
			v[i] = 1
		default:
			return nil, fmt.Errorf("server: witness bit %d is %q, want 0 or 1", i, s[i])
		}
	}
	return v, nil
}
