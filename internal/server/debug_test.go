package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
)

// debugChecks fetches and decodes GET /debug/checks from one tier.
func debugChecks(t *testing.T, base string) struct {
	obs.FlightSnapshot
	LatencyExemplars []obs.BucketExemplar `json:"latencyExemplars"`
} {
	t.Helper()
	var body struct {
		obs.FlightSnapshot
		LatencyExemplars []obs.BucketExemplar `json:"latencyExemplars"`
	}
	resp, err := http.Get(base + "/debug/checks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/checks: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET /debug/checks content type %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding /debug/checks: %v", err)
	}
	return body
}

// TestDebugChecksEndpoint runs a traced sweep on a plain daemon and
// reads GET /debug/checks back: the flight recorder must hold every
// check of the batch under the client's trace id, the slowest entries
// must carry stage durations, and the latency histogram must expose
// trace-id exemplars.
func TestDebugChecksEndpoint(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 4, FlightLast: 64, FlightSlowest: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	// Before any batch: valid JSON, zero records.
	if body := debugChecks(t, ts.URL); body.Recorded != 0 || len(body.Last) != 0 {
		t.Fatalf("fresh recorder not empty: %+v", body)
	}

	traceID := api.NewTraceID()
	src := gen.C17(10)
	resp, err := cl.Check(context.Background(), server.Request{
		Netlist: circuit.BenchString(src), Name: "c17",
		Sweep: &server.SweepSpec{Deltas: []int64{40, 51}},
		Trace: &api.TraceContext{TraceID: traceID, Tenant: "acme"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ran := int(resp.Done.ChecksRun)

	body := debugChecks(t, ts.URL)
	if int(body.Recorded) != ran || len(body.Last) != ran {
		t.Fatalf("recorded %d/%d flight records, batch ran %d checks",
			body.Recorded, len(body.Last), ran)
	}
	if len(body.Slowest) == 0 {
		t.Fatal("no slowest records after a batch")
	}
	for _, rec := range body.Last {
		if rec.TraceID != traceID {
			t.Errorf("flight record for %q carries trace %q, want the client's %q",
				rec.Sink, rec.TraceID, traceID)
		}
		if rec.Tenant != "acme" {
			t.Errorf("flight record for %q lost the tenant: %+v", rec.Sink, rec)
		}
		if rec.Verdict == "" || rec.StartUnixUs == 0 {
			t.Errorf("flight record incomplete: %+v", rec)
		}
	}
	// The slowest check of a real sweep ran at least the fixpoint
	// stage, so its stage breakdown must be populated.
	if slow := body.Slowest[0]; len(slow.StageUs) == 0 {
		t.Errorf("slowest record has no stage durations: %+v", slow)
	}
	if len(body.LatencyExemplars) == 0 {
		t.Fatal("latency histogram has no exemplars after a batch")
	}
	for _, ex := range body.LatencyExemplars {
		if ex.TraceID != traceID {
			t.Errorf("exemplar in bucket le=%s carries trace %q, want %q", ex.LE, ex.TraceID, traceID)
		}
	}
}

// TestDebugChecksUntracedBatch: a batch submitted without a trace
// context still lands in the flight recorder — the daemon mints the
// trace id itself (always-on recording is the point of the recorder).
func TestDebugChecksUntracedBatch(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()
	cl := client.New(ts.URL)

	src := gen.C17(10)
	local, err := circuit.ParseBenchString(circuit.BenchString(src), circuit.BenchOptions{DefaultDelay: 10, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	po := local.Net(local.PrimaryOutputs()[0]).Name
	if _, err := cl.Check(context.Background(), server.Request{
		Netlist: circuit.BenchString(src), Name: "c17",
		Checks: []server.CheckSpec{{Sink: po, Delta: 51}},
	}); err != nil {
		t.Fatal(err)
	}

	body := debugChecks(t, ts.URL)
	if body.Recorded != 1 || len(body.Last) != 1 {
		t.Fatalf("untraced batch not recorded: %+v", body.FlightSnapshot)
	}
	if rec := body.Last[0]; !api.ValidTraceID(rec.TraceID) || rec.Sink != po {
		t.Fatalf("untraced record missing minted trace id or sink: %+v", rec)
	}
}
