package server_test

import (
	"bufio"
	"context"
	"errors"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/delay"
	"repro/internal/server"
)

// faultSpec describes what a faultProxy does to NDJSON response
// bodies flowing worker → coordinator. Zero value: pass through.
type faultSpec struct {
	// cutAfterLines > 0 aborts the response after forwarding that many
	// lines — no chunked terminator, exactly the wire signature of a
	// worker crashing mid-stream.
	cutAfterLines int
	// delayPerLine sleeps before releasing each line, simulating a
	// slow worker (and guaranteeing streams are still in flight when a
	// test injects its fault).
	delayPerLine time.Duration
	// duplicateEvery > 0 forwards every Nth line twice, simulating an
	// at-least-once transport replaying events.
	duplicateEvery int
	// holdCheckRequest parks check submissions this long before
	// forwarding them upstream. TCP makes this the only way to
	// guarantee a worker kill strands a shard: a fast worker writes its
	// whole response into the socket buffer within microseconds, after
	// which killing it cuts nothing — the shard must still be on the
	// coordinator's side of the wire when the kill lands.
	holdCheckRequest time.Duration
	// once disarms the proxy at the first response it faults, so
	// retries after the fault pass through clean.
	once bool
}

// faultProxy is a line-oriented fault injector in front of one worker:
// a reverse proxy that forwards everything verbatim except NDJSON
// bodies, which stream through a faultReader. Health probes and
// registry traffic (plain JSON) are never touched, so a "crashed"
// worker still resurrects through the coordinator's probe path.
type faultProxy struct {
	addr string
	hs   *http.Server

	mu    sync.Mutex
	spec  faultSpec
	armed bool
}

func newFaultProxy(t *testing.T, target string, spec faultSpec) *faultProxy {
	t.Helper()
	u, err := url.Parse(target)
	if err != nil {
		t.Fatal(err)
	}
	p := &faultProxy{spec: spec, armed: true}
	rp := httputil.NewSingleHostReverseProxy(u)
	rp.FlushInterval = -1 // forward each line as it arrives
	// Aborted copies are this proxy's purpose; keep them off the test log.
	rp.ErrorLog = log.New(io.Discard, "", 0)
	rp.ModifyResponse = func(resp *http.Response) error {
		if !strings.Contains(resp.Header.Get("Content-Type"), "ndjson") {
			return nil
		}
		resp.Body = &faultReader{p: p, src: resp.Body, br: bufio.NewReader(resp.Body)}
		return nil
	}
	// An unreachable upstream must look like a crashed worker — a dead
	// connection — not like a gateway answering 502.
	rp.ErrorHandler = func(http.ResponseWriter, *http.Request, error) {
		panic(http.ErrAbortHandler)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.addr = "http://" + lis.Addr().String()
	p.hs = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if spec, armed := p.current(); armed && spec.holdCheckRequest > 0 && strings.HasSuffix(r.URL.Path, "/check") {
			time.Sleep(spec.holdCheckRequest)
		}
		rp.ServeHTTP(w, r)
	})}
	go func() { _ = p.hs.Serve(lis) }()
	t.Cleanup(func() { _ = p.hs.Close() })
	return p
}

// current returns the spec to apply to a new line, accounting for a
// once-disarm.
func (p *faultProxy) current() (faultSpec, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spec, p.armed
}

// setSpec swaps the proxy's fault mid-test (e.g. to single out a
// victim chosen after routing is known) and re-arms it.
func (p *faultProxy) setSpec(spec faultSpec) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.spec, p.armed = spec, true
}

func (p *faultProxy) disarmIfOnce() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spec.once {
		p.armed = false
	}
}

var errFaultCut = errors.New("faultproxy: cut injected")

// faultReader applies a faultSpec line by line. Returning an error
// from Read makes ReverseProxy abort the downstream copy, which closes
// the coordinator-facing connection without a terminator — the
// truncated-stream signature the client package types as retryable.
type faultReader struct {
	p   *faultProxy
	src io.ReadCloser
	br  *bufio.Reader

	buf   []byte
	lines int
}

func (fr *faultReader) Read(out []byte) (int, error) {
	for len(fr.buf) == 0 {
		line, err := fr.br.ReadBytes('\n')
		if len(line) > 0 {
			fr.lines++
			spec, armed := fr.p.current()
			if !armed {
				spec = faultSpec{}
			}
			if spec.cutAfterLines > 0 && fr.lines > spec.cutAfterLines {
				fr.p.disarmIfOnce()
				return 0, errFaultCut
			}
			if spec.delayPerLine > 0 {
				time.Sleep(spec.delayPerLine)
			}
			fr.buf = line
			if spec.duplicateEvery > 0 && fr.lines%spec.duplicateEvery == 0 {
				fr.buf = append(append([]byte(nil), line...), line...)
				fr.p.disarmIfOnce()
			}
		}
		if err != nil {
			if len(fr.buf) > 0 {
				break // deliver the partial tail first; err resurfaces next call
			}
			return 0, err
		}
	}
	n := copy(out, fr.buf)
	fr.buf = fr.buf[n:]
	return n, nil
}

func (fr *faultReader) Close() error { return fr.src.Close() }

// clusterSweepFixture stands up N workers behind fault proxies, a
// coordinator over the proxies, and an unharmed reference daemon, and
// returns everything a δ-sweep fault test needs.
type clusterSweepFixture struct {
	local   *circuit.Circuit
	bench   string
	deltas  []int64
	want    int // client-facing checks in the sweep
	proxies []*faultProxy
	coord   *server.Coordinator
	coordCl *client.Client
	refCl   *client.Client
}

func newClusterSweepFixture(t *testing.T, name string, nWorkers int, spec faultSpec, ccfg server.CoordConfig) *clusterSweepFixture {
	t.Helper()
	e := suiteCircuit(t, name)
	bench := circuit.BenchString(e.Circuit)
	local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	top := int64(delay.New(local).Topological())
	deltas := []int64{top, top + 1, top + 2}

	fx := &clusterSweepFixture{
		local: local, bench: bench, deltas: deltas,
		want: len(deltas) * len(local.PrimaryOutputs()),
	}
	addrs := make([]string, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w := startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
		t.Cleanup(w.stop)
		proxy := newFaultProxy(t, w.addr, spec)
		fx.proxies = append(fx.proxies, proxy)
		addrs[i] = proxy.addr
	}
	ccfg.Workers = addrs
	fx.coord = server.NewCoordinator(ccfg)
	cts := httptest.NewServer(fx.coord)
	t.Cleanup(cts.Close)
	t.Cleanup(func() { _ = fx.coord.Shutdown(context.Background()) })
	fx.coordCl = client.New(cts.URL)

	ref := startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
	t.Cleanup(ref.stop)
	fx.refCl = client.New(ref.addr)
	return fx
}

// run streams the sweep through the coordinator, enforces exactly-once
// as it reads, and returns the merged finals.
func (fx *clusterSweepFixture) run(t *testing.T) map[checkKey]string {
	t.Helper()
	sc := newStreamCollector(0)
	err := fx.coordCl.Stream(context.Background(), server.Request{
		Netlist: fx.bench, Name: fx.local.Name,
		Sweep: &server.SweepSpec{Deltas: fx.deltas},
	}, sc.fn)
	if err != nil {
		t.Fatalf("coordinator stream: %v", err)
	}
	finals, done := sc.snapshot()
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if len(finals) != fx.want {
		t.Fatalf("answered %d checks, want %d", len(finals), fx.want)
	}
	return finals
}

// reference computes the same sweep's finals on the unharmed daemon.
func (fx *clusterSweepFixture) reference(t *testing.T) map[checkKey]string {
	t.Helper()
	resp, err := fx.refCl.Check(context.Background(), server.Request{
		Netlist: fx.bench, Name: fx.local.Name,
		Sweep: &server.SweepSpec{Deltas: fx.deltas},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sweepFinals(resp)
}

// TestClusterStreamCutRequeues: every worker's first NDJSON response
// is cut after three lines — the crashed-mid-stream wire signature.
// The coordinator must type the truncation as retryable, mark the
// workers dead, resurrect them through the on-demand probe (health
// traffic bypasses the fault), and requeue the stranded checks until
// every one answers exactly once with the unharmed daemon's verdict.
func TestClusterStreamCutRequeues(t *testing.T) {
	fx := newClusterSweepFixture(t, "c432", 2,
		faultSpec{cutAfterLines: 3, once: true},
		server.CoordConfig{QueueDepth: 4, HedgeAfter: -1, ProbeInterval: -1})

	finals := fx.run(t)
	if want := fx.reference(t); !reflect.DeepEqual(finals, want) {
		t.Errorf("verdicts after cut+requeue diverge from single daemon:\n got %v\nwant %v", finals, want)
	}

	m, err := fx.coordCl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["requeuedChecks"] == 0 {
		t.Errorf("cut streams stranded no checks: %+v", m.Server)
	}
	if m.Server["workerFailures"] == 0 {
		t.Errorf("cut streams were not counted as worker failures: %+v", m.Server)
	}
	if m.Server["checkFailures"] != 0 {
		t.Errorf("%d checks exhausted their attempts after a single cut each", m.Server["checkFailures"])
	}
	if m.Server["checksMerged"] != int64(fx.want) {
		t.Errorf("merged %d results, want %d", m.Server["checksMerged"], fx.want)
	}
}

// TestClusterDuplicateEventsDropped: an at-least-once transport
// replays every second line of every worker stream. The merge must
// drop the replays — the client-facing stream stays duplicate-free
// (the collector fails on any repeat) with unchanged verdicts — and
// account for them in duplicate_results_dropped.
func TestClusterDuplicateEventsDropped(t *testing.T) {
	fx := newClusterSweepFixture(t, "c432", 2,
		faultSpec{duplicateEvery: 2},
		server.CoordConfig{QueueDepth: 4, HedgeAfter: -1})

	finals := fx.run(t)
	if want := fx.reference(t); !reflect.DeepEqual(finals, want) {
		t.Errorf("verdicts under duplication diverge from single daemon:\n got %v\nwant %v", finals, want)
	}

	m, err := fx.coordCl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["duplicateResultsDropped"] == 0 {
		t.Errorf("replayed events were not dropped as duplicates: %+v", m.Server)
	}
	if m.Server["checkFailures"] != 0 || m.Server["requeuedChecks"] != 0 {
		t.Errorf("duplication alone must not fail or requeue checks: %+v", m.Server)
	}
}

// TestClusterHedgeStragglers: one of two workers serves each line
// with a 150ms stall; with a 100ms hedge threshold the coordinator
// must re-dispatch the slow worker's unanswered checks to the fast
// one, first terminal result winning — no cancellations, no failures,
// verdicts identical to the unharmed daemon.
func TestClusterHedgeStragglers(t *testing.T) {
	e := suiteCircuit(t, "c880")
	bench := circuit.BenchString(e.Circuit)
	local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: "c880"})
	if err != nil {
		t.Fatal(err)
	}
	top := int64(delay.New(local).Topological())
	deltas := []int64{top}
	wantChecks := len(local.PrimaryOutputs())

	// Both workers go behind (initially transparent) proxies; once
	// routing is known, the one owning the most sinks — never zero —
	// becomes the straggler.
	workers := make([]*clusterWorker, 2)
	proxies := make([]*faultProxy, 2)
	addrs := make([]string, 2)
	for i := range workers {
		workers[i] = startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
		defer workers[i].stop()
		proxies[i] = newFaultProxy(t, workers[i].addr, faultSpec{})
		addrs[i] = proxies[i].addr
	}

	co := server.NewCoordinator(server.CoordConfig{
		Workers: addrs, QueueDepth: 4,
		HedgeAfter: 100 * time.Millisecond,
	})
	cts := httptest.NewServer(co)
	defer cts.Close()
	defer func() { _ = co.Shutdown(context.Background()) }()
	coordCl := client.New(cts.URL)

	hash, err := coordCl.Upload(context.Background(), bench, client.UploadOptions{Name: "c880"})
	if err != nil {
		t.Fatal(err)
	}
	router := server.NewShardRouter(addrs)
	owned := map[string]int{}
	for _, po := range local.PrimaryOutputs() {
		w, _ := router.Assign(server.ShardKey{Hash: string(hash), Sink: local.Net(po).Name})
		owned[w]++
	}
	slow := 0
	if owned[addrs[1]] > owned[addrs[0]] {
		slow = 1
	}
	proxies[slow].setSpec(faultSpec{delayPerLine: 150 * time.Millisecond})

	sc := newStreamCollector(0)
	if err := coordCl.StreamByHash(context.Background(), hash, server.Request{
		Sweep: &server.SweepSpec{Deltas: deltas},
	}, sc.fn); err != nil {
		t.Fatalf("coordinator stream: %v", err)
	}
	finals, done := sc.snapshot()
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if len(finals) != wantChecks {
		t.Fatalf("answered %d checks, want %d", len(finals), wantChecks)
	}
	for k, final := range finals {
		if final != "V" && final != "N" {
			t.Errorf("check (δ=%d, #%d) ended %q; hedging must not surface C or A", k.delta, k.index, final)
		}
	}

	ref := startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
	defer ref.stop()
	refResp, err := client.New(ref.addr).Check(context.Background(), server.Request{
		Netlist: bench, Name: "c880", Sweep: &server.SweepSpec{Deltas: deltas},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := sweepFinals(refResp); !reflect.DeepEqual(finals, want) {
		t.Errorf("verdicts under hedging diverge from single daemon:\n got %v\nwant %v", finals, want)
	}

	m, err := coordCl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["hedgedChecks"] == 0 {
		t.Errorf("slow worker was never hedged: %+v", m.Server)
	}
	if m.Server["checkFailures"] != 0 {
		t.Errorf("hedging produced %d failed checks", m.Server["checkFailures"])
	}
}
