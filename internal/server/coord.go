package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/registry"
)

// CoordConfig sizes a coordinator. The zero value of every field
// selects a production-sane default; Workers is the only mandatory
// one.
type CoordConfig struct {
	// Workers lists the lttad worker base URLs the coordinator shards
	// batches over ("host:port" is normalized to "http://host:port").
	Workers []string
	// QueueDepth bounds admitted batches exactly like Server.Config
	// (default 64; 429 + Retry-After beyond).
	QueueDepth int
	// MaxBodyBytes caps the request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxChecks caps the checks one batch may expand to (default
	// 100000).
	MaxChecks int
	// RetryAfter is the Retry-After hint on 429/503 responses
	// (default 1s).
	RetryAfter time.Duration
	// HedgeAfter is the straggler threshold: checks still unanswered
	// this long after their batch started are hedged onto the
	// next-ranked worker, first terminal result wins (default 2s;
	// negative disables hedging).
	HedgeAfter time.Duration
	// MaxAttempts caps dispatches per check across requeues (default
	// 3); beyond it the check reports verdict A with an error.
	MaxAttempts int
	// ProbeInterval is the /readyz health-probe period (default 2s;
	// negative disables the background loop — workers are then probed
	// only on demand).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 1s).
	ProbeTimeout time.Duration
	// RegistryMaxCircuits bounds the coordinator's own circuit table
	// (canonical uploads kept for re-upload to workers; default 128,
	// LRU beyond).
	RegistryMaxCircuits int
	// Name is the instance name stamped into ShardInfo envelopes
	// (default "lttad-coord").
	Name string
	// TraceDir, when set, writes one Perfetto-loadable cluster timeline
	// per batch (batch-<id>.trace.json): routing decisions, per-attempt
	// worker dispatches, the workers' in-band check spans, and merge
	// lanes, all under the batch's trace id.
	TraceDir string
	// FlightLast and FlightSlowest size the always-on flight recorder
	// behind GET /debug/checks (defaults 256 and 32).
	FlightLast, FlightSlowest int
	// Logger receives the coordinator's structured logs (default:
	// discard).
	Logger *slog.Logger
}

func (cfg CoordConfig) withDefaults() CoordConfig {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.MaxChecks <= 0 {
		cfg.MaxChecks = 100000
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.RegistryMaxCircuits <= 0 {
		cfg.RegistryMaxCircuits = 128
	}
	if cfg.Name == "" {
		cfg.Name = "lttad-coord"
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	return cfg
}

// Coordinator is the cluster front end of lttad: it speaks the same
// wire protocol as a single daemon (PUT /v1/circuits, POST /v1/check,
// POST /v1/circuits/{hash}/check, NDJSON streaming) but runs no checks
// itself. A batch is sharded by (circuit-hash, sink) rendezvous
// hashing over the live workers — so each worker's prepared-state LRU
// and warm-start memos stay hot for its shard — and the per-shard
// result streams are merged back into one client-facing stream with an
// exactly-once terminal result per check: worker failures requeue the
// unfinished checks onto survivors, stragglers are hedged, and
// duplicate results from the races that creates are dropped at the
// merge point. See DESIGN.md §15.
type Coordinator struct {
	cfg CoordConfig
	mux *http.ServeMux

	pool    *client.Pool
	workers []*coordWorker
	byAddr  map[string]*coordWorker

	slots    chan struct{}
	inflight sync.WaitGroup
	draining atomic.Bool
	ready    atomic.Bool

	baseCtx    context.Context
	baseCancel context.CancelFunc

	probeStop    context.CancelFunc
	probeDone    chan struct{}
	shutdownOnce sync.Once

	log      *slog.Logger
	batchSeq atomic.Int64
	reg      *obs.Registry

	flight       *obs.FlightRecorder // always-on merged-check record behind /debug/checks
	checkSeconds *obs.Histogram      // merged terminal results, worker-reported latency
	requeues     *obs.CounterVec     // lttad_coord_requeues_total by reason
	hedges       *obs.CounterVec     // lttad_coord_hedges_total by attempt

	mu       sync.Mutex
	circuits map[api.Hash]*coordEntry // guarded by mu
	useSeq   int64                    // guarded by mu

	// counters behind /metrics (lttad_coord_*)
	accepted          atomic.Int64
	rejectedFull      atomic.Int64
	rejectedDrain     atomic.Int64
	badRequests       atomic.Int64
	streams           atomic.Int64
	checksMerged      atomic.Int64
	dispatchPrimary   atomic.Int64
	dispatchRequeue   atomic.Int64
	dispatchHedge     atomic.Int64
	requeuedChecks    atomic.Int64
	hedgedChecks      atomic.Int64
	duplicatesDropped atomic.Int64
	workerFailures    atomic.Int64
	workerUploads     atomic.Int64
	checkFailures     atomic.Int64
	netlistParses     atomic.Int64
}

// coordWorker is the coordinator's view of one worker daemon: its
// client, its probed liveness, and which circuit hashes it is known to
// hold (so warm shards skip the upload round trip entirely).
type coordWorker struct {
	addr  string
	cl    *client.Client
	alive atomic.Bool

	mu       sync.Mutex
	uploaded map[api.Hash]bool // guarded by mu
}

// forget drops the local belief that the worker holds hash — called on
// an unknown_hash answer (the worker evicted or restarted) so the next
// dispatch re-uploads.
func (w *coordWorker) forget(h api.Hash) {
	w.mu.Lock()
	delete(w.uploaded, h)
	w.mu.Unlock()
}

func (w *coordWorker) knows(h api.Hash) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.uploaded[h]
}

func (w *coordWorker) remember(h api.Hash) {
	w.mu.Lock()
	w.uploaded[h] = true
	w.mu.Unlock()
}

// coordEntry is one registered circuit on the coordinator: the
// canonical upload (re-sent verbatim to any worker that needs it — its
// hash is reproducible by construction) and the parsed circuit used
// for sink resolution, sweep aggregation, and response echoes.
type coordEntry struct {
	hash    api.Hash
	canon   *api.UploadRequest
	c       *circuit.Circuit
	lastUse int64 // guarded by Coordinator.mu
}

// NewCoordinator builds a Coordinator over the configured workers and
// starts its health-probe loop.
func NewCoordinator(cfg CoordConfig) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		pool:     client.NewPool(cfg.Workers),
		byAddr:   make(map[string]*coordWorker),
		slots:    make(chan struct{}, cfg.QueueDepth),
		circuits: make(map[api.Hash]*coordEntry),
	}
	co.baseCtx, co.baseCancel = context.WithCancel(context.Background())
	co.log = cfg.Logger
	co.reg = obs.NewRegistry()
	co.flight = obs.NewFlightRecorder(cfg.FlightLast, cfg.FlightSlowest)
	co.checkSeconds = obs.NewHistogram(obs.ExpBuckets(1_000, 100_000_000_000, 5))
	for _, addr := range co.pool.Addrs() {
		w := &coordWorker{addr: addr, cl: co.pool.For(addr), uploaded: make(map[api.Hash]bool)}
		co.workers = append(co.workers, w)
		co.byAddr[addr] = w
	}
	co.registerCoordMetrics()
	co.mux.HandleFunc("/v1/check", co.handleCheck)
	co.mux.HandleFunc("PUT /v1/circuits", co.handleCircuitPut)
	co.mux.HandleFunc("POST /v1/circuits/{hash}/check", co.handleCheckByHash)
	co.mux.HandleFunc("/healthz", co.handleHealthz)
	co.mux.HandleFunc("/readyz", co.handleReadyz)
	co.mux.HandleFunc("/metrics", co.handleMetricsProm)
	co.mux.HandleFunc("/metrics.json", co.handleMetricsJSON)
	co.mux.HandleFunc("GET /debug/checks", co.handleDebugChecks)

	probeCtx, stop := context.WithCancel(co.baseCtx)
	co.probeStop = stop
	co.probeDone = make(chan struct{})
	go co.probeLoop(probeCtx)
	return co
}

func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { co.mux.ServeHTTP(w, r) }

// probeLoop keeps the live worker set fresh: every ProbeInterval each
// worker's /readyz is asked whether it would admit a batch. Dispatch
// failures mark workers dead immediately (the probe is the recovery
// path, not the detection path); a probe that succeeds resurrects a
// worker for future placements.
func (co *Coordinator) probeLoop(ctx context.Context) {
	defer close(co.probeDone)
	co.probeAll(ctx)
	if co.cfg.ProbeInterval < 0 {
		<-ctx.Done()
		return
	}
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			co.probeAll(ctx)
		}
	}
}

// probeAll probes every worker concurrently and refreshes liveness.
func (co *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range co.workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := co.pool.Probe(ctx, w.addr, co.cfg.ProbeTimeout)
			was := w.alive.Swap(err == nil)
			if was != (err == nil) {
				co.log.LogAttrs(ctx, slog.LevelInfo, "worker liveness changed",
					slog.String("worker", w.addr), slog.Bool("alive", err == nil))
			}
		}()
	}
	wg.Wait()
	if co.aliveCount() > 0 {
		co.ready.Store(true)
	}
}

func (co *Coordinator) aliveCount() int {
	n := 0
	for _, w := range co.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// aliveWorkers returns the addresses currently believed live. When
// none are (cold start, or every worker just failed), one synchronous
// probe round runs first so a batch arriving right after startup —or
// right after a mass restart — still finds its cluster.
func (co *Coordinator) aliveWorkers(ctx context.Context) []string {
	collect := func() []string {
		var out []string
		for _, w := range co.workers {
			if w.alive.Load() {
				out = append(out, w.addr)
			}
		}
		return out
	}
	if ws := collect(); len(ws) > 0 {
		return ws
	}
	co.probeAll(ctx)
	return collect()
}

// markDead records a dispatch-detected worker failure.
func (co *Coordinator) markDead(ctx context.Context, w *coordWorker, cause error) {
	if w.alive.Swap(false) {
		co.workerFailures.Add(1)
		co.log.LogAttrs(ctx, slog.LevelWarn, "worker failed",
			slog.String("worker", w.addr), slog.String("error", cause.Error()))
	}
}

// ensureCircuit makes sure worker w holds the entry's circuit,
// uploading the canonical form through the registry API if the
// coordinator does not already believe it resident. The worker's hash
// must echo ours — canonicalization is deterministic, so a mismatch
// means version skew, not bad luck.
func (co *Coordinator) ensureCircuit(ctx context.Context, w *coordWorker, e *coordEntry) error {
	if w.knows(e.hash) {
		return nil
	}
	up, err := w.cl.Upload(ctx, e.canon.Netlist, client.UploadOptions{
		Format: e.canon.Format, Name: e.canon.Name, DefaultDelay: e.canon.DefaultDelay,
		SDF: e.canon.SDF, Delays: e.canon.Delays,
	})
	if err != nil {
		return err
	}
	if up != e.hash {
		return fmt.Errorf("worker %s hashed the circuit as %s, coordinator as %s (version skew?)",
			w.addr, up, e.hash)
	}
	w.remember(e.hash)
	co.workerUploads.Add(1)
	return nil
}

// getEntry looks a registered circuit up and touches its LRU slot.
func (co *Coordinator) getEntry(h api.Hash) (*coordEntry, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	e, ok := co.circuits[h]
	if ok {
		co.useSeq++
		e.lastUse = co.useSeq
	}
	return e, ok
}

// putEntry registers a circuit (idempotent) and reports whether this
// call created it, evicting the least-recently-used entry beyond the
// capacity. Workers keep their own registries; evicting here only
// means a later check on the hash must re-upload through a client.
func (co *Coordinator) putEntry(hash api.Hash, canon *api.UploadRequest, build func() (*circuit.Circuit, error)) (*coordEntry, bool, error) {
	co.mu.Lock()
	if e, ok := co.circuits[hash]; ok {
		co.useSeq++
		e.lastUse = co.useSeq
		co.mu.Unlock()
		return e, false, nil
	}
	co.mu.Unlock()
	// Parse outside the lock; concurrent identical uploads both parse
	// and the second insert loses gracefully (same content, same hash).
	c, err := build()
	if err != nil {
		return nil, false, err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if e, ok := co.circuits[hash]; ok {
		co.useSeq++
		e.lastUse = co.useSeq
		return e, false, nil
	}
	co.useSeq++
	e := &coordEntry{hash: hash, canon: canon, c: c, lastUse: co.useSeq}
	co.circuits[hash] = e
	for len(co.circuits) > co.cfg.RegistryMaxCircuits {
		var lru *coordEntry
		for _, cand := range co.circuits {
			if lru == nil || cand.lastUse < lru.lastUse {
				lru = cand
			}
		}
		delete(co.circuits, lru.hash)
	}
	return e, true, nil
}

func (co *Coordinator) circuitCount() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.circuits)
}

// BeginDrain moves the coordinator to draining: new submissions are
// rejected with 503 + Retry-After; in-flight batches keep merging.
// Idempotent.
func (co *Coordinator) BeginDrain() { co.draining.Store(true) }

// Shutdown drains the coordinator: it stops admitting batches, waits
// for the in-flight ones, and — if ctx expires first — cancels them so
// every check still reports exactly one terminal result (verdict C for
// those cut off), with the cancellation fanned out to every worker
// stream the batches hold open. The probe loop has exited when it
// returns.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	co.BeginDrain()
	var err error
	co.shutdownOnce.Do(func() {
		done := make(chan struct{})
		go func() {
			co.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
			co.baseCancel()
			<-done
		}
		co.baseCancel()
		co.probeStop()
	})
	<-co.probeDone
	return err
}

// rejectDraining answers a submission arriving during drain.
func (co *Coordinator) rejectDraining(ctx context.Context, w http.ResponseWriter, what string) {
	co.rejectedDrain.Add(1)
	co.log.LogAttrs(ctx, slog.LevelWarn, what+" rejected", slog.String("reason", "draining"))
	w.Header().Set("Retry-After", co.retryAfterSeconds())
	writeError(w, &apiError{status: http.StatusServiceUnavailable, code: "draining",
		msg: "coordinator is draining; resubmit elsewhere"})
}

func (co *Coordinator) retryAfterSeconds() string {
	secs := int(co.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func (co *Coordinator) rejectBadRequest(ctx context.Context, w http.ResponseWriter, e *apiError) {
	co.badRequests.Add(1)
	co.log.LogAttrs(ctx, slog.LevelInfo, "bad request",
		slog.String("code", e.code), slog.String("message", e.msg))
	writeError(w, e)
}

// handleCircuitPut is PUT /v1/circuits on the coordinator: hash and
// parse exactly like a worker would (shared canonicalization, so the
// address is identical cluster-wide), keep the canonical form for
// worker uploads, and echo the address. Workers receive the circuit
// lazily, the first time a shard routes to them.
func (co *Coordinator) handleCircuitPut(w http.ResponseWriter, r *http.Request) {
	if co.draining.Load() {
		co.rejectDraining(r.Context(), w, "upload")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes)
	var up UploadRequest
	if apiErr := decodeBody(r.Body, &up); apiErr != nil {
		co.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	if !api.AcceptsVersion(up.V) {
		co.rejectBadRequest(r.Context(), w, unsupportedVersion(up.V))
		return
	}
	hash, canon, err := registry.HashUpload(&up)
	if err != nil {
		co.rejectBadRequest(r.Context(), w, uploadError(err))
		return
	}
	entry, created, err := co.putEntry(hash, canon, func() (*circuit.Circuit, error) {
		co.netlistParses.Add(1)
		return buildUploadCircuit(canon)
	})
	if err != nil {
		co.rejectBadRequest(r.Context(), w, uploadError(err))
		return
	}
	co.log.LogAttrs(r.Context(), slog.LevelInfo, "circuit upload",
		slog.String("hash", string(hash)), slog.Bool("created", created),
		slog.String("circuit", entry.c.Name))
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	_ = json.NewEncoder(w).Encode(UploadResponse{
		V: api.Version, Hash: hash, Created: created,
		Circuit: circuitInfo(entry.c, 0),
	})
}

// handleCheck is the coordinator's inline POST /v1/check: the netlist
// rides in the body, is hashed into the coordinator's table exactly
// like an upload, and the batch then runs on the sharded path — so
// inline and hash-addressed submissions are served by the same merge
// machine and are result-identical.
func (co *Coordinator) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
			msg: "POST required"})
		return
	}
	if co.draining.Load() {
		co.rejectDraining(r.Context(), w, "batch")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes)
	req, apiErr := decodeRequest(r.Body, false)
	if apiErr != nil {
		co.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	hash, canon, err := registry.HashUpload(&api.UploadRequest{
		Netlist: req.Netlist, Format: req.Format, Name: req.Name, DefaultDelay: req.DefaultDelay,
	})
	if err != nil {
		co.rejectBadRequest(r.Context(), w, uploadError(err))
		return
	}
	entry, _, err := co.putEntry(hash, canon, func() (*circuit.Circuit, error) {
		co.netlistParses.Add(1)
		return buildUploadCircuit(canon)
	})
	if err != nil {
		co.rejectBadRequest(r.Context(), w, uploadError(err))
		return
	}
	co.admitAndRun(w, r, req, entry)
}

// handleCheckByHash is POST /v1/circuits/{hash}/check on the
// coordinator.
func (co *Coordinator) handleCheckByHash(w http.ResponseWriter, r *http.Request) {
	if co.draining.Load() {
		co.rejectDraining(r.Context(), w, "batch")
		return
	}
	h := api.Hash(r.PathValue("hash"))
	if !h.Valid() {
		co.rejectBadRequest(r.Context(), w, badRequest("bad_hash",
			"malformed circuit hash %q (want sha256:<64 hex>)", string(h)))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes)
	req, apiErr := decodeRequest(r.Body, true)
	if apiErr != nil {
		co.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	entry, ok := co.getEntry(h)
	if !ok {
		co.badRequests.Add(1)
		co.log.LogAttrs(r.Context(), slog.LevelInfo, "unknown hash", slog.String("hash", string(h)))
		writeError(w, &apiError{status: http.StatusNotFound, code: "unknown_hash",
			msg:  "no circuit registered under this hash; PUT /v1/circuits and retry",
			hash: h})
		return
	}
	co.admitAndRun(w, r, req, entry)
}

// admitAndRun is the coordinator's admission + execution half: resolve
// sinks, take a queue slot (or 429), build the batch context, and run
// the shard/merge state machine.
func (co *Coordinator) admitAndRun(w http.ResponseWriter, r *http.Request, req *Request, entry *coordEntry) {
	checks, apiErr := resolveChecks(entry.c, req.Checks)
	if apiErr != nil {
		co.rejectBadRequest(r.Context(), w, apiErr)
		return
	}
	if n := batchSize(entry.c, req, checks); n > co.cfg.MaxChecks {
		co.rejectBadRequest(r.Context(), w, badRequest("too_many_checks",
			"batch expands to %d checks, cap is %d", n, co.cfg.MaxChecks))
		return
	}

	select {
	case co.slots <- struct{}{}:
	default:
		co.rejectedFull.Add(1)
		co.log.LogAttrs(r.Context(), slog.LevelWarn, "batch rejected",
			slog.String("reason", "queue_full"), slog.Int("queueDepth", co.cfg.QueueDepth))
		w.Header().Set("Retry-After", co.retryAfterSeconds())
		writeError(w, &apiError{status: http.StatusTooManyRequests, code: "queue_full",
			msg: fmt.Sprintf("admission queue full (%d batches)", co.cfg.QueueDepth)})
		return
	}
	co.inflight.Add(1)
	co.accepted.Add(1)
	defer func() {
		<-co.slots
		co.inflight.Done()
	}()

	ctx := co.baseCtx
	if reqCtx := r.Context(); reqCtx != nil {
		var stop context.CancelFunc
		ctx, stop = mergeCancel(ctx, reqCtx)
		defer stop()
	}
	if d := time.Duration(req.TimeoutMs) * time.Millisecond; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	id := co.batchSeq.Add(1)
	trace := api.EnsureTrace(req.Trace)
	logger := co.log.With(slog.Int64("batch", id), slog.String("trace_id", trace.TraceID))
	if trace.Tenant != "" {
		logger = logger.With(slog.String("tenant", trace.Tenant))
	}
	cb := &coordBatch{
		co: co, entry: entry, req: req, checks: checks, id: id,
		log: logger, trace: trace, clientTraced: req.Trace != nil,
	}
	if co.cfg.TraceDir != "" {
		cb.ct = obs.NewClusterTrace(time.Now())
	}
	cb.log.LogAttrs(ctx, slog.LevelInfo, "batch accepted",
		slog.String("circuit", entry.c.Name), slog.String("hash", string(entry.hash)),
		slog.Int("checks", batchSize(entry.c, req, checks)), slog.Bool("stream", req.Stream))
	if req.Stream {
		co.streams.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		em := &emitter{enc: json.NewEncoder(w), traceID: trace.TraceID}
		if fl, ok := w.(http.Flusher); ok {
			em.fl = fl
		}
		resp := cb.run(ctx, em)
		em.emit(Event{Type: "done", Done: &resp.Done})
		return
	}
	resp := cb.run(ctx, nil)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (co *Coordinator) health() Health {
	h := Health{Status: "ok", Workers: co.aliveCount(),
		Queued: len(co.slots), Capacity: co.cfg.QueueDepth}
	switch {
	case co.draining.Load():
		h.Status = "draining"
	case !co.ready.Load():
		h.Status = "starting"
	}
	return h
}

// handleHealthz is pure liveness, exactly like the worker's.
func (co *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(co.health())
}

// handleReadyz is readiness: 503 until the first probe round finds a
// live worker, and from the moment draining begins — a coordinator
// with no cluster behind it must not join a load balancer.
func (co *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := co.health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", co.retryAfterSeconds())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(h)
}

// registerCoordMetrics wires the shard/requeue/hedge counters into the
// Prometheus registry (mirrored in /metrics.json below).
func (co *Coordinator) registerCoordMetrics() {
	co.reg.GaugeFunc("lttad_coord_workers",
		"Workers configured behind the coordinator.", nil,
		func() float64 { return float64(len(co.workers)) })
	co.reg.GaugeFunc("lttad_coord_workers_alive",
		"Workers currently probed (or assumed) live.", nil,
		func() float64 { return float64(co.aliveCount()) })
	co.reg.GaugeFunc("lttad_coord_circuits",
		"Circuits registered on the coordinator.", nil,
		func() float64 { return float64(co.circuitCount()) })
	co.reg.CounterFunc("lttad_coord_batches_accepted_total",
		"Batches admitted past the bounded queue.", nil, co.accepted.Load)
	co.reg.CounterFunc("lttad_coord_batches_rejected_total",
		"Batches rejected by backpressure.", obs.Labels{"reason": "queue_full"}, co.rejectedFull.Load)
	co.reg.CounterFunc("lttad_coord_batches_rejected_total",
		"Batches rejected by backpressure.", obs.Labels{"reason": "draining"}, co.rejectedDrain.Load)
	co.reg.CounterFunc("lttad_coord_bad_requests_total",
		"Submissions rejected before admission (parse/validate).", nil, co.badRequests.Load)
	co.reg.CounterFunc("lttad_coord_streams_total",
		"Batches served as NDJSON streams.", nil, co.streams.Load)
	co.reg.CounterFunc("lttad_coord_checks_total",
		"Terminal check results merged into client responses.", nil, co.checksMerged.Load)
	co.reg.CounterFunc("lttad_coord_shard_dispatches_total",
		"Shard dispatches to workers by kind.", obs.Labels{"kind": "primary"}, co.dispatchPrimary.Load)
	co.reg.CounterFunc("lttad_coord_shard_dispatches_total",
		"Shard dispatches to workers by kind.", obs.Labels{"kind": "requeue"}, co.dispatchRequeue.Load)
	co.reg.CounterFunc("lttad_coord_shard_dispatches_total",
		"Shard dispatches to workers by kind.", obs.Labels{"kind": "hedge"}, co.dispatchHedge.Load)
	co.reg.CounterFunc("lttad_coord_requeued_checks_total",
		"Checks requeued off a failed worker onto survivors.", nil, co.requeuedChecks.Load)
	co.reg.CounterFunc("lttad_coord_hedged_checks_total",
		"Straggler checks hedged onto a second worker.", nil, co.hedgedChecks.Load)
	co.requeues = co.reg.CounterVec("lttad_coord_requeues_total",
		"Checks requeued, by why the previous dispatch failed.", "reason")
	co.hedges = co.reg.CounterVec("lttad_coord_hedges_total",
		"Straggler checks hedged, by the dispatch attempt the hedge became.", "attempt")
	co.reg.Histogram("lttad_coord_check_duration_seconds",
		"Worker-reported latency of terminal check results merged by this coordinator.",
		nil, co.checkSeconds, 1e-9)
	co.reg.CounterFunc("lttad_coord_duplicate_results_dropped_total",
		"Worker results dropped because the check already had its terminal result.",
		nil, co.duplicatesDropped.Load)
	co.reg.CounterFunc("lttad_coord_worker_failures_total",
		"Dispatch-detected worker failures (alive→dead transitions).", nil, co.workerFailures.Load)
	co.reg.CounterFunc("lttad_coord_worker_uploads_total",
		"Circuit uploads pushed to workers.", nil, co.workerUploads.Load)
	co.reg.CounterFunc("lttad_coord_check_failures_total",
		"Checks that exhausted every dispatch attempt and reported verdict A.",
		nil, co.checkFailures.Load)
	co.reg.CounterFunc("lttad_coord_netlist_parses_total",
		"Netlist parses performed by the coordinator (uploads and inline checks).",
		nil, co.netlistParses.Load)
}

// handleMetricsProm is GET /metrics: the coordinator's Prometheus text
// exposition (lttad_coord_* plus runtime samples).
func (co *Coordinator) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	co.reg.WritePrometheus(w)
	obs.WriteRuntimeProm(w)
}

// handleDebugChecks is GET /debug/checks on the coordinator: the
// merged-result flight recorder plus the merge-latency exemplars, the
// cluster-level half of the introspection a worker's endpoint serves.
func (co *Coordinator) handleDebugChecks(w http.ResponseWriter, _ *http.Request) {
	writeDebugChecks(w, co.flight, co.checkSeconds.Exemplars())
}

// handleMetricsJSON mirrors the same counters as a structured
// document, the coordinator's /metrics.json.
func (co *Coordinator) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	m := Metrics{
		Server: map[string]int64{
			"coordWorkers":            int64(len(co.workers)),
			"coordWorkersAlive":       int64(co.aliveCount()),
			"coordCircuits":           int64(co.circuitCount()),
			"acceptedBatches":         co.accepted.Load(),
			"rejectedFull":            co.rejectedFull.Load(),
			"rejectedDraining":        co.rejectedDrain.Load(),
			"badRequests":             co.badRequests.Load(),
			"streams":                 co.streams.Load(),
			"queuedBatches":           int64(len(co.slots)),
			"queueDepth":              int64(co.cfg.QueueDepth),
			"checksMerged":            co.checksMerged.Load(),
			"shardDispatchesPrimary":  co.dispatchPrimary.Load(),
			"shardDispatchesRequeue":  co.dispatchRequeue.Load(),
			"shardDispatchesHedge":    co.dispatchHedge.Load(),
			"requeuedChecks":          co.requeuedChecks.Load(),
			"hedgedChecks":            co.hedgedChecks.Load(),
			"duplicateResultsDropped": co.duplicatesDropped.Load(),
			"workerFailures":          co.workerFailures.Load(),
			"workerUploads":           co.workerUploads.Load(),
			"checkFailures":           co.checkFailures.Load(),
			"netlistParses":           co.netlistParses.Load(),
		},
		Engine: map[string]int64{},
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(m)
}
