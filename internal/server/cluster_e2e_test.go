package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/server"
)

// clusterWorker is one killable lttad worker daemon on a real TCP
// listener (httptest.Server's Close waits for in-flight handlers,
// which is exactly what a crash does not do).
type clusterWorker struct {
	addr string
	s    *server.Server
	hs   *http.Server
}

func startClusterWorker(t *testing.T, cfg server.Config) *clusterWorker {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(cfg)
	hs := &http.Server{Handler: s}
	go func() { _ = hs.Serve(lis) }()
	return &clusterWorker{addr: "http://" + lis.Addr().String(), s: s, hs: hs}
}

// kill cuts the worker off the network mid-flight: the listener and
// every open connection close immediately — from the coordinator's
// point of view, a crashed process. The engine pool keeps running its
// orphaned batch until stop reaps it.
func (w *clusterWorker) kill() { _ = w.hs.Close() }

// stop is the orderly teardown: network off, then the pool drained
// with an already-expired deadline so leftover checks cancel at once.
func (w *clusterWorker) stop() {
	_ = w.hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = w.s.Shutdown(ctx)
}

// checkKey identifies one client-facing check in a stream: for sweeps
// Index is the primary-output index, so (delta, index) is unique
// across the whole batch.
type checkKey struct {
	delta int64
	index int
}

// streamCollector consumes a client-facing stream and enforces the
// exactly-once contract as it reads: a second terminal result for any
// (delta, index) aborts the stream with an error. trigger closes once
// `after` check events have arrived (mid-flight fault injection hangs
// off it).
type streamCollector struct {
	after   int
	trigger chan struct{}
	once    sync.Once

	mu     sync.Mutex
	finals map[checkKey]string
	info   *server.CircuitInfo
	done   bool
}

func newStreamCollector(after int) *streamCollector {
	return &streamCollector{after: after, trigger: make(chan struct{}), finals: map[checkKey]string{}}
}

func (sc *streamCollector) fn(ev server.Event) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	switch ev.Type {
	case "circuit":
		sc.info = ev.Circuit
	case "done":
		sc.done = true
	case "check":
		k := checkKey{delta: ev.Check.Delta, index: ev.Check.Index}
		if prev, dup := sc.finals[k]; dup {
			return fmt.Errorf("check (δ=%d, #%d) answered twice: %s then %s",
				k.delta, k.index, prev, ev.Check.Final)
		}
		sc.finals[k] = ev.Check.Final
		if sc.after > 0 && len(sc.finals) >= sc.after {
			sc.once.Do(func() { close(sc.trigger) })
		}
	}
	return nil
}

func (sc *streamCollector) snapshot() (map[checkKey]string, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make(map[checkKey]string, len(sc.finals))
	for k, v := range sc.finals {
		out[k] = v
	}
	return out, sc.done
}

// sweepFinals flattens a buffered sweep response into the same
// (delta, index) → final map a streamCollector builds, for verdict
// comparisons against a single-daemon reference.
func sweepFinals(resp *server.Response) map[checkKey]string {
	out := map[checkKey]string{}
	for _, sw := range resp.Sweeps {
		for _, pr := range sw.PerOutput {
			out[checkKey{delta: pr.Delta, index: pr.Index}] = pr.Final
		}
	}
	return out
}

// zeroPlacement strips the coordinator's placement metadata (which
// worker answered, on which attempt) so responses compare
// field-identical against a single daemon's.
func zeroPlacement(resp *server.Response) {
	for i := range resp.Results {
		resp.Results[i].Worker, resp.Results[i].Attempt = "", 0
	}
	for i := range resp.Sweeps {
		for j := range resp.Sweeps[i].PerOutput {
			resp.Sweeps[i].PerOutput[j].Worker, resp.Sweeps[i].PerOutput[j].Attempt = "", 0
		}
	}
}

func suiteCircuit(t *testing.T, name string) gen.SuiteEntry {
	t.Helper()
	for _, e := range gen.SubstituteSuite() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("substitute suite has no circuit %q", name)
	return gen.SuiteEntry{}
}

// assertNoClusterGoroutines is a stdlib goroutine-leak check: after a
// full cluster teardown no goroutine may still be executing
// internal/server or internal/client code (the trailing dot keeps the
// _test package itself from matching). Shutdowns finish
// asynchronously, so the scan retries briefly before failing.
func assertNoClusterGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var offending string
	for {
		offending = ""
		buf := make([]byte, 1<<22)
		n := runtime.Stack(buf, true)
		for _, g := range strings.Split(string(buf[:n]), "\n\n") {
			if strings.Contains(g, "repro/internal/server.") || strings.Contains(g, "repro/internal/client.") {
				offending = g
				break
			}
		}
		if offending == "" {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutine still running cluster code after full shutdown:\n%s", offending)
}

// TestClusterKillWorkerMidFlight is the fault-injection acceptance
// test (run under -race in CI): a δ-sweep sharded over three workers
// loses the worker owning the largest shard while the batch is in
// flight, and the coordinator must requeue that worker's checks onto
// the survivors so the client still sees exactly one terminal result
// per check — with the same verdicts a single daemon serves. The
// victim's shard submission is parked at its proxy until after the
// kill (TCP offers no other guarantee that a microsecond-fast worker
// still holds undelivered work when it dies — see faultSpec); the
// survivors trickle behind delay proxies so the kill demonstrably
// lands mid-batch. Hedging is disabled to isolate the requeue path;
// genuine mid-line stream truncation is TestClusterStreamCutRequeues.
func TestClusterKillWorkerMidFlight(t *testing.T) {
	ctx := context.Background()
	e := suiteCircuit(t, "c880")
	bench := circuit.BenchString(e.Circuit)
	local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: e.Name})
	if err != nil {
		t.Fatal(err)
	}
	top := int64(delay.New(local).Topological())
	deltas := []int64{top, top + 1, top + 2}
	wantChecks := len(deltas) * len(local.PrimaryOutputs())

	workers := make([]*clusterWorker, 3)
	proxies := make([]*faultProxy, 3)
	addrs := make([]string, 3)
	for i := range workers {
		workers[i] = startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
		defer workers[i].stop()
		proxies[i] = newFaultProxy(t, workers[i].addr, faultSpec{delayPerLine: 20 * time.Millisecond})
		addrs[i] = proxies[i].addr
	}
	co := server.NewCoordinator(server.CoordConfig{
		Workers: addrs, QueueDepth: 4, HedgeAfter: -1, ProbeInterval: -1,
	})
	cts := httptest.NewServer(co)
	defer cts.Close()
	defer func() { _ = co.Shutdown(context.Background()) }()
	coordCl := client.New(cts.URL)

	ref := startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
	defer ref.stop()
	refCl := client.New(ref.addr)

	hash, err := coordCl.Upload(ctx, bench, client.UploadOptions{Name: e.Name})
	if err != nil {
		t.Fatal(err)
	}

	// The victim is the worker owning the most sinks — guaranteed a
	// non-empty shard, so the kill demonstrably strands checks.
	router := server.NewShardRouter(addrs)
	owned := map[string]int{}
	for _, po := range local.PrimaryOutputs() {
		w, _ := router.Assign(server.ShardKey{Hash: string(hash), Sink: local.Net(po).Name})
		owned[w]++
	}
	victim := 0
	for i, a := range addrs {
		if owned[a] > owned[addrs[victim]] {
			victim = i
		}
	}
	if owned[addrs[victim]] == 0 {
		t.Fatal("rendezvous hashing assigned no sinks at all")
	}
	// Park the victim's shard submission until well after the kill;
	// the survivors' shards stream normally in the meantime.
	proxies[victim].setSpec(faultSpec{holdCheckRequest: time.Second})

	sc := newStreamCollector(5)
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- coordCl.StreamByHash(ctx, hash,
			server.Request{Sweep: &server.SweepSpec{Deltas: deltas}}, sc.fn)
	}()
	// Kill on the fifth merged event — or, should the survivors own a
	// degenerately small share of the sinks, after 500ms, when the
	// batch is dispatched and the victim's shard is parked either way.
	select {
	case <-sc.trigger:
	case err := <-streamErr:
		t.Fatalf("stream ended before the kill could interrupt it: %v", err)
	case <-time.After(500 * time.Millisecond):
	}
	workers[victim].kill()
	t.Logf("killed worker %d (%s) owning %d of %d sinks",
		victim, addrs[victim], owned[addrs[victim]], len(local.PrimaryOutputs()))

	select {
	case err := <-streamErr:
		if err != nil {
			t.Fatalf("stream failed after worker kill: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("stream did not finish after the kill")
	}
	finals, done := sc.snapshot()
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if len(finals) != wantChecks {
		t.Fatalf("answered %d checks, want %d", len(finals), wantChecks)
	}

	// Verdicts must match a single, unharmed daemon exactly, per check.
	refResp, err := refCl.Check(ctx, server.Request{
		Netlist: bench, Name: e.Name, Sweep: &server.SweepSpec{Deltas: deltas},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := sweepFinals(refResp); !reflect.DeepEqual(finals, want) {
		t.Errorf("cluster verdicts diverge from single daemon:\n got %v\nwant %v", finals, want)
	}

	m, err := coordCl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server["requeuedChecks"] == 0 {
		t.Errorf("kill stranded no checks: %+v", m.Server)
	}
	if m.Server["workerFailures"] == 0 {
		t.Errorf("kill was not detected as a worker failure: %+v", m.Server)
	}
	if m.Server["checkFailures"] != 0 {
		t.Errorf("%d checks exhausted their attempts; survivors should have absorbed the shard", m.Server["checkFailures"])
	}
	if m.Server["checksMerged"] != int64(wantChecks) {
		t.Errorf("merged %d terminal results, want %d", m.Server["checksMerged"], wantChecks)
	}

	if err := co.Shutdown(context.Background()); err != nil {
		t.Errorf("coordinator shutdown: %v", err)
	}
	cts.Close()
	for _, w := range workers {
		w.stop()
	}
	ref.stop()
	assertNoClusterGoroutines(t)
}

// TestClusterDrainUnderLoad is the coordinator half of the §10 drain
// contract (run under -race in CI): a SIGTERM-equivalent Shutdown with
// an already-expired deadline lands mid-batch, and still every
// accepted check answers exactly once with a terminal verdict — the
// finished ones V/N, the cut-off ones C — while new submissions bounce
// with 503 draining.
func TestClusterDrainUnderLoad(t *testing.T) {
	ctx := context.Background()
	e := suiteCircuit(t, "c432")
	bench := circuit.BenchString(e.Circuit)
	local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: e.Name})
	if err != nil {
		t.Fatal(err)
	}
	top := int64(delay.New(local).Topological())
	var deltas []int64
	for d := top; d < top+10; d++ {
		deltas = append(deltas, d)
	}
	wantChecks := len(deltas) * len(local.PrimaryOutputs())

	workers := make([]*clusterWorker, 3)
	addrs := make([]string, 3)
	for i := range workers {
		workers[i] = startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
		defer workers[i].stop()
		proxy := newFaultProxy(t, workers[i].addr, faultSpec{delayPerLine: 20 * time.Millisecond})
		addrs[i] = proxy.addr
	}
	co := server.NewCoordinator(server.CoordConfig{
		Workers: addrs, QueueDepth: 4, HedgeAfter: -1, ProbeInterval: -1,
	})
	cts := httptest.NewServer(co)
	defer cts.Close()
	coordCl := client.New(cts.URL)

	hash, err := coordCl.Upload(ctx, bench, client.UploadOptions{Name: e.Name})
	if err != nil {
		t.Fatal(err)
	}
	sc := newStreamCollector(5)
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- coordCl.StreamByHash(ctx, hash,
			server.Request{Sweep: &server.SweepSpec{Deltas: deltas}}, sc.fn)
	}()
	select {
	case <-sc.trigger:
	case err := <-streamErr:
		t.Fatalf("stream ended before shutdown could interrupt it: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("no check events within 30s")
	}

	// The harshest SIGTERM: an already-expired drain deadline cancels
	// every in-flight merge at once. Each cut-off check must still
	// answer (verdict C) before the stream's done event.
	drainStart := time.Now()
	dctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = co.Shutdown(dctx)
	if d := time.Since(drainStart); d > 10*time.Second {
		t.Fatalf("coordinator shutdown took %s with an expired deadline", d)
	}

	select {
	case err := <-streamErr:
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not finish after shutdown")
	}
	finals, done := sc.snapshot()
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if len(finals) != wantChecks {
		t.Fatalf("answered %d checks, want %d", len(finals), wantChecks)
	}
	terminal := map[string]int{}
	for k, final := range finals {
		switch final {
		case "V", "N", "C":
			terminal[final]++
		default:
			t.Fatalf("check (δ=%d, #%d) ended %q, want V, N, or C", k.delta, k.index, final)
		}
	}
	t.Logf("terminal results: %v (drain triggered after 5 of %d)", terminal, wantChecks)
	if terminal["N"] == 0 {
		t.Error("no check finished before the drain; the trigger fired too early")
	}
	if terminal["C"] == 0 {
		t.Error("no check was cancelled; the drain landed after the batch finished")
	}

	// Draining: new submissions bounce with 503 + Retry-After, /readyz
	// goes unready, /healthz stays live and says so.
	_, err = coordCl.CheckByHash(ctx, hash, server.Request{
		Checks: []server.CheckSpec{{Sink: local.Net(local.PrimaryOutputs()[0]).Name, Delta: top}},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != "draining" {
		t.Fatalf("draining submit: want 503 draining, got %v", err)
	}
	if !apiErr.Temporary() || apiErr.RetryAfter <= 0 {
		t.Fatalf("draining rejection must carry a Retry-After hint: %+v", apiErr)
	}
	if _, err := coordCl.Readyz(ctx); err == nil {
		t.Fatal("readyz must report draining")
	}
	if h, err := coordCl.Healthz(ctx); err != nil || h.Status != "draining" {
		t.Fatalf("healthz during drain: want 200 with status draining, got %+v, %v", h, err)
	}

	cts.Close()
	for _, w := range workers {
		w.stop()
	}
	assertNoClusterGoroutines(t)
}

// TestClusterDifferential proves the cluster observationally identical
// to a single daemon on the substitute-suite circuits: the table1
// protocol, a sharded δ-sweep (with witnesses replayed through the
// simulator), and an explicit batch must all come back field-identical
// — modulo wall clocks and placement metadata — from a coordinator
// over three workers, a standalone daemon, and the in-process harness.
// The warm path is counter-asserted: repeating a sweep must cost every
// worker zero parses and zero prepares.
func TestClusterDifferential(t *testing.T) {
	const budget = 200000 // == core.Default().MaxBacktracks, the server default
	ctx := context.Background()

	workers := make([]*clusterWorker, 3)
	workerCls := make([]*client.Client, 3)
	addrs := make([]string, 3)
	for i := range workers {
		workers[i] = startClusterWorker(t, server.Config{Workers: 4, QueueDepth: 8})
		defer workers[i].stop()
		addrs[i] = workers[i].addr
		workerCls[i] = client.New(workers[i].addr)
	}
	co := server.NewCoordinator(server.CoordConfig{Workers: addrs, QueueDepth: 8, HedgeAfter: -1})
	cts := httptest.NewServer(co)
	defer cts.Close()
	defer func() { _ = co.Shutdown(context.Background()) }()
	coordCl := client.New(cts.URL)

	single := startClusterWorker(t, server.Config{Workers: 4, QueueDepth: 8})
	defer single.stop()
	singleCl := client.New(single.addr)

	for _, name := range []string{"c17", "c432", "c880", "c6288"} {
		e := suiteCircuit(t, name)
		t.Run(name, func(t *testing.T) {
			if name == "c6288" && os.Getenv("LTTAD_E2E_FULL") == "" {
				t.Skip("set LTTAD_E2E_FULL=1 to include the c6288 multiplier")
			}
			bench := circuit.BenchString(e.Circuit)
			local, err := circuit.ParseBenchString(bench, circuit.BenchOptions{DefaultDelay: 10, Name: name})
			if err != nil {
				t.Fatal(err)
			}
			top := int64(delay.New(local).Topological())

			// Table1: the sequential delay-search protocol, forwarded
			// whole to one worker — rows against the in-process harness,
			// the full response against the standalone daemon.
			tableReq := server.Request{Netlist: bench, Name: name, Sweep: &server.SweepSpec{Table1: true}}
			coordTable, err := coordCl.Check(ctx, tableReq)
			if err != nil {
				t.Fatalf("coordinator table1: %v", err)
			}
			singleTable, err := singleCl.Check(ctx, tableReq)
			if err != nil {
				t.Fatalf("single-daemon table1: %v", err)
			}
			wantRows := make([]server.Row, 0, 2)
			for _, r := range harness.CircuitRowsParallel(name, local, budget, 4) {
				wantRows = append(wantRows, rowFromTable1(r))
			}
			zeroResponseClocks(coordTable)
			zeroResponseClocks(singleTable)
			// Table1's first-witness-wins sweeps cancel the losers, so
			// whether a check on a later output started before the
			// witness landed is a scheduling race — the checks-run tally
			// is legitimately nondeterministic on this path (rows,
			// sweeps, and witnesses are not).
			coordTable.Done.ChecksRun, singleTable.Done.ChecksRun = 0, 0
			if !reflect.DeepEqual(coordTable.Rows, wantRows) {
				t.Errorf("coordinator rows diverge from harness:\n got %+v\nwant %+v", coordTable.Rows, wantRows)
			}
			if !reflect.DeepEqual(coordTable, singleTable) {
				t.Errorf("coordinator table1 diverges from single daemon:\n got %+v\nwant %+v", coordTable, singleTable)
			}

			// A sharded δ-sweep: δ=1 forces violations (witnesses cross
			// the wire, the merge, and the aggregation), δ=top forces
			// refutations. Field-identity after zeroing clocks only —
			// sweep aggregates carry no placement.
			sweepReq := server.Request{Netlist: bench, Name: name,
				Sweep: &server.SweepSpec{Deltas: []int64{1, top}}}
			coordSweep, err := coordCl.Check(ctx, sweepReq)
			if err != nil {
				t.Fatalf("coordinator sweep: %v", err)
			}
			singleSweep, err := singleCl.Check(ctx, sweepReq)
			if err != nil {
				t.Fatalf("single-daemon sweep: %v", err)
			}
			zeroResponseClocks(coordSweep)
			zeroResponseClocks(singleSweep)
			zeroPlacement(coordSweep)
			zeroPlacement(singleSweep)
			if !reflect.DeepEqual(coordSweep, singleSweep) {
				t.Errorf("coordinator sweep diverges from single daemon:\n got %+v\nwant %+v", coordSweep, singleSweep)
			}

			// Every violation witness the cluster served must replay
			// through the simulator and certify its violation.
			replayed := 0
			for _, sw := range coordSweep.Sweeps {
				for _, pr := range sw.PerOutput {
					if pr.Final != "V" {
						continue
					}
					replayWitness(t, local, pr)
					replayed++
				}
			}
			if replayed == 0 {
				t.Error("sharded sweep served no violation witnesses; δ=1 must witness")
			}

			// An explicit batch: per-check field-identity modulo clocks
			// and the placement metadata the coordinator stamps.
			var specs []server.CheckSpec
			for _, po := range local.PrimaryOutputs() {
				poName := local.Net(po).Name
				specs = append(specs, server.CheckSpec{Sink: poName, Delta: top},
					server.CheckSpec{Sink: poName, Delta: top + 1})
			}
			batchReq := server.Request{Netlist: bench, Name: name, Checks: specs}
			coordBatch, err := coordCl.Check(ctx, batchReq)
			if err != nil {
				t.Fatalf("coordinator batch: %v", err)
			}
			singleBatch, err := singleCl.Check(ctx, batchReq)
			if err != nil {
				t.Fatalf("single-daemon batch: %v", err)
			}
			for i, r := range coordBatch.Results {
				if r.Worker == "" || r.Attempt != 1 {
					t.Errorf("result %d missing placement metadata: worker=%q attempt=%d", i, r.Worker, r.Attempt)
				}
			}
			zeroResponseClocks(coordBatch)
			zeroResponseClocks(singleBatch)
			zeroPlacement(coordBatch)
			zeroPlacement(singleBatch)
			if !reflect.DeepEqual(coordBatch, singleBatch) {
				t.Errorf("coordinator batch diverges from single daemon:\n got %+v\nwant %+v", coordBatch, singleBatch)
			}

			// Warm path: repeating the sweep costs every worker zero
			// parses and zero prepares (the circuit is resident
			// cluster-wide), and the coordinator re-uploads nothing.
			type workerWork struct{ parses, prepares int64 }
			before := make([]workerWork, len(workerCls))
			for i, cl := range workerCls {
				m, err := cl.Metrics(ctx)
				if err != nil {
					t.Fatal(err)
				}
				before[i] = workerWork{m.Server["netlistParses"], m.Server["registryPrepares"]}
			}
			coordBefore, err := coordCl.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := coordCl.Check(ctx, sweepReq); err != nil {
				t.Fatalf("warm repeat sweep: %v", err)
			}
			for i, cl := range workerCls {
				m, err := cl.Metrics(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if m.Server["netlistParses"] != before[i].parses {
					t.Errorf("worker %d parsed on the warm path: %d → %d",
						i, before[i].parses, m.Server["netlistParses"])
				}
				if m.Server["registryPrepares"] != before[i].prepares {
					t.Errorf("worker %d prepared on the warm path: %d → %d",
						i, before[i].prepares, m.Server["registryPrepares"])
				}
			}
			coordAfter, err := coordCl.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if coordAfter.Server["workerUploads"] != coordBefore.Server["workerUploads"] {
				t.Errorf("warm repeat re-uploaded circuits: %d → %d",
					coordBefore.Server["workerUploads"], coordAfter.Server["workerUploads"])
			}
		})
	}
}

// TestCoordMetricsExposition scrapes a live coordinator's /metrics and
// validates it with the in-repo exposition parser, then pins the
// counters one sharded batch must move.
func TestCoordMetricsExposition(t *testing.T) {
	ctx := context.Background()
	workers := make([]*clusterWorker, 2)
	addrs := make([]string, 2)
	for i := range workers {
		workers[i] = startClusterWorker(t, server.Config{Workers: 2, QueueDepth: 4})
		defer workers[i].stop()
		addrs[i] = workers[i].addr
	}
	co := server.NewCoordinator(server.CoordConfig{Workers: addrs, QueueDepth: 4})
	cts := httptest.NewServer(co)
	defer cts.Close()
	defer func() { _ = co.Shutdown(context.Background()) }()
	coordCl := client.New(cts.URL)

	bench := circuit.BenchString(gen.C17(10))
	if _, err := coordCl.Check(ctx, server.Request{Netlist: bench, Name: "c17",
		Sweep: &server.SweepSpec{Deltas: []int64{40, 51}}}); err != nil {
		t.Fatal(err)
	}

	text, err := coordCl.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateProm(bytes.NewReader(text)); err != nil {
		t.Fatalf("/metrics is not a valid exposition: %v\n%s", err, text)
	}
	fams, err := obs.ParseProm(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]float64{}
	for _, f := range fams {
		for _, smp := range f.Samples {
			sums[f.Name] += smp.Value
		}
	}
	for name, want := range map[string]float64{
		"lttad_coord_workers":                2,
		"lttad_coord_batches_accepted_total": 1,
		"lttad_coord_checks_total":           4, // 2 POs × 2 deltas
		"lttad_coord_netlist_parses_total":   1,
		"lttad_coord_check_failures_total":   0,
	} {
		if got, ok := sums[name]; !ok || got != want {
			t.Errorf("exposition %s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	if sums["lttad_coord_shard_dispatches_total"] < 1 {
		t.Errorf("no shard dispatches recorded:\n%s", text)
	}
	if sums["lttad_coord_worker_uploads_total"] < 1 {
		t.Errorf("no worker uploads recorded:\n%s", text)
	}
}

// TestCoordPromFileScrape validates the coordinator counters of an
// exposition scraped from a live cluster — CI starts three workers and
// a coordinator binary, posts one two-check inline batch, curls the
// coordinator's /metrics, and points COORD_PROM_FILE here. Skips when
// unset.
func TestCoordPromFileScrape(t *testing.T) {
	path := os.Getenv("COORD_PROM_FILE")
	if path == "" {
		t.Skip("COORD_PROM_FILE not set (CI-only scrape validation)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := obs.ParseProm(f)
	if err != nil {
		t.Fatalf("scraped exposition invalid: %v", err)
	}
	sums := map[string]float64{}
	for _, fam := range fams {
		for _, smp := range fam.Samples {
			sums[fam.Name] += smp.Value
		}
	}
	for name, want := range map[string]float64{
		"lttad_coord_workers":                3,
		"lttad_coord_workers_alive":          3,
		"lttad_coord_batches_accepted_total": 1,
		"lttad_coord_checks_total":           2,
		"lttad_coord_netlist_parses_total":   1,
		"lttad_coord_check_failures_total":   0,
	} {
		if got, ok := sums[name]; !ok || got != want {
			t.Errorf("scrape %s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	if sums["lttad_coord_shard_dispatches_total"] < 1 {
		t.Error("scrape records no shard dispatches")
	}
}
