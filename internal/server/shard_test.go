package server_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/server"
)

func key(i int) server.ShardKey {
	return server.ShardKey{Hash: "sha256:abc", Sink: fmt.Sprintf("G%d", i)}
}

// TestShardRouterPartition: a key set is partitioned — every key lands
// on exactly one worker, and the per-worker shard sizes sum to the key
// count.
func TestShardRouterPartition(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := server.NewShardRouter(workers)
	owned := map[string]int{}
	const n = 1000
	for i := 0; i < n; i++ {
		w, ok := r.Assign(key(i))
		if !ok {
			t.Fatalf("key %d unassigned", i)
		}
		found := false
		for _, cand := range workers {
			if cand == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d assigned to unknown worker %q", i, w)
		}
		owned[w]++
	}
	total := 0
	for _, w := range workers {
		if owned[w] == 0 {
			t.Errorf("worker %s owns no keys out of %d — hashing is not spreading", w, n)
		}
		total += owned[w]
	}
	if total != n {
		t.Fatalf("shard sizes sum to %d, want %d", total, n)
	}
}

// TestShardRouterOrderIrrelevant: the assignment is a function of the
// worker *set*; listing order and duplicates must not move any key.
func TestShardRouterOrderIrrelevant(t *testing.T) {
	a := server.NewShardRouter([]string{"w1", "w2", "w3"})
	b := server.NewShardRouter([]string{"w3", "w1", "w2", "w1", ""})
	if !reflect.DeepEqual(a.Workers(), b.Workers()) {
		t.Fatalf("worker sets differ: %v vs %v", a.Workers(), b.Workers())
	}
	for i := 0; i < 200; i++ {
		wa, _ := a.Assign(key(i))
		wb, _ := b.Assign(key(i))
		if wa != wb {
			t.Fatalf("key %d moved with listing order: %s vs %s", i, wa, wb)
		}
	}
}

// TestShardRouterMinimalMovement: removing one worker relocates only
// that worker's keys.
func TestShardRouterMinimalMovement(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	full := server.NewShardRouter(workers)
	for _, dead := range workers {
		var rest []string
		for _, w := range workers {
			if w != dead {
				rest = append(rest, w)
			}
		}
		shrunk := server.NewShardRouter(rest)
		moved := 0
		for i := 0; i < 500; i++ {
			before, _ := full.Assign(key(i))
			after, _ := shrunk.Assign(key(i))
			if before != dead {
				if after != before {
					t.Fatalf("removing %s moved key %d from %s to %s", dead, i, before, after)
				}
				continue
			}
			moved++
			if after == dead {
				t.Fatalf("key %d still assigned to removed worker %s", i, dead)
			}
		}
		if moved == 0 {
			t.Errorf("worker %s owned nothing out of 500 keys", dead)
		}
	}
}

// TestShardRouterRanked: Ranked is a permutation of the worker set
// headed by Assign — the fallback order requeues and hedges walk.
func TestShardRouterRanked(t *testing.T) {
	r := server.NewShardRouter([]string{"w1", "w2", "w3", "w4"})
	for i := 0; i < 100; i++ {
		ranked := r.Ranked(key(i))
		owner, _ := r.Assign(key(i))
		if ranked[0] != owner {
			t.Fatalf("Ranked[0]=%s, Assign=%s", ranked[0], owner)
		}
		s := append([]string(nil), ranked...)
		sort.Strings(s)
		if !reflect.DeepEqual(s, r.Workers()) {
			t.Fatalf("Ranked is not a permutation of the worker set: %v", ranked)
		}
	}
}

func TestShardRouterEmpty(t *testing.T) {
	r := server.NewShardRouter(nil)
	if _, ok := r.Assign(key(0)); ok {
		t.Fatal("empty router assigned a key")
	}
	if got := r.Ranked(key(0)); len(got) != 0 {
		t.Fatalf("empty router ranked %v", got)
	}
}

// FuzzShardRouter fuzzes the three cluster-critical properties over
// arbitrary worker names and shard keys: every key is assigned to
// exactly one worker of the set, the assignment is stable under any
// permutation of the worker list, and removing a worker moves only the
// keys that worker owned.
func FuzzShardRouter(f *testing.F) {
	f.Add(uint8(3), "node", "sha256:d00d", "G17", uint64(1), uint8(0))
	f.Add(uint8(1), "w", "", "", uint64(42), uint8(7))
	f.Add(uint8(16), "host:90", "sha256:ffff", "out[3]", uint64(1<<60), uint8(200))
	f.Fuzz(func(t *testing.T, nWorkers uint8, salt, hash, sink string, permSeed uint64, removeIdx uint8) {
		n := int(nWorkers)%16 + 1
		workers := make([]string, n)
		for i := range workers {
			workers[i] = fmt.Sprintf("w%d-%s", i, salt)
		}
		r := server.NewShardRouter(workers)
		k := server.ShardKey{Hash: hash, Sink: sink}

		// Exactly once: assigned, and to a member of the set.
		owner, ok := r.Assign(k)
		if !ok {
			t.Fatalf("key unassigned over %d workers", n)
		}
		members := map[string]bool{}
		for _, w := range r.Workers() {
			members[w] = true
		}
		if !members[owner] {
			t.Fatalf("assigned to %q, not in the set %v", owner, r.Workers())
		}

		// Permutation stability.
		perm := append([]string(nil), workers...)
		rng := rand.New(rand.NewSource(int64(permSeed)))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got, _ := server.NewShardRouter(perm).Assign(k); got != owner {
			t.Fatalf("permuted worker list moved the key: %q vs %q", got, owner)
		}

		// Ranked is a permutation of the set headed by the owner.
		ranked := r.Ranked(k)
		if len(ranked) != len(r.Workers()) || ranked[0] != owner {
			t.Fatalf("Ranked %v inconsistent with Assign %q", ranked, owner)
		}
		seen := map[string]bool{}
		for _, w := range ranked {
			if seen[w] || !members[w] {
				t.Fatalf("Ranked %v repeats or invents workers", ranked)
			}
			seen[w] = true
		}

		// Minimal movement on removal.
		if len(r.Workers()) > 1 {
			dead := r.Workers()[int(removeIdx)%len(r.Workers())]
			var rest []string
			for _, w := range r.Workers() {
				if w != dead {
					rest = append(rest, w)
				}
			}
			after, ok := server.NewShardRouter(rest).Assign(k)
			if !ok {
				t.Fatal("key unassigned after removal")
			}
			if dead != owner && after != owner {
				t.Fatalf("removing non-owner %q moved the key %q → %q", dead, owner, after)
			}
			if dead == owner && after == dead {
				t.Fatalf("key still assigned to removed worker %q", dead)
			}
			if dead == owner && after != ranked[1] {
				t.Fatalf("reassignment %q skipped the rank order (want %q)", after, ranked[1])
			}
		}
	})
}
