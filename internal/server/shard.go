package server

import (
	"hash/fnv"
	"sort"
)

// ShardKey is the routing identity of one check in a sharded batch:
// the circuit's content address plus the sink net's name. Every check
// on one (circuit, sink) routes to the same worker, so that worker's
// prepared-state LRU entry, cached sink cone, and warm-start memos
// stay hot for the whole δ-schedule of that sink.
type ShardKey struct {
	Hash string
	Sink string
}

// ShardRouter assigns shard keys to workers by rendezvous
// (highest-random-weight) hashing: each (worker, key) pair gets a
// deterministic score and the key belongs to the highest-scoring
// worker. The properties the cluster relies on fall out directly:
//
//   - every key is assigned to exactly one worker (argmax of a fixed
//     score set);
//   - the assignment depends only on the worker *set*, never on the
//     order workers were listed in (FuzzShardRouter pins this);
//   - removing a worker moves only the keys that worker owned — every
//     other key keeps its argmax — which is the consistent-hashing
//     minimal-movement property that keeps surviving workers' caches
//     hot through a requeue.
//
// A router is immutable; build a new one when the live worker set
// changes (construction is O(n log n) for n workers, assignment O(n)
// per key — n is a handful of daemons, not a hash ring of vnodes).
type ShardRouter struct {
	workers []string
}

// NewShardRouter builds a router over a worker set. Duplicates are
// collapsed; order is irrelevant.
func NewShardRouter(workers []string) *ShardRouter {
	ws := make([]string, 0, len(workers))
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return &ShardRouter{workers: ws}
}

// Workers returns the router's worker set, sorted.
func (r *ShardRouter) Workers() []string { return r.workers }

// Assign returns the worker owning key, or ok=false on an empty
// router.
func (r *ShardRouter) Assign(key ShardKey) (string, bool) {
	best, bestScore := "", uint64(0)
	for _, w := range r.workers {
		s := shardScore(w, key)
		// Ties (astronomically unlikely across distinct worker names)
		// break toward the lexicographically larger worker so the
		// choice stays a pure function of the set.
		if best == "" || s > bestScore || (s == bestScore && w > best) {
			best, bestScore = w, s
		}
	}
	return best, best != ""
}

// Ranked returns all workers ordered by descending preference for key:
// Ranked(k)[0] == Assign(k), and the tail is the fallback order a
// requeue or hedge walks when earlier choices are dead or already
// racing the check.
func (r *ShardRouter) Ranked(key ShardKey) []string {
	type scored struct {
		w string
		s uint64
	}
	ss := make([]scored, len(r.workers))
	for i, w := range r.workers {
		ss[i] = scored{w: w, s: shardScore(w, key)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].s != ss[j].s {
			return ss[i].s > ss[j].s
		}
		return ss[i].w > ss[j].w
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.w
	}
	return out
}

// shardScore is the rendezvous weight of (worker, key): FNV-1a over
// the three length-delimited components, pushed through a
// splitmix64-style finalizer. The finalizer matters: raw FNV-1a has
// weak avalanche on short, similar inputs (worker names like "w1",
// "w2"), and without it some workers essentially never win the
// argmax, collapsing the partition. The score only needs to be
// deterministic and well-mixed, not adversary-proof (workers are
// operator-configured).
func shardScore(worker string, key ShardKey) uint64 {
	h := fnv.New64a()
	writeDelim := func(s string) {
		var n [1]byte
		for len(s) > 255 {
			n[0] = 255
			h.Write(n[:])
			h.Write([]byte(s[:255]))
			s = s[255:]
		}
		n[0] = byte(len(s))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeDelim(worker)
	writeDelim(key.Hash)
	writeDelim(key.Sink)
	s := h.Sum64()
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	s *= 0xc4ceb9fe1a85ec53
	s ^= s >> 33
	return s
}
