package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/client"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/server"
)

// TestQueueFullBackpressure pins the bounded-admission contract: with
// the single queue slot held by an in-flight batch, the next
// submission is rejected with 429 + Retry-After instead of queueing,
// and admission recovers once the slot frees.
func TestQueueFullBackpressure(t *testing.T) {
	src := gen.C17(10)
	bench := circuit.BenchString(src)
	top := int64(delay.New(src).Topological())

	s := server.New(server.Config{Workers: 1, QueueDepth: 1, MaxChecks: 1 << 20, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		_ = s.Shutdown(context.Background())
		ts.Close()
	})
	cl := client.New(ts.URL)

	// Occupy the only slot: a streaming sweep big enough (megabytes of
	// NDJSON) that, with the client not reading past the first event,
	// the server blocks writing — the handler stays alive and the slot
	// stays held until we release the stream.
	admitted := make(chan struct{})
	release := make(chan struct{})
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- cl.Stream(context.Background(), server.Request{
			Netlist: bench,
			Sweep:   &server.SweepSpec{Deltas: manyDeltas(top+1, 16384)},
		}, func(ev server.Event) error {
			if ev.Type == "circuit" {
				close(admitted)
				<-release // hold the response (and so the slot) open
			}
			return nil
		})
	}()
	select {
	case <-admitted:
	case err := <-streamErr:
		t.Fatalf("stream ended before admission: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("batch never admitted")
	}

	_, err := cl.Check(context.Background(), server.Request{
		Netlist: bench, Sweep: &server.SweepSpec{Deltas: []int64{top + 1}},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != "queue_full" {
		t.Fatalf("full queue: want 429 queue_full, got %v", err)
	}
	if !apiErr.Temporary() || apiErr.RetryAfter != 2*time.Second {
		t.Fatalf("429 must carry the configured Retry-After: %+v", apiErr)
	}

	close(release)
	if err := <-streamErr; err != nil {
		t.Fatalf("held stream failed: %v", err)
	}
	// Slot released: the same submission is admitted now.
	if _, err := cl.Check(context.Background(), server.Request{
		Netlist: bench, Sweep: &server.SweepSpec{Deltas: []int64{top + 1}},
	}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func manyDeltas(start int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}
