package waveform

import "fmt"

// Signal is an abstract signal (Definition 2): a pair of abstract
// waveforms, one per settling class. W0 bounds the waveforms that
// settle to 0, W1 those that settle to 1. The set denoted by a Signal
// is the union of the sets denoted by its two components.
type Signal struct {
	W0, W1 Wave
}

// EmptySignal denotes the empty set (φ, φ): the constraint system is
// inconsistent as soon as any net's domain reaches it.
var EmptySignal = Signal{W0: Empty, W1: Empty}

// FullSignal contains every binary waveform: (0|−∞..+∞, 1|−∞..+∞).
var FullSignal = Signal{W0: Full, W1: Full}

// FloatingInput is the floating-mode primary-input domain
// (0|−∞..0, 1|−∞..0): any waveform that is stable after time 0.
var FloatingInput = Signal{W0: StableAfter(0), W1: StableAfter(0)}

// CheckOutput returns the timing-check output domain
// (0|δ..+∞, 1|δ..+∞): only waveforms whose last transition occurs at or
// after δ, i.e. the waveforms that violate the check.
func CheckOutput(delta Time) Signal {
	return Signal{W0: TransitionAtOrAfter(delta), W1: TransitionAtOrAfter(delta)}
}

// SettledTo returns the domain of waveforms that settle to value v
// (v must be 0 or 1) with an unconstrained last-transition interval.
func SettledTo(v int) Signal {
	if v == 0 {
		return Signal{W0: Full, W1: Empty}
	}
	return Signal{W0: Empty, W1: Full}
}

// Wave returns the component for class v (0 or 1).
func (s Signal) Wave(v int) Wave {
	if v == 0 {
		return s.W0
	}
	return s.W1
}

// WithWave returns s with the class-v component replaced by w.
func (s Signal) WithWave(v int, w Wave) Signal {
	if v == 0 {
		s.W0 = w
	} else {
		s.W1 = w
	}
	return s
}

// IsEmpty reports whether both components are empty, i.e. the signal
// denotes the empty set and the constraint system is inconsistent.
func (s Signal) IsEmpty() bool { return s.W0.IsEmpty() && s.W1.IsEmpty() }

// Canon normalises both components (all empty waves become Empty).
func (s Signal) Canon() Signal { return Signal{W0: s.W0.Canon(), W1: s.W1.Canon()} }

// Equal reports componentwise equality.
func (s Signal) Equal(o Signal) bool { return s.W0.Equal(o.W0) && s.W1.Equal(o.W1) }

// Narrower reports the strict narrowness relation of Definition 2.
func (s Signal) Narrower(o Signal) bool {
	return (s.W0.Narrower(o.W0) && s.W1.NarrowerEq(o.W1)) ||
		(s.W0.NarrowerEq(o.W0) && s.W1.Narrower(o.W1))
}

// NarrowerEq reports s ≤ o.
func (s Signal) NarrowerEq(o Signal) bool { return s.W0.NarrowerEq(o.W0) && s.W1.NarrowerEq(o.W1) }

// ContainedIn reports set inclusion, which coincides with s ≤ o.
func (s Signal) ContainedIn(o Signal) bool { return s.NarrowerEq(o) }

// Intersect returns the componentwise intersection.
func (s Signal) Intersect(o Signal) Signal {
	return Signal{W0: s.W0.Intersect(o.W0), W1: s.W1.Intersect(o.W1)}
}

// Union returns the componentwise union hull.
func (s Signal) Union(o Signal) Signal {
	return Signal{W0: s.W0.Union(o.W0), W1: s.W1.Union(o.W1)}
}

// Invert swaps the two classes; it is the effect of an inverting,
// delayless gate on a domain.
func (s Signal) Invert() Signal { return Signal{W0: s.W1, W1: s.W0} }

// Shift translates both components by d time units.
func (s Signal) Shift(d Time) Signal { return Signal{W0: s.W0.Shift(d), W1: s.W1.Shift(d)} }

// KnownValue reports whether exactly one class survives, and if so
// which. It returns (-1, false) when both or neither class is present.
func (s Signal) KnownValue() (int, bool) {
	switch {
	case s.W0.IsEmpty() && !s.W1.IsEmpty():
		return 1, true
	case !s.W0.IsEmpty() && s.W1.IsEmpty():
		return 0, true
	default:
		return -1, false
	}
}

// LatestTransition returns the largest possible last-transition time
// over both classes (NegInf if the signal is empty).
func (s Signal) LatestTransition() Time {
	t := NegInf
	if !s.W0.IsEmpty() {
		t = MaxTime(t, s.W0.Lmax)
	}
	if !s.W1.IsEmpty() {
		t = MaxTime(t, s.W1.Lmax)
	}
	return t
}

// EarliestRequiredTransition returns the smallest Lmin over the
// non-empty classes (PosInf if the signal is empty). It is the
// "smallest of D̄.lmin and D̲.lmin" quantity used by the paper when
// deciding whether a side input can be the cause of a violation.
func (s Signal) EarliestRequiredTransition() Time {
	t := PosInf
	if !s.W0.IsEmpty() {
		t = MinTime(t, s.W0.Lmin)
	}
	if !s.W1.IsEmpty() {
		t = MinTime(t, s.W1.Lmin)
	}
	return t
}

// HasTransitionAtOrAfter reports whether the signal contains a waveform
// whose last transition occurs at or after time t — the membership test
// of Definition 7 (dynamic carriers).
func (s Signal) HasTransitionAtOrAfter(t Time) bool {
	return !s.Intersect(CheckOutput(t)).IsEmpty()
}

// String renders the signal in the paper's (0|lmin^max, 1|lmin^max)
// notation.
func (s Signal) String() string {
	f := func(v int, w Wave) string {
		if w.IsEmpty() {
			return "φ"
		}
		return fmt.Sprintf("%d|%s^%s", v, w.Lmin, w.Lmax)
	}
	return fmt.Sprintf("(%s, %s)", f(0, s.W0), f(1, s.W1))
}
