package waveform

import (
	"math/rand"
	"testing"
)

func randomSignal(r *rand.Rand) Signal {
	return Signal{W0: randomWave(r), W1: randomWave(r)}
}

func TestSignalConstructors(t *testing.T) {
	if !EmptySignal.IsEmpty() {
		t.Fatal("EmptySignal must be empty")
	}
	if FullSignal.IsEmpty() {
		t.Fatal("FullSignal must not be empty")
	}
	fi := FloatingInput
	if fi.W0 != (Wave{NegInf, 0}) || fi.W1 != (Wave{NegInf, 0}) {
		t.Fatalf("FloatingInput = %v", fi)
	}
	co := CheckOutput(61)
	if co.W0 != (Wave{61, PosInf}) || co.W1 != (Wave{61, PosInf}) {
		t.Fatalf("CheckOutput = %v", co)
	}
	if v, ok := SettledTo(0).KnownValue(); !ok || v != 0 {
		t.Fatal("SettledTo(0) must know value 0")
	}
	if v, ok := SettledTo(1).KnownValue(); !ok || v != 1 {
		t.Fatal("SettledTo(1) must know value 1")
	}
}

func TestSignalWaveAccessors(t *testing.T) {
	s := Signal{W0: Wave{1, 2}, W1: Wave{3, 4}}
	if s.Wave(0) != (Wave{1, 2}) || s.Wave(1) != (Wave{3, 4}) {
		t.Fatal("Wave accessor wrong")
	}
	s2 := s.WithWave(0, Wave{5, 6})
	if s2.W0 != (Wave{5, 6}) || s2.W1 != (Wave{3, 4}) {
		t.Fatal("WithWave(0) wrong")
	}
	s3 := s.WithWave(1, Wave{7, 8})
	if s3.W1 != (Wave{7, 8}) || s3.W0 != (Wave{1, 2}) {
		t.Fatal("WithWave(1) wrong")
	}
}

func TestSignalKnownValue(t *testing.T) {
	if _, ok := FullSignal.KnownValue(); ok {
		t.Fatal("full signal has no known value")
	}
	if _, ok := EmptySignal.KnownValue(); ok {
		t.Fatal("empty signal has no known value")
	}
	s := Signal{W0: Full, W1: Empty}
	if v, ok := s.KnownValue(); !ok || v != 0 {
		t.Fatal("class-0-only must know 0")
	}
}

func TestSignalInvert(t *testing.T) {
	s := Signal{W0: Wave{1, 2}, W1: Wave{3, 4}}
	i := s.Invert()
	if i.W0 != (Wave{3, 4}) || i.W1 != (Wave{1, 2}) {
		t.Fatal("Invert must swap classes")
	}
	if !s.Invert().Invert().Equal(s) {
		t.Fatal("double inversion must be identity")
	}
}

func TestSignalIntersectUnionComponentwise(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		a, b := randomSignal(r), randomSignal(r)
		got := a.Intersect(b)
		if !got.W0.Equal(a.W0.Intersect(b.W0)) || !got.W1.Equal(a.W1.Intersect(b.W1)) {
			t.Fatal("Intersect must be componentwise")
		}
		gu := a.Union(b)
		if !gu.W0.Equal(a.W0.Union(b.W0)) || !gu.W1.Equal(a.W1.Union(b.W1)) {
			t.Fatal("Union must be componentwise")
		}
		if !a.Intersect(b).NarrowerEq(a) || !a.NarrowerEq(a.Union(b)) {
			t.Fatal("lattice ordering violated")
		}
	}
}

func TestSignalNarrowness(t *testing.T) {
	a := Signal{W0: Wave{2, 4}, W1: Wave{1, 5}}
	b := Signal{W0: Wave{1, 5}, W1: Wave{1, 5}}
	if !a.Narrower(b) {
		t.Fatal("a < b must hold (one component strictly narrower)")
	}
	if a.Narrower(a) {
		t.Fatal("not strictly narrower than self")
	}
	if !a.NarrowerEq(a) {
		t.Fatal("≤ must be reflexive")
	}
	if !a.ContainedIn(b) {
		t.Fatal("inclusion must follow narrowness")
	}
}

func TestSignalLatestAndEarliest(t *testing.T) {
	s := Signal{W0: Wave{2, 40}, W1: Wave{10, 30}}
	if s.LatestTransition() != 40 {
		t.Fatalf("latest = %s", s.LatestTransition())
	}
	if s.EarliestRequiredTransition() != 2 {
		t.Fatalf("earliest = %s", s.EarliestRequiredTransition())
	}
	one := Signal{W0: Empty, W1: Wave{10, 30}}
	if one.LatestTransition() != 30 || one.EarliestRequiredTransition() != 10 {
		t.Fatal("single-class bounds wrong")
	}
	if EmptySignal.LatestTransition() != NegInf {
		t.Fatal("empty latest must be -inf")
	}
	if EmptySignal.EarliestRequiredTransition() != PosInf {
		t.Fatal("empty earliest must be +inf")
	}
}

func TestSignalHasTransitionAtOrAfter(t *testing.T) {
	s := Signal{W0: Wave{NegInf, 50}, W1: Empty}
	if !s.HasTransitionAtOrAfter(50) {
		t.Fatal("transition at 50 must be possible")
	}
	if s.HasTransitionAtOrAfter(51) {
		t.Fatal("transition at 51 must be impossible")
	}
	if EmptySignal.HasTransitionAtOrAfter(NegInf) {
		t.Fatal("empty signal has no transitions")
	}
}

func TestSignalShift(t *testing.T) {
	s := Signal{W0: Wave{2, 4}, W1: Wave{NegInf, 0}}
	g := s.Shift(10)
	if g.W0 != (Wave{12, 14}) || g.W1 != (Wave{NegInf, 10}) {
		t.Fatalf("Shift = %v", g)
	}
}

func TestSignalString(t *testing.T) {
	s := Signal{W0: Wave{NegInf, 0}, W1: Empty}
	if got := s.String(); got != "(0|-inf^0, φ)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSignalCanon(t *testing.T) {
	s := Signal{W0: Wave{9, 1}, W1: Wave{4, 2}}.Canon()
	if s.W0 != Empty || s.W1 != Empty {
		t.Fatal("Canon must normalise empties")
	}
}
