package waveform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleTimes is the concrete last-transition universe used by the
// exhaustive model tests: −∞ plus a small window of finite times. Every
// abstract-waveform operation is checked against its set semantics over
// this universe.
var sampleTimes = []Time{NegInf, -3, -2, -1, 0, 1, 2, 3, 4, 5}

// members returns the subset of sampleTimes contained in w.
func members(w Wave) map[Time]bool {
	m := map[Time]bool{}
	for _, t := range sampleTimes {
		if w.Contains(t) {
			m[t] = true
		}
	}
	return m
}

// sampleWaves enumerates a representative set of waves over the window:
// all intervals with bounds drawn from the sample times plus ±∞, and
// the empty wave.
func sampleWaves() []Wave {
	bounds := []Time{NegInf, -3, -1, 0, 1, 2, 4, 5, PosInf}
	var ws []Wave
	for _, lo := range bounds {
		for _, hi := range bounds {
			ws = append(ws, Wave{Lmin: lo, Lmax: hi}.Canon())
		}
	}
	return ws
}

func TestWaveEmptiness(t *testing.T) {
	if !Empty.IsEmpty() {
		t.Fatal("Empty must be empty")
	}
	if Full.IsEmpty() {
		t.Fatal("Full must not be empty")
	}
	if !(Wave{Lmin: 5, Lmax: 4}).IsEmpty() {
		t.Fatal("lmin>lmax must be empty")
	}
	if (Wave{Lmin: 5, Lmax: 5}).IsEmpty() {
		t.Fatal("point interval must be non-empty")
	}
}

func TestWaveCanon(t *testing.T) {
	w := Wave{Lmin: 9, Lmax: 2}.Canon()
	if w != Empty {
		t.Fatalf("Canon of empty wave = %v, want Empty", w)
	}
	u := Wave{Lmin: 1, Lmax: 2}
	if u.Canon() != u {
		t.Fatal("Canon must not change non-empty waves")
	}
}

func TestWaveEqual(t *testing.T) {
	if !(Wave{1, 2}).Equal(Wave{1, 2}) {
		t.Fatal("identical waves must be equal")
	}
	if (Wave{1, 2}).Equal(Wave{1, 3}) {
		t.Fatal("different waves must differ")
	}
	// All empties are equal regardless of representation.
	if !(Wave{9, 2}).Equal(Wave{100, -100}) {
		t.Fatal("all empty waves are equal")
	}
}

func TestWaveIntersectIsSetIntersection(t *testing.T) {
	for _, a := range sampleWaves() {
		for _, b := range sampleWaves() {
			got := members(a.Intersect(b))
			ma, mb := members(a), members(b)
			for _, tt := range sampleTimes {
				want := ma[tt] && mb[tt]
				if got[tt] != want {
					t.Fatalf("Intersect(%v,%v) membership of %s = %v, want %v", a, b, tt, got[tt], want)
				}
			}
		}
	}
}

func TestWaveUnionIsHull(t *testing.T) {
	for _, a := range sampleWaves() {
		for _, b := range sampleWaves() {
			u := a.Union(b)
			ma, mb := members(a), members(b)
			mu := members(u)
			// Hull property 1: contains both operands.
			for _, tt := range sampleTimes {
				if (ma[tt] || mb[tt]) && !mu[tt] {
					t.Fatalf("Union(%v,%v) lost member %s", a, b, tt)
				}
			}
			// Hull property 2: minimal — no narrower wave contains both.
			if !a.ContainedIn(u) || !b.ContainedIn(u) {
				t.Fatalf("operands not contained in union of %v,%v", a, b)
			}
			if !a.IsEmpty() && !b.IsEmpty() {
				if u.Lmin != MinTime(a.Lmin, b.Lmin) || u.Lmax != MaxTime(a.Lmax, b.Lmax) {
					t.Fatalf("Union(%v,%v) = %v is not the hull", a, b, u)
				}
			}
		}
	}
}

func TestWaveUnionExactLemma1(t *testing.T) {
	// Lemma 1: the hull equals the set union iff the intervals are
	// overlapping or adjacent.
	for _, a := range sampleWaves() {
		for _, b := range sampleWaves() {
			exact := a.UnionExact(b)
			u := a.Union(b)
			ma, mb, mu := members(a), members(b), members(u)
			setExact := true
			for _, tt := range sampleTimes {
				if mu[tt] && !ma[tt] && !mb[tt] {
					setExact = false
				}
			}
			if exact && !setExact {
				t.Fatalf("UnionExact(%v,%v) claims exact but hull has extra members", a, b)
			}
			// The converse can fail at the window edges (extra members
			// may lie outside the sampled universe), so only the sound
			// direction is asserted.
		}
	}
}

func TestWaveNarrownessMatchesInclusion(t *testing.T) {
	// w ⊆ o as sets over the sample universe whenever w ≤ o.
	for _, a := range sampleWaves() {
		for _, b := range sampleWaves() {
			if a.NarrowerEq(b) {
				ma, mb := members(a), members(b)
				for _, tt := range sampleTimes {
					if ma[tt] && !mb[tt] {
						t.Fatalf("%v ≤ %v but member %s not in the wider wave", a, b, tt)
					}
				}
			}
		}
	}
}

func TestWaveNarrowerStrict(t *testing.T) {
	if (Wave{1, 5}).Narrower(Wave{1, 5}) {
		t.Fatal("a wave is not strictly narrower than itself")
	}
	if !(Wave{2, 5}).Narrower(Wave{1, 5}) {
		t.Fatal("[2,5] < [1,5] must hold")
	}
	if !(Wave{1, 4}).Narrower(Wave{1, 5}) {
		t.Fatal("[1,4] < [1,5] must hold")
	}
	if !Empty.Narrower(Wave{1, 5}) {
		t.Fatal("φ is narrower than any non-empty wave")
	}
	if Empty.Narrower(Empty) {
		t.Fatal("φ is not narrower than φ")
	}
	if (Wave{0, 9}).Narrower(Wave{1, 5}) {
		t.Fatal("wider wave must not be narrower")
	}
}

func TestWaveShift(t *testing.T) {
	w := Wave{Lmin: 2, Lmax: 7}
	if got := w.Shift(10); got != (Wave{12, 17}) {
		t.Fatalf("Shift = %v", got)
	}
	if got := (Wave{NegInf, 7}).Shift(10); got != (Wave{NegInf, 17}) {
		t.Fatalf("Shift with -inf = %v", got)
	}
	if !Empty.Shift(5).IsEmpty() {
		t.Fatal("shift of empty must stay empty")
	}
}

func TestWaveConstructors(t *testing.T) {
	if StableAfter(0) != (Wave{NegInf, 0}) {
		t.Fatal("StableAfter wrong")
	}
	if TransitionAtOrAfter(61) != (Wave{61, PosInf}) {
		t.Fatal("TransitionAtOrAfter wrong")
	}
	if Interval(3, 9) != (Wave{3, 9}) {
		t.Fatal("Interval wrong")
	}
}

// randomWave draws a wave with bounds in a small window (possibly
// empty, possibly infinite) for property tests.
func randomWave(r *rand.Rand) Wave {
	pick := func() Time {
		switch r.Intn(6) {
		case 0:
			return NegInf
		case 1:
			return PosInf
		default:
			return Time(r.Intn(21) - 10)
		}
	}
	return Wave{Lmin: pick(), Lmax: pick()}.Canon()
}

func TestWaveLatticeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b, c := randomWave(r), randomWave(r), randomWave(r)
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatalf("intersect not commutative: %v %v", a, b)
		}
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		if !a.Intersect(a).Equal(a) || !a.Union(a).Equal(a) {
			t.Fatalf("idempotence fails: %v", a)
		}
		if !a.Intersect(b.Intersect(c)).Equal(a.Intersect(b).Intersect(c)) {
			t.Fatalf("intersect not associative: %v %v %v", a, b, c)
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			t.Fatalf("union not associative: %v %v %v", a, b, c)
		}
		// Absorption-style monotonicity: a∩b ≤ a ≤ a∪b.
		if !a.Intersect(b).NarrowerEq(a) {
			t.Fatalf("a∩b must be ≤ a: %v %v", a, b)
		}
		if !a.NarrowerEq(a.Union(b)) {
			t.Fatalf("a must be ≤ a∪b: %v %v", a, b)
		}
	}
}

func TestWaveIntersectMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomWave(r), randomWave(r), randomWave(r)
		if !a.NarrowerEq(b) {
			return true // vacuous
		}
		return a.Intersect(c).NarrowerEq(b.Intersect(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWaveString(t *testing.T) {
	if Empty.String() != "φ" {
		t.Fatal("empty string form wrong")
	}
	if (Wave{NegInf, 5}).String() != "[-inf,5]" {
		t.Fatalf("got %s", (Wave{NegInf, 5}).String())
	}
}
