package waveform

import "fmt"

// Wave is an abstract waveform for one settling class (Definition 1 of
// the paper): the set of binary waveforms that are stable at the class
// value for every t > Lmax and whose last time differing from the class
// value lies in [Lmin, Lmax]. A waveform that never differs from the
// class value (constant) has last-transition time −∞ and is a member
// exactly when Lmin == NegInf.
//
// The class value itself (0 or 1) is carried by the waveform's position
// inside a Signal, not by the Wave; all Wave operations assume both
// operands share a class.
//
// A Wave is empty — denotes the empty set φ — iff Lmin > Lmax.
type Wave struct {
	Lmin, Lmax Time
}

// Empty is the canonical empty abstract waveform φ.
var Empty = Wave{Lmin: PosInf, Lmax: NegInf}

// Full is the abstract waveform containing every binary waveform of the
// class: last transition anywhere in (−∞, +∞).
var Full = Wave{Lmin: NegInf, Lmax: PosInf}

// StableAfter returns the abstract waveform of all class waveforms that
// are stable after time t (last transition ≤ t, including never).
func StableAfter(t Time) Wave { return Wave{Lmin: NegInf, Lmax: t} }

// TransitionAtOrAfter returns the abstract waveform of all class
// waveforms whose last transition occurs at or after time t.
func TransitionAtOrAfter(t Time) Wave { return Wave{Lmin: t, Lmax: PosInf} }

// Interval constructs the abstract waveform with the given
// last-transition interval.
func Interval(lmin, lmax Time) Wave { return Wave{Lmin: lmin, Lmax: lmax} }

// IsEmpty reports whether w denotes the empty set.
func (w Wave) IsEmpty() bool { return w.Lmin > w.Lmax }

// Canon returns w normalised so that every empty wave compares equal to
// Empty. Non-empty waves are returned unchanged.
func (w Wave) Canon() Wave {
	if w.IsEmpty() {
		return Empty
	}
	return w
}

// Equal reports equality per the paper: equal bounds, or both empty.
func (w Wave) Equal(o Wave) bool {
	if w.IsEmpty() || o.IsEmpty() {
		return w.IsEmpty() && o.IsEmpty()
	}
	return w.Lmin == o.Lmin && w.Lmax == o.Lmax
}

// Narrower reports the strict narrowness relation w < o: w denotes a
// strictly smaller abstract interval. The empty wave is narrower than
// every non-empty wave.
func (w Wave) Narrower(o Wave) bool {
	if o.IsEmpty() {
		return false
	}
	if w.IsEmpty() {
		return true
	}
	return (w.Lmax <= o.Lmax && w.Lmin > o.Lmin) || (w.Lmax < o.Lmax && w.Lmin >= o.Lmin)
}

// NarrowerEq reports w ≤ o (narrower or equal).
func (w Wave) NarrowerEq(o Wave) bool { return w.Equal(o) || w.Narrower(o) }

// ContainedIn reports set inclusion w ⊆ o, which for abstract waveforms
// of one class coincides with w ≤ o.
func (w Wave) ContainedIn(o Wave) bool { return w.NarrowerEq(o) }

// Contains reports whether a concrete last-transition time t (NegInf
// for a constant waveform) lies inside w's interval.
func (w Wave) Contains(t Time) bool { return !w.IsEmpty() && w.Lmin <= t && t <= w.Lmax }

// Intersect returns the abstract waveform denoting w ∩ o. For abstract
// waveforms of a common class this is exact.
func (w Wave) Intersect(o Wave) Wave {
	if w.IsEmpty() || o.IsEmpty() {
		return Empty
	}
	return Wave{Lmin: MaxTime(w.Lmin, o.Lmin), Lmax: MinTime(w.Lmax, o.Lmax)}.Canon()
}

// Union returns the narrowest abstract waveform containing both w and o
// (the interval hull). Per Lemma 1 the result equals the set union
// exactly when the operand intervals are adjacent or overlapping;
// otherwise it strictly over-approximates, which is the deliberate
// approximation of the framework.
func (w Wave) Union(o Wave) Wave {
	if w.IsEmpty() {
		return o.Canon()
	}
	if o.IsEmpty() {
		return w
	}
	return Wave{Lmin: MinTime(w.Lmin, o.Lmin), Lmax: MaxTime(w.Lmax, o.Lmax)}
}

// UnionExact reports whether the union hull of w and o is exact in the
// sense of Lemma 1: (o.Lmax+1 ≥ w.Lmin) ∧ (w.Lmax+1 ≥ o.Lmin).
func (w Wave) UnionExact(o Wave) bool {
	if w.IsEmpty() || o.IsEmpty() {
		return true
	}
	return o.Lmax.Add(1) >= w.Lmin && w.Lmax.Add(1) >= o.Lmin
}

// Shift returns w translated by d time units (used to move between the
// input and output time frames of a gate with delay d).
func (w Wave) Shift(d Time) Wave {
	if w.IsEmpty() {
		return Empty
	}
	return Wave{Lmin: w.Lmin.Add(d), Lmax: w.Lmax.Add(d)}
}

// String renders the wave as v|lmin^max with v supplied by the caller
// via Signal; bare waves print just the interval.
func (w Wave) String() string {
	if w.IsEmpty() {
		return "φ"
	}
	return fmt.Sprintf("[%s,%s]", w.Lmin, w.Lmax)
}
