// Package waveform implements the abstract-waveform and abstract-signal
// algebra of Kassab et al. (DATE 1998): sets of binary waveforms bounded
// by their settling class and last-transition interval, together with
// the lattice operations (intersection, union hull, narrowness) used by
// the waveform-narrowing constraint solver.
package waveform

import (
	"fmt"
	"math"
)

// Time is a discrete time point. The waveform calculus needs the two
// infinities (the initial domains are unbounded), so Time reserves
// sentinel values far outside any delay sum a realistic circuit can
// produce and saturates arithmetic at them.
type Time int64

const (
	// NegInf is the least Time; it represents −∞.
	NegInf Time = math.MinInt64 / 4
	// PosInf is the greatest Time; it represents +∞.
	PosInf Time = math.MaxInt64 / 4
)

// IsInf reports whether t is one of the two infinities (or beyond,
// which can only arise from saturated arithmetic).
func (t Time) IsInf() bool { return t <= NegInf || t >= PosInf }

// Add returns t+d saturating at the infinities: adding any finite
// offset to an infinity leaves it unchanged.
func (t Time) Add(d Time) Time {
	if t <= NegInf {
		return NegInf
	}
	if t >= PosInf {
		return PosInf
	}
	s := t + d
	if s <= NegInf {
		return NegInf
	}
	if s >= PosInf {
		return PosInf
	}
	return s
}

// Sub returns t−d with the same saturation rules as Add.
func (t Time) Sub(d Time) Time { return t.Add(-d) }

// Midpoint returns the floor midpoint lo+(hi-lo)/2 for binary
// searches over delay bounds. Both bounds must be finite: a midpoint
// of an unbounded interval is meaningless, so infinities saturate
// through Add like every other operation.
func Midpoint(lo, hi Time) Time { return lo.Add((hi - lo) / 2) }

// MidpointCeil returns the ceiling midpoint lo+(hi-lo+1)/2, the
// variant binary searches use when the loop keeps the lower bound on
// a satisfied predicate. Both bounds must be finite.
func MidpointCeil(lo, hi Time) Time { return lo.Add((hi - lo + 1) / 2) }

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// String renders infinities as -inf / +inf and finite times as decimal.
func (t Time) String() string {
	switch {
	case t <= NegInf:
		return "-inf"
	case t >= PosInf:
		return "+inf"
	default:
		return fmt.Sprintf("%d", int64(t))
	}
}
