package waveform_test

import (
	"fmt"

	"repro/internal/waveform"
)

// ExampleSignal_Intersect shows the timing-check construction of the
// paper: the output domain intersected with "transitions at or after δ"
// keeps only violating waveforms.
func ExampleSignal_Intersect() {
	// A net whose last transition lies at or before t = 70 on both
	// settling classes.
	d := waveform.Signal{
		W0: waveform.StableAfter(70),
		W1: waveform.StableAfter(70),
	}
	check := waveform.CheckOutput(61)
	fmt.Println(d.Intersect(check))
	fmt.Println(d.Intersect(waveform.CheckOutput(71)).IsEmpty())
	// Output:
	// (0|61^70, 1|61^70)
	// true
}

// ExampleWave_Union demonstrates the deliberate hull approximation of
// Lemma 1: disjoint intervals widen to their hull.
func ExampleWave_Union() {
	a := waveform.Interval(0, 10)
	b := waveform.Interval(40, 50)
	fmt.Println(a.Union(b), a.UnionExact(b))
	c := waveform.Interval(5, 42)
	fmt.Println(a.Union(c), a.UnionExact(c))
	// Output:
	// [0,50] false
	// [0,42] true
}
