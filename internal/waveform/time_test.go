package waveform

import (
	"testing"
	"testing/quick"
)

func TestTimeAddSaturates(t *testing.T) {
	cases := []struct {
		a, d, want Time
	}{
		{5, 7, 12},
		{5, -7, -2},
		{NegInf, 10, NegInf},
		{NegInf, -10, NegInf},
		{PosInf, 10, PosInf},
		{PosInf, -10, PosInf},
		{NegInf, PosInf - NegInf, NegInf}, // infinity absorbs any offset
		{0, PosInf, PosInf},
		{0, NegInf, NegInf},
	}
	for _, c := range cases {
		if got := c.a.Add(c.d); got != c.want {
			t.Errorf("(%s).Add(%s) = %s, want %s", c.a, c.d, got, c.want)
		}
	}
}

func TestTimeSub(t *testing.T) {
	if got := Time(10).Sub(3); got != 7 {
		t.Fatalf("10-3 = %s", got)
	}
	if got := NegInf.Sub(3); got != NegInf {
		t.Fatalf("-inf - 3 = %s", got)
	}
	if got := PosInf.Sub(1000); got != PosInf {
		t.Fatalf("+inf - 1000 = %s", got)
	}
}

func TestTimeIsInf(t *testing.T) {
	if !NegInf.IsInf() || !PosInf.IsInf() {
		t.Fatal("infinities must report IsInf")
	}
	if Time(0).IsInf() || Time(-1000000).IsInf() {
		t.Fatal("finite times must not report IsInf")
	}
}

func TestTimeMinMax(t *testing.T) {
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 {
		t.Fatal("MinTime wrong")
	}
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 {
		t.Fatal("MaxTime wrong")
	}
	if MinTime(NegInf, 0) != NegInf || MaxTime(PosInf, 0) != PosInf {
		t.Fatal("infinity ordering wrong")
	}
}

func TestTimeString(t *testing.T) {
	if NegInf.String() != "-inf" || PosInf.String() != "+inf" || Time(42).String() != "42" {
		t.Fatal("Time.String formatting wrong")
	}
}

// clampTime maps an arbitrary int64 into a representative small range
// plus the infinities so quick-check inputs exercise saturation.
func clampTime(x int64) Time {
	switch m := x % 23; {
	case m == 0:
		return NegInf
	case m == 1 || m == -1:
		return PosInf
	default:
		return Time(x % 1000)
	}
}

func TestTimeAddCommutesWithOrder(t *testing.T) {
	// Property: adding the same finite offset preserves ordering.
	f := func(a, b, d int64) bool {
		ta, tb := clampTime(a), clampTime(b)
		off := Time(d % 1000)
		if ta <= tb {
			return ta.Add(off) <= tb.Add(off)
		}
		return ta.Add(off) >= tb.Add(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeAddSubRoundTrip(t *testing.T) {
	// Property: for finite t, (t+d)-d == t when no saturation occurs.
	f := func(a, d int64) bool {
		ta := Time(a % 100000)
		off := Time(d % 100000)
		return ta.Add(off).Sub(off) == ta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
