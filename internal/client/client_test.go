package client

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseRetryAfterDeltaSeconds(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"0", 0},
		{"1", time.Second},
		{"120", 2 * time.Minute},
	} {
		got, ok := parseRetryAfter(tc.in, now)
		if !ok || got != tc.want {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, true)", tc.in, got, ok, tc.want)
		}
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	future := now.Add(90 * time.Second).Format(http.TimeFormat)
	if got, ok := parseRetryAfter(future, now); !ok || got != 90*time.Second {
		t.Errorf("future HTTP-date: got (%v, %v), want (90s, true)", got, ok)
	}

	// A date already past means "retry now", not a negative wait.
	past := now.Add(-time.Hour).Format(http.TimeFormat)
	if got, ok := parseRetryAfter(past, now); !ok || got != 0 {
		t.Errorf("past HTTP-date: got (%v, %v), want (0, true)", got, ok)
	}

	// The obsolete RFC 850 and asctime formats are valid HTTP-dates too.
	rfc850 := now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT")
	if got, ok := parseRetryAfter(rfc850, now); !ok || got != 30*time.Second {
		t.Errorf("RFC 850 date: got (%v, %v), want (30s, true)", got, ok)
	}
}

func TestParseRetryAfterGarbage(t *testing.T) {
	now := time.Now()
	for _, in := range []string{"", "soon", "-5", "12.5", "Wed, 99 Foo 2026", "1h"} {
		if got, ok := parseRetryAfter(in, now); ok || got != 0 {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (0, false)", in, got, ok)
		}
	}
}

// TestDecodeAPIErrorRetryAfterForms runs both header forms through a
// real response: the proxy-style HTTP-date must populate RetryAfter
// just like the server's own delta-seconds does.
func TestDecodeAPIErrorRetryAfterForms(t *testing.T) {
	for _, tc := range []struct {
		name   string
		header func() string
		check  func(d time.Duration) bool
	}{
		{"delta-seconds", func() string { return "7" },
			func(d time.Duration) bool { return d == 7*time.Second }},
		{"http-date", func() string { return time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat) },
			func(d time.Duration) bool { return d > 5*time.Second && d <= 10*time.Second }},
		{"garbage", func() string { return "eventually" },
			func(d time.Duration) bool { return d == 0 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", tc.header())
				w.WriteHeader(http.StatusTooManyRequests)
				w.Write([]byte(`{"error":{"code":"queue_full","message":"busy"}}`))
			}))
			defer ts.Close()
			resp, err := http.Get(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			apiErr := decodeAPIError(resp)
			if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != "queue_full" {
				t.Fatalf("decoded %+v", apiErr)
			}
			if !apiErr.Temporary() {
				t.Fatal("429 must be Temporary")
			}
			if !tc.check(apiErr.RetryAfter) {
				t.Fatalf("RetryAfter = %v", apiErr.RetryAfter)
			}
		})
	}
}
