package client

import (
	"context"
	"sort"
	"strings"
	"time"
)

// Pool is a fixed set of lttad workers addressed by base URL — the
// client half a coordinator fans sharded batches out over. It owns one
// Client per worker (sharing one http.Client so connection pools are
// reused across shards) and a readiness probe. The pool itself is
// immutable and goroutine-safe; liveness tracking lives in the caller,
// which knows why a dispatch failed.
type Pool struct {
	addrs   []string
	clients map[string]*Client
}

// NewPool builds a pool over the given worker base URLs. Addresses are
// normalized (an address without a scheme gets "http://"), duplicates
// collapsed, and the set sorted so two pools over the same workers are
// identical regardless of flag order.
func NewPool(addrs []string) *Pool {
	p := &Pool{clients: make(map[string]*Client, len(addrs))}
	for _, a := range addrs {
		a = NormalizeAddr(a)
		if a == "" {
			continue
		}
		if _, dup := p.clients[a]; dup {
			continue
		}
		p.clients[a] = New(a)
		p.addrs = append(p.addrs, a)
	}
	sort.Strings(p.addrs)
	return p
}

// NormalizeAddr canonicalizes a worker address: trimmed, scheme
// defaulted to http, trailing slash dropped.
func NormalizeAddr(a string) string {
	a = strings.TrimSpace(a)
	if a == "" {
		return ""
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return strings.TrimRight(a, "/")
}

// Addrs returns the pool's normalized worker addresses, sorted.
func (p *Pool) Addrs() []string { return p.addrs }

// For returns the client for one worker address (which must be one of
// Addrs; unknown addresses return nil).
func (p *Pool) For(addr string) *Client { return p.clients[addr] }

// Probe asks one worker's /readyz whether it would admit a batch right
// now, bounded by timeout. It returns nil exactly when the worker is
// ready; a starting or draining worker (503) and an unreachable one
// both report an error.
func (p *Pool) Probe(ctx context.Context, addr string, timeout time.Duration) error {
	cl := p.For(addr)
	if cl == nil {
		return &APIError{Status: 0, Code: "unknown_worker", Message: "address not in pool: " + addr}
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	_, err := cl.Readyz(pctx)
	return err
}
