package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/api"
)

// streamHandler serves a canned NDJSON prefix: one circuit event plus
// k check events, then hands control back to finish for the ending
// under test.
func streamHandler(k int, finish func(w http.ResponseWriter)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		fmt.Fprintln(w, `{"type":"circuit","circuit":{"name":"c17"}}`)
		for i := 0; i < k; i++ {
			fmt.Fprintf(w, `{"type":"check","check":{"sink":"G%d","delta":40,"index":%d,"final":"N"}}`+"\n", i, i)
		}
		fl.Flush()
		finish(w)
	}
}

func countEvents(n *int) func(api.Event) error {
	return func(api.Event) error { *n++; return nil }
}

// TestStreamCutMidStream is the regression for a worker dying (or a
// proxy resetting) mid-stream: the connection is aborted after K
// events with no clean HTTP ending, and the client must surface a
// typed, retryable *TruncatedStreamError instead of a bare transport
// error — the coordinator's requeue path keys off exactly this.
func TestStreamCutMidStream(t *testing.T) {
	const k = 5
	ts := httptest.NewServer(streamHandler(k, func(http.ResponseWriter) {
		panic(http.ErrAbortHandler) // cut the connection without a chunked terminator
	}))
	defer ts.Close()

	events := 0
	err := New(ts.URL).Stream(context.Background(),
		api.Request{Netlist: "x", Checks: []api.CheckSpec{{Sink: "G0"}}},
		countEvents(&events))
	var trunc *TruncatedStreamError
	if !errors.As(err, &trunc) {
		t.Fatalf("cut stream returned %v (%T), want *TruncatedStreamError", err, err)
	}
	if trunc.Events != k+1 || events != k+1 {
		t.Fatalf("saw %d events, error records %d, want %d", events, trunc.Events, k+1)
	}
	if trunc.Err == nil {
		t.Fatal("aborted connection must carry the transport error")
	}
	if !trunc.Temporary() || !Retryable(err) {
		t.Fatalf("mid-stream cut must be retryable: %v", err)
	}
}

// TestStreamCleanEOFWithoutDone: a stream that ends with a perfectly
// clean HTTP response but no "done" event was still cut mid-batch
// (e.g. a worker drained and closed the response early) and must be
// reported the same way.
func TestStreamCleanEOFWithoutDone(t *testing.T) {
	const k = 3
	ts := httptest.NewServer(streamHandler(k, func(http.ResponseWriter) {}))
	defer ts.Close()

	err := New(ts.URL).Stream(context.Background(),
		api.Request{Netlist: "x", Checks: []api.CheckSpec{{Sink: "G0"}}},
		func(api.Event) error { return nil })
	var trunc *TruncatedStreamError
	if !errors.As(err, &trunc) {
		t.Fatalf("done-less stream returned %v, want *TruncatedStreamError", err)
	}
	if trunc.Events != k+1 || trunc.Err != nil {
		t.Fatalf("clean truncation: events=%d err=%v, want %d and nil", trunc.Events, trunc.Err, k+1)
	}
	if !Retryable(err) {
		t.Fatal("clean truncation must be retryable")
	}
}

// TestStreamCompleteIsNil: a stream ending with its "done" event is a
// success, however short.
func TestStreamCompleteIsNil(t *testing.T) {
	ts := httptest.NewServer(streamHandler(2, func(w http.ResponseWriter) {
		fmt.Fprintln(w, `{"type":"done","done":{"checksRun":2}}`)
	}))
	defer ts.Close()

	doneSeen := false
	err := New(ts.URL).Stream(context.Background(),
		api.Request{Netlist: "x", Checks: []api.CheckSpec{{Sink: "G0"}}},
		func(ev api.Event) error {
			if ev.Type == "done" {
				doneSeen = true
			}
			return nil
		})
	if err != nil || !doneSeen {
		t.Fatalf("complete stream: err=%v doneSeen=%v", err, doneSeen)
	}
}

// TestStreamFnErrorPropagates: an error from the callback aborts the
// drain and comes back verbatim, never wrapped as a truncation.
func TestStreamFnErrorPropagates(t *testing.T) {
	ts := httptest.NewServer(streamHandler(4, func(w http.ResponseWriter) {
		fmt.Fprintln(w, `{"type":"done","done":{"checksRun":4}}`)
	}))
	defer ts.Close()

	sentinel := errors.New("stop here")
	err := New(ts.URL).Stream(context.Background(),
		api.Request{Netlist: "x", Checks: []api.CheckSpec{{Sink: "G0"}}},
		func(ev api.Event) error {
			if ev.Type == "check" {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("fn error came back as %v, want the sentinel", err)
	}
	var trunc *TruncatedStreamError
	if errors.As(err, &trunc) {
		t.Fatal("fn abort must not masquerade as a truncated stream")
	}
}

// TestStreamSkipsUnknownEvents is the forward-compatibility
// regression for the NDJSON stream: a future minor revision adds an
// event kind this client does not know, and the stream must complete —
// the unknown events skipped, never handed to the callback, and warned
// about exactly once per kind no matter how often they repeat.
func TestStreamSkipsUnknownEvents(t *testing.T) {
	ts := httptest.NewServer(func() http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"type":"circuit","circuit":{"name":"c17"}}`)
			fmt.Fprintln(w, `{"type":"gc_stats","heapBytes":12345,"futureField":[1,2]}`)
			fmt.Fprintln(w, `{"type":"check","check":{"sink":"G0","delta":40,"index":0,"final":"N"}}`)
			fmt.Fprintln(w, `{"type":"gc_stats","heapBytes":67890}`)
			fmt.Fprintln(w, `{"type":"shard_map","workers":["a","b"]}`)
			fmt.Fprintln(w, `{"type":"done","done":{"checksRun":1}}`)
		}
	}())
	defer ts.Close()

	c := New(ts.URL)
	var warnings []string
	c.OnUnknownEvent = func(kind string) { warnings = append(warnings, kind) }
	var seen []string
	err := c.Stream(context.Background(),
		api.Request{Netlist: "x", Checks: []api.CheckSpec{{Sink: "G0"}}},
		func(ev api.Event) error {
			seen = append(seen, ev.Type)
			return nil
		})
	if err != nil {
		t.Fatalf("stream with unknown event kinds failed: %v", err)
	}
	wantSeen := []string{"circuit", "check", "done"}
	if fmt.Sprint(seen) != fmt.Sprint(wantSeen) {
		t.Fatalf("callback saw %v, want only the known kinds %v", seen, wantSeen)
	}
	// gc_stats appears twice on the wire but warns once; shard_map once.
	wantWarn := []string{"gc_stats", "shard_map"}
	if fmt.Sprint(warnings) != fmt.Sprint(wantWarn) {
		t.Fatalf("warned %v, want once per kind %v", warnings, wantWarn)
	}
}

// TestStreamUnknownEventsNoHook: with no OnUnknownEvent hook set the
// skip is silent, and the stream still completes.
func TestStreamUnknownEventsNoHook(t *testing.T) {
	ts := httptest.NewServer(streamHandler(1, func(w http.ResponseWriter) {
		fmt.Fprintln(w, `{"type":"mystery"}`)
		fmt.Fprintln(w, `{"type":"done","done":{"checksRun":1}}`)
	}))
	defer ts.Close()

	events := 0
	if err := New(ts.URL).Stream(context.Background(),
		api.Request{Netlist: "x", Checks: []api.CheckSpec{{Sink: "G0"}}},
		countEvents(&events)); err != nil {
		t.Fatalf("hookless stream failed on unknown kind: %v", err)
	}
	if events != 3 { // circuit + check + done; mystery skipped
		t.Fatalf("callback saw %d events, want 3", events)
	}
}

// TestRetryableClassification pins the retry predicate the coordinator
// and other retry loops share.
func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"ctx cancel", context.Canceled, false},
		{"ctx deadline", context.DeadlineExceeded, false},
		{"wrapped cancel", &TruncatedStreamError{Events: 3, Err: context.Canceled}, false},
		{"backpressure 429", &APIError{Status: 429, Code: "queue_full"}, true},
		{"draining 503", &APIError{Status: 503, Code: "draining"}, true},
		{"bad request 400", &APIError{Status: 400, Code: "bad_sweep"}, false},
		{"unknown hash 404", &APIError{Status: 404, Code: "unknown_hash"}, false},
		{"truncated stream", &TruncatedStreamError{Events: 7}, true},
		{"dial failure", &url.Error{Op: "Post", URL: "http://x", Err: errors.New("connection refused")}, true},
		{"unexpected EOF", io.ErrUnexpectedEOF, true},
		{"wrapped unexpected EOF", fmt.Errorf("reading: %w", io.ErrUnexpectedEOF), true},
		{"generic", errors.New("nope"), false},
	} {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
