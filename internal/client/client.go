// Package client is the thin Go client for the lttad batch
// timing-check service: submit a batch or sweep, stream NDJSON
// results, and read health/metrics. The wire types live in
// internal/server; this package only speaks HTTP.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/server"
)

// Client talks to one lttad instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8090".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the given base URL.
func New(base string) *Client { return &Client{BaseURL: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx server answer: the structured error body plus
// the Retry-After hint on backpressure responses (429/503).
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("lttad: %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether the submission may simply be retried after
// RetryAfter (queue-full backpressure or a draining server).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// decodeAPIError turns a non-2xx response into an *APIError.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
	var body server.ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil {
		apiErr.Code, apiErr.Message = body.Error.Code, body.Error.Message
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

func (c *Client) post(ctx context.Context, req server.Request) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/check", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	return resp, nil
}

// Check submits a batch and returns the buffered response. The
// request's Stream flag is forced off.
func (c *Client) Check(ctx context.Context, req server.Request) (*server.Response, error) {
	req.Stream = false
	resp, err := c.post(ctx, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out server.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// Stream submits a batch with NDJSON streaming and calls fn for every
// event, in arrival order, ending with the "done" event. A non-nil
// error from fn aborts the stream and is returned.
func (c *Client) Stream(ctx context.Context, req server.Request, fn func(server.Event) error) error {
	req.Stream = true
	resp, err := c.post(ctx, req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: decoding event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Healthz reads /healthz — pure liveness, 200 whenever the process
// serves HTTP; the body's status field says ok/starting/draining.
func (c *Client) Healthz(ctx context.Context) (*server.Health, error) {
	return c.getHealth(ctx, "/healthz")
}

// Readyz reads /readyz — readiness. A starting or draining server
// answers 503 but still carries the health body, which is returned
// alongside the APIError.
func (c *Client) Readyz(ctx context.Context) (*server.Health, error) {
	return c.getHealth(ctx, "/readyz")
}

func (c *Client) getHealth(ctx context.Context, path string) (*server.Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("client: decoding health: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unhealthy", Message: h.Status}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return &h, apiErr
	}
	return &h, nil
}

// Metrics reads /metrics.json, the structured counter document. The
// Prometheus text exposition lives at /metrics (see MetricsProm).
func (c *Client) Metrics(ctx context.Context) (*server.Metrics, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("client: decoding metrics: %w", err)
	}
	return &m, nil
}

// MetricsProm reads the raw Prometheus text exposition from /metrics.
func (c *Client) MetricsProm(ctx context.Context) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}
