// Package client is the thin Go client for the lttad batch
// timing-check service: upload circuits into the content-addressed
// registry, submit batches or sweeps (by hash or inline), stream
// NDJSON results, and read health/metrics. The wire vocabulary lives
// in the shared internal/api package; this package only speaks HTTP.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/api"
)

// Client talks to one lttad instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8090".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// OnUnknownEvent, when set, is told about NDJSON event kinds this
	// client version does not know (once per kind per stream). The
	// protocol adds event kinds in minor revisions without a version
	// bump, so unknown kinds are a compatibility warning, never an
	// error; they are skipped rather than handed to the stream callback.
	OnUnknownEvent func(kind string)
}

// New returns a client for the given base URL.
func New(base string) *Client { return &Client{BaseURL: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx server answer: the structured error body plus
// the Retry-After hint on backpressure responses (429/503). Hash is
// set on "unknown_hash" answers — the content address the server did
// not recognise — so retry loops can re-upload without keeping their
// own request state.
type APIError struct {
	Status     int
	Code       string
	Message    string
	Hash       api.Hash
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("lttad: %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether the submission may simply be retried after
// RetryAfter (queue-full backpressure or a draining server).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// UnknownHash reports whether the server did not recognise the
// requested content address; re-uploading the circuit repairs it.
func (e *APIError) UnknownHash() bool {
	return e.Status == http.StatusNotFound && e.Code == "unknown_hash"
}

// decodeAPIError turns a non-2xx response into an *APIError.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
	var body api.ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil {
		apiErr.Code, apiErr.Message, apiErr.Hash = body.Error.Code, body.Error.Message, body.Error.Hash
	}
	if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
		apiErr.RetryAfter = d
	}
	return apiErr
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110
// §10.2.3: either delta-seconds or an HTTP-date (proxies routinely
// rewrite one into the other). Dates are converted to a wait relative
// to now, clamped at zero when already past. Garbage values report
// ok=false and the caller keeps its zero default.
func parseRetryAfter(ra string, now time.Time) (time.Duration, bool) {
	if ra == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(ra); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// do sends one JSON body and returns the response, mapping every
// non-2xx answer to an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	enc, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	return resp, nil
}

// UploadOptions qualifies an uploaded netlist. The zero value means
// bench format, the parser's circuit name, and the default gate delay
// (10, the paper's experiments).
type UploadOptions struct {
	// Format is "bench" (default) or "verilog".
	Format string
	// Name names the circuit in responses; it is part of the content
	// address.
	Name string
	// DefaultDelay is the gate delay used when the netlist does not
	// annotate one (0 means 10).
	DefaultDelay int64
	// SDF optionally back-annotates gate delays from a Standard Delay
	// Format document.
	SDF string
	// Delays override individual gate delays; the server canonicalizes
	// the list (order never changes the hash).
	Delays []api.DelayAnnotation
}

// Upload registers a netlist in the server's content-addressed circuit
// registry and returns its stable content hash. Idempotent: uploading
// identical content yields the same hash and costs the server nothing
// beyond hashing.
func (c *Client) Upload(ctx context.Context, netlist string, opts UploadOptions) (api.Hash, error) {
	up, err := c.upload(ctx, netlist, opts)
	if err != nil {
		return "", err
	}
	return up.Hash, nil
}

func (c *Client) upload(ctx context.Context, netlist string, opts UploadOptions) (*api.UploadResponse, error) {
	req := api.UploadRequest{
		V: api.Version, Netlist: netlist, Format: opts.Format, Name: opts.Name,
		DefaultDelay: opts.DefaultDelay, SDF: opts.SDF, Delays: opts.Delays,
	}
	resp, err := c.do(ctx, http.MethodPut, "/v1/circuits", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out api.UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding upload response: %w", err)
	}
	return &out, nil
}

// CheckByHash runs a batch against a previously uploaded circuit. The
// request must not carry netlist fields — the circuit identity is the
// hash. A warm server answers with zero parse and zero preparation
// work. The request's Stream flag is forced off.
func (c *Client) CheckByHash(ctx context.Context, hash api.Hash, req api.Request) (*api.Response, error) {
	req.Stream = false
	resp, err := c.do(ctx, http.MethodPost, "/v1/circuits/"+string(hash)+"/check", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out api.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// StreamByHash runs a hash-addressed batch with NDJSON streaming,
// calling fn for every event in arrival order, ending with "done".
func (c *Client) StreamByHash(ctx context.Context, hash api.Hash, req api.Request, fn func(api.Event) error) error {
	req.Stream = true
	resp, err := c.do(ctx, http.MethodPost, "/v1/circuits/"+string(hash)+"/check", req)
	if err != nil {
		return err
	}
	return c.drainEvents(resp, fn)
}

// CheckInline submits a batch with the netlist carried in the request
// body — the original single-shot protocol, kept alongside the
// registry path (and proven result-identical to it by the differential
// e2e suite). The request's Stream flag is forced off.
func (c *Client) CheckInline(ctx context.Context, req api.Request) (*api.Response, error) {
	req.Stream = false
	resp, err := c.do(ctx, http.MethodPost, "/v1/check", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out api.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// Check submits a batch and returns the buffered response.
//
// Deprecated: Check now rides the registry — it uploads the request's
// netlist (idempotent) and checks by hash, so repeated batches against
// one circuit reuse the server's cached prepared state. Call Upload +
// CheckByHash directly to control the two steps, or CheckInline for
// the original single-request protocol.
func (c *Client) Check(ctx context.Context, req api.Request) (*api.Response, error) {
	hash, err := c.Upload(ctx, req.Netlist, UploadOptions{
		Format: req.Format, Name: req.Name, DefaultDelay: req.DefaultDelay,
	})
	if err != nil {
		return nil, err
	}
	byHash := req
	byHash.Netlist, byHash.Format, byHash.Name, byHash.DefaultDelay = "", "", "", 0
	resp, err := c.CheckByHash(ctx, hash, byHash)
	var apiErr *APIError
	if err != nil && apiErrAs(err, &apiErr) && apiErr.UnknownHash() {
		// Evicted between upload and check: re-register once and retry.
		if hash, err = c.Upload(ctx, req.Netlist, UploadOptions{
			Format: req.Format, Name: req.Name, DefaultDelay: req.DefaultDelay,
		}); err != nil {
			return nil, err
		}
		return c.CheckByHash(ctx, hash, byHash)
	}
	return resp, err
}

// apiErrAs is errors.As specialised to *APIError (the only error type
// this package mints for HTTP-level failures).
func apiErrAs(err error, target **APIError) bool {
	e, ok := err.(*APIError)
	if ok {
		*target = e
	}
	return ok
}

// Stream submits an inline batch with NDJSON streaming and calls fn
// for every event, in arrival order, ending with the "done" event. A
// non-nil error from fn aborts the stream and is returned.
func (c *Client) Stream(ctx context.Context, req api.Request, fn func(api.Event) error) error {
	req.Stream = true
	resp, err := c.do(ctx, http.MethodPost, "/v1/check", req)
	if err != nil {
		return err
	}
	return c.drainEvents(resp, fn)
}

// TruncatedStreamError reports an NDJSON result stream that ended
// before its terminal "done" event: the connection was cut mid-batch
// (worker death, proxy reset, response abort). It is retryable — the
// server never completed the batch from the client's point of view, so
// resubmitting (or requeueing the unfinished checks elsewhere) is the
// correct recovery. Events counts the events that did arrive; Err is
// the transport error, nil when the stream ended with a clean EOF that
// merely lacked the "done" line.
type TruncatedStreamError struct {
	// Events is how many events arrived before the cut.
	Events int
	// Err is the underlying read error, if the transport surfaced one.
	Err error
}

func (e *TruncatedStreamError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("client: result stream cut after %d events: %v", e.Events, e.Err)
	}
	return fmt.Sprintf("client: result stream ended after %d events without a done event", e.Events)
}

func (e *TruncatedStreamError) Unwrap() error { return e.Err }

// Temporary marks the truncation retryable, matching APIError's
// convention for backpressure answers.
func (e *TruncatedStreamError) Temporary() bool { return true }

// Retryable reports whether err is worth retrying against the same or
// another server: backpressure (429/503), a truncated result stream,
// or a transport-level failure (dial refused, connection reset). A
// structured 4xx — a malformed request — is not retryable, and neither
// is a context cancellation: the caller withdrew the question.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	var trunc *TruncatedStreamError
	if errors.As(err, &trunc) {
		return true
	}
	var netErr *url.Error
	if errors.As(err, &netErr) {
		return true
	}
	// Mid-body transport failures (http: unexpected EOF and friends)
	// reach here undecorated; a decode failure of a complete body does
	// not (it is wrapped with a "decoding" prefix by the caller).
	var opErr *net.OpError
	return errors.As(err, &opErr) || errors.Is(err, io.ErrUnexpectedEOF)
}

// knownEventKinds are the NDJSON event types this client version
// understands; everything else is a future minor revision's addition
// and is skipped with a warning (see Client.OnUnknownEvent).
var knownEventKinds = map[string]bool{
	"circuit": true, "check": true, "sweep": true, "rows": true,
	"spans": true, "error": true, "done": true,
}

// drainEvents reads an NDJSON event stream to its end. A batch stream
// always terminates with a "done" event; a stream that ends — cleanly
// or not — without one was cut mid-batch and is reported as a
// *TruncatedStreamError so callers cannot mistake a dropped connection
// for a short batch. An error returned by fn aborts the drain and is
// returned as-is. Event kinds this version does not know are skipped
// (warned once per kind), never failed on — the wire contract lets
// minor revisions add kinds freely.
func (c *Client) drainEvents(resp *http.Response, fn func(api.Event) error) error {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	events, doneSeen := 0, false
	var warned map[string]bool
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: decoding event: %w", err)
		}
		events++
		if !knownEventKinds[ev.Type] {
			if c.OnUnknownEvent != nil && !warned[ev.Type] {
				if warned == nil {
					warned = map[string]bool{}
				}
				warned[ev.Type] = true
				c.OnUnknownEvent(ev.Type)
			}
			continue
		}
		if ev.Type == "done" {
			doneSeen = true
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return &TruncatedStreamError{Events: events, Err: err}
	}
	if !doneSeen {
		return &TruncatedStreamError{Events: events}
	}
	return nil
}

// Healthz reads /healthz — pure liveness, 200 whenever the process
// serves HTTP; the body's status field says ok/starting/draining.
func (c *Client) Healthz(ctx context.Context) (*api.Health, error) {
	return c.getHealth(ctx, "/healthz")
}

// Readyz reads /readyz — readiness. A starting or draining server
// answers 503 but still carries the health body, which is returned
// alongside the APIError.
func (c *Client) Readyz(ctx context.Context) (*api.Health, error) {
	return c.getHealth(ctx, "/readyz")
}

func (c *Client) getHealth(ctx context.Context, path string) (*api.Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("client: decoding health: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unhealthy", Message: h.Status}
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			apiErr.RetryAfter = d
		}
		return &h, apiErr
	}
	return &h, nil
}

// Metrics reads /metrics.json, the structured counter document. The
// Prometheus text exposition lives at /metrics (see MetricsProm).
func (c *Client) Metrics(ctx context.Context) (*api.Metrics, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var m api.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("client: decoding metrics: %w", err)
	}
	return &m, nil
}

// MetricsProm reads the raw Prometheus text exposition from /metrics.
func (c *Client) MetricsProm(ctx context.Context) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}
