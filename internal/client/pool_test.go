package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/api"
)

func TestNormalizeAddr(t *testing.T) {
	for in, want := range map[string]string{
		"":                    "",
		"  ":                  "",
		"host:8090":           "http://host:8090",
		"http://host:8090":    "http://host:8090",
		"https://host:8090/":  "https://host:8090",
		" http://host:8090/ ": "http://host:8090",
		"127.0.0.1:9":         "http://127.0.0.1:9",
		"http://host:8090//":  "http://host:8090",
	} {
		if got := NormalizeAddr(in); got != want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPoolDedupAndOrder(t *testing.T) {
	p := NewPool([]string{"b:2", "http://a:1", "b:2/", "", "http://a:1/"})
	want := []string{"http://a:1", "http://b:2"}
	if !reflect.DeepEqual(p.Addrs(), want) {
		t.Fatalf("Addrs() = %v, want %v", p.Addrs(), want)
	}
	for _, a := range want {
		if p.For(a) == nil {
			t.Fatalf("no client for %s", a)
		}
	}
	if p.For("http://c:3") != nil {
		t.Fatal("client minted for an address outside the pool")
	}
}

func TestPoolProbe(t *testing.T) {
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	}))
	defer ready.Close()
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(api.Health{Status: "draining"})
	}))
	defer draining.Close()

	p := NewPool([]string{ready.URL, draining.URL, "http://127.0.0.1:1"})
	ctx := context.Background()
	if err := p.Probe(ctx, NormalizeAddr(ready.URL), time.Second); err != nil {
		t.Fatalf("ready worker probed unready: %v", err)
	}
	if err := p.Probe(ctx, NormalizeAddr(draining.URL), time.Second); err == nil {
		t.Fatal("draining worker probed ready")
	}
	if err := p.Probe(ctx, "http://127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("unreachable worker probed ready")
	}
	if err := p.Probe(ctx, "http://not-in-pool:1", time.Second); err == nil {
		t.Fatal("unknown address probed ready")
	}
}
