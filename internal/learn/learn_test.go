package learn

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/sim"
	"repro/internal/waveform"
)

func mustBuild(t testing.TB, src string, d int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: d})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func id(t testing.TB, c *circuit.Circuit, name string) circuit.NetID {
	t.Helper()
	n, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return n
}

func hasImp(t *Table, from circuit.NetID, fv int, to circuit.NetID, tv int) bool {
	for _, a := range t.Implied(from, fv) {
		if a.Net == to && a.Val == tv {
			return true
		}
	}
	return false
}

func TestDirectImplications(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`, 1)
	tab := Precompute(c)
	a, b, z := id(t, c, "a"), id(t, c, "b"), id(t, c, "z")
	// a=0 ⇒ z=0; z=1 ⇒ a=1, b=1.
	if !hasImp(tab, a, 0, z, 0) {
		t.Error("a=0 ⇒ z=0 missing")
	}
	if !hasImp(tab, z, 1, a, 1) || !hasImp(tab, z, 1, b, 1) {
		t.Error("z=1 ⇒ inputs=1 missing")
	}
	// Contrapositive of a=0 ⇒ z=0 is z=1 ⇒ a=1 (already direct); the
	// interesting one: a=1 alone implies nothing about z.
	if hasImp(tab, a, 1, z, 0) || hasImp(tab, a, 1, z, 1) {
		t.Error("a=1 must not determine z")
	}
}

func TestLearnedNonLocalImplication(t *testing.T) {
	// The SOCRATES classic: z = OR(AND(a,b), AND(a,c)) — z=1 implies
	// a=1, but only via learning (no single direct rule yields it...
	// the contrapositive a=0 ⇒ z=0 is direct, and its reverse is the
	// learned implication).
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
p = AND(a, b)
q = AND(a, c)
z = OR(p, q)
`, 1)
	tab := Precompute(c)
	a, z := id(t, c, "a"), id(t, c, "z")
	if !hasImp(tab, z, 1, a, 1) {
		t.Error("learned z=1 ⇒ a=1 missing (contrapositive of a=0 ⇒ z=0)")
	}
}

func TestImpossibleValue(t *testing.T) {
	// z = AND(a, NOT(a)) is constant 0: assuming z=1 must conflict.
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
na = NOT(a)
z = AND(a, na)
`, 1)
	tab := Precompute(c)
	z := id(t, c, "z")
	if !tab.Impossible(z, 1) {
		t.Error("z=1 must be impossible")
	}
	if tab.Impossible(z, 0) {
		t.Error("z=0 must be possible")
	}
}

func TestApplyNarrowsDomains(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
INPUT(cc)
OUTPUT(z)
p = AND(a, b)
q = AND(a, cc)
z = OR(p, q)
`, 10)
	tab := Precompute(c)
	sys := constraint.New(c)
	sys.ScheduleAll()
	sys.Fixpoint()
	// Force z to settle 1; learning must then force a to settle 1.
	sys.Narrow(id(t, c, "z"), waveform.SettledTo(1))
	sys.Fixpoint()
	changed := tab.Apply(sys)
	if !changed {
		t.Fatal("learning must narrow something")
	}
	da := sys.Domain(id(t, c, "a"))
	if v, ok := da.KnownValue(); !ok || v != 1 {
		t.Fatalf("a = %s, want settled 1", da)
	}
	if !sys.Fixpoint() {
		t.Fatal("system must stay consistent")
	}
	// Idempotence.
	if tab.Apply(sys) {
		t.Fatal("second Apply must be a no-op")
	}
}

func TestApplyRemovesImpossibleClasses(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
na = NOT(a)
z = AND(a, na)
`, 10)
	tab := Precompute(c)
	sys := constraint.New(c)
	sys.ScheduleAll()
	sys.Fixpoint()
	tab.Apply(sys)
	sys.Fixpoint()
	dz := sys.Domain(id(t, c, "z"))
	if !dz.W1.IsEmpty() {
		t.Fatalf("z class 1 must be removed, got %s", dz)
	}
	if dz.W0.IsEmpty() {
		t.Fatal("z class 0 must survive")
	}
}

// TestLearningSoundness: every learned implication must hold in every
// zero-delay evaluation of the circuit.
func TestLearningSoundness(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(z1)
OUTPUT(z2)
p = NAND(a, b)
q = NOR(c, d)
r = XOR(p, q)
s = AND(p, q, a)
z1 = OR(r, s)
z2 = XNOR(r, b)
`
	c := mustBuild(t, src, 1)
	tab := Precompute(c)
	k := len(c.PrimaryInputs())
	for bits := 0; bits < 1<<k; bits++ {
		v := make(sim.Vector, k)
		for i := range v {
			v[i] = (bits >> i) & 1
		}
		vals, err := sim.Logic(c, v)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < c.NumNets(); n++ {
			nid := circuit.NetID(n)
			val := vals[n]
			if tab.Impossible(nid, val) {
				t.Fatalf("net %s=%d marked impossible but realised by %s", c.Net(nid).Name, val, v)
			}
			for _, a := range tab.Implied(nid, val) {
				if vals[a.Net] != a.Val {
					t.Fatalf("implication %s=%d ⇒ %s=%d violated by vector %s",
						c.Net(nid).Name, val, c.Net(a.Net).Name, a.Val, v)
				}
			}
		}
	}
	if tab.Implications == 0 {
		t.Fatal("expected some learned implications")
	}
}
