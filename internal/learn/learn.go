// Package learn implements the static-learning preprocessing of
// Section 4 (after SOCRATES): for every net and value it propagates
// direct three-valued implications through the netlist, records the
// resulting net-value implications together with their contrapositives,
// and applies them during narrowing whenever a class empties in some
// domain (the net's settled value becomes known).
package learn

import (
	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/waveform"
)

// Assignment is a net-value pair.
type Assignment struct {
	Net circuit.NetID
	Val int
}

// Table holds the learned class implications of one circuit.
type Table struct {
	c *circuit.Circuit
	// imp[2*net+val] lists the assignments implied by net settling to
	// val.
	imp [][]Assignment
	// impossible[2*net+val] marks assumptions that propagate to a
	// contradiction: the net can never settle to val.
	impossible []bool
	// forced lists assignments that hold unconditionally. Empty for
	// precomputed tables; Project fills it with the in-cone
	// consequences of impossible classes on nets outside the cone.
	forced []Assignment
	// Implications counts stored entries (statistics).
	Implications int
}

func key(n circuit.NetID, v int) int { return 2*int(n) + v }

// Precompute runs the learning pass: one three-valued propagation per
// (net, value) assumption. Implications are stored in both directions
// (direct and contrapositive), deduplicated.
func Precompute(c *circuit.Circuit) *Table {
	t := &Table{
		c:          c,
		imp:        make([][]Assignment, 2*c.NumNets()),
		impossible: make([]bool, 2*c.NumNets()),
	}
	p := newProp(c)
	seen := make(map[[2]int]bool)
	add := func(from Assignment, to Assignment) {
		if from.Net == to.Net {
			return
		}
		k := [2]int{key(from.Net, from.Val), key(to.Net, to.Val)}
		if seen[k] {
			return
		}
		seen[k] = true
		t.imp[key(from.Net, from.Val)] = append(t.imp[key(from.Net, from.Val)], to)
		t.Implications++
	}
	for n := 0; n < c.NumNets(); n++ {
		for v := 0; v <= 1; v++ {
			nid := circuit.NetID(n)
			ok, assigned := p.run(nid, v)
			if !ok {
				t.impossible[key(nid, v)] = true
				continue
			}
			for _, a := range assigned {
				if a.Net == nid {
					continue
				}
				add(Assignment{nid, v}, a)
				// Contrapositive: ¬a ⇒ ¬(n=v).
				add(Assignment{a.Net, 1 - a.Val}, Assignment{nid, 1 - v})
			}
		}
	}
	return t
}

// Implied returns the assignments implied by net n settling to v.
func (t *Table) Implied(n circuit.NetID, v int) []Assignment { return t.imp[key(n, v)] }

// Impossible reports whether the learning pass proved that net n can
// never settle to v.
func (t *Table) Impossible(n circuit.NetID, v int) bool { return t.impossible[key(n, v)] }

// Apply enforces the learned implications on the constraint system:
// any net whose domain is reduced to a single class imposes its
// implications as class restrictions on other domains, and classes
// proved impossible are removed outright. It reports whether anything
// changed; callers then resume the fixpoint. Apply is monotone and
// idempotent, so it is safe to call repeatedly inside the solve loop.
func (t *Table) Apply(sys *constraint.System) bool {
	changed := false
	for _, f := range t.forced {
		if sys.Domain(f.Net).Wave(1 - f.Val).IsEmpty() {
			continue
		}
		if sys.Narrow(f.Net, waveform.SettledTo(f.Val)) {
			changed = true
		}
	}
	for n := 0; n < t.c.NumNets(); n++ {
		nid := circuit.NetID(n)
		d := sys.Domain(nid)
		for v := 0; v <= 1; v++ {
			if t.impossible[key(nid, v)] && !d.Wave(v).IsEmpty() {
				if sys.Narrow(nid, waveform.SettledTo(1-v)) {
					changed = true
					d = sys.Domain(nid)
				}
			}
		}
		v, known := d.KnownValue()
		if !known {
			continue
		}
		for _, a := range t.imp[key(nid, v)] {
			if sys.Domain(a.Net).Wave(1 - a.Val).IsEmpty() {
				continue
			}
			if sys.Narrow(a.Net, waveform.SettledTo(a.Val)) {
				changed = true
			}
		}
	}
	return changed
}

// Project slices the table onto a fan-in cone sub-circuit: toSub maps
// original net ids to cone ids (circuit.InvalidNet outside the cone),
// fromSub maps back. Implications and impossible classes between cone
// nets carry over verbatim. An impossible class (n, v) of a net n
// OUTSIDE the cone is folded in as unconditional facts: n settles to
// 1−v in every consistent assignment, so every in-cone consequence of
// (n, 1−v) holds unconditionally; those land in forced and Apply
// asserts them up front. Implication chains that merely traverse
// outside nets need no handling of their own — the precompute stores
// the full three-valued closure of each assumption, so a cone-to-cone
// consequence routed through outside nets already exists as a direct
// table entry.
func (t *Table) Project(sub *circuit.Circuit, toSub, fromSub []circuit.NetID) *Table {
	pt := &Table{
		c:          sub,
		imp:        make([][]Assignment, 2*sub.NumNets()),
		impossible: make([]bool, 2*sub.NumNets()),
	}
	for sn := 0; sn < sub.NumNets(); sn++ {
		on := fromSub[sn]
		for v := 0; v <= 1; v++ {
			if t.impossible[key(on, v)] {
				pt.impossible[key(circuit.NetID(sn), v)] = true
			}
			for _, a := range t.imp[key(on, v)] {
				sa := toSub[a.Net]
				if sa == circuit.InvalidNet {
					continue
				}
				k := key(circuit.NetID(sn), v)
				pt.imp[k] = append(pt.imp[k], Assignment{sa, a.Val})
				pt.Implications++
			}
		}
	}
	forcedSeen := make(map[Assignment]bool)
	for on := range toSub {
		if toSub[on] != circuit.InvalidNet {
			continue
		}
		for v := 0; v <= 1; v++ {
			if !t.impossible[key(circuit.NetID(on), v)] {
				continue
			}
			for _, a := range t.imp[key(circuit.NetID(on), 1-v)] {
				sa := toSub[a.Net]
				if sa == circuit.InvalidNet {
					continue
				}
				f := Assignment{sa, a.Val}
				if forcedSeen[f] {
					continue
				}
				forcedSeen[f] = true
				pt.forced = append(pt.forced, f)
				pt.Implications++
			}
		}
	}
	return pt
}

// prop is the three-valued direct-implication engine used by the
// learning pass (forward and backward gate rules, no case splits).
type prop struct {
	c     *circuit.Circuit
	val   []int8 // -1 unknown
	dirty []circuit.GateID
	inQ   []bool
	trail []circuit.NetID
}

func newProp(c *circuit.Circuit) *prop {
	p := &prop{c: c, val: make([]int8, c.NumNets()), inQ: make([]bool, c.NumGates())}
	for i := range p.val {
		p.val[i] = -1
	}
	return p
}

// run assumes net n settles to v, propagates, and returns whether the
// assumption is consistent plus every determined assignment. State is
// rolled back before returning.
func (p *prop) run(n circuit.NetID, v int) (ok bool, out []Assignment) {
	ok = true
	defer func() {
		for _, m := range p.trail {
			p.val[m] = -1
		}
		p.trail = p.trail[:0]
		for _, g := range p.dirty {
			p.inQ[g] = false
		}
		p.dirty = p.dirty[:0]
	}()
	if !p.assign(n, int8(v)) {
		return false, nil
	}
	for len(p.dirty) > 0 {
		g := p.dirty[0]
		p.dirty = p.dirty[1:]
		p.inQ[g] = false
		if !p.applyGate(g) {
			return false, nil
		}
	}
	for _, m := range p.trail {
		out = append(out, Assignment{m, int(p.val[m])})
	}
	return true, out
}

func (p *prop) assign(n circuit.NetID, v int8) bool {
	switch p.val[n] {
	case v:
		return true
	case -1:
		p.val[n] = v
		p.trail = append(p.trail, n)
		p.scheduleNet(n)
		return true
	default:
		return false // conflict
	}
}

func (p *prop) scheduleNet(n circuit.NetID) {
	if d := p.c.Net(n).Driver; d != circuit.InvalidGate && !p.inQ[d] {
		p.inQ[d] = true
		p.dirty = append(p.dirty, d)
	}
	for _, g := range p.c.Net(n).Fanout {
		if !p.inQ[g] {
			p.inQ[g] = true
			p.dirty = append(p.dirty, g)
		}
	}
}

// applyGate runs the direct-implication rules of one gate.
func (p *prop) applyGate(gid circuit.GateID) bool {
	g := p.c.Gate(gid)
	out := p.val[g.Output]
	switch g.Type {
	case circuit.NOT:
		in := p.val[g.Inputs[0]]
		if in != -1 && !p.assign(g.Output, 1-in) {
			return false
		}
		if out != -1 && !p.assign(g.Inputs[0], 1-out) {
			return false
		}
	case circuit.BUFFER, circuit.DELAY:
		in := p.val[g.Inputs[0]]
		if in != -1 && !p.assign(g.Output, in) {
			return false
		}
		if out != -1 && !p.assign(g.Inputs[0], out) {
			return false
		}
	case circuit.AND, circuit.NAND, circuit.OR, circuit.NOR:
		ctrl, _ := g.Type.HasControlling()
		cv := int8(ctrl)
		controlled := cv
		if g.Type.Inverting() {
			controlled = 1 - cv
		}
		nonControlled := 1 - controlled
		// Forward.
		known := 0
		anyCtrl := false
		var lastUnknown circuit.NetID = circuit.InvalidNet
		for _, x := range g.Inputs {
			switch p.val[x] {
			case cv:
				anyCtrl = true
				known++
			case 1 - cv:
				known++
			default:
				lastUnknown = x
			}
		}
		if anyCtrl {
			if !p.assign(g.Output, controlled) {
				return false
			}
		} else if known == len(g.Inputs) {
			if !p.assign(g.Output, nonControlled) {
				return false
			}
		}
		// Backward.
		if out == nonControlled {
			for _, x := range g.Inputs {
				if !p.assign(x, 1-cv) {
					return false
				}
			}
		}
		if out == controlled && !anyCtrl && known == len(g.Inputs)-1 && lastUnknown != circuit.InvalidNet {
			if !p.assign(lastUnknown, cv) {
				return false
			}
		}
	case circuit.XOR, circuit.XNOR:
		parity := int8(0)
		if g.Type == circuit.XNOR {
			parity = 1
		}
		unknown := 0
		var lastUnknown circuit.NetID = circuit.InvalidNet
		acc := parity
		for _, x := range g.Inputs {
			if p.val[x] == -1 {
				unknown++
				lastUnknown = x
			} else {
				acc ^= p.val[x]
			}
		}
		switch {
		case unknown == 0:
			if !p.assign(g.Output, acc) {
				return false
			}
		case unknown == 1 && out != -1:
			if !p.assign(lastUnknown, acc^out) {
				return false
			}
		}
	}
	return true
}
