package scoap

import (
	"testing"

	"repro/internal/circuit"
)

func mustBuild(t testing.TB, src string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func id(t testing.TB, c *circuit.Circuit, name string) circuit.NetID {
	t.Helper()
	n, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return n
}

func TestPrimaryInputCosts(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
z = BUFF(a)
`)
	cc := Compute(c)
	a := id(t, c, "a")
	if cc.CC0[a] != 1 || cc.CC1[a] != 1 {
		t.Fatal("PI cost must be 1/1")
	}
	z := id(t, c, "z")
	if cc.CC0[z] != 2 || cc.CC1[z] != 2 {
		t.Fatalf("buffer cost = %d/%d, want 2/2", cc.CC0[z], cc.CC1[z])
	}
}

func TestAndOrCosts(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(x)
OUTPUT(y)
x = AND(a, b)
y = OR(a, b)
`)
	cc := Compute(c)
	x, y := id(t, c, "x"), id(t, c, "y")
	// AND: CC1 = 1+1+1 = 3, CC0 = min(1,1)+1 = 2.
	if cc.CC1[x] != 3 || cc.CC0[x] != 2 {
		t.Fatalf("AND = %d/%d, want CC0=2 CC1=3", cc.CC0[x], cc.CC1[x])
	}
	// OR: CC0 = 3, CC1 = 2.
	if cc.CC0[y] != 3 || cc.CC1[y] != 2 {
		t.Fatalf("OR = %d/%d, want CC0=3 CC1=2", cc.CC0[y], cc.CC1[y])
	}
}

func TestInvertingGates(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(x)
OUTPUT(y)
OUTPUT(n)
x = NAND(a, b)
y = NOR(a, b)
n = NOT(a)
`)
	cc := Compute(c)
	if cc.CC0[id(t, c, "x")] != 3 || cc.CC1[id(t, c, "x")] != 2 {
		t.Fatal("NAND costs wrong")
	}
	if cc.CC1[id(t, c, "y")] != 3 || cc.CC0[id(t, c, "y")] != 2 {
		t.Fatal("NOR costs wrong")
	}
	if cc.CC0[id(t, c, "n")] != 2 || cc.CC1[id(t, c, "n")] != 2 {
		t.Fatal("NOT costs wrong")
	}
}

func TestXorCosts(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(x)
x = XOR(a, b)
`)
	cc := Compute(c)
	x := id(t, c, "x")
	// XOR2: CC0 = min(1+1, 1+1)+1 = 3; CC1 = min(1+1, 1+1)+1 = 3.
	if cc.CC0[x] != 3 || cc.CC1[x] != 3 {
		t.Fatalf("XOR = %d/%d, want 3/3", cc.CC0[x], cc.CC1[x])
	}
}

func TestDeepCostGrowth(t *testing.T) {
	// Controllability must grow monotonically along an AND chain's CC1.
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
INPUT(cc)
INPUT(d)
OUTPUT(z)
n1 = AND(a, b)
n2 = AND(n1, cc)
z = AND(n2, d)
`)
	cc := Compute(c)
	n1, n2, z := id(t, c, "n1"), id(t, c, "n2"), id(t, c, "z")
	if !(cc.CC1[n1] < cc.CC1[n2] && cc.CC1[n2] < cc.CC1[z]) {
		t.Fatal("CC1 must grow along the AND chain")
	}
	if cc.CC0[z] != cc.CC0[n2]+1 && cc.CC0[z] != 2 {
		// CC0 via the cheapest controlling input: d costs 1, +1 = 2.
		t.Fatalf("CC0(z) = %d", cc.CC0[z])
	}
}

func TestObservability(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
INPUT(cc)
OUTPUT(z)
x = AND(a, b)
z = OR(x, cc)
`)
	cont := Compute(c)
	ob := ComputeObservability(c, cont)
	z := id(t, c, "z")
	x := id(t, c, "x")
	a := id(t, c, "a")
	ccn := id(t, c, "cc")
	if ob.CO[z] != 0 {
		t.Fatalf("CO(z) = %d, want 0 (primary output)", ob.CO[z])
	}
	// x observed through the OR: CO(z) + CC0(cc) + 1 = 0 + 1 + 1 = 2.
	if ob.CO[x] != 2 {
		t.Fatalf("CO(x) = %d, want 2", ob.CO[x])
	}
	// a observed through the AND then the OR: CO(x) + CC1(b) + 1 = 4.
	if ob.CO[a] != 4 {
		t.Fatalf("CO(a) = %d, want 4", ob.CO[a])
	}
	// cc observed through the OR with side input x: CO(z) + CC0(x) + 1
	// = 0 + 2 + 1 = 3.
	if ob.CO[ccn] != 3 {
		t.Fatalf("CO(cc) = %d, want 3", ob.CO[ccn])
	}
}

func TestObservabilityFanoutTakesCheapest(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z1)
OUTPUT(z2)
x = NOT(a)
z1 = BUFF(x)
z2 = AND(x, b)
`)
	cont := Compute(c)
	ob := ComputeObservability(c, cont)
	x := id(t, c, "x")
	// x's branches: via z1 buffer (0+1=1) or via z2 AND (0+CC1(b)+1=2):
	// cheapest wins.
	if ob.CO[x] != 1 {
		t.Fatalf("CO(x) = %d, want 1", ob.CO[x])
	}
}

func TestObservabilityXor(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = XOR(a, b)
`)
	cont := Compute(c)
	ob := ComputeObservability(c, cont)
	a := id(t, c, "a")
	// Through XOR: CO(z) + min(CC0(b), CC1(b)) + 1 = 0 + 1 + 1 = 2.
	if ob.CO[a] != 2 {
		t.Fatalf("CO(a) = %d, want 2", ob.CO[a])
	}
}

func TestCostAccessor(t *testing.T) {
	c := mustBuild(t, `
INPUT(a)
OUTPUT(z)
z = NOT(a)
`)
	cc := Compute(c)
	z := id(t, c, "z")
	if cc.Cost(z, 0) != cc.CC0[z] || cc.Cost(z, 1) != cc.CC1[z] {
		t.Fatal("Cost accessor wrong")
	}
}
