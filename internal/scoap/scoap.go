// Package scoap computes SCOAP combinational controllabilities
// (Goldstein & Thigpen), which the paper's case analysis uses to guide
// its backtrace: when several inputs could satisfy an objective, the
// cheapest-to-control one is chosen.
package scoap

import (
	"repro/internal/circuit"
)

// Infinity is the controllability assigned to unreachable combinations.
const Infinity = int64(1) << 40

// Controllability holds CC0/CC1 for every net: the SCOAP estimate of
// how many circuit lines must be set to drive the net to 0 / 1.
type Controllability struct {
	CC0, CC1 []int64
}

// Compute runs the standard one-pass (topological) combinational
// controllability calculation. Primary inputs cost 1 for either value.
func Compute(c *circuit.Circuit) *Controllability {
	cc := &Controllability{
		CC0: make([]int64, c.NumNets()),
		CC1: make([]int64, c.NumNets()),
	}
	for i := range cc.CC0 {
		cc.CC0[i] = Infinity
		cc.CC1[i] = Infinity
	}
	for _, pi := range c.PrimaryInputs() {
		cc.CC0[pi] = 1
		cc.CC1[pi] = 1
	}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		c0, c1 := gateControllability(g, cc)
		cc.CC0[g.Output] = c0
		cc.CC1[g.Output] = c1
	}
	return cc
}

// Project returns the controllabilities of a fan-in cone sub-circuit
// by index translation: fromSub maps cone net ids to original ids.
// SCOAP controllability is a pure function of a net's fan-in cone, and
// a fan-in cone slice preserves every net's fan-in, so the copied
// values are identical to recomputing on the slice — without the
// topological pass.
func (cc *Controllability) Project(fromSub []circuit.NetID) *Controllability {
	p := &Controllability{
		CC0: make([]int64, len(fromSub)),
		CC1: make([]int64, len(fromSub)),
	}
	for i, on := range fromSub {
		p.CC0[i] = cc.CC0[on]
		p.CC1[i] = cc.CC1[on]
	}
	return p
}

// Cost returns the controllability of driving net n to value v.
func (cc *Controllability) Cost(n circuit.NetID, v int) int64 {
	if v == 0 {
		return cc.CC0[n]
	}
	return cc.CC1[n]
}

func addSat(a, b int64) int64 {
	s := a + b
	if s > Infinity {
		return Infinity
	}
	return s
}

func gateControllability(g *circuit.Gate, cc *Controllability) (c0, c1 int64) {
	switch g.Type {
	case circuit.AND, circuit.NAND:
		// AND=1 needs all inputs 1; AND=0 needs the cheapest input 0.
		all1 := int64(1)
		min0 := Infinity
		for _, x := range g.Inputs {
			all1 = addSat(all1, cc.CC1[x])
			if cc.CC0[x] < min0 {
				min0 = cc.CC0[x]
			}
		}
		min0 = addSat(min0, 1)
		if g.Type == circuit.AND {
			return min0, all1
		}
		return all1, min0
	case circuit.OR, circuit.NOR:
		all0 := int64(1)
		min1 := Infinity
		for _, x := range g.Inputs {
			all0 = addSat(all0, cc.CC0[x])
			if cc.CC1[x] < min1 {
				min1 = cc.CC1[x]
			}
		}
		min1 = addSat(min1, 1)
		if g.Type == circuit.OR {
			return all0, min1
		}
		return min1, all0
	case circuit.NOT:
		return addSat(cc.CC1[g.Inputs[0]], 1), addSat(cc.CC0[g.Inputs[0]], 1)
	case circuit.BUFFER, circuit.DELAY:
		return addSat(cc.CC0[g.Inputs[0]], 1), addSat(cc.CC1[g.Inputs[0]], 1)
	case circuit.XOR, circuit.XNOR:
		// Dynamic programming over the inputs: cost of achieving each
		// running parity.
		even, odd := int64(0), Infinity
		for _, x := range g.Inputs {
			e2 := minI64(addSat(even, cc.CC0[x]), addSat(odd, cc.CC1[x]))
			o2 := minI64(addSat(even, cc.CC1[x]), addSat(odd, cc.CC0[x]))
			even, odd = e2, o2
		}
		even, odd = addSat(even, 1), addSat(odd, 1)
		if g.Type == circuit.XOR {
			return even, odd
		}
		return odd, even
	}
	return Infinity, Infinity
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Observability holds SCOAP combinational observability CO for every
// net: the estimated effort of propagating a value change on the net to
// some primary output.
type Observability struct {
	CO []int64
}

// ComputeObservability runs the standard reverse-topological CO
// calculation given the controllabilities. Primary outputs observe at
// cost 0; a gate input is observed by driving the gate's other inputs
// to non-controlling values and observing the output. A fanout stem
// takes the cheapest branch.
func ComputeObservability(c *circuit.Circuit, cc *Controllability) *Observability {
	ob := &Observability{CO: make([]int64, c.NumNets())}
	for i := range ob.CO {
		ob.CO[i] = Infinity
	}
	for _, po := range c.PrimaryOutputs() {
		ob.CO[po] = 0
	}
	topo := c.TopoGates()
	for i := len(topo) - 1; i >= 0; i-- {
		g := c.Gate(topo[i])
		out := ob.CO[g.Output]
		if out >= Infinity {
			continue
		}
		for _, x := range g.Inputs {
			cost := addSat(out, 1)
			switch g.Type {
			case circuit.AND, circuit.NAND:
				for _, y := range g.Inputs {
					if y != x {
						cost = addSat(cost, cc.CC1[y])
					}
				}
			case circuit.OR, circuit.NOR:
				for _, y := range g.Inputs {
					if y != x {
						cost = addSat(cost, cc.CC0[y])
					}
				}
			case circuit.XOR, circuit.XNOR:
				// Any side assignment propagates; charge the cheapest
				// per side input.
				for _, y := range g.Inputs {
					if y != x {
						cost = addSat(cost, minI64(cc.CC0[y], cc.CC1[y]))
					}
				}
			}
			if cost < ob.CO[x] {
				ob.CO[x] = cost
			}
		}
	}
	return ob
}
