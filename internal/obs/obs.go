// Package obs is the engine's observability layer: lock-cheap
// fixed-bucket histograms, a Prometheus text-exposition registry, a
// Chrome trace_event span recorder, structured-logging setup, and a
// core.Tracer implementation tying them to the check pipeline.
//
// The paper's whole argument is *where the time goes* — which checks
// fall through to case analysis, how many propagations and backtracks
// each stage burns (Table 1). The flat counters of core.StatsTracer
// answer "how much total"; this package answers the distributional
// questions a serving deployment actually asks: per-stage latency
// percentiles (ltta_stage_duration_seconds), how skewed the
// propagation cost is across checks (ltta_check_propagations), and an
// exportable per-worker timeline (SpanRecorder) that renders the
// parallel sweep in Perfetto.
//
// Everything here is stdlib-only and safe for concurrent use; the
// histogram hot path is a bounded binary search plus two atomic adds,
// so one shared Tracer can sit behind every worker of a parallel
// RunAll without serialising them.
package obs
