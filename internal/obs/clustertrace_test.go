package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestClusterTraceLanesAndGroups drives the lane allocator directly:
// overlapping spans inside one group must land on distinct lanes,
// back-to-back spans must reuse a lane, and each group must become its
// own process with a name metadata event. Spans arrive out of order —
// exactly how requeued attempts reach a coordinator — and the written
// trace must still validate.
func TestClusterTraceLanesAndGroups(t *testing.T) {
	origin := time.Unix(1000, 0)
	us := origin.UnixMicro()
	ct := obs.NewClusterTrace(origin)

	// Two overlapping coordinator spans → two lanes; a third span
	// starting after both end reuses lane 1.
	ct.Span("coordinator", "dispatch a", us+0, 100, nil)
	ct.Span("coordinator", "dispatch b", us+50, 100, nil)
	ct.Span("coordinator", "merge", us+200, 10, map[string]any{"trace_id": "x"})
	// A worker span arriving late, with a start before the second
	// coordinator span — out-of-order recording must be tolerated.
	ct.Span("worker w1", "check G0", us+20, 40, nil)
	// Clock skew: a span "before" the origin clamps to ts 0.
	ct.Span("worker w1", "check G1", us-500, 30, nil)
	// Negative duration clamps to zero rather than breaking Perfetto.
	ct.Span("worker w1", "check G2", us+300, -5, nil)

	// 6 spans + 2 process_name + 3 lane thread_name events (2
	// coordinator lanes, 1 worker lane — the skew-clamped span starts
	// at ts 0 while lane 1 is busy until 60... so it opens lane 2).
	var buf bytes.Buffer
	if err := ct.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("cluster trace does not validate: %v\n%s", err, buf.String())
	}
	if n != ct.Len() {
		t.Fatalf("validator saw %d events, trace holds %d", n, ct.Len())
	}
	text := buf.String()
	for _, want := range []string{
		`"name":"coordinator"`, `"name":"worker w1"`, // process names
		`"name":"dispatch a"`, `"name":"check G0"`,
		`"ph":"X"`, `"trace_id":"x"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("trace JSON missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `"name":"lane 2"`) {
		t.Error("overlapping spans did not open a second lane")
	}
}

// TestClusterTraceLaneReuse: strictly sequential spans in one group
// stay on one lane no matter how many there are.
func TestClusterTraceLaneReuse(t *testing.T) {
	origin := time.Unix(2000, 0)
	us := origin.UnixMicro()
	ct := obs.NewClusterTrace(origin)
	for i := int64(0); i < 20; i++ {
		ct.Span("worker w1", "check", us+i*100, 50, nil)
	}
	var buf bytes.Buffer
	if err := ct.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `"name":"lane 1"`) {
		t.Fatal("no lane metadata recorded")
	}
	if strings.Contains(text, `"name":"lane 2"`) {
		t.Fatal("sequential spans opened a second lane; reuse is broken")
	}
	if _, err := obs.ValidateTrace(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
}

// TestClusterTraceConcurrent records from many goroutines at once —
// the coordinator's dispatch goroutines and merge path share one
// ClusterTrace — and the result must still be a valid timeline.
func TestClusterTraceConcurrent(t *testing.T) {
	origin := time.Unix(3000, 0)
	us := origin.UnixMicro()
	ct := obs.NewClusterTrace(origin)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			group := []string{"coordinator", "worker a", "worker b", "merge"}[g]
			for i := int64(0); i < 50; i++ {
				ct.Span(group, "s", us+i*10, 5, nil)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	var buf bytes.Buffer
	if err := ct.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("concurrently-built trace does not validate: %v", err)
	}
}
