package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/waveform"
)

// TraceEvent is one Chrome trace_event record — the JSON schema
// Perfetto and chrome://tracing load directly. Ph "B"/"E" bracket a
// span, "X" is a complete span (Ts + Dur), "M" carries metadata
// (process and thread names).
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds since recorder start
	Dur  float64        `json:"dur,omitempty"` // microseconds; "X" events only
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the containing JSON object trace viewers expect.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// SpanRecorder turns the pipeline's tracer callbacks into a Chrome
// trace_event timeline: one span per check, nested spans per pipeline
// stage. Checks running concurrently (parallel RunAll, the lttad
// pool) are assigned distinct lanes — rendered as threads — so the
// parallel sweep's overlap is visible instead of interleaved garbage.
//
// Lane assignment keys on the calling goroutine: every core.Tracer
// callback of one check fires on the goroutine running that check, so
// the goroutine id is a reliable check identity between CheckStart
// and CheckDone without any cooperation from the engine. Lanes are
// recycled smallest-first when checks finish, keeping the timeline
// compact (#lanes == peak concurrency, not #checks).
//
// All state is guarded by one mutex; span recording is an opt-in
// diagnostic mode, and the lock also makes timestamps globally
// monotonic, which the trace format wants per lane.
type SpanRecorder struct {
	c *circuit.Circuit // optional: names sinks in span titles

	mu     sync.Mutex
	start  time.Time
	events []TraceEvent
	active map[uint64]int // goroutine id → lane
	free   []int          // recycled lanes (min-heap by sort)
	lanes  int            // lanes ever created
	stamp  map[string]any // guarded by mu: args added to every check span
}

// Stamp merges args into every subsequent check span's args — the
// lttad server stamps (trace id, batch, attempt) here so a per-batch
// timeline is attributable to its distributed trace.
func (r *SpanRecorder) Stamp(args map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stamp == nil {
		r.stamp = map[string]any{}
	}
	for k, v := range args {
		r.stamp[k] = v
	}
}

// NewSpanRecorder returns an empty recorder. The circuit is optional;
// when non-nil, check spans are titled with net names.
func NewSpanRecorder(c *circuit.Circuit) *SpanRecorder {
	return &SpanRecorder{c: c, start: time.Now(), active: map[uint64]int{}}
}

var _ core.Tracer = (*SpanRecorder)(nil)

// gid parses the current goroutine's id from its stack header
// ("goroutine 123 [running]:"). ~1µs — irrelevant next to the checks
// being traced, and only paid in span-recording mode.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if !bytes.HasPrefix(s, []byte(prefix)) {
		return 0
	}
	s = s[len(prefix):]
	var id uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// now returns microseconds since recorder start; callers hold mu, so
// successive events carry non-decreasing timestamps.
func (r *SpanRecorder) now() float64 {
	return float64(time.Since(r.start).Nanoseconds()) / 1e3
}

func (r *SpanRecorder) netName(n circuit.NetID) string {
	if r.c != nil && n != circuit.InvalidNet {
		return r.c.Net(n).Name
	}
	return "net" + strconv.Itoa(int(n))
}

func (r *SpanRecorder) CheckStart(sink circuit.NetID, delta waveform.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lane := r.allocLane()
	r.active[gid()] = lane
	args := map[string]any{"sink": r.netName(sink), "delta": int64(delta)}
	for k, v := range r.stamp {
		args[k] = v
	}
	r.events = append(r.events, TraceEvent{
		Name: "check " + r.netName(sink), Ph: "B", Ts: r.now(), Pid: 1, Tid: lane,
		Args: args,
	})
}

// allocLane hands out the smallest recycled lane, or a fresh one. On
// first use of a lane a metadata event names it for the viewer.
func (r *SpanRecorder) allocLane() int {
	if n := len(r.free); n > 0 {
		sort.Ints(r.free)
		lane := r.free[0]
		r.free = r.free[1:]
		return lane
	}
	r.lanes++
	lane := r.lanes
	r.events = append(r.events, TraceEvent{
		Name: "thread_name", Ph: "M", Ts: 0, Pid: 1, Tid: lane,
		Args: map[string]any{"name": fmt.Sprintf("worker lane %d", lane)},
	})
	return lane
}

func (r *SpanRecorder) lane() (int, bool) {
	lane, ok := r.active[gid()]
	return lane, ok
}

func (r *SpanRecorder) StageEnter(stage core.Stage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lane, ok := r.lane()
	if !ok {
		return // defensive: stage event outside a check
	}
	r.events = append(r.events, TraceEvent{
		Name: stage.String(), Ph: "B", Ts: r.now(), Pid: 1, Tid: lane,
	})
}

func (r *SpanRecorder) StageExit(stage core.Stage, verdict core.Result, _ time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lane, ok := r.lane()
	if !ok {
		return
	}
	r.events = append(r.events, TraceEvent{
		Name: stage.String(), Ph: "E", Ts: r.now(), Pid: 1, Tid: lane,
		Args: map[string]any{"verdict": verdict.String()},
	})
}

func (r *SpanRecorder) DominatorRound(int, int, bool)    {}
func (r *SpanRecorder) Decision(int, circuit.NetID, int) {}
func (r *SpanRecorder) Backtrack(int)                    {}
func (r *SpanRecorder) StemSplit(int, circuit.NetID)     {}

func (r *SpanRecorder) CheckDone(rep *core.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := gid()
	lane, ok := r.active[g]
	if !ok {
		return
	}
	delete(r.active, g)
	r.free = append(r.free, lane)
	r.events = append(r.events, TraceEvent{
		Name: "check " + r.netName(rep.Sink), Ph: "E", Ts: r.now(), Pid: 1, Tid: lane,
		Args: map[string]any{
			"final":        rep.Final.String(),
			"propagations": rep.Propagations,
			"backtracks":   rep.Backtracks,
		},
	})
}

// Len reports the number of recorded events.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteTrace renders the recorded timeline as trace_event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (r *SpanRecorder) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	events := make([]TraceEvent, len(r.events))
	copy(events, r.events)
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateTrace parses trace_event JSON and checks the span
// discipline this package promises: per lane (pid, tid pair),
// timestamps are non-decreasing, B/E events nest properly with
// matching names (every stage span closed inside its check span), and
// X complete spans carry a non-negative duration. Returns the event
// count for smoke assertions.
func ValidateTrace(rd io.Reader) (int, error) {
	var tf traceFile
	if err := json.NewDecoder(rd).Decode(&tf); err != nil {
		return 0, fmt.Errorf("obs: trace JSON: %w", err)
	}
	type laneKey struct{ pid, tid int }
	type laneState struct {
		ts    float64
		stack []string
	}
	lanes := map[laneKey]*laneState{}
	for i, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		key := laneKey{ev.Pid, ev.Tid}
		ls := lanes[key]
		if ls == nil {
			ls = &laneState{}
			lanes[key] = ls
		}
		if ev.Ts < ls.ts {
			return 0, fmt.Errorf("obs: trace event %d: ts %.3f before %.3f on lane %d/%d",
				i, ev.Ts, ls.ts, ev.Pid, ev.Tid)
		}
		ls.ts = ev.Ts
		switch ev.Ph {
		case "B":
			ls.stack = append(ls.stack, ev.Name)
		case "E":
			if len(ls.stack) == 0 {
				return 0, fmt.Errorf("obs: trace event %d: E %q on empty lane %d/%d", i, ev.Name, ev.Pid, ev.Tid)
			}
			top := ls.stack[len(ls.stack)-1]
			if top != ev.Name {
				return 0, fmt.Errorf("obs: trace event %d: E %q does not close B %q on lane %d/%d",
					i, ev.Name, top, ev.Pid, ev.Tid)
			}
			ls.stack = ls.stack[:len(ls.stack)-1]
		case "X":
			if ev.Dur < 0 {
				return 0, fmt.Errorf("obs: trace event %d: X %q with negative dur %.3f", i, ev.Name, ev.Dur)
			}
		default:
			return 0, fmt.Errorf("obs: trace event %d: unknown phase %q", i, ev.Ph)
		}
	}
	for key, ls := range lanes {
		if len(ls.stack) > 0 {
			return 0, fmt.Errorf("obs: lane %d/%d left %d spans open (%v)", key.pid, key.tid, len(ls.stack), ls.stack)
		}
	}
	return len(tf.TraceEvents), nil
}
