package obs_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// TestFlightRecorderWraparound fills a small ring several times over
// and checks the snapshot invariants: Recorded counts everything ever
// written, Last holds exactly the ring's worth of newest records in
// newest-first order, and Slowest is exactly the top-K by elapsed
// time, slowest first.
func TestFlightRecorderWraparound(t *testing.T) {
	const last, slowest, total = 8, 4, 37
	fr := obs.NewFlightRecorder(last, slowest)
	// A permutation of elapsed values so the slowest records are
	// scattered through the sequence, not clustered at either end.
	for i := 0; i < total; i++ {
		fr.Record(&obs.CheckRecord{
			Batch:     int64(i),
			Sink:      fmt.Sprintf("G%d", i),
			ElapsedUs: int64((i * 17) % total),
		})
	}
	if got := fr.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	snap := fr.Snapshot()
	if snap.Recorded != total {
		t.Fatalf("snapshot.Recorded = %d, want %d", snap.Recorded, total)
	}
	if len(snap.Last) != last {
		t.Fatalf("kept %d recent records, want the ring size %d", len(snap.Last), last)
	}
	for i, rec := range snap.Last {
		if want := int64(total - 1 - i); rec.Batch != want {
			t.Errorf("Last[%d].Batch = %d, want %d (newest first)", i, rec.Batch, want)
		}
	}
	if len(snap.Slowest) != slowest {
		t.Fatalf("kept %d slowest records, want %d", len(snap.Slowest), slowest)
	}
	// The true top-K elapsed values are total-1 .. total-slowest.
	for i, rec := range snap.Slowest {
		if want := int64(total - 1 - i); rec.ElapsedUs != want {
			t.Errorf("Slowest[%d].ElapsedUs = %d, want %d", i, rec.ElapsedUs, want)
		}
	}
}

// TestFlightRecorderShortHistory: a recorder that never filled its
// ring returns only what was recorded, and a sub-capacity slow heap
// returns everything seen.
func TestFlightRecorderShortHistory(t *testing.T) {
	fr := obs.NewFlightRecorder(64, 16)
	fr.Record(&obs.CheckRecord{Sink: "a", ElapsedUs: 5})
	fr.Record(&obs.CheckRecord{Sink: "b", ElapsedUs: 3})
	snap := fr.Snapshot()
	if len(snap.Last) != 2 || len(snap.Slowest) != 2 || snap.Recorded != 2 {
		t.Fatalf("short history snapshot: last=%d slowest=%d recorded=%d, want 2/2/2",
			len(snap.Last), len(snap.Slowest), snap.Recorded)
	}
	if snap.Last[0].Sink != "b" || snap.Slowest[0].Sink != "a" {
		t.Fatalf("ordering: last[0]=%s (want b), slowest[0]=%s (want a)",
			snap.Last[0].Sink, snap.Slowest[0].Sink)
	}
}

// TestFlightRecorderConcurrent hammers one shared recorder from many
// goroutines (the shape of a parallel sweep sharing the server's
// always-on recorder) while snapshots run concurrently; under -race
// this doubles as the recorder's data-race proof. Every record carries
// a unique elapsed value, so the slowest-K set is exactly determined
// even though arrival order is not.
func TestFlightRecorderConcurrent(t *testing.T) {
	const goroutines, per, slowest = 8, 500, 16
	fr := obs.NewFlightRecorder(128, slowest)
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() { // concurrent reader: snapshots must stay well-formed mid-write
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := fr.Snapshot()
			if len(snap.Last) > 128 || len(snap.Slowest) > slowest {
				t.Errorf("snapshot overflow: last=%d slowest=%d", len(snap.Last), len(snap.Slowest))
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fr.Record(&obs.CheckRecord{
					Worker:    fmt.Sprintf("w%d", g),
					ElapsedUs: int64(g*per + i),
				})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	const total = goroutines * per
	if got := fr.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	snap := fr.Snapshot()
	if len(snap.Slowest) != slowest {
		t.Fatalf("kept %d slowest, want %d", len(snap.Slowest), slowest)
	}
	// Unique elapsed values make the top-K exact: total-1 downwards.
	got := make([]int64, len(snap.Slowest))
	for i, rec := range snap.Slowest {
		got[i] = rec.ElapsedUs
	}
	sort.Slice(got, func(i, j int) bool { return got[i] > got[j] })
	for i, v := range got {
		if want := int64(total - 1 - i); v != want {
			t.Fatalf("slowest set wrong at %d: got %d, want %d (full set %v)", i, v, want, got)
		}
	}
}

// flightCoreTracer adapts a FlightRecorder to core.Tracer so a RunAll
// sweep records every finished check — the wiring the server uses, in
// miniature. Embedding obs.Tracer supplies the no-op callbacks.
type flightCoreTracer struct {
	*obs.Tracer
	c  *circuit.Circuit
	fr *obs.FlightRecorder
}

func (t flightCoreTracer) CheckDone(rep *core.Report) {
	t.Tracer.CheckDone(rep)
	t.fr.Record(&obs.CheckRecord{
		Sink:         t.c.Net(rep.Sink).Name,
		Delta:        int64(rep.Delta),
		Verdict:      rep.Final.String(),
		ElapsedUs:    rep.Elapsed.Microseconds(),
		Propagations: rep.Propagations,
		Backtracks:   rep.Backtracks,
	})
}

// TestFlightRecorderSharedAcrossRunAll shares one recorder across all
// workers of a parallel sweep (run under -race in CI): every check
// lands exactly once and the slowest list names real sinks.
func TestFlightRecorderSharedAcrossRunAll(t *testing.T) {
	c := gen.Industrial(3, 16, 10)
	v := core.NewVerifier(c, core.Default())
	fr := obs.NewFlightRecorder(0, 0) // defaults
	cr := v.RunAll(context.Background(), core.Request{
		Delta: v.Topological().Add(1), Workers: 4,
		Tracer: flightCoreTracer{Tracer: obs.NewTracer(), c: c, fr: fr},
	})
	if int(fr.Recorded()) != len(cr.PerOutput) {
		t.Fatalf("recorded %d checks, sweep ran %d", fr.Recorded(), len(cr.PerOutput))
	}
	snap := fr.Snapshot()
	if len(snap.Slowest) == 0 {
		t.Fatal("no slowest records after a full sweep")
	}
	names := map[string]bool{}
	for _, po := range c.PrimaryOutputs() {
		names[c.Net(po).Name] = true
	}
	for _, rec := range snap.Slowest {
		if !names[rec.Sink] {
			t.Errorf("slowest record names %q, not a primary output", rec.Sink)
		}
		if rec.Verdict == "" {
			t.Errorf("slowest record for %q has no verdict", rec.Sink)
		}
	}
}

// BenchmarkFlightRecorderRecord measures the always-on fast path —
// the per-check overhead every production check pays. The elapsed
// values cycle below the slow threshold once the heap fills, so this
// times the common case: fetch-add, pointer store, threshold load.
func BenchmarkFlightRecorderRecord(b *testing.B) {
	fr := obs.NewFlightRecorder(256, 32)
	// Saturate the slow heap so the fast path's threshold check fails.
	for i := 0; i < 64; i++ {
		fr.Record(&obs.CheckRecord{ElapsedUs: 1 << 40})
	}
	rec := &obs.CheckRecord{Sink: "G0", ElapsedUs: 100}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			fr.Record(rec)
		}
	})
}
