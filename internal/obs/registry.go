package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one series' label set. Rendered sorted by key so the
// exposition is deterministic.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format escaping for label values.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing metric owned by the registry
// user. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// series renders one sample line set of a family.
type series struct {
	labels Labels
	write  func(w io.Writer, name, labels string)
}

// family is all series sharing one metric name (one HELP/TYPE block).
type family struct {
	name, help, typ string
	series          []series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). Families appear in
// registration order; each name gets exactly one HELP/TYPE pair no
// matter how many labeled series it carries. Registration methods
// panic on a name re-registered with a different type or help — a
// wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) familyFor(name, help, typ string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ || f.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q, was %s/%q",
			name, typ, help, f.typ, f.help))
	}
	return f
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CounterFunc registers a counter series whose value is read at
// scrape time — the natural fit for the server's existing atomics.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter")
	f.series = append(f.series, series{labels: labels, write: func(w io.Writer, name, ls string) {
		fmt.Fprintf(w, "%s%s %d\n", name, ls, fn())
	}})
}

// Counter registers and returns a counter series owned by the caller.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, labels, c.Value)
	return c
}

// CounterVec is a family of counters distinguished by the value of one
// label, with series created lazily the first time a value is seen —
// the fit for labels whose values are discovered at runtime (requeue
// reasons, attempt numbers) rather than enumerable up front. The
// family's HELP/TYPE block is registered eagerly, so an unused vector
// still appears (empty) in the exposition.
type CounterVec struct {
	r          *Registry
	name, help string
	key        string

	mu sync.Mutex
	by map[string]*Counter // guarded by mu
}

// CounterVec registers a lazily-populated labeled counter family. The
// label key must be a valid metric-name-shaped identifier (the same
// grammar label names use in the exposition).
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if !validMetricName(labelKey) {
		panic(fmt.Sprintf("obs: invalid label key %q", labelKey))
	}
	r.mu.Lock()
	r.familyFor(name, help, "counter") // reserve name + HELP/TYPE now
	r.mu.Unlock()
	return &CounterVec{r: r, name: name, help: help, key: labelKey, by: map[string]*Counter{}}
}

// With returns the counter for one label value, creating (and
// registering) its series on first use. Safe for concurrent use;
// the returned counter may be retained.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.by[value]
	if c == nil {
		c = v.r.Counter(v.name, v.help, Labels{v.key: value})
		v.by[value] = c
	}
	return c
}

// GaugeFunc registers a gauge series read at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "gauge")
	f.series = append(f.series, series{labels: labels, write: func(w io.Writer, name, ls string) {
		fmt.Fprintf(w, "%s%s %s\n", name, ls, formatFloat(fn()))
	}})
}

// Histogram registers a histogram series. scale converts the stored
// integer values into the exposition unit (1e-9 turns nanoseconds
// into the conventional seconds; 1 keeps counts as-is). Multiple
// series under one name must share bucket bounds — Prometheus treats
// mismatched le sets across labels of one family as scrape-breaking.
func (r *Registry) Histogram(name, help string, labels Labels, h *Histogram, scale float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "histogram")
	f.series = append(f.series, series{labels: labels, write: func(w io.Writer, name, ls string) {
		writeHistogram(w, name, labels, h.Snapshot(), scale)
	}})
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines per bound plus +Inf, then _sum and _count.
func writeHistogram(w io.Writer, name string, labels Labels, s HistSnapshot, scale float64) {
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(float64(b)*scale)), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels.render(), formatFloat(float64(s.Sum)*scale))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels.render(), s.Count)
}

// bucketLabels renders the series labels with le appended.
func bucketLabels(labels Labels, le string) string {
	withLE := make(Labels, len(labels)+1)
	for k, v := range labels {
		withLE[k] = v
	}
	withLE["le"] = le
	return withLE.render()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in registration
// order. Scrape-time reads (CounterFunc/GaugeFunc/histogram
// snapshots) happen under the registry lock, so one scrape is
// internally ordered though not a consistent cut across metrics.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.write(w, f.name, s.labels.render())
		}
	}
}
