package obs

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
)

// CheckRecord is one completed check as the flight recorder keeps it:
// identity (trace/span/tenant/batch), what was checked, where it ran
// (placement and attempt), how it went (verdict, stage durations, work
// counters). Records are immutable once handed to Record.
type CheckRecord struct {
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Batch   int64  `json:"batch"`

	Sink    string `json:"sink"`
	Delta   int64  `json:"delta"`
	Verdict string `json:"verdict"`
	Error   string `json:"error,omitempty"`

	// Worker/Attempt/Hedge are placement metadata: on a coordinator the
	// worker address and dispatch attempt that produced the merged
	// result, on a worker its own shard attempt (zero for direct
	// batches).
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Hedge   bool   `json:"hedge,omitempty"`

	StartUnixUs int64 `json:"startUnixUs,omitempty"`
	ElapsedUs   int64 `json:"elapsedUs"`
	// StageUs holds per-stage durations in pipeline order (fixpoint,
	// gitd, stems, casean), microseconds.
	StageUs []int64 `json:"stageUs,omitempty"`

	Propagations int64 `json:"propagations"`
	Backtracks   int   `json:"backtracks"`
}

// FlightRecorder is an always-on, lock-cheap record of recent and
// slow checks: a ring buffer of the last N completed checks plus a
// min-heap of the K slowest ever seen, snapshotted on demand by
// GET /debug/checks.
//
// The fast path is O(1) atomics — one fetch-add for the ring slot, one
// pointer store, one threshold load — so one recorder is shared across
// every worker of a parallel sweep without contention. The slowest-K
// heap hides behind an atomic admission threshold (the heap's current
// minimum): only candidates that might displace it take the mutex.
// The threshold is re-checked under the lock and only ever rises, so a
// stale (low) read costs one harmless lock acquisition and the heap
// stays exactly the top K even under concurrent recording.
type FlightRecorder struct {
	ring []atomic.Pointer[CheckRecord] // fixed length, slot = seq % len
	head atomic.Uint64                 // records ever written

	slowMin atomic.Int64 // admission threshold: current heap minimum (-1 until full)
	mu      sync.Mutex
	slow    slowHeap // guarded by mu
	slowCap int
}

// NewFlightRecorder builds a recorder keeping the last `last` checks
// and the `slowest` slowest. Non-positive sizes fall back to defaults
// (256 last, 32 slowest).
func NewFlightRecorder(last, slowest int) *FlightRecorder {
	if last <= 0 {
		last = 256
	}
	if slowest <= 0 {
		slowest = 32
	}
	fr := &FlightRecorder{
		ring:    make([]atomic.Pointer[CheckRecord], last),
		slowCap: slowest,
	}
	fr.slowMin.Store(-1) // every record (ElapsedUs >= 0) qualifies until the heap fills
	return fr
}

// Record stores one completed check. rec must not be mutated after the
// call (the recorder keeps the pointer). Safe for concurrent use.
func (fr *FlightRecorder) Record(rec *CheckRecord) {
	seq := fr.head.Add(1) - 1
	fr.ring[seq%uint64(len(fr.ring))].Store(rec)
	if rec.ElapsedUs > fr.slowMin.Load() {
		fr.recordSlow(rec)
	}
}

func (fr *FlightRecorder) recordSlow(rec *CheckRecord) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.slow) < fr.slowCap {
		heap.Push(&fr.slow, rec)
		if len(fr.slow) == fr.slowCap {
			fr.slowMin.Store(fr.slow[0].ElapsedUs)
		}
		return
	}
	// Re-check under the lock: the threshold may have risen since the
	// racy fast-path read.
	if rec.ElapsedUs <= fr.slow[0].ElapsedUs {
		return
	}
	fr.slow[0] = rec
	heap.Fix(&fr.slow, 0)
	fr.slowMin.Store(fr.slow[0].ElapsedUs)
}

// Recorded reports how many checks were ever recorded.
func (fr *FlightRecorder) Recorded() uint64 { return fr.head.Load() }

// FlightSnapshot is the /debug/checks view of a recorder: how many
// checks were ever recorded, the most recent ones (newest first), and
// the slowest ones (slowest first).
type FlightSnapshot struct {
	Recorded uint64        `json:"recorded"`
	Last     []CheckRecord `json:"last"`
	Slowest  []CheckRecord `json:"slowest"`
}

// Snapshot captures the recorder's current state. Under concurrent
// recording the ring walk is slot-wise atomic but not a consistent
// cut: a slot being overwritten mid-walk yields the newer record.
func (fr *FlightRecorder) Snapshot() FlightSnapshot {
	head := fr.head.Load()
	n := head
	if max := uint64(len(fr.ring)); n > max {
		n = max
	}
	snap := FlightSnapshot{Recorded: head}
	for i := uint64(0); i < n; i++ {
		rec := fr.ring[(head-1-i)%uint64(len(fr.ring))].Load()
		if rec == nil {
			continue // slot claimed by a concurrent Record, not yet stored
		}
		snap.Last = append(snap.Last, *rec)
	}
	fr.mu.Lock()
	slow := make([]*CheckRecord, len(fr.slow))
	copy(slow, fr.slow)
	fr.mu.Unlock()
	// Heap order is only min-at-root; present slowest first.
	sort.Slice(slow, func(i, j int) bool { return slow[i].ElapsedUs > slow[j].ElapsedUs })
	for _, rec := range slow {
		snap.Slowest = append(snap.Slowest, *rec)
	}
	return snap
}

// slowHeap is a min-heap of records by elapsed time, so the root is
// the cheapest record to evict when a slower one arrives.
type slowHeap []*CheckRecord

func (h slowHeap) Len() int           { return len(h) }
func (h slowHeap) Less(i, j int) bool { return h[i].ElapsedUs < h[j].ElapsedUs }
func (h slowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slowHeap) Push(x any)        { *h = append(*h, x.(*CheckRecord)) }
func (h *slowHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
