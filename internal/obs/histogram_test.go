package obs

import (
	"sync"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 100, 5)
	if b[0] != 1 {
		t.Fatalf("first bound %d, want 1", b[0])
	}
	if last := b[len(b)-1]; last < 100 {
		t.Fatalf("last bound %d < hi 100", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, b)
		}
	}
	// Five buckets per decade on a 2-decade range: roughly 11 bounds
	// (deduplication at the small end may drop a couple).
	if len(b) < 8 || len(b) > 12 {
		t.Fatalf("unexpected bucket count %d: %v", len(b), b)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	h.Observe(5000) // overflow

	s := h.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("count %d, want 1001", s.Count)
	}
	wantCounts := []uint64{10, 90, 900, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	wantSum := int64(1000*1001/2 + 5000)
	if s.Sum != wantSum {
		t.Fatalf("sum %d, want %d", s.Sum, wantSum)
	}
	// The median of 1..1000 is ~500; bucket interpolation lands within
	// the (100, 1000] bucket.
	if q := s.Quantile(0.5); q < 300 || q > 700 {
		t.Fatalf("p50 %d, want ≈500", q)
	}
	if q := s.Quantile(0); q < 0 || q > 10 {
		t.Fatalf("p0 %d, want within first bucket", q)
	}
	// p100 includes the overflow observation and saturates to the last
	// bound.
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("p100 %d, want 1000 (saturated)", q)
	}
	if m := s.Mean(); m < 490 || m > 520 {
		t.Fatalf("mean %f, want ≈505", m)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram([]int64{1, 2})
	if q := h.Snapshot().Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile %d, want 0", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(ExpBuckets(1, 1000, 3))
	b := NewHistogram(ExpBuckets(1, 1000, 3))
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		b.Observe(i * 10)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 200 {
		t.Fatalf("merged count %d, want 200", sa.Count)
	}
	if want := int64(100*101/2 + 10*100*101/2); sa.Sum != want {
		t.Fatalf("merged sum %d, want %d", sa.Sum, want)
	}

	other := NewHistogram([]int64{1, 2, 3}).Snapshot()
	if err := sa.Merge(other); err == nil {
		t.Fatal("merging mismatched bounds must error")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 1_000_000, 5))
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i + 1))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	n := int64(workers * per)
	if want := n * (n + 1) / 2; s.Sum != want {
		t.Fatalf("sum %d, want %d", s.Sum, want)
	}
}
