package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample line.
type PromSample struct {
	Name   string
	Labels Labels
	Value  float64
}

// PromFamily is one parsed metric family: its HELP/TYPE metadata and
// every sample whose base name belongs to it (histogram _bucket/_sum/
// _count samples attach to the histogram family).
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParseProm parses Prometheus text exposition (version 0.0.4) and
// validates its structure:
//
//   - every non-empty line is a well-formed comment or sample
//   - no metric name carries a duplicate HELP or TYPE line
//   - samples follow their family's TYPE (a histogram family only
//     emits _bucket/_sum/_count samples, and each series' cumulative
//     bucket counts are non-decreasing with a final +Inf bucket equal
//     to its _count)
//
// It exists for the CI scrape check and the exposition tests; it is
// not a full OpenMetrics parser (no exemplars, no timestamps —
// neither is emitted by this package, and a timestamp is reported as
// an error so they cannot creep in unvalidated).
func ParseProm(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var (
		families []*PromFamily
		byName   = map[string]*PromFamily{}
		helpSeen = map[string]bool{}
		typeSeen = map[string]bool{}
		line     int
	)
	fam := func(name string) *PromFamily {
		if f := byName[name]; f != nil {
			return f
		}
		f := &PromFamily{Name: name}
		families = append(families, f)
		byName[name] = f
		return f
	}
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			kind, name, rest, err := parsePromComment(text)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			switch kind {
			case "HELP":
				if helpSeen[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %q", line, name)
				}
				helpSeen[name] = true
				fam(name).Help = rest
			case "TYPE":
				if typeSeen[name] {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %q", line, rest, name)
				}
				typeSeen[name] = true
				fam(name).Type = rest
			}
			continue
		}
		s, err := parsePromSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		base := s.Name
		if f := byName[base]; f == nil {
			// Histogram child samples attach to their parent family.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if p, ok := strings.CutSuffix(base, suffix); ok && byName[p] != nil && byName[p].Type == "histogram" {
					base = p
					break
				}
			}
		}
		if byName[base] == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE", line, s.Name)
		}
		f := byName[base]
		if f.Type == "histogram" && s.Name == f.Name {
			return nil, fmt.Errorf("line %d: bare sample %q on histogram family", line, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]PromFamily, len(families))
	for i, f := range families {
		if err := validateFamily(f); err != nil {
			return nil, err
		}
		out[i] = *f
	}
	return out, nil
}

// ValidateProm parses and validates, returning only the verdict.
func ValidateProm(r io.Reader) error {
	_, err := ParseProm(r)
	return err
}

func parsePromComment(text string) (kind, name, rest string, err error) {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return "", "", "", nil // "#..." free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return "", "", "", fmt.Errorf("malformed HELP line %q", text)
		}
		if len(fields) == 4 {
			rest = fields[3]
		}
		return "HELP", fields[2], rest, nil
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return "", "", "", fmt.Errorf("malformed TYPE line %q", text)
		}
		return "TYPE", fields[2], fields[3], nil
	}
	return "", "", "", nil
}

func parsePromSample(text string) (PromSample, error) {
	s := PromSample{Labels: Labels{}}
	rest := text
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.Name = rest[:brace]
		end, labels, err := parsePromLabels(rest[brace:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimLeft(rest[brace+end:], " \t")
	} else {
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", text)
		}
		s.Name = rest[:sp]
		rest = strings.TrimLeft(rest[sp:], " \t")
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	valueFields := strings.Fields(rest)
	if len(valueFields) == 0 {
		return s, fmt.Errorf("sample %q has no value", text)
	}
	if len(valueFields) > 1 {
		return s, fmt.Errorf("sample %q carries a timestamp or trailing garbage", text)
	}
	v, err := strconv.ParseFloat(valueFields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %v", text, err)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels parses a "{k=\"v\",...}" block starting at text[0],
// returning the index just past the closing brace.
func parsePromLabels(text string) (int, Labels, error) {
	labels := Labels{}
	i := 1 // past '{'
	for {
		for i < len(text) && (text[i] == ' ' || text[i] == ',') {
			i++
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block %q", text)
		}
		key := text[i : i+eq]
		if !validMetricName(key) {
			return 0, nil, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return 0, nil, fmt.Errorf("label %q value not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return 0, nil, fmt.Errorf("unterminated label value for %q", key)
			}
			c := text[i]
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, nil, fmt.Errorf("dangling escape in label %q", key)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape %q in label %q", text[i:i+2], key)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
	}
}

// validateFamily checks per-family invariants, most importantly the
// histogram series discipline.
func validateFamily(f *PromFamily) error {
	if f.Type == "" {
		return fmt.Errorf("family %q has HELP but no TYPE", f.Name)
	}
	if f.Type != "histogram" {
		return nil
	}
	// Group bucket samples per series (labels minus le).
	type hseries struct {
		buckets []PromSample
		sum     *PromSample
		count   *PromSample
	}
	groups := map[string]*hseries{}
	var order []string
	key := func(l Labels) string {
		cp := make(Labels, len(l))
		for k, v := range l {
			if k != "le" {
				cp[k] = v
			}
		}
		return cp.render()
	}
	get := func(k string) *hseries {
		if g := groups[k]; g != nil {
			return g
		}
		g := &hseries{}
		groups[k] = g
		order = append(order, k)
		return g
	}
	for i := range f.Samples {
		s := f.Samples[i]
		g := get(key(s.Labels))
		switch s.Name {
		case f.Name + "_bucket":
			g.buckets = append(g.buckets, s)
		case f.Name + "_sum":
			g.sum = &f.Samples[i]
		case f.Name + "_count":
			g.count = &f.Samples[i]
		default:
			return fmt.Errorf("histogram %q has stray sample %q", f.Name, s.Name)
		}
	}
	for _, k := range order {
		g := groups[k]
		if len(g.buckets) == 0 || g.sum == nil || g.count == nil {
			return fmt.Errorf("histogram %q series %s missing _bucket/_sum/_count", f.Name, k)
		}
		type bb struct {
			le  float64
			val float64
		}
		var bs []bb
		for _, b := range g.buckets {
			leStr, ok := b.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %q bucket without le label", f.Name)
			}
			le, err := parseLE(leStr)
			if err != nil {
				return fmt.Errorf("histogram %q: %v", f.Name, err)
			}
			bs = append(bs, bb{le, b.Value})
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].le == bs[i-1].le {
				return fmt.Errorf("histogram %q series %s: duplicate le %v", f.Name, k, bs[i].le)
			}
			if bs[i].val < bs[i-1].val {
				return fmt.Errorf("histogram %q series %s: bucket counts not cumulative at le=%v",
					f.Name, k, bs[i].le)
			}
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %q series %s: no +Inf bucket", f.Name, k)
		}
		if last.val != g.count.Value {
			return fmt.Errorf("histogram %q series %s: +Inf bucket %v != _count %v",
				f.Name, k, last.val, g.count.Value)
		}
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q: %v", s, err)
	}
	return v, nil
}
