package obs

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests served.", Labels{"code": "200"})
	c.Add(7)
	reg.CounterFunc("test_requests_total", "Requests served.", Labels{"code": "500"},
		func() int64 { return 2 })
	reg.GaugeFunc("test_queue_depth", "Queue depth.", nil, func() float64 { return 3.5 })
	h := NewHistogram([]int64{1000, 1_000_000})
	h.Observe(500)
	h.Observe(2_000_000)
	reg.Histogram("test_latency_seconds", "Latency.", Labels{"op": `a"b\c`}, h, 1e-9)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	text := buf.String()

	fams, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, text)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3:\n%s", len(fams), text)
	}
	for _, want := range []string{
		`test_requests_total{code="200"} 7`,
		`test_requests_total{code="500"} 2`,
		"test_queue_depth 3.5",
		`test_latency_seconds_bucket{le="+Inf",op="a\"b\\c"} 2`,
		`test_latency_seconds_count{op="a\"b\\c"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Exactly one HELP/TYPE pair for the two-series counter family.
	if n := strings.Count(text, "# TYPE test_requests_total"); n != 1 {
		t.Errorf("TYPE emitted %d times for shared family, want 1", n)
	}
}

// TestCounterVec pins the lazily-labeled counter family: the
// HELP/TYPE block appears even while the vector is empty, series
// materialise on first With, the exposition stays ParseProm-valid
// throughout, and With is stable (same value → same counter).
func TestCounterVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("test_requeues_total", "Requeues by reason.", "reason")

	render := func() string {
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		return buf.String()
	}
	empty := render()
	if err := ValidateProm(strings.NewReader(empty)); err != nil {
		t.Fatalf("empty vector exposition invalid: %v\n%s", err, empty)
	}
	if !strings.Contains(empty, "# TYPE test_requeues_total counter") {
		t.Fatalf("empty vector has no TYPE block:\n%s", empty)
	}

	v.With("transport").Add(3)
	v.With("backpressure").Inc()
	if v.With("transport") != v.With("transport") {
		t.Fatal("With is not stable for a repeated value")
	}
	v.With("transport").Inc()

	text := render()
	fams, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("populated vector exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`test_requeues_total{reason="transport"} 4`,
		`test_requeues_total{reason="backpressure"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE test_requeues_total"); n != 1 {
		t.Errorf("TYPE emitted %d times for the vector family, want 1", n)
	}
	var fam *PromFamily
	for i := range fams {
		if fams[i].Name == "test_requeues_total" {
			fam = &fams[i]
		}
	}
	if fam == nil || len(fam.Samples) != 2 {
		t.Fatalf("parsed family = %+v, want 2 labeled samples", fam)
	}

	mustPanic(t, "invalid label key", func() {
		reg.CounterVec("test_other_total", "x", "9bad")
	})
}

func TestRegistryRejectsConflicts(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("x_total", "a counter", nil, func() int64 { return 0 })
	mustPanic(t, "re-register as gauge", func() {
		reg.GaugeFunc("x_total", "a counter", nil, func() float64 { return 0 })
	})
	mustPanic(t, "invalid name", func() {
		reg.CounterFunc("9bad", "nope", nil, func() int64 { return 0 })
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"duplicate HELP": "# HELP a one\n# HELP a two\n# TYPE a counter\na 1\n",
		"duplicate TYPE": "# TYPE a counter\n# TYPE a counter\na 1\n",
		"no TYPE":        "a 1\n",
		"bad value":      "# TYPE a counter\na pizza\n",
		"timestamp":      "# TYPE a counter\na 1 1234567890\n",
		"bad TYPE":       "# TYPE a zebra\na 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 6\n",
		"unterminated labels": "# TYPE a counter\na{x=\"y 1\n",
		"HELP without TYPE":   "# HELP a doc\n",
	}
	for name, text := range cases {
		if err := ValidateProm(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected validation error on:\n%s", name, text)
		}
	}
}

func TestParsePromAcceptsRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeProm(&buf)
	fams, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("runtime exposition invalid: %v\n%s", err, buf.String())
	}
	want := map[string]bool{"go_goroutines": false, "go_gc_pause_seconds": false}
	for _, f := range fams {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("runtime exposition missing %s:\n%s", name, buf.String())
		}
	}
}

// TestPromExpositionFile validates an exposition scraped from a live
// lttad — CI starts the daemon, curls /metrics into a file, and runs
// this test with PROM_FILE pointing at it. Skips when unset.
func TestPromExpositionFile(t *testing.T) {
	path := os.Getenv("PROM_FILE")
	if path == "" {
		t.Skip("PROM_FILE not set (CI-only scrape validation)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := ParseProm(f)
	if err != nil {
		t.Fatalf("scraped exposition invalid: %v", err)
	}
	stages := map[string]bool{}
	for _, fam := range fams {
		if fam.Name != "ltta_stage_duration_seconds" {
			continue
		}
		for _, s := range fam.Samples {
			if st := s.Labels["stage"]; st != "" {
				stages[st] = true
			}
		}
	}
	for _, st := range []string{"fixpoint", "gitd", "stems", "casean"} {
		if !stages[st] {
			t.Errorf("scrape has no histogram for pipeline stage %q (got %v)", st, stages)
		}
	}
}
