package obs_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// TestSpanRecorderRoundTrip records a parallel sweep and checks the
// emitted trace_event JSON passes the package's own validator: per
// lane, timestamps monotone and every B closed by a matching E — the
// property Perfetto needs to render nested check/stage spans.
func TestSpanRecorderRoundTrip(t *testing.T) {
	c := gen.Industrial(3, 16, 10)
	v := core.NewVerifier(c, core.Default())
	rec := obs.NewSpanRecorder(c)
	cr := v.RunAll(context.Background(), core.Request{
		Delta: v.Topological().Add(1), Workers: 4, Tracer: rec,
	})

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("recorded trace does not validate: %v", err)
	}
	if n != rec.Len() {
		t.Fatalf("validator saw %d events, recorder holds %d", n, rec.Len())
	}
	// Every check contributes a B/E pair plus at least the fixpoint
	// stage's B/E pair.
	if min := 4 * len(cr.PerOutput); n < min {
		t.Fatalf("only %d events for %d checks, want >= %d", n, len(cr.PerOutput), min)
	}
	text := buf.String()
	for _, want := range []string{`"displayTimeUnit":"ms"`, `"ph":"M"`, "worker lane 1", `"name":"fixpoint"`} {
		if !strings.Contains(text, want) {
			t.Errorf("trace JSON missing %q", want)
		}
	}
}

// TestSpanRecorderLaneRecycling runs a serial sweep — at most one
// check in flight — and expects the recorder to reuse a single lane
// rather than opening one per check.
func TestSpanRecorderLaneRecycling(t *testing.T) {
	c := gen.CarrySkipAdder(8, 4, 10)
	v := core.NewVerifier(c, core.Default())
	rec := obs.NewSpanRecorder(c)
	v.RunAll(context.Background(), core.Request{
		Delta: v.Topological().Add(1), Workers: 1, Tracer: rec,
	})
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "worker lane 1") {
		t.Fatal("no lane metadata recorded")
	}
	if strings.Contains(text, "worker lane 2") {
		t.Fatal("serial sweep opened a second lane; recycling is broken")
	}
	if _, err := obs.ValidateTrace(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"ts regression": `{"traceEvents":[
			{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
			{"name":"a","ph":"E","ts":3,"pid":1,"tid":1}]}`,
		"mismatched close": `{"traceEvents":[
			{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}`,
		"close on empty lane": `{"traceEvents":[
			{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"unclosed span": `{"traceEvents":[
			{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"unknown phase": `{"traceEvents":[
			{"name":"a","ph":"Q","ts":1,"pid":1,"tid":1}]}`,
		"negative X duration": `{"traceEvents":[
			{"name":"a","ph":"X","ts":1,"dur":-2,"pid":1,"tid":1}]}`,
		"not JSON": `]`,
	}
	for name, text := range cases {
		if _, err := obs.ValidateTrace(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected validation error on %s", name, text)
		}
	}
	// Lanes are independent: interleaved timestamps across lanes are
	// fine as long as each lane is monotone.
	ok := `{"traceEvents":[
		{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
		{"name":"b","ph":"B","ts":1,"pid":1,"tid":2},
		{"name":"b","ph":"E","ts":2,"pid":1,"tid":2},
		{"name":"a","ph":"E","ts":9,"pid":1,"tid":1}]}`
	if n, err := obs.ValidateTrace(strings.NewReader(ok)); err != nil || n != 4 {
		t.Fatalf("cross-lane interleaving should validate, got n=%d err=%v", n, err)
	}
}
