package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with atomic counters: Observe
// is a bounded binary search over the (immutable) bucket bounds plus
// two atomic adds, so it is safe — and cheap — to share one histogram
// across every worker of a parallel sweep. Buckets are cumulative-
// upper-bound style (Prometheus "le" semantics): bucket i counts
// observations v <= bounds[i], and one implicit overflow bucket
// counts everything above the last bound.
type Histogram struct {
	bounds    []int64 // ascending upper bounds; immutable after New
	counts    []atomic.Uint64
	sum       atomic.Int64
	total     atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // one slot per bucket, overflow included
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is not copied and must not be mutated.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %d <= %d",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// ExpBuckets returns log-spaced upper bounds from lo to at least hi
// with perDecade buckets per factor of ten. Bounds are deduplicated
// after rounding, so small lo values stay valid.
func ExpBuckets(lo, hi int64, perDecade int) []int64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("obs: ExpBuckets needs 0 < lo < hi and perDecade > 0")
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []int64
	v := float64(lo)
	for {
		b := int64(math.Round(v))
		if len(out) == 0 || b > out[len(out)-1] {
			out = append(out, b)
		}
		if b >= hi {
			return out
		}
		v *= ratio
	}
}

// bucketFor returns the index of the bucket counting v: the first
// bound >= v, or the overflow bucket len(bounds).
func (h *Histogram) bucketFor(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	b := h.bucketFor(v)
	h.counts[b].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveDuration records a duration in nanoseconds, clamping
// negatives to zero (a monotonic-clock artefact, not a real value).
func (h *Histogram) ObserveDuration(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Observe(ns)
}

// Bounds returns the histogram's upper bounds (shared, do not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Exemplar links one observed value to the trace that produced it, so
// a latency bucket (say, the p99 one) resolves to a retrievable trace
// id instead of an anonymous count.
type Exemplar struct {
	// Value is the observed value in the histogram's native unit.
	Value int64 `json:"value"`
	// TraceID is the distributed trace id of the producing check.
	TraceID string `json:"traceId"`
}

// SetExemplar stores v's trace id as the exemplar of the bucket that
// counts v, replacing any previous exemplar there (last write wins).
// It does NOT count the value — callers Observe separately — so the
// cost is one atomic pointer store and exemplars never skew counts.
// The in-repo Prometheus exposition deliberately excludes exemplars
// (ParseProm rejects the OpenMetrics syntax); they are served through
// the /debug/checks JSON instead.
func (h *Histogram) SetExemplar(v int64, traceID string) {
	if traceID == "" {
		return
	}
	h.exemplars[h.bucketFor(v)].Store(&Exemplar{Value: v, TraceID: traceID})
}

// BucketExemplar is one bucket's exemplar in a snapshot: LE renders
// the bucket's upper bound ("+Inf" for the overflow bucket).
type BucketExemplar struct {
	LE      string `json:"le"`
	Value   int64  `json:"value"`
	TraceID string `json:"traceId"`
}

// Exemplars snapshots the buckets that currently hold an exemplar, in
// bucket order.
func (h *Histogram) Exemplars() []BucketExemplar {
	var out []BucketExemplar
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%d", h.bounds[i])
		}
		out = append(out, BucketExemplar{LE: le, Value: e.Value, TraceID: e.TraceID})
	}
	return out
}

// Snapshot captures the histogram's current state. Under concurrent
// observation the per-bucket reads are individually atomic but not
// mutually consistent; Count is recomputed from the captured buckets
// so Count == sum(Counts) always holds within one snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram's state,
// mergeable with snapshots taken over the same bounds.
type HistSnapshot struct {
	// Bounds are the upper bounds; Counts has one extra entry, the
	// overflow bucket.
	Bounds []int64
	Counts []uint64
	Count  uint64
	Sum    int64
}

// Merge adds o into s. The two snapshots must share bucket bounds.
func (s *HistSnapshot) Merge(o HistSnapshot) error {
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d: %d vs %d",
				i, s.Bounds[i], o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the rank. Values in the
// overflow bucket saturate to the last bound. Returns 0 on an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next < rank || c == 0 {
			cum = next
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow: saturate
		}
		lower := int64(0)
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		frac := (rank - cum) / float64(c)
		return lower + int64(frac*float64(s.Bounds[i]-lower))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the snapshot's arithmetic mean, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
