package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger behind lttad's -log-format /
// -log-level flags: format is "text" or "json", level one of debug,
// info, warn, error. The json format is one object per line —
// machine-shippable, the production default; text is the human dev
// default.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
}

// NopLogger returns a logger that discards everything — the default
// for library embedders (tests, the in-process client) that did not
// configure logging.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
