package obs_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// TestTracerSharedAcrossWorkers drives ONE obs.Tracer through a
// parallel RunAll (run with -race in CI): the merged histogram counts
// must equal the serial sweep's check count — every check observed
// exactly once, no event lost or double-counted under concurrency.
func TestTracerSharedAcrossWorkers(t *testing.T) {
	c := gen.Industrial(7, 24, 10)
	// Fresh verifier per sweep off one Prepared: the test compares
	// exact propagation sums, which the second sweep's warm-start memos
	// would otherwise legitimately shrink.
	prep := core.Prepare(c)
	v := prep.NewVerifier(core.Default())
	// δ = topological + 1: every output refutes, so neither sweep
	// early-exits and serial/parallel run identical check sets.
	delta := v.Topological().Add(1)

	serial := v.RunAll(context.Background(), core.Request{Delta: delta, Workers: 1})
	wantChecks := int64(len(serial.PerOutput))
	if wantChecks < 2 {
		t.Fatalf("industrial circuit has %d outputs; want a real sweep", wantChecks)
	}

	tr := obs.NewTracer()
	par := prep.NewVerifier(core.Default()).RunAll(context.Background(), core.Request{Delta: delta, Workers: 4, Tracer: tr})
	if par.Final != serial.Final {
		t.Fatalf("parallel verdict %s != serial %s", par.Final, serial.Final)
	}

	if got := tr.Checks(); got != wantChecks {
		t.Fatalf("tracer observed %d checks, serial sweep ran %d", got, wantChecks)
	}
	s := tr.Snapshot()
	if got := s.TotalChecks(); got != wantChecks {
		t.Fatalf("snapshot counts %d checks, want %d", got, wantChecks)
	}
	for _, h := range []obs.HistSnapshot{s.CheckSeconds, s.Propagations, s.QueueHighWater} {
		if h.Count != uint64(wantChecks) {
			t.Fatalf("histogram observed %d checks, want %d", h.Count, wantChecks)
		}
	}
	// Stage histogram totals must cover exactly the stages the serial
	// sweep ran: every check runs the plain fixpoint once.
	if got := s.StageSeconds[core.StagePlain].Count; got != uint64(wantChecks) {
		t.Fatalf("fixpoint stage observed %d runs, want %d", got, wantChecks)
	}
	// Aggregate work must match the serial sweep's exact counters.
	var wantProps int64
	for _, rep := range serial.PerOutput {
		wantProps += rep.Propagations
	}
	if s.Propagations.Sum != wantProps {
		t.Fatalf("propagation histogram sum %d, serial sweep did %d", s.Propagations.Sum, wantProps)
	}
}

// TestTracerShardMerge aggregates two shard tracers — the
// one-tracer-per-worker deployment style — and checks the merged
// snapshot equals a single shared tracer's view.
func TestTracerShardMerge(t *testing.T) {
	c := gen.CarrySkipAdder(16, 4, 10)
	v := core.NewVerifier(c, core.Default())
	delta := v.Topological().Add(1)

	shard1, shard2 := obs.NewTracer(), obs.NewTracer()
	v.RunAll(context.Background(), core.Request{Delta: delta, Workers: 2, Tracer: shard1})
	v.RunAll(context.Background(), core.Request{Delta: delta, Workers: 2, Tracer: shard2})

	merged := shard1.Snapshot()
	if err := merged.Merge(shard2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if want := shard1.Checks() + shard2.Checks(); merged.TotalChecks() != want {
		t.Fatalf("merged %d checks, want %d", merged.TotalChecks(), want)
	}
	if merged.CheckSeconds.Count != uint64(merged.TotalChecks()) {
		t.Fatalf("latency histogram %d observations for %d checks",
			merged.CheckSeconds.Count, merged.TotalChecks())
	}
}

// TestTracerExposition registers a tracer and checks the rendered
// exposition validates with one histogram per pipeline stage.
func TestTracerExposition(t *testing.T) {
	c := gen.C17(10)
	v := core.NewVerifier(c, core.Default())
	tr := obs.NewTracer()
	v.RunAll(context.Background(), core.Request{Delta: v.Topological().Add(1), Tracer: tr})

	reg := obs.NewRegistry()
	tr.MustRegister(reg, "ltta")
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	fams, err := obs.ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("tracer exposition invalid: %v\n%s", err, buf.String())
	}
	var stageFam *obs.PromFamily
	for i := range fams {
		if fams[i].Name == "ltta_stage_duration_seconds" {
			stageFam = &fams[i]
		}
	}
	if stageFam == nil || stageFam.Type != "histogram" {
		t.Fatalf("no ltta_stage_duration_seconds histogram family:\n%s", buf.String())
	}
	stages := map[string]bool{}
	for _, s := range stageFam.Samples {
		stages[s.Labels["stage"]] = true
	}
	for st := core.Stage(0); st < core.NumStages; st++ {
		if !stages[st.String()] {
			t.Errorf("stage %s has no histogram series", st)
		}
	}
	if !strings.Contains(buf.String(), `ltta_checks_total{verdict="no_violation"}`) {
		t.Errorf("exposition missing per-verdict check counters:\n%s", buf.String())
	}
}

// TestTracerSummary smoke-tests the human-readable percentile dump.
func TestTracerSummary(t *testing.T) {
	c := gen.C17(10)
	v := core.NewVerifier(c, core.Default())
	tr := obs.NewTracer()
	v.RunAll(context.Background(), core.Request{Delta: v.Topological().Add(1), Tracer: tr})
	var buf bytes.Buffer
	tr.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"stage fixpoint", "check latency", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
