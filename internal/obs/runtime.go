package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// runtimeSamples are the runtime/metrics series exported on every
// scrape: scheduler pressure, heap footprint, and GC activity — the
// three signals that tell a capacity planner whether lttad is CPU-,
// memory-, or GC-bound. The list is fixed and ordered so the
// exposition is deterministic.
var runtimeSamples = []struct {
	src  string // runtime/metrics name
	name string // exposition name
	typ  string // counter or gauge (histograms handled separately)
	help string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "gauge",
		"Number of live goroutines."},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "gauge",
		"Bytes occupied by live and not-yet-swept heap objects."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "gauge",
		"All memory mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "counter",
		"Completed GC cycles since program start."},
}

const gcPauseSrc = "/gc/pauses:seconds"

// WriteRuntimeProm samples the runtime/metrics series above plus the
// GC stop-the-world pause histogram and renders them in exposition
// format. Meant to be appended to a Registry.WritePrometheus scrape.
func WriteRuntimeProm(w io.Writer) {
	samples := make([]metrics.Sample, 0, len(runtimeSamples)+1)
	for _, rs := range runtimeSamples {
		samples = append(samples, metrics.Sample{Name: rs.src})
	}
	samples = append(samples, metrics.Sample{Name: gcPauseSrc})
	metrics.Read(samples)

	for i, rs := range runtimeSamples {
		v, ok := sampleValue(samples[i])
		if !ok {
			continue // metric unknown to this runtime: skip, don't lie
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			rs.name, rs.help, rs.name, rs.typ, rs.name, formatFloat(v))
	}
	if h := samples[len(samples)-1]; h.Value.Kind() == metrics.KindFloat64Histogram {
		writeRuntimeHistogram(w, "go_gc_pause_seconds",
			"Distribution of GC stop-the-world pause latencies (runtime/metrics "+gcPauseSrc+").",
			h.Value.Float64Histogram())
	}
}

func sampleValue(s metrics.Sample) (float64, bool) {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64()), true
	case metrics.KindFloat64:
		return s.Value.Float64(), true
	}
	return 0, false
}

// writeRuntimeHistogram renders a runtime/metrics Float64Histogram as
// a Prometheus histogram. Buckets holds n+1 boundaries for n counts;
// each count i covers [Buckets[i], Buckets[i+1]). The _sum is
// approximated from bucket midpoints (the runtime does not track an
// exact sum); infinite edge boundaries borrow the finite neighbour.
func writeRuntimeHistogram(w io.Writer, name, help string, h *metrics.Float64Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	var sum float64
	for i, c := range h.Counts {
		cum += c
		le := h.Buckets[i+1]
		lo := h.Buckets[i]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		mid := lo
		if !math.IsInf(le, 1) {
			mid = (lo + le) / 2
		}
		sum += float64(c) * mid
		leStr := "+Inf"
		if !math.IsInf(le, 1) {
			leStr = formatFloat(le)
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, leStr, cum)
	}
	if len(h.Counts) == 0 || !math.IsInf(h.Buckets[len(h.Buckets)-1], 1) {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	}
	fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(sum), name, cum)
}
