package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// ClusterTrace assembles one cluster-wide batch timeline from span
// endpoints reported by different processes: the coordinator's own
// routing/dispatch/merge spans plus the per-check span summaries its
// workers return in-band. Because every contributor reports wall-clock
// (Unix microsecond) endpoints rather than live B/E callbacks, spans
// are recorded as Chrome trace_event "X" complete events, which
// tolerate out-of-order arrival — a requeued attempt's span reaches
// the coordinator long after later primaries finished.
//
// Spans are grouped (rendered as processes): one group for the
// coordinator, one per worker. Within a group, lanes (threads) are
// allocated greedily — a span reuses the lowest lane whose previous
// span ended at or before the new span's start — so overlap between
// concurrent attempts stays visible while the timeline remains
// compact. WriteTo sorts events by timestamp, giving the per-lane
// monotonic order ValidateTrace checks.
type ClusterTrace struct {
	origin int64 // Unix µs all timestamps are relative to

	mu     sync.Mutex
	events []TraceEvent           // guarded by mu
	groups map[string]*traceGroup // guarded by mu
	pids   int                    // guarded by mu: process ids handed out
}

type traceGroup struct {
	pid   int
	lanes []int64 // per lane, end ts (µs since origin) of its last span
}

// NewClusterTrace starts a timeline anchored at origin (typically the
// batch admission time); spans wholly before origin are clamped to it.
func NewClusterTrace(origin time.Time) *ClusterTrace {
	return &ClusterTrace{origin: origin.UnixMicro(), groups: map[string]*traceGroup{}}
}

// Span records one completed span in the named group. startUnixUs is
// the span's wall-clock start (Unix µs), durUs its duration; args are
// optional viewer metadata. Safe for concurrent use.
func (ct *ClusterTrace) Span(group, name string, startUnixUs, durUs int64, args map[string]any) {
	if durUs < 0 {
		durUs = 0
	}
	ts := startUnixUs - ct.origin
	if ts < 0 {
		ts = 0 // clock skew between tiers; clamp rather than break validation
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	g := ct.groups[group]
	if g == nil {
		ct.pids++
		g = &traceGroup{pid: ct.pids}
		ct.groups[group] = g
		ct.events = append(ct.events, TraceEvent{
			Name: "process_name", Ph: "M", Pid: g.pid, Tid: 0,
			Args: map[string]any{"name": group},
		})
	}
	lane := -1
	for i, end := range g.lanes {
		if end <= ts {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(g.lanes)
		g.lanes = append(g.lanes, 0)
		ct.events = append(ct.events, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: g.pid, Tid: lane + 1,
			Args: map[string]any{"name": fmt.Sprintf("lane %d", lane+1)},
		})
	}
	g.lanes[lane] = ts + durUs
	ct.events = append(ct.events, TraceEvent{
		Name: name, Ph: "X", Ts: float64(ts), Dur: float64(durUs),
		Pid: g.pid, Tid: lane + 1, Args: args,
	})
}

// Len reports the number of recorded events.
func (ct *ClusterTrace) Len() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.events)
}

// WriteTrace renders the timeline as trace_event JSON, loadable in
// Perfetto. Events are sorted by timestamp (metadata first) so every
// lane is monotonic regardless of arrival order.
func (ct *ClusterTrace) WriteTrace(w io.Writer) error {
	ct.mu.Lock()
	events := make([]TraceEvent, len(ct.events))
	copy(events, ct.events)
	ct.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return events[i].Ts < events[j].Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
