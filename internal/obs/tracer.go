package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/waveform"
)

// Tracer is the histogram-backed core.Tracer: it turns the pipeline's
// callbacks into latency and work distributions instead of the flat
// sums of core.StatsTracer. Every callback is either a no-op, an
// atomic add, or one histogram Observe, so a single Tracer shared
// across all workers of a parallel RunAll never serialises them; the
// distributions are built entirely from the per-callback arguments
// and the finished Report, which need no cross-callback state.
type Tracer struct {
	// StageSeconds holds per-stage wall time in nanoseconds, indexed
	// by core.Stage (observed at StageExit).
	StageSeconds [core.NumStages]*Histogram
	// CheckSeconds is end-to-end check latency in nanoseconds.
	CheckSeconds *Histogram
	// Propagations, Backtracks, and QueueHighWater are per-check work
	// distributions (observed at CheckDone).
	Propagations   *Histogram
	Backtracks     *Histogram
	QueueHighWater *Histogram

	checks    [resultKinds]atomic.Int64
	decisions atomic.Int64
	stemSpl   atomic.Int64
	domRounds atomic.Int64
	narrow    atomic.Int64
}

// resultKinds covers core.Result's values (P, N, V, A, -, C).
const resultKinds = 6

var (
	// durationBuckets span 1µs..100s at five buckets per decade: the
	// fastest c17 cone check sits near the bottom, a c6288 case
	// analysis near the top.
	durationBuckets = ExpBuckets(1_000, 100_000_000_000, 5)
	// workBuckets span 1..10⁸ propagations/backtracks per check.
	workBuckets = ExpBuckets(1, 100_000_000, 5)
	// queueBuckets span the fixpoint worklist high-water mark.
	queueBuckets = ExpBuckets(1, 1_000_000, 5)
)

var _ core.Tracer = (*Tracer)(nil)

// NewTracer returns a Tracer with the standard bucket layouts.
func NewTracer() *Tracer {
	t := &Tracer{
		CheckSeconds:   NewHistogram(durationBuckets),
		Propagations:   NewHistogram(workBuckets),
		Backtracks:     NewHistogram(workBuckets),
		QueueHighWater: NewHistogram(queueBuckets),
	}
	for st := range t.StageSeconds {
		t.StageSeconds[st] = NewHistogram(durationBuckets)
	}
	return t
}

func (t *Tracer) CheckStart(circuit.NetID, waveform.Time) {}
func (t *Tracer) StageEnter(core.Stage)                   {}

func (t *Tracer) StageExit(stage core.Stage, _ core.Result, elapsed time.Duration) {
	t.StageSeconds[stage].ObserveDuration(elapsed.Nanoseconds())
}

func (t *Tracer) DominatorRound(_, _ int, narrowed bool) {
	if narrowed {
		t.domRounds.Add(1)
	}
}

func (t *Tracer) Decision(int, circuit.NetID, int) { t.decisions.Add(1) }
func (t *Tracer) Backtrack(int)                    {}
func (t *Tracer) StemSplit(int, circuit.NetID)     {}

func (t *Tracer) CheckDone(rep *core.Report) {
	if f := int(rep.Final); f >= 0 && f < resultKinds {
		t.checks[f].Add(1)
	}
	t.CheckSeconds.ObserveDuration(rep.Elapsed.Nanoseconds())
	t.Propagations.Observe(rep.Propagations)
	if rep.Backtracks >= 0 {
		t.Backtracks.Observe(int64(rep.Backtracks))
	}
	t.QueueHighWater.Observe(int64(rep.Stats.QueueHighWater))
	t.stemSpl.Add(int64(rep.Stats.StemSplits))
	t.narrow.Add(rep.Stats.Narrowings)
}

// Checks returns the number of finished checks observed so far.
func (t *Tracer) Checks() int64 {
	var n int64
	for i := range t.checks {
		n += t.checks[i].Load()
	}
	return n
}

// Snapshot captures every distribution and counter, mergeable with
// snapshots of other Tracers (shard-per-worker aggregation).
func (t *Tracer) Snapshot() TracerSnapshot {
	s := TracerSnapshot{
		CheckSeconds:   t.CheckSeconds.Snapshot(),
		Propagations:   t.Propagations.Snapshot(),
		Backtracks:     t.Backtracks.Snapshot(),
		QueueHighWater: t.QueueHighWater.Snapshot(),
		Decisions:      t.decisions.Load(),
		StemSplits:     t.stemSpl.Load(),
		DominatorRds:   t.domRounds.Load(),
		Narrowings:     t.narrow.Load(),
	}
	for st := range t.StageSeconds {
		s.StageSeconds[st] = t.StageSeconds[st].Snapshot()
	}
	for i := range t.checks {
		s.Checks[i] = t.checks[i].Load()
	}
	return s
}

// TracerSnapshot is a mergeable point-in-time copy of a Tracer.
type TracerSnapshot struct {
	StageSeconds   [core.NumStages]HistSnapshot
	CheckSeconds   HistSnapshot
	Propagations   HistSnapshot
	Backtracks     HistSnapshot
	QueueHighWater HistSnapshot

	Checks       [resultKinds]int64
	Decisions    int64
	StemSplits   int64
	DominatorRds int64
	Narrowings   int64
}

// TotalChecks sums the per-verdict check counters.
func (s *TracerSnapshot) TotalChecks() int64 {
	var n int64
	for _, c := range s.Checks {
		n += c
	}
	return n
}

// Merge adds o into s; the histograms must share bucket layouts
// (always true for NewTracer-built tracers).
func (s *TracerSnapshot) Merge(o TracerSnapshot) error {
	for st := range s.StageSeconds {
		if err := s.StageSeconds[st].Merge(o.StageSeconds[st]); err != nil {
			return err
		}
	}
	if err := s.CheckSeconds.Merge(o.CheckSeconds); err != nil {
		return err
	}
	if err := s.Propagations.Merge(o.Propagations); err != nil {
		return err
	}
	if err := s.Backtracks.Merge(o.Backtracks); err != nil {
		return err
	}
	if err := s.QueueHighWater.Merge(o.QueueHighWater); err != nil {
		return err
	}
	for i := range s.Checks {
		s.Checks[i] += o.Checks[i]
	}
	s.Decisions += o.Decisions
	s.StemSplits += o.StemSplits
	s.DominatorRds += o.DominatorRds
	s.Narrowings += o.Narrowings
	return nil
}

// verdictLabels maps core.Result values onto stable label strings
// (the paper's letters are cryptic in a metrics browser).
var verdictLabels = [resultKinds]string{
	core.PossibleViolation: "possible",
	core.NoViolation:       "no_violation",
	core.ViolationFound:    "violation",
	core.Abandoned:         "abandoned",
	core.StageSkipped:      "skipped",
	core.Cancelled:         "cancelled",
}

// MustRegister wires the tracer's distributions and counters into a
// Registry under the given namespace (conventionally "ltta"):
// per-verdict check counters, one latency histogram per pipeline
// stage (labelled by stage name), end-to-end check latency, and the
// per-check work distributions.
func (t *Tracer) MustRegister(reg *Registry, ns string) {
	for i := 0; i < resultKinds; i++ {
		if core.Result(i) == core.StageSkipped {
			continue // never a final verdict
		}
		i := i
		reg.CounterFunc(ns+"_checks_total", "Finished timing checks by final verdict.",
			Labels{"verdict": verdictLabels[i]}, t.checks[i].Load)
	}
	for st := core.Stage(0); st < core.NumStages; st++ {
		reg.Histogram(ns+"_stage_duration_seconds",
			"Wall-clock time per pipeline stage run (paper Table-1 columns).",
			Labels{"stage": st.String()}, t.StageSeconds[st], 1e-9)
	}
	reg.Histogram(ns+"_check_duration_seconds",
		"End-to-end wall-clock latency per timing check.", nil, t.CheckSeconds, 1e-9)
	reg.Histogram(ns+"_check_propagations",
		"Gate-constraint applications per check (narrowing cost).", nil, t.Propagations, 1)
	reg.Histogram(ns+"_check_backtracks",
		"Case-analysis backtracks per check that reached case analysis.", nil, t.Backtracks, 1)
	reg.Histogram(ns+"_check_queue_highwater",
		"Fixpoint worklist peak length per check.", nil, t.QueueHighWater, 1)
	reg.CounterFunc(ns+"_decisions_total", "Case-analysis decisions.", nil, t.decisions.Load)
	reg.CounterFunc(ns+"_stem_splits_total", "Stems correlated by stem correlation.", nil,
		func() int64 { return t.stemSpl.Load() })
	reg.CounterFunc(ns+"_dominator_rounds_total", "Evaluate-loop rounds that narrowed a dominator.", nil,
		func() int64 { return t.domRounds.Load() })
	reg.CounterFunc(ns+"_narrowings_total", "Domain narrowings across all stages.", nil,
		func() int64 { return t.narrow.Load() })
}

// WriteSummary renders a human-readable percentile summary of the
// tracer's distributions — the `table1 -hist` / `ltta` companion to
// core.StatsTracer's flat sums.
func (t *Tracer) WriteSummary(w io.Writer) {
	s := t.Snapshot()
	fmt.Fprintf(w, "latency/work distributions over %d checks:\n", s.TotalChecks())
	row := func(name string, h HistSnapshot, dur bool) {
		if h.Count == 0 {
			return
		}
		if dur {
			fmt.Fprintf(w, "  %-22s n=%-8d p50 %-10s p90 %-10s p99 %-10s max<=%s\n",
				name, h.Count,
				time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.90)),
				time.Duration(h.Quantile(0.99)), time.Duration(h.Quantile(1)))
			return
		}
		fmt.Fprintf(w, "  %-22s n=%-8d p50 %-10d p90 %-10d p99 %-10d max<=%d\n",
			name, h.Count, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(1))
	}
	for st := core.Stage(0); st < core.NumStages; st++ {
		row("stage "+st.String(), s.StageSeconds[st], true)
	}
	row("check latency", s.CheckSeconds, true)
	row("propagations/check", s.Propagations, false)
	row("backtracks/check", s.Backtracks, false)
	row("queue high-water", s.QueueHighWater, false)
}
