package api

import (
	"strings"
	"testing"
)

func TestTraceIDMinting(t *testing.T) {
	id, span := NewTraceID(), NewSpanID()
	if !ValidTraceID(id) {
		t.Fatalf("NewTraceID() = %q, not 32 lowercase hex digits", id)
	}
	if !ValidSpanID(span) {
		t.Fatalf("NewSpanID() = %q, not 16 lowercase hex digits", span)
	}
	if other := NewTraceID(); other == id {
		t.Fatalf("two minted trace ids collided: %q", id)
	}
}

func TestValidTraceID(t *testing.T) {
	for s, want := range map[string]bool{
		strings.Repeat("a", 32):            true,
		"0123456789abcdef0123456789abcdef": true,
		"":                                 false,
		strings.Repeat("a", 31):            false, // short
		strings.Repeat("a", 33):            false, // long
		strings.Repeat("A", 32):            false, // uppercase
		strings.Repeat("g", 32):            false, // non-hex
		strings.Repeat("a", 30) + "-a":     false,
	} {
		if got := ValidTraceID(s); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", s, got, want)
		}
	}
	if ValidSpanID(strings.Repeat("a", 32)) || !ValidSpanID(strings.Repeat("a", 16)) {
		t.Error("ValidSpanID accepts 32 digits or rejects 16")
	}
}

// TestEnsureTrace pins the admitting-tier contract: a missing or
// malformed trace id is replaced with a freshly minted one, a valid
// context passes through intact, and the result is always a private
// copy of the caller's.
func TestEnsureTrace(t *testing.T) {
	if tc := EnsureTrace(nil); !ValidTraceID(tc.TraceID) || tc.ParentSpan != "" || tc.Tenant != "" {
		t.Fatalf("EnsureTrace(nil) = %+v, want a fresh bare context", tc)
	}

	in := &TraceContext{TraceID: NewTraceID(), ParentSpan: NewSpanID(), Tenant: "acme"}
	out := EnsureTrace(in)
	if *out != *in {
		t.Fatalf("valid context not preserved: got %+v, want %+v", out, in)
	}
	if out == in {
		t.Fatal("EnsureTrace returned the caller's pointer, not a copy")
	}
	out.TraceID = "mutated"
	if in.TraceID == "mutated" {
		t.Fatal("mutating the returned context reached the caller's")
	}

	// A malformed trace id is replaced; tenant survives the re-mint.
	remint := EnsureTrace(&TraceContext{TraceID: "not-hex", Tenant: "acme"})
	if !ValidTraceID(remint.TraceID) || remint.TraceID == "not-hex" {
		t.Fatalf("malformed trace id not re-minted: %+v", remint)
	}
	if remint.Tenant != "acme" {
		t.Fatalf("tenant lost across re-mint: %+v", remint)
	}

	// A malformed parent span is dropped rather than propagated.
	if tc := EnsureTrace(&TraceContext{TraceID: NewTraceID(), ParentSpan: "xyz"}); tc.ParentSpan != "" {
		t.Fatalf("malformed parent span survived: %+v", tc)
	}
}
