// Package api is the versioned wire vocabulary of the lttad service:
// every request and response body exchanged between internal/server
// and internal/client is declared here, once, and consumed by both
// sides. The package depends only on the standard library so the
// client never has to import the server (or the engine) to speak the
// protocol.
//
// Versioning: request and response envelopes carry an explicit "v"
// field. Version 1 is the current (and first explicit) protocol
// revision; a missing or zero "v" means 1, so bodies from pre-split
// clients keep decoding. Decoding is unknown-field tolerant in both
// directions — a v1 peer must ignore fields added by later minor
// revisions rather than reject them — and AcceptsVersion is the one
// place that decides whether an incoming major version is
// understood.
package api

import (
	"fmt"
	"strings"
)

// Version is the protocol revision this package speaks. Envelopes are
// stamped with it on encode; on decode a zero V means "pre-versioning
// body, treat as 1".
const Version = 1

// AcceptsVersion reports whether an envelope's declared version is one
// this package understands. Zero is accepted as the implicit v1.
func AcceptsVersion(v int) bool { return v == 0 || v == Version }

// Hash is the content address of a registered circuit:
// "sha256:" + 64 hex digits over the canonicalized upload (see
// internal/registry for the exact canonical form). It is stable across
// processes and releases for identical content, so clients may cache
// it durably.
type Hash string

// hashPrefix is the only hash scheme currently minted.
const hashPrefix = "sha256:"

// Valid reports whether h is a well-formed sha256 content address.
func (h Hash) Valid() bool {
	s := string(h)
	if !strings.HasPrefix(s, hashPrefix) || len(s) != len(hashPrefix)+64 {
		return false
	}
	for _, c := range s[len(hashPrefix):] {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// NewHash mints a Hash from a raw sha256 digest.
func NewHash(sum [32]byte) Hash {
	return Hash(fmt.Sprintf("%s%x", hashPrefix, sum))
}

// CheckSpec names one timing check of an explicit batch.
type CheckSpec struct {
	// Sink is the net to check, by name.
	Sink string `json:"sink"`
	// Delta is the timing-check threshold δ.
	Delta int64 `json:"delta"`
	// VerifyOnly runs only the verify() stage (fixpoint + global
	// implications) and reports N or P without case analysis.
	VerifyOnly bool `json:"verifyOnly,omitempty"`
}

// SweepSpec describes a δ-sweep: every δ in Deltas is checked against
// every primary output. With Table1 set, Deltas is ignored — the
// server first computes the exact circuit floating delay D and then
// evaluates the paper's row pair δ = D+1 and δ = D, reproducing the
// harness protocol (including the first-witness-wins early exit)
// server-side.
type SweepSpec struct {
	Deltas []int64 `json:"deltas,omitempty"`
	Table1 bool    `json:"table1,omitempty"`
}

// OptionsSpec overrides the engine options, starting from the paper's
// full configuration (core.Default()).
type OptionsSpec struct {
	NoDominators bool `json:"noDominators,omitempty"`
	NoLearning   bool `json:"noLearning,omitempty"`
	NoStems      bool `json:"noStems,omitempty"`
	NoCone       bool `json:"noCone,omitempty"`
	// WarmStart opts a batch into warm-started δ-sweeps. Unlike the
	// library, the server defaults warm-start OFF: its worker pool can
	// run same-sink checks of one batch concurrently, making the work
	// counters in responses depend on scheduling. Verdicts are
	// warm-start-invariant, so opting in only perturbs the statistics.
	WarmStart bool `json:"warmStart,omitempty"`
	// MaxBacktracks bounds the case analysis (0 = the default 200000,
	// negative = unlimited).
	MaxBacktracks int `json:"maxBacktracks,omitempty"`
	// MaxStemSplits caps stems correlated per check (0 = default 64).
	MaxStemSplits int `json:"maxStemSplits,omitempty"`
}

// BudgetsSpec maps onto core.Budgets: per-check work bounds beyond the
// option defaults. Exhaustion yields the verdict A (abandoned).
type BudgetsSpec struct {
	MaxBacktracks   int   `json:"maxBacktracks,omitempty"`
	MaxStemSplits   int   `json:"maxStemSplits,omitempty"`
	MaxPropagations int64 `json:"maxPropagations,omitempty"`
}

// Request is the body of POST /v1/check (inline netlist) and of
// POST /v1/circuits/{hash}/check (hash-addressed; the netlist fields
// must then be empty — the circuit identity lives in the path).
type Request struct {
	// V is the protocol version of this envelope (0 means 1).
	V int `json:"v,omitempty"`

	// Netlist is the circuit source text. Inline submissions only; a
	// hash-addressed check names its circuit in the URL instead.
	Netlist string `json:"netlist,omitempty"`
	// Format is "bench" (default) or "verilog".
	Format string `json:"format,omitempty"`
	// Name names the circuit in responses (default: the parser's).
	Name string `json:"name,omitempty"`
	// DefaultDelay is the gate delay used when the netlist does not
	// annotate one (default 10, the paper's experiments).
	DefaultDelay int64 `json:"defaultDelay,omitempty"`

	// Exactly one of Checks and Sweep must be present.
	Checks []CheckSpec `json:"checks,omitempty"`
	Sweep  *SweepSpec  `json:"sweep,omitempty"`

	Options *OptionsSpec `json:"options,omitempty"`
	Budgets *BudgetsSpec `json:"budgets,omitempty"`

	// CheckTimeoutMs bounds each check's wall clock; an expired check
	// reports the terminal verdict C (cancelled). The server's own
	// per-check cap, when configured, wins if smaller.
	CheckTimeoutMs int64 `json:"checkTimeoutMs,omitempty"`
	// TimeoutMs bounds the whole batch the same way.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`

	// Stream requests an NDJSON response: one Event per line as results
	// become available, instead of a single Response document.
	Stream bool `json:"stream,omitempty"`

	// Shard is stamped by a coordinator on the per-worker requests it
	// fans a batch out into: which coordinator batch this shard serves,
	// which worker it was aimed at, and which dispatch attempt it is.
	// Workers log it (so a cluster-wide batch can be traced across
	// daemons) and otherwise ignore it; plain clients leave it nil.
	Shard *ShardInfo `json:"shard,omitempty"`

	// Trace is the distributed-tracing context of this submission. A
	// client may send one (joining the batch to an outer trace); when it
	// is absent or malformed the admitting tier mints a fresh trace id.
	// A coordinator re-stamps ParentSpan with a per-attempt dispatch
	// span id on the shard requests it fans out.
	Trace *TraceContext `json:"trace,omitempty"`
}

// ShardInfo identifies one coordinator→worker dispatch of a sharded
// batch. Attempt counts dispatches of the same checks (1 = the primary
// placement; higher = a requeue after a worker failure, or — with
// Hedge set — a latency hedge racing the primary).
type ShardInfo struct {
	// Coordinator is the dispatching coordinator's instance name.
	Coordinator string `json:"coordinator,omitempty"`
	// Batch is the coordinator-side batch id the shard belongs to.
	Batch int64 `json:"batch,omitempty"`
	// Worker is the worker address this shard was routed to.
	Worker string `json:"worker,omitempty"`
	// Attempt is the dispatch attempt for these checks (1 = primary).
	Attempt int `json:"attempt,omitempty"`
	// Hedge marks a straggler hedge: the primary dispatch is still
	// running and the first terminal result per check wins.
	Hedge bool `json:"hedge,omitempty"`
}

// DelayAnnotation overrides the delay of the gate driving one net,
// on top of whatever the netlist text (and any SDF document) carries.
// The annotation list is canonicalized — sorted by net, identical
// duplicates collapsed — before hashing, so annotation order never
// changes a circuit's content address.
type DelayAnnotation struct {
	// Net names the annotated gate by its output net.
	Net string `json:"net"`
	// Delay is the gate's maximum delay d_max (must be > 0).
	Delay int64 `json:"delay"`
	// DMin optionally sets the minimum delay d_min (0 keeps the
	// netlist's).
	DMin int64 `json:"dmin,omitempty"`
}

// UploadRequest is the body of PUT /v1/circuits: a netlist plus
// optional delay annotations, registered under a content hash.
type UploadRequest struct {
	// V is the protocol version of this envelope (0 means 1).
	V int `json:"v,omitempty"`

	// Netlist is the circuit source text (hashed byte-identically:
	// formatting differences yield distinct addresses).
	Netlist string `json:"netlist"`
	// Format is "bench" (default) or "verilog".
	Format string `json:"format,omitempty"`
	// Name names the circuit in responses; it is part of the content
	// address so one tenant's name never leaks into another's results.
	Name string `json:"name,omitempty"`
	// DefaultDelay is the gate delay used when the netlist does not
	// annotate one (default 10).
	DefaultDelay int64 `json:"defaultDelay,omitempty"`

	// SDF optionally back-annotates gate delays from a Standard Delay
	// Format document before Delays apply. Hashed byte-identically.
	SDF string `json:"sdf,omitempty"`
	// Delays override individual gate delays; canonicalized before
	// hashing.
	Delays []DelayAnnotation `json:"delays,omitempty"`
}

// UploadResponse is the body of a successful PUT /v1/circuits.
type UploadResponse struct {
	V int `json:"v"`
	// Hash is the circuit's content address; POST
	// /v1/circuits/{hash}/check runs batches against it.
	Hash Hash `json:"hash"`
	// Created reports whether this upload registered a new circuit
	// (false: the hash was already resident and the upload was a no-op).
	Created bool `json:"created"`
	// Circuit summarises the parsed netlist (Checks is 0 — no batch).
	Circuit CircuitInfo `json:"circuit"`
}

// CircuitInfo describes the parsed netlist, echoed first in every
// response. Checks is the number of checks the batch was admitted
// with — for streaming clients, the exact number of "check" events the
// response will carry (table1 sweeps discover their checks during the
// delay search and announce -1).
type CircuitInfo struct {
	Name    string   `json:"name"`
	Gates   int      `json:"gates"`
	Nets    int      `json:"nets"`
	PIs     int      `json:"pis"`
	POs     int      `json:"pos"`
	Levels  int      `json:"levels"`
	PINames []string `json:"piNames"`
	Checks  int      `json:"checks"`
}

// CheckResult serialises one core.Report. Verdicts use the paper's
// single-letter codes (P, N, V, A, C, -). Witness is the violating
// input vector as a bit string indexed parallel to PINames.
type CheckResult struct {
	Sink  string `json:"sink"`
	Delta int64  `json:"delta"`
	// Index is the check's position in the batch (explicit batches) or
	// the primary-output index (sweeps).
	Index int `json:"index"`

	BeforeGITD   string `json:"beforeGITD"`
	AfterGITD    string `json:"afterGITD"`
	AfterStem    string `json:"afterStem"`
	CaseAnalysis string `json:"caseAnalysis"`
	Final        string `json:"final"`
	Backtracks   int    `json:"backtracks"`

	Witness       string `json:"witness,omitempty"`
	WitnessSettle int64  `json:"witnessSettle,omitempty"`

	Dominators      int   `json:"dominators"`
	DominatorRounds int   `json:"dominatorRounds"`
	Propagations    int64 `json:"propagations"`
	Narrowings      int64 `json:"narrowings"`
	QueueHighWater  int   `json:"queueHighWater"`
	Decisions       int64 `json:"decisions"`
	StemSplits      int   `json:"stemSplits"`
	ElapsedUs       int64 `json:"elapsedUs"`

	// Error reports a panic-isolated worker failure; the check carries
	// the sound verdict A (the engine gave up) and the batch continues.
	Error string `json:"error,omitempty"`

	// Worker and Attempt are placement metadata stamped by a
	// coordinator when it merges sharded results: the worker address
	// that produced this result and the dispatch attempt that won
	// (1 = primary, >1 = a requeue or hedge). Single-daemon responses
	// leave them zero; verdicts and statistics never depend on them.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// TraceID/SpanID tie this result to the batch's distributed trace:
	// TraceID is the batch trace id, SpanID the id of the span the
	// check ran under. StartUnixUs anchors the check start in Unix
	// microseconds and StageUs carries the per-stage durations in
	// pipeline order (fixpoint, gitd, stems, casean) so flight records
	// and cluster timelines survive the wire round trip. All are
	// stamped at the emission layer, never inside report conversion,
	// and verdicts never depend on them.
	TraceID     string  `json:"traceId,omitempty"`
	SpanID      string  `json:"spanId,omitempty"`
	StartUnixUs int64   `json:"startUnixUs,omitempty"`
	StageUs     []int64 `json:"stageUs,omitempty"`
}

// SweepResult aggregates one δ of a sweep, mirroring
// core.CircuitReport. PerOutput lists the per-output results that
// entered the aggregate: every output for plain sweeps, the serial
// prefix up to the first witnessing output for table1 sweeps.
type SweepResult struct {
	Delta         int64         `json:"delta"`
	BeforeGITD    string        `json:"beforeGITD"`
	AfterGITD     string        `json:"afterGITD"`
	AfterStem     string        `json:"afterStem"`
	CaseAnalysis  string        `json:"caseAnalysis"`
	Final         string        `json:"final"`
	Backtracks    int           `json:"backtracks"`
	WitnessOutput int           `json:"witnessOutput"`
	Propagations  int64         `json:"propagations"`
	Dominators    int           `json:"dominators"`
	Rounds        int           `json:"dominatorRounds"`
	PerOutput     []CheckResult `json:"perOutput"`
}

// Row is one reproduced Table-1 line, field-compatible with the
// harness's JSON row rendering.
type Row struct {
	Circuit    string  `json:"circuit"`
	Gates      int     `json:"gates"`
	Top        int64   `json:"top"`
	Delta      int64   `json:"delta"`
	Exact      bool    `json:"exact"`
	Upper      bool    `json:"upperBound"`
	BeforeGITD string  `json:"beforeGITD"`
	AfterGITD  string  `json:"afterGITD"`
	AfterStem  string  `json:"afterStemCorrelation"`
	Backtracks int     `json:"backtracks"`
	CAResult   string  `json:"caseAnalysis"`
	CPUSeconds float64 `json:"cpuSeconds"`
}

// Response is the non-streaming body of POST /v1/check and
// POST /v1/circuits/{hash}/check.
type Response struct {
	V       int           `json:"v"`
	Circuit CircuitInfo   `json:"circuit"`
	Results []CheckResult `json:"results,omitempty"`
	Sweeps  []SweepResult `json:"sweeps,omitempty"`
	Rows    []Row         `json:"rows,omitempty"`
	Done    DoneInfo      `json:"done"`
	// TraceID is the batch's distributed trace id (minted by the
	// admitting tier when the request carried none).
	TraceID string `json:"traceId,omitempty"`
}

// DoneInfo closes a batch: how many checks ran and the batch wall
// clock.
type DoneInfo struct {
	ChecksRun int   `json:"checksRun"`
	ElapsedUs int64 `json:"elapsedUs"`
}

// Event is one NDJSON line of a streaming response. Type is "circuit"
// (first line), "check", "sweep", "rows", "spans", "error", or "done"
// (always the last line). Receivers must skip event types they do not
// know — later minor revisions add new types (as "spans" was added)
// without a version bump.
type Event struct {
	Type    string       `json:"type"`
	Circuit *CircuitInfo `json:"circuit,omitempty"`
	Check   *CheckResult `json:"check,omitempty"`
	Sweep   *SweepResult `json:"sweep,omitempty"`
	Rows    []Row        `json:"rows,omitempty"`
	Spans   *SpanSummary `json:"spans,omitempty"`
	Error   string       `json:"error,omitempty"`
	Done    *DoneInfo    `json:"done,omitempty"`
	// TraceID echoes the batch trace id on every event line, so a
	// streaming client can correlate a partial stream (even one cut
	// before "done") with server-side spans and flight records.
	TraceID string `json:"traceId,omitempty"`
}

// ErrorBody is the structured body of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo carries a stable machine-readable code plus a human
// message. Hash echoes the requested circuit address on
// "unknown_hash" answers so retry loops can re-upload without keeping
// their own request state.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Hash    Hash   `json:"hash,omitempty"`
}

// Health is the /healthz and /readyz body.
type Health struct {
	Status   string `json:"status"` // "ok", "starting", or "draining"
	Workers  int    `json:"workers"`
	Queued   int    `json:"queuedBatches"`
	Capacity int    `json:"queueDepth"`
}

// Metrics is the /metrics.json body: server counters plus the
// engine-wide ltta.* expvar counters and the aggregated engine
// telemetry of every check this server ran.
type Metrics struct {
	Server map[string]int64 `json:"server"`
	Engine map[string]int64 `json:"engine"`
	Checks string           `json:"checksSummary"`
}
