package api

import (
	"crypto/sha256"
	"encoding/json"
	"strings"
	"testing"
)

func TestAcceptsVersion(t *testing.T) {
	for v, want := range map[int]bool{0: true, 1: true, 2: false, -1: false, 99: false} {
		if got := AcceptsVersion(v); got != want {
			t.Errorf("AcceptsVersion(%d) = %v, want %v", v, got, want)
		}
	}
}

// TestUnknownFieldTolerance pins the forward-compatibility contract:
// a v1 decoder must ignore fields added by later minor revisions on
// every envelope, not reject the body.
func TestUnknownFieldTolerance(t *testing.T) {
	cases := []struct {
		name string
		body string
		into any
	}{
		{"request", `{"v":1,"netlist":"x","checks":[{"sink":"y","delta":3,"futureKnob":true}],"futureField":{"a":1}}`, &Request{}},
		{"upload", `{"v":1,"netlist":"x","delays":[{"net":"y","delay":2,"futureKnob":1}],"future":"yes"}`, &UploadRequest{}},
		{"response", `{"v":1,"circuit":{"name":"c","futureStat":9},"done":{"checksRun":1},"future":[1,2]}`, &Response{}},
		{"uploadResponse", `{"v":1,"hash":"sha256:00","created":true,"future":"x"}`, &UploadResponse{}},
		{"event", `{"type":"done","done":{"checksRun":0},"future":3}`, &Event{}},
		{"error", `{"error":{"code":"x","message":"y","hash":"h","future":1}}`, &ErrorBody{}},
	}
	for _, tc := range cases {
		if err := json.Unmarshal([]byte(tc.body), tc.into); err != nil {
			t.Errorf("%s: decoding with unknown fields failed: %v", tc.name, err)
		}
	}
}

func TestRequestVersionRoundTrip(t *testing.T) {
	b, err := json.Marshal(Request{V: Version, Netlist: "n", Checks: []CheckSpec{{Sink: "s", Delta: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"v":1`) {
		t.Fatalf("encoded request carries no version field: %s", b)
	}
	var r Request
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.V != Version {
		t.Fatalf("round-tripped V = %d, want %d", r.V, Version)
	}
	// A pre-versioning body decodes with V == 0, which AcceptsVersion
	// treats as the implicit v1.
	var legacy Request
	if err := json.Unmarshal([]byte(`{"netlist":"n"}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if !AcceptsVersion(legacy.V) {
		t.Fatal("legacy unversioned body must decode as v1")
	}
}

func TestHashValid(t *testing.T) {
	h := NewHash(sha256.Sum256([]byte("netlist")))
	if !h.Valid() {
		t.Fatalf("minted hash %q does not validate", h)
	}
	for _, bad := range []Hash{
		"", "sha256:", "sha256:zz", Hash("md5:" + strings.Repeat("0", 64)),
		Hash("sha256:" + strings.Repeat("0", 63)),
		Hash("sha256:" + strings.Repeat("0", 63) + "G"),
		Hash("sha256:" + strings.Repeat("A", 64)), // upper-case hex is not minted
	} {
		if bad.Valid() {
			t.Errorf("hash %q must not validate", bad)
		}
	}
}
