package api

import (
	"crypto/rand"
	"encoding/hex"
)

// TraceContext is the stdlib-only distributed-tracing context carried
// on the wire envelope: a 128-bit trace id naming one end-to-end batch
// submission, the span id of the caller's enclosing span, and an
// optional tenant identity. The admitting tier (coordinator in a
// cluster, the daemon itself for direct submissions) mints the trace
// id when the client did not send one; every NDJSON event and terminal
// result then echoes it, and a coordinator re-stamps ParentSpan with a
// per-attempt child span on each dispatch, requeue, and hedge.
type TraceContext struct {
	// TraceID is 32 lowercase hex digits (128 bits), shared by every
	// span, log line, and flight record of one batch submission.
	TraceID string `json:"traceId"`
	// ParentSpan is the 16-hex-digit span id of the sender's enclosing
	// span (empty at the root).
	ParentSpan string `json:"parentSpan,omitempty"`
	// Tenant is an optional caller identity, propagated into logs,
	// spans, and flight records only — no quota or authorization
	// semantics are attached to it here.
	Tenant string `json:"tenant,omitempty"`
}

// NewTraceID mints a 128-bit trace id as 32 lowercase hex digits.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a 64-bit span id as 16 lowercase hex digits.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	// crypto/rand.Read never fails on the supported platforms; a
	// zero-filled id on a hypothetical failure is still well-formed.
	_, _ = rand.Read(b)
	return hex.EncodeToString(b)
}

// ValidTraceID reports whether s is 32 lowercase hex digits.
func ValidTraceID(s string) bool { return validHex(s, 32) }

// ValidSpanID reports whether s is 16 lowercase hex digits.
func ValidSpanID(s string) bool { return validHex(s, 16) }

func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// EnsureTrace returns a complete trace context derived from tc: a nil
// or malformed-trace-id context gets a freshly minted id (the caller
// is the admitting tier), while tenant and parent span are preserved
// when well-formed. The returned context is always a private copy.
func EnsureTrace(tc *TraceContext) *TraceContext {
	out := &TraceContext{}
	if tc != nil {
		out.TraceID, out.ParentSpan, out.Tenant = tc.TraceID, tc.ParentSpan, tc.Tenant
	}
	if !ValidTraceID(out.TraceID) {
		out.TraceID = NewTraceID()
	}
	if out.ParentSpan != "" && !ValidSpanID(out.ParentSpan) {
		out.ParentSpan = ""
	}
	return out
}

// Span is one compact completed span inside a SpanSummary: a name plus
// a start offset and duration in microseconds, both relative to the
// summary's wall-clock anchor.
type Span struct {
	Name    string `json:"name"`
	StartUs int64  `json:"startUs"`
	DurUs   int64  `json:"durUs"`
}

// SpanSummary is the per-check span bundle a worker returns in-band on
// a traced streaming batch (Event type "spans"): enough for the
// coordinator to place the check's execution — and its pipeline
// stages — on one cluster-wide timeline without a second round trip.
// Index addresses the check inside the shard request exactly like the
// matching CheckResult's Index.
type SpanSummary struct {
	Index   int    `json:"index"`
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
	Sink    string `json:"sink"`
	Delta   int64  `json:"delta"`
	// Worker and Attempt mirror the ShardInfo the check ran under;
	// zero/empty on single-daemon batches.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// StartUnixUs anchors the summary in wall-clock time (Unix
	// microseconds at check start); span offsets are relative to it.
	StartUnixUs int64  `json:"startUnixUs"`
	DurUs       int64  `json:"durUs"`
	Verdict     string `json:"verdict"`
	// Spans lists the pipeline-stage spans that ran, in order.
	Spans []Span `json:"spans,omitempty"`
}
