package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestCircuitRowsC17(t *testing.T) {
	c := gen.C17(10)
	rows := CircuitRows("c17", c, 100000)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	high, low := rows[0], rows[1]
	if high.Delta != 31 || low.Delta != 30 {
		t.Fatalf("deltas %s/%s, want 31/30", high.Delta, low.Delta)
	}
	if high.BeforeGITD != core.NoViolation {
		t.Fatalf("c17 δ=31 must be refuted by plain narrowing, got %s", high.BeforeGITD)
	}
	if low.CAResult != core.ViolationFound || !low.Exact {
		t.Fatalf("c17 δ=30 must be witnessed exactly: %+v", low)
	}
	if high.Top != 30 || low.Gates != 6 {
		t.Fatal("row metadata wrong")
	}
}

func TestRenderTable1(t *testing.T) {
	c := gen.C17(10)
	rows := CircuitRows("c17", c, 100000)
	var sb strings.Builder
	RenderTable1(&sb, rows)
	out := sb.String()
	for _, want := range []string{"CIRCUIT", "BEFORE G.I.T.D.", "c17", "30 E"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	c := gen.C17(10)
	rows := CircuitRows("c17", c, 100000)
	var sb strings.Builder
	if err := WriteJSON(&sb, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("got %d rows", len(decoded))
	}
	if decoded[0]["circuit"] != "c17" || decoded[0]["beforeGITD"] != "N" {
		t.Fatalf("row content wrong: %+v", decoded[0])
	}
	if decoded[1]["exact"] != true || decoded[1]["caseAnalysis"] != "V" {
		t.Fatalf("row content wrong: %+v", decoded[1])
	}
}

func TestExample2Harness(t *testing.T) {
	tr := Example2()
	if !tr.RefutedAt61 {
		t.Fatal("δ=61 must be refuted by plain narrowing")
	}
	if tr.Top != 70 || tr.Floating != 60 {
		t.Fatalf("top/floating = %s/%s, want 70/60", tr.Top, tr.Floating)
	}
	if tr.WitnessSettle != 60 {
		t.Fatalf("witness settle = %s", tr.WitnessSettle)
	}
	if len(tr.DomainsAt60) == 0 || tr.DomainsAt60["s"] == "" {
		t.Fatal("domain dump missing")
	}
	var sb strings.Builder
	RenderExample2(&sb, tr)
	if !strings.Contains(sb.String(), "floating delay: 60") {
		t.Fatalf("render missing delay:\n%s", sb.String())
	}
}

func TestExample2Propagation(t *testing.T) {
	steps := Example2Propagation()
	if len(steps) < 10 {
		t.Fatalf("expected a full propagation listing, got %d steps", len(steps))
	}
	// The listing must contain the paper's hallmark narrowings.
	joined := strings.Join(steps, "\n")
	for _, want := range []string{
		"n7  (0|-inf^60, 1|51^60) → (0|51^60, 1|51^60)", // last-transition interval reaches n7
		"→ (0|-inf^50, φ)",                              // n5's controlling class removed
		"(φ, φ)",                                        // the final contradiction
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("propagation listing missing %q:\n%s", want, joined)
		}
	}
	// The final step must empty a domain (that is how δ=61 is refuted).
	if !strings.Contains(steps[len(steps)-1], "(φ, φ)") {
		t.Fatalf("last step must be the contradiction, got %q", steps[len(steps)-1])
	}
}

func TestCarrySkipHarness(t *testing.T) {
	ex := CarrySkip(8, 4, 100000)
	if !ex.Exact {
		t.Fatal("8-bit carry-skip delay must be exact")
	}
	if ex.Floating >= ex.Top {
		t.Fatalf("false path missing: floating %s vs top %s", ex.Floating, ex.Top)
	}
	if ex.RefuteStage == "" {
		t.Fatal("refute stage missing")
	}
	var sb strings.Builder
	RenderCarrySkip(&sb, ex)
	if !strings.Contains(sb.String(), "Carry-skip adder 8 bits") {
		t.Fatal("render wrong")
	}
}

func TestAnecdoteHarness(t *testing.T) {
	an := Anecdote()
	if an.WithDomVerdict != core.NoViolation {
		t.Fatalf("dominators must refute at the proved bound, got %s", an.WithDomVerdict)
	}
	if an.PlainVerdict != core.PossibleViolation {
		t.Fatalf("plain narrowing must NOT refute at the proved bound (that is the anecdote), got %s", an.PlainVerdict)
	}
	if an.ProvedBound >= an.Top {
		t.Fatalf("proved bound %s must be far below top %s", an.ProvedBound, an.Top)
	}
	if an.Dominators < 2 {
		t.Fatalf("expected a dominator chain, got %d", an.Dominators)
	}
	var sb strings.Builder
	RenderAnecdote(&sb, an)
	if !strings.Contains(sb.String(), "dominator") {
		t.Fatal("render wrong")
	}
}

func TestTable1SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("suite subset needs a few seconds")
	}
	var entries []gen.SuiteEntry
	for _, e := range gen.SubstituteSuite() {
		if e.Name == "c17" || e.Name == "c432" || e.Name == "c880" {
			entries = append(entries, e)
		}
	}
	rows := Table1(entries, 100000)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Delta != rows[i+1].Delta.Add(1) {
			t.Fatalf("row pair deltas inconsistent: %s vs %s", rows[i].Delta, rows[i+1].Delta)
		}
		// The δ+1 row must be refuted somewhere; the δ row witnessed.
		refuted := rows[i].BeforeGITD == core.NoViolation ||
			rows[i].AfterGITD == core.NoViolation ||
			rows[i].AfterStem == core.NoViolation ||
			rows[i].CAResult == core.NoViolation
		if !refuted {
			t.Fatalf("%s δ+1 not refuted: %+v", rows[i].Circuit, rows[i])
		}
		if rows[i+1].CAResult != core.ViolationFound {
			t.Fatalf("%s δ not witnessed: %+v", rows[i+1].Circuit, rows[i+1])
		}
	}
}
