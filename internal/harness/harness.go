// Package harness regenerates the paper's evaluation artefacts: the
// Table-1 rows over the substitute suite, the Example-2/Figure-1 trace,
// the carry-skip adder experiment of Section 6, and the c1908 dominator
// anecdote. cmd/table1 and cmd/figures render its output; the root
// benchmarks time its stages.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// Table1Row is one line of the reproduced Table 1.
type Table1Row struct {
	Circuit    string
	Gates      int
	Top        waveform.Time
	Delta      waveform.Time
	Exact      bool // δ is the exact floating delay (paper's E marker)
	Upper      bool // δ is only an upper bound (paper's U marker)
	BeforeGITD core.Result
	AfterGITD  core.Result
	AfterStem  core.Result
	Backtracks int
	CAResult   core.Result
	CPU        time.Duration
}

// Table1 regenerates the two Table-1 rows (δ = exact+1 and δ = exact)
// for every circuit of the substitute suite. Budget bounds the
// case-analysis backtracks per check.
func Table1(entries []gen.SuiteEntry, budget int) []Table1Row {
	var rows []Table1Row
	for _, e := range entries {
		rows = append(rows, CircuitRows(e.Name, e.Circuit, budget)...)
	}
	return rows
}

// RowConfig is the engine configuration behind one circuit's rows:
// the request template shared by every check, and the verifier
// options. RowOptions mutate it before the verifier is built.
type RowConfig struct {
	Req  core.Request
	Opts core.Options
}

// RowOption customises the engine configuration used by
// CircuitRowsParallel (tracing, pprof labels, cone slicing, …).
type RowOption func(*RowConfig)

// WithTracer attaches a tracer to every check behind the rows;
// repeated uses chain (every tracer sees every event).
func WithTracer(t core.Tracer) RowOption {
	return func(c *RowConfig) { c.Req.Tracer = core.MultiTracer(c.Req.Tracer, t) }
}

// WithPprofLabels tags parallel per-output checks with pprof labels.
func WithPprofLabels() RowOption {
	return func(c *RowConfig) { c.Req.PprofLabels = true }
}

// WithoutConeSlicing solves every check on the whole circuit instead
// of the sink's fan-in cone (the -no-cone escape hatch).
func WithoutConeSlicing() RowOption {
	return func(c *RowConfig) { c.Opts.UseConeSlicing = false }
}

// WithoutWarmStart solves every check cold instead of seeding repeat
// checks of a sink from the previous fixpoint snapshot (the
// -no-warm-start escape hatch; verdicts are identical either way, only
// the work counters change).
func WithoutWarmStart() RowOption {
	return func(c *RowConfig) { c.Opts.UseWarmStart = false }
}

// CircuitRows computes the exact circuit floating delay and produces
// the (δ+1, δ) row pair for one circuit, mirroring the paper's
// protocol: the δ+1 check shows which stage refutes, the δ check shows
// the case analysis finding a test vector.
func CircuitRows(name string, c *circuit.Circuit, budget int) []Table1Row {
	return CircuitRowsParallel(name, c, budget, 1)
}

// CircuitRowsParallel is CircuitRows with the per-output checks of the
// two row evaluations fanned out over the given worker count, an
// optional per-check deadline, and an optional tracer observing every
// check (both may be nil/zero).
func CircuitRowsParallel(name string, c *circuit.Circuit, budget, workers int, extras ...RowOption) []Table1Row {
	cfg := RowConfig{Opts: core.Default(), Req: core.Request{Workers: workers}}
	cfg.Opts.MaxBacktracks = budget
	if workers <= 1 {
		cfg.Req.Workers = 1
	}
	for _, o := range extras {
		o(&cfg)
	}
	v := core.NewVerifier(c, cfg.Opts)
	top := v.Topological()
	req := cfg.Req

	res, err := v.CircuitFloatingDelayCtx(context.Background(), req)
	if err != nil {
		panic("harness: " + err.Error())
	}
	delta := res.Delay
	exact := res.Exact

	mk := func(d waveform.Time, cr *core.CircuitReport) Table1Row {
		row := Table1Row{
			Circuit: name, Gates: c.NumGates(), Top: top, Delta: d,
			BeforeGITD: cr.BeforeGITD, AfterGITD: cr.AfterGITD, AfterStem: cr.AfterStem,
			Backtracks: cr.Backtracks, CAResult: cr.CaseAnalysis,
		}
		for _, pr := range cr.PerOutput {
			row.CPU += pr.Elapsed
		}
		return row
	}

	checkAll := func(d waveform.Time) *core.CircuitReport {
		r := req
		r.Delta = d
		return v.RunAll(context.Background(), r)
	}
	start := time.Now()
	crHigh := checkAll(delta.Add(1))
	rowHigh := mk(delta.Add(1), crHigh)
	rowHigh.CPU = time.Since(start)

	start = time.Now()
	crLow := checkAll(delta)
	rowLow := mk(delta, crLow)
	rowLow.CPU = time.Since(start)
	rowLow.Exact = exact && crLow.Final == core.ViolationFound && crHigh.Final == core.NoViolation
	rowLow.Upper = !rowLow.Exact

	return []Table1Row{rowHigh, rowLow}
}

// WriteJSON emits the rows as a JSON array for downstream tooling.
func WriteJSON(w io.Writer, rows []Table1Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	type jsonRow struct {
		Circuit    string  `json:"circuit"`
		Gates      int     `json:"gates"`
		Top        int64   `json:"top"`
		Delta      int64   `json:"delta"`
		Exact      bool    `json:"exact"`
		Upper      bool    `json:"upperBound"`
		BeforeGITD string  `json:"beforeGITD"`
		AfterGITD  string  `json:"afterGITD"`
		AfterStem  string  `json:"afterStemCorrelation"`
		Backtracks int     `json:"backtracks"`
		CAResult   string  `json:"caseAnalysis"`
		CPUSeconds float64 `json:"cpuSeconds"`
	}
	out := make([]jsonRow, len(rows))
	for i, r := range rows {
		out[i] = jsonRow{
			Circuit: r.Circuit, Gates: r.Gates,
			Top: int64(r.Top), Delta: int64(r.Delta),
			Exact: r.Exact, Upper: r.Upper,
			BeforeGITD: r.BeforeGITD.String(), AfterGITD: stage(r.AfterGITD),
			AfterStem: stage(r.AfterStem), Backtracks: r.Backtracks,
			CAResult: stage(r.CAResult), CPUSeconds: r.CPU.Seconds(),
		}
	}
	return enc.Encode(out)
}

// RenderTable1 prints the rows in the paper's column layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CIRCUIT\tGATES\tMAX.TOP.\tδ\tBEFORE G.I.T.D.\tAFTER G.I.T.D.\tAFTER STEM C.\tC.A. #BTRCK\tC.A. RESULT\tCPU(s)")
	for _, r := range rows {
		mark := ""
		if r.Exact {
			mark = " E"
		} else if r.Upper {
			mark = " U"
		}
		bt := "-"
		if r.Backtracks >= 0 && r.CAResult != core.StageSkipped {
			bt = fmt.Sprintf("%d", r.Backtracks)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s%s\t%s\t%s\t%s\t%s\t%s\t%.3f\n",
			r.Circuit, r.Gates, r.Top, r.Delta, mark,
			r.BeforeGITD, stage(r.AfterGITD), stage(r.AfterStem), bt, stage(r.CAResult),
			r.CPU.Seconds())
	}
	tw.Flush()
}

func stage(r core.Result) string { return r.String() }

// Example2Trace reproduces the Figure-1/Example-2 narrative: the
// verdict at δ=61 (refuted by plain narrowing), the surviving domains
// at δ=60, and the certified test vector.
type Example2Trace struct {
	Top, Floating  waveform.Time
	RefutedAt61    bool
	Witness        sim.Vector
	WitnessSettle  waveform.Time
	DomainsAt60    map[string]string
	BacktracksAt60 int
}

// Example2 runs the trace on the Hrapcenko circuit with d = 10.
func Example2() *Example2Trace {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	tr := &Example2Trace{DomainsAt60: map[string]string{}}

	plain := core.NewVerifier(c, core.Options{})
	tr.RefutedAt61 = plain.Check(s, 61).Final == core.NoViolation

	v := core.NewVerifier(c, core.Default())
	tr.Top = v.Topological()
	res, err := v.ExactFloatingDelay(s)
	if err != nil {
		panic("harness: " + err.Error())
	}
	tr.Floating = res.Delay
	rep := v.Check(s, 60)
	tr.Witness = rep.Witness
	tr.WitnessSettle = rep.WitnessSettle
	tr.BacktracksAt60 = rep.Backtracks

	// Show the narrowed domains at δ=60 after the global fixpoint (the
	// analogue of the paper's step-by-step listing).
	sys := newNarrowedSystem(c, s, 60)
	for _, name := range []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "s", "e3", "e4", "e5", "e7"} {
		id, _ := c.NetByName(name)
		tr.DomainsAt60[name] = sys(id)
	}
	return tr
}

// Example2Propagation replays the paper's step-by-step narrowing
// listing: every domain change of the plain fixpoint for the timing
// check (s, 61) on the Figure-1 circuit, in propagation order ("g1 ⇒
// D_n1 = …" in the paper's notation, rendered as "net: old → new").
func Example2Propagation() []string {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	sys := constraint.New(c)
	var steps []string
	sys.SetTraceFunc(func(n circuit.NetID, old, new waveform.Signal) {
		steps = append(steps, fmt.Sprintf("%-3s %s → %s", c.Net(n).Name, old, new))
	})
	sys.Narrow(s, waveform.CheckOutput(61))
	sys.ScheduleAll()
	sys.Fixpoint()
	return steps
}

// newNarrowedSystem runs the plain fixpoint for (sink, δ) and returns a
// domain printer.
func newNarrowedSystem(c *circuit.Circuit, s circuit.NetID, d waveform.Time) func(circuit.NetID) string {
	v := core.NewVerifier(c, core.Options{})
	doms := v.DomainsAfterFixpoint(s, d)
	return func(n circuit.NetID) string { return doms[n].String() }
}

// CarrySkipExperiment is the Section-6 adder result: topological vs
// exact floating delay of an n-bit carry-skip adder, with backtrack
// counts for δ = floating+1 (refutation) and δ = floating (witness).
type CarrySkipExperiment struct {
	Bits, Block          int
	Gates                int
	Top, Floating        waveform.Time
	Exact                bool
	RefuteBacktracks     int
	WitnessBacktracks    int
	RefuteStage          string // which stage proved δ+1 impossible
	DominatorChainLength int
	Witness              sim.Vector
	CPU                  time.Duration
}

// CarrySkip runs the adder experiment for the given size.
func CarrySkip(bits, block int, budget int) *CarrySkipExperiment {
	start := time.Now()
	c := gen.CarrySkipAdder(bits, block, 10)
	cout, _ := c.NetByName("cout")
	opts := core.Default()
	opts.MaxBacktracks = budget
	v := core.NewVerifier(c, opts)
	ex := &CarrySkipExperiment{Bits: bits, Block: block, Gates: c.NumGates(), Top: v.Topological()}

	res, err := v.ExactFloatingDelay(cout)
	if err != nil {
		panic("harness: " + err.Error())
	}
	ex.Floating = res.Delay
	ex.Exact = res.Exact
	ex.Witness = res.Witness

	repHigh := v.Check(cout, res.Delay.Add(1))
	ex.RefuteBacktracks = repHigh.Backtracks
	switch {
	case repHigh.BeforeGITD == core.NoViolation:
		ex.RefuteStage = "plain narrowing"
	case repHigh.AfterGITD == core.NoViolation:
		ex.RefuteStage = "timing dominators"
	case repHigh.AfterStem == core.NoViolation:
		ex.RefuteStage = "stem correlation"
	default:
		ex.RefuteStage = "case analysis"
	}
	ex.DominatorChainLength = repHigh.Dominators

	repLow := v.Check(cout, res.Delay)
	ex.WitnessBacktracks = repLow.Backtracks
	ex.CPU = time.Since(start)
	return ex
}

// DominatorAnecdote reproduces the c1908 observation of Section 6: on a
// deep output, dominator implications prove a delay bound far below the
// topological delay, quickly and without case analysis.
type DominatorAnecdote struct {
	Output             string
	Top                waveform.Time
	ProvedBound        waveform.Time // smallest δ with a dominator-stage refutation
	Dominators         int
	PlainVerdict       core.Result // what plain narrowing says at ProvedBound
	WithDomVerdict     core.Result
	CPU                time.Duration
	DominatorNetsNamed []string
}

// Anecdote runs the dominator anecdote on the c1908 substitute's
// deepest output.
func Anecdote() *DominatorAnecdote {
	start := time.Now()
	var entry gen.SuiteEntry
	for _, e := range gen.SubstituteSuite() {
		if e.Name == "c1908" {
			entry = e
			break
		}
	}
	c := entry.Circuit
	a := delay.New(c)
	// Deepest output.
	deep := c.PrimaryOutputs()[0]
	for _, po := range c.PrimaryOutputs() {
		if a.Arrival(po) > a.Arrival(deep) {
			deep = po
		}
	}
	an := &DominatorAnecdote{Output: c.Net(deep).Name, Top: a.Arrival(deep)}

	plain := core.NewVerifier(c, core.Options{})
	withDom := core.NewVerifier(c, core.Options{UseDominators: true})

	// Find the smallest δ that the dominator stage refutes but plain
	// narrowing cannot, scanning down from the topological delay.
	lo, hi := waveform.Time(0), an.Top
	for lo < hi {
		mid := waveform.Midpoint(lo, hi)
		if withDom.VerifyOnly(deep, mid) == core.NoViolation {
			hi = mid
		} else {
			lo = mid.Add(1)
		}
	}
	an.ProvedBound = lo
	an.WithDomVerdict = withDom.VerifyOnly(deep, lo)
	an.PlainVerdict = plain.VerifyOnly(deep, lo)

	sys := core.NewVerifier(c, core.Options{}).SystemAfterFixpoint(deep, lo)
	doms := dom.Dynamic(sys, deep, lo)
	an.Dominators = len(doms.Nets)
	for _, n := range doms.Nets {
		an.DominatorNetsNamed = append(an.DominatorNetsNamed, c.Net(n).Name)
	}
	an.CPU = time.Since(start)
	return an
}

// RenderExample2 pretty-prints the trace.
func RenderExample2(w io.Writer, tr *Example2Trace) {
	fmt.Fprintf(w, "Figure 1 / Example 2 (Hrapcenko circuit, d=10 per gate)\n")
	fmt.Fprintf(w, "  topological delay: %s, exact floating delay: %s\n", tr.Top, tr.Floating)
	fmt.Fprintf(w, "  timing check (s, 61): refuted by plain waveform narrowing: %v\n", tr.RefutedAt61)
	fmt.Fprintf(w, "  timing check (s, 60): test vector %s (settle %s), %d backtracks\n",
		tr.Witness, tr.WitnessSettle, tr.BacktracksAt60)
	fmt.Fprintf(w, "  narrowed domains at δ=60 (plain fixpoint):\n")
	for _, n := range []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "s", "e3", "e4", "e5", "e7"} {
		fmt.Fprintf(w, "    %-3s %s\n", n, tr.DomainsAt60[n])
	}
}

// RenderCarrySkip pretty-prints the adder experiment.
func RenderCarrySkip(w io.Writer, ex *CarrySkipExperiment) {
	fmt.Fprintf(w, "Carry-skip adder %d bits (blocks of %d), %d gates\n", ex.Bits, ex.Block, ex.Gates)
	fmt.Fprintf(w, "  topological delay %s, exact floating delay %s (exact=%v)\n", ex.Top, ex.Floating, ex.Exact)
	fmt.Fprintf(w, "  δ=%s refuted by %s after %d backtracks (dominator chain length %d)\n",
		ex.Floating.Add(1), ex.RefuteStage, maxInt(ex.RefuteBacktracks, 0), ex.DominatorChainLength)
	fmt.Fprintf(w, "  δ=%s witnessed after %d backtracks; vector %s\n",
		ex.Floating, maxInt(ex.WitnessBacktracks, 0), ex.Witness)
	fmt.Fprintf(w, "  CPU %.2fs\n", ex.CPU.Seconds())
}

// RenderAnecdote pretty-prints the dominator anecdote.
func RenderAnecdote(w io.Writer, an *DominatorAnecdote) {
	fmt.Fprintf(w, "c1908-substitute dominator anecdote\n")
	fmt.Fprintf(w, "  output %s: topological delay %s\n", an.Output, an.Top)
	fmt.Fprintf(w, "  dominators prove delay < %s (plain narrowing: %s, with dominators: %s)\n",
		an.ProvedBound, an.PlainVerdict, an.WithDomVerdict)
	fmt.Fprintf(w, "  %d dynamic timing dominators: %s\n", an.Dominators,
		strings.Join(truncate(an.DominatorNetsNamed, 8), ", "))
	fmt.Fprintf(w, "  CPU %.2fs\n", an.CPU.Seconds())
}

func truncate(ss []string, n int) []string {
	if len(ss) <= n {
		return ss
	}
	out := append([]string(nil), ss[:n]...)
	return append(out, fmt.Sprintf("… (%d more)", len(ss)-n))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
