package dom

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/delay"
	"repro/internal/waveform"
)

func mustBuild(t testing.TB, src string, d int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: d})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func id(t testing.TB, c *circuit.Circuit, name string) circuit.NetID {
	t.Helper()
	n, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return n
}

func names(c *circuit.Circuit, nets []circuit.NetID) []string {
	out := make([]string, len(nets))
	for i, n := range nets {
		out[i] = c.Net(n).Name
	}
	return out
}

// chain: a → n1 → n2 → z, with a short side path b → z.
const chain = `
INPUT(a)
INPUT(b)
OUTPUT(z)
n1 = BUFF(a)
n2 = NOT(n1)
z = AND(n2, b)
`

func TestStaticDominatorsChain(t *testing.T) {
	c := mustBuild(t, chain, 10)
	a := delay.New(c)
	z := id(t, c, "z")
	// δ=30: only the full chain qualifies; every chain net dominates.
	d := Static(c, a, z, 30)
	got := names(c, d.Nets)
	want := []string{"z", "n2", "n1", "a"}
	if len(got) != len(want) {
		t.Fatalf("dominators = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dominators = %v, want %v", got, want)
		}
	}
	// Distances are the topological delays to the sink.
	wantDist := []waveform.Time{0, 10, 20, 30}
	for i := range wantDist {
		if d.Dist[i] != wantDist[i] {
			t.Fatalf("dist = %v, want %v", d.Dist, wantDist)
		}
	}
}

func TestStaticDominatorsDiamond(t *testing.T) {
	// Two equal-length branches: only the fork and join dominate.
	src := `
INPUT(a)
OUTPUT(z)
p = BUFF(a)
q = NOT(p)
r = BUFF(p)
z = AND(q, r)
`
	c := mustBuild(t, src, 10)
	a := delay.New(c)
	z := id(t, c, "z")
	d := Static(c, a, z, 30)
	got := names(c, d.Nets)
	want := []string{"z", "p", "a"}
	if len(got) != len(want) {
		t.Fatalf("dominators = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dominators = %v, want %v", got, want)
		}
	}
}

func TestStaticDominatorsNoCarrier(t *testing.T) {
	c := mustBuild(t, chain, 10)
	a := delay.New(c)
	z := id(t, c, "z")
	d := Static(c, a, z, 99)
	if len(d.Nets) != 0 {
		t.Fatalf("no dominators expected beyond top, got %v", names(c, d.Nets))
	}
}

func TestStaticCarriersExposed(t *testing.T) {
	c := mustBuild(t, chain, 10)
	a := delay.New(c)
	z := id(t, c, "z")
	mask := StaticCarriers(c, a, z, 30)
	if !mask[id(t, c, "a")] || mask[id(t, c, "b")] {
		t.Fatal("carrier mask wrong")
	}
}

func TestDynamicCarriersRespectDomains(t *testing.T) {
	c := mustBuild(t, chain, 10)
	z := id(t, c, "z")
	sys := constraint.New(c)
	sys.Narrow(z, waveform.CheckOutput(30))
	sys.ScheduleAll()
	if !sys.Fixpoint() {
		t.Fatal("δ=30 must stay consistent")
	}
	mask, dist := DynamicCarriers(sys, z, 30)
	// b's domain was narrowed to class 1 with Lmax 0; a transition at
	// or after δ−10 = 20 is impossible on b, so b is not a carrier.
	if mask[id(t, c, "b")] {
		t.Fatal("b must not be a dynamic carrier")
	}
	for _, n := range []string{"z", "n2", "n1", "a"} {
		if !mask[id(t, c, n)] {
			t.Fatalf("%s must be a dynamic carrier", n)
		}
	}
	if dist[id(t, c, "a")] != 30 || dist[id(t, c, "n2")] != 10 {
		t.Fatalf("dynamic distances wrong: a=%s n2=%s", dist[id(t, c, "a")], dist[id(t, c, "n2")])
	}
}

func TestDynamicDominatorsAndNarrowing(t *testing.T) {
	// Reconvergent structure where one branch is too slow to carry the
	// violation: the join inputs disambiguate only via dominators.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
p = BUFF(a)
q = BUFF(p)
r = BUFF(q)
s = BUFF(r)
z = AND(s, b)
`
	c := mustBuild(t, src, 10)
	z := id(t, c, "z")
	sys := constraint.New(c)
	sys.Narrow(z, waveform.CheckOutput(50))
	sys.ScheduleAll()
	if !sys.Fixpoint() {
		t.Fatal("must be consistent")
	}
	doms := Dynamic(sys, z, 50)
	got := names(c, doms.Nets)
	want := []string{"z", "s", "r", "q", "p", "a"}
	if len(got) != len(want) {
		t.Fatalf("dominators = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dominators = %v, want %v", got, want)
		}
	}
	changed := NarrowDominators(sys, doms, 50)
	// The chain was already fully narrowed by plain propagation here,
	// so dominator narrowing may or may not change domains; it must at
	// least keep the system consistent.
	_ = changed
	if !sys.Fixpoint() {
		t.Fatal("dominator narrowing must preserve consistency")
	}
	// a must now be pinned to a transition at time exactly 0.
	da := sys.Domain(id(t, c, "a"))
	if da.W0.Lmin != 0 || da.W1.Lmin != 0 {
		t.Fatalf("a = %s, want Lmin 0 on both classes", da)
	}
}

// TestDynamicDominatorCarrySkip reproduces the paper's carry-skip
// situation (Figures 2–3) in miniature: a long ripple path and a short
// skip path reconverge at a NAND; beyond the reconvergence the chain
// continues through X to the output. The last-transition interval
// propagates from the output to X but cannot cross the ambiguous NAND
// by local reasoning alone; the dynamic dominator on the ripple input
// C2 recovers the implication.
func TestDynamicDominatorCarrySkip(t *testing.T) {
	src := `
INPUT(c2)
INPUT(sel)
OUTPUT(c7)
r1 = BUFF(c2)
r2 = BUFF(r1)
r3 = BUFF(r2)
n = NAND(r3, sel)
p = NAND(c2, sel)
x = NAND(n, p)
c7 = BUFF(x)
`
	c := mustBuild(t, src, 10)
	c7 := id(t, c, "c7")
	sys := constraint.New(c)
	// Longest path: c2→r1→r2→r3→n→x→c7 = 60.
	sys.Narrow(c7, waveform.CheckOutput(60))
	sys.ScheduleAll()
	if !sys.Fixpoint() {
		t.Fatal("must be consistent")
	}
	// Local propagation reaches x but cannot decide between n and p...
	// n is the only input of x fast enough for δ=60, so this small case
	// still disambiguates locally; the dominator set must nevertheless
	// contain the full ripple spine.
	doms := Dynamic(sys, c7, 60)
	has := map[string]bool{}
	for _, n := range doms.Nets {
		has[c.Net(n).Name] = true
	}
	for _, want := range []string{"c7", "x", "n", "r3", "r2", "r1", "c2"} {
		if !has[want] {
			t.Fatalf("dominators missing %s: %v", want, names(c, doms.Nets))
		}
	}
	if has["p"] || has["sel"] {
		t.Fatalf("side nets must not dominate: %v", names(c, doms.Nets))
	}
	if !NarrowDominators(sys, doms, 60) && sys.Domain(id(t, c, "c2")).W0.Lmin != 0 {
		t.Fatal("dominator narrowing must pin c2")
	}
	if !sys.Fixpoint() {
		t.Fatal("must remain consistent after dominator narrowing")
	}
}

func TestNarrowDominatorsDetectsInfeasible(t *testing.T) {
	// If the dominator's domain cannot contain a late-enough
	// transition, Corollary-1 narrowing empties it and the check is
	// refuted.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
p = BUFF(a)
z = AND(p, b)
`
	c := mustBuild(t, src, 10)
	z := id(t, c, "z")
	sys := constraint.New(c)
	sys.Narrow(z, waveform.CheckOutput(20))
	sys.ScheduleAll()
	if !sys.Fixpoint() {
		t.Fatal("δ=20 is exactly the topological delay: consistent")
	}
	doms := Dynamic(sys, z, 20)
	NarrowDominators(sys, doms, 20)
	if !sys.Fixpoint() {
		t.Fatal("must remain consistent: the check is realisable")
	}
}
