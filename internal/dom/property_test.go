package dom

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/delay"
	"repro/internal/waveform"
)

func randomCircuit(t testing.TB, seed int64, nPI, nGates int) *circuit.Circuit {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder("rand")
	var nets []string
	for i := 0; i < nPI; i++ {
		n := "i" + string(rune('0'+i))
		b.Input(n)
		nets = append(nets, n)
	}
	types := []circuit.GateType{
		circuit.AND, circuit.NAND, circuit.OR, circuit.NOR,
		circuit.NOT, circuit.BUFFER, circuit.XOR, circuit.XNOR,
	}
	for i := 0; i < nGates; i++ {
		gt := types[r.Intn(len(types))]
		name := "g" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		nin := 1
		if !gt.Unate() {
			nin = 2 + r.Intn(2)
		}
		ins := make([]string, nin)
		for j := range ins {
			k := len(nets) - 1 - r.Intn(min(len(nets), 5))
			ins[j] = nets[k]
		}
		b.Gate(gt, int64(1+r.Intn(4)), name, ins...)
		nets = append(nets, name)
	}
	b.Output(nets[len(nets)-1])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestStaticDominatorsOnEveryLongPath is the defining property of
// Definition 6, validated against an independent path enumerator: every
// structural path of length ≥ δ ending at the sink must contain every
// static timing dominator.
func TestStaticDominatorsOnEveryLongPath(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := randomCircuit(t, seed, 4, 14)
		sink := c.PrimaryOutputs()[0]
		a := delay.New(c)
		top := a.Arrival(sink)
		if top <= 2 {
			continue
		}
		for _, delta := range []waveform.Time{top, top.Sub(1), top / 2} {
			if delta <= 0 {
				continue
			}
			doms := Static(c, a, sink, delta)
			paths := delay.KLongestPaths(c, sink, 200)
			for _, p := range paths {
				if p.Length < delta {
					continue
				}
				onPath := map[circuit.NetID]bool{}
				for _, n := range p.Nets {
					onPath[n] = true
				}
				for _, d := range doms.Nets {
					if !onPath[d] {
						t.Fatalf("seed %d δ=%s: dominator %s missing from long path %v (len %s)",
							seed, delta, c.Net(d).Name, delay.PathNames(c, p), p.Length)
					}
				}
			}
			// And the distances must bound the path suffixes: for every
			// long path, the delay from the dominator to the sink along
			// the path is ≤ the reported distance.
			for _, p := range paths {
				if p.Length < delta {
					continue
				}
				for di, d := range doms.Nets {
					suffix := waveform.Time(0)
					seen := false
					for i := 1; i < len(p.Nets); i++ {
						g := c.Gate(c.Net(p.Nets[i]).Driver)
						if p.Nets[i-1] == d {
							seen = true
						}
						if seen {
							suffix = suffix.Add(waveform.Time(g.Delay))
						}
					}
					if d == p.Nets[len(p.Nets)-1] {
						seen, suffix = true, 0
					}
					if seen && suffix > doms.Dist[di] {
						t.Fatalf("seed %d: dominator %s distance %s below path suffix %s",
							seed, c.Net(d).Name, doms.Dist[di], suffix)
					}
				}
			}
		}
	}
}

// TestDynamicCarriersSubsetOfStatic: after the plain fixpoint the
// dynamic carriers are contained in the static carriers (the domains
// only shrink below the structural bounds).
func TestDynamicCarriersSubsetOfStatic(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		c := randomCircuit(t, seed, 4, 14)
		sink := c.PrimaryOutputs()[0]
		a := delay.New(c)
		top := a.Arrival(sink)
		if top <= 2 {
			continue
		}
		delta := top.Sub(1)
		sys := constraint.New(c)
		sys.Narrow(sink, waveform.CheckOutput(delta))
		sys.ScheduleAll()
		if !sys.Fixpoint() {
			continue
		}
		static := StaticCarriers(c, a, sink, delta)
		dynamic, _ := DynamicCarriers(sys, sink, delta)
		for n := 0; n < c.NumNets(); n++ {
			if dynamic[n] && !static[n] {
				t.Fatalf("seed %d: net %s dynamic carrier but not static",
					seed, c.Net(circuit.NetID(n)).Name)
			}
		}
	}
}

// TestDynamicDominatorsIncludeStatic: the dynamic-carrier circuit is a
// subgraph of the static one, so every static dominator remains on all
// dynamic paths — the dynamic dominator set can only grow.
func TestDynamicDominatorsIncludeStatic(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		c := randomCircuit(t, seed, 4, 12)
		sink := c.PrimaryOutputs()[0]
		a := delay.New(c)
		top := a.Arrival(sink)
		if top <= 2 {
			continue
		}
		delta := top
		sys := constraint.New(c)
		sys.Narrow(sink, waveform.CheckOutput(delta))
		sys.ScheduleAll()
		if !sys.Fixpoint() {
			continue
		}
		staticD := Static(c, a, sink, delta)
		dynD := Dynamic(sys, sink, delta)
		dyn := map[circuit.NetID]bool{}
		for _, n := range dynD.Nets {
			dyn[n] = true
		}
		for _, n := range staticD.Nets {
			if !dyn[n] {
				t.Fatalf("seed %d: static dominator %s not in dynamic set", seed, c.Net(n).Name)
			}
		}
	}
}
