// Package dom implements the global timing implications of Section 4
// of the paper: static carriers and static timing dominators
// (Definitions 4–6, Lemma 3) and dynamic carriers, dynamic distances
// and dynamic timing dominators (Definitions 7–9, Theorem 3,
// Corollary 1). Dominators are the nets lying on every
// sufficiently-long path to the checked output; their domains can be
// narrowed to waveforms that still transition late enough, which is the
// paper's main weapon against the pessimism of local narrowing.
package dom

import (
	"sort"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/delay"
	"repro/internal/waveform"
)

// Dominators lists the timing dominators of a check in order from the
// checked output towards the inputs, with the distance bound used for
// Corollary-1 narrowing: waveforms on Nets[i] stable at and after
// (δ − Dist[i]) are σ-incompatible.
type Dominators struct {
	Nets []circuit.NetID
	Dist []waveform.Time
}

// dominatorsOfT computes the dominators of the terminal vertex T in the
// carrier DAG Ψ′ (Definition 6): vertices are the carrier nets plus T,
// edges run from each gate output to its carrier inputs, and every
// carrier with no carrier predecessor (primary inputs of Ψ) feeds T.
// The result is the idom chain of T excluding T itself, i.e. the nets
// on every path from the source (the checked output) to T, ordered from
// the source down.
func dominatorsOfT(c *circuit.Circuit, carrier []bool, sink circuit.NetID) []circuit.NetID {
	if !carrier[sink] {
		return nil
	}
	// Order carrier nets topologically for Ψ′: decreasing circuit
	// level puts the sink first and every edge y→x forward.
	var verts []circuit.NetID
	for n := range carrier {
		if carrier[n] {
			verts = append(verts, circuit.NetID(n))
		}
	}
	sort.Slice(verts, func(i, j int) bool {
		li, lj := c.Level(verts[i]), c.Level(verts[j])
		if li != lj {
			return li > lj
		}
		return verts[i] < verts[j]
	})
	if verts[0] != sink {
		// The sink must be the unique source of Ψ′; carriers outside
		// its fan-in cone would violate the construction.
		return nil
	}
	const tVertex = -1 // ord position of T is len(verts); idom index -1 = unset
	ord := make([]int32, len(carrier))
	for i, v := range verts {
		ord[v] = int32(i)
	}
	nT := len(verts) // T's position
	idom := make([]int, len(verts)+1)
	for i := range idom {
		idom[i] = tVertex
	}
	idom[0] = 0 // source's idom is itself

	intersect := func(a, b int) int {
		for a != b {
			for a > b {
				a = idom[a]
			}
			for b > a {
				b = idom[b]
			}
		}
		return a
	}

	// Predecessors in Ψ′ of a carrier net x: the carrier outputs of the
	// gates x feeds. Predecessors of T: carriers with no carrier
	// gate-input (primary inputs of Ψ and conservative dead ends).
	var tPreds []int
	for i := 1; i < len(verts); i++ {
		x := verts[i]
		best := tVertex
		for _, g := range c.Net(x).Fanout {
			y := c.Gate(g).Output
			if !carrier[y] {
				continue
			}
			p := int(ord[y])
			if idom[p] == tVertex && p != 0 {
				continue // unreachable from the source; skip
			}
			if best == tVertex {
				best = p
			} else {
				best = intersect(best, p)
			}
		}
		idom[i] = best
	}
	for i, x := range verts {
		hasCarrierInput := false
		if d := c.Net(x).Driver; d != circuit.InvalidGate {
			for _, in := range c.Gate(d).Inputs {
				if carrier[in] {
					hasCarrierInput = true
					break
				}
			}
		}
		if !hasCarrierInput {
			if i == 0 || idom[i] != tVertex {
				tPreds = append(tPreds, i)
			}
		}
	}
	if len(tPreds) == 0 {
		return nil
	}
	best := tPreds[0]
	for _, p := range tPreds[1:] {
		best = intersect(best, p)
	}
	idom[nT] = best

	// Walk T's idom chain up to the source.
	var doms []circuit.NetID
	for v := idom[nT]; ; v = idom[v] {
		doms = append(doms, verts[v])
		if v == 0 {
			break
		}
	}
	// Reverse to source-first order.
	for i, j := 0, len(doms)-1; i < j; i, j = i+1, j-1 {
		doms[i], doms[j] = doms[j], doms[i]
	}
	return doms
}

// Static computes the static timing dominators of the check
// (c, sink, δ) with the Lemma-3 distance bound top_{d→s}.
func Static(c *circuit.Circuit, a *delay.Analysis, sink circuit.NetID, delta waveform.Time) Dominators {
	carrier := delay.StaticCarrierMask(c, a, sink, delta)
	nets := dominatorsOfT(c, carrier, sink)
	toSink := delay.ToNet(c, sink)
	d := Dominators{Nets: nets}
	for _, n := range nets {
		d.Dist = append(d.Dist, toSink[n])
	}
	return d
}

// StaticCarriers exposes the static carrier mask (Definition 4) for
// reports and tests.
func StaticCarriers(c *circuit.Circuit, a *delay.Analysis, sink circuit.NetID, delta waveform.Time) []bool {
	return delay.StaticCarrierMask(c, a, sink, delta)
}

// DynamicCarriers computes the dynamic carriers of the check and their
// dynamic distances from the current domains of the constraint system
// (Definitions 7–8): a net qualifies through gate g feeding carrier y
// at distance k when its domain still contains waveforms with a
// transition at or after δ − (k + d_max(g)); its dynamic distance is
// the largest such k′.
func DynamicCarriers(sys *constraint.System, sink circuit.NetID, delta waveform.Time) (mask []bool, dist []waveform.Time) {
	c := sys.Circuit()
	return DynamicCarriersInto(make([]bool, c.NumNets()), make([]waveform.Time, c.NumNets()), sys, sink, delta)
}

// DynamicCarriersInto is DynamicCarriers writing into caller-provided
// slices (len == NumNets), for allocation-free inner loops.
func DynamicCarriersInto(mask []bool, dist []waveform.Time, sys *constraint.System, sink circuit.NetID, delta waveform.Time) ([]bool, []waveform.Time) {
	c := sys.Circuit()
	for i := range mask {
		mask[i] = false
	}
	for i := range dist {
		dist[i] = waveform.NegInf
	}
	if sys.Domain(sink).IsEmpty() {
		return mask, dist
	}
	mask[sink] = true
	dist[sink] = 0
	topo := c.TopoGates()
	for i := len(topo) - 1; i >= 0; i-- {
		g := c.Gate(topo[i])
		y := g.Output
		if !mask[y] {
			continue
		}
		kp := dist[y].Add(waveform.Time(g.Delay))
		for _, x := range g.Inputs {
			if dist[x] >= kp {
				continue
			}
			if sys.Domain(x).HasTransitionAtOrAfter(delta.Sub(kp)) {
				mask[x] = true
				dist[x] = kp
			}
		}
	}
	return mask, dist
}

// Dynamic computes the dynamic timing dominators of the check under the
// system's current domains, with the Theorem-3 distance bound (the
// dynamic distance).
func Dynamic(sys *constraint.System, sink circuit.NetID, delta waveform.Time) Dominators {
	mask, dist := DynamicCarriers(sys, sink, delta)
	return FromCarriers(sys.Circuit(), mask, dist, sink)
}

// FromCarriers computes the timing dominators from an already-computed
// carrier mask and distance vector (avoids recomputing the carriers
// when the caller has them).
func FromCarriers(c *circuit.Circuit, mask []bool, dist []waveform.Time, sink circuit.NetID) Dominators {
	nets := dominatorsOfT(c, mask, sink)
	d := Dominators{Nets: nets}
	for _, n := range nets {
		d.Dist = append(d.Dist, dist[n])
	}
	return d
}

// MapNets returns the dominator set with every net id passed through
// the translation table m (e.g. a cone slice's FromCone map);
// distances are unchanged. Used to report dominators found on a cone
// slice in original-circuit ids.
func (d Dominators) MapNets(m []circuit.NetID) Dominators {
	if len(d.Nets) == 0 {
		return Dominators{}
	}
	out := Dominators{
		Nets: make([]circuit.NetID, len(d.Nets)),
		Dist: append([]waveform.Time(nil), d.Dist...),
	}
	for i, n := range d.Nets {
		out.Nets[i] = m[n]
	}
	return out
}

// NarrowDominators applies Corollary 1: for every dominator d at
// distance k, intersect its domain with waveforms transitioning at or
// after δ − k. It reports whether any domain changed (callers then
// resume the fixpoint).
func NarrowDominators(sys *constraint.System, doms Dominators, delta waveform.Time) bool {
	changed := false
	for i, n := range doms.Nets {
		cut := delta.Sub(doms.Dist[i])
		if sys.Narrow(n, waveform.CheckOutput(cut)) {
			changed = true
		}
	}
	return changed
}
