package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/dom"
	"repro/internal/waveform"
)

// Budgets bounds the work one check may perform. A zero field inherits
// the corresponding Options value; a negative field means unlimited.
// Budget exhaustion yields Abandoned (the paper's "A") — the check gave
// up, the question is still open — whereas a deadline or context
// cancellation yields Cancelled (see Request).
type Budgets struct {
	// MaxBacktracks bounds the case-analysis search.
	MaxBacktracks int
	// MaxStemSplits caps the stems correlated per check.
	MaxStemSplits int
	// MaxPropagations bounds total gate-constraint applications across
	// all stages of the check. Options has no counterpart; 0 here means
	// unlimited.
	MaxPropagations int64
}

// Request describes one unit of work for Verifier.Run: a single timing
// check (Sink, Delta), or — via RunAll — the whole-circuit sweep at
// Delta. The zero value of every optional field is the fast path:
// no deadline, no budgets beyond the verifier Options, no tracer.
type Request struct {
	// Sink is the net to check. RunAll ignores it.
	Sink circuit.NetID
	// Delta is the timing-check threshold δ.
	Delta waveform.Time

	// Deadline, when non-zero, is an absolute wall-clock bound on the
	// check; past it the check returns Cancelled within a poll interval
	// (sub-millisecond at engine propagation rates). The context passed
	// to Run is honoured the same way, so ctx deadlines/cancellation
	// and this field compose; whichever fires first wins.
	Deadline time.Time

	// Budgets bounds the check's work; zero fields inherit Options.
	Budgets Budgets

	// Tracer observes the pipeline. nil (the default) costs nothing.
	Tracer Tracer

	// VerifyOnly runs only the verify() procedure of Figure 4 —
	// fixpoint plus global implications, no stem correlation or case
	// analysis — and reports NoViolation or PossibleViolation.
	VerifyOnly bool

	// Workers fans RunAll's per-output checks over this many
	// goroutines; 0 means GOMAXPROCS, 1 forces the serial sweep. Run
	// ignores it (a single check is sequential).
	Workers int

	// PprofLabels tags each per-output goroutine of a parallel RunAll
	// with a pprof label ("ltta_po" = output name) so CPU profiles
	// attribute time to individual checks.
	PprofLabels bool

	// Arena, when non-nil, backs the returned reports with
	// caller-owned reusable storage; see ReportArena for the ownership
	// contract. nil (the default) allocates fresh reports the caller
	// owns outright.
	Arena *ReportArena
}

// runState threads the per-check cancellation, budget, and tracing
// state through the pipeline stages. The zero value (no context, no
// deadline, no budgets, no tracer) is the free path.
type runState struct {
	ctx         context.Context // nil when not cancellable
	deadline    time.Time
	hasDeadline bool
	maxProps    int64
	maxBack     int
	maxSplits   int
	tracer      Tracer

	cancelled bool // context cancelled or deadline exceeded
	exhausted bool // propagation budget exhausted
}

// resolveBudget merges a request budget with the Options default:
// 0 inherits, negative means unlimited.
func resolveBudget(req, opt int) int {
	switch {
	case req < 0:
		return 0
	case req > 0:
		return req
	}
	return opt
}

func (v *Verifier) initRunState(rs *runState, ctx context.Context, req *Request) {
	*rs = runState{
		maxBack:   resolveBudget(req.Budgets.MaxBacktracks, v.opts.MaxBacktracks),
		maxSplits: resolveBudget(req.Budgets.MaxStemSplits, v.opts.MaxStemSplits),
		tracer:    req.Tracer,
	}
	if req.Budgets.MaxPropagations > 0 {
		rs.maxProps = req.Budgets.MaxPropagations
	}
	if ctx != nil && ctx.Done() != nil {
		rs.ctx = ctx
	}
	if !req.Deadline.IsZero() {
		rs.deadline = req.Deadline
		rs.hasDeadline = true
	}
}

// attach installs the stop poll on the constraint system when the
// request can actually stop early; otherwise the system keeps its
// zero-overhead nil stop function.
func (rs *runState) attach(sys *constraint.System) {
	if rs.ctx == nil && !rs.hasDeadline && rs.maxProps == 0 {
		return
	}
	sys.SetStopFunc(func() bool {
		if rs.maxProps > 0 && sys.Propagations >= rs.maxProps {
			rs.exhausted = true
			return true
		}
		if rs.ctx != nil {
			select {
			case <-rs.ctx.Done():
				rs.cancelled = true
				return true
			default:
			}
		}
		if rs.hasDeadline && !time.Now().Before(rs.deadline) {
			rs.cancelled = true
			return true
		}
		return false
	})
}

// stopVerdict translates an interrupted solver into the check verdict:
// Cancelled for deadline/context, Abandoned for budget exhaustion.
func (rs *runState) stopVerdict() Result {
	if rs.cancelled {
		return Cancelled
	}
	return Abandoned
}

// stoppedNow reports an already-expired request before any work starts
// (cancelled context or past deadline), so Run returns Cancelled
// immediately instead of after the first poll interval.
func (rs *runState) stoppedNow() bool {
	if rs.ctx != nil {
		select {
		case <-rs.ctx.Done():
			rs.cancelled = true
			return true
		default:
		}
	}
	if rs.hasDeadline && !time.Now().Before(rs.deadline) {
		rs.cancelled = true
		return true
	}
	return false
}

// Run executes the timing check described by req under ctx — the
// engine's single entry point. The pipeline is the paper's: plain
// fixpoint, global implications on timing dominators plus learning,
// stem correlation, then case analysis, stopping at the first stage
// that proves NoViolation. Cancellation (ctx or req.Deadline) returns
// a report with Final == Cancelled within a poll interval; budget
// exhaustion returns Abandoned. Check, VerifyOnly, CheckAll, and
// CheckAllParallel are thin wrappers over Run/RunAll.
//
// With Options.UseConeSlicing the check is solved on the sink's
// fan-in cone slice (cached per sink on the shared Prepared) and the
// report — sink, witness, dominator set, trace events — is translated
// back to original-circuit ids; see runCone. Sinks whose cone spans
// the whole circuit solve on the original system directly.
func (v *Verifier) Run(ctx context.Context, req Request) *Report {
	if req.Arena != nil {
		req.Arena.begin()
	}
	return v.dispatch(ctx, req)
}

// dispatch routes the check to its cone sub-verifier or the
// whole-circuit solver without restarting the request's arena — the
// serial sweep calls it once per output inside a single arena cycle.
func (v *Verifier) dispatch(ctx context.Context, req Request) *Report {
	if v.opts.UseConeSlicing && v.prep != nil {
		if cv := v.coneFor(req.Sink); cv != nil {
			return v.runCone(ctx, req, cv)
		}
	}
	return v.run(ctx, req)
}

// run solves the check on this verifier's own circuit (the whole
// circuit, or a cone slice when called from runCone).
func (v *Verifier) run(ctx context.Context, req Request) *Report {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	var rs *runState
	var rep *Report
	if req.Arena != nil {
		rs = &req.Arena.rs
		rep = req.Arena.report()
	} else {
		rs = new(runState)
		rep = new(Report)
	}
	v.initRunState(rs, ctx, &req)
	*rep = Report{
		Sink: req.Sink, Delta: req.Delta,
		AfterGITD: StageSkipped, AfterStem: StageSkipped, CaseAnalysis: StageSkipped,
		Backtracks: -1, Started: start,
	}
	if rs.tracer != nil {
		rs.tracer.CheckStart(req.Sink, req.Delta)
	}

	finish := func(sys *constraint.System, final Result) *Report {
		rep.Final = final
		if sys != nil {
			rep.Propagations = sys.Propagations
			rep.Stats.Narrowings = sys.Narrowings
			rep.Stats.QueueHighWater = sys.QueueHighWater()
		}
		rep.Elapsed = time.Since(start)
		recordCheck(rep)
		if rs.tracer != nil {
			rs.tracer.CheckDone(rep)
		}
		return rep
	}

	if rs.stoppedNow() {
		return finish(nil, Cancelled)
	}

	// Warm-start: try the sink's memo (see warm.go). Static dominators
	// narrow δ-specific state before the fixpoint, which would poison a
	// seed recorded for a different δ, so they force the cold path.
	// TryLock keeps concurrent same-sink checks independent: the loser
	// solves cold and leaves the memo alone.
	// The memo consultation happens inside the TryLock branch so every
	// guarded-field read is lexically under the lock (the deferred
	// Unlock holds it for the rest of the check, covering the memo
	// writes in stage 1 below).
	var ws *warmState
	var seedSnap []int64
	warmRefuted, seeded := false, false
	if v.opts.UseWarmStart && !v.opts.UseStaticDominators {
		if w := v.warmFor(req.Sink); w.mu.TryLock() {
			ws = w
			defer w.mu.Unlock()
			switch {
			case w.inconsValid && req.Delta >= w.inconsDelta:
				// A stage-1 refutation at a smaller δ refutes this δ
				// outright.
				warmRefuted = true
			case w.snapValid && req.Delta >= w.snapDelta:
				seedSnap = w.snap
				seeded = true
			}
		}
	}

	var sys *constraint.System
	switch {
	case warmRefuted:
	case seeded:
		// Seed from the adjacent fixpoint: the snapshot is already a
		// fixpoint, so narrowing the sink re-schedules only its
		// adjacent constraints and propagation resumes from there.
		sys = ws.system(v.c)
		sys.Restore(seedSnap)
		rs.attach(sys)
		sys.Narrow(req.Sink, waveform.CheckOutput(req.Delta))
	default:
		// Cold solve (no seed, δ moved backwards, or warm-start off).
		// A memo holder still reuses the memo's system — Reset keeps
		// the arena allocations — so the sweep stays allocation-free.
		if ws != nil {
			sys = ws.system(v.c)
			sys.Reset()
		} else {
			sys = constraint.New(v.c)
		}
		rs.attach(sys)
		sys.Narrow(req.Sink, waveform.CheckOutput(req.Delta))
		sys.ScheduleAll()
		if v.opts.UseStaticDominators {
			doms := dom.Static(v.c, v.analysis, req.Sink, req.Delta)
			dom.NarrowDominators(sys, doms, req.Delta)
		}
	}

	// stage brackets a pipeline stage with tracing and timing.
	stage := func(st Stage, f func() Result) Result {
		if rs.tracer != nil {
			rs.tracer.StageEnter(st)
		}
		stageStart := time.Now()
		res := f()
		elapsed := time.Since(stageStart)
		rep.Stats.StageTime[st] = elapsed
		if rs.tracer != nil {
			rs.tracer.StageExit(st, res, elapsed)
		}
		return res
	}

	// Stage 1: plain constraint evaluation. A completed fixpoint (or
	// refutation) feeds the sink's memo for the next δ; an interrupted
	// solve records nothing.
	res := stage(StagePlain, func() Result {
		if warmRefuted {
			return NoViolation
		}
		if !sys.Fixpoint() {
			if ws != nil {
				ws.noteRefuted(req.Delta)
			}
			return NoViolation
		}
		if sys.Stopped() {
			return rs.stopVerdict()
		}
		if ws != nil {
			ws.noteFixpoint(sys, req.Delta)
		}
		return PossibleViolation
	})
	rep.BeforeGITD = res
	if res != PossibleViolation {
		return finish(sys, res)
	}

	if req.VerifyOnly {
		if !v.opts.UseDominators && !v.opts.UseLearning {
			return finish(sys, PossibleViolation)
		}
		res = stage(StageGITD, func() Result { return v.evaluate(rs, sys, req.Sink, req.Delta, rep) })
		rep.AfterGITD = res
		return finish(sys, res)
	}

	// Stage 2: global implications (dominators + learning).
	if v.opts.UseDominators || v.opts.UseLearning {
		res = stage(StageGITD, func() Result { return v.evaluate(rs, sys, req.Sink, req.Delta, rep) })
		rep.AfterGITD = res
		if res != PossibleViolation {
			return finish(sys, res)
		}
	}

	// Stage 3: stem correlation.
	if v.opts.UseStemCorrelation {
		res = stage(StageStem, func() Result { return v.stemCorrelation(rs, sys, req.Sink, req.Delta, rep) })
		rep.AfterStem = res
		if res != PossibleViolation {
			return finish(sys, res)
		}
	}

	// Stage 4: case analysis.
	res = stage(StageCase, func() Result { return v.caseAnalysis(rs, sys, req.Sink, req.Delta, rep) })
	rep.CaseAnalysis = res
	return finish(sys, res)
}

// RunAll runs the timing check (o, req.Delta) for every primary output
// o under ctx and aggregates the verdicts as in Table 1. req.Sink is
// ignored. With req.Workers != 1 the per-output checks fan out over
// req.Workers goroutines (0 = GOMAXPROCS); the aggregate is
// deterministic either way — identical to the serial sweep — because
// checks are independent and deterministic, verdicts merge in
// primary-output order, and once a witness is found every check on a
// later output is cancelled and discarded exactly as the serial sweep
// never would have started it.
func (v *Verifier) RunAll(ctx context.Context, req Request) *CircuitReport {
	if ctx == nil {
		ctx = context.Background()
	}
	pos := v.c.PrimaryOutputs()
	workers := req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pos) {
		workers = len(pos)
	}
	if workers <= 1 {
		if req.Arena != nil {
			req.Arena.begin()
		}
		return v.runAllSerial(ctx, req)
	}
	// Parallel checks cannot share one arena; allocate as if none were
	// passed (see ReportArena).
	req.Arena = nil
	return v.runAllParallel(ctx, req, workers)
}

func (v *Verifier) runAllSerial(ctx context.Context, req Request) *CircuitReport {
	pos := v.c.PrimaryOutputs()
	a := req.Arena
	var reports []*Report
	if a != nil {
		reports = a.sweep[:0]
	}
	for _, po := range pos {
		r := req
		r.Sink = po
		rep := v.dispatch(ctx, r)
		reports = append(reports, rep)
		if rep.Final == ViolationFound || rep.Final == Cancelled {
			break // a single witness decides the circuit check
		}
	}
	if a != nil {
		a.sweep = reports
		cr := aggregateCircuit(&a.cr, a.perOut, req.Delta, reports)
		a.perOut = cr.PerOutput
		return cr
	}
	return AggregateCircuit(req.Delta, reports)
}

// runAllParallel fans the per-output checks over workers goroutines.
// When a check witnesses a violation, all checks on later outputs are
// cancelled (their results cannot change the first-PO-wins aggregate);
// checks on earlier outputs keep running because a smaller witness
// index would supersede. The kept prefix of reports — up to and
// including the smallest witnessing output — is exactly the sequence
// the serial sweep produces.
func (v *Verifier) runAllParallel(ctx context.Context, req Request, workers int) *CircuitReport {
	pos := v.c.PrimaryOutputs()
	reports := make([]*Report, len(pos))

	var mu sync.Mutex
	witness := len(pos) // smallest witnessing index seen so far
	cancels := make([]context.CancelFunc, len(pos))

	// abandonAfter cancels every running check on an output after idx.
	abandonAfter := func(idx int) {
		for j := idx + 1; j < len(cancels); j++ {
			if cancels[j] != nil {
				cancels[j]()
			}
		}
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				if i > witness {
					mu.Unlock()
					continue // a smaller output already witnessed
				}
				cctx, cancel := context.WithCancel(ctx)
				cancels[i] = cancel
				mu.Unlock()

				r := req
				r.Sink = pos[i]
				var rep *Report
				if req.PprofLabels {
					pprof.Do(cctx, pprof.Labels("ltta_po", v.c.Net(pos[i]).Name), func(lctx context.Context) {
						rep = v.Run(lctx, r)
					})
				} else {
					rep = v.Run(cctx, r)
				}

				mu.Lock()
				cancels[i] = nil
				reports[i] = rep
				if rep.Final == ViolationFound && i < witness {
					witness = i
					abandonAfter(i)
				}
				mu.Unlock()
				cancel()
			}
		}()
	}
	for i := range pos {
		next <- i
	}
	close(next)
	wg.Wait()

	// Keep the serial prefix: everything up to the smallest witnessing
	// output (or everything when no witness). Reports after the witness
	// — completed or cancelled — are discarded, matching the serial
	// sweep that never runs them.
	kept := reports
	if witness < len(pos) {
		kept = reports[:witness+1]
	}
	return AggregateCircuit(req.Delta, kept)
}

// AggregateCircuit merges per-output reports (in primary-output order)
// into the Table-1 aggregate. RunAll passes the serial prefix — every
// report up to and including the first witnessing output — so the
// serial and parallel sweeps are identical by construction; external
// sweep drivers (the lttad service) may pass the full per-output list
// when they check every output exhaustively, in which case the
// aggregate still reports the first witnessing output and sums the
// counters over everything that ran.
func AggregateCircuit(delta waveform.Time, reports []*Report) *CircuitReport {
	return aggregateCircuit(new(CircuitReport), nil, delta, reports)
}

// aggregateCircuit is AggregateCircuit into caller-provided storage:
// cr is overwritten and perOut[:0] becomes its PerOutput backing (nil
// allocates normally).
func aggregateCircuit(cr *CircuitReport, perOut []*Report, delta waveform.Time, reports []*Report) *CircuitReport {
	*cr = CircuitReport{Delta: delta, WitnessOutput: -1,
		BeforeGITD: NoViolation, AfterGITD: StageSkipped, AfterStem: StageSkipped,
		CaseAnalysis: StageSkipped, Final: NoViolation,
		PerOutput: perOut[:0]}
	anyAbandoned := false
	anyCancelled := false
	caRan := false
	caOpen := false // a CA run was interrupted before concluding
	for i, rep := range reports {
		cr.PerOutput = append(cr.PerOutput, rep)
		if rep.BeforeGITD != NoViolation {
			cr.BeforeGITD = PossibleViolation
		}
		cr.AfterGITD = mergeStage(cr.AfterGITD, rep.AfterGITD)
		cr.AfterStem = mergeStage(cr.AfterStem, rep.AfterStem)
		if rep.CaseAnalysis != StageSkipped {
			caRan = true
			if rep.CaseAnalysis == Cancelled {
				caOpen = true
			}
			if rep.Backtracks > 0 {
				cr.Backtracks += rep.Backtracks
			}
		}
		cr.Propagations += rep.Propagations
		cr.Dominators += rep.Dominators
		cr.DominatorRounds += rep.DominatorRounds
		switch rep.Final {
		case ViolationFound:
			if cr.WitnessOutput < 0 {
				cr.WitnessOutput = i
				cr.CaseAnalysis = ViolationFound
				cr.Final = ViolationFound
			}
		case Abandoned:
			anyAbandoned = true
		case Cancelled:
			anyCancelled = true
		}
	}
	if cr.Final != ViolationFound {
		switch {
		case anyCancelled:
			// A cancellation mid-case-analysis leaves that stage's question
			// open; CA runs that concluded on other outputs still merge N.
			switch {
			case caOpen:
				cr.CaseAnalysis = PossibleViolation
			case caRan:
				cr.CaseAnalysis = NoViolation
			}
			cr.Final = Cancelled
		case anyAbandoned:
			cr.CaseAnalysis = Abandoned
			cr.Final = Abandoned
		case caRan:
			cr.CaseAnalysis = NoViolation
		}
	}
	return cr
}
