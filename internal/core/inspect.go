package core

import (
	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/waveform"
)

// SystemAfterFixpoint builds the constraint system of the timing check
// (sink, δ), runs the plain fixpoint, and returns it for inspection
// (dominator analysis, domain dumps). The verifier's acceleration
// options are deliberately not applied — the caller gets the state the
// paper's examples print after the basic evaluation.
func (v *Verifier) SystemAfterFixpoint(sink circuit.NetID, delta waveform.Time) *constraint.System {
	sys := constraint.New(v.c)
	sys.Narrow(sink, waveform.CheckOutput(delta))
	sys.ScheduleAll()
	sys.Fixpoint()
	return sys
}

// DomainsAfterFixpoint returns a copy of every net's domain after the
// plain fixpoint of the check (sink, δ), indexed by NetID.
func (v *Verifier) DomainsAfterFixpoint(sink circuit.NetID, delta waveform.Time) []waveform.Signal {
	sys := v.SystemAfterFixpoint(sink, delta)
	out := make([]waveform.Signal, v.c.NumNets())
	for i := range out {
		out[i] = sys.Domain(circuit.NetID(i))
	}
	return out
}
