package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/waveform"
)

// hardCase returns a check that takes tens of seconds undisturbed: the
// NOR-mapped 8x8 array multiplier's top output at a δ just inside the
// violable region, with an effectively unlimited backtrack budget (the
// Table-1 c6288 blow-up).
func hardCase(t testing.TB) (*Verifier, circuit.NetID, waveform.Time) {
	t.Helper()
	c, err := circuit.MapToNOR(gen.ArrayMultiplier(8, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	opts := Default()
	opts.MaxBacktracks = 1 << 30
	v := NewVerifier(c, opts)
	pos := c.PrimaryOutputs()
	po := pos[len(pos)-1]
	// Build the sink's cone slice up front: first-call cone
	// construction costs ~10ms under -race, which would eat a short
	// deadline before the solve these tests are cancelling even starts.
	v.coneFor(po)
	return v, po, v.analysis.Arrival(po).Sub(60)
}

func TestRunDeadlineCancelsPromptly(t *testing.T) {
	v, po, delta := hardCase(t)
	start := time.Now()
	rep := v.Run(context.Background(), Request{
		Sink: po, Delta: delta,
		Deadline: time.Now().Add(10 * time.Millisecond),
	})
	elapsed := time.Since(start)
	if rep.Final != Cancelled {
		t.Fatalf("hard check under a 10ms deadline: got %s, want C", rep.Final)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms", elapsed)
	}
	if rep.Elapsed <= 0 || rep.Propagations == 0 {
		t.Fatalf("cancelled report should still carry counters: %+v", rep)
	}
}

func TestRunContextCancelDuringCheck(t *testing.T) {
	v, po, delta := hardCase(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep := v.Run(ctx, Request{Sink: po, Delta: delta})
	if rep.Final != Cancelled {
		t.Fatalf("got %s, want C", rep.Final)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms", elapsed)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Default())
	s, _ := c.NetByName("s")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep := v.Run(ctx, Request{Sink: s, Delta: 60})
	if rep.Final != Cancelled {
		t.Fatalf("pre-cancelled ctx: got %s, want C", rep.Final)
	}
	if rep.Propagations != 0 {
		t.Fatalf("pre-cancelled ctx must not start solving, did %d propagations", rep.Propagations)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("immediate cancel took %v", elapsed)
	}
}

func TestRunPropagationBudgetAbandons(t *testing.T) {
	v, po, delta := hardCase(t)
	const limit = 50_000
	rep := v.Run(context.Background(), Request{
		Sink: po, Delta: delta,
		Budgets: Budgets{MaxPropagations: limit},
	})
	if rep.Final != Abandoned {
		t.Fatalf("propagation budget: got %s, want A", rep.Final)
	}
	// The poll runs every few hundred propagations, so the overshoot is
	// bounded by one interval (plus stage-boundary slack).
	if rep.Propagations < limit || rep.Propagations > limit+10_000 {
		t.Fatalf("stopped at %d propagations, want just past %d", rep.Propagations, limit)
	}
}

func TestRunBacktrackBudgetViaRequest(t *testing.T) {
	v, po, delta := hardCase(t)
	rep := v.Run(context.Background(), Request{
		Sink: po, Delta: delta,
		Budgets: Budgets{MaxBacktracks: 50},
	})
	if rep.Final != Abandoned {
		t.Fatalf("backtrack budget: got %s, want A", rep.Final)
	}
	if rep.Backtracks != 51 {
		t.Fatalf("abandoned after %d backtracks, want budget+1 = 51", rep.Backtracks)
	}
}

// TestRunMatchesCheck pins the compatibility wrappers to the Run path:
// identical verdicts, counters, and witnesses on the Figure-1 circuit.
// Each arm gets a fresh verifier off the shared Prepared because the
// comparison includes work counters, which warm-start memos (scoped per
// verifier) legitimately reduce on repeat checks of the same sink.
func TestRunMatchesCheck(t *testing.T) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	prep := Prepare(c)
	for _, delta := range []waveform.Time{61, 60} {
		direct := prep.NewVerifier(Default()).Run(context.Background(), Request{Sink: s, Delta: delta})
		wrapped := prep.NewVerifier(Default()).Check(s, delta)
		if canonicalReport(direct) != canonicalReport(wrapped) {
			t.Fatalf("δ=%s:\n run:   %s\n check: %s", delta, canonicalReport(direct), canonicalReport(wrapped))
		}
	}
	v := prep.NewVerifier(Default())
	if got := v.Run(context.Background(), Request{Sink: s, Delta: 61, VerifyOnly: true}).Final; got != NoViolation {
		t.Fatalf("VerifyOnly Run(61) = %s", got)
	}
	if got := v.VerifyOnly(s, 60); got != PossibleViolation {
		t.Fatalf("VerifyOnly(60) = %s", got)
	}
}

// canonicalReport renders the deterministic fields of a report (wall
// clock excluded).
func canonicalReport(r *Report) string {
	return fmt.Sprintf("sink=%d δ=%s %s|%s|%s|%s final=%s bt=%d wit=%v@%s dom=%d domrounds=%d props=%d narrow=%d qhw=%d dec=%d splits=%d",
		r.Sink, r.Delta, r.BeforeGITD, r.AfterGITD, r.AfterStem, r.CaseAnalysis,
		r.Final, r.Backtracks, r.Witness, r.WitnessSettle,
		r.Dominators, r.DominatorRounds, r.Propagations,
		r.Stats.Narrowings, r.Stats.QueueHighWater, r.Stats.Decisions, r.Stats.StemSplits)
}

// canonicalCircuit renders the deterministic fields of a circuit
// aggregate, including every kept per-output report.
func canonicalCircuit(cr *CircuitReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "δ=%s %s|%s|%s|%s final=%s bt=%d wo=%d props=%d dom=%d domrounds=%d\n",
		cr.Delta, cr.BeforeGITD, cr.AfterGITD, cr.AfterStem, cr.CaseAnalysis,
		cr.Final, cr.Backtracks, cr.WitnessOutput,
		cr.Propagations, cr.Dominators, cr.DominatorRounds)
	for _, r := range cr.PerOutput {
		fmt.Fprintf(&b, "  %s\n", canonicalReport(r))
	}
	return b.String()
}

// TestRunAllParallelIdenticalToSerial asserts the headline determinism
// property: Run-based parallel sweeps produce aggregates identical to
// the serial CheckAll, on both refutation sweeps and witness sweeps
// (where sibling cancellation must discard exactly the checks the
// serial sweep never starts). Run with -race in CI.
func TestRunAllParallelIdenticalToSerial(t *testing.T) {
	cases := []struct {
		name  string
		c     *circuit.Circuit
		delta func(v *Verifier) waveform.Time
	}{
		{"c17-refute", gen.C17(10), func(v *Verifier) waveform.Time { return 31 }},
		{"c17-witness", gen.C17(10), func(v *Verifier) waveform.Time { return 30 }},
		{"c880-refute", suiteCircuit(t, "c880"), func(v *Verifier) waveform.Time { return v.Topological().Add(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh verifier per sweep, sharing one Prepared: the
			// canonical strings include work counters, which a reused
			// verifier's warm-start memos legitimately shrink.
			prep := Prepare(tc.c)
			v := prep.NewVerifier(Default())
			delta := tc.delta(v)
			serial := canonicalCircuit(v.RunAll(context.Background(), Request{Delta: delta, Workers: 1}))
			for _, workers := range []int{0, 2, 4} {
				for rep := 0; rep < 3; rep++ {
					par := canonicalCircuit(prep.NewVerifier(Default()).RunAll(context.Background(), Request{Delta: delta, Workers: workers}))
					if par != serial {
						t.Fatalf("workers=%d differs from serial:\nserial:\n%s\nparallel:\n%s", workers, serial, par)
					}
				}
			}
		})
	}
}

func suiteCircuit(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	for _, e := range gen.SubstituteSuite() {
		if e.Name == name {
			return e.Circuit
		}
	}
	t.Fatalf("no suite circuit %s", name)
	return nil
}

// TestNilTracerVsStatsTracerEquivalence asserts tracing is purely
// observational: verdicts and counters with a StatsTracer installed
// are identical to the nil-tracer run, and the tracer totals agree
// with the report sums.
func TestNilTracerVsStatsTracerEquivalence(t *testing.T) {
	for _, name := range []string{"c17", "c432", "c880"} {
		c := suiteCircuit(t, name)
		prep := Prepare(c)
		res, err := prep.NewVerifier(Default()).CircuitFloatingDelay()
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range []waveform.Time{res.Delay.Add(1), res.Delay} {
			// Fresh verifier per arm: warm-start memos are per verifier
			// and the comparison includes work counters.
			plain := prep.NewVerifier(Default()).RunAll(context.Background(), Request{Delta: delta, Workers: 1})
			st := new(StatsTracer)
			traced := prep.NewVerifier(Default()).RunAll(context.Background(), Request{Delta: delta, Workers: 1, Tracer: st})
			if canonicalCircuit(plain) != canonicalCircuit(traced) {
				t.Fatalf("%s δ=%s: tracer changed results:\n%s\nvs\n%s",
					name, delta, canonicalCircuit(plain), canonicalCircuit(traced))
			}
			if st.Checks != len(traced.PerOutput) {
				t.Fatalf("%s: tracer saw %d checks, aggregate kept %d", name, st.Checks, len(traced.PerOutput))
			}
			if st.Propagations != traced.Propagations {
				t.Fatalf("%s: tracer propagations %d != aggregate %d", name, st.Propagations, traced.Propagations)
			}
			if int(st.Backtracks) != traced.Backtracks {
				t.Fatalf("%s: tracer backtracks %d != aggregate %d", name, st.Backtracks, traced.Backtracks)
			}
			var wantDec int64
			for _, r := range traced.PerOutput {
				wantDec += r.Stats.Decisions
			}
			if st.Decisions != wantDec {
				t.Fatalf("%s: tracer decisions %d != report sum %d", name, st.Decisions, wantDec)
			}
		}
	}
}

// TestCircuitReportSumsWork pins the stats-merge fix: the aggregate
// must sum propagations, dominators, and dominator rounds across the
// kept per-output reports, serial and parallel alike.
func TestCircuitReportSumsWork(t *testing.T) {
	c := suiteCircuit(t, "c432")
	prep := Prepare(c)
	for _, workers := range []int{1, 4} {
		// Fresh verifier per sweep so the second isn't a warm-start
		// no-op (the props>0 assertion needs real stage-1 work).
		v := prep.NewVerifier(Default())
		cr := v.RunAll(context.Background(), Request{Delta: v.Topological().Add(1), Workers: workers})
		var props int64
		var doms, rounds int
		for _, r := range cr.PerOutput {
			props += r.Propagations
			doms += r.Dominators
			rounds += r.DominatorRounds
		}
		if props == 0 {
			t.Fatal("expected some propagations")
		}
		if cr.Propagations != props || cr.Dominators != doms || cr.DominatorRounds != rounds {
			t.Fatalf("workers=%d: aggregate (%d,%d,%d) != sums (%d,%d,%d)",
				workers, cr.Propagations, cr.Dominators, cr.DominatorRounds, props, doms, rounds)
		}
	}
}

// TestRunAllDeadlineCancelsSweep checks the whole-circuit path honours
// deadlines and reports Cancelled.
func TestRunAllDeadlineCancelsSweep(t *testing.T) {
	v, _, delta := hardCase(t)
	for _, workers := range []int{1, 2} {
		start := time.Now()
		cr := v.RunAll(context.Background(), Request{
			Delta:    delta,
			Workers:  workers,
			Deadline: time.Now().Add(10 * time.Millisecond),
		})
		if cr.Final != Cancelled {
			t.Fatalf("workers=%d: got %s, want C", workers, cr.Final)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("workers=%d: sweep cancellation took %v", workers, elapsed)
		}
	}
}

// TestExactFloatingDelayCtxCancel checks the delay search returns its
// partial bracket plus an error on cancellation.
func TestExactFloatingDelayCtxCancel(t *testing.T) {
	v, po, _ := hardCase(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := v.ExactFloatingDelayCtx(ctx, po, Request{})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if res == nil || res.Exact {
		t.Fatalf("want an inexact partial result, got %+v", res)
	}
}

// TestCircuitFloatingDelayCtxPartial pins the documented contract: a
// cancelled circuit-wide delay sweep returns the partial bracket, not
// nil (a nil here crashed cmd/ltta -exact -timeout).
func TestCircuitFloatingDelayCtxPartial(t *testing.T) {
	v, _, _ := hardCase(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := v.CircuitFloatingDelayCtx(ctx, Request{})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if res == nil {
		t.Fatal("cancelled sweep must return the partial bracket, got nil")
	}
	if res.Exact {
		t.Fatalf("partial result claims exactness: %+v", res)
	}
}

// TestTraceWriterSmoke exercises both trace encodings end to end.
func TestTraceWriterSmoke(t *testing.T) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := NewVerifier(c, Default())
	var text, js strings.Builder
	tr := MultiTracer(NewTraceWriter(&text, c), NewJSONTraceWriter(&js, c), nil)
	rep := v.Run(context.Background(), Request{Sink: s, Delta: 60, Tracer: tr})
	if rep.Final != ViolationFound {
		t.Fatalf("got %s", rep.Final)
	}
	for _, want := range []string{"check", "stage", "check.done"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text trace missing %q:\n%s", want, text.String())
		}
	}
	if !strings.Contains(js.String(), `"ev":"check.done"`) {
		t.Fatalf("json trace missing check.done:\n%s", js.String())
	}
}

// TestStatsTracerConcurrent hammers one StatsTracer from a parallel
// sweep (meaningful under -race).
func TestStatsTracerConcurrent(t *testing.T) {
	c := suiteCircuit(t, "c880")
	v := NewVerifier(c, Default())
	st := new(StatsTracer)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.RunAll(context.Background(), Request{Delta: v.Topological().Add(1), Workers: 4, Tracer: st})
		}()
	}
	wg.Wait()
	if st.Checks != 2*len(c.PrimaryOutputs()) {
		t.Fatalf("tracer saw %d checks, want %d", st.Checks, 2*len(c.PrimaryOutputs()))
	}
}
