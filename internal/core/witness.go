package core

import (
	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// WitnessPath traces, for a witnessed violation, the sensitised path
// that carries the late transition: starting from the sink, it follows
// at each gate an input that determines the output's settle time under
// the witness vector (the controlling-final input that locks the gate,
// or the slowest input when none controls). The result runs from a
// primary input to the sink and its per-net settle times are
// non-decreasing — the dynamic counterpart of the static critical path.
func (v *Verifier) WitnessPath(sink circuit.NetID, vec sim.Vector) ([]circuit.NetID, error) {
	r, err := sim.Run(v.c, vec)
	if err != nil {
		return nil, err
	}
	path := []circuit.NetID{sink}
	n := sink
	for {
		drv := v.c.Net(n).Driver
		if drv == circuit.InvalidGate {
			break
		}
		g := v.c.Gate(drv)
		d := waveform.Time(g.Delay)
		want := r.Settle[n].Sub(d)
		ctrl, hasCtrl := g.Type.HasControlling()
		var pick circuit.NetID = circuit.InvalidNet
		// Prefer a controlling-final input that locks the gate at
		// exactly the settle time; otherwise any input whose settle
		// realises the max rule.
		if hasCtrl {
			for _, x := range g.Inputs {
				if r.Value[x] == ctrl && r.Settle[x] == want {
					pick = x
					break
				}
			}
		}
		if pick == circuit.InvalidNet {
			for _, x := range g.Inputs {
				if r.Settle[x] == want {
					pick = x
					break
				}
			}
		}
		if pick == circuit.InvalidNet {
			// Defensive: the settle recursion guarantees a justifying
			// input; fall back to the slowest.
			pick = g.Inputs[0]
			for _, x := range g.Inputs {
				if r.Settle[x] > r.Settle[pick] {
					pick = x
				}
			}
		}
		path = append(path, pick)
		n = pick
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}
