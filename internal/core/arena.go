package core

// ReportArena is caller-owned backing storage for the reports of
// serial checks and sweeps. With Request.Arena set, Run and a serial
// RunAll (Workers == 1) take their Report, CircuitReport, PerOutput
// slice, and per-check bookkeeping from the arena instead of the heap,
// so a steady-state δ-sweep loop — the warm-started delay search, a
// benchmark, a long harness run — performs zero allocations per sweep
// once the arena has grown to the circuit's output count.
//
// The trade is ownership: everything returned from a call that used an
// arena is valid only until the next call using the same arena, which
// reuses the storage in place. Callers that retain reports (or compare
// reports across calls) must either copy what they keep or not pass an
// arena. A parallel RunAll ignores the arena entirely — its
// per-goroutine checks cannot share one backing store — and allocates
// as if Request.Arena were nil.
//
// An arena must not be shared by concurrent calls. The zero value is
// ready to use.
type ReportArena struct {
	reports []*Report // per-check reports, allocated once and reused
	used    int
	sweep   []*Report // runAllSerial's collection slice
	perOut  []*Report // the aggregate's PerOutput backing
	cr      CircuitReport
	rs      runState
}

// begin starts a new top-level call: every report slot becomes
// reusable.
func (a *ReportArena) begin() { a.used = 0 }

// report hands out the next reusable report slot, zeroed.
func (a *ReportArena) report() *Report {
	if a.used == len(a.reports) {
		a.reports = append(a.reports, new(Report))
	}
	r := a.reports[a.used]
	a.used++
	*r = Report{}
	return r
}
