package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/waveform"
)

func TestPairInputDomain(t *testing.T) {
	d := pairInputDomain(1, 1)
	if v, ok := d.KnownValue(); !ok || v != 1 {
		t.Fatalf("constant input domain wrong: %s", d)
	}
	if d.W1.Lmax != waveform.NegInf {
		t.Fatalf("constant input must never transition: %s", d)
	}
	d = pairInputDomain(0, 1)
	if v, ok := d.KnownValue(); !ok || v != 1 {
		t.Fatalf("rising input domain wrong: %s", d)
	}
	if d.W1.Lmin != 0 || d.W1.Lmax != 0 {
		t.Fatalf("rising input must transition at exactly 0: %s", d)
	}
}

// TestCheckPairSoundAndTight: the narrowing bound must dominate the
// exact two-vector simulation on every net, and on tree-structured
// logic it is exact.
func TestCheckPairSoundAndTight(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := gen.Random(seed+40, 4, 10, 5)
		v := NewVerifier(c, Default())
		k := len(c.PrimaryInputs())
		for a := 0; a < 1<<k; a++ {
			for b := 0; b < 1<<k; b += 3 { // sample pairs
				v1 := make(sim.Vector, k)
				v2 := make(sim.Vector, k)
				for i := 0; i < k; i++ {
					v1[i] = (a >> i) & 1
					v2[i] = (b >> i) & 1
				}
				pb, err := v.CheckPair(v1, v2)
				if err != nil {
					t.Fatal(err)
				}
				for n := range pb.Bound {
					if pb.Exact[n] > pb.Bound[n] {
						t.Fatalf("seed %d pair %s→%s: net %d exact %s exceeds bound %s",
							seed, v1, v2, n, pb.Exact[n], pb.Bound[n])
					}
				}
			}
		}
	}
}

func TestCheckPairExactOnChain(t *testing.T) {
	// On a pure chain the bound is exact: a transition at 0 arrives at
	// exactly depth·d, and a constant input stays constant everywhere.
	c := gen.FalsePathChain(1, 10) // reuse: but check chain nets only
	v := NewVerifier(c, Default())
	k := len(c.PrimaryInputs())
	v1 := make(sim.Vector, k)
	v2 := make(sim.Vector, k)
	for i := range v2 {
		v2[i] = 1
	}
	pb, err := v.CheckPair(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := c.NetByName("s")
	if pb.Exact[s] > pb.Bound[s] {
		t.Fatal("bound must dominate")
	}
	// All-inputs-rising on the Hrapcenko block: output settles when the
	// slowest sensitised path does; both values must be plausible.
	if pb.Bound[s] == waveform.NegInf && pb.Exact[s] != waveform.NegInf {
		t.Fatal("bound claims constant but simulation transitions")
	}
}

func TestTransitionDelayBound(t *testing.T) {
	c := gen.C17(10)
	v := NewVerifier(c, Default())
	g22, _ := c.NetByName("G22")
	want, p1, p2, err := sim.TransitionDelayExhaustive(c, g22)
	if err != nil {
		t.Fatal(err)
	}
	// The worst pair found by the oracle must be reproduced by
	// CheckPair, and the bound must dominate it.
	exact, bound, err := v.TransitionDelayBound([][2]sim.Vector{{p1, p2}}, g22)
	if err != nil {
		t.Fatal(err)
	}
	if exact != want {
		t.Fatalf("worst pair exact %s, oracle %s", exact, want)
	}
	if bound < want {
		t.Fatalf("bound %s below exact %s", bound, want)
	}
	// Transition-mode delay never exceeds floating-mode delay.
	fl, _, err := sim.FloatingDelayExhaustive(c, g22)
	if err != nil {
		t.Fatal(err)
	}
	if want > fl {
		t.Fatalf("transition delay %s exceeds floating delay %s", want, fl)
	}
}
