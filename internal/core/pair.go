package core

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// Two-vector transition mode (Section 1 of the paper: the framework
// "adapts to different circuit-delay modes … by a simple change in the
// abstract waveforms applied to the inputs"). For a specific vector
// pair <v1, v2> every input's abstract signal is pinned: an unchanged
// input is the constant waveform of its class (last transition −∞), a
// changed input transitions exactly at time 0. The fixpoint then yields
// sound per-net last-transition bounds for the pair.

// pairInputDomain builds the transition-mode input domain for one bit.
func pairInputDomain(v1, v2 int) waveform.Signal {
	if v1 == v2 {
		// Constant at v2: only the never-transitioning waveform.
		return waveform.SettledTo(v2).Intersect(waveform.Signal{
			W0: waveform.Wave{Lmin: waveform.NegInf, Lmax: waveform.NegInf},
			W1: waveform.Wave{Lmin: waveform.NegInf, Lmax: waveform.NegInf},
		})
	}
	// Single transition at exactly t = 0 to v2.
	return waveform.SettledTo(v2).Intersect(waveform.Signal{
		W0: waveform.Wave{Lmin: 0, Lmax: 0},
		W1: waveform.Wave{Lmin: 0, Lmax: 0},
	})
}

// PairBounds holds the transition-mode analysis of one vector pair.
type PairBounds struct {
	V1, V2 sim.Vector
	// Bound is a sound upper bound on every net's last-transition time
	// for the pair (from the narrowing fixpoint).
	Bound []waveform.Time
	// Exact is the concrete per-net last-transition time from the
	// two-vector simulation.
	Exact []waveform.Time
}

// CheckPair analyses the specific two-vector pair: the constraint
// system with pinned inputs gives per-net last-transition upper bounds,
// cross-checked against the exact two-vector simulation (Bound must
// dominate Exact; the returned struct carries both so callers can
// report the abstraction gap).
func (v *Verifier) CheckPair(v1, v2 sim.Vector) (*PairBounds, error) {
	pis := v.c.PrimaryInputs()
	if len(v1) != len(pis) || len(v2) != len(pis) {
		return nil, fmt.Errorf("core: pair vectors have %d/%d bits for %d inputs", len(v1), len(v2), len(pis))
	}
	sys := constraint.New(v.c)
	for i, pi := range pis {
		sys.Narrow(pi, pairInputDomain(v1[i], v2[i]))
	}
	sys.ScheduleAll()
	if !sys.Fixpoint() {
		return nil, fmt.Errorf("core: transition-mode fixpoint inconsistent (internal error)")
	}
	pb := &PairBounds{V1: append(sim.Vector(nil), v1...), V2: append(sim.Vector(nil), v2...)}
	pb.Bound = make([]waveform.Time, v.c.NumNets())
	for n := range pb.Bound {
		pb.Bound[n] = sys.Domain(circuit.NetID(n)).LatestTransition()
	}
	r, err := sim.RunPair(v.c, v1, v2, 0)
	if err != nil {
		return nil, err
	}
	pb.Exact = r.Last
	return pb, nil
}

// TransitionDelayBound computes a sound upper bound on the circuit's
// transition-mode delay for a set of pairs (e.g. sampled), returning
// the worst exact pair delay seen and the worst bound.
func (v *Verifier) TransitionDelayBound(pairs [][2]sim.Vector, sink circuit.NetID) (exact, bound waveform.Time, err error) {
	exact, bound = waveform.NegInf, waveform.NegInf
	for _, p := range pairs {
		pb, err := v.CheckPair(p[0], p[1])
		if err != nil {
			return 0, 0, err
		}
		if pb.Exact[sink] > exact {
			exact = pb.Exact[sink]
		}
		if pb.Bound[sink] > bound {
			bound = pb.Bound[sink]
		}
	}
	return exact, bound, nil
}
