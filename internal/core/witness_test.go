package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/waveform"
)

func TestWitnessPathHrapcenko(t *testing.T) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := NewVerifier(c, Default())
	rep := v.Check(s, 60)
	if rep.Final != ViolationFound {
		t.Fatal("need a witness")
	}
	path, err := v.WitnessPath(s, rep.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || path[len(path)-1] != s {
		t.Fatal("path must end at the sink")
	}
	if !c.Net(path[0]).IsPI {
		t.Fatalf("path must start at a PI, starts at %s", c.Net(path[0]).Name)
	}
	// Settle times must be non-decreasing along the path and end at the
	// witnessed settle time.
	r, _ := sim.Run(c, rep.Witness)
	prev := waveform.NegInf
	for _, n := range path {
		if r.Settle[n] < prev {
			t.Fatalf("settle times decrease along the path at %s", c.Net(n).Name)
		}
		prev = r.Settle[n]
	}
	if r.Settle[s] != rep.WitnessSettle || prev != rep.WitnessSettle {
		t.Fatal("path must realise the witnessed settle time")
	}
	// On the Hrapcenko witness, the path length (in gates) is 6, not 7:
	// the 7-gate topological path is false.
	if len(path)-1 == 7 {
		t.Fatal("witness path must not be the false 7-gate path")
	}
}

func TestWitnessPathStructure(t *testing.T) {
	// Path edges must be real gate connections, on several circuits.
	for _, c := range []*circuit.Circuit{gen.C17(10), gen.CarrySkipAdder(6, 3, 10)} {
		v := NewVerifier(c, Default())
		for _, po := range c.PrimaryOutputs() {
			res, err := v.ExactFloatingDelay(po)
			if err != nil || !res.Exact {
				t.Fatalf("exact delay: %v %+v", err, res)
			}
			if res.Delay < 0 {
				continue
			}
			path, err := v.WitnessPath(po, res.Witness)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(path); i++ {
				g := c.Gate(c.Net(path[i]).Driver)
				ok := false
				for _, in := range g.Inputs {
					if in == path[i-1] {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("path edge %d not a gate connection", i)
				}
			}
		}
	}
}
