package core

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/waveform"
)

func TestWitnessPathHrapcenko(t *testing.T) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := NewVerifier(c, Default())
	rep := v.Check(s, 60)
	if rep.Final != ViolationFound {
		t.Fatal("need a witness")
	}
	path, err := v.WitnessPath(s, rep.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || path[len(path)-1] != s {
		t.Fatal("path must end at the sink")
	}
	if !c.Net(path[0]).IsPI {
		t.Fatalf("path must start at a PI, starts at %s", c.Net(path[0]).Name)
	}
	// Settle times must be non-decreasing along the path and end at the
	// witnessed settle time.
	r, _ := sim.Run(c, rep.Witness)
	prev := waveform.NegInf
	for _, n := range path {
		if r.Settle[n] < prev {
			t.Fatalf("settle times decrease along the path at %s", c.Net(n).Name)
		}
		prev = r.Settle[n]
	}
	if r.Settle[s] != rep.WitnessSettle || prev != rep.WitnessSettle {
		t.Fatal("path must realise the witnessed settle time")
	}
	// On the Hrapcenko witness, the path length (in gates) is 6, not 7:
	// the 7-gate topological path is false.
	if len(path)-1 == 7 {
		t.Fatal("witness path must not be the false 7-gate path")
	}
}

// TestWitnessSurvivesSerialization covers the serving path: a witness
// found by a cone-sliced check, serialised as JSON (the way lttad
// ships reports) and decoded back, must still certify the violation on
// the original circuit.
func TestWitnessSurvivesSerialization(t *testing.T) {
	for _, c := range []*circuit.Circuit{gen.Hrapcenko(10), gen.CarrySkipAdder(8, 4, 10)} {
		v := NewVerifier(c, Default()) // cone slicing on
		for _, po := range c.PrimaryOutputs() {
			res, err := v.ExactFloatingDelayCtx(context.Background(), po, Request{})
			if err != nil || !res.Exact || res.Delay < 0 {
				continue
			}
			rep := v.Run(context.Background(), Request{Sink: po, Delta: res.Delay})
			if rep.Final != ViolationFound {
				t.Fatalf("%s (%s, %s): expected a violation at the exact delay, got %s",
					c.Name, c.Net(po).Name, res.Delay, rep.Final)
			}
			body, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			var back Report
			if err := json.Unmarshal(body, &back); err != nil {
				t.Fatal(err)
			}
			r, err := sim.Run(c, back.Witness)
			if err != nil {
				t.Fatalf("decoded witness does not simulate: %v", err)
			}
			if !r.Violates(back.Sink, back.Delta) {
				t.Fatalf("%s (%s, %s): decoded witness settles at %s, does not violate",
					c.Name, c.Net(po).Name, back.Delta, r.Settle[back.Sink])
			}
			if r.Settle[back.Sink] != back.WitnessSettle {
				t.Fatalf("decoded settle %s != report settle %s", r.Settle[back.Sink], back.WitnessSettle)
			}
		}
	}
}

func TestWitnessPathStructure(t *testing.T) {
	// Path edges must be real gate connections, on several circuits.
	for _, c := range []*circuit.Circuit{gen.C17(10), gen.CarrySkipAdder(6, 3, 10)} {
		v := NewVerifier(c, Default())
		for _, po := range c.PrimaryOutputs() {
			res, err := v.ExactFloatingDelay(po)
			if err != nil || !res.Exact {
				t.Fatalf("exact delay: %v %+v", err, res)
			}
			if res.Delay < 0 {
				continue
			}
			path, err := v.WitnessPath(po, res.Witness)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(path); i++ {
				g := c.Gate(c.Net(path[i]).Driver)
				ok := false
				for _, in := range g.Inputs {
					if in == path[i-1] {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("path edge %d not a gate connection", i)
				}
			}
		}
	}
}
