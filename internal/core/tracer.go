package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// Stage identifies one phase of the check pipeline for tracing and
// per-stage statistics. The order matches the paper's Table-1 columns.
type Stage int

const (
	// StagePlain is the plain waveform-narrowing fixpoint (column
	// "BEFORE G.I.T.D.").
	StagePlain Stage = iota
	// StageGITD is the global-implication loop: dynamic timing
	// dominators plus static learning (column "AFTER G.I.T.D.").
	StageGITD
	// StageStem is the reconvergent-stem correlation preprocessing
	// (column "AFTER STEM C.").
	StageStem
	// StageCase is the FAN-derived case analysis (column "C.A.").
	StageCase

	// NumStages is the number of pipeline stages.
	NumStages = 4
)

func (s Stage) String() string {
	switch s {
	case StagePlain:
		return "fixpoint"
	case StageGITD:
		return "gitd"
	case StageStem:
		return "stems"
	case StageCase:
		return "casean"
	}
	return "?"
}

// Tracer observes the check pipeline. Every callback fires on the
// goroutine running the check; a tracer shared across parallel checks
// (CheckAllParallel, Run with Workers > 1) must be safe for concurrent
// use. A nil Tracer in a Request is the fast path: the engine performs
// no tracer work at all beyond one nil check per event site, so tracing
// costs nothing when disabled.
type Tracer interface {
	// CheckStart fires once when a check (sink, δ) begins.
	CheckStart(sink circuit.NetID, delta waveform.Time)
	// StageEnter/StageExit bracket each pipeline stage that runs;
	// StageExit carries the stage verdict and its wall-clock time.
	StageEnter(stage Stage)
	StageExit(stage Stage, verdict Result, elapsed time.Duration)
	// DominatorRound fires after each dominator-narrowing round of the
	// evaluate loop with the dominator count and whether any domain
	// narrowed.
	DominatorRound(round, dominators int, narrowed bool)
	// Decision fires on every case-analysis decision (depth is the
	// decision-stack depth after pushing).
	Decision(depth int, net circuit.NetID, val int)
	// Backtrack fires on every case-analysis backtrack with the running
	// total.
	Backtrack(total int)
	// StemSplit fires for each stem correlated during stem correlation.
	StemSplit(split int, stem circuit.NetID)
	// CheckDone fires once with the finished report (counters filled).
	CheckDone(rep *Report)
}

// Stats is the engine-level telemetry of one check, beyond the paper's
// Table-1 counters — filled on every Report whether or not a tracer is
// installed (the counters are plain increments on state the engine
// tracks anyway).
type Stats struct {
	// Narrowings counts domain changes across all stages.
	Narrowings int64
	// QueueHighWater is the fixpoint worklist's peak length.
	QueueHighWater int
	// Decisions counts case-analysis decisions.
	Decisions int64
	// StemSplits counts stems correlated by stem correlation.
	StemSplits int
	// StageTime is the wall-clock time spent per pipeline stage,
	// indexed by Stage.
	StageTime [NumStages]time.Duration
}

// StatsTracer aggregates telemetry across checks into totals — the
// cheap always-on tracer behind `ltta -stats` and the per-circuit
// summaries. Safe for concurrent use.
type StatsTracer struct {
	mu sync.Mutex

	// Checks counts finished checks; the per-verdict counters break
	// them down by final result.
	Checks     int
	Refuted    int // NoViolation
	Violations int // ViolationFound
	Abandons   int // Abandoned
	Cancels    int // Cancelled
	Possible   int // PossibleViolation (VerifyOnly runs)

	Propagations    int64
	Narrowings      int64
	Backtracks      int64
	Decisions       int64
	DominatorRounds int64
	StemSplits      int64
	QueueHighWater  int // max over checks
	StageTime       [NumStages]time.Duration
	Elapsed         time.Duration
}

var _ Tracer = (*StatsTracer)(nil)

func (t *StatsTracer) CheckStart(circuit.NetID, waveform.Time) {}
func (t *StatsTracer) StageEnter(Stage)                        {}

func (t *StatsTracer) StageExit(stage Stage, _ Result, elapsed time.Duration) {
	t.mu.Lock()
	t.StageTime[stage] += elapsed
	t.mu.Unlock()
}

func (t *StatsTracer) DominatorRound(_, _ int, narrowed bool) {
	if !narrowed {
		return
	}
	t.mu.Lock()
	t.DominatorRounds++
	t.mu.Unlock()
}

func (t *StatsTracer) Decision(int, circuit.NetID, int) {
	t.mu.Lock()
	t.Decisions++
	t.mu.Unlock()
}

func (t *StatsTracer) Backtrack(int) {}

func (t *StatsTracer) StemSplit(int, circuit.NetID) {
	t.mu.Lock()
	t.StemSplits++
	t.mu.Unlock()
}

func (t *StatsTracer) CheckDone(rep *Report) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Checks++
	switch rep.Final {
	case NoViolation:
		t.Refuted++
	case ViolationFound:
		t.Violations++
	case Abandoned:
		t.Abandons++
	case Cancelled:
		t.Cancels++
	case PossibleViolation:
		t.Possible++
	}
	t.Propagations += rep.Propagations
	t.Narrowings += rep.Stats.Narrowings
	if rep.Backtracks > 0 {
		t.Backtracks += int64(rep.Backtracks)
	}
	if rep.Stats.QueueHighWater > t.QueueHighWater {
		t.QueueHighWater = rep.Stats.QueueHighWater
	}
	t.Elapsed += rep.Elapsed
}

// String renders a one-paragraph summary of the aggregated telemetry.
func (t *StatsTracer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := fmt.Sprintf(
		"checks %d (N %d, V %d, A %d, C %d, P %d); propagations %d, narrowings %d, backtracks %d, decisions %d, dominator rounds %d, stem splits %d; queue high-water %d; cpu %.3fs",
		t.Checks, t.Refuted, t.Violations, t.Abandons, t.Cancels, t.Possible,
		t.Propagations, t.Narrowings, t.Backtracks, t.Decisions,
		t.DominatorRounds, t.StemSplits, t.QueueHighWater, t.Elapsed.Seconds())
	for st := Stage(0); st < NumStages; st++ {
		if t.StageTime[st] > 0 {
			s += fmt.Sprintf("; %s %.3fs", st, t.StageTime[st].Seconds())
		}
	}
	return s
}

// TraceWriter renders every tracer event as one line of text or JSON —
// the engine-level counterpart of the paper's propagation listings,
// wired into `ltta -trace`. Safe for concurrent use (events from
// parallel checks interleave but each line is written atomically).
type TraceWriter struct {
	mu   sync.Mutex
	w    io.Writer
	c    *circuit.Circuit // optional: names nets in events
	json bool
	seq  int
}

// NewTraceWriter returns a text trace writer. The circuit is optional;
// when non-nil, events name nets instead of printing raw ids.
func NewTraceWriter(w io.Writer, c *circuit.Circuit) *TraceWriter {
	return &TraceWriter{w: w, c: c}
}

// NewJSONTraceWriter returns a trace writer emitting one JSON object
// per event (for downstream tooling).
func NewJSONTraceWriter(w io.Writer, c *circuit.Circuit) *TraceWriter {
	return &TraceWriter{w: w, c: c, json: true}
}

var _ Tracer = (*TraceWriter)(nil)

func (t *TraceWriter) netName(n circuit.NetID) string {
	if t.c != nil && n != circuit.InvalidNet {
		return t.c.Net(n).Name
	}
	return fmt.Sprintf("net%d", int(n))
}

// event emits one trace line; fields come in key/value pairs.
func (t *TraceWriter) event(ev string, fields ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	if t.json {
		obj := map[string]any{"seq": t.seq, "ev": ev}
		for i := 0; i+1 < len(fields); i += 2 {
			obj[fields[i].(string)] = fields[i+1]
		}
		b, err := json.Marshal(obj)
		if err != nil {
			return
		}
		fmt.Fprintf(t.w, "%s\n", b)
		return
	}
	fmt.Fprintf(t.w, "[%6d] %-10s", t.seq, ev)
	for i := 0; i+1 < len(fields); i += 2 {
		fmt.Fprintf(t.w, " %s=%v", fields[i], fields[i+1])
	}
	fmt.Fprintln(t.w)
}

func (t *TraceWriter) CheckStart(sink circuit.NetID, delta waveform.Time) {
	t.event("check", "sink", t.netName(sink), "delta", delta.String())
}

func (t *TraceWriter) StageEnter(stage Stage) {
	t.event("stage", "name", stage.String())
}

func (t *TraceWriter) StageExit(stage Stage, verdict Result, elapsed time.Duration) {
	t.event("stage.done", "name", stage.String(), "verdict", verdict.String(),
		"us", elapsed.Microseconds())
}

func (t *TraceWriter) DominatorRound(round, dominators int, narrowed bool) {
	t.event("domround", "round", round, "dominators", dominators, "narrowed", narrowed)
}

func (t *TraceWriter) Decision(depth int, net circuit.NetID, val int) {
	t.event("decide", "depth", depth, "net", t.netName(net), "val", val)
}

func (t *TraceWriter) Backtrack(total int) {
	t.event("backtrack", "total", total)
}

func (t *TraceWriter) StemSplit(split int, stem circuit.NetID) {
	t.event("stemsplit", "n", split, "stem", t.netName(stem))
}

func (t *TraceWriter) CheckDone(rep *Report) {
	t.event("check.done", "sink", t.netName(rep.Sink), "delta", rep.Delta.String(),
		"final", rep.Final.String(), "backtracks", rep.Backtracks,
		"propagations", rep.Propagations, "us", rep.Elapsed.Microseconds())
}

// MultiTracer fans every event out to each tracer in order (e.g. a
// TraceWriter plus a StatsTracer for `ltta -trace -stats`). Nil entries
// are skipped; a MultiTracer of zero non-nil tracers behaves like nil.
func MultiTracer(tracers ...Tracer) Tracer {
	var ts []Tracer
	for _, t := range tracers {
		if t != nil {
			ts = append(ts, t)
		}
	}
	switch len(ts) {
	case 0:
		return nil
	case 1:
		return ts[0]
	}
	return multiTracer(ts)
}

type multiTracer []Tracer

func (m multiTracer) CheckStart(sink circuit.NetID, delta waveform.Time) {
	for _, t := range m {
		t.CheckStart(sink, delta)
	}
}
func (m multiTracer) StageEnter(stage Stage) {
	for _, t := range m {
		t.StageEnter(stage)
	}
}
func (m multiTracer) StageExit(stage Stage, verdict Result, elapsed time.Duration) {
	for _, t := range m {
		t.StageExit(stage, verdict, elapsed)
	}
}
func (m multiTracer) DominatorRound(round, dominators int, narrowed bool) {
	for _, t := range m {
		t.DominatorRound(round, dominators, narrowed)
	}
}
func (m multiTracer) Decision(depth int, net circuit.NetID, val int) {
	for _, t := range m {
		t.Decision(depth, net, val)
	}
}
func (m multiTracer) Backtrack(total int) {
	for _, t := range m {
		t.Backtrack(total)
	}
}
func (m multiTracer) StemSplit(split int, stem circuit.NetID) {
	for _, t := range m {
		t.StemSplit(split, stem)
	}
}
func (m multiTracer) CheckDone(rep *Report) {
	for _, t := range m {
		t.CheckDone(rep)
	}
}
