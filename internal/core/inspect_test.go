package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/waveform"
)

func TestSystemAfterFixpoint(t *testing.T) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := NewVerifier(c, Default())
	sys := v.SystemAfterFixpoint(s, 61)
	if !sys.Inconsistent() {
		t.Fatal("δ=61 plain fixpoint must be inconsistent on Figure 1")
	}
	if sys.Circuit() != c {
		t.Fatal("system must expose its circuit")
	}
	sys = v.SystemAfterFixpoint(s, 60)
	if sys.Inconsistent() {
		t.Fatal("δ=60 must stay consistent")
	}
	if v.Circuit() != c {
		t.Fatal("verifier must expose its circuit")
	}
}

func TestDomainsAfterFixpoint(t *testing.T) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := NewVerifier(c, Options{})
	doms := v.DomainsAfterFixpoint(s, 60)
	if len(doms) != c.NumNets() {
		t.Fatal("one domain per net expected")
	}
	n7, _ := c.NetByName("n7")
	want := waveform.Signal{
		W0: waveform.Wave{Lmin: waveform.NegInf, Lmax: 60},
		W1: waveform.Wave{Lmin: 50, Lmax: 60},
	}
	if !doms[n7].Equal(want) {
		t.Fatalf("n7 = %s, want %s", doms[n7], want)
	}
}

// TestBacktraceThroughParity forces the case analysis to backtrace
// through XOR gates (the parity branch of the backtrace).
func TestBacktraceThroughParity(t *testing.T) {
	b := circuit.NewBuilder("xordec")
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.Gate(circuit.BUFFER, 10, "n1", "a")
	b.Gate(circuit.BUFFER, 10, "n2", "n1")
	b.Gate(circuit.XOR, 10, "x", "b", "c")
	b.Gate(circuit.AND, 10, "z", "n2", "x")
	b.Output("z")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(ckt, Default())
	z, _ := ckt.NetByName("z")
	res, err := v.ExactFloatingDelay(z)
	if err != nil || !res.Exact {
		t.Fatalf("exact failed: %v %+v", err, res)
	}
	// δ = 40 needs the n2 chain AND x = 1, reachable only by an XOR
	// side objective; the engine must find a witness.
	rep := v.Check(z, res.Delay)
	if rep.Final != ViolationFound {
		t.Fatalf("δ=%s must be witnessed, got %s", res.Delay, rep.Final)
	}
}

// TestBacktraceDeadEnds: objectives whose chain ends in already-decided
// nets must be skipped without progress loss.
func TestBacktraceDeadEnds(t *testing.T) {
	b := circuit.NewBuilder("dead")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.NOT, 10, "nb", "b")
	b.Gate(circuit.AND, 10, "p", "a", "b")
	b.Gate(circuit.AND, 10, "q", "a", "nb")
	b.Gate(circuit.OR, 10, "z", "p", "q")
	b.Output("z")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(ckt, Default())
	z, _ := ckt.NetByName("z")
	res, err := v.ExactFloatingDelay(z)
	if err != nil || !res.Exact {
		t.Fatalf("exact failed: %v %+v", err, res)
	}
	// Sanity: the engine terminates and certifies on this reconvergent
	// structure at and above the exact delay.
	if rep := v.Check(z, res.Delay.Add(1)); rep.Final != NoViolation {
		t.Fatalf("δ+1 must be refuted, got %s", rep.Final)
	}
}

func TestGateIDsBuilderPath(t *testing.T) {
	b := circuit.NewBuilder("ids")
	a := b.Input("a")
	x := b.Net("x")
	b.GateIDs(circuit.NOT, 5, x, a)
	b.Output("x")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ckt.NumGates() != 1 || ckt.Gate(0).Delay != 5 {
		t.Fatal("GateIDs path broken")
	}
}
