package core

import "expvar"

// Engine-wide counters published under /debug/vars when the embedding
// process serves the default HTTP mux — the ROADMAP's multi-user
// deployments watch these to spot checks that cancel or abandon at
// scale. Updated once per finished check (a handful of atomic adds),
// so they cost nothing on the per-propagation hot path.
var (
	expChecks       = expvar.NewInt("ltta.checks")
	expRefuted      = expvar.NewInt("ltta.checks_refuted")
	expViolations   = expvar.NewInt("ltta.checks_violations")
	expAbandoned    = expvar.NewInt("ltta.checks_abandoned")
	expCancelled    = expvar.NewInt("ltta.checks_cancelled")
	expPropagations = expvar.NewInt("ltta.propagations")
	expBacktracks   = expvar.NewInt("ltta.backtracks")
	expNarrowings   = expvar.NewInt("ltta.narrowings")
)

// recordCheck publishes one finished check into the expvar counters.
func recordCheck(rep *Report) {
	expChecks.Add(1)
	switch rep.Final {
	case NoViolation:
		expRefuted.Add(1)
	case ViolationFound:
		expViolations.Add(1)
	case Abandoned:
		expAbandoned.Add(1)
	case Cancelled:
		expCancelled.Add(1)
	}
	expPropagations.Add(rep.Propagations)
	if rep.Backtracks > 0 {
		expBacktracks.Add(int64(rep.Backtracks))
	}
	expNarrowings.Add(rep.Stats.Narrowings)
}
