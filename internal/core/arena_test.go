package core

import (
	"context"
	"testing"

	"repro/internal/gen"
)

// TestArenaSweepMatchesFresh pins the arena's transparency: an
// arena-backed serial sweep must report exactly what freshly allocated
// reports do, at every δ of a schedule, warm or cold.
func TestArenaSweepMatchesFresh(t *testing.T) {
	prep := Prepare(gen.Industrial(5, 32, 10))
	ref := prep.NewVerifier(Default())
	res, err := ref.CircuitFloatingDelay()
	if err != nil {
		t.Fatal(err)
	}
	for _, warm := range []bool{true, false} {
		opts := Default()
		opts.UseWarmStart = warm
		plain := prep.NewVerifier(opts)
		arened := prep.NewVerifier(opts)
		arena := new(ReportArena)
		for _, delta := range deltaSchedules(res.Delay)["gaps"] {
			req := Request{Delta: delta, Workers: 1}
			want := warmCanonicalCircuit(plain.RunAll(context.Background(), req))
			req.Arena = arena
			got := warmCanonicalCircuit(arened.RunAll(context.Background(), req))
			if got != want {
				t.Fatalf("warm=%v δ=%s arena sweep diverged:\nfresh: %s\narena: %s", warm, delta, want, got)
			}
		}
	}
}

// TestArenaReusesReportStorage pins the ownership contract: the next
// call on the same arena hands back the same backing report.
func TestArenaReusesReportStorage(t *testing.T) {
	c := gen.C17(10)
	opts := Default()
	opts.UseConeSlicing = false
	v := NewVerifier(c, opts)
	po := c.PrimaryOutputs()[0]
	arena := new(ReportArena)
	req := Request{Sink: po, Delta: v.Topological().Add(1), Arena: arena}

	first := v.Run(context.Background(), req)
	second := v.Run(context.Background(), req)
	if first != second {
		t.Fatal("consecutive arena-backed Runs must reuse the report slot")
	}
	if second.Final != NoViolation {
		t.Fatalf("reused report carries wrong verdict %s", second.Final)
	}
}

// TestArenaParallelFallsBackToAllocation: a parallel RunAll must
// ignore the arena (per-goroutine checks cannot share it) and still
// produce the serial sweep's aggregate.
func TestArenaParallelFallsBackToAllocation(t *testing.T) {
	prep := Prepare(gen.Industrial(5, 32, 10))
	v := prep.NewVerifier(Default())
	delta := v.Topological().Add(1)
	want := warmCanonicalCircuit(prep.NewVerifier(Default()).RunAll(context.Background(),
		Request{Delta: delta, Workers: 4}))
	arena := new(ReportArena)
	got := warmCanonicalCircuit(v.RunAll(context.Background(),
		Request{Delta: delta, Workers: 4, Arena: arena}))
	if got != want {
		t.Fatalf("parallel sweep with arena diverged:\nwant %s\ngot  %s", want, got)
	}
	if len(arena.reports) != 0 {
		t.Fatalf("parallel RunAll touched the arena (%d report slots)", len(arena.reports))
	}
}

// TestArenaSweepSteadyStateAllocs extends the kernel's zero-allocs
// guarantee to the whole sweep path: warm-started and arena-backed,
// a repeated serial RunAll performs no allocations at all.
func TestArenaSweepSteadyStateAllocs(t *testing.T) {
	c := gen.Industrial(5, 32, 10)
	v := NewVerifier(c, Default())
	delta := v.Topological().Add(1)
	req := Request{Delta: delta, Workers: 1, Arena: new(ReportArena)}
	if v.RunAll(context.Background(), req).Final != NoViolation {
		t.Fatal("δ=top+1 must be refuted")
	}
	avg := testing.AllocsPerRun(50, func() {
		if v.RunAll(context.Background(), req).Final != NoViolation {
			t.Fatal("δ=top+1 must be refuted")
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state arena sweep allocates %.1f times per run, want 0", avg)
	}
}
