package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/waveform"
)

func sink(t testing.TB, c *circuit.Circuit, name string) circuit.NetID {
	t.Helper()
	n, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return n
}

// TestExample2 reproduces the paper's Example 2: on the Figure-1
// circuit with d=10 per gate, the timing check (s, 61) is refuted by
// plain waveform narrowing alone — no dominators, no case analysis.
func TestExample2NoViolationAt61(t *testing.T) {
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Options{}) // everything off: plain narrowing
	rep := v.Check(sink(t, c, "s"), 61)
	if rep.BeforeGITD != NoViolation {
		t.Fatalf("δ=61 must be refuted by the plain fixpoint, got %s", rep.BeforeGITD)
	}
	if rep.Final != NoViolation {
		t.Fatalf("final = %s", rep.Final)
	}
}

// TestExample2ViolationAt60 continues Example 2: at δ=60 (the exact
// floating delay) the case analysis must find a certified test vector.
func TestExample2ViolationAt60(t *testing.T) {
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Default())
	rep := v.Check(sink(t, c, "s"), 60)
	if rep.Final != ViolationFound {
		t.Fatalf("δ=60 must be violable, got %s (backtracks %d)", rep.Final, rep.Backtracks)
	}
	if rep.WitnessSettle < 60 {
		t.Fatalf("witness settle %s < 60", rep.WitnessSettle)
	}
	// The witness must actually work per the simulator.
	r, err := sim.Run(c, rep.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if r.Settle[sink(t, c, "s")] != rep.WitnessSettle {
		t.Fatal("witness settle mismatch")
	}
}

func TestExactFloatingDelayHrapcenko(t *testing.T) {
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Default())
	res, err := v.ExactFloatingDelay(sink(t, c, "s"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Delay != 60 {
		t.Fatalf("delay = %s exact=%v, want 60 exact", res.Delay, res.Exact)
	}
	if v.Topological() != 70 {
		t.Fatalf("top = %s", v.Topological())
	}
}

// TestExactnessOnRandomCircuits is the end-to-end correctness property:
// on many random circuits the engine's exact floating delay must equal
// the exhaustive oracle, for every primary output.
func TestExactnessOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := gen.Random(seed, 5, 15, 3)
		v := NewVerifier(c, Default())
		for _, po := range c.PrimaryOutputs() {
			want, _, err := sim.FloatingDelayExhaustive(c, po)
			if err != nil {
				t.Fatal(err)
			}
			got, err := v.ExactFloatingDelay(po)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Exact {
				t.Fatalf("seed %d %s: search abandoned", seed, c.Net(po).Name)
			}
			if got.Delay != want {
				t.Fatalf("seed %d output %s: engine %s, oracle %s",
					seed, c.Net(po).Name, got.Delay, want)
			}
		}
	}
}

// TestExactnessWithAllStagesOff checks that the case analysis alone
// (no dominators, learning, or stem correlation) is still exact — the
// stages are accelerators, not correctness requirements.
func TestExactnessWithAllStagesOff(t *testing.T) {
	opts := Options{MaxBacktracks: 1 << 20}
	for seed := int64(50); seed < 70; seed++ {
		c := gen.Random(seed, 5, 12, 3)
		v := NewVerifier(c, opts)
		po := c.PrimaryOutputs()[0]
		want, _, err := sim.FloatingDelayExhaustive(c, po)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.ExactFloatingDelay(po)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact || got.Delay != want {
			t.Fatalf("seed %d: engine %s (exact=%v), oracle %s", seed, got.Delay, got.Exact, want)
		}
	}
}

func TestCheckAllAggregation(t *testing.T) {
	c := gen.C17(10)
	v := NewVerifier(c, Default())
	// Topological delay 30: δ=31 must be N, δ=30 must be V (c17's
	// longest paths are true paths).
	cr := v.CheckAll(31)
	if cr.Final != NoViolation {
		t.Fatalf("δ=31: %s", cr.Final)
	}
	cr = v.CheckAll(30)
	if cr.Final != ViolationFound {
		t.Fatalf("δ=30: %s", cr.Final)
	}
	if cr.WitnessOutput < 0 {
		t.Fatal("witness output missing")
	}
}

func TestCircuitFloatingDelayC17(t *testing.T) {
	c := gen.C17(10)
	v := NewVerifier(c, Default())
	res, err := v.CircuitFloatingDelay()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.CircuitFloatingDelayExhaustive(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Delay != want {
		t.Fatalf("circuit delay %s (exact=%v), oracle %s", res.Delay, res.Exact, want)
	}
	if want != 30 {
		t.Fatalf("c17 floating delay = %s, want 30", want)
	}
}

func TestCarrySkipExactDelay(t *testing.T) {
	// E4 in miniature: a 6-bit carry-skip adder's carry output has a
	// floating delay strictly below topological, and the engine matches
	// the oracle exactly.
	c := gen.CarrySkipAdder(6, 3, 10)
	cout := sink(t, c, "cout")
	v := NewVerifier(c, Default())
	want, _, err := sim.FloatingDelayExhaustive(c, cout)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ExactFloatingDelay(cout)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exact || got.Delay != want {
		t.Fatalf("engine %s (exact=%v), oracle %s", got.Delay, got.Exact, want)
	}
	if got.Delay >= v.Topological() {
		t.Fatalf("no false path: %s vs top %s", got.Delay, v.Topological())
	}
}

func TestDominatorsEnableRefutation(t *testing.T) {
	// A carry-skip spine where δ just above the floating delay needs
	// dominator implications: verify the staged behaviour — plain
	// narrowing P, dominators may prove N or the case analysis refutes
	// with zero surviving vectors; in all cases Final must be exact.
	c := gen.CarrySkipAdder(6, 3, 10)
	cout := sink(t, c, "cout")
	exact, _, err := sim.FloatingDelayExhaustive(c, cout)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(c, Default())
	rep := v.Check(cout, exact.Add(1))
	if rep.Final != NoViolation {
		t.Fatalf("δ=exact+1 must be refuted, got %s", rep.Final)
	}
	rep = v.Check(cout, exact)
	if rep.Final != ViolationFound {
		t.Fatalf("δ=exact must be witnessed, got %s", rep.Final)
	}
}

func TestAbandonedOnTinyBudget(t *testing.T) {
	// With a zero backtrack budget, a check that needs search must be
	// abandoned rather than mis-reported.
	c := gen.CarrySkipAdder(8, 4, 10)
	cout := sink(t, c, "cout")
	v := NewVerifier(c, Options{MaxBacktracks: 1})
	exact, _, err := sim.FloatingDelayExhaustive(c, cout)
	if err != nil {
		t.Fatal(err)
	}
	rep := v.Check(cout, exact.Add(1))
	if rep.Final == ViolationFound {
		t.Fatal("δ=exact+1 can never be a violation")
	}
	// Either the narrowing proves N quickly or the search gives up:
	// both are acceptable; a silent wrong answer is not.
	if rep.Final != NoViolation && rep.Final != Abandoned {
		t.Fatalf("unexpected result %s", rep.Final)
	}
}

func TestVerifyOnly(t *testing.T) {
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Default())
	if got := v.VerifyOnly(sink(t, c, "s"), 61); got != NoViolation {
		t.Fatalf("VerifyOnly(61) = %s", got)
	}
	if got := v.VerifyOnly(sink(t, c, "s"), 60); got != PossibleViolation {
		t.Fatalf("VerifyOnly(60) = %s", got)
	}
}

func TestResultString(t *testing.T) {
	cases := map[Result]string{
		PossibleViolation: "P", NoViolation: "N", ViolationFound: "V",
		Abandoned: "A", StageSkipped: "-",
	}
	for r, w := range cases {
		if r.String() != w {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), w)
		}
	}
}

func TestStagesRecordedInReport(t *testing.T) {
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Default())
	rep := v.Check(sink(t, c, "s"), 60)
	if rep.BeforeGITD != PossibleViolation {
		t.Fatalf("BeforeGITD = %s", rep.BeforeGITD)
	}
	if rep.Delta != 60 || rep.Elapsed <= 0 || rep.Propagations <= 0 {
		t.Fatal("report bookkeeping missing")
	}
}

func TestWaveformDomainIntactAfterCheck(t *testing.T) {
	// Checks must not mutate the circuit or leak state between runs:
	// two identical checks give identical verdicts and witnesses.
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Default())
	s := sink(t, c, "s")
	r1 := v.Check(s, 60)
	r2 := v.Check(s, 60)
	if r1.Final != r2.Final || r1.Backtracks != r2.Backtracks || r1.Witness.String() != r2.Witness.String() {
		t.Fatal("checks must be deterministic and stateless")
	}
	_ = waveform.Time(0)
}
